// Package repro is a from-scratch Go reproduction of "CRISP: Critical
// Slice Prefetching" (Litz, Ayers, Ranganathan; ASPLOS 2022): a
// cycle-level out-of-order core simulator with a criticality-aware
// instruction scheduler, the CRISP software pipeline (profiling, slice
// extraction through registers and memory, critical-path filtering,
// tagging), the IBDA hardware baseline, and an evaluation suite
// regenerating every table and figure of the paper.
//
// See README.md for usage, DESIGN.md for the architecture and
// substitution decisions, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go regenerate each experiment.
package repro
