// Command crispsim runs one workload of the evaluation suite under a
// chosen scheduler configuration and prints the timing results — the
// quickest way to poke at the simulator. Flags assemble a declarative
// sim.RunSpec executed through the shared runner, so -cache reuses (and
// feeds) the same persistent result store as cmd/experiments.
//
// Usage:
//
//	crispsim -workload mcf -sched crisp -insts 500000
//	crispsim -workload lbm -sched ooo
//	crispsim -workload moses -sched ibda -ist 1024
//	crispsim -workload mcf -sched crisp -cache .crisp-cache
//	crispsim -cores tailchase,streambatch -sched crisp
//	crispsim -cores tailchase,streambatch -sched crisp -sampled
//	crispsim -workload mcf -sched crisp -server http://sweepbox:8080
//	crispsim -list
//
// -cores runs a multi-core co-scheduled simulation: the listed workloads
// run on cores 0..n-1 over one shared LLC and DRAM, with -sched applied
// to core 0 (the latency-critical slot) and every neighbour on the OOO
// baseline. Adding -sampled fast-forwards every core functionally to
// shared window boundaries and simulates short detailed lockstep
// windows from a co-scheduled checkpoint set (captured once per
// workload tuple and persisted in -store); schedulers whose state spans
// windows (ibda) are rejected with a clear error rather than silently
// falling back to full detail. -shard i/n joins a multi-process sweep over one -store, as
// in cmd/experiments. -server delegates the simulations to a crispd job
// server instead, which dedups them against its shared store across all
// connected clients.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"

	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/crispd"
	"crisp/internal/ibda"
	"crisp/internal/metrics"
	"crisp/internal/runner"
	"crisp/internal/sim"
	"crisp/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		name       = flag.String("workload", "pointerchase", "workload name (-list to enumerate)")
		sched      = flag.String("sched", "crisp", "scheduler: ooo, crisp, random, ibda, perfect-bp")
		insts      = flag.Uint64("insts", 400_000, "instructions to simulate")
		ist        = flag.Int("ist", 1024, "IBDA instruction-slice-table entries (0 = infinite)")
		rs         = flag.Int("rs", 96, "reservation station entries")
		rob        = flag.Int("rob", 224, "reorder buffer entries")
		cores      = flag.String("cores", "", "comma-separated workloads for a multi-core run; -sched applies to core 0, neighbours run ooo")
		storeDir   = flag.String("store", "", "persist/reuse results and checkpoint sets in this directory (process-safe)")
		cacheDir   = flag.String("cache", "", "alias for -store (older name)")
		shard      = flag.String("shard", "", "run as shard i/n of a multi-process sweep over one -store (e.g. 0/2)")
		server     = flag.String("server", "", "delegate simulations to a crispd job server at this URL (e.g. http://host:8080); excludes -store/-cache/-shard")
		metricsOut = flag.String("metrics", "", "append per-run cycle-accounting records to this JSONL file")
		metricsCSV = flag.String("metrics-csv", "", "append per-run cycle-accounting rows to this CSV file")
		list       = flag.Bool("list", false, "list workloads and exit")
		verbose    = flag.Bool("v", false, "print per-load profiles of the hottest loads")
		sampled    = flag.Bool("sampled", false, "sample: fast-forward with functional warming, simulate short detailed windows (schedule from -insts)")
		windows    = flag.Int("windows", 0, "with -sampled: detailed window count (0 = auto)")
		window     = flag.Uint64("window", 0, "with -sampled: instructions per detailed window (0 = auto)")
		capWorkers = flag.Int("capture-workers", 0, "goroutines per checkpoint capture, producer included (0 = GOMAXPROCS, 1 = sequential; results are bit-identical)")
		winWorkers = flag.Int("window-workers", 0, "concurrent detailed windows per sampled run (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	if *list {
		for _, w := range workload.All() {
			fmt.Printf("%-14s %s\n", w.Name, w.Pathology)
		}
		return 0
	}

	spec := sim.RunSpec{Workload: *name, Input: sim.InputRef, Insts: *insts, RS: *rs, ROB: *rob}
	if *sampled {
		s := sim.AutoSampling(*insts)
		if *windows > 0 {
			s.Count = *windows
		}
		if *window > 0 {
			s.Window = *window
		}
		// Keep the budget at -insts: the rest of each window's share is
		// continuous functional warming.
		per := *insts / uint64(s.Count)
		s.Warm = 0
		if per > s.Window {
			s.Warm = per - s.Window
		}
		spec.Insts = 0
		spec.Sampling = &s
	}
	switch *sched {
	case "ooo":
		spec.Sched = sim.SchedOOO
	case "random":
		spec.Sched = sim.SchedRandom
	case "perfect-bp":
		spec.Sched = sim.SchedOOO
		spec.PerfectBP = true
	case "ibda":
		spec = spec.WithIBDA(ibda.Config{ISTEntries: *ist, ISTWays: 4, DLTEntries: 32})
	case "crisp":
		spec = spec.WithCrisp(crisp.DefaultOptions())
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *sched)
		return 1
	}

	dir := *storeDir
	if dir == "" {
		dir = *cacheDir
	}
	var shardIndex, shardCount int
	if *shard != "" {
		var err error
		shardIndex, shardCount, err = runner.ParseShard(*shard)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crispsim:", err)
			return 2
		}
	}
	var remote runner.Remote
	if *server != "" {
		if dir != "" || *shard != "" {
			fmt.Fprintln(os.Stderr, "crispsim: -server excludes -store/-cache/-shard (the server owns the store)")
			return 2
		}
		remote = crispd.NewClient(*server)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	r, err := runner.New(ctx, runner.Options{
		Workers: 1, CacheDir: dir,
		CaptureWorkers: *capWorkers, WindowWorkers: *winWorkers,
		MetricsJSONL: *metricsOut, MetricsCSV: *metricsCSV,
		ShardIndex: shardIndex, ShardCount: shardCount,
		Remote: remote,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crispsim:", err)
		return 1
	}
	defer r.Close()

	if *cores != "" {
		return runMulti(ctx, r, spec, strings.Split(*cores, ","))
	}

	if spec.Crisp != nil {
		// Resolve (or load) the software pipeline first so its summary
		// prints before the timing run, as the two-phase flow runs it.
		a, err := r.Analysis(ctx, runner.AnalysisSpec{Workload: *name, Insts: *insts, Opts: *spec.Crisp})
		if err != nil {
			fmt.Fprintln(os.Stderr, "crispsim:", err)
			return 1
		}
		fmt.Printf("pipeline: %d delinquent loads, %d hard branches, %d critical PCs (%.1f%% dynamic)\n",
			len(a.DelinquentLoads), len(a.HardBranches),
			len(a.CriticalPCs), a.DynCriticalFraction*100)
	}

	res, err := r.Run(ctx, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crispsim:", err)
		return 1
	}

	fmt.Println(sim.Describe(*name+"/"+*sched, res))
	if res.SampledWindows > 0 {
		fmt.Printf("sampled: %d detailed windows (%d insts) + %d insts fast-forwarded; host %.0fms detailed + %.0fms capture\n",
			res.SampledWindows, res.Insts, res.FFInsts,
			float64(res.HostNS)/1e6, float64(res.HostFFNS)/1e6)
	}
	fmt.Printf("ROB head stalls %d (%.1f%% of cycles), fetch stalls %d, DRAM reads %d (avg %.0f cyc)\n",
		res.ROBHeadStalls, float64(res.ROBHeadStalls)/float64(res.Cycles)*100,
		res.FetchStallCycle, res.DRAMReads, res.DRAMAvgLat)
	printBreakdown(res)
	fmt.Printf("load latency mean %.0f cyc (p99 %d), dram latency mean %.0f cyc, mlp at miss %.1f, rob occupancy mean %.0f\n",
		res.Hists.LoadLat.Mean(), res.Hists.LoadLat.Quantile(0.99),
		res.Hists.DRAMLat.Mean(), res.Hists.MLPAtMiss.Mean(), res.Hists.OccROB.Mean())
	if res.IssuedCritical > 0 {
		fmt.Printf("critical issues %d, older-ready bypassed per issue %.1f\n",
			res.IssuedCritical, float64(res.QueueJumpSum)/float64(res.IssuedCritical))
	}

	if *verbose {
		type kv struct {
			pc int
			lp *core.LoadProf
		}
		var loads []kv
		for pc, lp := range res.Loads {
			loads = append(loads, kv{pc, lp})
		}
		sort.Slice(loads, func(i, j int) bool { return loads[i].lp.LLCMiss > loads[j].lp.LLCMiss })
		fmt.Println("hottest loads (by LLC misses):")
		for i, l := range loads {
			if i == 10 {
				break
			}
			fmt.Printf("  pc %4d: execs %7d llc-misses %6d (ratio %.2f) amat %5.0f mlp %.1f head-stall %d\n",
				l.pc, l.lp.Count, l.lp.LLCMiss, l.lp.LLCMissRatio(), l.lp.AMAT(), l.lp.AvgMLP(), l.lp.HeadStall)
		}
	}
	return 0
}

// printBreakdown prints one core's commit-slot split.
func printBreakdown(res *core.Result) {
	b := &res.Breakdown
	pct := func(v uint64) float64 { return float64(v) / float64(b.Total()) * 100 }
	fmt.Printf("slots: retired %.1f%%, frontend %.1f%%, branch %.1f%%, mem l1/llc/dram %.1f/%.1f/%.1f%%, core %.1f%%\n",
		b.CommittedFrac()*100,
		pct(b.Stalls[metrics.Frontend]), pct(b.Stalls[metrics.BranchRedirect]),
		pct(b.Stalls[metrics.MemL1]), pct(b.Stalls[metrics.MemLLC]), pct(b.Stalls[metrics.MemDRAM]),
		pct(b.Stalls[metrics.CoreROBFull]+b.Stalls[metrics.CoreRSFull]+b.Stalls[metrics.CoreLQFull]+
			b.Stalls[metrics.CoreSQFull]+b.Stalls[metrics.CorePort]+b.Stalls[metrics.CoreDep]+b.Stalls[metrics.CoreExec]))
}

// runMulti executes a co-scheduled multi-core run: names[i] on core i,
// with the command-line scheduler configuration applied to core 0 and
// every neighbour on the OOO baseline over the shared LLC and DRAM.
// With -sampled the lead clause's schedule lifts to the spec level —
// co-scheduling needs every core at the same window boundaries — and
// Validate rejects combinations the sampled path cannot honour (IBDA's
// runtime table marking spans windows) instead of silently running
// full detail.
func runMulti(ctx context.Context, r *runner.Runner, lead sim.RunSpec, names []string) int {
	mspec := sim.MultiSpec{Cores: make([]sim.RunSpec, len(names))}
	mspec.Sampling = lead.Sampling
	lead.Sampling = nil
	for i, n := range names {
		n = strings.TrimSpace(n)
		if i == 0 {
			mspec.Cores[i] = lead
			mspec.Cores[i].Workload = n
		} else {
			mspec.Cores[i] = sim.RunSpec{Workload: n, Input: sim.InputRef,
				Insts: lead.Insts, RS: lead.RS, ROB: lead.ROB}
		}
	}
	if err := mspec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "crispsim:", err)
		return 2
	}
	m, err := r.RunMulti(ctx, mspec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crispsim:", err)
		return 1
	}
	for i, res := range m.Cores {
		sched := "ooo"
		if i == 0 {
			sched = schedName(mspec.Cores[0])
		}
		fmt.Println(sim.Describe(fmt.Sprintf("core%d %s/%s", i, mspec.Cores[i].Workload, sched), res))
		printBreakdown(res)
	}
	llc, bw := m.LLCOccupancyShare(), m.DRAMBandwidthShare()
	fmt.Printf("shared llc: %d accesses, %d misses; per-core share", m.LLC.Accesses, m.LLC.Misses)
	for i := range m.Cores {
		fmt.Printf(" %.2f", llc.Share(i))
	}
	fmt.Printf("\nshared dram: %d reads, %d writes; bandwidth share", m.DRAM.Reads, m.DRAM.Writes)
	for i := range m.Cores {
		fmt.Printf(" %.2f", bw.Share(i))
	}
	fmt.Println()
	if m.SampledWindows > 0 {
		fmt.Printf("sampled: %d co-scheduled windows, %d insts fast-forwarded across cores; host %.0fms detailed + %.0fms capture\n",
			m.SampledWindows, m.FFInsts, float64(m.HostNS)/1e6, float64(m.HostFFNS)/1e6)
	}
	return 0
}

// schedName recovers the display name of the lead clause's scheduler.
func schedName(s sim.RunSpec) string {
	switch {
	case s.IBDA != nil:
		return "ibda"
	case s.Crisp != nil:
		return "crisp"
	case s.PerfectBP:
		return "perfect-bp"
	case s.Sched == sim.SchedRandom:
		return "random"
	default:
		return "ooo"
	}
}
