// Command crispsim runs one workload of the evaluation suite under a
// chosen scheduler configuration and prints the timing results — the
// quickest way to poke at the simulator.
//
// Usage:
//
//	crispsim -workload mcf -sched crisp -insts 500000
//	crispsim -workload lbm -sched ooo
//	crispsim -workload moses -sched ibda -ist 1024
//	crispsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/ibda"
	"crisp/internal/sim"
	"crisp/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "pointerchase", "workload name (-list to enumerate)")
		sched   = flag.String("sched", "crisp", "scheduler: ooo, crisp, random, ibda, perfect-bp")
		insts   = flag.Uint64("insts", 400_000, "instructions to simulate")
		ist     = flag.Int("ist", 1024, "IBDA instruction-slice-table entries (0 = infinite)")
		rs      = flag.Int("rs", 96, "reservation station entries")
		rob     = flag.Int("rob", 224, "reorder buffer entries")
		list    = flag.Bool("list", false, "list workloads and exit")
		verbose = flag.Bool("v", false, "print per-load profiles of the hottest loads")
	)
	flag.Parse()

	if *list {
		for _, w := range workload.All() {
			fmt.Printf("%-14s %s\n", w.Name, w.Pathology)
		}
		return
	}

	w := workload.ByName(*name)
	if w == nil {
		fmt.Fprintf(os.Stderr, "unknown workload %q; -list to enumerate\n", *name)
		os.Exit(1)
	}

	cfg := sim.DefaultConfig().WithWindow(*rs, *rob)
	cfg.Core.MaxInsts = *insts

	var res *core.Result
	switch *sched {
	case "ooo":
		res = sim.Run(w.Build(workload.Ref), cfg.WithSched(core.SchedOldestFirst))
	case "random":
		res = sim.Run(w.Build(workload.Ref), cfg.WithSched(core.SchedRandom))
	case "perfect-bp":
		c := cfg.WithSched(core.SchedOldestFirst)
		c.Core.PerfectBP = true
		res = sim.Run(w.Build(workload.Ref), c)
	case "ibda":
		c := cfg.WithSched(core.SchedCRISP)
		c.IBDA = &ibda.Config{ISTEntries: *ist, ISTWays: 4, DLTEntries: 32}
		res = sim.Run(w.Build(workload.Ref), c)
	case "crisp":
		pipe := sim.AnalyzeTrain(w.Build(workload.Train), w.Build(workload.Train), cfg, crisp.DefaultOptions())
		fmt.Printf("pipeline: %d delinquent loads, %d hard branches, %d critical PCs (%.1f%% dynamic)\n",
			len(pipe.Analysis.DelinquentLoads), len(pipe.Analysis.HardBranches),
			len(pipe.Analysis.CriticalPCs), pipe.Analysis.DynCriticalFraction*100)
		res = sim.Run(pipe.Tagged(w.Build(workload.Ref)), cfg.WithSched(core.SchedCRISP))
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *sched)
		os.Exit(1)
	}

	fmt.Println(sim.Describe(w.Name+"/"+*sched, res))
	fmt.Printf("ROB head stalls %d (%.1f%% of cycles), fetch stalls %d, DRAM reads %d (avg %.0f cyc)\n",
		res.ROBHeadStalls, float64(res.ROBHeadStalls)/float64(res.Cycles)*100,
		res.FetchStallCycle, res.DRAMReads, res.DRAMAvgLat)
	if res.IssuedCritical > 0 {
		fmt.Printf("critical issues %d, older-ready bypassed per issue %.1f\n",
			res.IssuedCritical, float64(res.QueueJumpSum)/float64(res.IssuedCritical))
	}

	if *verbose {
		type kv struct {
			pc int
			lp *core.LoadProf
		}
		var loads []kv
		for pc, lp := range res.Loads {
			loads = append(loads, kv{pc, lp})
		}
		sort.Slice(loads, func(i, j int) bool { return loads[i].lp.LLCMiss > loads[j].lp.LLCMiss })
		fmt.Println("hottest loads (by LLC misses):")
		for i, l := range loads {
			if i == 10 {
				break
			}
			fmt.Printf("  pc %4d: execs %7d llc-misses %6d (ratio %.2f) amat %5.0f mlp %.1f head-stall %d\n",
				l.pc, l.lp.Count, l.lp.LLCMiss, l.lp.LLCMissRatio(), l.lp.AMAT(), l.lp.AvgMLP(), l.lp.HeadStall)
		}
	}
}
