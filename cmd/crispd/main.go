// Command crispd serves simulations over HTTP: a long-lived job server
// in front of the shared result store, so any number of crispsim or
// experiments clients (-server URL) sweep against one worker pool and
// each distinct spec simulates once globally.
//
// Usage:
//
//	crispd -store /var/crisp/store -listen :8080
//	crispd -store S -workers 16 -queue 256
//	crispd -store S -pprof localhost:6060   # profiling side listener
//
// Endpoints (see internal/crispd and DESIGN.md):
//
//	POST /v1/runs[?wait=1&timeout=30s]   submit a sim.RunSpec
//	POST /v1/multi                       submit a sim.MultiSpec
//	POST /v1/analyses, /v1/footprints    submit a runner.AnalysisSpec
//	POST /v1/sweeps                      submit a spec batch atomically
//	GET  /v1/runs/{key}                  job status + result
//	GET  /v1/runs/{key}/events           progress stream (SSE or JSONL)
//	GET  /v1/statsz, /healthz            counters, liveness
//
// On SIGINT/SIGTERM the server drains: it stops accepting submissions
// (503), finishes and persists in-flight jobs, then exits; a second
// signal cancels the in-flight jobs instead of waiting (their file
// locks are still released on the way out). -drain-timeout bounds the
// graceful phase.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"crisp/internal/crispd"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen       = flag.String("listen", ":8080", "address to serve the job API on")
		storeDir     = flag.String("store", "", "shared persistent result store directory (strongly recommended: without it a restart loses all results)")
		workers      = flag.Int("workers", runtime.NumCPU(), "max concurrent simulations")
		capWorkers   = flag.Int("capture-workers", 0, "goroutines per checkpoint capture, producer included (0 = GOMAXPROCS, 1 = sequential; results are bit-identical)")
		winWorkers   = flag.Int("window-workers", 0, "concurrent detailed windows per sampled run (0 = GOMAXPROCS, 1 = sequential)")
		queue        = flag.Int("queue", 256, "max jobs queued or running before submissions get 429")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Minute, "how long to let in-flight jobs finish on SIGTERM before cancelling them")
		metricsOut   = flag.String("metrics", "", "append per-run cycle-accounting records to this JSONL file")
		metricsCSV   = flag.String("metrics-csv", "", "append per-run cycle-accounting rows to this CSV file")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060); keep it off the public listener")
	)
	flag.Parse()

	// The profiling endpoints live on their own listener with their own
	// mux: the job API's mux never grows /debug/pprof/* routes, so an
	// internet-facing -listen cannot leak profiles, and a wedged job
	// queue cannot block profile scrapes.
	if *pprofAddr != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				fmt.Fprintln(os.Stderr, "crispd: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "crispd: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	s, err := crispd.New(context.Background(), crispd.Options{
		Store:          *storeDir,
		Workers:        *workers,
		CaptureWorkers: *capWorkers,
		WindowWorkers:  *winWorkers,
		Queue:          *queue,
		MetricsJSONL:   *metricsOut,
		MetricsCSV:     *metricsCSV,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crispd:", err)
		return 1
	}
	defer s.Close()

	hs := &http.Server{Addr: *listen, Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	store := *storeDir
	if store == "" {
		store = "(none: results are not persisted)"
	}
	fmt.Fprintf(os.Stderr, "crispd: listening on %s, store %s, %d workers, queue %d\n",
		*listen, store, *workers, *queue)

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "crispd:", err)
		return 1
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "crispd: %s: draining (in-flight jobs finish and persist; signal again to cancel them)\n", sig)
	}

	// A second signal forces the drain by cancelling the in-flight jobs;
	// their cleanup (lock release, store state) still runs.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelDrain()
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "crispd: second signal: cancelling in-flight jobs")
		s.Abort()
	}()

	drainErr := s.Drain(drainCtx)

	// Stop the HTTP listener after the drain so status polls and event
	// streams keep working while jobs finish.
	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	hs.Shutdown(shutCtx) //nolint:errcheck // exiting either way

	if drainErr != nil && !errors.Is(drainErr, context.Canceled) {
		fmt.Fprintln(os.Stderr, "crispd: drain:", drainErr)
		return 1
	}
	fmt.Fprintln(os.Stderr, "crispd: drained cleanly")
	return 0
}
