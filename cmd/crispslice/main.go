// Command crispslice runs only the software side of CRISP — profiling,
// tracing, delinquent-load classification, and slice extraction — and
// dumps what would be tagged, including the disassembled slices. This is
// the tool of Figure 5 steps (2) and (3).
//
// Usage:
//
//	crispslice -workload mcf
//	crispslice -workload lbm -insts 200000 -T 0.002
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"crisp/internal/crisp"
	"crisp/internal/sim"
	"crisp/internal/workload"
)

func main() {
	var (
		name   = flag.String("workload", "pointerchase", "workload name")
		insts  = flag.Uint64("insts", 300_000, "instructions to profile/trace")
		thresh = flag.Float64("T", 0.01, "miss-share criticality threshold (Figure 10)")
		noCPF  = flag.Bool("no-filter", false, "disable critical-path filtering (IBDA-style whole slices)")
	)
	flag.Parse()

	w := workload.ByName(*name)
	if w == nil {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *name)
		os.Exit(1)
	}

	cfg := sim.DefaultConfig()
	cfg.Core.MaxInsts = *insts
	opts := crisp.DefaultOptions()
	opts.MissShareThreshold = *thresh
	opts.FilterCriticalPath = !*noCPF

	pipe := sim.AnalyzeTrain(w.Build(workload.Train), w.Build(workload.Train), cfg, opts)
	a := pipe.Analysis
	prog := w.Build(workload.Train).Prog

	fmt.Printf("workload %s: profiled %d instructions, IPC %.3f, LLC MPKI %.2f\n",
		w.Name, pipe.Profile.Insts, pipe.Profile.IPC(), pipe.Profile.LLCMPKI())
	fmt.Printf("delinquent loads: %v\n", a.DelinquentLoads)
	fmt.Printf("hard branches:    %v\n", a.HardBranches)
	fmt.Printf("avg load-slice dynamic length: %.1f (Figure 4 metric)\n", a.AvgLoadSliceDynLen)
	fmt.Printf("critical: %d static PCs, %.1f%% of dynamic instructions\n\n",
		len(a.CriticalPCs), a.DynCriticalFraction*100)

	dumpSlices := func(kind string, slices map[int][]int) {
		var roots []int
		for pc := range slices {
			roots = append(roots, pc)
		}
		sort.Ints(roots)
		for _, root := range roots {
			fmt.Printf("%s slice rooted at pc %d (%s):\n", kind, root, prog.Insts[root].String())
			for _, pc := range slices[root] {
				marker := " "
				if pc == root {
					marker = "*"
				}
				fmt.Printf("  %s pc %4d: %s\n", marker, pc, prog.Insts[pc].String())
			}
		}
	}
	dumpSlices("load", a.LoadSlices)
	dumpSlices("branch", a.BranchSlices)

	fmt.Printf("\nfootprint: static %+.2f%%, dynamic %+.2f%% (Figure 12 metrics)\n",
		pipe.Footprint.StaticOverhead()*100, pipe.Footprint.DynOverhead()*100)
}
