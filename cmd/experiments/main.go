// Command experiments regenerates the paper's tables and figures on the
// simulated system. Each figure prints an aligned text table (use -csv for
// machine-readable output).
//
// Usage:
//
//	experiments -all                 # every table and figure
//	experiments -fig 7               # one figure
//	experiments -fig 9 -insts 1e6    # bigger instruction budget
//	experiments -fig 7 -only mcf,lbm # subset of the suite
//	experiments -fig 7 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"crisp/internal/harness"
	"crisp/internal/sim"
)

func main() {
	var (
		fig        = flag.String("fig", "", "figure to run: 1, 4, 7, 8, 9, 10, 11, 12, 3.1, pf")
		table      = flag.String("table", "", "table to run: 1")
		all        = flag.Bool("all", false, "run every experiment")
		insts      = flag.Uint64("insts", 400_000, "instructions simulated per run")
		only       = flag.String("only", "", "comma-separated workload subset")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if !*all && *fig == "" && *table == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	lab := harness.NewLab(*insts)
	if *only != "" {
		lab.Only = strings.Split(*only, ",")
	}

	emit := func(t *harness.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.Format())
		}
		fmt.Println()
	}

	run := func(f func() *harness.Table) {
		start := time.Now()
		t := f()
		if !*csv {
			t.Notes = append(t.Notes, fmt.Sprintf("elapsed %.1fs at %d insts/run", time.Since(start).Seconds(), *insts))
			if n := harness.HostThroughputNote(); n != "" {
				t.Notes = append(t.Notes, n)
			}
		}
		emit(t)
	}

	wantFig := func(name string) bool { return *all || *fig == name }

	if *all || *table == "1" {
		fmt.Print(lab.Table1())
		fmt.Println()
	}
	if wantFig("1") {
		run(func() *harness.Table { return lab.Figure1Skip(200, 60, 400) })
	}
	if wantFig("3.1") {
		run(lab.Section31)
	}
	if wantFig("4") {
		run(lab.Figure4)
	}
	if wantFig("7") {
		run(lab.Figure7)
	}
	if wantFig("8") {
		run(lab.Figure8)
	}
	if wantFig("9") {
		run(lab.Figure9)
	}
	if wantFig("10") {
		run(lab.Figure10)
	}
	if wantFig("11") {
		run(lab.Figure11)
	}
	if wantFig("12") {
		run(lab.Figure12)
	}
	if wantFig("pf") {
		run(lab.PrefetcherSensitivity)
	}

	if simInsts, simNS := sim.HostTotals(); simNS > 0 && !*csv {
		fmt.Printf("# host throughput: %.2f simulated MIPS (%d insts in %.1fs of core.Run)\n",
			float64(simInsts)*1e3/float64(simNS), simInsts, float64(simNS)/1e9)
	}
}
