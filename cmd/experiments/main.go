// Command experiments regenerates the paper's tables and figures on the
// simulated system. Each figure prints an aligned text table (use -csv for
// machine-readable output).
//
// Every requested figure's simulations are submitted to one shared
// worker pool up front: identical runs (the OOO baselines and train
// profiles that Figures 7, 8, 10, 12 and the prefetcher study share) are
// executed once, and -j bounds the parallelism. With -store (alias
// -cache), results are persisted keyed by spec hash + code version and
// sampled-simulation checkpoint sets are persisted in a binary codec, so
// an interrupted sweep (Ctrl-C, -timeout) resumes where it stopped and a
// repeated invocation completes from the store in seconds.
//
// The store is safe to share between concurrent processes: advisory
// file locks guarantee each spec simulates and each checkpoint schedule
// fast-forwards once globally. -shard i/n splits one figure's spec list
// deterministically across n such processes — launch n invocations of
// the same command line with -shard 0/n .. (n-1)/n against one -store
// and each computes its share while reading the rest from the store, so
// every process still prints the complete (identical) figure output.
//
// Usage:
//
//	experiments -all                 # every table and figure
//	experiments -all -j 8 -store .crisp-store
//	experiments -fig 7               # one figure
//	experiments -fig 9 -insts 1e6    # bigger instruction budget
//	experiments -fig 7 -only mcf,lbm # subset of the suite
//	experiments -fig 7 -store S -shard 0/2 &   # two-process scale-out
//	experiments -fig 7 -store S -shard 1/2
//	experiments -fig 7 -server http://sweepbox:8080   # crispd job server
//	experiments -fig 7 -cpuprofile cpu.out -memprofile mem.out
//
// -server delegates every simulation to a crispd job server: the server
// owns the store and dedups submissions across all connected clients,
// so n harness processes pointed at one server cost each spec once —
// like -shard, but without pre-partitioning the spec list.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"crisp/internal/crispd"
	"crisp/internal/harness"
	"crisp/internal/runner"
	"crisp/internal/sim"
)

func main() {
	// Exit via a named function so deferred cleanups (profile flushes,
	// progress-line teardown) run; os.Exit in the flag-error paths used
	// to skip them and truncate CPU profiles.
	os.Exit(run())
}

func run() int {
	var (
		fig        = flag.String("fig", "", "figure to run: 1, 4, 7, 8, 9, 10, 11, 12, 3.1, pf, cycles, sampling, colocate, colocate-sampled")
		table      = flag.String("table", "", "table to run: 1")
		all        = flag.Bool("all", false, "run every experiment")
		insts      = flag.Uint64("insts", 400_000, "instructions simulated per run")
		only       = flag.String("only", "", "comma-separated workload subset")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jobs       = flag.Int("j", runtime.NumCPU(), "max concurrent simulations")
		capWorkers = flag.Int("capture-workers", 0, "goroutines per checkpoint capture, producer included (0 = GOMAXPROCS, 1 = sequential; results are bit-identical)")
		winWorkers = flag.Int("window-workers", 0, "concurrent detailed windows per sampled run (0 = GOMAXPROCS, 1 = sequential)")
		storeDir   = flag.String("store", "", "persist results and checkpoint sets in this directory, shared safely between processes")
		cacheDir   = flag.String("cache", "", "alias for -store (older name)")
		shard      = flag.String("shard", "", "run as shard i/n of a multi-process sweep over one -store (e.g. 0/2)")
		server     = flag.String("server", "", "delegate simulations to a crispd job server at this URL; excludes -store/-cache/-shard")
		metricsOut = flag.String("metrics", "", "append per-run cycle-accounting records to this JSONL file")
		metricsCSV = flag.String("metrics-csv", "", "append per-run cycle-accounting rows to this CSV file")
		timeout    = flag.Duration("timeout", 0, "abort the sweep after this long (0 = no limit)")
		progress   = flag.Bool("progress", true, "print a progress line to stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if !*all && *fig == "" && *table == "" {
		flag.Usage()
		return 2
	}

	var onlyNames []string
	if *only != "" {
		onlyNames = strings.Split(*only, ",")
		if err := runner.ValidateWorkloads(onlyNames); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
	}

	dir := *storeDir
	if dir == "" {
		dir = *cacheDir
	}
	var shardIndex, shardCount int
	if *shard != "" {
		var err error
		shardIndex, shardCount, err = runner.ParseShard(*shard)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	// Ctrl-C cancels the sweep mid-simulation; with -cache the completed
	// runs are already persisted and the next invocation resumes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var remote runner.Remote
	if *server != "" {
		if dir != "" || *shard != "" {
			fmt.Fprintln(os.Stderr, "experiments: -server excludes -store/-cache/-shard (the server owns the store)")
			return 2
		}
		remote = crispd.NewClient(*server)
	}

	r, err := runner.New(ctx, runner.Options{
		Workers: *jobs, CacheDir: dir,
		CaptureWorkers: *capWorkers, WindowWorkers: *winWorkers,
		MetricsJSONL: *metricsOut, MetricsCSV: *metricsCSV,
		ShardIndex: shardIndex, ShardCount: shardCount,
		Remote: remote,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}
	defer r.Close()
	lab := harness.NewLabWithRunner(*insts, r)
	lab.Only = onlyNames
	lab.HostNotes = !*csv

	wantFig := func(name string) bool { return *all || *fig == name }

	// Phase 1: generate. Each figure submits its whole spec set to the
	// shared pool; nothing is waited on yet, so -all saturates the pool
	// across figure boundaries instead of running one figure at a time.
	type pendingFigure struct {
		p     *harness.Pending
		start time.Time
	}
	var figures []pendingFigure
	for _, f := range []struct {
		name  string
		build func() *harness.Pending
	}{
		{"1", func() *harness.Pending { return lab.Figure1Skip(200, 60, 400) }},
		{"3.1", lab.Section31},
		{"4", lab.Figure4},
		{"7", lab.Figure7},
		{"8", lab.Figure8},
		{"9", lab.Figure9},
		{"10", lab.Figure10},
		{"11", lab.Figure11},
		{"12", lab.Figure12},
		{"pf", lab.PrefetcherSensitivity},
		{"cycles", lab.CycleAccounting},
		{"sampling", lab.SamplingValidation},
		{"colocate", lab.Colocate},
		{"colocate-sampled", lab.ColocateSampled},
	} {
		if wantFig(f.name) {
			figures = append(figures, pendingFigure{p: f.build(), start: time.Now()})
		}
	}

	stopProgress := func() {}
	if *progress && len(figures) > 0 {
		stopProgress = startProgress(r)
	}
	defer stopProgress()

	if *all || *table == "1" {
		fmt.Print(lab.Table1())
		fmt.Println()
	}

	// Phase 2: resolve and print in presentation order.
	for _, pf := range figures {
		t, err := pf.p.Table(ctx)
		if err != nil {
			stopProgress()
			fmt.Fprintln(os.Stderr, "experiments:", err)
			if ctx.Err() != nil && dir != "" {
				fmt.Fprintf(os.Stderr, "experiments: completed runs are cached in %s; re-run to resume\n", dir)
			}
			return 1
		}
		if !*csv {
			t.Notes = append(t.Notes, fmt.Sprintf("elapsed %.1fs at %d insts/run", time.Since(pf.start).Seconds(), *insts))
			if n := harness.HostThroughputNote(); n != "" {
				t.Notes = append(t.Notes, n)
			}
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.Format())
		}
		fmt.Println()
	}
	stopProgress()

	if simInsts, simNS := sim.HostTotals(); simNS > 0 && !*csv {
		fmt.Printf("# host throughput: %.2f simulated MIPS (%d insts in %.1fs of core.Run)\n",
			float64(simInsts)*1e3/float64(simNS), simInsts, float64(simNS)/1e9)
	}
	if ffInsts, ffNS := sim.HostFFTotals(); ffNS > 0 && !*csv {
		fmt.Printf("# fast-forward: %.2f functional MIPS (%d insts in %.1fs of checkpoint capture)\n",
			float64(ffInsts)*1e3/float64(ffNS), ffInsts, float64(ffNS)/1e9)
	}
	if s := r.Stats(); !*csv && (s.DiskHits > 0 || s.CkptDiskHits > 0 || s.LockWaitNS > 0) {
		fmt.Printf("# store: %d results loaded from %s, %d simulations executed\n",
			s.DiskHits, dir, s.Executed)
		fmt.Printf("# store: %d checkpoint sets captured, %d loaded from disk, %.2fs blocked on cross-process locks\n",
			s.CkptCaptured, s.CkptDiskHits, float64(s.LockWaitNS)/1e9)
	}
	if s := r.Stats(); !*csv && s.RemoteRuns > 0 {
		fmt.Printf("# server: %d tasks resolved by %s\n", s.RemoteRuns, *server)
	}
	return 0
}

// startProgress prints a live "done/started" job counter to stderr until
// the returned stop function is called.
func startProgress(r *runner.Runner) func() {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				fmt.Fprintf(os.Stderr, "\r%60s\r", "")
				return
			case <-tick.C:
				s := r.Stats()
				fmt.Fprintf(os.Stderr, "\r%d/%d jobs done (%d simulated, %d from cache)   ",
					s.Done, s.Started, s.Executed, s.DiskHits)
			}
		}
	}()
	var once bool
	return func() {
		if !once {
			once = true
			close(done)
			<-finished
		}
	}
}
