// Package repro's benchmarks regenerate every table and figure of the
// paper's evaluation (Section 5) as testing.B benchmarks, one per
// experiment, plus ablation benches for the design choices called out in
// DESIGN.md. Each benchmark iteration runs the full experiment at a
// reduced (but representative) instruction budget and reports the headline
// metric via b.ReportMetric, so `go test -bench` output doubles as a
// results table.
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"crisp/internal/cache"
	"crisp/internal/checkpoint"
	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/emu"
	"crisp/internal/harness"
	"crisp/internal/prefetch"
	"crisp/internal/program"
	"crisp/internal/runner"
	"crisp/internal/sim"
	"crisp/internal/workload"
)

// benchInsts is the per-run instruction budget for benchmarks. The
// experiments command defaults to a larger budget; results track closely.
const benchInsts = 200_000

func newLab() *harness.Lab { return harness.NewLab(benchInsts) }

// BenchmarkTable1_Config renders the simulated-system table.
func BenchmarkTable1_Config(b *testing.B) {
	l := newLab()
	for i := 0; i < b.N; i++ {
		if len(l.Table1()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig1_UPCTimeline regenerates the Figure 1 microbenchmark UPC
// comparison and reports the CRISP-over-OOO mean-UPC gain.
func BenchmarkFig1_UPCTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l := newLab()
		t := l.Figure1Skip(200, 60, 300).MustTable()
		if len(t.Rows) == 0 {
			b.Fatal("no UPC windows")
		}
	}
	reportFigureGain(b, "fig1")
}

// BenchmarkSec31_MotivatingKernel reproduces the Section 3.1 measurement.
func BenchmarkSec31_MotivatingKernel(b *testing.B) {
	var gainPct float64
	for i := 0; i < b.N; i++ {
		t := newLab().Section31().MustTable()
		gainPct = (t.Rows[1].Cells[0]/t.Rows[0].Cells[0] - 1) * 100
	}
	b.ReportMetric(gainPct, "ipc_gain_%")
}

// BenchmarkFig4_SliceSizes regenerates the average-load-slice-size figure.
func BenchmarkFig4_SliceSizes(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		t := newLab().Figure4().MustTable()
		sum := 0.0
		for _, r := range t.Rows {
			sum += r.Cells[0]
		}
		mean = sum / float64(len(t.Rows))
	}
	b.ReportMetric(mean, "avg_slice_insts")
}

// BenchmarkFig7_CRISPvsIBDA regenerates the headline comparison and
// reports the CRISP and IBDA-1K geomean IPC gains.
func BenchmarkFig7_CRISPvsIBDA(b *testing.B) {
	var crispGeo, ibdaGeo float64
	for i := 0; i < b.N; i++ {
		t := newLab().Figure7().MustTable()
		crispGeo = t.GeoMeanGain(0)
		ibdaGeo = t.GeoMeanGain(1)
	}
	b.ReportMetric(crispGeo, "crisp_geomean_%")
	b.ReportMetric(ibdaGeo, "ibda1k_geomean_%")
}

// BenchmarkFig8_SliceKinds regenerates the load/branch/combined-slice
// comparison and reports the combined geomean.
func BenchmarkFig8_SliceKinds(b *testing.B) {
	var loadGeo, branchGeo, bothGeo float64
	for i := 0; i < b.N; i++ {
		t := newLab().Figure8().MustTable()
		loadGeo, branchGeo, bothGeo = t.GeoMeanGain(0), t.GeoMeanGain(1), t.GeoMeanGain(2)
	}
	b.ReportMetric(loadGeo, "load_only_%")
	b.ReportMetric(branchGeo, "branch_only_%")
	b.ReportMetric(bothGeo, "combined_%")
}

// BenchmarkFig9_WindowSensitivity regenerates the RS/ROB sweep and reports
// the geomean gain at the largest window.
func BenchmarkFig9_WindowSensitivity(b *testing.B) {
	var small, base, big float64
	for i := 0; i < b.N; i++ {
		t := newLab().Figure9().MustTable()
		small, base, big = t.GeoMeanGain(0), t.GeoMeanGain(1), t.GeoMeanGain(3)
	}
	b.ReportMetric(small, "64rs180rob_%")
	b.ReportMetric(base, "96rs224rob_%")
	b.ReportMetric(big, "192rs448rob_%")
}

// BenchmarkFig10_MissThreshold regenerates the threshold study.
func BenchmarkFig10_MissThreshold(b *testing.B) {
	var t5, t1, t02 float64
	for i := 0; i < b.N; i++ {
		t := newLab().Figure10().MustTable()
		t5, t1, t02 = t.GeoMeanGain(0), t.GeoMeanGain(1), t.GeoMeanGain(2)
	}
	b.ReportMetric(t5, "T5pct_%")
	b.ReportMetric(t1, "T1pct_%")
	b.ReportMetric(t02, "T0.2pct_%")
}

// BenchmarkFig11_CriticalCounts regenerates the unique-critical counts and
// reports the maximum (the paper highlights the 10k+ apps).
func BenchmarkFig11_CriticalCounts(b *testing.B) {
	var maxCrit float64
	for i := 0; i < b.N; i++ {
		t := newLab().Figure11().MustTable()
		maxCrit = 0
		for _, r := range t.Rows {
			if r.Cells[0] > maxCrit {
				maxCrit = r.Cells[0]
			}
		}
	}
	b.ReportMetric(maxCrit, "max_critical_pcs")
}

// BenchmarkFig12_PrefixOverhead regenerates the footprint-overhead figure
// and reports the mean dynamic overhead (paper: ~5.2% average).
func BenchmarkFig12_PrefixOverhead(b *testing.B) {
	var dyn, icache float64
	for i := 0; i < b.N; i++ {
		t := newLab().Figure12().MustTable()
		var sd, si float64
		for _, r := range t.Rows {
			sd += r.Cells[1]
			si += r.Cells[2]
		}
		dyn = sd / float64(len(t.Rows))
		icache = si / float64(len(t.Rows))
	}
	b.ReportMetric(dyn, "dyn_overhead_%")
	b.ReportMetric(icache, "icache_mpki_delta_%")
}

// reportFigureGain runs the pointer-chase pair once and reports the gain;
// helper for the Figure 1 bench.
func reportFigureGain(b *testing.B, _ string) {
	w := workload.ByName("pointerchase")
	cfg := sim.DefaultConfig()
	cfg.Core.MaxInsts = benchInsts
	pipe := sim.AnalyzeTrain(w.Build(workload.Train), w.Build(workload.Train), cfg, crisp.DefaultOptions())
	base := sim.Run(w.Build(workload.Ref), cfg.WithSched(core.SchedOldestFirst))
	cr := sim.Run(pipe.Tagged(w.Build(workload.Ref)), cfg.WithSched(core.SchedCRISP))
	b.ReportMetric((cr.IPC()/base.IPC()-1)*100, "upc_gain_%")
}

// ---------------------------------------------------------------
// Ablation benchmarks for the DESIGN.md design choices.
// ---------------------------------------------------------------

func runSched(b *testing.B, name string, sched core.SchedulerKind, tagged bool) float64 {
	b.Helper()
	w := workload.ByName(name)
	cfg := sim.DefaultConfig()
	cfg.Core.MaxInsts = benchInsts
	img := w.Build(workload.Ref)
	if tagged {
		pipe := sim.AnalyzeTrain(w.Build(workload.Train), w.Build(workload.Train), cfg, crisp.DefaultOptions())
		img = pipe.Tagged(img)
	}
	return sim.Run(img, cfg.WithSched(sched)).IPC()
}

// BenchmarkAblation_SchedulerPolicies compares random, age-ordered, and
// CRISP selection on the multi-chain chase (design decision 2).
func BenchmarkAblation_SchedulerPolicies(b *testing.B) {
	var rnd, ooo, cr float64
	for i := 0; i < b.N; i++ {
		rnd = runSched(b, "mcf", core.SchedRandom, false)
		ooo = runSched(b, "mcf", core.SchedOldestFirst, false)
		cr = runSched(b, "mcf", core.SchedCRISP, true)
	}
	b.ReportMetric(rnd, "random_ipc")
	b.ReportMetric(ooo, "oldest_ipc")
	b.ReportMetric(cr, "crisp_ipc")
}

// BenchmarkAblation_CriticalPathFilter compares tagging whole slices
// against critical-path-filtered slices (design decision 4).
func BenchmarkAblation_CriticalPathFilter(b *testing.B) {
	l := newLab()
	l.Only = []string{"perlbench", "moses", "xalancbmk"}
	var filt, unfilt float64
	for i := 0; i < b.N; i++ {
		w := func(filter bool) float64 {
			opts := crisp.DefaultOptions()
			opts.FilterCriticalPath = filter
			prod := 1.0
			for _, name := range l.Only {
				wl := workload.ByName(name)
				base := l.Baseline(wl)
				cr := l.RunCRISP(wl, opts)
				prod *= cr.IPC() / base.IPC()
			}
			return (prod - 1) * 100
		}
		filt = w(true)
		unfilt = w(false)
	}
	b.ReportMetric(filt, "filtered_%")
	b.ReportMetric(unfilt, "unfiltered_%")
}

// BenchmarkAblation_MemoryDependencies compares the slicer with and
// without store-to-load dependency edges on namd, whose gather addresses
// pass through memory (design decision 3). Without memory dependencies the
// extracted slices lose the address chain, as register-only IBDA does.
func BenchmarkAblation_MemoryDependencies(b *testing.B) {
	var withMem, ibdaGain float64
	for i := 0; i < b.N; i++ {
		l := newLab()
		w := workload.ByName("namd")
		base := l.Baseline(w)
		cr := l.RunCRISP(w, crisp.DefaultOptions())
		ib := l.RunIBDA(w, 0, 0) // infinite IST, still register-only
		withMem = (cr.IPC()/base.IPC() - 1) * 100
		ibdaGain = (ib.IPC()/base.IPC() - 1) * 100
	}
	b.ReportMetric(withMem, "crisp_memdeps_%")
	b.ReportMetric(ibdaGain, "ibda_reg_only_%")
}

// BenchmarkAblation_PerfectBranchPrediction measures how much branch
// mispredictions cap CRISP's load-slice gains (the Section 5.3
// observation that motivated branch slices).
func BenchmarkAblation_PerfectBranchPrediction(b *testing.B) {
	var tage, perfect float64
	for i := 0; i < b.N; i++ {
		w := workload.ByName("lbm")
		cfg := sim.DefaultConfig()
		cfg.Core.MaxInsts = benchInsts
		opts := crisp.DefaultOptions()
		opts.BranchSlices = false
		pipe := sim.AnalyzeTrain(w.Build(workload.Train), w.Build(workload.Train), cfg, opts)

		base := sim.Run(w.Build(workload.Ref), cfg.WithSched(core.SchedOldestFirst))
		cr := sim.Run(pipe.Tagged(w.Build(workload.Ref)), cfg.WithSched(core.SchedCRISP))
		tage = (cr.IPC()/base.IPC() - 1) * 100

		pcfg := cfg
		pcfg.Core.PerfectBP = true
		pbase := sim.Run(w.Build(workload.Ref), pcfg.WithSched(core.SchedOldestFirst))
		pcr := sim.Run(pipe.Tagged(w.Build(workload.Ref)), pcfg.WithSched(core.SchedCRISP))
		perfect = (pcr.IPC()/pbase.IPC() - 1) * 100
	}
	b.ReportMetric(tage, "loadslices_tage_%")
	b.ReportMetric(perfect, "loadslices_perfectbp_%")
}

// BenchmarkCoreThroughput measures raw simulator speed (simulated
// instructions per second) on the mcf kernel.
func BenchmarkCoreThroughput(b *testing.B) {
	w := workload.ByName("mcf")
	cfg := sim.DefaultConfig()
	cfg.Core.MaxInsts = benchInsts
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		res := sim.Run(w.Build(workload.Ref), cfg)
		insts += res.Insts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim_insts/s")
}

// BenchmarkHostThroughput measures host-side simulator efficiency:
// simulated MIPS, host nanoseconds per simulated instruction, heap
// allocations per simulated instruction and the fraction of simulated
// cycles covered by next-event idle skipping, all from the Result's own
// host counters. pointerchase is the latency-bound acceptance workload of
// the earlier host-throughput work; mcf is the memory-bound mem_dram
// golden config the idle-skipping acceptance bar is measured on.
func BenchmarkHostThroughput(b *testing.B) {
	for _, name := range []string{"pointerchase", "mcf"} {
		b.Run(name, func(b *testing.B) {
			w := workload.ByName(name)
			cfg := sim.DefaultConfig()
			cfg.Core.MaxInsts = benchInsts
			b.ReportAllocs()
			b.ResetTimer()
			var insts, cycles, skipped, hostNS, hostAllocs uint64
			for i := 0; i < b.N; i++ {
				res := sim.Run(w.Build(workload.Ref), cfg)
				insts += res.Insts
				cycles += res.Cycles
				skipped += res.SkippedCycles
				hostNS += uint64(res.HostNS)
				hostAllocs += res.HostAllocs
			}
			b.ReportMetric(float64(insts)*1e3/float64(hostNS), "sim_MIPS")
			b.ReportMetric(float64(hostNS)/float64(insts), "host_ns/inst")
			b.ReportMetric(float64(hostAllocs)/float64(insts), "allocs/inst")
			b.ReportMetric(float64(skipped)/float64(cycles), "skipped_frac")
		})
	}
}

// BenchmarkHostThroughputMulticore measures how simulator throughput
// scales with co-scheduled cores: 1, 2 and 4 cores stepped in lockstep
// over one shared LLC and DRAM, alternating the co-location pair
// (tailchase on even cores, streambatch on odd). Reported per width:
// aggregate simulated MIPS across all cores and the skipped-cycle
// fraction — lockstep merges idle skips across cores (the clock jumps
// only to the minimum proven target), so the fraction dropping with
// width quantifies what contention-visible co-scheduling costs the PR 5
// fast path. The summary lands in BENCH_multicore.json.
func BenchmarkHostThroughputMulticore(b *testing.B) {
	pair := []string{"tailchase", "streambatch"}
	type leg struct {
		mips, skippedFrac float64
	}
	legs := map[string]leg{}
	for _, n := range []int{1, 2, 4} {
		n := n
		b.Run(fmt.Sprintf("%dcore", n), func(b *testing.B) {
			var insts, cycles, skipped, hostNS uint64
			for i := 0; i < b.N; i++ {
				imgs := make([]*sim.Image, n)
				cfgs := make([]sim.Config, n)
				for c := 0; c < n; c++ {
					imgs[c] = workload.ByName(pair[c%2]).Build(workload.Ref)
					cfgs[c] = sim.DefaultConfig()
					cfgs[c].Core.MaxInsts = benchInsts
				}
				m, err := sim.RunMulti(imgs, cfgs)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range m.Cores {
					insts += r.Insts
					cycles += r.Cycles
					skipped += r.SkippedCycles
				}
				hostNS += uint64(m.HostNS)
			}
			mips := float64(insts) * 1e3 / float64(hostNS)
			frac := float64(skipped) / float64(cycles)
			b.ReportMetric(mips, "sim_MIPS")
			b.ReportMetric(frac, "skipped_frac")
			legs[fmt.Sprintf("%dcore", n)] = leg{mips: mips, skippedFrac: frac}
		})
	}
	if len(legs) < 3 {
		return // a -bench filter skipped a width; nothing to summarize
	}
	summary := map[string]any{
		"pair":           pair,
		"insts_per_core": benchInsts,
	}
	for k, l := range legs {
		summary[k+"_sim_MIPS"] = l.mips
		summary[k+"_skipped_frac"] = l.skippedFrac
	}
	out, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_multicore.json", append(out, '\n'), 0o644); err != nil {
		b.Logf("BENCH_multicore.json not written: %v", err)
	}
	b.Logf("multicore summary: %s", out)
}

// BenchmarkHostThroughputFastForward measures the functional
// fast-forward rate (emulation only, no core timing) on the same
// workload as BenchmarkHostThroughput, so the two MIPS numbers are
// directly comparable. The ISSUE targets a >=10x ratio.
func BenchmarkHostThroughputFastForward(b *testing.B) {
	w := workload.ByName("pointerchase")
	const ffInsts = 5 * benchInsts
	b.ResetTimer()
	var insts uint64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		img := w.Build(workload.Ref)
		e := emu.New(img.Prog, img.Mem)
		for r, v := range img.Regs {
			e.SetReg(r, v)
		}
		insts += e.FastForward(ffInsts, nil)
	}
	b.ReportMetric(float64(insts)*1e3/float64(time.Since(start).Nanoseconds()), "ff_MIPS")
}

// BenchmarkHostThroughputSampledSweep measures the headline savings of
// sampled simulation on a 4-config, 5M-instruction mcf sweep (default
// OOO, random scheduler, no prefetcher, stride prefetcher), in three
// regimes:
//
//   - full_detail: every config simulated in full detail (the baseline
//     the earlier >=5x sampling bar is measured against);
//   - cold_store: first process against an empty checkpoint store —
//     functional fast-forward capture, persist, then the detailed
//     windows per config;
//   - warm_store: second process against the store the cold sweep
//     populated — load+decode the warmed checkpoint set instead of
//     recapturing, then the same detailed windows.
//
// The cold-vs-warm start-up delta (capture+persist vs load+decode) is
// the per-process fast-forward cost the store eliminates when a sweep
// is sharded across N processes or re-run. The summary — including the
// fast-forward seconds saved — lands in BENCH_sweep.json.
func BenchmarkHostThroughputSampledSweep(b *testing.B) {
	w := workload.ByName("mcf")
	s := sim.AutoSampling(5_000_000)
	cfgs := make([]sim.Config, 0, 4)
	for _, pf := range []sim.PrefetcherKind{sim.PFBOPStream, sim.PFNone, sim.PFStride} {
		cfg := sim.DefaultConfig()
		cfg.Prefetcher = pf
		cfgs = append(cfgs, cfg)
	}
	cfgs = append(cfgs, sim.DefaultConfig().WithSched(core.SchedRandom))
	prog := w.Build(workload.Ref).Prog
	sweep := func(b *testing.B, set *checkpoint.Set) {
		for _, cfg := range cfgs {
			if _, err := sim.RunSampled(set, prog, cfg, s); err != nil {
				b.Fatal(err)
			}
		}
	}
	const benchKey = "bench-sweep"

	type leg struct {
		iters            int
		totalNS, startNS int64
		ffNS             int64
	}
	var full, cold, warm leg

	b.Run("full_detail", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			start := time.Now()
			for _, cfg := range cfgs {
				fcfg := cfg
				fcfg.Core.MaxInsts = s.Total()
				sim.Run(w.Build(workload.Ref), fcfg)
			}
			full.totalNS += time.Since(start).Nanoseconds()
		}
		full.iters = b.N
	})

	b.Run("cold_store", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			store, err := runner.NewStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			start := time.Now()
			set := sim.CaptureCheckpoints(w.Build(workload.Ref), sim.DefaultConfig(), s)
			if err := store.PutCheckpoint(benchKey, set); err != nil {
				b.Fatal(err)
			}
			cold.startNS += time.Since(start).Nanoseconds()
			cold.ffNS += set.HostNS
			sweep(b, set)
			cold.totalNS += time.Since(start).Nanoseconds()
		}
		cold.iters = b.N
		b.ReportMetric(float64(cold.startNS)/1e9/float64(b.N), "capture_persist_s")
	})

	b.Run("warm_store", func(b *testing.B) {
		store, err := runner.NewStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		// Populate once, untimed: the warm leg is the second process.
		if err := store.PutCheckpoint(benchKey,
			sim.CaptureCheckpoints(w.Build(workload.Ref), sim.DefaultConfig(), s)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			set, ok := store.GetCheckpoint(benchKey)
			if !ok {
				b.Fatal("warm store missed")
			}
			warm.startNS += time.Since(start).Nanoseconds()
			sweep(b, set)
			warm.totalNS += time.Since(start).Nanoseconds()
		}
		warm.iters = b.N
		b.ReportMetric(float64(warm.startNS)/1e9/float64(b.N), "load_decode_s")
	})

	if full.iters == 0 || cold.iters == 0 || warm.iters == 0 {
		return // a -bench filter skipped a leg; nothing to summarize
	}
	avgS := func(ns int64, n int) float64 { return float64(ns) / 1e9 / float64(n) }
	summary := map[string]any{
		"workload":          "mcf",
		"budget_insts":      s.Total(),
		"configs":           len(cfgs),
		"full_sweep_s":      avgS(full.totalNS, full.iters),
		"cold_sweep_s":      avgS(cold.totalNS, cold.iters),
		"warm_sweep_s":      avgS(warm.totalNS, warm.iters),
		"cold_start_s":      avgS(cold.startNS, cold.iters),
		"warm_start_s":      avgS(warm.startNS, warm.iters),
		"ff_saved_s":        avgS(cold.ffNS, cold.iters),
		"startup_speedup_x": float64(cold.startNS) / float64(cold.iters) / (float64(warm.startNS) / float64(warm.iters)),
		"sweep_speedup_x":   avgS(full.totalNS, full.iters) / avgS(warm.totalNS, warm.iters),
	}
	out, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sweep.json", append(out, '\n'), 0o644); err != nil {
		b.Logf("BENCH_sweep.json not written: %v", err)
	}
	b.Logf("sweep summary: %s", out)
}

// BenchmarkHostThroughputMulticoreSampled measures what co-scheduled
// checkpointing buys a colocate sweep: four configs of one 2-core
// tailchase+streambatch tuple — core 0's scheduler and backend window
// size vary, the axes that share a single capture (the prefetcher tuple
// is part of the capture key, so it stays pinned). Three legs:
//
//   - full_detail: every config steps both cores in full-detail
//     lockstep over the whole budget;
//   - cold_store: first process against an empty store — calibrated
//     co-scheduled capture, persist, then the detailed lockstep windows
//     per config;
//   - warm_store: second process against the populated store —
//     load+decode the multi-set, then the same windows per config.
//
// The headline number is sweep_speedup_x (full_detail over warm_store):
// how much faster a scheduler/window sweep runs once the capture is
// amortized. The summary lands in BENCH_multicore_sampled.json.
func BenchmarkHostThroughputMulticoreSampled(b *testing.B) {
	const perCore = 1_000_000
	s := sim.AutoSampling(perCore)
	pair := []string{"tailchase", "streambatch"}
	newImgs := func() []*sim.Image {
		return []*sim.Image{
			workload.ByName(pair[0]).Build(workload.Ref),
			workload.ByName(pair[1]).Build(workload.Ref),
		}
	}
	var sweepCfgs [][]sim.Config
	for _, sched := range []core.SchedulerKind{core.SchedOldestFirst, core.SchedRandom} {
		for _, rs := range []int{96, 48} {
			cfgs := []sim.Config{sim.DefaultConfig().WithSched(sched), sim.DefaultConfig()}
			cfgs[0].Core.RSSize = rs
			sweepCfgs = append(sweepCfgs, cfgs)
		}
	}
	sweep := func(b *testing.B, set *checkpoint.MultiSet) {
		for _, cfgs := range sweepCfgs {
			imgs := newImgs()
			progs := []*program.Program{imgs[0].Prog, imgs[1].Prog}
			if _, err := sim.RunMultiSampled(set, progs, cfgs, s); err != nil {
				b.Fatal(err)
			}
		}
	}
	const benchKey = "bench-mckpt"

	type leg struct {
		iters            int
		totalNS, startNS int64
	}
	var full, cold, warm leg

	b.Run("full_detail", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			start := time.Now()
			for _, cfgs := range sweepCfgs {
				fcfgs := make([]sim.Config, len(cfgs))
				for j := range cfgs {
					fcfgs[j] = cfgs[j]
					fcfgs[j].Core.MaxInsts = perCore
				}
				if _, err := sim.RunMulti(newImgs(), fcfgs); err != nil {
					b.Fatal(err)
				}
			}
			full.totalNS += time.Since(start).Nanoseconds()
		}
		full.iters = b.N
	})

	b.Run("cold_store", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			store, err := runner.NewStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			start := time.Now()
			set, err := sim.CaptureMultiCheckpoints(newImgs(), sweepCfgs[0], s)
			if err != nil {
				b.Fatal(err)
			}
			if err := store.PutMultiCheckpoint(benchKey, set); err != nil {
				b.Fatal(err)
			}
			cold.startNS += time.Since(start).Nanoseconds()
			sweep(b, set)
			cold.totalNS += time.Since(start).Nanoseconds()
		}
		cold.iters = b.N
		b.ReportMetric(float64(cold.startNS)/1e9/float64(b.N), "capture_persist_s")
	})

	b.Run("warm_store", func(b *testing.B) {
		store, err := runner.NewStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		// Populate once, untimed: the warm leg is the second process.
		set, err := sim.CaptureMultiCheckpoints(newImgs(), sweepCfgs[0], s)
		if err != nil {
			b.Fatal(err)
		}
		if err := store.PutMultiCheckpoint(benchKey, set); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			got, ok := store.GetMultiCheckpoint(benchKey)
			if !ok {
				b.Fatal("warm store missed")
			}
			warm.startNS += time.Since(start).Nanoseconds()
			sweep(b, got)
			warm.totalNS += time.Since(start).Nanoseconds()
		}
		warm.iters = b.N
		b.ReportMetric(float64(warm.startNS)/1e9/float64(b.N), "load_decode_s")
	})

	if full.iters == 0 || cold.iters == 0 || warm.iters == 0 {
		return // a -bench filter skipped a leg; nothing to summarize
	}
	avgS := func(ns int64, n int) float64 { return float64(ns) / 1e9 / float64(n) }
	summary := map[string]any{
		"pair":            pair,
		"budget_per_core": perCore,
		"configs":         len(sweepCfgs),
		"full_sweep_s":    avgS(full.totalNS, full.iters),
		"cold_sweep_s":    avgS(cold.totalNS, cold.iters),
		"warm_sweep_s":    avgS(warm.totalNS, warm.iters),
		"cold_start_s":    avgS(cold.startNS, cold.iters),
		"warm_start_s":    avgS(warm.startNS, warm.iters),
		"cold_speedup_x":  avgS(full.totalNS, full.iters) / avgS(cold.totalNS, cold.iters),
		"sweep_speedup_x": avgS(full.totalNS, full.iters) / avgS(warm.totalNS, warm.iters),
	}
	out, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_multicore_sampled.json", append(out, '\n'), 0o644); err != nil {
		b.Logf("BENCH_multicore_sampled.json not written: %v", err)
	}
	b.Logf("multicore sampled summary: %s", out)
}

// captureVariants builds a prefetcher-variant map of the requested size,
// drawn from the same kinds the sim layer registers, so the benchmark's
// warming cost tracks the real capture path's.
func captureVariants(n int) map[string]prefetch.Prefetcher {
	kinds := []struct {
		name string
		mk   func() prefetch.Prefetcher
	}{
		{"none", func() prefetch.Prefetcher { return nil }},
		{"stride", func() prefetch.Prefetcher { return prefetch.NewStride(256) }},
		{"ghb", func() prefetch.Prefetcher { return prefetch.NewGHB(512) }},
		{"bop", func() prefetch.Prefetcher { return prefetch.NewBOP() }},
		{"bop+stream", func() prefetch.Prefetcher {
			return &prefetch.Composite{Parts: []prefetch.Prefetcher{prefetch.NewBOP(), prefetch.NewStream(64)}}
		}},
	}
	m := make(map[string]prefetch.Prefetcher, n)
	for _, k := range kinds[:n] {
		m[k.name] = k.mk()
	}
	return m
}

// BenchmarkCheckpointCapture measures cold checkpoint capture sequential
// vs pipelined: 1, 3 and 5 prefetcher variants on pointerchase, plus a
// 2-core co-scheduled capture. The sequential leg is workers=1 (the
// bit-identical reference); the parallel leg requests one goroutine per
// pipeline task (producer + frontend + each variant), so the speedup
// reflects the pipeline's shape rather than this host's core count — on
// a single-core host the parallel leg measures pure overhead, which the
// emitted BENCH_capture.json records alongside gomaxprocs so readers can
// tell the two apart. The ISSUE gate (>=2x at >=3 variants) applies on
// multi-core hosts.
func BenchmarkCheckpointCapture(b *testing.B) {
	p := checkpoint.Params{Skip: 10_000, Warm: 200_000, Window: 10_000, Count: 4}
	secs := map[string]float64{}
	ctx := context.Background()

	captureOnce := func(b *testing.B, variants, workers int) time.Duration {
		img := workload.ByName("pointerchase").Build(workload.Ref)
		em := emu.New(img.Prog, img.Mem)
		for r, v := range img.Regs {
			em.SetReg(r, v)
		}
		pfs := captureVariants(variants)
		start := time.Now()
		if _, err := checkpoint.CaptureContext(ctx, img.Prog, em,
			cache.DefaultHierConfig(), 128, 4, 16, pfs, p, workers); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}

	for _, variants := range []int{1, 3, 5} {
		for _, mode := range []string{"seq", "par"} {
			workers := 1
			if mode == "par" {
				workers = variants + 2 // producer + frontend + each variant
			}
			b.Run(fmt.Sprintf("%dvariants/%s", variants, mode), func(b *testing.B) {
				var total time.Duration
				for i := 0; i < b.N; i++ {
					total += captureOnce(b, variants, workers)
				}
				avg := total.Seconds() / float64(b.N)
				b.ReportMetric(avg, "capture_s")
				secs[fmt.Sprintf("%dvariants_%s", variants, mode)] = avg
			})
		}
	}

	multiOnce := func(b *testing.B, workers int) time.Duration {
		imgs := []*sim.Image{
			workload.ByName("tailchase").Build(workload.Ref),
			workload.ByName("streambatch").Build(workload.Ref),
		}
		progs := make([]*program.Program, len(imgs))
		ems := make([]*emu.Emulator, len(imgs))
		for i, img := range imgs {
			progs[i] = img.Prog
			ems[i] = emu.New(img.Prog, img.Mem)
			for r, v := range img.Regs {
				ems[i].SetReg(r, v)
			}
		}
		pfs := []prefetch.Prefetcher{prefetch.NewBOP(), nil}
		start := time.Now()
		if _, err := checkpoint.CaptureMultiContext(ctx, progs, ems,
			cache.DefaultHierConfig(), 128, 4, 16, pfs, p,
			[]float64{1.0, 1.0}, workers); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	for _, mode := range []string{"seq", "par"} {
		workers := 1
		if mode == "par" {
			workers = 3 // producer + the single ordered multi-core consumer, with slack
		}
		b.Run("multicore2/"+mode, func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				total += multiOnce(b, workers)
			}
			avg := total.Seconds() / float64(b.N)
			b.ReportMetric(avg, "capture_s")
			secs["multicore2_"+mode] = avg
		})
	}

	if len(secs) < 8 {
		return // a -bench filter skipped a leg; nothing to summarize
	}
	summary := map[string]any{
		"workload":     "pointerchase",
		"warm_insts":   p.Total(),
		"gomaxprocs":   runtime.GOMAXPROCS(0),
		"multicore":    []string{"tailchase", "streambatch"},
		"speedup_1v_x": secs["1variants_seq"] / secs["1variants_par"],
		"speedup_3v_x": secs["3variants_seq"] / secs["3variants_par"],
		"speedup_5v_x": secs["5variants_seq"] / secs["5variants_par"],
		"speedup_mc_x": secs["multicore2_seq"] / secs["multicore2_par"],
	}
	for k, v := range secs {
		summary[k+"_s"] = v
	}
	out, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_capture.json", append(out, '\n'), 0o644); err != nil {
		b.Logf("BENCH_capture.json not written: %v", err)
	}
	b.Logf("capture summary: %s", out)
}

// BenchmarkExtension_DivSlices exercises the Section 6.1 extension:
// high-latency arithmetic (divides) as slice roots, measured on nab
// (FP/divide-heavy) with the extension on and off.
func BenchmarkExtension_DivSlices(b *testing.B) {
	var off, on float64
	for i := 0; i < b.N; i++ {
		l := newLab()
		w := workload.ByName("nab")
		base := l.Baseline(w)
		optsOff := crisp.DefaultOptions()
		optsOn := crisp.DefaultOptions()
		optsOn.HighLatencyALU = true
		off = (l.RunCRISP(w, optsOff).IPC()/base.IPC() - 1) * 100
		on = (l.RunCRISP(w, optsOn).IPC()/base.IPC() - 1) * 100
	}
	b.ReportMetric(off, "loads_branches_%")
	b.ReportMetric(on, "plus_div_slices_%")
}

// BenchmarkSensitivity_Prefetchers reproduces the Section 5.1 claim that
// CRISP's gain holds across baseline prefetcher choices.
func BenchmarkSensitivity_Prefetchers(b *testing.B) {
	var bop, stride, ghb float64
	for i := 0; i < b.N; i++ {
		l := newLab()
		l.Only = []string{"mcf", "xalancbmk", "namd"}
		t := l.PrefetcherSensitivity().MustTable()
		bop, stride, ghb = t.GeoMeanGain(0), t.GeoMeanGain(1), t.GeoMeanGain(2)
	}
	b.ReportMetric(bop, "over_bop_%")
	b.ReportMetric(stride, "over_stride_%")
	b.ReportMetric(ghb, "over_ghb_%")
}
