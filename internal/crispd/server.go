// Package crispd implements the sweep job server: a long-lived HTTP
// service in front of the runner/store machinery that accepts RunSpecs
// from many clients, deduplicates them against the persistent store and
// the in-flight job table, executes them on a bounded worker pool, and
// streams progress.
//
// The layering is strict: crispd adds no simulation semantics. A spec's
// content key is its identity here exactly as it is in the runner's
// memo table and the store's file names, so the same dedup guarantee
// holds end to end — any number of clients submitting one spec cost one
// simulation, whether they collide in the job table (this process), the
// advisory file locks (a sibling process on the same store), or the
// store itself (a finished entry is served without a queue slot).
//
// Robustness contract:
//
//   - per-request deadlines (?timeout=30s) become context deadlines on
//     the job and cancel the simulation mid-cycle-loop via
//     sim.RunContext;
//   - the queue is bounded: submissions past the limit get 429 with
//     Retry-After rather than unbounded memory growth;
//   - resubmission is idempotent: a key that is queued, running or done
//     attaches, a failed key restarts;
//   - SIGTERM drains gracefully: new work is refused (503), in-flight
//     jobs finish and publish to the store, locks are released; if the
//     drain deadline expires the jobs are cancelled, which also
//     releases their locks.
package crispd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/runner"
	"crisp/internal/sim"
)

// Options configure a Server.
type Options struct {
	// Store is the shared persistent store directory ("" = RAM only; a
	// store is what makes restarts and sibling processes share work).
	Store string
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// CaptureWorkers/WindowWorkers mirror the runner options: per-capture
	// pipeline goroutines and per-sampled-run concurrent windows
	// (0 = GOMAXPROCS, 1 = sequential).
	CaptureWorkers int
	WindowWorkers  int
	// Queue bounds jobs that are queued or running; submissions beyond
	// it get 429 + Retry-After (0 = 256).
	Queue int
	// MetricsJSONL/MetricsCSV mirror the runner options: per-run cycle
	// accounting appended server-side.
	MetricsJSONL string
	MetricsCSV   string
}

// Server is the crispd job server. Create with New, mount Handler on an
// http.Server, and call Drain on shutdown.
type Server struct {
	opts       Options
	r          *runner.Runner
	jobsCtx    context.Context
	stopJobs   context.CancelFunc
	queueLimit int
	start      time.Time

	mu       sync.Mutex
	jobs     map[string]*job
	active   int // jobs queued or running
	draining bool
	wg       sync.WaitGroup // one per job goroutine
}

// job is one tracked submission. All fields are guarded by Server.mu
// except done, which is closed exactly once by the job goroutine.
type job struct {
	key, kind                    string
	state                        JobState
	err                          error
	submitted, started, finished time.Time
	result                       any
	done                         chan struct{}
	subs                         []chan JobStatus
}

// New returns a Server executing jobs under ctx: cancelling it aborts
// all in-flight work (Drain is the graceful path).
func New(ctx context.Context, opts Options) (*Server, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	jobsCtx, stop := context.WithCancel(ctx)
	s := &Server{
		opts:       opts,
		jobsCtx:    jobsCtx,
		stopJobs:   stop,
		queueLimit: opts.Queue,
		start:      time.Now(),
		jobs:       make(map[string]*job),
	}
	if s.queueLimit <= 0 {
		s.queueLimit = 256
	}
	r, err := runner.New(jobsCtx, runner.Options{
		Workers:        opts.Workers,
		CaptureWorkers: opts.CaptureWorkers,
		WindowWorkers:  opts.WindowWorkers,
		CacheDir:       opts.Store,
		MetricsJSONL:   opts.MetricsJSONL,
		MetricsCSV:     opts.MetricsCSV,
		OnEvent:        s.onTaskEvent,
	})
	if err != nil {
		stop()
		return nil, err
	}
	s.r = r
	return s, nil
}

// Runner exposes the underlying executor (statsz, tests).
func (s *Server) Runner() *runner.Runner { return s.r }

// onTaskEvent marks a job running when the runner grants its task a
// worker token. Terminal states are set by the job goroutine instead,
// which has the result in hand; dependency tasks (analyses) have their
// own keys and only update jobs that were submitted for them directly.
//
// Checkpoint-set captures are the exception: a cold sampled submission
// spends its first seconds fast-forwarding inside the capture, which
// looks like a silently stuck "running" job. The runner emits lifecycle
// events for the capture's own key, but cannot attribute it to the job
// that triggered it, so capture events are fanned out as Task
// annotations to every live subscriber — they describe store-level
// activity, never change any job's state.
func (s *Server) onTaskEvent(ev runner.TaskEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ev.Kind == runner.KindCkpt || ev.Kind == runner.KindMultiCkpt {
		note := fmt.Sprintf("%s %s %s", ev.Kind, ev.Key, ev.State)
		if ev.Err != nil {
			note += ": " + ev.Err.Error()
		}
		for _, j := range s.jobs {
			if j.state.terminal() || len(j.subs) == 0 {
				continue
			}
			st := j.statusLocked(false)
			st.Task = note
			for _, ch := range j.subs {
				select {
				case ch <- st:
				default:
				}
			}
		}
		return
	}
	j := s.jobs[ev.Key]
	if j == nil || j.state.terminal() {
		return
	}
	if ev.State == runner.TaskRunning && j.state == StateQueued {
		j.state = StateRunning
		j.started = time.Now()
		j.notifyLocked()
	}
}

// Submission errors mapped to HTTP statuses by the handlers.
var (
	errDraining = errors.New("crispd: draining, not accepting new work")
	errBusy     = errors.New("crispd: job queue full")
)

// submitLocked attaches to an existing job for key or starts a new one.
// Callers hold s.mu and have already consulted the store.
func (s *Server) submitLocked(kind, key string, timeout time.Duration, exec func(context.Context) (any, error)) (*job, error) {
	if s.draining {
		return nil, errDraining
	}
	if j, ok := s.jobs[key]; ok && j.state != StateFailed {
		return j, nil // idempotent: queued/running attaches, done returns
	}
	if s.active >= s.queueLimit {
		return nil, errBusy
	}
	j := &job{key: key, kind: kind, state: StateQueued, submitted: time.Now(), done: make(chan struct{})}
	s.jobs[key] = j // a failed predecessor is replaced: resubmission restarts
	s.active++
	s.wg.Add(1)
	go s.execute(j, timeout, exec)
	return j, nil
}

func (s *Server) submit(kind, key string, timeout time.Duration, exec func(context.Context) (any, error)) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.submitLocked(kind, key, timeout, exec)
}

// execute runs one job to completion on the server's job context, with
// the submission's deadline (if any) layered on top — this is the
// per-request deadline the issue promises: it flows into sim.RunContext
// and stops the cycle loop mid-simulation.
func (s *Server) execute(j *job, timeout time.Duration, exec func(context.Context) (any, error)) {
	defer s.wg.Done()
	ctx := s.jobsCtx
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	v, err := exec(ctx)
	s.mu.Lock()
	defer s.mu.Unlock()
	j.finished = time.Now()
	if err != nil {
		j.state, j.err = StateFailed, err
	} else {
		j.state, j.result = StateDone, v
	}
	s.active--
	j.notifyLocked()
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	close(j.done)
}

// statusLocked renders the job as wire state. Result marshalling
// happens per request; results are shared read-only once done.
func (j *job) statusLocked(withResult bool) JobStatus {
	st := JobStatus{Key: j.key, Kind: j.kind, State: j.state, Submitted: unixNS(j.submitted), Started: unixNS(j.started), Finished: unixNS(j.finished)}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if withResult && j.state == StateDone {
		if raw, err := json.Marshal(j.result); err == nil {
			st.Result = raw
		}
	}
	return st
}

func unixNS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// notifyLocked fans the (result-free) status out to subscribers without
// blocking: the channels are buffered beyond the number of lifecycle
// transitions, so a send can only be dropped on a subscriber that has
// already stopped reading.
func (j *job) notifyLocked() {
	st := j.statusLocked(false)
	for _, ch := range j.subs {
		select {
		case ch <- st:
		default:
		}
	}
}

// subscribe registers a progress listener for key, returning the
// current status alongside. A nil channel with ok=true means the job is
// already terminal: the snapshot is all there is to stream.
func (s *Server) subscribe(key string) (cur JobStatus, ch chan JobStatus, cancel func(), ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[key]
	if j == nil {
		return JobStatus{}, nil, nil, false
	}
	cur = j.statusLocked(false)
	if j.state.terminal() {
		return cur, nil, func() {}, true
	}
	ch = make(chan JobStatus, 8)
	j.subs = append(j.subs, ch)
	cancel = func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
	}
	return cur, ch, cancel, true
}

// Drain stops accepting new work and waits for in-flight jobs to finish
// and publish. When ctx expires first, the remaining jobs are cancelled
// — their runner tasks unwind through the deferred lock releases, so
// even a forced drain leaves no .lock files behind.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.stopJobs()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			return fmt.Errorf("crispd: drain: jobs still running after cancellation")
		}
		return ctx.Err()
	}
}

// Abort cancels all in-flight jobs immediately (the second-signal
// path); their goroutines still run to completion recording the error.
func (s *Server) Abort() { s.stopJobs() }

// Close aborts outstanding work and closes the runner's metric streams.
func (s *Server) Close() error {
	s.stopJobs()
	return s.r.Close()
}

// ------------------------------------------------------------- handlers

// Handler returns the crispd HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleRuns)
	mux.HandleFunc("POST /v1/multi", s.handleMulti)
	mux.HandleFunc("POST /v1/analyses", s.handleAnalyses)
	mux.HandleFunc("POST /v1/footprints", s.handleFootprints)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweeps)
	mux.HandleFunc("GET /v1/runs/{key}", s.handleStatus)
	mux.HandleFunc("GET /v1/runs/{key}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/statsz", s.handleStatsz)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// maxSpecBytes bounds request bodies: specs are small; a sweep of
// thousands of specs still fits comfortably.
const maxSpecBytes = 8 << 20

func readBody(w http.ResponseWriter, req *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxSpecBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return nil, false
	}
	return body, true
}

func httpError(w http.ResponseWriter, code int, msg string) {
	http.Error(w, msg, code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone = nothing to do
}

// checkBounded rejects specs that would simulate forever: remote
// submissions must carry an instruction budget or a sampling schedule
// (locally, "0 = run to Halt" is usable; the suite's kernels never
// halt, and a server must not accept a job it can never finish).
func checkBounded(spec sim.RunSpec) error {
	if spec.Insts == 0 && spec.Sampling == nil {
		return fmt.Errorf("unbounded spec %q: a remote run needs insts > 0 or a sampling schedule", spec.Workload)
	}
	return nil
}

// validateRun is the full submission gate for one RunSpec.
func validateRun(spec sim.RunSpec) error {
	if err := runner.ValidateWorkloads([]string{spec.Workload}); err != nil {
		return err
	}
	return checkBounded(spec)
}

func validateMulti(spec sim.MultiSpec) error {
	for i, cs := range spec.Cores {
		if err := runner.ValidateWorkloads([]string{cs.Workload}); err != nil {
			return fmt.Errorf("core %d: %w", i, err)
		}
		// A spec-level sampling schedule bounds every core (the per-core
		// budget is Sampling.Total(); Validate enforces that clauses then
		// carry no Insts of their own), so only full-detail specs need a
		// per-clause budget.
		if spec.Sampling != nil {
			continue
		}
		if err := checkBounded(cs); err != nil {
			return fmt.Errorf("core %d: %w", i, err)
		}
	}
	return nil
}

func (s *Server) handleRuns(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	spec, err := sim.DecodeRunSpec(body)
	if err == nil {
		err = validateRun(spec)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.finishSubmit(w, req, runner.KindRun, spec.Key(),
		func(ctx context.Context) (any, error) { return s.r.Run(ctx, spec) })
}

func (s *Server) handleMulti(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	spec, err := sim.DecodeMultiSpec(body)
	if err == nil {
		err = validateMulti(spec)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.finishSubmit(w, req, runner.KindMulti, spec.Key(),
		func(ctx context.Context) (any, error) { return s.r.RunMulti(ctx, spec) })
}

// decodeAnalysisSpec strictly decodes the pipeline spec shared by the
// analyses and footprints endpoints.
func decodeAnalysisSpec(body []byte) (runner.AnalysisSpec, error) {
	var spec runner.AnalysisSpec
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("decode AnalysisSpec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	return spec, runner.ValidateWorkloads([]string{spec.Workload})
}

func (s *Server) handleAnalyses(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	spec, err := decodeAnalysisSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.finishSubmit(w, req, runner.KindAnalysis, spec.Key(),
		func(ctx context.Context) (any, error) { return s.r.Analysis(ctx, spec) })
}

func (s *Server) handleFootprints(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	spec, err := decodeAnalysisSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.finishSubmit(w, req, runner.KindFootprint, spec.Key(),
		func(ctx context.Context) (any, error) { return s.r.Footprint(ctx, spec) })
}

// finishSubmit is the shared submission tail: store fast path, queue
// admission, optional synchronous wait, status response.
func (s *Server) finishSubmit(w http.ResponseWriter, req *http.Request, kind, key string, exec func(context.Context) (any, error)) {
	timeout, err := parseTimeout(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Dedup against the store before any work starts: a result another
	// process (or a previous life of this server) already published is
	// served without costing a queue slot.
	if raw, ok := s.storeResult(kind, key); ok {
		writeJSON(w, http.StatusOK, JobStatus{Key: key, Kind: kind, State: StateDone, Result: raw})
		return
	}
	j, err := s.submit(kind, key, timeout, exec)
	switch {
	case errors.Is(err, errDraining):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, errBusy):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if wantWait(req) {
		select {
		case <-j.done:
		case <-req.Context().Done():
			return // client gone; the job keeps running for other attachers
		}
	}
	s.mu.Lock()
	st := j.statusLocked(true)
	s.mu.Unlock()
	code := http.StatusAccepted
	if st.State.terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleSweeps(w http.ResponseWriter, req *http.Request) {
	body, ok := readBody(w, req)
	if !ok {
		return
	}
	var sr SweepRequest
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decode sweep: %v", err))
		return
	}
	var timeout time.Duration
	if sr.Timeout != "" {
		var err error
		if timeout, err = time.ParseDuration(sr.Timeout); err != nil || timeout < 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad sweep timeout %q", sr.Timeout))
			return
		}
	}

	type item struct {
		kind, key string
		exec      func(context.Context) (any, error)
		stored    bool
	}
	items := make([]item, 0, len(sr.Runs)+len(sr.Multis))
	for i, spec := range sr.Runs {
		err := spec.Validate()
		if err == nil {
			err = validateRun(spec)
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("runs[%d]: %v", i, err))
			return
		}
		spec := spec
		items = append(items, item{kind: runner.KindRun, key: spec.Key(),
			exec: func(ctx context.Context) (any, error) { return s.r.Run(ctx, spec) }})
	}
	for i, spec := range sr.Multis {
		if err := spec.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("multis[%d]: %v", i, err))
			return
		}
		if err := validateMulti(spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("multis[%d]: %v", i, err))
			return
		}
		spec := spec
		items = append(items, item{kind: runner.KindMulti, key: spec.Key(),
			exec: func(ctx context.Context) (any, error) { return s.r.RunMulti(ctx, spec) }})
	}

	// Store pass outside the lock: published results cost no queue slot.
	for i := range items {
		items[i].stored = s.r.Store().Has(items[i].kind, items[i].key)
	}

	// Admission and submission are one atomic step: either the whole
	// batch fits the queue or none of it starts (a half-admitted sweep
	// would deadlock clients that wait for all their keys).
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, errDraining.Error())
		return
	}
	fresh := 0
	seen := make(map[string]bool, len(items))
	for _, it := range items {
		if it.stored || seen[it.key] {
			continue
		}
		seen[it.key] = true
		if j, ok := s.jobs[it.key]; !ok || j.state == StateFailed {
			fresh++
		}
	}
	if s.active+fresh > s.queueLimit {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, fmt.Sprintf("%s: %d new jobs over limit %d", errBusy, fresh, s.queueLimit))
		return
	}
	resp := SweepResponse{Jobs: make([]JobStatus, 0, len(items))}
	for _, it := range items {
		if it.stored {
			resp.Jobs = append(resp.Jobs, JobStatus{Key: it.key, Kind: it.kind, State: StateDone})
			continue
		}
		j, err := s.submitLocked(it.kind, it.key, timeout, it.exec)
		if err != nil { // capacity was pre-checked; only draining can race here
			s.mu.Unlock()
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		resp.Jobs = append(resp.Jobs, j.statusLocked(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, req *http.Request) {
	key := req.PathValue("key")
	s.mu.Lock()
	j := s.jobs[key]
	var st JobStatus
	if j != nil {
		st = j.statusLocked(true)
	}
	s.mu.Unlock()
	if j != nil {
		writeJSON(w, http.StatusOK, st)
		return
	}
	if kind, raw, ok := s.storeLookup(key); ok {
		writeJSON(w, http.StatusOK, JobStatus{Key: key, Kind: kind, State: StateDone, Result: raw})
		return
	}
	httpError(w, http.StatusNotFound, "unknown job key "+key)
}

func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	key := req.PathValue("key")
	cur, ch, cancel, ok := s.subscribe(key)
	if !ok {
		if kind, _, found := s.storeLookup(key); found {
			cur, ok = JobStatus{Key: key, Kind: kind, State: StateDone}, true
			cancel = func() {}
		}
	}
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job key "+key)
		return
	}
	defer cancel()

	flusher, canFlush := w.(http.Flusher)
	sse := strings.Contains(req.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	emit := func(st JobStatus) {
		b, err := json.Marshal(st)
		if err != nil {
			return
		}
		if sse {
			fmt.Fprintf(w, "event: state\ndata: %s\n\n", b)
		} else {
			w.Write(append(b, '\n')) //nolint:errcheck // detected via Context below
		}
		if canFlush {
			flusher.Flush()
		}
	}
	emit(cur)
	if cur.State.terminal() || ch == nil {
		return
	}
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case st, open := <-ch:
			if !open {
				return
			}
			emit(st)
			if st.State.terminal() {
				return
			}
		case <-req.Context().Done():
			return
		case <-heartbeat.C:
			if sse {
				fmt.Fprint(w, ": heartbeat\n\n")
				if canFlush {
					flusher.Flush()
				}
			}
		}
	}
}

func (s *Server) handleStatsz(w http.ResponseWriter, req *http.Request) {
	s.mu.Lock()
	byState := make(map[string]int, 4)
	for _, j := range s.jobs {
		byState[string(j.state)]++
	}
	st := Statsz{
		UptimeS:    time.Since(s.start).Seconds(),
		Draining:   s.draining,
		QueueDepth: s.active,
		QueueLimit: s.queueLimit,
		Jobs:       byState,
		Runner:     s.r.Stats(),
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// ------------------------------------------------------- store plumbing

// storeResult loads the published result for (kind, key) from the
// persistent store, re-marshalled to the exact JSON a fresh computation
// would return (the store holds the same encoding, so the round trip is
// loss-free).
func (s *Server) storeResult(kind, key string) (json.RawMessage, bool) {
	st := s.r.Store()
	if !st.Enabled() {
		return nil, false
	}
	var v any
	switch kind {
	case runner.KindRun:
		var res core.Result
		if !st.Get(kind, key, &res) {
			return nil, false
		}
		v = &res
	case runner.KindMulti:
		var res sim.MultiResult
		if !st.Get(kind, key, &res) {
			return nil, false
		}
		v = &res
	case runner.KindAnalysis:
		var res crisp.Analysis
		if !st.Get(kind, key, &res) {
			return nil, false
		}
		v = &res
	case runner.KindFootprint:
		var res crisp.Footprint
		if !st.Get(kind, key, &res) {
			return nil, false
		}
		v = &res
	default:
		return nil, false
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, false
	}
	return raw, true
}

// storeLookup finds a published entry for key under any job kind (for
// status polls of results from a previous server life).
func (s *Server) storeLookup(key string) (kind string, raw json.RawMessage, ok bool) {
	for _, k := range []string{runner.KindRun, runner.KindMulti, runner.KindAnalysis, runner.KindFootprint} {
		if raw, ok := s.storeResult(k, key); ok {
			return k, raw, true
		}
	}
	return "", nil, false
}

// --------------------------------------------------------- query params

func parseTimeout(req *http.Request) (time.Duration, error) {
	q := req.URL.Query().Get("timeout")
	if q == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(q)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("bad timeout %q: want a positive Go duration, e.g. 30s", q)
	}
	return d, nil
}

func wantWait(req *http.Request) bool {
	switch req.URL.Query().Get("wait") {
	case "1", "true", "yes":
		return true
	}
	return false
}
