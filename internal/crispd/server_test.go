package crispd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"crisp/internal/runner"
	"crisp/internal/sim"
)

// newTestServer builds a Server plus an httptest front end and tears
// both down with the test.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postSpec(t *testing.T, url string, spec any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := readAllBody(resp)
	if err != nil {
		t.Fatal(err)
	}
	return resp, rb
}

func readAllBody(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// fastSpec finishes in well under a second; slowSpec runs long enough
// to be observed mid-flight (and is always cancelled, never awaited).
func fastSpec() sim.RunSpec { return sim.RunSpec{Workload: "pointerchase", Insts: 20_000} }
func slowSpec() sim.RunSpec { return sim.RunSpec{Workload: "pointerchase", Insts: 500_000_000} }

// TestConcurrentDedup: two clients racing the same spec cost one
// simulation; both receive the identical result.
func TestConcurrentDedup(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	spec := fastSpec()

	var wg sync.WaitGroup
	results := make([][]byte, 2)
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, rb := postSpec(t, ts.URL+"/v1/runs?wait=1", spec)
			codes[i] = resp.StatusCode
			var st JobStatus
			if err := json.Unmarshal(rb, &st); err != nil {
				t.Errorf("client %d: decode: %v (%s)", i, err, rb)
				return
			}
			if st.State != StateDone {
				t.Errorf("client %d: state %s (error %q), want done", i, st.State, st.Error)
			}
			results[i] = st.Result
		}(i)
	}
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("client %d: HTTP %d, want 200", i, code)
		}
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Error("the two clients decoded different results for one spec")
	}
	if len(results[0]) == 0 {
		t.Fatal("empty result payload")
	}
	if st := s.Runner().Stats(); st.Executed != 1 {
		t.Errorf("Executed = %d, want 1 (dedup before work starts)", st.Executed)
	}
}

// TestDeadlineCancellation: a per-request timeout propagates through
// the job context into sim.RunContext and stops the cycle loop; the
// job lands failed, and resubmitting the failed key without the
// deadline restarts it fresh.
func TestDeadlineCancellation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	spec := sim.RunSpec{Workload: "pointerchase", Insts: 100_000}

	resp, rb := postSpec(t, ts.URL+"/v1/runs?wait=1&timeout=1ns", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, rb)
	}
	var st JobStatus
	if err := json.Unmarshal(rb, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed {
		t.Fatalf("state %s, want failed (deadline must cancel the run)", st.State)
	}
	if !strings.Contains(st.Error, "deadline") && !strings.Contains(st.Error, "cancel") {
		t.Errorf("failure %q does not mention the deadline", st.Error)
	}

	// Failed keys restart on resubmission.
	resp, rb = postSpec(t, ts.URL+"/v1/runs?wait=1", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: HTTP %d: %s", resp.StatusCode, rb)
	}
	if err := json.Unmarshal(rb, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Errorf("resubmitted job state %s (error %q), want done", st.State, st.Error)
	}
}

// TestGracefulDrain: drain waits for in-flight jobs, publishes their
// results, and leaves the store with no .lock or .tmp debris; a
// draining server refuses new work with 503 and fails health checks.
func TestGracefulDrain(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Options{Workers: 2, Store: dir})
	spec := fastSpec()

	resp, rb := postSpec(t, ts.URL+"/v1/runs", spec) // async: 202 queued
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, rb)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The in-flight job finished and published.
	if !s.Runner().Store().Has(runner.KindRun, spec.Key()) {
		t.Error("drained job did not publish its result to the store")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".lock", ".tmp":
			t.Errorf("drain left debris %s in the store", e.Name())
		}
	}

	// New work is refused (a spec the store does not already answer);
	// health reflects the drain.
	resp, rb = postSpec(t, ts.URL+"/v1/runs", sim.RunSpec{Workload: "pointerchase", Insts: 21_000})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submission while draining: HTTP %d (%s), want 503", resp.StatusCode, rb)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: HTTP %d, want 503", hresp.StatusCode)
	}
}

// TestStoreFastPath: a result published in a previous server life is
// served as done on submission without costing a simulation or a queue
// slot, and status polls find it too — restart-transparent dedup.
func TestStoreFastPath(t *testing.T) {
	dir := t.TempDir()
	spec := fastSpec()
	{
		s1, ts1 := newTestServer(t, Options{Workers: 1, Store: dir})
		if resp, rb := postSpec(t, ts1.URL+"/v1/runs?wait=1", spec); resp.StatusCode != http.StatusOK {
			t.Fatalf("seed run: HTTP %d: %s", resp.StatusCode, rb)
		}
		if err := s1.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	s2, ts2 := newTestServer(t, Options{Workers: 1, Store: dir})
	resp, rb := postSpec(t, ts2.URL+"/v1/runs?wait=1", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, rb)
	}
	var st JobStatus
	if err := json.Unmarshal(rb, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || len(st.Result) == 0 {
		t.Fatalf("store-backed submission: state %s, result %d bytes", st.State, len(st.Result))
	}
	if stats := s2.Runner().Stats(); stats.Executed != 0 {
		t.Errorf("Executed = %d, want 0 (the store already had the result)", stats.Executed)
	}

	gresp, err := http.Get(ts2.URL + "/v1/runs/" + spec.Key())
	if err != nil {
		t.Fatal(err)
	}
	gb, err := readAllBody(gresp)
	if err != nil {
		t.Fatal(err)
	}
	if gresp.StatusCode != http.StatusOK {
		t.Errorf("status poll of stored key: HTTP %d: %s", gresp.StatusCode, gb)
	}
}

// TestClientRoundTrip: a run through Client + runner.Options.Remote is
// byte-identical (as JSON) to the same spec simulated locally — the
// acceptance invariant behind pointing figure harnesses at -server.
func TestClientRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	spec := fastSpec()

	local, err := runner.New(context.Background(), runner.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	lres, err := local.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	remote, err := runner.New(context.Background(), runner.Options{Workers: 1, Remote: NewClient(ts.URL)})
	if err != nil {
		t.Fatal(err)
	}
	rres, err := remote.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	// Host-side profiling fields (wall clock, allocations) measure the
	// simulator, not the simulated machine, and differ run to run even
	// locally; everything architectural must match exactly.
	lres.HostNS, lres.HostAllocs, lres.HostIters = 0, 0, 0
	rres.HostNS, rres.HostAllocs, rres.HostIters = 0, 0, 0
	lb, _ := json.Marshal(lres)
	rb, _ := json.Marshal(rres)
	if !bytes.Equal(lb, rb) {
		t.Errorf("remote result differs from local:\nlocal  %.200s\nremote %.200s", lb, rb)
	}
	if st := remote.Stats(); st.RemoteRuns != 1 {
		t.Errorf("RemoteRuns = %d, want 1", st.RemoteRuns)
	}

	// The in-process memo still applies in front of the remote: a second
	// request is free.
	if _, err := remote.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if st := remote.Stats(); st.RemoteRuns != 1 {
		t.Errorf("memoized re-run hit the server: RemoteRuns = %d", st.RemoteRuns)
	}
}

// TestBackpressure: submissions beyond the queue bound get 429 with
// Retry-After, and the Client retries through backpressure to
// completion once slots free up.
func TestBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Queue: 1})
	if resp, rb := postSpec(t, ts.URL+"/v1/runs", slowSpec()); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: HTTP %d: %s", resp.StatusCode, rb)
	}
	resp, rb := postSpec(t, ts.URL+"/v1/runs", fastSpec())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit submission: HTTP %d (%s), want 429", resp.StatusCode, rb)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// The slow job is cancelled by the test-cleanup Close.
}

// TestClientRetriesBackpressure: the client rides out 429s and finishes
// once the queue drains naturally.
func TestClientRetriesBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Queue: 1})
	if resp, rb := postSpec(t, ts.URL+"/v1/runs", fastSpec()); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue filler: HTTP %d: %s", resp.StatusCode, rb)
	}
	// The queue is full until the filler finishes (~tens of ms): the
	// client either lands straight in a freed slot or eats a 429 and
	// retries — both must converge to a result.
	res, err := NewClient(ts.URL).Run(context.Background(), sim.RunSpec{Workload: "pointerchase", Insts: 22_000})
	if err != nil {
		t.Fatalf("client through backpressure: %v", err)
	}
	if res == nil || res.Insts != 22_000 {
		t.Fatalf("unexpected result %+v", res)
	}
}

// TestSweep: a batch with duplicate specs dedups inside the batch and
// across it; polling the returned keys converges to done.
func TestSweep(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	a := fastSpec()
	b := sim.RunSpec{Workload: "pointerchase", Insts: 30_000}
	req := SweepRequest{Runs: []sim.RunSpec{a, b, a}} // a twice

	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := readAllBody(resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, rb)
	}
	var sr SweepResponse
	if err := json.Unmarshal(rb, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Jobs) != 3 {
		t.Fatalf("%d job statuses, want 3 (request order)", len(sr.Jobs))
	}
	if sr.Jobs[0].Key != a.Key() || sr.Jobs[1].Key != b.Key() || sr.Jobs[2].Key != a.Key() {
		t.Error("sweep response out of request order")
	}

	c := NewClient(ts.URL)
	for _, key := range []string{a.Key(), b.Key()} {
		st, err := c.status(context.Background(), key)
		for err == nil && !st.State.terminal() {
			time.Sleep(20 * time.Millisecond)
			st, err = c.status(context.Background(), key)
		}
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Errorf("job %s: state %s (error %q)", key, st.State, st.Error)
		}
	}
	if st := s.Runner().Stats(); st.Executed != 2 {
		t.Errorf("Executed = %d, want 2 (a deduped within the sweep)", st.Executed)
	}
}

// TestEventsStream: the JSONL progress stream replays the current state
// and ends with a terminal event.
func TestEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	spec := fastSpec()
	if resp, rb := postSpec(t, ts.URL+"/v1/runs", spec); resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, rb)
	}

	resp, err := http.Get(ts.URL + "/v1/runs/" + spec.Key() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}
	var last JobStatus
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if last.Key != spec.Key() {
			t.Errorf("event for key %s, want %s", last.Key, spec.Key())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if last.State != StateDone {
		t.Errorf("stream ended at state %s, want done", last.State)
	}
}

// TestRejects: malformed, unknown-field, invalid and unbounded specs
// are 400s; unknown keys are 404s.
func TestRejects(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name, body string
	}{
		{"not json", `insts=5`},
		{"unknown field", `{"workload":"mcf","insts":1000,"shed":"crisp"}`},
		{"no workload", `{"insts":1000}`},
		{"unknown workload", `{"workload":"quicksort3","insts":1000}`},
		{"unbounded", `{"workload":"mcf"}`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", c.name, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/runs/deadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown key: HTTP %d, want 404", resp.StatusCode)
	}

	if resp, rb := postSpec(t, ts.URL+"/v1/runs?timeout=never", fastSpec()); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad timeout: HTTP %d (%s), want 400", resp.StatusCode, rb)
	}
}

// TestStatsz: the counters reflect completed work.
func TestStatsz(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Queue: 7})
	if resp, rb := postSpec(t, ts.URL+"/v1/runs?wait=1", fastSpec()); resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, rb)
	}
	st, err := NewClient(ts.URL).Statsz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.QueueLimit != 7 {
		t.Errorf("QueueLimit = %d, want 7", st.QueueLimit)
	}
	if st.Jobs[string(StateDone)] != 1 {
		t.Errorf("done jobs = %d, want 1 (%v)", st.Jobs[string(StateDone)], st.Jobs)
	}
	if st.Runner.Executed != 1 {
		t.Errorf("runner Executed = %d, want 1", st.Runner.Executed)
	}
	if st.Draining || st.QueueDepth != 0 {
		t.Errorf("unexpected statsz %+v", st)
	}
}

// TestMultiEndpoint: multi-core specs flow through the same job
// machinery under the multi kind.
func TestMultiEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	spec := sim.MultiSpec{Cores: []sim.RunSpec{
		{Workload: "pointerchase", Insts: 20_000},
		{Workload: "streambatch", Insts: 20_000},
	}}
	resp, rb := postSpec(t, ts.URL+"/v1/multi?wait=1", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, rb)
	}
	var st JobStatus
	if err := json.Unmarshal(rb, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Kind != runner.KindMulti {
		t.Fatalf("state %s kind %s (error %q), want done/multi", st.State, st.Kind, st.Error)
	}
	var res sim.MultiResult
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 2 {
		t.Errorf("%d core results, want 2", len(res.Cores))
	}
	_ = s
}

// TestForcedDrain: when the drain deadline has already passed, Drain
// cancels in-flight jobs and still returns with the store clean.
func TestForcedDrain(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Options{Workers: 1, Store: dir})
	if resp, rb := postSpec(t, ts.URL+"/v1/runs", slowSpec()); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, rb)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Error("forced drain reported clean exit for a cancelled job")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".lock", ".tmp":
			t.Errorf("forced drain left debris %s in the store", e.Name())
		}
	}
}

// TestClientAgainstFailure verifies the client surfaces server-side
// job failures as errors with the server's message.
func TestClientAgainstFailure(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	c := NewClient(ts.URL)
	_, err := c.Run(context.Background(), sim.RunSpec{Workload: "nosuchworkload", Insts: 1000})
	if err == nil {
		t.Fatal("client accepted an unknown workload")
	}
	if !strings.Contains(err.Error(), "nosuchworkload") {
		t.Errorf("error %q does not name the workload", err)
	}
}
