package crispd

import (
	"encoding/json"

	"crisp/internal/runner"
	"crisp/internal/sim"
)

// Wire types shared by the server handlers and the HTTP client. The
// payloads inside them are the existing spec and result types: a job's
// Result field carries the same JSON the persistent store holds for
// that (kind, key), so a remote client decodes byte-identical state to
// a local store hit.

// JobState is a job's position in its lifecycle.
type JobState string

// Job lifecycle states. A job is created queued, becomes running when
// the runner grants it a worker token, and ends done or failed. A
// failed job's key is resubmittable: the next POST for it starts a
// fresh attempt (the runner drops failed computations from its memo
// table for the same reason).
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool { return s == StateDone || s == StateFailed }

// JobStatus is the server's description of one job: the response body
// of submissions and status polls, and (without Result) the event
// payload of the progress stream.
type JobStatus struct {
	// Key is the spec's deterministic content key — the job's identity.
	// Submitting a spec with the key of a queued or running job attaches
	// to it instead of starting new work.
	Key string `json:"key"`
	// Kind is the task family: "run", "multi", "analysis" or "footprint"
	// (the persistent store's file-name prefixes).
	Kind  string   `json:"kind"`
	State JobState `json:"state"`
	// Error is the failure message when State is "failed".
	Error string `json:"error,omitempty"`
	// Submitted/Started/Finished are Unix nanoseconds (0 = not yet).
	Submitted int64 `json:"submitted_unix_ns,omitempty"`
	Started   int64 `json:"started_unix_ns,omitempty"`
	Finished  int64 `json:"finished_unix_ns,omitempty"`
	// Result holds the task's result when State is "done": a
	// core.Result for runs, sim.MultiResult for multi, crisp.Analysis /
	// crisp.Footprint for the pipeline kinds. Status polls include it;
	// progress events omit it.
	Result json.RawMessage `json:"result,omitempty"`
	// Task, set only on progress-stream events, describes dependency-task
	// activity observed while the job is live: checkpoint-set captures
	// ("ckpt ... running") that explain why a cold sampled submission sits
	// in "running" with no visible progress. It annotates the event, never
	// the job's own state, and the runner does not attribute dependencies
	// to parents, so the note reaches every live subscriber.
	Task string `json:"task,omitempty"`
}

// SweepRequest is the POST /v1/sweeps payload: a batch of specs
// submitted as one atomic unit against the queue bound. The server
// dedups each spec against the store, the job table and the runner's
// single-flight before it costs a queue slot.
type SweepRequest struct {
	Runs   []sim.RunSpec   `json:"runs,omitempty"`
	Multis []sim.MultiSpec `json:"multis,omitempty"`
	// Timeout, when non-empty, is a Go duration string applied to every
	// newly started job in the batch (attached jobs keep the deadline of
	// the submission that started them).
	Timeout string `json:"timeout,omitempty"`
}

// SweepResponse lists the per-spec job statuses in request order (runs
// first, then multis).
type SweepResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

// Statsz is the GET /v1/statsz payload: the runner's progress counters
// plus the server's own job accounting, for scraping.
type Statsz struct {
	UptimeS    float64        `json:"uptime_s"`
	Draining   bool           `json:"draining"`
	QueueDepth int            `json:"queue_depth"` // jobs queued or running
	QueueLimit int            `json:"queue_limit"`
	Jobs       map[string]int `json:"jobs"` // job count by state
	Runner     runner.Stats   `json:"runner"`
}
