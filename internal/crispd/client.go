package crispd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/runner"
	"crisp/internal/sim"
)

// Client talks to a crispd server and satisfies runner.Remote, so a
// local Runner built with Options.Remote delegates whole tasks to the
// server while keeping its in-process memo table: within one harness
// process each spec costs one HTTP round trip, and across processes
// the server's job table plus store dedup the rest.
//
// Submissions use ?wait=1 so the response carries the result; 429
// backpressure is retried honoring Retry-After until the caller's
// context expires.
type Client struct {
	base string
	hc   *http.Client
}

var _ runner.Remote = (*Client)(nil)

// NewClient returns a client for the crispd server at base, e.g.
// "http://sweepbox:8080".
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// maxResultBytes bounds result decoding (full-suite multi results with
// per-core breakdowns stay far under this).
const maxResultBytes = 256 << 20

// Run submits a single-core simulation and blocks for its result.
func (c *Client) Run(ctx context.Context, spec sim.RunSpec) (*core.Result, error) {
	var res core.Result
	if err := c.submit(ctx, "/v1/runs", spec, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// RunMulti submits a multi-core co-run and blocks for its result.
func (c *Client) RunMulti(ctx context.Context, spec sim.MultiSpec) (*sim.MultiResult, error) {
	var res sim.MultiResult
	if err := c.submit(ctx, "/v1/multi", spec, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Analysis submits a criticality-analysis pipeline task.
func (c *Client) Analysis(ctx context.Context, spec runner.AnalysisSpec) (*crisp.Analysis, error) {
	var res crisp.Analysis
	if err := c.submit(ctx, "/v1/analyses", spec, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Footprint submits a slice-footprint pipeline task.
func (c *Client) Footprint(ctx context.Context, spec runner.AnalysisSpec) (*crisp.Footprint, error) {
	var res crisp.Footprint
	if err := c.submit(ctx, "/v1/footprints", spec, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Statsz fetches the server's counters.
func (c *Client) Statsz(ctx context.Context) (Statsz, error) {
	var st Statsz
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/statsz", nil)
	if err != nil {
		return st, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return st, fmt.Errorf("crispd client: statsz: %w", err)
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, maxResultBytes))
	resp.Body.Close()
	if rerr != nil {
		return st, fmt.Errorf("crispd client: statsz: %w", rerr)
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("crispd client: statsz: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return st, json.Unmarshal(body, &st)
}

// submit POSTs spec to path with ?wait=1, retries 429 backpressure, and
// decodes the terminal job's result into dest.
func (c *Client) submit(ctx context.Context, path string, spec, dest any) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("crispd client: marshal spec: %w", err)
	}
	for {
		st, retry, err := c.postOnce(ctx, path, body)
		if err != nil {
			return err
		}
		if retry > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(retry):
			}
			continue
		}
		return c.finish(ctx, st, dest)
	}
}

// postOnce performs one submission attempt. A positive retry means the
// server pushed back (429) and the caller should wait that long.
func (c *Client) postOnce(ctx context.Context, path string, body []byte) (JobStatus, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path+"?wait=1", bytes.NewReader(body))
	if err != nil {
		return JobStatus{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return JobStatus{}, 0, fmt.Errorf("crispd client: %w", err)
	}
	rb, rerr := io.ReadAll(io.LimitReader(resp.Body, maxResultBytes))
	resp.Body.Close()
	if rerr != nil {
		return JobStatus{}, 0, fmt.Errorf("crispd client: read response: %w", rerr)
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		return JobStatus{}, retryAfter(resp, time.Second), nil
	case http.StatusOK, http.StatusAccepted:
		var st JobStatus
		if err := json.Unmarshal(rb, &st); err != nil {
			return JobStatus{}, 0, fmt.Errorf("crispd client: decode job status: %w", err)
		}
		return st, 0, nil
	default:
		return JobStatus{}, 0, fmt.Errorf("crispd client: %s %s: %s: %s", http.MethodPost, path, resp.Status, strings.TrimSpace(string(rb)))
	}
}

// finish turns a terminal status into dest or an error, polling the job
// if the server answered before it reached a terminal state.
func (c *Client) finish(ctx context.Context, st JobStatus, dest any) error {
	for !st.State.terminal() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
		var err error
		if st, err = c.status(ctx, st.Key); err != nil {
			return err
		}
	}
	if st.State == StateFailed {
		return fmt.Errorf("crispd client: job %s failed: %s", st.Key, st.Error)
	}
	if err := json.Unmarshal(st.Result, dest); err != nil {
		return fmt.Errorf("crispd client: decode result for job %s: %w", st.Key, err)
	}
	return nil
}

// status polls GET /v1/runs/{key}.
func (c *Client) status(ctx context.Context, key string) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/runs/"+key, nil)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return JobStatus{}, fmt.Errorf("crispd client: %w", err)
	}
	rb, rerr := io.ReadAll(io.LimitReader(resp.Body, maxResultBytes))
	resp.Body.Close()
	if rerr != nil {
		return JobStatus{}, fmt.Errorf("crispd client: read status: %w", rerr)
	}
	if resp.StatusCode != http.StatusOK {
		return JobStatus{}, fmt.Errorf("crispd client: status %s: %s: %s", key, resp.Status, strings.TrimSpace(string(rb)))
	}
	var st JobStatus
	if err := json.Unmarshal(rb, &st); err != nil {
		return JobStatus{}, fmt.Errorf("crispd client: decode job status: %w", err)
	}
	return st, nil
}

// retryAfter parses the Retry-After header, defaulting (and capping)
// sensibly so a misbehaving server cannot park the client forever.
func retryAfter(resp *http.Response, fallback time.Duration) time.Duration {
	s, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || s < 0 {
		return fallback
	}
	d := time.Duration(s) * time.Second
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	if d == 0 {
		d = 100 * time.Millisecond
	}
	return d
}
