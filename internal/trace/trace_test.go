package trace

import (
	"testing"

	"crisp/internal/emu"
	"crisp/internal/isa"
	"crisp/internal/program"
)

// chainProgram: r2 = r1+1; r3 = r2+1; store r3; load r4; r5 = r4+1.
func chainProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("chain")
	b.MovI(isa.R(1), 10)           // 0
	b.AddI(isa.R(2), isa.R(1), 1)  // 1: dep on 0
	b.AddI(isa.R(3), isa.R(2), 1)  // 2: dep on 1
	b.MovI(isa.R(9), 0x1000)       // 3
	b.Store(isa.R(9), 0, isa.R(3)) // 4: deps on 3 (base) and 2 (value)
	b.Load(isa.R(4), isa.R(9), 0)  // 5: reg dep on 3, mem dep on 4
	b.AddI(isa.R(5), isa.R(4), 1)  // 6: dep on 5
	b.Halt()                       // 7
	return b.MustBuild()
}

func TestCaptureRegisterDeps(t *testing.T) {
	tr := Capture(emu.New(chainProgram(t), nil), 0)
	if tr.Len() != 8 {
		t.Fatalf("trace len = %d, want 8", tr.Len())
	}
	if tr.Records[1].RegDep1 != 0 {
		t.Errorf("rec1 regdep = %d, want 0", tr.Records[1].RegDep1)
	}
	if tr.Records[2].RegDep1 != 1 {
		t.Errorf("rec2 regdep = %d, want 1", tr.Records[2].RegDep1)
	}
	st := tr.Records[4]
	if st.RegDep1 != 3 || st.RegDep2 != 2 {
		t.Errorf("store deps = %d,%d, want 3,2", st.RegDep1, st.RegDep2)
	}
}

func TestCaptureMemoryDeps(t *testing.T) {
	tr := Capture(emu.New(chainProgram(t), nil), 0)
	ld := tr.Records[5]
	if ld.MemDep != 4 {
		t.Errorf("load memdep = %d, want 4 (the store)", ld.MemDep)
	}
	if ld.RegDep1 != 3 {
		t.Errorf("load base regdep = %d, want 3", ld.RegDep1)
	}
}

func TestCaptureNoFalseMemDep(t *testing.T) {
	b := program.NewBuilder("nodep")
	b.MovI(isa.R(1), 0x1000)
	b.MovI(isa.R(2), 7)
	b.Store(isa.R(1), 0, isa.R(2)) // store to 0x1000
	b.Load(isa.R(3), isa.R(1), 64) // load from 0x1040: no overlap
	b.Halt()
	tr := Capture(emu.New(b.MustBuild(), nil), 0)
	if dep := tr.Records[3].MemDep; dep != NoDep {
		t.Errorf("disjoint load has memdep %d, want none", dep)
	}
}

func TestDepsHelperDedupes(t *testing.T) {
	b := program.NewBuilder("dup")
	b.MovI(isa.R(1), 3)
	b.Add(isa.R(2), isa.R(1), isa.R(1)) // both srcs produced by 0
	b.Halt()
	tr := Capture(emu.New(b.MustBuild(), nil), 0)
	deps := tr.Deps(1, nil)
	if len(deps) != 1 || deps[0] != 0 {
		t.Errorf("Deps = %v, want [0]", deps)
	}
}

func TestDepOutsideWindowIsNoDep(t *testing.T) {
	p := chainProgram(t)
	e := emu.New(p, nil)
	e.Run(2) // consume insts 0 and 1 before capture starts
	tr := Capture(e, 0)
	// First captured record is static pc 2 (AddI r3,r2,1); its producer ran
	// before the window.
	if tr.Records[0].PC != 2 {
		t.Fatalf("first captured pc = %d, want 2", tr.Records[0].PC)
	}
	if tr.Records[0].RegDep1 != NoDep {
		t.Errorf("pre-window dep = %d, want NoDep", tr.Records[0].RegDep1)
	}
}

func TestInstancesAndExecCounts(t *testing.T) {
	b := program.NewBuilder("loop")
	b.MovI(isa.R(1), 0)
	b.MovI(isa.R(2), 5)
	b.Label("l")
	b.AddI(isa.R(1), isa.R(1), 1) // pc 2
	b.Blt(isa.R(1), isa.R(2), "l")
	b.Halt()
	p := b.MustBuild()
	tr := Capture(emu.New(p, nil), 0)
	inst := tr.InstancesOf(2)
	if len(inst) != 5 {
		t.Errorf("InstancesOf(2) = %d executions, want 5", len(inst))
	}
	counts := tr.ExecCounts(p.Len())
	if counts[2] != 5 || counts[3] != 5 || counts[0] != 1 {
		t.Errorf("ExecCounts = %v", counts)
	}
	// Loop-carried dependency: iteration i's AddI depends on iteration i-1's.
	for i := 1; i < len(inst); i++ {
		if tr.Records[inst[i]].RegDep1 != inst[i-1] {
			t.Errorf("iteration %d dep = %d, want %d", i, tr.Records[inst[i]].RegDep1, inst[i-1])
		}
	}
}

func TestCaptureLimit(t *testing.T) {
	b := program.NewBuilder("inf")
	b.Label("l")
	b.AddI(isa.R(1), isa.R(1), 1)
	b.Jmp("l")
	p := b.MustBuild()
	tr := Capture(emu.New(p, nil), 100)
	if tr.Len() != 100 {
		t.Errorf("limited capture len = %d, want 100", tr.Len())
	}
}
