// Package trace captures dynamic instruction streams from the functional
// emulator and precomputes producer links (through registers and through
// memory) that the CRISP slicer walks backwards. This stands in for the
// DynamoRIO-Memtrace / Intel-PT tracing step of the paper's software
// pipeline (Section 3.3): it carries exactly the information a memory
// trace provides, including store-to-load dependencies that register-only
// hardware IBDA cannot observe.
package trace

import (
	"crisp/internal/emu"
	"crisp/internal/isa"
)

// NoDep marks an absent producer link.
const NoDep = ^uint32(0)

// Record is one traced dynamic instruction with resolved producer links.
// Producer links are indices into the owning Trace's Records slice (not
// Seq numbers) so slices of a bounded trace index directly.
//
// RegDep1/RegDep2 are the producers of the instruction's first and second
// source registers. MemDep is, for loads, the most recent older store to
// an overlapping 8-byte word — the "dependency through memory" of
// Section 3.3 footnote 2.
type Record struct {
	PC      int
	Addr    uint64
	Taken   bool
	RegDep1 uint32
	RegDep2 uint32
	MemDep  uint32
	Inst    *isa.Inst
}

// Trace is a captured window of dynamic execution.
type Trace struct {
	Records []Record
}

// storeIndexPageWords is the granularity of the capture-time store index:
// one page covers 512 aligned 8-byte words (4 KiB of address space).
const storeIndexPageWords = 512

// storeIndex maps 8-byte-aligned word addresses to the trace index of the
// most recent store covering them. It is a sparse paged array with a
// last-page register so the per-instruction hot path of Capture indexes
// an array instead of hashing into a map.
type storeIndex struct {
	pages  map[uint64]*[storeIndexPageWords]uint32
	lastPN uint64
	lastPg *[storeIndexPageWords]uint32
}

func (s *storeIndex) page(word uint64, alloc bool) *[storeIndexPageWords]uint32 {
	pn := word / storeIndexPageWords
	if s.lastPg != nil && s.lastPN == pn {
		return s.lastPg
	}
	p := s.pages[pn]
	if p == nil {
		if !alloc {
			return nil
		}
		p = new([storeIndexPageWords]uint32)
		for i := range p {
			p[i] = NoDep
		}
		s.pages[pn] = p
	}
	s.lastPN, s.lastPg = pn, p
	return p
}

func (s *storeIndex) get(word uint64) uint32 {
	if p := s.page(word, false); p != nil {
		return p[word%storeIndexPageWords]
	}
	return NoDep
}

func (s *storeIndex) set(word uint64, idx uint32) {
	s.page(word, true)[word%storeIndexPageWords] = idx
}

// Capture runs the emulator for at most limit instructions (to Halt if
// limit <= 0), recording every instruction and resolving producer links on
// the fly.
func Capture(e *emu.Emulator, limit uint64) *Trace {
	tr := &Trace{}
	if limit > 0 {
		tr.Records = make([]Record, 0, limit)
	}
	// lastRegWriter[r] is the trace index of the most recent writer of r,
	// or NoDep if r was last written before the trace window.
	var lastRegWriter [isa.NumRegs]uint32
	for i := range lastRegWriter {
		lastRegWriter[i] = NoDep
	}
	lastStore := &storeIndex{pages: make(map[uint64]*[storeIndexPageWords]uint32)}

	var n uint64
	for limit <= 0 || n < limit {
		d, ok := e.Step()
		if !ok {
			break
		}
		n++
		idx := uint32(len(tr.Records))
		rec := Record{
			PC: d.PC, Addr: d.Addr, Taken: d.Taken, Inst: d.Inst,
			RegDep1: NoDep, RegDep2: NoDep, MemDep: NoDep,
		}
		in := d.Inst
		if in.Src1.Valid() {
			rec.RegDep1 = lastRegWriter[in.Src1]
		}
		if in.Src2.Valid() {
			rec.RegDep2 = lastRegWriter[in.Src2]
		}
		switch in.Op {
		case isa.OpLoad:
			rec.MemDep = lastStore.get(d.Addr >> 3)
		case isa.OpStore:
			lastStore.set(d.Addr>>3, idx)
		}
		if in.HasDst() {
			lastRegWriter[in.Dst] = idx
		}
		tr.Records = append(tr.Records, rec)
	}
	return tr
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// Deps appends the producer indices of record i to dst and returns it.
func (t *Trace) Deps(i int, dst []uint32) []uint32 {
	r := &t.Records[i]
	if r.RegDep1 != NoDep {
		dst = append(dst, r.RegDep1)
	}
	if r.RegDep2 != NoDep && r.RegDep2 != r.RegDep1 {
		dst = append(dst, r.RegDep2)
	}
	if r.MemDep != NoDep {
		dst = append(dst, r.MemDep)
	}
	return dst
}

// InstancesOf returns the trace indices at which static PC pc executed, in
// program order.
func (t *Trace) InstancesOf(pc int) []uint32 {
	var out []uint32
	for i := range t.Records {
		if t.Records[i].PC == pc {
			out = append(out, uint32(i))
		}
	}
	return out
}

// ExecCounts returns per-static-PC dynamic execution counts, indexed by PC
// up to progLen.
func (t *Trace) ExecCounts(progLen int) []uint64 {
	counts := make([]uint64, progLen)
	for i := range t.Records {
		counts[t.Records[i].PC]++
	}
	return counts
}
