package harness

import (
	"context"
	"fmt"

	"crisp/internal/core"
	"crisp/internal/sim"
)

// SamplingValidation renders the sampled-simulation validation figure:
// for each workload, full-detail IPC at the Lab's budget next to the
// sampled IPC under the auto schedule at the same budget, and the
// relative error between them. The cells are deterministic, so the
// figure is golden-pinnable; the host-side speedup — wall-clock, and so
// run-to-run noisy — is appended as a note only when l.HostNotes is set
// (cmd/experiments sets it, the golden test does not).
func (l *Lab) SamplingValidation() *Pending {
	s := sim.AutoSampling(l.Insts)
	t := &Table{
		Title:   "Sampled simulation: IPC vs full detail",
		Columns: []string{"app", "full_ipc", "sampled_ipc", "err_%"},
	}
	var fulls, samples []*core.Result
	var rows []rowSource
	for _, name := range l.suite() {
		full := l.R.Submit(l.refSpec(name))
		samp := l.R.Submit(l.sampledSpec(name, s))
		rows = append(rows, rowSource{name, func(ctx context.Context) ([]float64, error) {
			fr, err := full.Result(ctx)
			if err != nil {
				return nil, err
			}
			sr, err := samp.Result(ctx)
			if err != nil {
				return nil, err
			}
			fulls = append(fulls, fr)
			samples = append(samples, sr)
			return []float64{fr.IPC(), sr.IPC(), (sr.IPC()/fr.IPC() - 1) * 100}, nil
		}})
	}
	return pending(t, rows, func(t *Table) {
		detailed := s.Window * uint64(s.Count)
		t.Notes = append(t.Notes, fmt.Sprintf(
			"schedule: %d windows x %d insts detailed (%d%% of the %d-inst budget), continuous functional warming",
			s.Count, s.Window, detailed*100/s.Total(), s.Total()))
		t.Notes = append(t.Notes,
			"error shrinks as the budget grows past the full run's cold-cache transient; sim's equivalence test pins <=2% at 5M insts")
		if l.HostNotes {
			var fullNS, sampNS int64
			for i := range fulls {
				fullNS += fulls[i].HostNS
				sampNS += samples[i].HostNS + samples[i].HostFFNS
			}
			if sampNS > 0 {
				t.Notes = append(t.Notes, fmt.Sprintf(
					"host time: %.2fs full detail vs %.2fs sampled incl. capture (%.1fx); capture is shared by every config of a workload",
					float64(fullNS)/1e9, float64(sampNS)/1e9, float64(fullNS)/float64(sampNS)))
			}
		}
	})
}

// sampledSpec is the OOO baseline on the ref input, simulated via
// fast-forward + checkpointed detailed windows under schedule s.
func (l *Lab) sampledSpec(name string, s sim.Sampling) sim.RunSpec {
	return sim.RunSpec{Workload: name, Input: sim.InputRef, Sched: sim.SchedOOO, Sampling: &s}
}
