package harness

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crisp/internal/runner"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.txt from the current simulator")

// TestGoldenFigures renders every figure through the runner-backed
// harness and compares the concatenated tables byte-for-byte against
// testdata/golden.txt, which was captured from the pre-runner harness
// (sequential per-figure execution). The refactor to a shared parallel
// runner with deduplication and memoization must not change a single
// digit of any table. The 8-way pool also serves as the -race exercise
// for the runner (see .github/workflows/ci.yml).
func TestGoldenFigures(t *testing.T) {
	r, err := runner.New(context.Background(), runner.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLabWithRunner(60_000, r)
	l.Only = []string{"mcf", "lbm"}

	// Generation submits every figure's specs before anything resolves:
	// all ten figures share one saturated pool, as cmd/experiments -all does.
	pendings := []*Pending{
		l.Figure1Skip(500, 12, 2),
		l.Section31(),
		l.Figure4(),
		l.Figure7(),
		l.Figure8(),
		l.Figure9(),
		l.Figure10(),
		l.Figure11(),
		l.Figure12(),
		l.PrefetcherSensitivity(),
		l.CycleAccounting(),
		l.SamplingValidation(),
	}
	var b strings.Builder
	for _, p := range pendings {
		tab, err := p.Table(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(tab.Format())
	}
	got := b.String()

	path := filepath.Join("testdata", "golden.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("figure tables diverge from pre-refactor golden at line %d:\n got: %q\nwant: %q", i+1, g, w)
		}
	}
}
