package harness

import (
	"context"
	"fmt"

	"crisp/internal/crisp"
	"crisp/internal/metrics"
	"crisp/internal/runner"
)

// CycleAccounting renders the top-down cycle accounting figure: for each
// workload, the baseline OOO and the CRISP run's commit slots split into
// retired work and the stall classes of internal/metrics, in percent.
// Memory-bound is split by serving level — mem_dram is the ROB-head
// DRAM-stall share CRISP exists to shrink — and the core-bound buckets
// (window/RS/LQ/SQ/port/dep/exec) are aggregated into one column. Each
// row self-checks the attribution invariant (buckets + retired slots sum
// to Cycles × CommitWidth) and fails the figure on any drift.
func (l *Lab) CycleAccounting() *Pending {
	t := &Table{
		Title:   "Cycle accounting: commit-slot breakdown (%)",
		Columns: []string{"app/sched", "retired", "frontend", "branch", "mem_l1", "mem_llc", "mem_dram", "core_bound"},
	}
	width := l.Cfg.Core.CommitWidth
	var rows []rowSource
	var skipped, cycles uint64
	// wrap records the skip-efficiency counters of each resolved run for
	// the HostNotes footnote below (gated like every host-side note, so
	// the golden rendering of the figure is untouched).
	wrap := func(label string, h *runner.RunHandle) rowSource {
		inner := breakdownCells(width, h)
		return rowSource{label, func(ctx context.Context) ([]float64, error) {
			cells, err := inner(ctx)
			if err != nil {
				return nil, err
			}
			r, _ := h.Result(ctx)
			skipped += r.SkippedCycles
			cycles += r.Cycles
			return cells, nil
		}}
	}
	for _, name := range l.suite() {
		base := l.R.Submit(l.refSpec(name))
		cr := l.R.Submit(l.crispSpec(name, crisp.DefaultOptions()))
		rows = append(rows,
			wrap(name+"/ooo", base),
			wrap(name+"/crisp", cr))
	}
	return pending(t, rows, func(t *Table) {
		// Quote the headline effect per workload: the DRAM-bound share
		// under the baseline vs under CRISP (column 5, rows in ooo/crisp
		// pairs).
		const dramCol = 5
		for i := 0; i+1 < len(t.Rows); i += 2 {
			ooo, cr := t.Rows[i], t.Rows[i+1]
			t.Notes = append(t.Notes, fmt.Sprintf("%s mem_dram slots: ooo %.1f%% -> crisp %.1f%%",
				ooo.Label[:len(ooo.Label)-len("/ooo")], ooo.Cells[dramCol], cr.Cells[dramCol]))
		}
		if l.HostNotes && cycles > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"next-event idle skipping covered %.1f%% of the %d simulated cycles behind this figure (cycle-exact; see DebugNoSkip)",
				float64(skipped)/float64(cycles)*100, cycles))
		}
	})
}

// breakdownCells resolves one run into percentage cells, failing if the
// breakdown does not partition the run's commit slots exactly.
func breakdownCells(width int, h *runner.RunHandle) func(ctx context.Context) ([]float64, error) {
	return func(ctx context.Context) ([]float64, error) {
		r, err := h.Result(ctx)
		if err != nil {
			return nil, err
		}
		b := &r.Breakdown
		slots := r.Cycles * uint64(width)
		if total := b.Total(); total != slots {
			return nil, fmt.Errorf("harness: cycle-accounting drift: buckets sum to %d, want Cycles×CommitWidth = %d", total, slots)
		}
		if b.Committed != r.Insts {
			return nil, fmt.Errorf("harness: cycle-accounting drift: %d committed slots vs %d retired µops", b.Committed, r.Insts)
		}
		pct := func(v uint64) float64 { return float64(v) / float64(slots) * 100 }
		coreBound := b.Stalls[metrics.CoreROBFull] + b.Stalls[metrics.CoreRSFull] +
			b.Stalls[metrics.CoreLQFull] + b.Stalls[metrics.CoreSQFull] +
			b.Stalls[metrics.CorePort] + b.Stalls[metrics.CoreDep] + b.Stalls[metrics.CoreExec]
		return []float64{
			pct(b.Committed),
			pct(b.Stalls[metrics.Frontend]),
			pct(b.Stalls[metrics.BranchRedirect]),
			pct(b.Stalls[metrics.MemL1]),
			pct(b.Stalls[metrics.MemLLC]),
			pct(b.Stalls[metrics.MemDRAM]),
			pct(coreBound),
		}, nil
	}
}
