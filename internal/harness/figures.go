package harness

import (
	"context"
	"fmt"

	"crisp/internal/crisp"
	"crisp/internal/runner"
	"crisp/internal/sim"
)

// Figure1 reproduces the UPC-over-time microbenchmark comparison: µops
// retired per cycle in fixed windows for OOO and CRISP on the
// pointer-chase kernel. Columns: window index, OOO UPC, CRISP UPC.
func (l *Lab) Figure1(window int, windows int) *Pending {
	return l.Figure1Skip(window, windows, 0)
}

// Figure1Skip is Figure1 with the first `skip` windows (cache and
// predictor warmup) omitted.
func (l *Lab) Figure1Skip(window, windows, skip int) *Pending {
	baseSpec := l.refSpec("pointerchase")
	baseSpec.UPCWindow = window
	crSpec := baseSpec.WithCrisp(crisp.DefaultOptions())
	baseH := l.R.Submit(baseSpec)
	crH := l.R.Submit(crSpec)

	return &Pending{resolve: func(ctx context.Context) (*Table, error) {
		base, err := baseH.Result(ctx)
		if err != nil {
			return nil, err
		}
		cr, err := crH.Result(ctx)
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title:   fmt.Sprintf("Figure 1: UPC per %d-cycle window, pointer-chase µbench", window),
			Columns: []string{"window", "ooo_upc", "crisp_upc"},
		}
		n := min(len(base.UPCWindows), len(cr.UPCWindows))
		if skip >= n {
			skip = 0
		}
		if windows > 0 && n > skip+windows {
			n = skip + windows
		}
		for i := skip; i < n; i++ {
			t.Rows = append(t.Rows, Row{
				Label: fmt.Sprintf("w%03d", i),
				Cells: []float64{base.UPCWindows[i], cr.UPCWindows[i]},
			})
		}
		t.Notes = append(t.Notes,
			fmt.Sprintf("mean UPC: OOO %.3f CRISP %.3f (+%.1f%%)", base.IPC(), cr.IPC(), gain(cr, base)))
		return t, nil
	}}
}

// Figure4 reports the average dynamic load-slice size per application
// (pre-filter), extracted by the software slicer.
func (l *Lab) Figure4() *Pending {
	t := &Table{
		Title:   "Figure 4: average load slice size (dynamic instructions)",
		Columns: []string{"app", "avg_slice"},
	}
	opts := crisp.DefaultOptions()
	opts.FilterCriticalPath = false
	var rows []rowSource
	for _, name := range l.suite() {
		h := l.R.SubmitAnalysis(l.analysisSpec(name, opts))
		rows = append(rows, rowSource{name, func(ctx context.Context) ([]float64, error) {
			a, err := h.Result(ctx)
			if err != nil {
				return nil, err
			}
			return []float64{a.AvgLoadSliceDynLen}, nil
		}})
	}
	return pending(t, rows, nil)
}

// Figure7 compares CRISP and IBDA (1K/8K/64K/infinite IST) IPC gains over
// the OOO baseline, in percent.
func (l *Lab) Figure7() *Pending {
	t := &Table{
		Title:   "Figure 7: IPC improvement over OOO baseline (%)",
		Columns: []string{"app", "crisp", "ibda_1k", "ibda_8k", "ibda_64k", "ibda_inf"},
	}
	var rows []rowSource
	for _, name := range l.suite() {
		base := l.R.Submit(l.refSpec(name))
		runs := []*runner.RunHandle{
			l.R.Submit(l.crispSpec(name, crisp.DefaultOptions())),
			l.R.Submit(l.ibdaSpec(name, 1024, 4)),
			l.R.Submit(l.ibdaSpec(name, 8192, 8)),
			l.R.Submit(l.ibdaSpec(name, 65536, 16)),
			l.R.Submit(l.ibdaSpec(name, 0, 0)),
		}
		rows = append(rows, rowSource{name, gainCells(base, runs)})
	}
	return pending(t, rows, func(t *Table) {
		t.Notes = append(t.Notes,
			fmt.Sprintf("geomean: crisp %+.2f%%, ibda_1k %+.2f%%", t.GeoMeanGain(0), t.GeoMeanGain(1)))
	})
}

// gainCells resolves a row of IPC gains of runs over base, in percent.
func gainCells(base *runner.RunHandle, runs []*runner.RunHandle) func(ctx context.Context) ([]float64, error) {
	return func(ctx context.Context) ([]float64, error) {
		b, err := base.Result(ctx)
		if err != nil {
			return nil, err
		}
		cells := make([]float64, len(runs))
		for i, h := range runs {
			r, err := h.Result(ctx)
			if err != nil {
				return nil, err
			}
			cells[i] = gain(r, b)
		}
		return cells, nil
	}
}

// Figure8 isolates load slices, branch slices, and their combination.
func (l *Lab) Figure8() *Pending {
	t := &Table{
		Title:   "Figure 8: slice-kind contribution, IPC gain over OOO (%)",
		Columns: []string{"app", "load_only", "branch_only", "combined"},
	}
	lo := crisp.DefaultOptions()
	lo.BranchSlices = false
	bo := crisp.DefaultOptions()
	bo.LoadSlices = false
	both := crisp.DefaultOptions()
	var rows []rowSource
	for _, name := range l.suite() {
		base := l.R.Submit(l.refSpec(name))
		runs := []*runner.RunHandle{
			l.R.Submit(l.crispSpec(name, lo)),
			l.R.Submit(l.crispSpec(name, bo)),
			l.R.Submit(l.crispSpec(name, both)),
		}
		rows = append(rows, rowSource{name, gainCells(base, runs)})
	}
	return pending(t, rows, nil)
}

// windowConfigs are the Figure 9 RS/ROB sweep points (Skylake-like 96/224
// baseline, then +50% and +100%, plus the smaller 64/180 point).
var windowConfigs = []struct {
	Name    string
	RS, ROB int
}{
	{"64rs_180rob", 64, 180},
	{"96rs_224rob", 96, 224},
	{"144rs_336rob", 144, 336},
	{"192rs_448rob", 192, 448},
}

// Figure9 sweeps reservation-station and ROB sizes. The CRISP analysis
// is shared across window points (the software pipeline profiles on the
// default window, as in Section 5.4).
func (l *Lab) Figure9() *Pending {
	t := &Table{
		Title:   "Figure 9: CRISP IPC gain (%) vs RS/ROB size",
		Columns: []string{"app"},
	}
	for _, wc := range windowConfigs {
		t.Columns = append(t.Columns, wc.Name)
	}
	var rows []rowSource
	for _, name := range l.suite() {
		var bases, runs []*runner.RunHandle
		for _, wc := range windowConfigs {
			bs := l.refSpec(name)
			bs.RS, bs.ROB = wc.RS, wc.ROB
			bases = append(bases, l.R.Submit(bs))
			cs := l.crispSpec(name, crisp.DefaultOptions())
			cs.RS, cs.ROB = wc.RS, wc.ROB
			runs = append(runs, l.R.Submit(cs))
		}
		rows = append(rows, rowSource{name, pairedGainCells(bases, runs)})
	}
	return pending(t, rows, nil)
}

// pairedGainCells resolves a row where each cell has its own baseline.
func pairedGainCells(bases, runs []*runner.RunHandle) func(ctx context.Context) ([]float64, error) {
	return func(ctx context.Context) ([]float64, error) {
		cells := make([]float64, len(runs))
		for i := range runs {
			b, err := bases[i].Result(ctx)
			if err != nil {
				return nil, err
			}
			r, err := runs[i].Result(ctx)
			if err != nil {
				return nil, err
			}
			cells[i] = gain(r, b)
		}
		return cells, nil
	}
}

// Figure10 sweeps the miss-share criticality threshold T (Section 5.5).
func (l *Lab) Figure10() *Pending {
	ts := []float64{0.05, 0.01, 0.002}
	t := &Table{
		Title:   "Figure 10: CRISP IPC gain (%) vs miss-share threshold T",
		Columns: []string{"app", "T=5%", "T=1%", "T=0.2%"},
	}
	var rows []rowSource
	for _, name := range l.suite() {
		base := l.R.Submit(l.refSpec(name))
		var runs []*runner.RunHandle
		for _, thr := range ts {
			opts := crisp.DefaultOptions()
			opts.MissShareThreshold = thr
			runs = append(runs, l.R.Submit(l.crispSpec(name, opts)))
		}
		rows = append(rows, rowSource{name, gainCells(base, runs)})
	}
	return pending(t, rows, func(t *Table) {
		for i := range ts {
			t.Notes = append(t.Notes, fmt.Sprintf("geomean %s: %+.2f%%", t.Columns[i+1], t.GeoMeanGain(i)))
		}
	})
}

// Figure11 reports the number of unique critical (tagged) static
// instructions per application.
func (l *Lab) Figure11() *Pending {
	t := &Table{
		Title:   "Figure 11: unique critical instructions",
		Columns: []string{"app", "critical_pcs", "dyn_fraction"},
	}
	var rows []rowSource
	for _, name := range l.suite() {
		h := l.R.SubmitAnalysis(l.analysisSpec(name, crisp.DefaultOptions()))
		rows = append(rows, rowSource{name, func(ctx context.Context) ([]float64, error) {
			a, err := h.Result(ctx)
			if err != nil {
				return nil, err
			}
			return []float64{float64(len(a.CriticalPCs)), a.DynCriticalFraction}, nil
		}})
	}
	return pending(t, rows, nil)
}

// Figure12 reports the prefix footprint overheads: static and dynamic code
// size increase (%) and the instruction-cache MPKI delta (%) between
// untagged and tagged CRISP runs.
func (l *Lab) Figure12() *Pending {
	t := &Table{
		Title:   "Figure 12: critical-prefix footprint overhead",
		Columns: []string{"app", "static_pct", "dynamic_pct", "icache_mpki_pct"},
	}
	var rows []rowSource
	for _, name := range l.suite() {
		fpH := l.R.SubmitFootprint(l.analysisSpec(name, crisp.DefaultOptions()))
		baseH := l.R.Submit(l.refSpec(name))
		crH := l.R.Submit(l.crispSpec(name, crisp.DefaultOptions()))
		rows = append(rows, rowSource{name, func(ctx context.Context) ([]float64, error) {
			fp, err := fpH.Result(ctx)
			if err != nil {
				return nil, err
			}
			base, err := baseH.Result(ctx)
			if err != nil {
				return nil, err
			}
			cr, err := crH.Result(ctx)
			if err != nil {
				return nil, err
			}
			dMPKI := 0.0
			if base.L1IMPKI() > 0 {
				dMPKI = (cr.L1IMPKI()/base.L1IMPKI() - 1) * 100
			}
			return []float64{fp.StaticOverhead() * 100, fp.DynOverhead() * 100, dMPKI}, nil
		}})
	}
	return pending(t, rows, nil)
}

// Table1 renders the simulated system configuration.
func (l *Lab) Table1() string {
	c := l.Cfg
	return fmt.Sprintf(`== Table 1: simulated system ==
Frontend width / retirement    %d-way
Functional units               %d ALU, %d load, %d store
Branch predictor               TAGE
BTB                            %d entries, %d-way
ROB                            %d entries
Reservation station            %d entries (unified)
Baseline scheduler             %d-oldest-ready-instructions-first
Data prefetcher                %s
Instruction prefetcher         FDIP, FTQ %d entries
Load buffer                    %d entries
Store buffer                   %d entries
L1I                            %d KiB, %d-way, %d cycles
L1D                            %d KiB, %d-way, %d cycles
LLC                            %d KiB, %d-way, %d cycles
Memory                         DDR4-2400-like, 1 channel, %d banks
`,
		c.Core.FetchWidth,
		c.Core.Ports[0], c.Core.Ports[1], c.Core.Ports[2],
		c.Core.BTBEntries, c.Core.BTBWays,
		c.Core.ROBSize, c.Core.RSSize, c.Core.FetchWidth,
		c.Prefetcher, c.Core.FTQSize,
		c.Core.LoadQueue, c.Core.StoreQueue,
		c.Hier.L1I.SizeKiB, c.Hier.L1I.Ways, c.Hier.L1I.Latency,
		c.Hier.L1D.SizeKiB, c.Hier.L1D.Ways, c.Hier.L1D.Latency,
		c.Hier.LLC.SizeKiB, c.Hier.LLC.Ways, c.Hier.LLC.Latency,
		c.Hier.DRAM.Banks)
}

// Section31 reproduces the motivating measurement of Section 3.1: the
// pointer-chase kernel's IPC under the baseline against the same kernel
// with its critical slice hoisted (our CRISP run stands in for the manual
// prefetch insertion).
func (l *Lab) Section31() *Pending {
	baseH := l.R.Submit(l.refSpec("pointerchase"))
	crH := l.R.Submit(l.crispSpec("pointerchase", crisp.DefaultOptions()))
	return &Pending{resolve: func(ctx context.Context) (*Table, error) {
		base, err := baseH.Result(ctx)
		if err != nil {
			return nil, err
		}
		cr, err := crH.Result(ctx)
		if err != nil {
			return nil, err
		}
		return &Table{
			Title:   "Section 3.1: pointer-chase kernel, baseline vs hoisted slice",
			Columns: []string{"config", "ipc"},
			Rows: []Row{
				{Label: "baseline", Cells: []float64{base.IPC()}},
				{Label: "hoisted", Cells: []float64{cr.IPC()}},
			},
		}, nil
	}}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// PrefetcherSensitivity reproduces the Section 5.1 observation that
// CRISP's improvement is similar regardless of the baseline data
// prefetcher (the paper reports BOP, plain stride, and GHB baselines).
func (l *Lab) PrefetcherSensitivity() *Pending {
	kinds := []sim.PrefetcherKind{sim.PFBOPStream, sim.PFStride, sim.PFGHB, sim.PFNone}
	t := &Table{
		Title:   "Section 5.1: CRISP IPC gain (%) vs baseline prefetcher",
		Columns: []string{"app", "bop+stream", "stride", "ghb", "none"},
	}
	var rows []rowSource
	for _, name := range l.suite() {
		var bases, runs []*runner.RunHandle
		for _, k := range kinds {
			bs := l.refSpec(name)
			bs.Prefetcher = k
			bases = append(bases, l.R.Submit(bs))
			cs := l.crispSpec(name, crisp.DefaultOptions())
			cs.Prefetcher = k
			runs = append(runs, l.R.Submit(cs))
		}
		rows = append(rows, rowSource{name, pairedGainCells(bases, runs)})
	}
	return pending(t, rows, nil)
}
