package harness

import (
	"fmt"

	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/sim"
	"crisp/internal/workload"
)

// Figure1 reproduces the UPC-over-time microbenchmark comparison: µops
// retired per cycle in fixed windows for OOO and CRISP on the
// pointer-chase kernel. Columns: window index, OOO UPC, CRISP UPC.
func (l *Lab) Figure1(window int, windows int) *Table {
	return l.Figure1Skip(window, windows, 0)
}

// Figure1Skip is Figure1 with the first `skip` windows (cache and
// predictor warmup) omitted.
func (l *Lab) Figure1Skip(window, windows, skip int) *Table {
	w := workload.ByName("pointerchase")
	cfg := l.Cfg
	cfg.Core.UPCWindow = window

	a := l.Analyze(w, crisp.DefaultOptions())

	base := sim.Run(w.Build(workload.Ref), cfg.WithSched(core.SchedOldestFirst))
	img := w.Build(workload.Ref)
	img.Prog = a.Apply(img.Prog)
	cr := sim.Run(img, cfg.WithSched(core.SchedCRISP))

	t := &Table{
		Title:   fmt.Sprintf("Figure 1: UPC per %d-cycle window, pointer-chase µbench", window),
		Columns: []string{"window", "ooo_upc", "crisp_upc"},
	}
	n := min(len(base.UPCWindows), len(cr.UPCWindows))
	if skip >= n {
		skip = 0
	}
	if windows > 0 && n > skip+windows {
		n = skip + windows
	}
	for i := skip; i < n; i++ {
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("w%03d", i),
			Cells: []float64{base.UPCWindows[i], cr.UPCWindows[i]},
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean UPC: OOO %.3f CRISP %.3f (+%.1f%%)", base.IPC(), cr.IPC(), gain(cr, base)))
	return t
}

// Figure4 reports the average dynamic load-slice size per application
// (pre-filter), extracted by the software slicer.
func (l *Lab) Figure4() *Table {
	t := &Table{
		Title:   "Figure 4: average load slice size (dynamic instructions)",
		Columns: []string{"app", "avg_slice"},
	}
	opts := crisp.DefaultOptions()
	opts.FilterCriticalPath = false
	t.Rows = l.forEach(l.suite(), func(w *workload.Workload) Row {
		a := l.Analyze(w, opts)
		return Row{Label: w.Name, Cells: []float64{a.AvgLoadSliceDynLen}}
	})
	return t
}

// Figure7 compares CRISP and IBDA (1K/8K/64K/infinite IST) IPC gains over
// the OOO baseline, in percent.
func (l *Lab) Figure7() *Table {
	t := &Table{
		Title:   "Figure 7: IPC improvement over OOO baseline (%)",
		Columns: []string{"app", "crisp", "ibda_1k", "ibda_8k", "ibda_64k", "ibda_inf"},
	}
	t.Rows = l.forEach(l.suite(), func(w *workload.Workload) Row {
		base := l.Baseline(w, l.Cfg, "default")
		a := l.Analyze(w, crisp.DefaultOptions())
		cr := l.RunCRISP(w, a, l.Cfg)
		i1 := l.RunIBDA(w, 1024, 4, l.Cfg)
		i8 := l.RunIBDA(w, 8192, 8, l.Cfg)
		i64 := l.RunIBDA(w, 65536, 16, l.Cfg)
		iInf := l.RunIBDA(w, 0, 0, l.Cfg)
		return Row{Label: w.Name, Cells: []float64{
			gain(cr, base), gain(i1, base), gain(i8, base), gain(i64, base), gain(iInf, base),
		}}
	})
	t.Notes = append(t.Notes,
		fmt.Sprintf("geomean: crisp %+.2f%%, ibda_1k %+.2f%%", t.GeoMeanGain(0), t.GeoMeanGain(1)))
	return t
}

// Figure8 isolates load slices, branch slices, and their combination.
func (l *Lab) Figure8() *Table {
	t := &Table{
		Title:   "Figure 8: slice-kind contribution, IPC gain over OOO (%)",
		Columns: []string{"app", "load_only", "branch_only", "combined"},
	}
	t.Rows = l.forEach(l.suite(), func(w *workload.Workload) Row {
		base := l.Baseline(w, l.Cfg, "default")
		lo := crisp.DefaultOptions()
		lo.BranchSlices = false
		bo := crisp.DefaultOptions()
		bo.LoadSlices = false
		both := crisp.DefaultOptions()
		rl := l.RunCRISP(w, l.Analyze(w, lo), l.Cfg)
		rb := l.RunCRISP(w, l.Analyze(w, bo), l.Cfg)
		rc := l.RunCRISP(w, l.Analyze(w, both), l.Cfg)
		return Row{Label: w.Name, Cells: []float64{gain(rl, base), gain(rb, base), gain(rc, base)}}
	})
	return t
}

// windowConfigs are the Figure 9 RS/ROB sweep points (Skylake-like 96/224
// baseline, then +50% and +100%, plus the smaller 64/180 point).
var windowConfigs = []struct {
	Name    string
	RS, ROB int
}{
	{"64rs_180rob", 64, 180},
	{"96rs_224rob", 96, 224},
	{"144rs_336rob", 144, 336},
	{"192rs_448rob", 192, 448},
}

// Figure9 sweeps reservation-station and ROB sizes.
func (l *Lab) Figure9() *Table {
	t := &Table{
		Title:   "Figure 9: CRISP IPC gain (%) vs RS/ROB size",
		Columns: []string{"app"},
	}
	for _, wc := range windowConfigs {
		t.Columns = append(t.Columns, wc.Name)
	}
	t.Rows = l.forEach(l.suite(), func(w *workload.Workload) Row {
		a := l.Analyze(w, crisp.DefaultOptions())
		row := Row{Label: w.Name}
		for _, wc := range windowConfigs {
			cfg := l.Cfg.WithWindow(wc.RS, wc.ROB)
			base := l.Baseline(w, cfg, wc.Name)
			cr := l.RunCRISP(w, a, cfg)
			row.Cells = append(row.Cells, gain(cr, base))
		}
		return row
	})
	return t
}

// Figure10 sweeps the miss-share criticality threshold T (Section 5.5).
func (l *Lab) Figure10() *Table {
	ts := []float64{0.05, 0.01, 0.002}
	t := &Table{
		Title:   "Figure 10: CRISP IPC gain (%) vs miss-share threshold T",
		Columns: []string{"app", "T=5%", "T=1%", "T=0.2%"},
	}
	t.Rows = l.forEach(l.suite(), func(w *workload.Workload) Row {
		base := l.Baseline(w, l.Cfg, "default")
		row := Row{Label: w.Name}
		for _, thr := range ts {
			opts := crisp.DefaultOptions()
			opts.MissShareThreshold = thr
			cr := l.RunCRISP(w, l.Analyze(w, opts), l.Cfg)
			row.Cells = append(row.Cells, gain(cr, base))
		}
		return row
	})
	for i := range ts {
		t.Notes = append(t.Notes, fmt.Sprintf("geomean %s: %+.2f%%", t.Columns[i+1], t.GeoMeanGain(i)))
	}
	return t
}

// Figure11 reports the number of unique critical (tagged) static
// instructions per application.
func (l *Lab) Figure11() *Table {
	t := &Table{
		Title:   "Figure 11: unique critical instructions",
		Columns: []string{"app", "critical_pcs", "dyn_fraction"},
	}
	t.Rows = l.forEach(l.suite(), func(w *workload.Workload) Row {
		a := l.Analyze(w, crisp.DefaultOptions())
		return Row{Label: w.Name, Cells: []float64{
			float64(len(a.CriticalPCs)), a.DynCriticalFraction,
		}}
	})
	return t
}

// Figure12 reports the prefix footprint overheads: static and dynamic code
// size increase (%) and the instruction-cache MPKI delta (%) between
// untagged and tagged CRISP runs.
func (l *Lab) Figure12() *Table {
	t := &Table{
		Title:   "Figure 12: critical-prefix footprint overhead",
		Columns: []string{"app", "static_pct", "dynamic_pct", "icache_mpki_pct"},
	}
	t.Rows = l.forEach(l.suite(), func(w *workload.Workload) Row {
		a := l.Analyze(w, crisp.DefaultOptions())
		_, tr := l.train(w)
		fp := crisp.MeasureFootprint(w.Build(workload.Train).Prog, tr, a.CriticalPCs)

		base := l.Baseline(w, l.Cfg, "default")
		cr := l.RunCRISP(w, a, l.Cfg)
		dMPKI := 0.0
		if base.L1IMPKI() > 0 {
			dMPKI = (cr.L1IMPKI()/base.L1IMPKI() - 1) * 100
		}
		return Row{Label: w.Name, Cells: []float64{
			fp.StaticOverhead() * 100, fp.DynOverhead() * 100, dMPKI,
		}}
	})
	return t
}

// Table1 renders the simulated system configuration.
func (l *Lab) Table1() string {
	c := l.Cfg
	return fmt.Sprintf(`== Table 1: simulated system ==
Frontend width / retirement    %d-way
Functional units               %d ALU, %d load, %d store
Branch predictor               TAGE
BTB                            %d entries, %d-way
ROB                            %d entries
Reservation station            %d entries (unified)
Baseline scheduler             %d-oldest-ready-instructions-first
Data prefetcher                %s
Instruction prefetcher         FDIP, FTQ %d entries
Load buffer                    %d entries
Store buffer                   %d entries
L1I                            %d KiB, %d-way, %d cycles
L1D                            %d KiB, %d-way, %d cycles
LLC                            %d KiB, %d-way, %d cycles
Memory                         DDR4-2400-like, 1 channel, %d banks
`,
		c.Core.FetchWidth,
		c.Core.Ports[0], c.Core.Ports[1], c.Core.Ports[2],
		c.Core.BTBEntries, c.Core.BTBWays,
		c.Core.ROBSize, c.Core.RSSize, c.Core.FetchWidth,
		c.Prefetcher, c.Core.FTQSize,
		c.Core.LoadQueue, c.Core.StoreQueue,
		c.Hier.L1I.SizeKiB, c.Hier.L1I.Ways, c.Hier.L1I.Latency,
		c.Hier.L1D.SizeKiB, c.Hier.L1D.Ways, c.Hier.L1D.Latency,
		c.Hier.LLC.SizeKiB, c.Hier.LLC.Ways, c.Hier.LLC.Latency,
		c.Hier.DRAM.Banks)
}

// Section31 reproduces the motivating measurement of Section 3.1: the
// pointer-chase kernel's IPC under the baseline against the same kernel
// with its critical slice hoisted (our CRISP run stands in for the manual
// prefetch insertion).
func (l *Lab) Section31() *Table {
	w := workload.ByName("pointerchase")
	base := l.Baseline(w, l.Cfg, "default")
	a := l.Analyze(w, crisp.DefaultOptions())
	cr := l.RunCRISP(w, a, l.Cfg)
	t := &Table{
		Title:   "Section 3.1: pointer-chase kernel, baseline vs hoisted slice",
		Columns: []string{"config", "ipc"},
		Rows: []Row{
			{Label: "baseline", Cells: []float64{base.IPC()}},
			{Label: "hoisted", Cells: []float64{cr.IPC()}},
		},
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// PrefetcherSensitivity reproduces the Section 5.1 observation that
// CRISP's improvement is similar regardless of the baseline data
// prefetcher (the paper reports BOP, plain stride, and GHB baselines).
func (l *Lab) PrefetcherSensitivity() *Table {
	kinds := []sim.PrefetcherKind{sim.PFBOPStream, sim.PFStride, sim.PFGHB, sim.PFNone}
	t := &Table{
		Title:   "Section 5.1: CRISP IPC gain (%) vs baseline prefetcher",
		Columns: []string{"app", "bop+stream", "stride", "ghb", "none"},
	}
	t.Rows = l.forEach(l.suite(), func(w *workload.Workload) Row {
		a := l.Analyze(w, crisp.DefaultOptions())
		row := Row{Label: w.Name}
		for _, k := range kinds {
			cfg := l.Cfg
			cfg.Prefetcher = k
			base := l.Baseline(w, cfg, "pf_"+k.String())
			cr := l.RunCRISP(w, a, cfg)
			row.Cells = append(row.Cells, gain(cr, base))
		}
		return row
	})
	return t
}
