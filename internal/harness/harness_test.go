package harness

import (
	"context"
	"strings"
	"sync"
	"testing"

	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/workload"
)

func testLab() *Lab {
	l := NewLab(60_000)
	l.Only = []string{"mcf", "lbm"}
	return l
}

func TestTableFormatAndCSV(t *testing.T) {
	tab := &Table{
		Title:   "test",
		Columns: []string{"app", "a", "b"},
		Rows: []Row{
			{Label: "x", Cells: []float64{1.5, -2}},
			{Label: "y", Cells: []float64{0, 3.25}},
		},
		Notes: []string{"note"},
	}
	s := tab.Format()
	for _, want := range []string{"== test ==", "x", "y", "# note"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format missing %q:\n%s", want, s)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "app,a,b\n") || !strings.Contains(csv, "x,1.5,-2") {
		t.Errorf("CSV = %q", csv)
	}
}

func TestGeoMeanGain(t *testing.T) {
	tab := &Table{Rows: []Row{
		{Cells: []float64{10}},
		{Cells: []float64{10}},
	}}
	if g := tab.GeoMeanGain(0); g < 9.99 || g > 10.01 {
		t.Errorf("geomean of equal gains = %v, want 10", g)
	}
	if g := (&Table{}).GeoMeanGain(0); g != 0 {
		t.Errorf("empty geomean = %v", g)
	}
}

func TestFigure1Structure(t *testing.T) {
	l := NewLab(40_000)
	tab := l.Figure1(500, 20).MustTable()
	if len(tab.Rows) == 0 || len(tab.Rows) > 20 {
		t.Fatalf("Figure1 rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r.Cells) != 2 {
			t.Fatalf("row %s has %d cells", r.Label, len(r.Cells))
		}
		for _, upc := range r.Cells {
			if upc < 0 || upc > 6 {
				t.Errorf("UPC %v outside [0, 6]", upc)
			}
		}
	}
}

func TestFigure7Structure(t *testing.T) {
	l := testLab()
	tab := l.Figure7().MustTable()
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r.Cells) != 5 {
			t.Fatalf("row %s cells = %d, want 5 (crisp + 4 IBDA)", r.Label, len(r.Cells))
		}
	}
	// mcf: CRISP must beat baseline on the chase-heavy workload.
	if tab.Rows[0].Label != "mcf" || tab.Rows[0].Cells[0] <= 0 {
		t.Errorf("mcf CRISP gain = %v, want > 0", tab.Rows[0].Cells[0])
	}
}

func TestFigure8SliceToggles(t *testing.T) {
	l := testLab()
	tab := l.Figure8().MustTable()
	for _, r := range tab.Rows {
		if len(r.Cells) != 3 {
			t.Fatalf("row %s cells = %d", r.Label, len(r.Cells))
		}
	}
}

func TestFigure9WindowSweep(t *testing.T) {
	l := NewLab(60_000)
	l.Only = []string{"xhpcg"}
	tab := l.Figure9().MustTable()
	if len(tab.Rows) != 1 || len(tab.Rows[0].Cells) != len(windowConfigs) {
		t.Fatalf("unexpected shape: %+v", tab.Rows)
	}
}

func TestFigure10ThresholdMonotonicCandidates(t *testing.T) {
	l := testLab()
	tab := l.Figure10().MustTable()
	if len(tab.Columns) != 4 {
		t.Fatalf("columns = %v", tab.Columns)
	}
}

func TestFigure11And12(t *testing.T) {
	l := testLab()
	f11 := l.Figure11().MustTable()
	for _, r := range f11.Rows {
		if r.Cells[0] < 0 || r.Cells[1] < 0 || r.Cells[1] > 1 {
			t.Errorf("row %s: implausible cells %v", r.Label, r.Cells)
		}
	}
	f12 := l.Figure12().MustTable()
	for _, r := range f12.Rows {
		if r.Cells[0] < 0 || r.Cells[0] > 10 {
			t.Errorf("row %s: static overhead %v%% implausible", r.Label, r.Cells[0])
		}
		if r.Cells[1] < 0 || r.Cells[1] > 50 {
			t.Errorf("row %s: dynamic overhead %v%% implausible", r.Label, r.Cells[1])
		}
	}
}

func TestTable1Render(t *testing.T) {
	s := NewLab(1000).Table1()
	for _, want := range []string{"224 entries", "96 entries", "TAGE", "bop+stream"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

// TestLabSingleFlight pins the fix for the Lab.train/Lab.Baseline
// duplicate-work race: concurrent cache misses on the same expensive run
// must collapse to ONE simulation (the old check-then-act map cache could
// run the same train profile twice). All callers must observe the same
// result instance.
func TestLabSingleFlight(t *testing.T) {
	l := NewLab(30_000)
	w := workload.ByName("mcf")
	const callers = 8
	results := make([]*core.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = l.Baseline(w)
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result instance", i)
		}
	}
	if s := l.R.Stats(); s.Executed != 1 {
		t.Fatalf("%d simulations executed for %d concurrent identical requests, want 1", s.Executed, callers)
	}

	// The analysis path (the old Lab.train) is memoized the same way.
	a1 := l.Analyze(w, crisp.DefaultOptions())
	a2 := l.Analyze(w, crisp.DefaultOptions())
	if a1 != a2 {
		t.Errorf("Analyze results not memoized")
	}
}

func TestAnalyzeProducesTags(t *testing.T) {
	l := NewLab(60_000)
	a := l.Analyze(workload.ByName("mcf"), crisp.DefaultOptions())
	if len(a.CriticalPCs) == 0 {
		t.Fatalf("no critical PCs for mcf")
	}
}

func TestSection31(t *testing.T) {
	l := NewLab(50_000)
	tab := l.Section31().MustTable()
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[1].Cells[0] <= tab.Rows[0].Cells[0] {
		t.Errorf("hoisted IPC %.3f not above baseline %.3f",
			tab.Rows[1].Cells[0], tab.Rows[0].Cells[0])
	}
}

func TestPrefetcherSensitivity(t *testing.T) {
	l := NewLab(50_000)
	l.Only = []string{"mcf"}
	tab := l.PrefetcherSensitivity().MustTable()
	if len(tab.Rows) != 1 || len(tab.Rows[0].Cells) != 4 {
		t.Fatalf("unexpected shape: %+v", tab.Rows)
	}
	// The chase gain should be present regardless of prefetcher.
	for i, g := range tab.Rows[0].Cells {
		if g < 0.5 {
			t.Errorf("mcf gain under %s = %.2f%%, want > 0.5%%", tab.Columns[i+1], g)
		}
	}
}

// TestPendingErrorPropagates: a figure over an unknown workload fails
// with the name list instead of panicking inside a worker goroutine.
func TestPendingErrorPropagates(t *testing.T) {
	l := NewLab(10_000)
	l.Only = []string{"no-such-workload"}
	_, err := l.Figure7().Table(context.Background())
	if err == nil || !strings.Contains(err.Error(), "no-such-workload") || !strings.Contains(err.Error(), "mcf") {
		t.Fatalf("err = %v, want unknown-workload error listing known names", err)
	}
}
