// Package harness drives the paper's experiments: one driver per table
// and figure of the evaluation (Section 5), producing aligned-text and
// CSV tables. Figures are spec generators: each builds the flat set of
// sim.RunSpec / runner.AnalysisSpec jobs behind its rows and submits
// them to the Lab's shared runner immediately, so every requested
// figure's work interleaves on one saturated worker pool with duplicate
// runs (shared OOO baselines, shared train profiles) executed once.
package harness

import (
	"context"
	"fmt"
	"math"
	"strings"

	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/ibda"
	"crisp/internal/runner"
	"crisp/internal/sim"
	"crisp/internal/workload"
)

// Table is a formatted experiment result.
type Table struct {
	Title   string
	Columns []string // first column is the row label
	Rows    []Row
	Notes   []string
}

// Row is one line of a Table.
type Row struct {
	Label string
	Cells []float64
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	fmt.Fprintf(&b, "%-14s", t.Columns[0])
	for _, c := range t.Columns[1:] {
		fmt.Fprintf(&b, " %12s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s", r.Label)
		for _, v := range r.Cells {
			fmt.Fprintf(&b, " %12.3f", v)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(r.Label)
		for _, v := range r.Cells {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// GeoMeanGain returns the geometric mean of (1+cell/100) minus 1, in
// percent, over the given column index — the "average speedup" the paper
// quotes.
func (t *Table) GeoMeanGain(col int) float64 {
	prod := 1.0
	n := 0
	for _, r := range t.Rows {
		if col < len(r.Cells) {
			prod *= 1 + r.Cells[col]/100
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return (math.Pow(prod, 1/float64(n)) - 1) * 100
}

// Pending is a figure whose simulations have been submitted to the
// shared runner but not yet resolved. Building several Pendings before
// resolving any lets all their jobs share the pool; Table then only
// waits and formats.
type Pending struct {
	resolve func(ctx context.Context) (*Table, error)
}

// Table blocks until every submitted job behind the figure resolves and
// returns the formatted result. It fails on cancellation, timeout, or an
// invalid spec (for example an unknown workload name).
func (p *Pending) Table(ctx context.Context) (*Table, error) { return p.resolve(ctx) }

// MustTable is Table with a background context, panicking on error —
// for tests and examples where specs are known-good.
func (p *Pending) MustTable() *Table {
	t, err := p.Table(context.Background())
	if err != nil {
		panic(err)
	}
	return t
}

// rowSource is one pending row: a label plus a resolver that waits on
// the row's submitted jobs and produces its cells.
type rowSource struct {
	label string
	cells func(ctx context.Context) ([]float64, error)
}

// pending assembles a Pending that resolves rows in order into t and
// then runs finish (for notes derived from the resolved table).
func pending(t *Table, rows []rowSource, finish func(*Table)) *Pending {
	return &Pending{resolve: func(ctx context.Context) (*Table, error) {
		for _, rs := range rows {
			cells, err := rs.cells(ctx)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, Row{Label: rs.label, Cells: cells})
		}
		if finish != nil {
			finish(t)
		}
		return t, nil
	}}
}

// Lab generates experiment specs over one shared runner. All figures
// built from the same Lab dedupe their runs against each other.
type Lab struct {
	Cfg   sim.Config // Table 1 configuration (rendered by Table1)
	Insts uint64     // instruction budget per timing run
	// Only, when non-empty, restricts suite figures to these workloads
	// (used by tests and quick runs).
	Only []string
	// HostNotes enables wall-clock footnotes on figures that have them
	// (nondeterministic, so golden comparisons leave it off).
	HostNotes bool
	// R is the shared executor.
	R *runner.Runner
}

// NewLab returns a Lab over the Table 1 configuration with the given
// per-run instruction budget and a private in-memory runner.
func NewLab(insts uint64) *Lab {
	r, err := runner.New(context.Background(), runner.Options{})
	if err != nil { // unreachable: no cache dir
		panic(err)
	}
	return NewLabWithRunner(insts, r)
}

// NewLabWithRunner returns a Lab submitting to an existing runner (the
// commands use this to share one pool, cache and context across figures).
func NewLabWithRunner(insts uint64, r *runner.Runner) *Lab {
	cfg := sim.DefaultConfig()
	cfg.Core.MaxInsts = insts
	return &Lab{Cfg: cfg, Insts: insts, R: r}
}

// refSpec is the OOO baseline on the ref input under the Table 1 system.
func (l *Lab) refSpec(name string) sim.RunSpec {
	return sim.RunSpec{Workload: name, Input: sim.InputRef, Sched: sim.SchedOOO, Insts: l.Insts}
}

// crispSpec is the tagged CRISP run on the ref input.
func (l *Lab) crispSpec(name string, opts crisp.Options) sim.RunSpec {
	return l.refSpec(name).WithCrisp(opts)
}

// ibdaSpec is the runtime-IBDA run on the ref input.
func (l *Lab) ibdaSpec(name string, istEntries, istWays int) sim.RunSpec {
	return l.refSpec(name).WithIBDA(ibda.Config{ISTEntries: istEntries, ISTWays: istWays, DLTEntries: 32})
}

// analysisSpec is the software pipeline on the train input.
func (l *Lab) analysisSpec(name string, opts crisp.Options) runner.AnalysisSpec {
	return runner.AnalysisSpec{Workload: name, Insts: l.Insts, Opts: opts}
}

// Analyze runs (or joins) the CRISP software pipeline for a workload.
func (l *Lab) Analyze(w *workload.Workload, opts crisp.Options) *crisp.Analysis {
	a, err := l.R.Analysis(context.Background(), l.analysisSpec(w.Name, opts))
	if err != nil {
		panic(err) // unreachable for registered workloads on an uncancelled runner
	}
	return a
}

// Baseline runs (or joins) the OOO baseline on the ref input. Concurrent
// callers with the same workload share a single execution (the runner's
// per-key single flight).
func (l *Lab) Baseline(w *workload.Workload) *core.Result {
	r, err := l.R.Run(context.Background(), l.refSpec(w.Name))
	if err != nil {
		panic(err)
	}
	return r
}

// RunCRISP runs (or joins) the tagged CRISP configuration on the ref
// input under the pipeline options.
func (l *Lab) RunCRISP(w *workload.Workload, opts crisp.Options) *core.Result {
	r, err := l.R.Run(context.Background(), l.crispSpec(w.Name, opts))
	if err != nil {
		panic(err)
	}
	return r
}

// RunIBDA runs (or joins) the runtime-IBDA configuration on the ref
// input. istEntries <= 0 means an unbounded IST.
func (l *Lab) RunIBDA(w *workload.Workload, istEntries, istWays int) *core.Result {
	r, err := l.R.Run(context.Background(), l.ibdaSpec(w.Name, istEntries, istWays))
	if err != nil {
		panic(err)
	}
	return r
}

// gain returns the IPC improvement of r over base in percent.
func gain(r, base *core.Result) float64 { return (r.IPC()/base.IPC() - 1) * 100 }

// HostThroughputNote formats the process-cumulative simulator speed
// (sim.HostTotals) as a table footnote, so every figure records how fast
// the runs behind it were simulated. It returns "" before any run.
// Results served from the persistent cache add nothing here.
func HostThroughputNote() string {
	insts, ns := sim.HostTotals()
	if ns == 0 {
		return ""
	}
	return fmt.Sprintf("host throughput: %.2f simulated MIPS cumulative (%d insts)",
		float64(insts)*1e3/float64(ns), insts)
}

// suite returns the workload names a figure should cover.
func (l *Lab) suite() []string {
	if len(l.Only) > 0 {
		return l.Only
	}
	return SuiteNames()
}

// SuiteNames returns the evaluation applications (the Fig 7 x-axis): all
// workloads except the microbenchmark and the multi-core co-location
// pair (which exist for the Colocate figure, not the single-core suite).
func SuiteNames() []string {
	var names []string
	for _, w := range workload.All() {
		switch w.Name {
		case "pointerchase", "tailchase", "streambatch":
			continue
		}
		names = append(names, w.Name)
	}
	return names
}
