// Package harness drives the paper's experiments: one driver per table and
// figure of the evaluation (Section 5), producing aligned-text and CSV
// tables. The Lab caches profiling runs, traces, and baselines so that
// figures sharing inputs do not recompute them.
package harness

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"

	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/ibda"
	"crisp/internal/sim"
	"crisp/internal/trace"
	"crisp/internal/workload"
)

// Table is a formatted experiment result.
type Table struct {
	Title   string
	Columns []string // first column is the row label
	Rows    []Row
	Notes   []string
}

// Row is one line of a Table.
type Row struct {
	Label string
	Cells []float64
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	fmt.Fprintf(&b, "%-14s", t.Columns[0])
	for _, c := range t.Columns[1:] {
		fmt.Fprintf(&b, " %12s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s", r.Label)
		for _, v := range r.Cells {
			fmt.Fprintf(&b, " %12.3f", v)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(r.Label)
		for _, v := range r.Cells {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// GeoMeanGain returns the geometric mean of (1+cell/100) minus 1, in
// percent, over the given column index — the "average speedup" the paper
// quotes.
func (t *Table) GeoMeanGain(col int) float64 {
	prod := 1.0
	n := 0
	for _, r := range t.Rows {
		if col < len(r.Cells) {
			prod *= 1 + r.Cells[col]/100
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return (math.Pow(prod, 1/float64(n)) - 1) * 100
}

// Lab runs and caches simulations for the experiment drivers.
type Lab struct {
	Cfg   sim.Config
	Insts uint64 // instruction budget per timing run
	// Only, when non-empty, restricts suite figures to these workloads
	// (used by tests and quick runs).
	Only []string

	mu        sync.Mutex
	trainProf map[string]*core.Result
	trainTr   map[string]*trace.Trace
	baselines map[string]*core.Result
}

// NewLab returns a Lab over the Table 1 configuration with the given
// per-run instruction budget.
func NewLab(insts uint64) *Lab {
	cfg := sim.DefaultConfig()
	cfg.Core.MaxInsts = insts
	return &Lab{
		Cfg:       cfg,
		Insts:     insts,
		trainProf: make(map[string]*core.Result),
		trainTr:   make(map[string]*trace.Trace),
		baselines: make(map[string]*core.Result),
	}
}

// train returns the cached profiling run and trace for a workload's train
// input.
func (l *Lab) train(w *workload.Workload) (*core.Result, *trace.Trace) {
	l.mu.Lock()
	prof, ok := l.trainProf[w.Name]
	tr := l.trainTr[w.Name]
	l.mu.Unlock()
	if ok {
		return prof, tr
	}
	prof = sim.Run(w.Build(workload.Train), l.Cfg.WithSched(core.SchedOldestFirst))
	tr = sim.CaptureTrace(w.Build(workload.Train), l.Insts)
	l.mu.Lock()
	l.trainProf[w.Name] = prof
	l.trainTr[w.Name] = tr
	l.mu.Unlock()
	return prof, tr
}

// Analyze runs the CRISP software pipeline for a workload using cached
// profile and trace.
func (l *Lab) Analyze(w *workload.Workload, opts crisp.Options) *crisp.Analysis {
	prof, tr := l.train(w)
	return crisp.Analyze(prof, tr, w.Build(workload.Train).Prog, opts)
}

// Baseline returns the cached OOO run on the ref input under cfg key.
func (l *Lab) Baseline(w *workload.Workload, cfg sim.Config, key string) *core.Result {
	k := w.Name + "/" + key
	l.mu.Lock()
	r, ok := l.baselines[k]
	l.mu.Unlock()
	if ok {
		return r
	}
	r = sim.Run(w.Build(workload.Ref), cfg.WithSched(core.SchedOldestFirst))
	l.mu.Lock()
	l.baselines[k] = r
	l.mu.Unlock()
	return r
}

// RunCRISP runs the ref input with the analysis's tags under the CRISP
// scheduler.
func (l *Lab) RunCRISP(w *workload.Workload, a *crisp.Analysis, cfg sim.Config) *core.Result {
	img := w.Build(workload.Ref)
	img.Prog = a.Apply(img.Prog)
	return sim.Run(img, cfg.WithSched(core.SchedCRISP))
}

// RunIBDA runs the ref input with runtime IBDA marking under the CRISP
// scheduler.
func (l *Lab) RunIBDA(w *workload.Workload, istEntries, istWays int, cfg sim.Config) *core.Result {
	c := cfg.WithSched(core.SchedCRISP)
	c.IBDA = &ibda.Config{ISTEntries: istEntries, ISTWays: istWays, DLTEntries: 32}
	return sim.Run(w.Build(workload.Ref), c)
}

// gain returns the IPC improvement of r over base in percent.
func gain(r, base *core.Result) float64 { return (r.IPC()/base.IPC() - 1) * 100 }

// HostThroughputNote formats the process-cumulative simulator speed
// (sim.HostTotals) as a table footnote, so every figure records how fast
// the runs behind it were simulated. It returns "" before any run.
func HostThroughputNote() string {
	insts, ns := sim.HostTotals()
	if ns == 0 {
		return ""
	}
	return fmt.Sprintf("host throughput: %.2f simulated MIPS cumulative (%d insts)",
		float64(insts)*1e3/float64(ns), insts)
}

// forEach runs f for every workload in the suite concurrently and
// collects rows in suite order.
func (l *Lab) forEach(names []string, f func(w *workload.Workload) Row) []Row {
	rows := make([]Row, len(names))
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	for i, name := range names {
		i, w := i, workload.ByName(name)
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			rows[i] = f(w)
		}()
	}
	wg.Wait()
	return rows
}

// suite returns the workload names a figure should cover.
func (l *Lab) suite() []string {
	if len(l.Only) > 0 {
		return l.Only
	}
	return SuiteNames()
}

// SuiteNames returns the evaluation applications (the Fig 7 x-axis): all
// workloads except the microbenchmark.
func SuiteNames() []string {
	var names []string
	for _, w := range workload.All() {
		if w.Name == "pointerchase" {
			continue
		}
		names = append(names, w.Name)
	}
	return names
}
