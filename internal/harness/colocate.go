package harness

import (
	"context"
	"fmt"

	"crisp/internal/crisp"
	"crisp/internal/metrics"
	"crisp/internal/sim"
)

// Colocate renders the multi-core co-location figure: a latency-critical
// pointer-chasing service loop (tailchase, core 0) run solo and next to
// a bandwidth-hogging batch streamer (streambatch, core 1) over one
// shared LLC and DRAM, under both the OOO baseline and CRISP scheduling
// on the LC core. The columns answer the experiment's question — how
// much the neighbour costs the LC core (IPC, DRAM-stall slots, LLC
// misses, observed DRAM latency) and whether CRISP's reordering on core
// 0 helps or hurts core 1 (batch IPC, batch share of DRAM bandwidth).
// Every resolved core self-checks the attribution invariant (breakdown
// partitions Cycles × CommitWidth exactly), failing the figure on drift.
func (l *Lab) Colocate() *Pending {
	t := &Table{
		Title: "Co-location: tailchase (LC, core 0) + streambatch (batch, core 1), shared LLC/DRAM",
		Columns: []string{"mix/sched", "lc_ipc", "batch_ipc", "lc_dram_slt%", "lc_llc_mpki",
			"batch_bw_shr", "lc_dram_lat"},
	}
	width := l.Cfg.Core.CommitWidth
	const lc, batch = "tailchase", "streambatch"
	opts := crisp.DefaultOptions()

	// lcCells extracts the LC-core columns shared by solo and co-run rows.
	lcCells := func(r *coreCells) []float64 {
		return []float64{r.ipc, r.batchIPC, r.dramSlotPct, r.llcMPKI, r.batchBWShare, r.dramLat}
	}

	soloRow := func(label string, spec sim.RunSpec) rowSource {
		h := l.R.Submit(spec)
		return rowSource{label, func(ctx context.Context) ([]float64, error) {
			r, err := h.Result(ctx)
			if err != nil {
				return nil, err
			}
			if err := metrics.CheckPartition(&r.Breakdown, r.Cycles, width); err != nil {
				return nil, err
			}
			slots := float64(r.Cycles) * float64(width)
			return lcCells(&coreCells{
				ipc:         r.IPC(),
				dramSlotPct: float64(r.Breakdown.Stalls[metrics.MemDRAM]) / slots * 100,
				llcMPKI:     r.LLCMPKI(),
				dramLat:     r.DRAMAvgLat,
			}), nil
		}}
	}
	coRow := func(label string, spec sim.MultiSpec) rowSource {
		h := l.R.SubmitMulti(spec)
		return rowSource{label, func(ctx context.Context) ([]float64, error) {
			m, err := h.Result(ctx)
			if err != nil {
				return nil, err
			}
			for i, r := range m.Cores {
				if err := metrics.CheckPartition(&r.Breakdown, r.Cycles, width); err != nil {
					return nil, fmt.Errorf("core %d: %w", i, err)
				}
			}
			lcr, br := m.Cores[0], m.Cores[1]
			slots := float64(lcr.Cycles) * float64(width)
			bw := m.DRAMBandwidthShare()
			return lcCells(&coreCells{
				ipc:          lcr.IPC(),
				batchIPC:     br.IPC(),
				dramSlotPct:  float64(lcr.Breakdown.Stalls[metrics.MemDRAM]) / slots * 100,
				llcMPKI:      lcr.LLCMPKI(),
				batchBWShare: bw.Share(1),
				dramLat:      lcr.DRAMAvgLat,
			}), nil
		}}
	}

	rows := []rowSource{
		soloRow("lc_solo/ooo", l.refSpec(lc)),
		soloRow("lc_solo/crisp", l.crispSpec(lc, opts)),
		coRow("lc+batch/ooo", sim.MultiSpec{Cores: []sim.RunSpec{l.refSpec(lc), l.refSpec(batch)}}),
		coRow("lc+batch/crisp", sim.MultiSpec{Cores: []sim.RunSpec{l.crispSpec(lc, opts), l.refSpec(batch)}}),
	}
	return pending(t, rows, func(t *Table) {
		soloOOO, coOOO, coCRISP := t.Rows[0], t.Rows[2], t.Rows[3]
		t.Notes = append(t.Notes,
			fmt.Sprintf("batch neighbour costs the LC core %.1f%% IPC under ooo (%.3f -> %.3f)",
				(1-coOOO.Cells[0]/soloOOO.Cells[0])*100, soloOOO.Cells[0], coOOO.Cells[0]),
			fmt.Sprintf("CRISP on core 0 under co-location: LC IPC %.3f -> %.3f (%+.1f%%), batch IPC %.3f -> %.3f (%+.1f%%)",
				coOOO.Cells[0], coCRISP.Cells[0], (coCRISP.Cells[0]/coOOO.Cells[0]-1)*100,
				coOOO.Cells[1], coCRISP.Cells[1], (coCRISP.Cells[1]/coOOO.Cells[1]-1)*100))
	})
}

// coreCells carries one row's per-core measurements to the column order
// in one place (batch fields stay zero on solo rows).
type coreCells struct {
	ipc, batchIPC, dramSlotPct, llcMPKI, batchBWShare, dramLat float64
}

// ColocateSampled renders the co-location figure through the sampled
// path: the same four rows as Colocate, but every run fast-forwards
// under functional warming and simulates short detailed windows — solo
// rows from single-core checkpoint sets, co-run rows from co-scheduled
// multi-core sets whose shared LLC was warmed by interleaving both
// cores' streams. One multi-core capture serves both scheduler rows
// (tags don't change functional behaviour), so this is the fast way to
// sweep co-location configs. The attribution self-check still holds
// per core: merged window breakdowns partition Cycles x CommitWidth
// exactly, which pins the min-across-cores idle-skip merge inside
// windows too.
func (l *Lab) ColocateSampled() *Pending {
	s := sim.AutoSampling(l.Insts)
	t := &Table{
		Title: "Co-location (sampled): tailchase (LC, core 0) + streambatch (batch, core 1), shared LLC/DRAM",
		Columns: []string{"mix/sched", "lc_ipc", "batch_ipc", "lc_dram_slt%", "lc_llc_mpki",
			"batch_bw_shr", "lc_dram_lat"},
	}
	width := l.Cfg.Core.CommitWidth
	const lc, batch = "tailchase", "streambatch"
	opts := crisp.DefaultOptions()

	// sampledClause converts a full-detail spec into a window clause: the
	// budget moves to the sampling schedule (spec level for multis).
	sampledClause := func(spec sim.RunSpec) sim.RunSpec {
		spec.Insts = 0
		return spec
	}
	soloSampled := func(spec sim.RunSpec) sim.RunSpec {
		spec = sampledClause(spec)
		spec.Sampling = &s
		return spec
	}

	lcCells := func(r *coreCells) []float64 {
		return []float64{r.ipc, r.batchIPC, r.dramSlotPct, r.llcMPKI, r.batchBWShare, r.dramLat}
	}

	var multis []*sim.MultiResult
	soloRow := func(label string, spec sim.RunSpec) rowSource {
		h := l.R.Submit(spec)
		return rowSource{label, func(ctx context.Context) ([]float64, error) {
			r, err := h.Result(ctx)
			if err != nil {
				return nil, err
			}
			if err := metrics.CheckPartition(&r.Breakdown, r.Cycles, width); err != nil {
				return nil, err
			}
			slots := float64(r.Cycles) * float64(width)
			return lcCells(&coreCells{
				ipc:         r.IPC(),
				dramSlotPct: float64(r.Breakdown.Stalls[metrics.MemDRAM]) / slots * 100,
				llcMPKI:     r.LLCMPKI(),
				dramLat:     r.DRAMAvgLat,
			}), nil
		}}
	}
	coRow := func(label string, spec sim.MultiSpec) rowSource {
		h := l.R.SubmitMulti(spec)
		return rowSource{label, func(ctx context.Context) ([]float64, error) {
			m, err := h.Result(ctx)
			if err != nil {
				return nil, err
			}
			for i, r := range m.Cores {
				if err := metrics.CheckPartition(&r.Breakdown, r.Cycles, width); err != nil {
					return nil, fmt.Errorf("core %d: %w", i, err)
				}
			}
			multis = append(multis, m)
			lcr, br := m.Cores[0], m.Cores[1]
			slots := float64(lcr.Cycles) * float64(width)
			bw := m.DRAMBandwidthShare()
			return lcCells(&coreCells{
				ipc:          lcr.IPC(),
				batchIPC:     br.IPC(),
				dramSlotPct:  float64(lcr.Breakdown.Stalls[metrics.MemDRAM]) / slots * 100,
				llcMPKI:      lcr.LLCMPKI(),
				batchBWShare: bw.Share(1),
				dramLat:      lcr.DRAMAvgLat,
			}), nil
		}}
	}

	rows := []rowSource{
		soloRow("lc_solo/ooo", soloSampled(l.refSpec(lc))),
		soloRow("lc_solo/crisp", soloSampled(l.crispSpec(lc, opts))),
		coRow("lc+batch/ooo", sim.MultiSpec{Sampling: &s,
			Cores: []sim.RunSpec{sampledClause(l.refSpec(lc)), sampledClause(l.refSpec(batch))}}),
		coRow("lc+batch/crisp", sim.MultiSpec{Sampling: &s,
			Cores: []sim.RunSpec{sampledClause(l.crispSpec(lc, opts)), sampledClause(l.refSpec(batch))}}),
	}
	return pending(t, rows, func(t *Table) {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"schedule: %d co-scheduled windows x %d insts detailed per core, %d-inst budget; one multi-core capture serves both scheduler rows",
			s.Count, s.Window, s.Total()))
		if l.HostNotes {
			var detNS, ffNS int64
			var windows int
			for _, m := range multis {
				detNS += m.HostNS
				ffNS += m.HostFFNS
				windows = m.SampledWindows
			}
			if detNS > 0 {
				t.Notes = append(t.Notes, fmt.Sprintf(
					"host time (co-runs): %.2fs detailed windows + %.2fs capture, %d windows each; the capture amortises across the sweep",
					float64(detNS)/1e9, float64(ffNS)/1e9, windows))
			}
		}
	})
}
