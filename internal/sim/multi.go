package sim

import (
	"context"
	"fmt"

	"crisp/internal/cache"
	"crisp/internal/core"
	"crisp/internal/dram"
	"crisp/internal/emu"
	"crisp/internal/ibda"
	"crisp/internal/metrics"
)

// MultiResult is the outcome of one co-scheduled multi-core simulation:
// each core's full single-core Result (its Breakdown still partitions its
// own Cycles × CommitWidth exactly, and its LLC/DRAM fields hold its own
// share of the contended levels) plus the shared-level aggregates and the
// per-core attribution the aggregates decompose into.
type MultiResult struct {
	Cores []*core.Result `json:"cores"`

	LLC         cache.Stats   `json:"llc"`          // shared-LLC totals
	LLCPerCore  []cache.Stats `json:"llc_per_core"` // = LLC, split by requester
	DRAM        dram.Stats    `json:"dram"`
	DRAMPerCore []dram.Stats  `json:"dram_per_core"`

	// HostNS is the wall time of the whole lockstep run (the cores share
	// one host thread, so per-core host time is not meaningful). For a
	// sampled run it sums the windows' lockstep wall times.
	HostNS int64 `json:"host_ns"`

	// Sampled-run provenance (zero on full-detail runs): how many
	// detailed lockstep windows the aggregate merges, the functional
	// instructions executed across all cores to capture them, and the
	// capture's host wall time (counted once per set, however many
	// configs share it).
	SampledWindows int    `json:"sampled_windows,omitempty"`
	FFInsts        uint64 `json:"ff_insts,omitempty"`
	HostFFNS       int64  `json:"host_ff_ns,omitempty"`
}

// LLCOccupancyShare attributes shared-LLC demand activity per core
// (accesses reaching the LLC are the proxy for its capacity pressure).
func (m *MultiResult) LLCOccupancyShare() metrics.Attribution {
	a := metrics.Attribution{Name: "llc_accesses", PerCore: make([]uint64, len(m.LLCPerCore))}
	for i := range m.LLCPerCore {
		a.PerCore[i] = m.LLCPerCore[i].Accesses
	}
	return a
}

// DRAMBandwidthShare attributes DRAM data-bus occupancy per core: each
// read or write holds the bus for one burst, so transfer counts are
// proportional to consumed bandwidth.
func (m *MultiResult) DRAMBandwidthShare() metrics.Attribution {
	a := metrics.Attribution{Name: "dram_transfers", PerCore: make([]uint64, len(m.DRAMPerCore))}
	for i := range m.DRAMPerCore {
		a.PerCore[i] = m.DRAMPerCore[i].Reads + m.DRAMPerCore[i].Writes
	}
	return a
}

// RunMulti executes one multi-core co-scheduled simulation of the images
// under the per-core configs (see RunMultiContext).
func RunMulti(imgs []*Image, cfgs []Config) (*MultiResult, error) {
	return RunMultiContext(context.Background(), imgs, cfgs)
}

// RunMultiContext builds one shared memory system (a cache.SharedHierarchy:
// per-core private L1s over one contended LLC and DRAM), wires each image
// and config to a core over its own view, and steps all cores in lockstep
// to completion (core.RunMulti). imgs[i] runs on core i under cfgs[i]; the
// images are consumed. Every config must carry the same hierarchy
// geometry. On cancellation it returns (nil, ctx.Err()).
func RunMultiContext(ctx context.Context, imgs []*Image, cfgs []Config) (*MultiResult, error) {
	n := len(imgs)
	if n == 0 || len(cfgs) != n {
		return nil, fmt.Errorf("sim: RunMulti needs one config per image (%d images, %d configs)", n, len(cfgs))
	}
	for i := 1; i < n; i++ {
		if cfgs[i].Hier != cfgs[0].Hier {
			return nil, fmt.Errorf("sim: core %d hierarchy geometry differs from core 0", i)
		}
	}

	sh := cache.NewSharedHierarchy(cfgs[0].Hier, n)
	cores := make([]*core.Core, n)
	for i := 0; i < n; i++ {
		view := sh.Views[i]
		attachPrefetcher(cfgs[i].Prefetcher, view)
		var marker core.Marker
		if cfgs[i].IBDA != nil {
			marker = attachIBDA(ibda.New(*cfgs[i].IBDA), imgs[i].Prog, view)
		}
		em := emu.New(imgs[i].Prog, imgs[i].Mem)
		for r, v := range imgs[i].Regs {
			em.SetReg(r, v)
		}
		cores[i] = core.New(cfgs[i].Core, imgs[i].Prog, em, view, marker)
	}

	results := core.RunMulti(cores, cancelCheck(ctx))
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	m := &MultiResult{
		Cores:       results,
		LLC:         sh.LLC.Stats(),
		DRAM:        sh.Mem.Stats(),
		LLCPerCore:  make([]cache.Stats, n),
		DRAMPerCore: make([]dram.Stats, n),
	}
	for i := 0; i < n; i++ {
		m.LLCPerCore[i] = sh.LLC.RequesterStats(i)
		m.DRAMPerCore[i] = sh.Mem.RequesterStats(i)
		hostInsts.Add(results[i].Insts)
		if results[i].HostNS > m.HostNS {
			// Each core reports start→its-finish wall time; the max is the
			// whole run. Count it once in the process totals.
			m.HostNS = results[i].HostNS
		}
	}
	hostNS.Add(uint64(m.HostNS))
	return m, nil
}
