package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/ibda"
)

// CodeVersion tags the simulator's observable behaviour. It is hashed
// into every RunSpec key, so persistent result caches are invalidated
// when a change makes simulations produce different numbers. Bump it
// whenever timing behaviour changes.
const CodeVersion = "crisp-sim-5"

// Input variants a RunSpec can run (Section 5.1's separate profiling and
// evaluation inputs).
const (
	InputTrain = "train"
	InputRef   = "ref"
)

// Scheduler names a RunSpec can request.
const (
	SchedOOO    = "ooo"
	SchedCRISP  = "crisp"
	SchedRandom = "random"
)

// RunSpec is a pure-data description of one timing simulation: which
// workload and input to run, under which scheduler and machine variant,
// and — for CRISP runs — which software-pipeline options produce the
// critical tags. Zero values mean the Table 1 defaults, so the minimal
// spec is {Workload, Insts}: the OOO baseline on the ref input.
//
// A RunSpec has a deterministic content key (Key) covering every field
// plus CodeVersion, which lets executors deduplicate identical runs and
// memoize results across processes.
type RunSpec struct {
	// Workload is the workload.ByName key. The spec layer does not
	// resolve it (that would invert the workload→sim dependency);
	// executors validate and build the image.
	Workload string `json:"workload"`
	// Input selects InputTrain or InputRef ("" = ref).
	Input string `json:"input,omitempty"`
	// Sched selects the issue policy: SchedOOO, SchedCRISP or
	// SchedRandom ("" = ooo).
	Sched string `json:"sched,omitempty"`
	// PerfectBP replaces TAGE with an oracle direction predictor.
	PerfectBP bool `json:"perfect_bp,omitempty"`
	// Insts is the instruction budget (core.Config.MaxInsts; 0 = to Halt).
	Insts uint64 `json:"insts"`
	// RS and ROB override the window sizes when nonzero (Figure 9).
	RS  int `json:"rs,omitempty"`
	ROB int `json:"rob,omitempty"`
	// Prefetcher selects the data-prefetch configuration (zero value is
	// the Table 1 bop+stream).
	Prefetcher PrefetcherKind `json:"prefetcher,omitempty"`
	// UPCWindow enables per-window retirement sampling (Figure 1).
	UPCWindow int `json:"upc_window,omitempty"`
	// IBDA, when non-nil, attaches the runtime IBDA marker; use with
	// Sched: "crisp" so the marks take effect.
	IBDA *ibda.Config `json:"ibda,omitempty"`
	// Crisp, when non-nil, asks the executor to run the CRISP software
	// pipeline on the workload's train input under these options and run
	// the tagged program; use with Sched: "crisp".
	Crisp *crisp.Options `json:"crisp,omitempty"`
	// Sampling, when non-nil, runs the spec as a sampled simulation:
	// Count detailed windows over a shared checkpoint set instead of full
	// detail from cycle 0. Mutually exclusive with Insts — the budget is
	// Sampling.Total().
	Sampling *Sampling `json:"sampling,omitempty"`
}

// Sampling is a RunSpec's sampled-simulation schedule: Count windows,
// each reached by fast-forwarding Skip instructions functionally (no
// warming) then Warm instructions with cache-tag and branch-predictor
// warming, followed by a Window-instruction detailed region. All configs
// of a workload that share the same schedule restore from one checkpoint
// set, so the functional prefix is executed once rather than per config.
type Sampling struct {
	Skip   uint64 `json:"skip,omitempty"`
	Warm   uint64 `json:"warm,omitempty"`
	Window uint64 `json:"window"`
	Count  int    `json:"count"`
}

// Total returns the instruction budget the schedule covers: the
// full-detail run it stands in for would simulate this many instructions.
func (s Sampling) Total() uint64 { return (s.Skip + s.Warm + s.Window) * uint64(s.Count) }

// AutoSampling returns a standard schedule covering total instructions:
// one detailed window per ~300K instructions (at least 4), 10% of the
// budget detailed, and the remaining 90% fast-forwarded with continuous
// functional warming (Skip = 0). Continuous warming keeps slow-converging
// state on the same trajectory as a full-detail run — BOP offset scoring
// converges over thousands of training misses, and the resident
// prefetched-line population that dedups most steady-state suggestions
// decays across any warming gap — which duty-cycled schedules reproduce
// only approximately; measured IPC error stays within ~2% across budgets.
// Schedules for very long workloads can trade fidelity for speed by
// moving warm budget into Skip explicitly. Totals match exactly when
// total is a multiple of 10*count; figure code should pair sampled runs
// with full runs of Total(), not of the requested total.
func AutoSampling(total uint64) Sampling {
	count := int(total / 300_000)
	if count < 4 {
		count = 4
	}
	w := total / (10 * uint64(count))
	if w == 0 {
		w = 1
	}
	per := total / uint64(count)
	warm := uint64(0)
	if per > w {
		warm = per - w
	}
	return Sampling{Skip: 0, Warm: warm, Window: w, Count: count}
}

// normalize returns the spec with defaulted fields canonicalized, so
// semantically identical specs share one key: empty input/scheduler
// names become explicit, and window sizes spelled out as the Table 1
// values collapse to the zero value.
func (s RunSpec) normalize() RunSpec {
	if s.Input == "" {
		s.Input = InputRef
	}
	if s.Sched == "" {
		s.Sched = SchedOOO
	}
	def := core.DefaultConfig()
	if s.RS == def.RSSize {
		s.RS = 0
	}
	if s.ROB == def.ROBSize {
		s.ROB = 0
	}
	return s
}

// Key returns the spec's deterministic content key: a hex digest of the
// normalized spec and CodeVersion. Two specs with equal keys describe
// byte-identical simulations.
func (s RunSpec) Key() string {
	b, err := json.Marshal(s.normalize())
	if err != nil { // unreachable: RunSpec is plain data
		panic(fmt.Sprintf("sim: marshal RunSpec: %v", err))
	}
	h := sha256.Sum256(append([]byte(CodeVersion+"|run|"), b...))
	return hex.EncodeToString(h[:16])
}

// Validate reports spec-level errors: unknown input or scheduler names,
// or a missing workload name. Workload existence is checked by the
// executor, which owns the workload registry.
func (s RunSpec) Validate() error {
	if s.Workload == "" {
		return fmt.Errorf("sim: RunSpec has no workload")
	}
	n := s.normalize()
	if n.Input != InputTrain && n.Input != InputRef {
		return fmt.Errorf("sim: unknown input %q (want %q or %q)", s.Input, InputTrain, InputRef)
	}
	switch n.Sched {
	case SchedOOO, SchedCRISP, SchedRandom:
	default:
		return fmt.Errorf("sim: unknown scheduler %q (want ooo, crisp or random)", s.Sched)
	}
	if s.Crisp != nil && s.IBDA != nil {
		return fmt.Errorf("sim: RunSpec requests both static CRISP tags and runtime IBDA marking")
	}
	if s.Sampling != nil {
		if s.Sampling.Window == 0 || s.Sampling.Count <= 0 {
			return fmt.Errorf("sim: sampling needs Window > 0 and Count > 0 (got window %d, count %d)",
				s.Sampling.Window, s.Sampling.Count)
		}
		if s.Insts != 0 {
			return fmt.Errorf("sim: sampling and insts are mutually exclusive; the budget is sampling.Total()")
		}
	}
	return nil
}

// Config materializes the simulated-system configuration the spec
// describes: Table 1 defaults with the spec's overrides applied.
func (s RunSpec) Config() (Config, error) {
	if err := s.Validate(); err != nil {
		return Config{}, err
	}
	n := s.normalize()
	cfg := DefaultConfig()
	cfg.Core.MaxInsts = n.Insts
	if n.RS > 0 {
		cfg.Core.RSSize = n.RS
	}
	if n.ROB > 0 {
		cfg.Core.ROBSize = n.ROB
	}
	cfg.Prefetcher = n.Prefetcher
	cfg.Core.UPCWindow = n.UPCWindow
	cfg.Core.PerfectBP = n.PerfectBP
	switch n.Sched {
	case SchedOOO:
		cfg.Core.Scheduler = core.SchedOldestFirst
	case SchedCRISP:
		cfg.Core.Scheduler = core.SchedCRISP
	case SchedRandom:
		cfg.Core.Scheduler = core.SchedRandom
	}
	if n.IBDA != nil {
		ib := *n.IBDA
		cfg.IBDA = &ib
	}
	return cfg, nil
}

// WithCrisp returns a copy tagged for a CRISP run under opts.
func (s RunSpec) WithCrisp(opts crisp.Options) RunSpec {
	s.Sched = SchedCRISP
	s.Crisp = &opts
	return s
}

// WithIBDA returns a copy running under runtime IBDA marking.
func (s RunSpec) WithIBDA(cfg ibda.Config) RunSpec {
	s.Sched = SchedCRISP
	s.IBDA = &cfg
	return s
}
