package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/ibda"
)

// CodeVersion tags the simulator's observable behaviour. It is hashed
// into every RunSpec key, so persistent result caches are invalidated
// when a change makes simulations produce different numbers. Bump it
// whenever timing behaviour changes.
const CodeVersion = "crisp-sim-3"

// Input variants a RunSpec can run (Section 5.1's separate profiling and
// evaluation inputs).
const (
	InputTrain = "train"
	InputRef   = "ref"
)

// Scheduler names a RunSpec can request.
const (
	SchedOOO    = "ooo"
	SchedCRISP  = "crisp"
	SchedRandom = "random"
)

// RunSpec is a pure-data description of one timing simulation: which
// workload and input to run, under which scheduler and machine variant,
// and — for CRISP runs — which software-pipeline options produce the
// critical tags. Zero values mean the Table 1 defaults, so the minimal
// spec is {Workload, Insts}: the OOO baseline on the ref input.
//
// A RunSpec has a deterministic content key (Key) covering every field
// plus CodeVersion, which lets executors deduplicate identical runs and
// memoize results across processes.
type RunSpec struct {
	// Workload is the workload.ByName key. The spec layer does not
	// resolve it (that would invert the workload→sim dependency);
	// executors validate and build the image.
	Workload string `json:"workload"`
	// Input selects InputTrain or InputRef ("" = ref).
	Input string `json:"input,omitempty"`
	// Sched selects the issue policy: SchedOOO, SchedCRISP or
	// SchedRandom ("" = ooo).
	Sched string `json:"sched,omitempty"`
	// PerfectBP replaces TAGE with an oracle direction predictor.
	PerfectBP bool `json:"perfect_bp,omitempty"`
	// Insts is the instruction budget (core.Config.MaxInsts; 0 = to Halt).
	Insts uint64 `json:"insts"`
	// RS and ROB override the window sizes when nonzero (Figure 9).
	RS  int `json:"rs,omitempty"`
	ROB int `json:"rob,omitempty"`
	// Prefetcher selects the data-prefetch configuration (zero value is
	// the Table 1 bop+stream).
	Prefetcher PrefetcherKind `json:"prefetcher,omitempty"`
	// UPCWindow enables per-window retirement sampling (Figure 1).
	UPCWindow int `json:"upc_window,omitempty"`
	// IBDA, when non-nil, attaches the runtime IBDA marker; use with
	// Sched: "crisp" so the marks take effect.
	IBDA *ibda.Config `json:"ibda,omitempty"`
	// Crisp, when non-nil, asks the executor to run the CRISP software
	// pipeline on the workload's train input under these options and run
	// the tagged program; use with Sched: "crisp".
	Crisp *crisp.Options `json:"crisp,omitempty"`
}

// normalize returns the spec with defaulted fields canonicalized, so
// semantically identical specs share one key: empty input/scheduler
// names become explicit, and window sizes spelled out as the Table 1
// values collapse to the zero value.
func (s RunSpec) normalize() RunSpec {
	if s.Input == "" {
		s.Input = InputRef
	}
	if s.Sched == "" {
		s.Sched = SchedOOO
	}
	def := core.DefaultConfig()
	if s.RS == def.RSSize {
		s.RS = 0
	}
	if s.ROB == def.ROBSize {
		s.ROB = 0
	}
	return s
}

// Key returns the spec's deterministic content key: a hex digest of the
// normalized spec and CodeVersion. Two specs with equal keys describe
// byte-identical simulations.
func (s RunSpec) Key() string {
	b, err := json.Marshal(s.normalize())
	if err != nil { // unreachable: RunSpec is plain data
		panic(fmt.Sprintf("sim: marshal RunSpec: %v", err))
	}
	h := sha256.Sum256(append([]byte(CodeVersion+"|run|"), b...))
	return hex.EncodeToString(h[:16])
}

// Validate reports spec-level errors: unknown input or scheduler names,
// or a missing workload name. Workload existence is checked by the
// executor, which owns the workload registry.
func (s RunSpec) Validate() error {
	if s.Workload == "" {
		return fmt.Errorf("sim: RunSpec has no workload")
	}
	n := s.normalize()
	if n.Input != InputTrain && n.Input != InputRef {
		return fmt.Errorf("sim: unknown input %q (want %q or %q)", s.Input, InputTrain, InputRef)
	}
	switch n.Sched {
	case SchedOOO, SchedCRISP, SchedRandom:
	default:
		return fmt.Errorf("sim: unknown scheduler %q (want ooo, crisp or random)", s.Sched)
	}
	if s.Crisp != nil && s.IBDA != nil {
		return fmt.Errorf("sim: RunSpec requests both static CRISP tags and runtime IBDA marking")
	}
	return nil
}

// Config materializes the simulated-system configuration the spec
// describes: Table 1 defaults with the spec's overrides applied.
func (s RunSpec) Config() (Config, error) {
	if err := s.Validate(); err != nil {
		return Config{}, err
	}
	n := s.normalize()
	cfg := DefaultConfig()
	cfg.Core.MaxInsts = n.Insts
	if n.RS > 0 {
		cfg.Core.RSSize = n.RS
	}
	if n.ROB > 0 {
		cfg.Core.ROBSize = n.ROB
	}
	cfg.Prefetcher = n.Prefetcher
	cfg.Core.UPCWindow = n.UPCWindow
	cfg.Core.PerfectBP = n.PerfectBP
	switch n.Sched {
	case SchedOOO:
		cfg.Core.Scheduler = core.SchedOldestFirst
	case SchedCRISP:
		cfg.Core.Scheduler = core.SchedCRISP
	case SchedRandom:
		cfg.Core.Scheduler = core.SchedRandom
	}
	if n.IBDA != nil {
		ib := *n.IBDA
		cfg.IBDA = &ib
	}
	return cfg, nil
}

// WithCrisp returns a copy tagged for a CRISP run under opts.
func (s RunSpec) WithCrisp(opts crisp.Options) RunSpec {
	s.Sched = SchedCRISP
	s.Crisp = &opts
	return s
}

// WithIBDA returns a copy running under runtime IBDA marking.
func (s RunSpec) WithIBDA(cfg ibda.Config) RunSpec {
	s.Sched = SchedCRISP
	s.IBDA = &cfg
	return s
}
