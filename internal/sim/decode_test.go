package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"crisp/internal/crisp"
	"crisp/internal/ibda"
)

// TestDecodeRunSpecRoundTrip: marshalling a spec and strictly decoding
// it back preserves the content key — the invariant crispd's dedup
// rests on: a spec submitted over HTTP names the same simulation as the
// same spec built in-process.
func TestDecodeRunSpecRoundTrip(t *testing.T) {
	opts := crisp.DefaultOptions()
	ib := ibda.Config{ISTEntries: 1024, ISTWays: 4, DLTEntries: 32}
	specs := []RunSpec{
		{Workload: "mcf", Insts: 400_000},
		{Workload: "mcf", Input: InputTrain, Sched: SchedRandom, Insts: 1, RS: 48, ROB: 112, Prefetcher: PFStride, UPCWindow: 100},
		{Workload: "lbm", Insts: 0, Sampling: &Sampling{Warm: 90_000, Window: 10_000, Count: 4}},
		{Workload: "pointerchase", Sched: SchedCRISP, Insts: 200_000, Crisp: &opts},
		{Workload: "pointerchase", Sched: SchedCRISP, Insts: 200_000, IBDA: &ib, PerfectBP: true},
	}
	for _, spec := range specs {
		b, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRunSpec(b)
		if err != nil {
			t.Fatalf("decode %s: %v", b, err)
		}
		if got.Key() != spec.Key() {
			t.Errorf("round trip changed the content key for %s", b)
		}
	}
}

// TestDecodeMultiSpecRoundTrip: same invariant for multi-core specs.
func TestDecodeMultiSpecRoundTrip(t *testing.T) {
	m := MultiSpec{Cores: []RunSpec{
		{Workload: "tailchase", Insts: 100_000},
		{Workload: "streambatch", Insts: 100_000, Sched: SchedCRISP, Crisp: func() *crisp.Options { o := crisp.DefaultOptions(); return &o }()},
	}}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMultiSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key() != m.Key() {
		t.Error("round trip changed the multi-spec content key")
	}
}

// TestDecodeRejects: unknown fields, invalid specs, malformed JSON and
// trailing garbage are all errors, never silently-defaulted specs.
func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"unknown field", `{"workload":"mcf","insts":1000,"shed":"crisp"}`, "unknown field"},
		{"bad scheduler", `{"workload":"mcf","insts":1000,"sched":"fifo"}`, "unknown scheduler"},
		{"no workload", `{"insts":1000}`, "no workload"},
		{"trailing garbage", `{"workload":"mcf","insts":1000} {"again":true}`, "trailing data"},
		{"not json", `insts=1000`, "decode RunSpec"},
		{"both crisp and ibda", `{"workload":"mcf","insts":1,"crisp":{},"ibda":{}}`, "both"},
		{"sampling and insts", `{"workload":"mcf","insts":5,"sampling":{"window":10,"count":2}}`, "mutually exclusive"},
	}
	for _, c := range cases {
		if _, err := DecodeRunSpec([]byte(c.body)); err == nil {
			t.Errorf("%s: decoded without error", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	if _, err := DecodeMultiSpec([]byte(`{"cores":[{"workload":"mcf","insts":1}],"extra":1}`)); err == nil {
		t.Error("MultiSpec with unknown field decoded without error")
	}
	if _, err := DecodeMultiSpec([]byte(`{"cores":[]}`)); err == nil {
		t.Error("empty MultiSpec decoded without error")
	}
}
