package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Strict spec decoding for the wire: specs arriving over HTTP (crispd)
// or from files must round-trip exactly — an unknown field is a typo or
// a version skew that would silently change the simulation a content
// key names, so it is an error here, not a zero value. Local in-process
// construction uses the struct literals directly and never passes
// through this path.

// decodeStrict decodes one JSON value into v, rejecting unknown fields
// and trailing data.
func decodeStrict(data []byte, v any, what string) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("sim: decode %s: %w", what, err)
	}
	if dec.More() {
		return fmt.Errorf("sim: decode %s: trailing data after the spec", what)
	}
	return nil
}

// DecodeRunSpec strictly decodes and validates a JSON RunSpec. The
// decoded spec's Key equals the Key of the spec that was marshalled —
// normalization happens inside Key, so the round trip is loss-free.
func DecodeRunSpec(data []byte) (RunSpec, error) {
	var s RunSpec
	if err := decodeStrict(data, &s, "RunSpec"); err != nil {
		return RunSpec{}, err
	}
	if err := s.Validate(); err != nil {
		return RunSpec{}, err
	}
	return s, nil
}

// DecodeMultiSpec strictly decodes and validates a JSON MultiSpec.
func DecodeMultiSpec(data []byte) (MultiSpec, error) {
	var m MultiSpec
	if err := decodeStrict(data, &m, "MultiSpec"); err != nil {
		return MultiSpec{}, err
	}
	if err := m.Validate(); err != nil {
		return MultiSpec{}, err
	}
	return m, nil
}
