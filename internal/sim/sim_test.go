package sim

import (
	"testing"

	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/emu"
	"crisp/internal/ibda"
	"crisp/internal/isa"
	"crisp/internal/program"
)

// chaseImage builds a small pointer-chase image directly (keeping the sim
// tests independent of the workload package).
func chaseImage(nodes int, tagged bool) *Image {
	mem := emu.NewMemory()
	for i := 0; i < nodes; i++ {
		addr := uint64(0x100000 + ((i*7919)%nodes)*64)
		next := uint64(0x100000 + (((i+1)*7919)%nodes)*64)
		mem.WriteWord(addr, int64(next))
		mem.WriteWord(addr+8, int64(i))
	}
	for i := 0; i < 80; i++ {
		mem.WriteWord(uint64(0x400000+i*8), int64(i))
	}
	b := program.NewBuilder("chase")
	b.MovI(isa.R(3), 0x400000)
	b.MovI(isa.R(5), 48)
	b.Label("outer")
	b.MovI(isa.R(4), 0)
	b.Label("inner")
	b.LoadIdx(isa.R(8), isa.R(3), isa.R(4), 8, 0)
	b.LoadIdx(isa.R(9), isa.R(3), isa.R(4), 8, 32)
	b.LoadIdx(isa.R(10), isa.R(3), isa.R(4), 8, 64)
	b.Mul(isa.R(8), isa.R(8), isa.R(2))
	b.AddI(isa.R(4), isa.R(4), 1)
	b.Blt(isa.R(4), isa.R(5), "inner")
	b.Load(isa.R(1), isa.R(1), 0)
	b.Load(isa.R(2), isa.R(1), 8)
	b.Bne(isa.R(1), isa.R(0), "outer")
	b.Halt()
	p := b.MustBuild()
	if tagged {
		p.SetCritical([]int{p.Len() - 4, p.Len() - 3})
	}
	return &Image{Prog: p, Mem: mem, Regs: map[isa.Reg]int64{isa.R(1): 0x100000, isa.R(2): 1}}
}

func cfgN(n uint64) Config {
	cfg := DefaultConfig()
	cfg.Core.MaxInsts = n
	return cfg
}

func TestRunBasic(t *testing.T) {
	res := Run(chaseImage(2000, false), cfgN(50_000))
	if res.Insts != 50_000 {
		t.Fatalf("insts = %d", res.Insts)
	}
	if res.IPC() <= 0 || res.IPC() > 6 {
		t.Fatalf("IPC = %v", res.IPC())
	}
	if res.LLCMPKI() <= 0 {
		t.Errorf("no LLC misses on a chase workload")
	}
}

func TestSchedulerConfigsDiffer(t *testing.T) {
	base := Run(chaseImage(3000, false), cfgN(60_000).WithSched(core.SchedOldestFirst))
	cr := Run(chaseImage(3000, true), cfgN(60_000).WithSched(core.SchedCRISP))
	if cr.IPC() <= base.IPC() {
		t.Errorf("CRISP %.3f not above OOO %.3f on tagged chase", cr.IPC(), base.IPC())
	}
}

func TestPrefetcherKinds(t *testing.T) {
	for _, pf := range []PrefetcherKind{PFBOPStream, PFStride, PFGHB, PFNone} {
		cfg := cfgN(20_000)
		cfg.Prefetcher = pf
		res := Run(chaseImage(1000, false), cfg)
		if res.Insts == 0 {
			t.Errorf("%v: no instructions ran", pf)
		}
	}
	if PFBOPStream.String() != "bop+stream" || PFNone.String() != "none" {
		t.Errorf("prefetcher names wrong")
	}
}

func TestIBDAMarkerWiring(t *testing.T) {
	cfg := cfgN(60_000).WithSched(core.SchedCRISP)
	cfg.IBDA = &ibda.Config{ISTEntries: 1024, ISTWays: 4, DLTEntries: 32}
	res := Run(chaseImage(3000, false), cfg)
	if res.IssuedCritical == 0 {
		t.Errorf("IBDA never produced critical issues")
	}
}

func TestCaptureTraceMatchesBudget(t *testing.T) {
	tr := CaptureTrace(chaseImage(500, false), 10_000)
	if tr.Len() != 10_000 {
		t.Errorf("trace len = %d", tr.Len())
	}
}

func TestAnalyzeTrainPipeline(t *testing.T) {
	pipe := AnalyzeTrain(chaseImage(3000, false), chaseImage(3000, false), cfgN(80_000), crisp.DefaultOptions())
	if len(pipe.Analysis.CriticalPCs) == 0 {
		t.Fatalf("pipeline found nothing on a pointer chase")
	}
	if pipe.Footprint.CriticalStatic != len(pipe.Analysis.CriticalPCs) {
		t.Errorf("footprint static count %d != %d tagged",
			pipe.Footprint.CriticalStatic, len(pipe.Analysis.CriticalPCs))
	}
	img := chaseImage(3000, false)
	tagged := pipe.Tagged(img)
	if len(tagged.Prog.CriticalPCs()) != len(pipe.Analysis.CriticalPCs) {
		t.Errorf("Tagged applied %d PCs", len(tagged.Prog.CriticalPCs()))
	}
	if len(img.Prog.CriticalPCs()) != 0 {
		t.Errorf("Tagged mutated the input image's program")
	}
	// End-to-end: tagged CRISP beats baseline.
	base := Run(chaseImage(3000, false), cfgN(80_000).WithSched(core.SchedOldestFirst))
	cr := Run(pipe.Tagged(chaseImage(3000, false)), cfgN(80_000).WithSched(core.SchedCRISP))
	if cr.IPC() <= base.IPC() {
		t.Errorf("pipeline-tagged CRISP %.3f <= OOO %.3f", cr.IPC(), base.IPC())
	}
}

func TestWithWindowAndSchedAreCopies(t *testing.T) {
	cfg := DefaultConfig()
	cfg2 := cfg.WithWindow(64, 180).WithSched(core.SchedCRISP)
	if cfg.Core.RSSize != 96 || cfg.Core.Scheduler != core.SchedOldestFirst {
		t.Errorf("WithWindow/WithSched mutated the receiver")
	}
	if cfg2.Core.RSSize != 64 || cfg2.Core.ROBSize != 180 || cfg2.Core.Scheduler != core.SchedCRISP {
		t.Errorf("derived config wrong: %+v", cfg2.Core)
	}
}

func TestDescribe(t *testing.T) {
	res := Run(chaseImage(500, false), cfgN(5_000))
	s := Describe("x", res)
	if len(s) == 0 || s[0] != 'x' {
		t.Errorf("Describe = %q", s)
	}
}
