package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// MaxCores bounds a MultiSpec's width. The lockstep driver is O(cores) per
// shared cycle; eight covers every co-location experiment the harness runs
// while keeping obviously-wrong specs (a workload list pasted into the
// wrong field) from being simulated.
const MaxCores = 8

// MultiSpec is a pure-data description of one multi-core co-location
// simulation: an ordered list of per-core RunSpec clauses, one core each,
// running against a single shared LLC and DRAM (the Table 1 uncore — the
// shared-memory geometry is part of CodeVersion, like every other Table 1
// constant). Core order is significant: core i is requester i at the
// shared levels and its addresses are offset into the i-th slice of the
// physical address space.
//
// Like RunSpec, a MultiSpec has a deterministic content key over its
// normalized clauses plus CodeVersion, so the runner/store machinery
// deduplicates and persists multi-core runs exactly as it does
// single-core ones.
type MultiSpec struct {
	Cores []RunSpec `json:"cores"`
	// Sampling, when non-nil, runs the co-scheduled simulation sampled:
	// one shared schedule aligns every core's window boundaries, and the
	// cores restore from one co-scheduled checkpoint set (MultiSet)
	// instead of executing full detail from cycle 0. The schedule is
	// spec-level because co-scheduling needs aligned boundaries — per-core
	// Sampling clauses stay rejected. With Sampling set, every clause's
	// Insts must be 0 (the per-core budget is Sampling.Total()) and no
	// clause may use runtime IBDA marking (an IBDA instance spans windows
	// and needs the sequential full-detail path).
	Sampling *Sampling `json:"sampling,omitempty"`
}

// normalize canonicalizes every clause (same collapsing as RunSpec.Key).
func (m MultiSpec) normalize() MultiSpec {
	n := MultiSpec{Cores: make([]RunSpec, len(m.Cores)), Sampling: m.Sampling}
	for i, c := range m.Cores {
		n.Cores[i] = c.normalize()
	}
	return n
}

// Key returns the spec's deterministic content key. Two MultiSpecs with
// equal keys describe byte-identical co-scheduled simulations.
func (m MultiSpec) Key() string {
	b, err := json.Marshal(m.normalize())
	if err != nil { // unreachable: MultiSpec is plain data
		panic(fmt.Sprintf("sim: marshal MultiSpec: %v", err))
	}
	h := sha256.Sum256(append([]byte(CodeVersion+"|multi|"), b...))
	return hex.EncodeToString(h[:16])
}

// Validate reports spec-level errors: an empty or oversized core list, an
// invalid clause, or clause features the requested execution path does
// not support (per-core sampling clauses; IBDA or per-core budgets under
// a spec-level sampling schedule).
func (m MultiSpec) Validate() error {
	if len(m.Cores) == 0 {
		return fmt.Errorf("sim: MultiSpec has no cores")
	}
	if len(m.Cores) > MaxCores {
		return fmt.Errorf("sim: MultiSpec has %d cores (max %d)", len(m.Cores), MaxCores)
	}
	for i, c := range m.Cores {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("core %d: %w", i, err)
		}
		if c.Sampling != nil {
			return fmt.Errorf("sim: core %d carries a per-core sampling clause; co-scheduling needs aligned windows — set MultiSpec.Sampling instead", i)
		}
		if m.Sampling != nil {
			if c.Insts != 0 {
				return fmt.Errorf("sim: core %d has an instruction budget; with MultiSpec.Sampling the per-core budget is Sampling.Total()", i)
			}
			if c.IBDA != nil {
				return fmt.Errorf("sim: core %d uses runtime IBDA marking, which spans windows and needs the sequential full-detail path; sampled multi-core runs do not support it", i)
			}
		}
	}
	if m.Sampling != nil {
		if m.Sampling.Window == 0 || m.Sampling.Count <= 0 {
			return fmt.Errorf("sim: sampling needs Window > 0 and Count > 0 (got window %d, count %d)",
				m.Sampling.Window, m.Sampling.Count)
		}
	}
	return nil
}

// Configs materializes each clause's system configuration. All clauses
// share one uncore, so their hierarchy geometries must agree (they always
// do today: RunSpec has no hierarchy overrides).
func (m MultiSpec) Configs() ([]Config, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	cfgs := make([]Config, len(m.Cores))
	for i, c := range m.Cores {
		cfg, err := c.Config()
		if err != nil {
			return nil, fmt.Errorf("core %d: %w", i, err)
		}
		if cfg.Hier != cfgs[0].Hier && i > 0 {
			return nil, fmt.Errorf("sim: core %d hierarchy geometry differs from core 0", i)
		}
		cfgs[i] = cfg
	}
	return cfgs, nil
}
