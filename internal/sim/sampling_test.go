package sim_test

import (
	"context"
	"math"
	"reflect"
	"sync"
	"testing"

	"crisp/internal/core"
	"crisp/internal/sim"
	"crisp/internal/workload"
)

// TestSampledEquivalence pins the sampled simulator's accuracy: with the
// auto schedule, sampled IPC must reproduce full-detail IPC within 2% on
// the acceptance workloads at a matched budget. The budget is large
// enough (5M) for the full run's prefetcher and cache state to reach
// steady state — the regime sampling exists for.
func TestSampledEquivalence(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("full-detail reference runs are slow")
	}
	s := sim.AutoSampling(5_000_000)
	for _, name := range []string{"mcf", "pointerchase"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w := workload.ByName(name)
			cfg := sim.DefaultConfig()
			cfg.Core.MaxInsts = s.Total()
			full := sim.Run(w.Build(workload.Ref), cfg)
			set := sim.CaptureCheckpoints(w.Build(workload.Ref), sim.DefaultConfig(), s)
			samp, err := sim.RunSampled(set, w.Build(workload.Ref).Prog, sim.DefaultConfig(), s)
			if err != nil {
				t.Fatal(err)
			}
			errPct := (samp.IPC()/full.IPC() - 1) * 100
			t.Logf("%s: full IPC %.4f sampled %.4f err %+.2f%%", name, full.IPC(), samp.IPC(), errPct)
			if math.Abs(errPct) > 2.0 {
				t.Errorf("sampled IPC error %+.2f%% exceeds 2%% (full %.4f, sampled %.4f)",
					errPct, full.IPC(), samp.IPC())
			}
		})
	}
}

// smallSchedule is a fast schedule for structural tests.
var smallSchedule = sim.Sampling{Warm: 20_000, Window: 5_000, Count: 2}

func captureSmall(t *testing.T, name string) *workload.Workload {
	t.Helper()
	return workload.ByName(name)
}

func TestSampledDeterminism(t *testing.T) {
	w := captureSmall(t, "mcf")
	set := sim.CaptureCheckpoints(w.Build(workload.Ref), sim.DefaultConfig(), smallSchedule)
	prog := w.Build(workload.Ref).Prog
	a, err := sim.RunSampled(set, prog, sim.DefaultConfig(), smallSchedule)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunSampled(set, prog, sim.DefaultConfig(), smallSchedule)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Insts != b.Insts {
		t.Errorf("restoring the same set twice diverged: %d/%d vs %d/%d cycles/insts",
			a.Cycles, a.Insts, b.Cycles, b.Insts)
	}
	// A fresh capture of the same schedule is also identical.
	set2 := sim.CaptureCheckpoints(w.Build(workload.Ref), sim.DefaultConfig(), smallSchedule)
	c, err := sim.RunSampled(set2, prog, sim.DefaultConfig(), smallSchedule)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != c.Cycles {
		t.Errorf("recaptured set diverged: %d vs %d cycles", a.Cycles, c.Cycles)
	}
}

// TestSampledParallelMatchesSequential pins the window fan-out: without
// IBDA the per-window loop runs on a bounded worker set, and its
// window-index-order merge must reproduce the sequential path exactly —
// including the order-sensitive float folds (DRAMAvgLat) and the UPC
// timeline concatenation.
func TestSampledParallelMatchesSequential(t *testing.T) {
	w := captureSmall(t, "mcf")
	sched := sim.Sampling{Warm: 20_000, Window: 5_000, Count: 4}
	set := sim.CaptureCheckpoints(w.Build(workload.Ref), sim.DefaultConfig(), sched)
	prog := w.Build(workload.Ref).Prog
	run := func(workers int) *core.Result {
		ctx := sim.WithWorkers(context.Background(), sim.Workers{Window: workers})
		r, err := sim.RunSampledContext(ctx, set, prog, sim.DefaultConfig(), sched)
		if err != nil {
			t.Fatal(err)
		}
		// Wall-clock and allocation counters are timing-dependent (and
		// allocs are process-wide, so concurrent windows inflate them);
		// every simulated quantity must match exactly.
		r.HostNS, r.HostAllocs = 0, 0
		return r
	}
	seq, par := run(1), run(3)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel sampled run diverged from sequential:\n  cycles %d vs %d\n  insts %d vs %d\n  dram_avg_lat %v vs %v\n  upcwindows %d vs %d",
			seq.Cycles, par.Cycles, seq.Insts, par.Insts,
			seq.DRAMAvgLat, par.DRAMAvgLat, len(seq.UPCWindows), len(par.UPCWindows))
	}
}

// TestSampledCrossConfig exercises the headline sharing property: one
// captured set serves every scheduler and prefetcher config, including
// concurrently.
func TestSampledCrossConfig(t *testing.T) {
	w := captureSmall(t, "mcf")
	set := sim.CaptureCheckpoints(w.Build(workload.Ref), sim.DefaultConfig(), smallSchedule)
	prog := w.Build(workload.Ref).Prog
	cfgs := make([]sim.Config, 0, 4)
	for _, pf := range []sim.PrefetcherKind{sim.PFBOPStream, sim.PFNone, sim.PFStride, sim.PFGHB} {
		cfg := sim.DefaultConfig()
		cfg.Prefetcher = pf
		cfgs = append(cfgs, cfg)
	}
	cfgs = append(cfgs, sim.DefaultConfig().WithSched(core.SchedRandom))
	results := make([]*core.Result, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := sim.RunSampled(set, prog, cfg, smallSchedule)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}()
	}
	wg.Wait()
	want := smallSchedule.Window * uint64(smallSchedule.Count)
	for i, r := range results {
		if r == nil {
			continue
		}
		if r.Insts != want {
			t.Errorf("config %d committed %d insts, want %d", i, r.Insts, want)
		}
		if r.SampledWindows != smallSchedule.Count || r.FFInsts != set.FFInsts {
			t.Errorf("config %d sampling metadata wrong: windows %d ff %d", i, r.SampledWindows, r.FFInsts)
		}
	}
	// The scheduler change must actually show up in the timing.
	if results[0] != nil && results[len(cfgs)-1] != nil && results[0].Cycles == results[len(cfgs)-1].Cycles {
		t.Errorf("random scheduler produced identical cycles to oldest-first")
	}
}

func TestSampledHierMismatch(t *testing.T) {
	w := captureSmall(t, "mcf")
	set := sim.CaptureCheckpoints(w.Build(workload.Ref), sim.DefaultConfig(), smallSchedule)
	cfg := sim.DefaultConfig()
	cfg.Hier.L1D.SizeKiB *= 2
	if _, err := sim.RunSampled(set, w.Build(workload.Ref).Prog, cfg, smallSchedule); err == nil {
		t.Fatal("geometry mismatch not rejected")
	}
}

func TestSampledHostSplit(t *testing.T) {
	sim.ResetHostTotals()
	w := captureSmall(t, "pointerchase")
	set := sim.CaptureCheckpoints(w.Build(workload.Ref), sim.DefaultConfig(), smallSchedule)
	r, err := sim.RunSampled(set, w.Build(workload.Ref).Prog, sim.DefaultConfig(), smallSchedule)
	if err != nil {
		t.Fatal(err)
	}
	if r.FFInsts != set.FFInsts || r.HostFFNS != set.HostNS || r.SampledWindows != len(set.Points) {
		t.Errorf("result host split not filled: %+v", r)
	}
	ffInsts, ffNS := sim.HostFFTotals()
	if ffInsts != set.FFInsts || ffNS != uint64(set.HostNS) {
		t.Errorf("HostFFTotals = %d/%d, want %d/%d", ffInsts, ffNS, set.FFInsts, set.HostNS)
	}
	if insts, _ := sim.HostTotals(); insts != r.Insts {
		t.Errorf("HostTotals insts = %d, want %d", insts, r.Insts)
	}
}

func TestAutoSampling(t *testing.T) {
	for _, total := range []uint64{400_000, 1_200_000, 3_000_000, 12_000_000} {
		s := sim.AutoSampling(total)
		if s.Total() != total {
			t.Errorf("AutoSampling(%d).Total() = %d", total, s.Total())
		}
		if s.Skip != 0 {
			t.Errorf("AutoSampling(%d) skips (%d); default is continuous warming", total, s.Skip)
		}
		if detailed := s.Window * uint64(s.Count); detailed*10 != total {
			t.Errorf("AutoSampling(%d) detailed fraction = %d/%d", total, detailed, total)
		}
	}
	if a, b := sim.AutoSampling(1_200_000).Count, sim.AutoSampling(6_000_000).Count; b <= a {
		t.Errorf("larger budgets must add windows: %d vs %d", a, b)
	}
}

func TestSamplingSpecKeysAndValidate(t *testing.T) {
	base := sim.RunSpec{Workload: "mcf", Sampling: &sim.Sampling{Skip: 100, Warm: 200, Window: 300, Count: 4}}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid sampled spec rejected: %v", err)
	}
	variants := []sim.RunSpec{
		{Workload: "mcf", Insts: base.Sampling.Total()},
		{Workload: "mcf", Sampling: &sim.Sampling{Skip: 101, Warm: 200, Window: 300, Count: 4}},
		{Workload: "mcf", Sampling: &sim.Sampling{Skip: 100, Warm: 201, Window: 300, Count: 4}},
		{Workload: "mcf", Sampling: &sim.Sampling{Skip: 100, Warm: 200, Window: 301, Count: 4}},
		{Workload: "mcf", Sampling: &sim.Sampling{Skip: 100, Warm: 200, Window: 300, Count: 5}},
	}
	seen := map[string]int{base.Key(): -1}
	for i, s := range variants {
		if prev, dup := seen[s.Key()]; dup {
			t.Errorf("specs %d and %d collide on key %s", i, prev, s.Key())
		}
		seen[s.Key()] = i
	}
	if base.Key() != base.Key() {
		t.Error("sampled key not deterministic")
	}

	bad := []sim.RunSpec{
		{Workload: "mcf", Insts: 1000, Sampling: &sim.Sampling{Warm: 1, Window: 1, Count: 1}},
		{Workload: "mcf", Sampling: &sim.Sampling{Count: 4}},
		{Workload: "mcf", Sampling: &sim.Sampling{Window: 100}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad sampled spec %d validated", i)
		}
	}
}
