package sim_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"crisp/internal/checkpoint"
	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/ibda"
	"crisp/internal/program"
	"crisp/internal/sim"
	"crisp/internal/workload"
)

// colocatePair builds the co-location acceptance images: tailchase (the
// latency-critical service loop) on core 0 — tagged for CRISP when tag
// is set — and streambatch (the bandwidth hog) on core 1.
func colocatePair(tag *sim.Pipeline) []*sim.Image {
	lead := workload.ByName("tailchase").Build(workload.Ref)
	if tag != nil {
		lead = tag.Tagged(lead)
	}
	return []*sim.Image{lead, workload.ByName("streambatch").Build(workload.Ref)}
}

// TestMultiSampledEquivalence pins the co-scheduled sampled path's
// accuracy: per-core IPC must reproduce the full-detail lockstep run
// within 3% on the colocate acceptance pair under both the OOO baseline
// and CRISP on the LC core. The 3% bar is then mutation-verified: the
// same windows restored from a deliberately unwarmed shared LLC must
// blow the bar, proving the tolerance is tight enough to notice the
// co-residency warming the capture exists to provide.
func TestMultiSampledEquivalence(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("full-detail reference runs are slow")
	}
	s := sim.AutoSampling(2_000_000)
	lc := workload.ByName("tailchase")
	acfg := sim.DefaultConfig()
	acfg.Core.MaxInsts = s.Total()
	pipe := sim.AnalyzeTrain(lc.Build(workload.Train), lc.Build(workload.Train), acfg, crisp.DefaultOptions())

	for _, tc := range []struct {
		name  string
		sched core.SchedulerKind
		pipe  *sim.Pipeline
	}{
		{"ooo", core.SchedOldestFirst, nil},
		{"crisp", core.SchedCRISP, pipe},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfgs := []sim.Config{sim.DefaultConfig().WithSched(tc.sched), sim.DefaultConfig()}

			set, err := sim.CaptureMultiCheckpoints(colocatePair(tc.pipe), cfgs, s)
			if err != nil {
				t.Fatal(err)
			}

			// The full-detail reference walks the same pace-proportional
			// trajectory the capture covered: per-core budgets equal to the
			// capture's per-core functional coverage, so both runs measure
			// the co-located phase end to end (equal budgets would leave the
			// slow core draining solo for most of its instructions — a
			// regime short windows cannot and should not reproduce).
			fcfgs := make([]sim.Config, len(cfgs))
			for i := range cfgs {
				fcfgs[i] = cfgs[i]
				fcfgs[i].Core.MaxInsts = set.FFPerCore[i]
			}
			full, err := sim.RunMulti(colocatePair(tc.pipe), fcfgs)
			if err != nil {
				t.Fatal(err)
			}
			imgs := colocatePair(tc.pipe)
			progs := []*program.Program{imgs[0].Prog, imgs[1].Prog}
			samp, err := sim.RunMultiSampled(set, progs, cfgs, s)
			if err != nil {
				t.Fatal(err)
			}
			for i := range full.Cores {
				errPct := (samp.Cores[i].IPC()/full.Cores[i].IPC() - 1) * 100
				t.Logf("core %d: full IPC %.4f sampled %.4f err %+.2f%%",
					i, full.Cores[i].IPC(), samp.Cores[i].IPC(), errPct)
				if math.Abs(errPct) > 3.0 {
					t.Errorf("core %d sampled IPC error %+.2f%% exceeds 3%% (full %.4f, sampled %.4f)",
						i, errPct, full.Cores[i].IPC(), samp.Cores[i].IPC())
				}
			}

			// Mutation pass: cool every point's shared LLC and re-run the
			// same windows. If the equivalence bar still passed, the 3%
			// tolerance would be too loose to catch a broken warming path.
			for _, pt := range set.Points {
				pt.Hier.LLC.Invalidate()
			}
			cold, err := sim.RunMultiSampled(set, progs, cfgs, s)
			if err != nil {
				t.Fatal(err)
			}
			worst := 0.0
			for i := range full.Cores {
				errPct := math.Abs((cold.Cores[i].IPC()/full.Cores[i].IPC() - 1) * 100)
				if errPct > worst {
					worst = errPct
				}
			}
			if worst <= 3.0 {
				t.Errorf("unwarmed-LLC mutant still within tolerance (worst core err %.2f%%); the equivalence bar is not sensitive to shared-LLC warming", worst)
			}
		})
	}
}

// multiSmallSchedule keeps the structural multi-core sampled tests fast.
var multiSmallSchedule = sim.Sampling{Warm: 20_000, Window: 5_000, Count: 3}

func captureMultiSmall(t *testing.T) (*checkpoint.MultiSet, []*program.Program, []sim.Config) {
	t.Helper()
	cfgs := []sim.Config{sim.DefaultConfig(), sim.DefaultConfig()}
	set, err := sim.CaptureMultiCheckpoints(colocatePair(nil), cfgs, multiSmallSchedule)
	if err != nil {
		t.Fatal(err)
	}
	imgs := colocatePair(nil)
	return set, []*program.Program{imgs[0].Prog, imgs[1].Prog}, cfgs
}

// zeroHost clears the wall-clock fields so deterministic comparisons can
// use DeepEqual on everything simulated.
func zeroHost(m *sim.MultiResult) {
	m.HostNS, m.HostFFNS = 0, 0
	for _, r := range m.Cores {
		r.HostNS, r.HostAllocs = 0, 0
	}
}

// TestMultiSampledCodecRoundTrip pins the binary multi-set container: an
// encode/decode cycle must reproduce a set whose sampled run is
// simulated-quantity-identical to the original's, including the shared
// LLC/DRAM attribution the container's interleaved warming produced.
func TestMultiSampledCodecRoundTrip(t *testing.T) {
	set, progs, cfgs := captureMultiSmall(t)
	const key = "roundtrip-key"
	data := checkpoint.EncodeMultiSet(set, key)
	got, err := checkpoint.DecodeMultiSet(data, key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cores != set.Cores || len(got.Points) != len(set.Points) ||
		got.FFInsts != set.FFInsts || !reflect.DeepEqual(got.PFKinds, set.PFKinds) ||
		!reflect.DeepEqual(got.FFPerCore, set.FFPerCore) ||
		!reflect.DeepEqual(got.Pace, set.Pace) ||
		!reflect.DeepEqual(got.WindowInsts, set.WindowInsts) {
		t.Fatalf("decoded set metadata differs: %+v vs %+v", got, set)
	}
	a, err := sim.RunMultiSampled(set, progs, cfgs, multiSmallSchedule)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunMultiSampled(got, progs, cfgs, multiSmallSchedule)
	if err != nil {
		t.Fatal(err)
	}
	zeroHost(a)
	zeroHost(b)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("decoded set's run diverged: cycles %d/%d vs %d/%d, llc %+v vs %+v",
			a.Cores[0].Cycles, a.Cores[1].Cycles, b.Cores[0].Cycles, b.Cores[1].Cycles, a.LLC, b.LLC)
	}
	if _, err := checkpoint.DecodeMultiSet(data, "other-key"); err == nil {
		t.Error("key mismatch not rejected")
	}
	data[len(data)-1] ^= 0x40
	if _, err := checkpoint.DecodeMultiSet(data, key); err == nil {
		t.Error("corrupt payload not rejected")
	}
}

// TestMultiSampledParallelMatchesSequential pins the window fan-out: the
// lockstep windows are independent (IBDA is rejected), so the bounded
// worker pool's window-index-order merge must reproduce the sequential
// path exactly — per-core results and shared-level stats alike.
func TestMultiSampledParallelMatchesSequential(t *testing.T) {
	set, progs, cfgs := captureMultiSmall(t)
	run := func(workers int) *sim.MultiResult {
		ctx := sim.WithWorkers(context.Background(), sim.Workers{Window: workers})
		m, err := sim.RunMultiSampledContext(ctx, set, progs, cfgs, multiSmallSchedule)
		if err != nil {
			t.Fatal(err)
		}
		zeroHost(m)
		return m
	}
	seq, par := run(1), run(3)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel sampled multi run diverged from sequential:\n  core0 cycles %d vs %d\n  core1 cycles %d vs %d\n  llc %+v vs %+v",
			seq.Cores[0].Cycles, par.Cores[0].Cycles,
			seq.Cores[1].Cycles, par.Cores[1].Cycles, seq.LLC, par.LLC)
	}
}

// TestMultiSampledSharedSet exercises the sharing property the capture
// keying promises: one set serves every scheduler config of the same
// workload/prefetcher tuple, and the per-core budgets and provenance
// fields come out right.
func TestMultiSampledSharedSet(t *testing.T) {
	set, progs, cfgs := captureMultiSmall(t)
	var results []*sim.MultiResult
	for _, sched := range []core.SchedulerKind{core.SchedOldestFirst, core.SchedRandom} {
		c := []sim.Config{cfgs[0].WithSched(sched), cfgs[1]}
		m, err := sim.RunMultiSampled(set, progs, c, multiSmallSchedule)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, m)
		for i, r := range m.Cores {
			// Each core's window budget is the schedule's Window scaled by
			// its calibrated pace, so committed instructions are the
			// pace-scaled budget times the window count.
			want := set.WindowInsts[i] * uint64(multiSmallSchedule.Count)
			if r.Insts != want {
				t.Errorf("%v core %d committed %d insts, want %d", sched, i, r.Insts, want)
			}
			if r.SampledWindows != multiSmallSchedule.Count || r.FFInsts != set.FFPerCore[i] {
				t.Errorf("%v core %d provenance: windows %d ff %d", sched, i, r.SampledWindows, r.FFInsts)
			}
		}
		if m.SampledWindows != multiSmallSchedule.Count || m.FFInsts != set.FFInsts || m.HostFFNS != set.HostNS {
			t.Errorf("%v aggregate provenance: %d windows ff %d ffns %d", sched, m.SampledWindows, m.FFInsts, m.HostFFNS)
		}
	}
	if results[0].Cores[0].Cycles == results[1].Cores[0].Cycles {
		t.Error("random scheduler produced identical core-0 cycles to oldest-first")
	}
}

// TestMultiSampledRejections pins the clean-error paths: geometry
// mismatch, prefetcher-tuple mismatch (the tuple is part of the
// capture) and runtime IBDA all reject instead of running wrong.
func TestMultiSampledRejections(t *testing.T) {
	set, progs, cfgs := captureMultiSmall(t)

	bad := []sim.Config{cfgs[0], cfgs[1]}
	bad[1].Hier.L1D.SizeKiB *= 2
	if _, err := sim.RunMultiSampled(set, progs, bad, multiSmallSchedule); err == nil {
		t.Error("geometry mismatch not rejected")
	}

	pfm := []sim.Config{cfgs[0], cfgs[1]}
	pfm[1].Prefetcher = sim.PFNone
	if _, err := sim.RunMultiSampled(set, progs, pfm, multiSmallSchedule); err == nil {
		t.Error("prefetcher tuple mismatch not rejected")
	}

	if _, err := sim.CaptureMultiCheckpoints(colocatePair(nil), []sim.Config{sim.DefaultConfig()}, multiSmallSchedule); err == nil {
		t.Error("image/config count mismatch not rejected")
	}
}

// TestMultiSpecSamplingValidateAndKey pins the spec surface: where the
// schedule may live, which clause features it excludes, and that it is
// part of the content key.
func TestMultiSpecSamplingValidateAndKey(t *testing.T) {
	s := sim.Sampling{Warm: 200, Window: 300, Count: 4}
	clause := func(name string) sim.RunSpec {
		return sim.RunSpec{Workload: name, Input: sim.InputRef}
	}
	good := sim.MultiSpec{Cores: []sim.RunSpec{clause("tailchase"), clause("streambatch")}, Sampling: &s}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid sampled multi spec rejected: %v", err)
	}

	perCore := good
	perCore.Cores = append([]sim.RunSpec(nil), good.Cores...)
	perCore.Cores[1].Sampling = &s
	withInsts := good
	withInsts.Cores = append([]sim.RunSpec(nil), good.Cores...)
	withInsts.Cores[0].Insts = 1000
	withIBDA := good
	withIBDA.Cores = append([]sim.RunSpec(nil), good.Cores...)
	withIBDA.Cores[0] = withIBDA.Cores[0].WithIBDA(ibda.Config{ISTEntries: 1024, ISTWays: 4, DLTEntries: 32})
	noWindow := good
	noWindow.Sampling = &sim.Sampling{Count: 4}
	for name, spec := range map[string]sim.MultiSpec{
		"per-core sampling clause": perCore,
		"clause insts budget":      withInsts,
		"runtime ibda clause":      withIBDA,
		"zero window":              noWindow,
	} {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s validated", name)
		}
	}

	fullDetail := sim.MultiSpec{Cores: []sim.RunSpec{clause("tailchase"), clause("streambatch")}}
	fullDetail.Cores[0].Insts = s.Total()
	fullDetail.Cores[1].Insts = s.Total()
	other := good
	other.Sampling = &sim.Sampling{Warm: 200, Window: 300, Count: 5}
	keys := map[string]string{
		"sampled":      good.Key(),
		"full detail":  fullDetail.Key(),
		"other window": other.Key(),
	}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("%s and %s collide on key %s", name, prev, k)
		}
		seen[k] = name
	}
}
