package sim

import (
	"reflect"
	"testing"

	"crisp/internal/metrics"
)

// TestMultiSingleCoreEquivalence pins the refactor's no-regression bar:
// a 1-core multi-core run is the same machine as a single-core run —
// view 0 has base offset 0 and requester stats route to slot 0, so every
// architectural number must match exactly. Only host-side measurements
// (wall time, allocs) may differ.
func TestMultiSingleCoreEquivalence(t *testing.T) {
	single := Run(chaseImage(3000, false), cfgN(40_000))
	m, err := RunMulti([]*Image{chaseImage(3000, false)}, []Config{cfgN(40_000)})
	if err != nil {
		t.Fatalf("RunMulti: %v", err)
	}
	multi := m.Cores[0]
	single.HostNS, single.HostAllocs = 0, 0
	multi.HostNS, multi.HostAllocs = 0, 0
	if !reflect.DeepEqual(single, multi) {
		t.Errorf("1-core multi run diverged from single-core run:\n"+
			"  cycles    %d vs %d\n  insts     %d vs %d\n  breakdown %v vs %v\n"+
			"  llc       %+v vs %+v\n  dram      %d/%0.1f vs %d/%0.1f",
			multi.Cycles, single.Cycles, multi.Insts, single.Insts,
			multi.Breakdown, single.Breakdown, multi.LLC, single.LLC,
			multi.DRAMReads, multi.DRAMAvgLat, single.DRAMReads, single.DRAMAvgLat)
	}
	// The shared-level aggregates must agree with the one core's own view.
	if m.LLC != m.LLCPerCore[0] || m.DRAM != m.DRAMPerCore[0] {
		t.Errorf("aggregate/per-core shared stats disagree for n=1")
	}
}

// TestMultiInterference pins that contention is actually modelled: two
// pointer chases whose combined working set overflows the shared LLC
// (while each alone fits) slow each other down measurably, every core's
// breakdown still partitions its cycles exactly, and the per-core
// attribution decomposes the shared totals with nothing missing.
func TestMultiInterference(t *testing.T) {
	const nodes = 12000 // 750 KiB each: fits a 1 MiB LLC alone, not together
	solo := Run(chaseImage(nodes, false), cfgN(40_000))
	m, err := RunMulti(
		[]*Image{chaseImage(nodes, false), chaseImage(nodes, false)},
		[]Config{cfgN(40_000), cfgN(40_000)})
	if err != nil {
		t.Fatalf("RunMulti: %v", err)
	}
	width := DefaultConfig().Core.CommitWidth
	for i, r := range m.Cores {
		if err := metrics.CheckPartition(&r.Breakdown, r.Cycles, width); err != nil {
			t.Errorf("core %d: %v", i, err)
		}
		if r.IPC() >= solo.IPC()*0.95 {
			t.Errorf("core %d: co-run IPC %.3f not measurably below solo %.3f",
				i, r.IPC(), solo.IPC())
		}
	}
	llc, bw := m.LLCOccupancyShare(), m.DRAMBandwidthShare()
	if llc.Total() != m.LLC.Accesses {
		t.Errorf("LLC attribution total %d != shared accesses %d", llc.Total(), m.LLC.Accesses)
	}
	if want := m.DRAM.Reads + m.DRAM.Writes; bw.Total() != want {
		t.Errorf("DRAM attribution total %d != shared transfers %d", bw.Total(), want)
	}
	if s := llc.Share(0) + llc.Share(1); s < 0.999 || s > 1.001 {
		t.Errorf("LLC shares sum to %.4f, want 1", s)
	}
}
