package sim

// SetSampledWorkers pins the bounded worker count of RunSampledContext's
// parallel path (0 restores the GOMAXPROCS default) and returns the
// previous value, so tests can compare the sequential and parallel paths.
func SetSampledWorkers(n int) int {
	prev := sampledWorkers
	sampledWorkers = n
	return prev
}
