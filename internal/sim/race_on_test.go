//go:build race

package sim_test

// raceEnabled reports whether the race detector is active; heavyweight
// accuracy tests skip under it (the CI race job runs this package).
const raceEnabled = true
