package sim_test

import (
	"reflect"
	"testing"

	"crisp/internal/checkpoint"
	"crisp/internal/core"
	"crisp/internal/sim"
	"crisp/internal/workload"
)

// TestSampledFromDecodedSet pins the property the persistent checkpoint
// store depends on: a set serialized to disk and decoded back must
// drive the sampled simulator to *exactly* the results of the in-RAM
// set — same cycles, same histograms, same per-PC profiles — across
// workloads and schedulers. Any drift here would let a warm-store sweep
// silently disagree with a cold one.
func TestSampledFromDecodedSet(t *testing.T) {
	for _, name := range []string{"pointerchase", "mcf"} {
		w := workload.ByName(name)
		set := sim.CaptureCheckpoints(w.Build(workload.Ref), sim.DefaultConfig(), smallSchedule)
		enc := checkpoint.EncodeSet(set, "equiv-test")
		dec, err := checkpoint.DecodeSet(enc, "equiv-test")
		if err != nil {
			t.Fatalf("%s: DecodeSet: %v", name, err)
		}
		prog := w.Build(workload.Ref).Prog
		for _, sched := range []core.SchedulerKind{core.SchedOldestFirst, core.SchedCRISP} {
			cfg := sim.DefaultConfig().WithSched(sched)
			ram, err := sim.RunSampled(set, prog, cfg, smallSchedule)
			if err != nil {
				t.Fatalf("%s/%v: RAM run: %v", name, sched, err)
			}
			disk, err := sim.RunSampled(dec, prog, cfg, smallSchedule)
			if err != nil {
				t.Fatalf("%s/%v: decoded run: %v", name, sched, err)
			}
			// Wall-clock and allocation counters are timing-dependent;
			// every simulated quantity must match exactly.
			ram.HostNS, ram.HostAllocs = 0, 0
			disk.HostNS, disk.HostAllocs = 0, 0
			if !reflect.DeepEqual(ram, disk) {
				t.Errorf("%s/%v: decoded set diverged from RAM set:\n  cycles %d vs %d\n  insts %d vs %d\n  ipc %.6f vs %.6f",
					name, sched, ram.Cycles, disk.Cycles, ram.Insts, disk.Insts, ram.IPC(), disk.IPC())
			}
		}

		// Mutation check: the equivalence above must come from a verified
		// image, not luck — corrupting a single byte in the page data is
		// detected at decode, never silently simulated.
		bad := append([]byte(nil), enc...)
		bad[len(bad)*3/5] ^= 0x01
		if _, err := checkpoint.DecodeSet(bad, "equiv-test"); err == nil {
			t.Errorf("%s: corrupted image decoded without error", name)
		}
	}
}
