package sim

import (
	"context"
	"runtime"
)

// Workers bounds the host parallelism of sampled simulation. The two
// phases have independent knobs because their scaling differs: capture
// parallelism is bounded by the variant count (producer + one consumer
// per warming structure), window parallelism by the checkpoint count.
//
// For each field, 0 selects the GOMAXPROCS default and 1 forces the
// sequential path; both paths produce bit-identical results (capture
// equivalence is asserted by the checkpoint package's tests, window
// merges always run in window-index order).
type Workers struct {
	// Capture is the total goroutine budget of the checkpoint-capture
	// pipeline, the producing goroutine included (so 2 = one producer
	// plus one warming consumer).
	Capture int
	// Window bounds the number of concurrently simulated detailed
	// windows in the sampled run phase.
	Window int
}

// workersKey carries a Workers value on a context.
type workersKey struct{}

// WithWorkers returns a context carrying the given worker bounds;
// CaptureCheckpointsContext, RunSampledContext and their multi-core
// counterparts read them with WorkersFrom.
func WithWorkers(ctx context.Context, w Workers) context.Context {
	return context.WithValue(ctx, workersKey{}, w)
}

// WorkersFrom returns the worker bounds carried by ctx, or the zero
// value (GOMAXPROCS defaults) when none were attached.
func WorkersFrom(ctx context.Context) Workers {
	w, _ := ctx.Value(workersKey{}).(Workers)
	return w
}

// windowWorkers resolves the concurrent-window bound for a sampled run:
// the context's Window setting, defaulted to GOMAXPROCS and clamped to
// the number of points.
func windowWorkers(ctx context.Context, points int) int {
	workers := WorkersFrom(ctx).Window
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > points {
		workers = points
	}
	return workers
}
