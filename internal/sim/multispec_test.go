package sim

import (
	"testing"
)

func TestMultiSpecKey(t *testing.T) {
	a := MultiSpec{Cores: []RunSpec{
		{Workload: "tailchase", Insts: 1000},
		{Workload: "streambatch", Insts: 1000},
	}}
	if a.Key() != a.Key() {
		t.Error("key not deterministic")
	}
	// Normalization collapses spelled-out defaults, as for RunSpec keys.
	b := MultiSpec{Cores: []RunSpec{
		{Workload: "tailchase", Insts: 1000, Input: InputRef, Sched: SchedOOO},
		{Workload: "streambatch", Insts: 1000},
	}}
	if a.Key() != b.Key() {
		t.Error("normalized spec keyed differently from its shorthand")
	}
	// Core order is significant (core i owns address slice i and requester
	// slot i), so permuted clauses are a different simulation.
	c := MultiSpec{Cores: []RunSpec{a.Cores[1], a.Cores[0]}}
	if a.Key() == c.Key() {
		t.Error("permuted core order shares a key")
	}
	// A multi key never collides with the single-core key of any clause.
	solo := MultiSpec{Cores: []RunSpec{a.Cores[0]}}
	if solo.Key() == a.Cores[0].Key() {
		t.Error("1-core MultiSpec key collides with its clause's RunSpec key")
	}
}

func TestMultiSpecValidate(t *testing.T) {
	ok := MultiSpec{Cores: []RunSpec{
		{Workload: "tailchase", Insts: 1000},
		{Workload: "streambatch", Insts: 1000},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := (MultiSpec{}).Validate(); err == nil {
		t.Error("empty spec accepted")
	}
	wide := MultiSpec{Cores: make([]RunSpec, MaxCores+1)}
	for i := range wide.Cores {
		wide.Cores[i] = RunSpec{Workload: "tailchase", Insts: 1000}
	}
	if err := wide.Validate(); err == nil {
		t.Errorf("%d-core spec accepted (max %d)", len(wide.Cores), MaxCores)
	}
	bad := MultiSpec{Cores: []RunSpec{{Workload: "tailchase", Insts: 1000, Sched: "fifo"}}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid clause accepted")
	}
	sampled := MultiSpec{Cores: []RunSpec{
		{Workload: "tailchase", Sampling: &Sampling{Window: 1000, Count: 2}},
	}}
	if err := sampled.Validate(); err == nil {
		t.Error("sampled clause accepted; multi-core runs are full-detail only")
	}
}
