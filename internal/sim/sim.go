// Package sim wires the simulated system together (Table 1): the OOO core,
// the cache hierarchy with data prefetchers, DRAM, and the optional
// criticality mechanisms (static CRISP tags or runtime IBDA marking). It
// also drives the paper's two-phase flow: a profiling run plus trace
// capture on the train input, CRISP analysis, then evaluation runs on the
// ref input (Section 5.1).
package sim

import (
	"context"
	"fmt"
	"sync/atomic"

	"crisp/internal/cache"
	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/emu"
	"crisp/internal/ibda"
	"crisp/internal/isa"
	"crisp/internal/prefetch"
	"crisp/internal/program"
	"crisp/internal/trace"
)

// Image is a ready-to-run workload instance: static code plus initialized
// memory and registers. Train and ref variants of a workload share the
// same program and differ only in data (Section 5.1's separate profiling
// and evaluation inputs).
type Image struct {
	Prog *program.Program
	Mem  *emu.Memory
	Regs map[isa.Reg]int64
}

// withProg returns a shallow copy of the Image running program p in place
// of img's program (used to swap in a critical-tagged clone). The memory
// and register map are shared, NOT copied: a run consumes its image's
// memory state, so the original and the copy cannot both be simulated —
// build a fresh Image per run.
func (img *Image) withProg(p *program.Program) *Image {
	return &Image{Prog: p, Mem: img.Mem, Regs: img.Regs}
}

// PrefetcherKind selects the data-prefetch configuration.
type PrefetcherKind int

// Data prefetcher configurations.
const (
	PFBOPStream PrefetcherKind = iota // Table 1 default: BOP + stream
	PFStride
	PFGHB
	PFNone
)

func (p PrefetcherKind) String() string {
	switch p {
	case PFBOPStream:
		return "bop+stream"
	case PFStride:
		return "stride"
	case PFGHB:
		return "ghb"
	default:
		return "none"
	}
}

// Config is the full simulated-system configuration.
type Config struct {
	Core       core.Config
	Hier       cache.HierConfig
	Prefetcher PrefetcherKind
	// IBDA, when non-nil, attaches the runtime IBDA marker (and the run
	// should use the CRISP scheduler so marks take effect).
	IBDA *ibda.Config
}

// DefaultConfig returns the Table 1 system.
func DefaultConfig() Config {
	return Config{
		Core:       core.DefaultConfig(),
		Hier:       cache.DefaultHierConfig(),
		Prefetcher: PFBOPStream,
	}
}

// WithSched returns a copy with the scheduler policy replaced.
func (c Config) WithSched(s core.SchedulerKind) Config {
	c.Core.Scheduler = s
	return c
}

// WithWindow returns a copy with RS/ROB sizes replaced (Figure 9 sweeps).
func (c Config) WithWindow(rs, rob int) Config {
	c.Core.RSSize = rs
	c.Core.ROBSize = rob
	return c
}

// ibdaMarker adapts ibda.IBDA to the core.Marker interface.
type ibdaMarker struct{ ib *ibda.IBDA }

func (m ibdaMarker) MarkDispatch(pc int, isLoad bool, producers []int) bool {
	return m.ib.MarkDispatch(pc, isLoad, producers)
}

// Run executes one timing simulation of the image under cfg.
func Run(img *Image, cfg Config) *core.Result {
	r, _ := RunContext(context.Background(), img, cfg)
	return r
}

// RunContext is Run with cancellation: the context's Done channel is
// polled inside the core's cycle loop (every few thousand simulated
// cycles), so a cancelled or timed-out sweep stops mid-simulation instead
// of running its instruction budget out. On cancellation it returns
// (nil, ctx.Err()) and the partial run is not counted in HostTotals.
func RunContext(ctx context.Context, img *Image, cfg Config) (*core.Result, error) {
	hier := cache.NewHierarchy(cfg.Hier)
	switch cfg.Prefetcher {
	case PFBOPStream:
		hier.L1D.SetPrefetcher(&prefetch.Composite{Parts: []interface {
			OnAccess(pc, addr uint64, hit bool) []uint64
		}{prefetch.NewBOP(), prefetch.NewStream(64)}})
	case PFStride:
		hier.L1D.SetPrefetcher(prefetch.NewStride(256))
	case PFGHB:
		hier.L1D.SetPrefetcher(prefetch.NewGHB(512))
	}

	var marker core.Marker
	if cfg.IBDA != nil {
		ib := ibda.New(*cfg.IBDA)
		marker = ibdaMarker{ib}
		prog := img.Prog
		hier.LLC.SetMissObserver(func(pc, _ uint64) {
			spc := int(pc)
			if spc >= 0 && spc < prog.Len() && prog.Insts[spc].Op == isa.OpLoad {
				ib.OnLLCMiss(spc)
			}
		})
	}

	em := emu.New(img.Prog, img.Mem)
	for r, v := range img.Regs {
		em.SetReg(r, v)
	}
	c := core.New(cfg.Core, img.Prog, em, hier, marker)
	if done := ctx.Done(); done != nil {
		c.SetCancelCheck(func() bool {
			select {
			case <-done:
				return true
			default:
				return false
			}
		})
	}
	r := c.Run()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	hostInsts.Add(r.Insts)
	hostNS.Add(uint64(r.HostNS))
	return r, nil
}

// Cumulative host-throughput counters across every Run in the process
// (timing runs only; trace captures are not counted).
var hostInsts, hostNS atomic.Uint64

// HostTotals returns the total simulated instructions and host
// nanoseconds spent inside core.Run since process start (or the last
// ResetHostTotals). With concurrent runs the nanoseconds are summed
// per-run CPU-ish time, not wall time.
func HostTotals() (insts, ns uint64) { return hostInsts.Load(), hostNS.Load() }

// ResetHostTotals zeroes the cumulative host-throughput counters.
func ResetHostTotals() {
	hostInsts.Store(0)
	hostNS.Store(0)
}

// CaptureTrace functionally executes the image and records up to limit
// dynamic instructions with producer links (the tracing step of Figure 5).
func CaptureTrace(img *Image, limit uint64) *trace.Trace {
	em := emu.New(img.Prog, img.Mem)
	for r, v := range img.Regs {
		em.SetReg(r, v)
	}
	return trace.Capture(em, limit)
}

// Pipeline bundles the outputs of the CRISP software flow for a workload.
type Pipeline struct {
	Analysis  *crisp.Analysis
	Footprint crisp.Footprint
	Profile   *core.Result
}

// AnalyzeTrain runs the profiling pass and trace capture on a train image
// pair and returns the CRISP analysis. trainProfile and trainTrace must be
// two independently built images of the same workload variant (each run
// consumes its image's memory state).
func AnalyzeTrain(trainProfile, trainTrace *Image, cfg Config, opts crisp.Options) *Pipeline {
	prof := Run(trainProfile, cfg.WithSched(core.SchedOldestFirst))
	limit := cfg.Core.MaxInsts
	if limit == 0 {
		limit = 1 << 21
	}
	tr := CaptureTrace(trainTrace, limit)
	analysis := crisp.Analyze(prof, tr, trainTrace.Prog, opts)
	fp := crisp.MeasureFootprint(trainTrace.Prog, tr, analysis.CriticalPCs)
	return &Pipeline{Analysis: analysis, Footprint: fp, Profile: prof}
}

// Tagged returns a copy of img running the analysis-tagged program.
func (p *Pipeline) Tagged(img *Image) *Image {
	return img.withProg(p.Analysis.Apply(img.Prog))
}

// Describe formats a one-line summary of a result for logs, including the
// host-side simulation speed.
func Describe(name string, r *core.Result) string {
	return fmt.Sprintf("%-14s IPC %.3f cycles %d insts %d LLC-MPKI %.2f brMPKI %.2f host %.2f MIPS",
		name, r.IPC(), r.Cycles, r.Insts, r.LLCMPKI(), r.BranchMPKI(), r.HostMIPS())
}
