// Package sim wires the simulated system together (Table 1): the OOO core,
// the cache hierarchy with data prefetchers, DRAM, and the optional
// criticality mechanisms (static CRISP tags or runtime IBDA marking). It
// also drives the paper's two-phase flow: a profiling run plus trace
// capture on the train input, CRISP analysis, then evaluation runs on the
// ref input (Section 5.1).
package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"crisp/internal/branch"
	"crisp/internal/cache"
	"crisp/internal/checkpoint"
	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/emu"
	"crisp/internal/ibda"
	"crisp/internal/isa"
	"crisp/internal/prefetch"
	"crisp/internal/program"
	"crisp/internal/trace"
)

// Image is a ready-to-run workload instance: static code plus initialized
// memory and registers. Train and ref variants of a workload share the
// same program and differ only in data (Section 5.1's separate profiling
// and evaluation inputs).
type Image struct {
	Prog *program.Program
	Mem  *emu.Memory
	Regs map[isa.Reg]int64
}

// withProg returns a shallow copy of the Image running program p in place
// of img's program (used to swap in a critical-tagged clone). The memory
// and register map are shared, NOT copied: a run consumes its image's
// memory state, so the original and the copy cannot both be simulated —
// build a fresh Image per run.
func (img *Image) withProg(p *program.Program) *Image {
	return &Image{Prog: p, Mem: img.Mem, Regs: img.Regs}
}

// PrefetcherKind selects the data-prefetch configuration.
type PrefetcherKind int

// Data prefetcher configurations.
const (
	PFBOPStream PrefetcherKind = iota // Table 1 default: BOP + stream
	PFStride
	PFGHB
	PFNone
)

func (p PrefetcherKind) String() string {
	switch p {
	case PFBOPStream:
		return "bop+stream"
	case PFStride:
		return "stride"
	case PFGHB:
		return "ghb"
	default:
		return "none"
	}
}

// Config is the full simulated-system configuration.
type Config struct {
	Core       core.Config
	Hier       cache.HierConfig
	Prefetcher PrefetcherKind
	// IBDA, when non-nil, attaches the runtime IBDA marker (and the run
	// should use the CRISP scheduler so marks take effect).
	IBDA *ibda.Config
}

// DefaultConfig returns the Table 1 system.
func DefaultConfig() Config {
	return Config{
		Core:       core.DefaultConfig(),
		Hier:       cache.DefaultHierConfig(),
		Prefetcher: PFBOPStream,
	}
}

// WithSched returns a copy with the scheduler policy replaced.
func (c Config) WithSched(s core.SchedulerKind) Config {
	c.Core.Scheduler = s
	return c
}

// WithWindow returns a copy with RS/ROB sizes replaced (Figure 9 sweeps).
func (c Config) WithWindow(rs, rob int) Config {
	c.Core.RSSize = rs
	c.Core.ROBSize = rob
	return c
}

// ibdaMarker adapts ibda.IBDA to the core.Marker interface.
type ibdaMarker struct{ ib *ibda.IBDA }

func (m ibdaMarker) MarkDispatch(pc int, isLoad bool, producers []int) bool {
	return m.ib.MarkDispatch(pc, isLoad, producers)
}

// Run executes one timing simulation of the image under cfg.
func Run(img *Image, cfg Config) *core.Result {
	r, _ := RunContext(context.Background(), img, cfg)
	return r
}

// newPrefetcher builds a fresh data prefetcher of the given kind, or nil
// for PFNone.
func newPrefetcher(kind PrefetcherKind) prefetch.Prefetcher {
	switch kind {
	case PFBOPStream:
		return &prefetch.Composite{Parts: []prefetch.Prefetcher{prefetch.NewBOP(), prefetch.NewStream(64)}}
	case PFStride:
		return prefetch.NewStride(256)
	case PFGHB:
		return prefetch.NewGHB(512)
	default:
		return nil
	}
}

// attachPrefetcher installs the configured data prefetcher on L1D.
func attachPrefetcher(kind PrefetcherKind, hier *cache.Hierarchy) {
	if pf := newPrefetcher(kind); pf != nil {
		hier.L1D.SetPrefetcher(pf)
	}
}

// attachIBDA wires an IBDA instance's delinquent-load feedback to the
// LLC and returns its core-facing marker. The observer registers through
// the hierarchy view, so on a shared LLC it fires only for this core's
// misses.
func attachIBDA(ib *ibda.IBDA, prog *program.Program, hier *cache.Hierarchy) core.Marker {
	hier.SetMissObserver(func(pc, _ uint64) {
		spc := int(pc)
		if spc >= 0 && spc < prog.Len() && prog.Insts[spc].Op == isa.OpLoad {
			ib.OnLLCMiss(spc)
		}
	})
	return ibdaMarker{ib}
}

// cancelCheck adapts a context to the core's cancellation poll; returns
// nil for contexts that can never be cancelled.
func cancelCheck(ctx context.Context) func() bool {
	done := ctx.Done()
	if done == nil {
		return nil
	}
	return func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
}

// RunContext is Run with cancellation: the context's Done channel is
// polled inside the core's cycle loop (every few thousand simulated
// cycles), so a cancelled or timed-out sweep stops mid-simulation instead
// of running its instruction budget out. On cancellation it returns
// (nil, ctx.Err()) and the partial run is not counted in HostTotals.
func RunContext(ctx context.Context, img *Image, cfg Config) (*core.Result, error) {
	hier := cache.NewHierarchy(cfg.Hier)
	attachPrefetcher(cfg.Prefetcher, hier)

	var marker core.Marker
	if cfg.IBDA != nil {
		marker = attachIBDA(ibda.New(*cfg.IBDA), img.Prog, hier)
	}

	em := emu.New(img.Prog, img.Mem)
	for r, v := range img.Regs {
		em.SetReg(r, v)
	}
	c := core.New(cfg.Core, img.Prog, em, hier, marker)
	if f := cancelCheck(ctx); f != nil {
		c.SetCancelCheck(f)
	}
	r := c.Run()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	hostInsts.Add(r.Insts)
	hostNS.Add(uint64(r.HostNS))
	return r, nil
}

// CaptureCheckpoints runs the single functional fast-forward pass over
// the image and returns the checkpoint set for the schedule: the per-
// (workload, input, schedule) artifact every config's sampled run
// restores from. The image is consumed. The warmed cache geometry and
// frontend structure sizes come from cfg, which must match the configs
// that will restore the set (RunSampledContext verifies the hierarchy
// geometry).
func CaptureCheckpoints(img *Image, cfg Config, s Sampling) *checkpoint.Set {
	set, _ := CaptureCheckpointsContext(context.Background(), img, cfg, s)
	return set
}

// CaptureCheckpointsContext is CaptureCheckpoints with cancellation and
// the context's Workers.Capture bound applied to the capture pipeline
// (see checkpoint.CaptureContext for the worker semantics; parallel and
// sequential captures are bit-identical). On cancellation it returns
// (nil, ctx.Err()) so a partial set is never stored.
func CaptureCheckpointsContext(ctx context.Context, img *Image, cfg Config, s Sampling) (*checkpoint.Set, error) {
	em := emu.New(img.Prog, img.Mem)
	for r, v := range img.Regs {
		em.SetReg(r, v)
	}
	// Warm one cache-hierarchy/prefetcher variant per prefetcher kind:
	// prefetched lines are part of steady-state cache content (resident
	// prefetches dedup most later suggestions), and prefetcher training
	// itself converges slowly, so both must be warmed per kind. The
	// functional execution — the expensive part — still happens once, and
	// every scheduler config of every kind shares the result.
	pfs := make(map[string]prefetch.Prefetcher)
	for _, kind := range []PrefetcherKind{PFBOPStream, PFStride, PFGHB, PFNone} {
		pfs[kind.String()] = newPrefetcher(kind)
	}
	set, err := checkpoint.CaptureContext(ctx, img.Prog, em, cfg.Hier,
		cfg.Core.BTBEntries, cfg.Core.BTBWays, cfg.Core.RASEntries, pfs,
		checkpoint.Params{Skip: s.Skip, Warm: s.Warm, Window: s.Window, Count: s.Count},
		WorkersFrom(ctx).Capture)
	if err != nil {
		return nil, err
	}
	hostFFInsts.Add(set.FFInsts)
	hostFFNS.Add(uint64(set.HostNS))
	return set, nil
}

// RunSampled executes a sampled simulation of prog under cfg over a
// previously captured checkpoint set.
func RunSampled(set *checkpoint.Set, prog *program.Program, cfg Config, s Sampling) (*core.Result, error) {
	return RunSampledContext(context.Background(), set, prog, cfg, s)
}

// RunSampledContext restores each checkpoint into a fresh detailed window
// (cloned warmed hierarchy and predictors, copy-on-write memory fork,
// per-config prefetcher/IBDA attachments) of Window instructions under
// cfg, and aggregates the per-window results into one weighted
// core.Result: windows are equal-length, so summing counters, breakdowns
// and histograms is the weighted aggregate. prog must be position-
// identical to the program the set was captured from (a critical-tagged
// clone qualifies). The set is only read, never mutated, so any number of
// configs may run over it concurrently.
func RunSampledContext(ctx context.Context, set *checkpoint.Set, prog *program.Program, cfg Config, s Sampling) (*core.Result, error) {
	if set.Hier != cfg.Hier {
		return nil, fmt.Errorf("sim: checkpoint set warmed with different hierarchy geometry than the run config")
	}
	check := cancelCheck(ctx)
	results := make([]*core.Result, len(set.Points))
	if cfg.IBDA != nil {
		// One IBDA instance spans the windows: the runtime mechanism would
		// have been learning continuously across the whole execution, so
		// the windows must run sequentially in execution order.
		ib := ibda.New(*cfg.IBDA)
		for i, pt := range set.Points {
			r, err := runWindow(pt, prog, cfg, s.Window, ib, check)
			if err != nil {
				return nil, err
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			results[i] = r
		}
	} else {
		// Without cross-window state the windows are independent: each
		// restores from the read-only checkpoint set into its own emulator,
		// hierarchy and predictors. Fan the loop out over a bounded worker
		// set; the merge below runs in window-index order regardless of
		// completion order, so the aggregate (including its float folds) is
		// identical to the sequential path's.
		errs := make([]error, len(set.Points))
		workers := windowWorkers(ctx, len(set.Points))
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(set.Points) || ctx.Err() != nil {
						return
					}
					results[i], errs[i] = runWindow(set.Points[i], prog, cfg, s.Window, nil, check)
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	var agg *core.Result
	for _, r := range results {
		if agg == nil {
			agg = r
		} else {
			agg.Merge(r)
		}
	}
	if agg == nil {
		agg = &core.Result{Loads: map[int]*core.LoadProf{}, Branches: map[int]*core.BranchProf{}}
	}
	agg.SampledWindows = len(set.Points)
	agg.FFInsts = set.FFInsts
	agg.HostFFNS = set.HostNS
	return agg, nil
}

// runWindow restores one checkpoint into a fresh detailed window (cloned
// warmed hierarchy and predictors, copy-on-write memory fork) and runs
// Window instructions of it under cfg. ib may be nil; when set, the
// caller is responsible for running windows sequentially.
func runWindow(pt *checkpoint.Point, prog *program.Program, cfg Config, window uint64, ib *ibda.IBDA, check func() bool) (*core.Result, error) {
	st, err := pt.Restore(prog, cfg.Prefetcher.String())
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	var marker core.Marker
	if ib != nil {
		marker = attachIBDA(ib, prog, st.Hier)
	}
	ccfg := cfg.Core
	ccfg.MaxInsts = window
	c := core.New(ccfg, prog, st.Em, st.Hier, marker)
	var bp branch.Predictor
	if !ccfg.PerfectBP {
		bp = st.BP
	}
	c.SetBranchState(bp, st.BTB, st.RAS)
	if check != nil {
		c.SetCancelCheck(check)
	}
	r := c.Run()
	hostInsts.Add(r.Insts)
	hostNS.Add(uint64(r.HostNS))
	return r, nil
}

// Cumulative host-throughput counters across every Run in the process
// (timing runs only; trace captures are not counted). The FF pair counts
// the functional fast-forward/checkpoint-capture side of sampled
// simulation, kept separate so the detailed-vs-functional host split is
// observable.
var hostInsts, hostNS, hostFFInsts, hostFFNS atomic.Uint64

// HostTotals returns the total simulated instructions and host
// nanoseconds spent inside core.Run since process start (or the last
// ResetHostTotals). With concurrent runs the nanoseconds are summed
// per-run CPU-ish time, not wall time.
func HostTotals() (insts, ns uint64) { return hostInsts.Load(), hostNS.Load() }

// HostFFTotals returns the total instructions executed functionally and
// host nanoseconds spent in checkpoint capture (fast-forward + warming +
// snapshots) since process start or the last ResetHostTotals. Capture
// cost is counted once per checkpoint set, however many configs share it.
func HostFFTotals() (insts, ns uint64) { return hostFFInsts.Load(), hostFFNS.Load() }

// ResetHostTotals zeroes the cumulative host-throughput counters.
func ResetHostTotals() {
	hostInsts.Store(0)
	hostNS.Store(0)
	hostFFInsts.Store(0)
	hostFFNS.Store(0)
}

// CaptureTrace functionally executes the image and records up to limit
// dynamic instructions with producer links (the tracing step of Figure 5).
func CaptureTrace(img *Image, limit uint64) *trace.Trace {
	em := emu.New(img.Prog, img.Mem)
	for r, v := range img.Regs {
		em.SetReg(r, v)
	}
	return trace.Capture(em, limit)
}

// Pipeline bundles the outputs of the CRISP software flow for a workload.
type Pipeline struct {
	Analysis  *crisp.Analysis
	Footprint crisp.Footprint
	Profile   *core.Result
}

// DefaultAnalysisTraceLimit is the fallback dynamic-instruction budget
// for AnalyzeTrain's trace capture when the run configuration carries no
// explicit MaxInsts. The workload kernels loop indefinitely (they are
// bounded by instruction budgets, not by Halt), so an unbounded capture
// would never terminate; 2^21 ≈ 2.1M instructions is enough for the
// dependence-chain analysis to converge on every kernel in the registry.
// Sampled runs size the analysis window explicitly (Sampling.Total()).
const DefaultAnalysisTraceLimit uint64 = 1 << 21

// AnalyzeTrain runs the profiling pass and trace capture on a train image
// pair and returns the CRISP analysis. trainProfile and trainTrace must be
// two independently built images of the same workload variant (each run
// consumes its image's memory state).
func AnalyzeTrain(trainProfile, trainTrace *Image, cfg Config, opts crisp.Options) *Pipeline {
	prof := Run(trainProfile, cfg.WithSched(core.SchedOldestFirst))
	limit := cfg.Core.MaxInsts
	if limit == 0 {
		limit = DefaultAnalysisTraceLimit
	}
	tr := CaptureTrace(trainTrace, limit)
	analysis := crisp.Analyze(prof, tr, trainTrace.Prog, opts)
	fp := crisp.MeasureFootprint(trainTrace.Prog, tr, analysis.CriticalPCs)
	return &Pipeline{Analysis: analysis, Footprint: fp, Profile: prof}
}

// Tagged returns a copy of img running the analysis-tagged program.
func (p *Pipeline) Tagged(img *Image) *Image {
	return img.withProg(p.Analysis.Apply(img.Prog))
}

// Describe formats a one-line summary of a result for logs, including the
// host-side simulation speed.
func Describe(name string, r *core.Result) string {
	return fmt.Sprintf("%-14s IPC %.3f cycles %d insts %d LLC-MPKI %.2f brMPKI %.2f host %.2f MIPS",
		name, r.IPC(), r.Cycles, r.Insts, r.LLCMPKI(), r.BranchMPKI(), r.HostMIPS())
}
