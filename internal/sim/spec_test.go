package sim_test

import (
	"context"
	"testing"
	"time"

	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/ibda"
	"crisp/internal/sim"
	"crisp/internal/workload"
)

func TestRunSpecKeyDeterministicAndDistinct(t *testing.T) {
	a := sim.RunSpec{Workload: "mcf", Insts: 1000}
	if a.Key() != a.Key() {
		t.Fatal("key not deterministic")
	}
	// Normalization: explicit defaults share the implicit-default key.
	b := sim.RunSpec{Workload: "mcf", Input: sim.InputRef, Sched: sim.SchedOOO, Insts: 1000}
	if a.Key() != b.Key() {
		t.Error("normalized spec keys differ for identical semantics")
	}
	// Spelling out the Table 1 window sizes is the same machine.
	c := sim.RunSpec{Workload: "mcf", Insts: 1000, RS: 96, ROB: 224}
	if a.Key() != c.Key() {
		t.Error("default-window spec key differs from zero-value spec")
	}
	distinct := []sim.RunSpec{
		{Workload: "lbm", Insts: 1000},
		{Workload: "mcf", Insts: 2000},
		{Workload: "mcf", Insts: 1000, Input: sim.InputTrain},
		{Workload: "mcf", Insts: 1000, Sched: sim.SchedCRISP},
		{Workload: "mcf", Insts: 1000, RS: 64, ROB: 180},
		{Workload: "mcf", Insts: 1000, Prefetcher: sim.PFStride},
		{Workload: "mcf", Insts: 1000, UPCWindow: 200},
		{Workload: "mcf", Insts: 1000, PerfectBP: true},
		a.WithCrisp(crisp.DefaultOptions()),
		a.WithIBDA(ibda.Config{ISTEntries: 1024, ISTWays: 4, DLTEntries: 32}),
	}
	seen := map[string]int{a.Key(): -1}
	for i, s := range distinct {
		k := s.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("specs %d and %d collide on key %s", i, prev, k)
		}
		seen[k] = i
	}
	// Different pipeline options change the key.
	o := crisp.DefaultOptions()
	o.MissShareThreshold = 0.05
	if a.WithCrisp(o).Key() == a.WithCrisp(crisp.DefaultOptions()).Key() {
		t.Error("crisp option change did not change the key")
	}
}

func TestRunSpecConfig(t *testing.T) {
	s := sim.RunSpec{Workload: "mcf", Insts: 5000, RS: 64, ROB: 180,
		Sched: sim.SchedCRISP, Prefetcher: sim.PFGHB, UPCWindow: 100, PerfectBP: true}
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Core.MaxInsts != 5000 || cfg.Core.RSSize != 64 || cfg.Core.ROBSize != 180 {
		t.Errorf("window/budget not applied: %+v", cfg.Core)
	}
	if cfg.Core.Scheduler != core.SchedCRISP || cfg.Prefetcher != sim.PFGHB ||
		cfg.Core.UPCWindow != 100 || !cfg.Core.PerfectBP {
		t.Errorf("variant fields not applied: %+v", cfg)
	}
	// Zero-value spec means the Table 1 system.
	cfg, err = sim.RunSpec{Workload: "mcf", Insts: 1}.Config()
	if err != nil {
		t.Fatal(err)
	}
	def := sim.DefaultConfig()
	if cfg.Core.RSSize != def.Core.RSSize || cfg.Core.ROBSize != def.Core.ROBSize ||
		cfg.Prefetcher != def.Prefetcher || cfg.Core.Scheduler != core.SchedOldestFirst {
		t.Errorf("zero-value spec is not the default system: %+v", cfg)
	}
	// IBDA config is copied, not shared.
	ib := ibda.Config{ISTEntries: 8, ISTWays: 2, DLTEntries: 4}
	s = sim.RunSpec{Workload: "mcf", Insts: 1}.WithIBDA(ib)
	cfg, _ = s.Config()
	cfg.IBDA.ISTEntries = 99
	if s.IBDA.ISTEntries != 8 {
		t.Error("Config aliases the spec's IBDA config")
	}
}

func TestRunSpecValidate(t *testing.T) {
	bad := []sim.RunSpec{
		{},
		{Workload: "mcf", Input: "test"},
		{Workload: "mcf", Sched: "fifo"},
		{Workload: "mcf", Sched: sim.SchedCRISP,
			Crisp: &crisp.Options{}, IBDA: &ibda.Config{ISTEntries: 1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d validated: %+v", i, s)
		}
	}
	if err := (sim.RunSpec{Workload: "anything", Insts: 1}).Validate(); err != nil {
		t.Errorf("minimal spec rejected: %v", err)
	}
}

// TestRunContextCancel: cancelling mid-simulation returns promptly with
// the context's error instead of running the budget out.
func TestRunContextCancel(t *testing.T) {
	w := workload.ByName("pointerchase")
	cfg := sim.DefaultConfig()
	cfg.Core.MaxInsts = 500_000_000
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	r, err := sim.RunContext(ctx, w.Build(workload.Ref), cfg)
	if err == nil || r != nil {
		t.Fatalf("sim.RunContext = (%v, %v), want (nil, ctx error)", r, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}
