package sim

import (
	"testing"

	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/emu"
	"crisp/internal/isa"
	"crisp/internal/program"
)

// divImage builds a kernel where an unpipelined divide chain at the loop
// tail gates the next iteration's work while independent ALU filler
// saturates the issue ports — the Section 6.1 scenario for prioritizing
// high-latency arithmetic.
func divImage() *Image {
	mem := emu.NewMemory()
	for i := 0; i < 96; i++ {
		mem.WriteWord(uint64(0x400000+i*8), int64(i+3))
	}
	b := program.NewBuilder("div")
	vb, e, lim := isa.R(3), isa.R(4), isa.R(5)
	t1, t2, t3 := isa.R(8), isa.R(9), isa.R(10)
	acc, d := isa.R(20), isa.R(21)
	b.MovI(vb, 0x400000)
	b.MovI(lim, 32)
	b.MovI(isa.R(6), 7)
	b.Label("outer")
	b.MovI(e, 0)
	b.Label("fill")
	b.LoadIdx(t1, vb, e, 8, 0)
	b.Mul(t2, t1, acc)
	b.Mul(t3, t1, acc)
	b.Add(t2, t2, t3)
	b.Xor(t3, t2, t1)
	b.Add(t2, t3, t1)
	b.AddI(e, e, 1)
	b.Blt(e, lim, "fill")
	// Loop-carried divide chain: the next iteration's filler multiplies by
	// acc, which the divides produce.
	b.AddI(d, d, 13)
	b.Div(acc, d, isa.R(6))
	b.Rem(acc, acc, d)
	b.AddI(acc, acc, 3)
	b.Bne(d, isa.R(0), "outer")
	b.Halt()
	return &Image{Prog: b.MustBuild(), Mem: mem, Regs: map[isa.Reg]int64{acc: 5, d: 11}}
}

func TestDivSliceExtension(t *testing.T) {
	cfg := cfgN(150_000)

	analyze := func(enable bool) *crisp.Analysis {
		opts := crisp.DefaultOptions()
		opts.HighLatencyALU = enable
		pipe := AnalyzeTrain(divImage(), divImage(), cfg, opts)
		return pipe.Analysis
	}

	off := analyze(false)
	on := analyze(true)
	if len(off.SlowALUs) != 0 {
		t.Fatalf("extension off but SlowALUs = %v", off.SlowALUs)
	}
	if len(on.SlowALUs) == 0 {
		t.Fatalf("extension on found no divide roots")
	}
	if len(on.CriticalPCs) <= len(off.CriticalPCs) {
		t.Fatalf("divide slices added no tags: %d vs %d", len(on.CriticalPCs), len(off.CriticalPCs))
	}

	base := Run(divImage(), cfg.WithSched(core.SchedOldestFirst))
	img := divImage()
	img.Prog = on.Apply(img.Prog)
	cr := Run(img, cfg.WithSched(core.SchedCRISP))
	gain := (cr.IPC()/base.IPC() - 1) * 100
	t.Logf("div-slice extension: OOO %.3f CRISP %.3f (%+.2f%%)", base.IPC(), cr.IPC(), gain)
	if gain < 0.2 {
		t.Errorf("divide-slice prioritization gained %+.2f%%, want > 0.2%%", gain)
	}
}
