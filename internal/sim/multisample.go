package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"crisp/internal/branch"
	"crisp/internal/cache"
	"crisp/internal/checkpoint"
	"crisp/internal/core"
	"crisp/internal/dram"
	"crisp/internal/emu"
	"crisp/internal/prefetch"
	"crisp/internal/program"
)

// Sampled multi-core execution: CaptureMultiCheckpoints runs the
// co-scheduled functional pass once per (workload tuple, schedule,
// per-core prefetcher tuple), and RunMultiSampledContext restores the
// aligned points into parallel detailed lockstep windows. Unlike the
// single-core capture — which warms every prefetcher kind side by side
// and lets each config pick its variant — one shared LLC can only hold
// one co-resident occupancy, so the prefetcher tuple is part of the
// capture: scheduler and window-size sweeps share a set, prefetcher
// sweeps recapture.

// Calibration bounds: each mini-capture that measures per-core co-run
// speeds warms for at most calWarm instructions per core and runs one
// detailed lockstep window of at most calWindow instructions per core;
// the capture-measure loop iterates until consecutive pace estimates
// agree within calTol per core, at most calMaxIters times.
const (
	calWarm     = 400_000
	calWindow   = 20_000
	calMaxIters = 3
	calTol      = 0.05
)

// CaptureMultiCheckpoints runs the co-scheduled functional fast-forward
// pass over the images (one per core, consumed) and returns the
// MultiSet their sampled co-runs restore from. The shared-hierarchy
// geometry, frontend structure sizes and per-core prefetcher kinds come
// from cfgs, which must match the configs that will restore the set
// (RunMultiSampledContext verifies geometry and prefetcher tuple).
//
// Capture is speed-paced: a small calibration pass — an unpaced
// mini-capture plus one detailed lockstep window under the baseline
// scheduler — measures each core's drain-free co-located IPC
// (core.Result.CoInsts/CoCycles), and the real capture scales every
// core's phase budgets and warming interleave by the resulting ratios.
// The calibration scheduler is pinned to the baseline regardless of
// cfgs, so configs that share a set (scheduler and window-size sweeps)
// derive the same pace and therefore byte-identical sets.
func CaptureMultiCheckpoints(imgs []*Image, cfgs []Config, s Sampling) (*checkpoint.MultiSet, error) {
	return CaptureMultiCheckpointsContext(context.Background(), imgs, cfgs, s)
}

// CaptureMultiCheckpointsContext is CaptureMultiCheckpoints with
// cancellation and the context's Workers.Capture bound applied to both
// the calibration mini-captures and the real capture (the multi-core
// pipeline parallelizes along the time axis; parallel and sequential
// captures are bit-identical). On cancellation it returns
// (nil, ctx.Err()) so a partial set is never stored.
func CaptureMultiCheckpointsContext(ctx context.Context, imgs []*Image, cfgs []Config, s Sampling) (*checkpoint.MultiSet, error) {
	n := len(imgs)
	if n == 0 || len(cfgs) != n {
		return nil, fmt.Errorf("sim: CaptureMultiCheckpoints needs one config per image (%d images, %d configs)", n, len(cfgs))
	}
	for i := range imgs {
		if cfgs[i].Hier != cfgs[0].Hier {
			return nil, fmt.Errorf("sim: core %d hierarchy geometry differs from core 0", i)
		}
	}
	newEms := func() ([]*program.Program, []*emu.Emulator, []prefetch.Prefetcher, []string) {
		progs := make([]*program.Program, n)
		ems := make([]*emu.Emulator, n)
		pfs := make([]prefetch.Prefetcher, n)
		kinds := make([]string, n)
		for i := range imgs {
			progs[i] = imgs[i].Prog
			em := emu.New(imgs[i].Prog, imgs[i].Mem)
			for r, v := range imgs[i].Regs {
				em.SetReg(r, v)
			}
			ems[i] = em
			pfs[i] = newPrefetcher(cfgs[i].Prefetcher)
			kinds[i] = cfgs[i].Prefetcher.String()
		}
		return progs, ems, pfs, kinds
	}

	pace, err := calibratePace(ctx, imgs, cfgs, s, newEms)
	if err != nil {
		return nil, err
	}

	progs, ems, pfs, kinds := newEms()
	set, err := checkpoint.CaptureMultiContext(ctx, progs, ems, cfgs[0].Hier,
		cfgs[0].Core.BTBEntries, cfgs[0].Core.BTBWays, cfgs[0].Core.RASEntries, pfs,
		checkpoint.Params{Skip: s.Skip, Warm: s.Warm, Window: s.Window, Count: s.Count}, pace,
		WorkersFrom(ctx).Capture)
	if err != nil {
		return nil, err
	}
	set.PFKinds = kinds
	hostFFInsts.Add(set.FFInsts)
	hostFFNS.Add(uint64(set.HostNS))
	return set, nil
}

// calibratePace measures the cores' relative co-run speeds by iterating
// to a fixed point: a mini-capture warms a shared hierarchy under an
// assumed pace, a restored lockstep window runs all cores under the
// baseline scheduler, and each core's drain-free co-phase IPC (retired
// instructions at the shared cycle the first core finished) is
// normalized against the fastest to give the next pace estimate. The
// iteration matters because pace and warmed state are circular: the
// warming interleave mix determines each core's share of the shared LLC,
// which determines the co-run speeds the capture should have warmed at.
// Starting unpaced (1:1) systematically overestimates a slow core —
// equal-instruction warming hands it more LLC occupancy than it can
// defend — so one more capture at the measured pace corrects the warmed
// state, and the estimates converge in two or three rounds. Returns nil
// (uniform pace) for single-core sets or when calibration cannot produce
// a point (a program halting inside the mini-capture). A non-nil error
// only ever reports cancellation of ctx.
func calibratePace(ctx context.Context, imgs []*Image, cfgs []Config, s Sampling, newEms func() ([]*program.Program, []*emu.Emulator, []prefetch.Prefetcher, []string)) ([]float64, error) {
	n := len(imgs)
	if n < 2 {
		return nil, nil
	}
	warm := s.Skip + s.Warm
	if warm > calWarm {
		warm = calWarm
	}
	window := s.Window
	if window > calWindow {
		window = calWindow
	}
	var pace []float64
	for iter := 0; iter < calMaxIters; iter++ {
		progs, ems, pfs, _ := newEms()
		cal, err := checkpoint.CaptureMultiContext(ctx, progs, ems, cfgs[0].Hier,
			cfgs[0].Core.BTBEntries, cfgs[0].Core.BTBWays, cfgs[0].Core.RASEntries, pfs,
			checkpoint.Params{Warm: warm, Window: window, Count: 1}, pace,
			WorkersFrom(ctx).Capture)
		if err != nil {
			return nil, err
		}
		hostFFInsts.Add(cal.FFInsts)
		hostFFNS.Add(uint64(cal.HostNS))
		if len(cal.Points) == 0 {
			return nil, nil
		}
		st, err := cal.Points[0].Restore(progs)
		if err != nil {
			return nil, nil
		}
		cores := make([]*core.Core, n)
		for i := 0; i < n; i++ {
			ccfg := cfgs[i].Core
			ccfg.MaxInsts = window
			ccfg.Scheduler = core.SchedOldestFirst // pace must not depend on the swept scheduler
			c := core.New(ccfg, progs[i], st.Ems[i], st.Hier.Views[i], nil)
			var bp branch.Predictor
			if !ccfg.PerfectBP {
				bp = st.BPs[i]
			}
			c.SetBranchState(bp, st.BTBs[i], st.RASs[i])
			cores[i] = c
		}
		results := core.RunMultiWindow(cores, nil)
		next := make([]float64, n)
		max := 0.0
		for i, r := range results {
			if r.CoCycles > 0 {
				next[i] = float64(r.CoInsts) / float64(r.CoCycles)
			}
			if next[i] > max {
				max = next[i]
			}
		}
		if max <= 0 {
			return pace, nil
		}
		for i := range next {
			next[i] /= max
		}
		converged := pace != nil
		for i := range next {
			if converged {
				if d := next[i] - pace[i]; d > calTol || d < -calTol {
					converged = false
				}
			}
		}
		pace = next
		if converged {
			break
		}
	}
	return pace, nil
}

// RunMultiSampled executes a sampled co-scheduled simulation over a
// previously captured MultiSet.
func RunMultiSampled(set *checkpoint.MultiSet, progs []*program.Program, cfgs []Config, s Sampling) (*MultiResult, error) {
	return RunMultiSampledContext(context.Background(), set, progs, cfgs, s)
}

// RunMultiSampledContext restores each aligned checkpoint into a fresh
// detailed lockstep window — a clone of the co-residency-warmed shared
// hierarchy, per-core emulators over copy-on-write memory forks, cloned
// predictors and prefetchers — runs the cores to their pace-scaled
// window budgets (set.WindowInsts) with core.RunMultiWindow, and
// aggregates per core across windows exactly as the single-core sampled
// path does (each core's windows are equal length, so per-core summing
// is the weighted aggregate; shared-level stats sum the same way).
// Budgets proportional to co-run speeds mean the cores finish each
// window together: the windows measure the co-located phase itself, not
// the solo drain a slow core would run after equal budgets let its
// neighbours finish early. progs[i] must be position-identical to the program core i was
// captured with. Runtime IBDA is rejected by MultiSpec.Validate — an
// instance spans windows — so the windows are always independent and fan
// out over the sampled worker pool; the merge runs in window-index
// order, keeping the aggregate identical to a sequential execution.
func RunMultiSampledContext(ctx context.Context, set *checkpoint.MultiSet, progs []*program.Program, cfgs []Config, s Sampling) (*MultiResult, error) {
	n := set.Cores
	if len(progs) != n || len(cfgs) != n {
		return nil, fmt.Errorf("sim: %d-core checkpoint set, %d programs, %d configs", n, len(progs), len(cfgs))
	}
	for i := range cfgs {
		if cfgs[i].Hier != set.Hier {
			return nil, fmt.Errorf("sim: core %d config hierarchy geometry differs from the checkpoint set's", i)
		}
		if cfgs[i].IBDA != nil {
			return nil, fmt.Errorf("sim: core %d uses runtime IBDA marking; sampled multi-core runs do not support it", i)
		}
		if set.PFKinds != nil && set.PFKinds[i] != cfgs[i].Prefetcher.String() {
			return nil, fmt.Errorf("sim: checkpoint set warmed core %d for prefetcher %q, config wants %q (the prefetcher tuple is part of the capture)",
				i, set.PFKinds[i], cfgs[i].Prefetcher.String())
		}
	}
	check := cancelCheck(ctx)

	type windowOut struct {
		cores   []*core.Result
		llc     cache.Stats
		llcPer  []cache.Stats
		dram    dram.Stats
		dramPer []dram.Stats
		hostNS  int64
	}
	runOne := func(pt *checkpoint.MultiPoint) (*windowOut, error) {
		st, err := pt.Restore(progs)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		cores := make([]*core.Core, n)
		for i := 0; i < n; i++ {
			ccfg := cfgs[i].Core
			ccfg.MaxInsts = s.Window
			if set.WindowInsts != nil {
				ccfg.MaxInsts = set.WindowInsts[i]
			}
			c := core.New(ccfg, progs[i], st.Ems[i], st.Hier.Views[i], nil)
			var bp branch.Predictor
			if !ccfg.PerfectBP {
				bp = st.BPs[i]
			}
			c.SetBranchState(bp, st.BTBs[i], st.RASs[i])
			if check != nil {
				c.SetCancelCheck(check)
			}
			cores[i] = c
		}
		results := core.RunMultiWindow(cores, check)
		out := &windowOut{
			cores:   results,
			llc:     st.Hier.LLC.Stats(),
			dram:    st.Hier.Mem.Stats(),
			llcPer:  make([]cache.Stats, n),
			dramPer: make([]dram.Stats, n),
		}
		for i := 0; i < n; i++ {
			out.llcPer[i] = st.Hier.LLC.RequesterStats(i)
			out.dramPer[i] = st.Hier.Mem.RequesterStats(i)
			hostInsts.Add(results[i].Insts)
			if results[i].HostNS > out.hostNS {
				out.hostNS = results[i].HostNS // max core = whole lockstep window
			}
		}
		hostNS.Add(uint64(out.hostNS))
		return out, nil
	}

	outs := make([]*windowOut, len(set.Points))
	errs := make([]error, len(set.Points))
	workers := windowWorkers(ctx, len(set.Points))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(set.Points) || ctx.Err() != nil {
					return
				}
				outs[i], errs[i] = runOne(set.Points[i])
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	m := &MultiResult{
		Cores:       make([]*core.Result, n),
		LLCPerCore:  make([]cache.Stats, n),
		DRAMPerCore: make([]dram.Stats, n),
	}
	for _, out := range outs {
		for i := 0; i < n; i++ {
			if m.Cores[i] == nil {
				m.Cores[i] = out.cores[i]
			} else {
				m.Cores[i].Merge(out.cores[i])
			}
			m.LLCPerCore[i].Add(&out.llcPer[i])
			m.DRAMPerCore[i].Add(&out.dramPer[i])
		}
		m.LLC.Add(&out.llc)
		m.DRAM.Add(&out.dram)
		m.HostNS += out.hostNS
	}
	for i := 0; i < n; i++ {
		if m.Cores[i] == nil {
			m.Cores[i] = &core.Result{Loads: map[int]*core.LoadProf{}, Branches: map[int]*core.BranchProf{}}
		}
		m.Cores[i].SampledWindows = len(set.Points)
		if set.FFPerCore != nil {
			m.Cores[i].FFInsts = set.FFPerCore[i]
		}
	}
	m.SampledWindows = len(set.Points)
	m.FFInsts = set.FFInsts
	m.HostFFNS = set.HostNS
	return m, nil
}
