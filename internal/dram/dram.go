// Package dram models a DDR4-like single-channel main memory with banks,
// open rows, and a shared data bus, standing in for the Ramulator backend
// of the paper's simulation platform (Table 1: DDR4-2400, 1 channel).
//
// The model is latency-returning: Access(addr, write, cycle) computes when
// the request's data is available, advancing per-bank and channel busy
// state. Requests are serviced in arrival order (FCFS with open-page row
// policy); row-buffer hits, misses, and conflicts are timed differently,
// and bank-level parallelism emerges naturally because independent banks
// overlap. This captures the properties CRISP's evaluation depends on:
// high and variable miss latency, and MLP when independent misses hit
// different banks.
package dram

// Config holds DRAM timing parameters in CPU cycles (3 GHz core clock,
// DDR4-2400 device timings).
type Config struct {
	Banks       int // banks in the channel
	RowBytes    int // row-buffer size per bank
	CtrlLatency int // controller + queueing overhead per request
	CAS         int // column access (row-buffer hit portion)
	RCD         int // activate: row closed -> open
	RP          int // precharge: close a conflicting row
	Burst       int // 64B data-burst transfer time on the channel
}

// DefaultConfig returns DDR4-2400-like timings at a 3 GHz core clock
// (CL=RCD=RP ~14ns ~= 42 cycles; 64B burst ~3.3ns ~= 10 cycles).
func DefaultConfig() Config {
	return Config{
		Banks:       16,
		RowBytes:    8192,
		CtrlLatency: 20,
		CAS:         42,
		RCD:         42,
		RP:          42,
		Burst:       10,
	}
}

// Stats aggregates DRAM activity.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64 // closed row (first access after precharge)
	RowConflicts uint64 // different row open
	TotalReadLat uint64 // sum of read latencies (request to data)
}

// AvgReadLatency returns the mean read latency in cycles.
func (s *Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.TotalReadLat) / float64(s.Reads)
}

type bank struct {
	openRow   int64 // -1 = closed
	busyUntil uint64
}

// DRAM is a single-channel memory controller.
type DRAM struct {
	cfg     Config
	banks   []bank
	busBusy uint64 // channel data-bus busy-until
	stats   Stats
}

// New returns a DRAM with the given config (zero Config fields replaced by
// defaults).
func New(cfg Config) *DRAM {
	def := DefaultConfig()
	if cfg.Banks == 0 {
		cfg = def
	}
	d := &DRAM{cfg: cfg, banks: make([]bank, cfg.Banks)}
	for i := range d.banks {
		d.banks[i].openRow = -1
	}
	return d
}

// Access services a 64-byte line request beginning at CPU cycle `cycle`
// and returns the cycle at which the data transfer completes. Writes
// occupy the bank and bus but callers typically ignore their completion
// time (write-backs are not on the load critical path).
func (d *DRAM) Access(addr uint64, write bool, cycle uint64) uint64 {
	// Address mapping: row-interleaved across banks so that sequential
	// lines within a row stay in one bank (row locality) while independent
	// data structures spread across banks.
	rowID := addr / uint64(d.cfg.RowBytes)
	b := &d.banks[rowID%uint64(len(d.banks))]
	row := int64(rowID / uint64(len(d.banks)))

	start := cycle + uint64(d.cfg.CtrlLatency)
	if b.busyUntil > start {
		start = b.busyUntil
	}

	var access uint64
	switch {
	case b.openRow == row:
		access = uint64(d.cfg.CAS)
		d.stats.RowHits++
	case b.openRow == -1:
		access = uint64(d.cfg.RCD + d.cfg.CAS)
		d.stats.RowMisses++
	default:
		access = uint64(d.cfg.RP + d.cfg.RCD + d.cfg.CAS)
		d.stats.RowConflicts++
	}
	b.openRow = row
	b.busyUntil = start + access

	xfer := start + access
	if d.busBusy > xfer {
		xfer = d.busBusy
	}
	done := xfer + uint64(d.cfg.Burst)
	d.busBusy = done

	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
		d.stats.TotalReadLat += done - cycle
	}
	return done
}

// Stats returns a copy of the accumulated statistics.
func (d *DRAM) Stats() Stats { return d.stats }

// MinReadLatency returns the best-case (row hit, idle) read latency.
func (d *DRAM) MinReadLatency() uint64 {
	return uint64(d.cfg.CtrlLatency + d.cfg.CAS + d.cfg.Burst)
}
