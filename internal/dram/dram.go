// Package dram models a DDR4-like single-channel main memory with banks,
// open rows, and a shared data bus, standing in for the Ramulator backend
// of the paper's simulation platform (Table 1: DDR4-2400, 1 channel).
//
// The model is latency-returning: Access(addr, write, cycle) computes when
// the request's data is available, advancing per-bank and channel busy
// state. Requests are serviced in arrival order (FCFS with open-page row
// policy); row-buffer hits, misses, and conflicts are timed differently,
// and bank-level parallelism emerges naturally because independent banks
// overlap. This captures the properties CRISP's evaluation depends on:
// high and variable miss latency, and MLP when independent misses hit
// different banks.
package dram

// Config holds DRAM timing parameters in CPU cycles (3 GHz core clock,
// DDR4-2400 device timings).
type Config struct {
	Banks       int // banks in the channel
	RowBytes    int // row-buffer size per bank
	CtrlLatency int // controller + queueing overhead per request
	CAS         int // column access (row-buffer hit portion)
	RCD         int // activate: row closed -> open
	RP          int // precharge: close a conflicting row
	Burst       int // 64B data-burst transfer time on the channel
}

// DefaultConfig returns DDR4-2400-like timings at a 3 GHz core clock
// (CL=RCD=RP ~14ns ~= 42 cycles; 64B burst ~3.3ns ~= 10 cycles).
func DefaultConfig() Config {
	return Config{
		Banks:       16,
		RowBytes:    8192,
		CtrlLatency: 20,
		CAS:         42,
		RCD:         42,
		RP:          42,
		Burst:       10,
	}
}

// Stats aggregates DRAM activity.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64 // closed row (first access after precharge)
	RowConflicts uint64 // different row open
	TotalReadLat uint64 // sum of read latencies (request to data)
	BankWait     uint64 // cycles requests waited behind a busy bank
	BusWait      uint64 // cycles transfers waited behind the busy data bus
}

// Add accumulates another snapshot into s (per-requester aggregation).
func (s *Stats) Add(o *Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
	s.RowConflicts += o.RowConflicts
	s.TotalReadLat += o.TotalReadLat
	s.BankWait += o.BankWait
	s.BusWait += o.BusWait
}

// AvgReadLatency returns the mean read latency in cycles.
func (s *Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.TotalReadLat) / float64(s.Reads)
}

type bank struct {
	openRow   int64 // -1 = closed
	busyUntil uint64
}

// DRAM is a single-channel memory controller. Bank and bus busy state is
// global — every requester contends for it — while statistics can be
// attributed per requester (SetRequesters) so a multi-core simulation sees
// who caused and who suffered the contention.
type DRAM struct {
	cfg     Config
	banks   []bank
	busBusy uint64 // channel data-bus busy-until
	stats   Stats
	cur     *Stats  // increment target: &stats, or the active requester's slot
	perReq  []Stats // per-requester counters when shared (SetRequesters)
}

// New returns a DRAM with the given config (zero Config fields replaced by
// defaults).
func New(cfg Config) *DRAM {
	def := DefaultConfig()
	if cfg.Banks == 0 {
		cfg = def
	}
	d := &DRAM{cfg: cfg, banks: make([]bank, cfg.Banks)}
	d.cur = &d.stats
	for i := range d.banks {
		d.banks[i].openRow = -1
	}
	return d
}

// SetRequesters switches the controller to per-requester statistics for n
// requesters (cores). Timing state stays global; only counter attribution
// changes. The active requester starts at 0.
func (d *DRAM) SetRequesters(n int) {
	d.perReq = make([]Stats, n)
	d.cur = &d.perReq[0]
}

// SetRequester selects which requester subsequent accesses are attributed
// to. Only valid after SetRequesters.
func (d *DRAM) SetRequester(i int) { d.cur = &d.perReq[i] }

// RequesterStats returns requester i's counters.
func (d *DRAM) RequesterStats(i int) Stats { return d.perReq[i] }

// Access services a 64-byte line request beginning at CPU cycle `cycle`
// and returns the cycle at which the data transfer completes. Writes
// occupy the bank and bus but callers typically ignore their completion
// time (write-backs are not on the load critical path).
func (d *DRAM) Access(addr uint64, write bool, cycle uint64) uint64 {
	// Address mapping: row-interleaved across banks so that sequential
	// lines within a row stay in one bank (row locality) while independent
	// data structures spread across banks.
	rowID := addr / uint64(d.cfg.RowBytes)
	b := &d.banks[rowID%uint64(len(d.banks))]
	row := int64(rowID / uint64(len(d.banks)))

	start := cycle + uint64(d.cfg.CtrlLatency)
	if b.busyUntil > start {
		d.cur.BankWait += b.busyUntil - start
		start = b.busyUntil
	}

	var access uint64
	switch {
	case b.openRow == row:
		access = uint64(d.cfg.CAS)
		d.cur.RowHits++
	case b.openRow == -1:
		access = uint64(d.cfg.RCD + d.cfg.CAS)
		d.cur.RowMisses++
	default:
		access = uint64(d.cfg.RP + d.cfg.RCD + d.cfg.CAS)
		d.cur.RowConflicts++
	}
	b.openRow = row
	b.busyUntil = start + access

	xfer := start + access
	if d.busBusy > xfer {
		d.cur.BusWait += d.busBusy - xfer
		xfer = d.busBusy
	}
	done := xfer + uint64(d.cfg.Burst)
	d.busBusy = done

	if write {
		d.cur.Writes++
	} else {
		d.cur.Reads++
		d.cur.TotalReadLat += done - cycle
	}
	return done
}

// Stats returns a copy of the accumulated statistics, summed across
// requesters when per-requester attribution is active.
func (d *DRAM) Stats() Stats {
	if d.perReq == nil {
		return d.stats
	}
	sum := d.stats
	for i := range d.perReq {
		sum.Add(&d.perReq[i])
	}
	return sum
}

// MinReadLatency returns the best-case (row hit, idle) read latency.
func (d *DRAM) MinReadLatency() uint64 {
	return uint64(d.cfg.CtrlLatency + d.cfg.CAS + d.cfg.Burst)
}
