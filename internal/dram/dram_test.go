package dram

import (
	"testing"
	"testing/quick"
)

func TestRowHitFasterThanConflict(t *testing.T) {
	d := New(DefaultConfig())
	cfg := DefaultConfig()
	// First access to a closed bank: row miss.
	done1 := d.Access(0, false, 0)
	wantMiss := uint64(cfg.CtrlLatency + cfg.RCD + cfg.CAS + cfg.Burst)
	if done1 != wantMiss {
		t.Errorf("closed-row latency = %d, want %d", done1, wantMiss)
	}
	// Same row, much later (bank idle): row hit.
	done2 := d.Access(64, false, 10000)
	if got := done2 - 10000; got != uint64(cfg.CtrlLatency+cfg.CAS+cfg.Burst) {
		t.Errorf("row-hit latency = %d", got)
	}
	// Different row in the same bank: conflict, slowest.
	rowStride := uint64(cfg.RowBytes * cfg.Banks)
	done3 := d.Access(rowStride, false, 20000)
	if got := done3 - 20000; got != uint64(cfg.CtrlLatency+cfg.RP+cfg.RCD+cfg.CAS+cfg.Burst) {
		t.Errorf("conflict latency = %d", got)
	}
	s := d.Stats()
	if s.RowHits != 1 || s.RowMisses != 1 || s.RowConflicts != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBankLevelParallelism(t *testing.T) {
	cfg := DefaultConfig()
	// Two concurrent requests to different banks overlap; to the same bank
	// they serialize.
	diff := New(cfg)
	a := diff.Access(0, false, 0)
	b := diff.Access(uint64(cfg.RowBytes), false, 0) // next bank
	overlapped := max64(a, b)

	same := New(cfg)
	rowStride := uint64(cfg.RowBytes * cfg.Banks)
	c := same.Access(0, false, 0)
	e := same.Access(rowStride, false, 0) // same bank, different row
	serialized := max64(c, e)

	if overlapped >= serialized {
		t.Errorf("different-bank completion %d not faster than same-bank %d", overlapped, serialized)
	}
}

func TestBusSerializesTransfers(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	// Many simultaneous requests to distinct banks: bank access overlaps
	// but each 64B burst must occupy the shared bus in turn.
	n := 8
	var last uint64
	for i := 0; i < n; i++ {
		last = d.Access(uint64(i*cfg.RowBytes), false, 0)
	}
	minSerial := uint64(cfg.CtrlLatency+cfg.RCD+cfg.CAS) + uint64(n*cfg.Burst)
	if last < minSerial {
		t.Errorf("final completion %d < bus-serialized bound %d", last, minSerial)
	}
}

func TestMonotonicCompletion(t *testing.T) {
	// Property: for requests issued at nondecreasing cycles, completion is
	// always after issue and at least the minimum latency.
	d := New(DefaultConfig())
	minLat := d.MinReadLatency()
	f := func(addrs []uint32, gaps []uint8) bool {
		cycle := uint64(0)
		for i, a := range addrs {
			if i < len(gaps) {
				cycle += uint64(gaps[i])
			}
			done := d.Access(uint64(a), false, cycle)
			if done < cycle+minLat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCrossRequesterBankConflict pins the multi-core contention contract
// by exact cycle counts under the default config (Ctrl 20, CAS/RCD/RP 42,
// Burst 10): two requesters hitting the same bank serialize behind the
// bank, while different banks overlap and pay only the shared bus.
func TestCrossRequesterBankConflict(t *testing.T) {
	cfg := DefaultConfig()
	rowStride := uint64(cfg.RowBytes * cfg.Banks) // same bank, next row
	bankStride := uint64(cfg.RowBytes)            // next bank

	// Solo: requester 0 alone. Closed row: 20 + (42+42) + 10 = 114.
	solo := New(cfg)
	solo.SetRequesters(2)
	if done := solo.Access(0, false, 0); done != 114 {
		t.Fatalf("solo closed-row completion = %d, want 114", done)
	}

	// Same bank: requester 1's conflicting row waits for the bank (busy
	// until 104), then pays RP+RCD+CAS: start 104 + 126 + burst 10 = 240.
	same := New(cfg)
	same.SetRequesters(2)
	same.Access(0, false, 0)
	same.SetRequester(1)
	if done := same.Access(rowStride, false, 0); done != 240 {
		t.Errorf("same-bank serialized completion = %d, want 240", done)
	}
	if w := same.RequesterStats(1).BankWait; w != 84 {
		t.Errorf("requester 1 BankWait = %d, want 84 (20..104 behind requester 0's bank)", w)
	}
	if w := same.RequesterStats(0).BankWait; w != 0 {
		t.Errorf("requester 0 BankWait = %d, want 0", w)
	}

	// Different banks: banks overlap fully; requester 1 only queues its
	// burst behind requester 0's on the shared bus: 104+10(bus)+10 = 124.
	diff := New(cfg)
	diff.SetRequesters(2)
	diff.Access(0, false, 0)
	diff.SetRequester(1)
	if done := diff.Access(bankStride, false, 0); done != 124 {
		t.Errorf("different-bank overlapped completion = %d, want 124", done)
	}
	if w := diff.RequesterStats(1).BusWait; w != 10 {
		t.Errorf("requester 1 BusWait = %d, want 10", w)
	}
	if w := diff.RequesterStats(1).BankWait; w != 0 {
		t.Errorf("requester 1 BankWait = %d, want 0", w)
	}

	// Aggregate Stats() sums the per-requester slots.
	if s := same.Stats(); s.Reads != 2 || s.RowMisses != 1 || s.RowConflicts != 1 {
		t.Errorf("aggregate stats = %+v", s)
	}
}

func TestWriteStatsAndReadLatencyAvg(t *testing.T) {
	d := New(DefaultConfig())
	d.Access(0, true, 0)
	d.Access(64, false, 5000)
	s := d.Stats()
	if s.Writes != 1 || s.Reads != 1 {
		t.Errorf("reads/writes = %d/%d", s.Reads, s.Writes)
	}
	if s.AvgReadLatency() <= 0 {
		t.Errorf("avg read latency = %v", s.AvgReadLatency())
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
