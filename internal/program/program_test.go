package program

import (
	"strings"
	"testing"

	"crisp/internal/isa"
)

func buildLoop(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("loop")
	b.MovI(isa.R(1), 0)
	b.MovI(isa.R(2), 10)
	b.Label("head")
	b.AddI(isa.R(1), isa.R(1), 1)
	b.Blt(isa.R(1), isa.R(2), "head")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuilderResolvesLabels(t *testing.T) {
	p := buildLoop(t)
	if p.Len() != 5 {
		t.Fatalf("Len = %d, want 5", p.Len())
	}
	blt := p.Insts[3]
	if blt.Op != isa.OpBlt || blt.Target != 2 {
		t.Errorf("blt = %+v, want target 2", blt)
	}
	if p.Label("head") != 2 {
		t.Errorf("Label(head) = %d, want 2", p.Label("head"))
	}
	if p.Label("missing") != -1 {
		t.Errorf("Label(missing) = %d, want -1", p.Label("missing"))
	}
}

func TestUndefinedLabelFails(t *testing.T) {
	b := NewBuilder("bad")
	b.Jmp("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("Build err = %v, want undefined-label error", err)
	}
}

func TestDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate label did not panic")
		}
	}()
	b := NewBuilder("dup")
	b.Label("x")
	b.Label("x")
}

func TestForwardReference(t *testing.T) {
	b := NewBuilder("fwd")
	b.Jmp("end")
	b.Nop()
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if p.Insts[0].Target != 2 {
		t.Errorf("forward jmp target = %d, want 2", p.Insts[0].Target)
	}
}

func TestByteAddrsMonotonic(t *testing.T) {
	p := buildLoop(t)
	prev := p.ByteAddr(0)
	if prev != CodeBase {
		t.Errorf("first addr = %#x, want CodeBase %#x", prev, CodeBase)
	}
	for pc := 1; pc < p.Len(); pc++ {
		a := p.ByteAddr(pc)
		if a <= prev {
			t.Errorf("addr[%d] = %#x not > addr[%d] = %#x", pc, a, pc-1, prev)
		}
		if int(a-prev) != p.Insts[pc-1].EncodedSize() {
			t.Errorf("gap %d != size of inst %d (%d)", a-prev, pc-1, p.Insts[pc-1].EncodedSize())
		}
		prev = a
	}
}

func TestSetCriticalGrowsFootprintAndRelayouts(t *testing.T) {
	p := buildLoop(t)
	before := p.StaticBytes()
	lastBefore := p.ByteAddr(p.Len() - 1)
	p.SetCritical([]int{2, 3})
	if got := p.StaticBytes(); got != before+2 {
		t.Errorf("StaticBytes after tagging = %d, want %d", got, before+2)
	}
	if got := p.ByteAddr(p.Len() - 1); got != lastBefore+2 {
		t.Errorf("last addr after tagging = %#x, want %#x", got, lastBefore+2)
	}
	if got := p.CriticalPCs(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("CriticalPCs = %v", got)
	}
	p.ClearCritical()
	if got := p.CriticalPCs(); got != nil {
		t.Errorf("CriticalPCs after clear = %v", got)
	}
	if got := p.StaticBytes(); got != before {
		t.Errorf("StaticBytes after clear = %d, want %d", got, before)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := buildLoop(t)
	q := p.Clone()
	q.SetCritical([]int{0})
	if p.Insts[0].Critical {
		t.Errorf("tagging clone mutated original")
	}
	if q.Label("head") != p.Label("head") {
		t.Errorf("clone lost labels")
	}
}

func TestValidateCatchesBadTarget(t *testing.T) {
	p := buildLoop(t)
	p.Insts[3].Target = 99
	if err := p.Validate(); err == nil {
		t.Errorf("Validate accepted out-of-range target")
	}
}

func TestCallRet(t *testing.T) {
	b := NewBuilder("callret")
	b.Call("fn", isa.R(31))
	b.Halt()
	b.Label("fn")
	b.Ret(isa.R(31))
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if p.Insts[0].Target != 2 {
		t.Errorf("call target = %d, want 2", p.Insts[0].Target)
	}
	if p.Insts[0].Dst != isa.R(31) {
		t.Errorf("call link = %v, want r31", p.Insts[0].Dst)
	}
}
