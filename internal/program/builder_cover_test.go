package program

import (
	"testing"

	"crisp/internal/isa"
)

// TestAllMnemonicsAssemble drives every builder mnemonic once and checks
// the emitted opcodes and operands.
func TestAllMnemonicsAssemble(t *testing.T) {
	b := NewBuilder("all")
	r1, r2, r3 := isa.R(1), isa.R(2), isa.R(3)
	b.Label("start")
	b.Nop()
	b.MovI(r1, 42)
	b.Mov(r2, r1)
	b.Add(r3, r1, r2)
	b.Sub(r3, r1, r2)
	b.Mul(r3, r1, r2)
	b.Div(r3, r1, r2)
	b.Rem(r3, r1, r2)
	b.And(r3, r1, r2)
	b.Or(r3, r1, r2)
	b.Xor(r3, r1, r2)
	b.FAdd(r3, r1, r2)
	b.FMul(r3, r1, r2)
	b.FDiv(r3, r1, r2)
	b.AddI(r3, r1, 5)
	b.Shl(r3, r1, 2)
	b.Shr(r3, r1, 2)
	b.Load(r3, r1, 8)
	b.LoadIdx(r3, r1, r2, 8, 16)
	b.Store(r1, 8, r2)
	b.Beq(r1, r2, "start")
	b.Bne(r1, r2, "start")
	b.Blt(r1, r2, "start")
	b.Bge(r1, r2, "start")
	b.Jmp("start")
	b.Call("start", isa.R(31))
	b.Ret(isa.R(31))
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	wantOps := []isa.Op{
		isa.OpNop, isa.OpMovI, isa.OpMov, isa.OpAdd, isa.OpSub, isa.OpMul,
		isa.OpDiv, isa.OpRem, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpFAdd,
		isa.OpFMul, isa.OpFDiv, isa.OpAddI, isa.OpShl, isa.OpShr,
		isa.OpLoad, isa.OpLoad, isa.OpStore, isa.OpBeq, isa.OpBne,
		isa.OpBlt, isa.OpBge, isa.OpJmp, isa.OpCall, isa.OpRet, isa.OpHalt,
	}
	if p.Len() != len(wantOps) {
		t.Fatalf("assembled %d insts, want %d", p.Len(), len(wantOps))
	}
	for i, op := range wantOps {
		if p.Insts[i].Op != op {
			t.Errorf("inst %d: op %v, want %v", i, p.Insts[i].Op, op)
		}
	}
	// All branch targets resolved to "start" (pc 0).
	for i := range p.Insts {
		if p.Insts[i].Op.IsBranch() && p.Insts[i].Op != isa.OpRet && p.Insts[i].Target != 0 {
			t.Errorf("inst %d (%v): target %d, want 0", i, p.Insts[i].Op, p.Insts[i].Target)
		}
	}
	// Every instruction has a printable disassembly.
	for i := range p.Insts {
		if s := p.Insts[i].String(); len(s) == 0 {
			t.Errorf("inst %d: empty disassembly", i)
		}
	}
	// LoadIdx carries the scale; Load does not.
	if p.Insts[18].Scale != 8 || p.Insts[17].Scale != 0 {
		t.Errorf("scales wrong: plain %d indexed %d", p.Insts[17].Scale, p.Insts[18].Scale)
	}
}

func TestBuilderPC(t *testing.T) {
	b := NewBuilder("pc")
	if b.PC() != 0 {
		t.Errorf("initial PC = %d", b.PC())
	}
	b.Nop()
	b.Nop()
	if b.PC() != 2 {
		t.Errorf("PC after 2 insts = %d", b.PC())
	}
}
