// Package program represents static programs of isa micro-ops and provides
// a builder (a small macro-assembler) that the workload kernels use to
// author code with labels, loops, and forward branch references.
package program

import (
	"fmt"

	"crisp/internal/isa"
)

// CodeBase is the synthetic byte address at which program code is laid out
// for instruction-cache modeling. It is separated from the data heap (see
// the emu package) so code and data never collide.
const CodeBase uint64 = 0x40_0000

// Program is an immutable sequence of static micro-ops. The static PC of an
// instruction is its index in Insts. ByteAddr maps static PCs to synthetic
// code byte addresses (cumulative encoded sizes from CodeBase), which the
// frontend uses for instruction-cache accesses and the tagger uses for
// footprint accounting.
type Program struct {
	Name   string
	Insts  []isa.Inst
	labels map[string]int
	addrs  []uint64 // byte address per static PC
}

// Len returns the number of static instructions.
func (p *Program) Len() int { return len(p.Insts) }

// Label returns the static PC of a named label, or -1 if undefined.
func (p *Program) Label(name string) int {
	if pc, ok := p.labels[name]; ok {
		return pc
	}
	return -1
}

// ByteAddr returns the synthetic code byte address of the instruction at
// static PC pc.
func (p *Program) ByteAddr(pc int) uint64 { return p.addrs[pc] }

// StaticBytes returns the total encoded code size in bytes, including any
// critical prefixes currently applied.
func (p *Program) StaticBytes() int {
	n := 0
	for i := range p.Insts {
		n += p.Insts[i].EncodedSize()
	}
	return n
}

// relayout recomputes the PC-to-byte-address map. Must be called after any
// mutation that changes encoded sizes (e.g. tagging critical prefixes).
func (p *Program) relayout() {
	p.addrs = make([]uint64, len(p.Insts))
	addr := CodeBase
	for i := range p.Insts {
		p.addrs[i] = addr
		addr += uint64(p.Insts[i].EncodedSize())
	}
}

// Clone returns a deep copy of the program. Taggers mutate clones so that
// baseline and CRISP runs of the same workload never share instruction
// state.
func (p *Program) Clone() *Program {
	q := &Program{Name: p.Name, labels: p.labels}
	q.Insts = make([]isa.Inst, len(p.Insts))
	copy(q.Insts, p.Insts)
	q.relayout()
	return q
}

// ClearCritical removes all critical prefixes.
func (p *Program) ClearCritical() {
	for i := range p.Insts {
		p.Insts[i].Critical = false
	}
	p.relayout()
}

// SetCritical applies the critical prefix to the given static PCs and
// relays out code addresses (the prefix adds one byte per instruction,
// Section 5.7).
func (p *Program) SetCritical(pcs []int) {
	for _, pc := range pcs {
		p.Insts[pc].Critical = true
	}
	p.relayout()
}

// CriticalPCs returns the static PCs currently carrying the prefix.
func (p *Program) CriticalPCs() []int {
	var out []int
	for i := range p.Insts {
		if i < len(p.Insts) && p.Insts[i].Critical {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks structural invariants: branch targets in range, register
// operands valid, and a final Halt so the emulator terminates.
func (p *Program) Validate() error {
	if len(p.Insts) == 0 {
		return fmt.Errorf("program %q: empty", p.Name)
	}
	for pc := range p.Insts {
		in := &p.Insts[pc]
		switch in.Op {
		case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpJmp, isa.OpCall:
			if in.Target < 0 || in.Target >= len(p.Insts) {
				return fmt.Errorf("program %q: pc %d (%v): target %d out of range", p.Name, pc, in, in.Target)
			}
		}
		if in.HasDst() && !in.Dst.Valid() {
			return fmt.Errorf("program %q: pc %d: invalid dst", p.Name, pc)
		}
	}
	return nil
}

// Builder assembles a Program. Branch targets may reference labels defined
// later; Build resolves them.
type Builder struct {
	name   string
	insts  []isa.Inst
	labels map[string]int
	fixups []fixup
}

type fixup struct {
	pc    int
	label string
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// PC returns the static PC the next emitted instruction will have.
func (b *Builder) PC() int { return len(b.insts) }

// Label defines a label at the current PC. Defining the same label twice
// panics: workload kernels are static code and duplicates are authoring
// bugs.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("program: duplicate label %q", name))
	}
	b.labels[name] = len(b.insts)
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) { b.insts = append(b.insts, in) }

func (b *Builder) branch(op isa.Op, s1, s2 isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.insts), label: label})
	b.insts = append(b.insts, isa.Inst{Op: op, Dst: isa.NoReg, Src1: s1, Src2: s2, Target: -1})
}

// The mnemonic helpers below mirror the isa opcodes.

func (b *Builder) Nop() {
	b.Emit(isa.Inst{Op: isa.OpNop, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg})
}

// MovI loads an immediate: dst = imm.
func (b *Builder) MovI(dst isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpMovI, Dst: dst, Src1: isa.NoReg, Src2: isa.NoReg, Imm: imm})
}

// Mov copies a register: dst = src.
func (b *Builder) Mov(dst, src isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpMov, Dst: dst, Src1: src, Src2: isa.NoReg})
}

// Add emits dst = s1 + s2.
func (b *Builder) Add(dst, s1, s2 isa.Reg) { b.alu(isa.OpAdd, dst, s1, s2) }

// Sub emits dst = s1 - s2.
func (b *Builder) Sub(dst, s1, s2 isa.Reg) { b.alu(isa.OpSub, dst, s1, s2) }

// Mul emits dst = s1 * s2.
func (b *Builder) Mul(dst, s1, s2 isa.Reg) { b.alu(isa.OpMul, dst, s1, s2) }

// Div emits dst = s1 / s2.
func (b *Builder) Div(dst, s1, s2 isa.Reg) { b.alu(isa.OpDiv, dst, s1, s2) }

// Rem emits dst = s1 % s2.
func (b *Builder) Rem(dst, s1, s2 isa.Reg) { b.alu(isa.OpRem, dst, s1, s2) }

// And emits dst = s1 & s2.
func (b *Builder) And(dst, s1, s2 isa.Reg) { b.alu(isa.OpAnd, dst, s1, s2) }

// Or emits dst = s1 | s2.
func (b *Builder) Or(dst, s1, s2 isa.Reg) { b.alu(isa.OpOr, dst, s1, s2) }

// Xor emits dst = s1 ^ s2.
func (b *Builder) Xor(dst, s1, s2 isa.Reg) { b.alu(isa.OpXor, dst, s1, s2) }

// FAdd emits dst = s1 + s2 with FP-add latency.
func (b *Builder) FAdd(dst, s1, s2 isa.Reg) { b.alu(isa.OpFAdd, dst, s1, s2) }

// FMul emits dst = s1 * s2 with FP-mul latency.
func (b *Builder) FMul(dst, s1, s2 isa.Reg) { b.alu(isa.OpFMul, dst, s1, s2) }

// FDiv emits dst = s1 / s2 with FP-div latency.
func (b *Builder) FDiv(dst, s1, s2 isa.Reg) { b.alu(isa.OpFDiv, dst, s1, s2) }

func (b *Builder) alu(op isa.Op, dst, s1, s2 isa.Reg) {
	b.Emit(isa.Inst{Op: op, Dst: dst, Src1: s1, Src2: s2})
}

// AddI emits dst = src + imm.
func (b *Builder) AddI(dst, src isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpAddI, Dst: dst, Src1: src, Src2: isa.NoReg, Imm: imm})
}

// Shl emits dst = src << imm.
func (b *Builder) Shl(dst, src isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpShl, Dst: dst, Src1: src, Src2: isa.NoReg, Imm: imm})
}

// Shr emits dst = src >> imm (logical).
func (b *Builder) Shr(dst, src isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpShr, Dst: dst, Src1: src, Src2: isa.NoReg, Imm: imm})
}

// Load emits dst = MEM8[base + disp].
func (b *Builder) Load(dst, base isa.Reg, disp int64) {
	b.Emit(isa.Inst{Op: isa.OpLoad, Dst: dst, Src1: base, Src2: isa.NoReg, Imm: disp})
}

// LoadIdx emits dst = MEM8[base + idx*scale + disp].
func (b *Builder) LoadIdx(dst, base, idx isa.Reg, scale uint8, disp int64) {
	b.Emit(isa.Inst{Op: isa.OpLoad, Dst: dst, Src1: base, Src2: idx, Scale: scale, Imm: disp})
}

// Store emits MEM8[base + disp] = val.
func (b *Builder) Store(base isa.Reg, disp int64, val isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpStore, Dst: isa.NoReg, Src1: base, Src2: val, Imm: disp})
}

// Beq branches to label when s1 == s2.
func (b *Builder) Beq(s1, s2 isa.Reg, label string) { b.branch(isa.OpBeq, s1, s2, label) }

// Bne branches to label when s1 != s2.
func (b *Builder) Bne(s1, s2 isa.Reg, label string) { b.branch(isa.OpBne, s1, s2, label) }

// Blt branches to label when s1 < s2 (signed).
func (b *Builder) Blt(s1, s2 isa.Reg, label string) { b.branch(isa.OpBlt, s1, s2, label) }

// Bge branches to label when s1 >= s2 (signed).
func (b *Builder) Bge(s1, s2 isa.Reg, label string) { b.branch(isa.OpBge, s1, s2, label) }

// Jmp jumps unconditionally to label.
func (b *Builder) Jmp(label string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.insts), label: label})
	b.insts = append(b.insts, isa.Inst{Op: isa.OpJmp, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg, Target: -1})
}

// Call jumps to label, writing the return PC into link.
func (b *Builder) Call(label string, link isa.Reg) {
	b.fixups = append(b.fixups, fixup{pc: len(b.insts), label: label})
	b.insts = append(b.insts, isa.Inst{Op: isa.OpCall, Dst: link, Src1: isa.NoReg, Src2: isa.NoReg, Target: -1})
}

// Ret jumps indirectly to the PC held in link.
func (b *Builder) Ret(link isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpRet, Dst: isa.NoReg, Src1: link, Src2: isa.NoReg})
}

// Halt terminates the program.
func (b *Builder) Halt() {
	b.Emit(isa.Inst{Op: isa.OpHalt, Dst: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg})
}

// Build resolves label fixups and returns the validated program.
func (b *Builder) Build() (*Program, error) {
	for _, f := range b.fixups {
		pc, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("program %q: undefined label %q at pc %d", b.name, f.label, f.pc)
		}
		b.insts[f.pc].Target = pc
	}
	p := &Program{Name: b.name, Insts: b.insts, labels: b.labels}
	p.relayout()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; workload kernels use it because
// an unassemblable kernel is a programming bug.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
