package core

// The scheduler keeps the BID (ready) and PRIO (ready-and-critical)
// vectors incrementally instead of rebuilding them by an O(RSSize) scan
// with per-slot dependence checks every cycle:
//
//   - At dispatch each RS slot counts its unready producers. Producers
//     that have already executed contribute a timed wakeup at their
//     completion cycle; producers still in flight get the slot chained
//     onto their waiter list.
//   - When a producer executes, its waiter chain is converted into timed
//     wakeups at the producer's completion cycle.
//   - issue() drains due wakeups first; a slot whose last outstanding
//     dependence resolves sets its BID bit (and PRIO bit if critical).
//   - Bits are cleared when the instruction actually issues. This core
//     never squashes dispatched work (mispredicted branches stall fetch
//     instead of flushing the RS), so readiness is monotone and no other
//     clearing path exists.
//
// The net effect: zero allocations and O(due events) bookkeeping per
// cycle, with selection itself word-parallel over the persistent vectors.

// wakeup is a timed scheduler event: slot's outstanding-dependence count
// drops by one at cycle `at`.
type wakeup struct {
	at   uint64
	slot int32
}

// wakeupHeap is a binary min-heap of wakeups ordered by cycle. It is a
// plain slice (no container/heap interface) so pushes and pops stay
// allocation-free once capacity is reached.
type wakeupHeap []wakeup

func (h *wakeupHeap) push(at uint64, slot int32) {
	*h = append(*h, wakeup{at: at, slot: slot})
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].at <= s[i].at {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

// pop removes and returns the earliest wakeup. The caller must ensure the
// heap is non-empty.
func (h *wakeupHeap) pop() wakeup {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && s[l].at < s[min].at {
			min = l
		}
		if r < len(s) && s[r].at < s[min].at {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}
