package core_test

import (
	"reflect"
	"testing"

	"crisp/internal/core"
	"crisp/internal/sim"
)

// TestMultiSkipEquivalence extends the skip-equivalence invariant to the
// lockstep multi-core driver: a co-scheduled pair stepped with merged
// min-across-cores idle skipping must produce, per core, results
// identical to the same pair stepped every shared cycle (DebugNoSkip on
// every core disables the merge). The pairs mix a latency-bound chase
// with a bandwidth hog — asymmetric skip targets, so the min-merge and
// its partial-application clipping are genuinely exercised — and the
// CRISP case tags all loads critical to cover the PRIO issue path. Host
// measurements (wall time, allocs, iteration counts, skip tallies)
// legitimately differ between the paths; everything architectural must
// match exactly.
func TestMultiSkipEquivalence(t *testing.T) {
	pairs := [][2]string{
		{"tailchase", "streambatch"},
		{"pointerchase", "mcf"},
	}
	for _, pair := range pairs {
		for _, sched := range []core.SchedulerKind{core.SchedOldestFirst, core.SchedCRISP} {
			pair, sched := pair, sched
			t.Run(pair[0]+"+"+pair[1]+"/"+sched.String(), func(t *testing.T) {
				run := func(noskip bool) []*core.Result {
					imgs := []*sim.Image{
						goldenImage(t, pair[0], sched),
						goldenImage(t, pair[1], core.SchedOldestFirst),
					}
					cfgs := make([]sim.Config, 2)
					cfgs[0] = sim.DefaultConfig().WithSched(sched)
					cfgs[1] = sim.DefaultConfig()
					for i := range cfgs {
						cfgs[i].Core.MaxInsts = 40_000
						cfgs[i].Core.UPCWindow = 500
						cfgs[i].Core.DebugNoSkip = noskip
					}
					m, err := sim.RunMulti(imgs, cfgs)
					if err != nil {
						t.Fatalf("RunMulti: %v", err)
					}
					for _, r := range m.Cores {
						r.HostNS, r.HostAllocs, r.HostIters, r.SkippedCycles = 0, 0, 0, 0
					}
					return m.Cores
				}
				fast, slow := run(false), run(true)
				for i := range fast {
					if !reflect.DeepEqual(fast[i], slow[i]) {
						t.Errorf("core %d: merged-skip path diverged from per-cycle path:\n"+
							"  cycles      %d vs %d\n"+
							"  insts       %d vs %d\n"+
							"  breakdown   %v vs %v\n"+
							"  headstalls  %d vs %d",
							i, fast[i].Cycles, slow[i].Cycles,
							fast[i].Insts, slow[i].Insts,
							fast[i].Breakdown, slow[i].Breakdown,
							fast[i].ROBHeadStalls, slow[i].ROBHeadStalls)
					}
				}
			})
		}
	}
}

// TestMultiSkipCoverage pins that the merged skip still engages under
// co-scheduling: two DRAM-bound cores running together must cover a
// meaningful fraction of their cycles with merged jumps, and per-core
// iteration accounting must close (HostIters + SkippedCycles == Cycles).
func TestMultiSkipCoverage(t *testing.T) {
	imgs := []*sim.Image{
		goldenImage(t, "mcf", core.SchedOldestFirst),
		goldenImage(t, "pointerchase", core.SchedOldestFirst),
	}
	cfgs := []sim.Config{sim.DefaultConfig(), sim.DefaultConfig()}
	for i := range cfgs {
		cfgs[i].Core.MaxInsts = 40_000
	}
	m, err := sim.RunMulti(imgs, cfgs)
	if err != nil {
		t.Fatalf("RunMulti: %v", err)
	}
	for i, r := range m.Cores {
		if r.HostIters+r.SkippedCycles != r.Cycles {
			t.Errorf("core %d: HostIters %d + SkippedCycles %d != Cycles %d",
				i, r.HostIters, r.SkippedCycles, r.Cycles)
		}
		if r.SkippedFrac() < 0.2 {
			t.Errorf("core %d: merged skip covered only %.3f of cycles, want >= 0.2", i, r.SkippedFrac())
		}
	}
}
