package core

import (
	"testing"

	"crisp/internal/cache"
	"crisp/internal/emu"
	"crisp/internal/ibda"
	"crisp/internal/isa"
	"crisp/internal/program"
)

// A branch redirect must never shorten a fetch block already in force
// (e.g. an icache miss still filling): the later deadline wins.
func TestRedirectDoesNotShortenFetchBlock(t *testing.T) {
	b := program.NewBuilder("redirect")
	b.MovI(isa.R(1), 0)
	b.MovI(isa.R(2), 2)
	b.Label("loop")
	b.AddI(isa.R(1), isa.R(1), 1)
	b.Blt(isa.R(1), isa.R(2), "loop")
	b.Halt()
	p := b.MustBuild()

	cfg := DefaultConfig()
	c := New(cfg, p, emu.New(p, nil), cache.NewHierarchy(cache.DefaultHierConfig()), nil)

	// An icache miss has blocked fetch until cycle 500; a mispredicted
	// branch now resolves at cycle ~0, whose redirect deadline
	// (doneAt + RedirectPenalty) is far earlier.
	const blocked = 500
	c.fetchBlockedUntil = blocked
	brPC := 3 // the Blt
	if p.Insts[brPC].Op != isa.OpBlt {
		t.Fatalf("pc %d is %v, want Blt", brPC, p.Insts[brPC].Op)
	}
	e := &entry{
		seq:          0,
		d:            emu.DynInst{PC: brPC, Inst: &p.Insts[brPC]},
		mispredicted: true,
		slot:         0,
		dep1:         -1, dep2: -1, storeDep: -1,
	}
	c.slots[0] = e
	c.execute(e, e.d.Inst.Op.Class(), 0)

	redirect := e.doneAt + uint64(cfg.RedirectPenalty)
	if redirect >= blocked {
		t.Fatalf("test setup: redirect deadline %d not earlier than block %d", redirect, blocked)
	}
	if c.fetchBlockedUntil != blocked {
		t.Errorf("fetchBlockedUntil = %d after early redirect, want %d (in-force block shortened)",
			c.fetchBlockedUntil, blocked)
	}
	if c.redirectUntil != redirect {
		t.Errorf("redirectUntil = %d, want %d", c.redirectUntil, redirect)
	}
}

// A store that only partially overlaps a younger load cannot supply all of
// the load's bytes, so the load must go to the cache, not forward.
func TestPartialOverlapStoreDoesNotForward(t *testing.T) {
	b := program.NewBuilder("partial")
	b.MovI(isa.R(1), 0x10000)
	b.MovI(isa.R(2), 99)
	b.Label("loop")
	b.Store(isa.R(1), 0, isa.R(2)) // 8 bytes at base
	b.Load(isa.R(3), isa.R(1), 4)  // 8 bytes at base+4: overlaps, not covered
	b.AddI(isa.R(4), isa.R(4), 1)
	b.MovI(isa.R(5), 200)
	b.Blt(isa.R(4), isa.R(5), "loop")
	b.Halt()
	res := runProg(t, DefaultConfig(), b.MustBuild(), nil, nil)
	loadPC := 3
	lp := res.Loads[loadPC]
	if lp == nil {
		t.Fatalf("no load profile for pc %d", loadPC)
	}
	if lp.Forwards != 0 {
		t.Errorf("forwards = %d of %d partially-overlapped loads, want 0", lp.Forwards, lp.Count)
	}
}

// The commit-time store-buffer drain must not carry the store's PC: store
// PCs reaching the LLC miss observer would pollute per-PC structures that
// must only ever hold loads, such as IBDA's delinquent load table.
func TestStoreDrainKeepsDelinquentTableEmpty(t *testing.T) {
	// A store-miss-heavy kernel with no loads at all: every store drains to
	// a fresh line, so every drain is an LLC miss.
	const iters = 2048
	b := program.NewBuilder("storestride")
	b.MovI(isa.R(1), 0x100000)
	b.MovI(isa.R(2), 0)
	b.MovI(isa.R(3), iters)
	b.Label("loop")
	b.Store(isa.R(1), 0, isa.R(2))
	b.AddI(isa.R(1), isa.R(1), 4096)
	b.AddI(isa.R(2), isa.R(2), 1)
	b.Blt(isa.R(2), isa.R(3), "loop")
	b.Halt()
	p := b.MustBuild()

	ib := ibda.New(ibda.DefaultConfig())
	hier := cache.NewHierarchy(cache.DefaultHierConfig())
	hier.LLC.SetMissObserver(func(pc, lineAddr uint64) {
		ib.OnLLCMiss(int(pc))
	})
	c := New(DefaultConfig(), p, emu.New(p, nil), hier, nil)
	c.Run()

	if misses := hier.LLC.Stats().Misses; misses < iters/2 {
		t.Fatalf("LLC misses = %d, kernel did not exercise the drain path", misses)
	}
	if n := ib.DLTSize(); n != 0 {
		t.Errorf("delinquent load table has %d entries after a load-free kernel, want 0 (store PCs leaked)", n)
	}
}
