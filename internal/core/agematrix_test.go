package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAgeMatrixSelectsInsertionOrder(t *testing.T) {
	m := NewAgeMatrix(8)
	// Insert into scattered slots in a known age order.
	order := []int{5, 1, 7, 0, 3}
	for _, s := range order {
		m.Insert(s)
	}
	cand := NewBitset(8)
	for _, s := range order {
		cand.Set(s)
	}
	for _, want := range order {
		got := m.OldestAmong(cand)
		if got != want {
			t.Fatalf("OldestAmong = %d, want %d", got, want)
		}
		cand.Clear(got)
		m.Remove(got)
	}
	if got := m.OldestAmong(cand); got != -1 {
		t.Errorf("empty candidates returned %d", got)
	}
}

func TestAgeMatrixSubsetSelection(t *testing.T) {
	m := NewAgeMatrix(16)
	for s := 0; s < 8; s++ {
		m.Insert(s) // age order = slot order
	}
	cand := NewBitset(16)
	cand.Set(6)
	cand.Set(3)
	cand.Set(7)
	if got := m.OldestAmong(cand); got != 3 {
		t.Errorf("oldest among {6,3,7} = %d, want 3", got)
	}
}

func TestAgeMatrixSlotReuse(t *testing.T) {
	m := NewAgeMatrix(4)
	m.Insert(0)
	m.Insert(1)
	m.Remove(0)
	m.Insert(0) // slot 0 now holds the YOUNGEST instruction
	cand := NewBitset(4)
	cand.Set(0)
	cand.Set(1)
	if got := m.OldestAmong(cand); got != 1 {
		t.Errorf("after reuse, oldest = %d, want 1", got)
	}
}

func TestAgeMatrixInsertOccupiedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("double insert did not panic")
		}
	}()
	m := NewAgeMatrix(4)
	m.Insert(2)
	m.Insert(2)
}

func TestFreeSlotExhaustion(t *testing.T) {
	m := NewAgeMatrix(4)
	for i := 0; i < 4; i++ {
		s := m.FreeSlot(uint64(i * 12345))
		if s < 0 {
			t.Fatalf("FreeSlot = -1 with %d occupied", i)
		}
		m.Insert(s)
	}
	if s := m.FreeSlot(99); s != -1 {
		t.Errorf("FreeSlot on full IQ = %d, want -1", s)
	}
}

// Property: for random insert/remove sequences, OldestAmong over the full
// occupied set always returns the earliest-inserted live slot.
func TestAgeMatrixProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const n = 24
		m := NewAgeMatrix(n)
		var liveOrder []int // slots in insertion (age) order
		for step := 0; step < 200; step++ {
			if len(liveOrder) > 0 && (len(liveOrder) == n || r.Intn(2) == 0) {
				// Remove a random live slot.
				k := r.Intn(len(liveOrder))
				m.Remove(liveOrder[k])
				liveOrder = append(liveOrder[:k], liveOrder[k+1:]...)
			} else {
				s := m.FreeSlot(r.Uint64())
				if s < 0 {
					continue
				}
				m.Insert(s)
				liveOrder = append(liveOrder, s)
			}
			cand := NewBitset(n)
			for _, s := range liveOrder {
				cand.Set(s)
			}
			want := -1
			if len(liveOrder) > 0 {
				want = liveOrder[0]
			}
			if got := m.OldestAmong(cand); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: priority selection (oldest among an arbitrary subset) always
// returns the subset member that was inserted earliest.
func TestAgeMatrixPrioritySubsetProperty(t *testing.T) {
	f := func(seed int64, pick uint32) bool {
		r := rand.New(rand.NewSource(seed))
		const n = 32
		m := NewAgeMatrix(n)
		var order []int
		for len(order) < n/2 {
			s := m.FreeSlot(r.Uint64())
			m.Insert(s)
			order = append(order, s)
		}
		cand := NewBitset(n)
		want := -1
		for i, s := range order {
			if pick&(1<<uint(i)) != 0 {
				cand.Set(s)
				if want == -1 {
					want = s
				}
			}
		}
		return m.OldestAmong(cand) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Any() {
		t.Errorf("fresh bitset Any = true")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Count() != 3 || !b.Get(64) || !b.Any() {
		t.Errorf("bitset state wrong: count=%d", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 2 {
		t.Errorf("clear failed")
	}
	b.Reset()
	if b.Any() {
		t.Errorf("reset failed")
	}
}
