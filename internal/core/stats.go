package core

import (
	"crisp/internal/cache"
	"crisp/internal/metrics"
)

// LoadProf accumulates per-static-PC load behaviour: the measurements the
// paper's software pipeline obtains from PMU counters and PEBS
// (Section 3.2).
type LoadProf struct {
	Count     uint64 // dynamic executions
	L1Miss    uint64 // served beyond L1
	LLCMiss   uint64 // served by DRAM
	TotalLat  uint64 // sum of load-to-use latencies in cycles
	MLPSum    uint64 // sum of outstanding DRAM misses sampled at each LLC miss
	HeadStall uint64 // cycles this PC spent stalled at the ROB head
	Forwards  uint64 // store-to-load forwards

	// LatHist is the power-of-two histogram of this PC's load-to-use
	// latencies, the per-load latency distribution PEBS-style sampling
	// exposes on real hardware.
	LatHist metrics.Hist
}

// AMAT returns the average memory access time of the load in cycles.
func (p *LoadProf) AMAT() float64 {
	if p.Count == 0 {
		return 0
	}
	return float64(p.TotalLat) / float64(p.Count)
}

// LLCMissRatio returns the fraction of executions served by DRAM.
func (p *LoadProf) LLCMissRatio() float64 {
	if p.Count == 0 {
		return 0
	}
	return float64(p.LLCMiss) / float64(p.Count)
}

// AvgMLP returns the mean number of outstanding DRAM misses observed when
// this load missed the LLC.
func (p *LoadProf) AvgMLP() float64 {
	if p.LLCMiss == 0 {
		return 0
	}
	return float64(p.MLPSum) / float64(p.LLCMiss)
}

// BranchProf accumulates per-static-PC branch behaviour.
type BranchProf struct {
	Count   uint64
	Mispred uint64
	Taken   uint64
}

// MispredictRate returns mispredictions / executions.
func (p *BranchProf) MispredictRate() float64 {
	if p.Count == 0 {
		return 0
	}
	return float64(p.Mispred) / float64(p.Count)
}

// Result is the outcome of one timing simulation.
type Result struct {
	Cycles uint64
	Insts  uint64 // committed µops

	// Frontend.
	BranchExecs     uint64
	BranchMispreds  uint64
	BTBMisses       uint64
	FetchStallCycle uint64 // cycles fetch was blocked on a mispredict

	// Backend.
	ROBHeadStalls  uint64 // cycles the ROB head could not retire
	LoadExecs      uint64
	StoreExecs     uint64
	CriticalExecs  uint64 // committed µops carrying the critical tag
	IssuedCritical uint64 // issue slots granted via the PRIO vector
	QueueJumpSum   uint64 // older ready entries bypassed by PRIO picks

	// Breakdown is the exact cycle accounting: every commit slot of
	// every cycle is either a committed µop or attributed to one stall
	// bucket, so Breakdown.Total() == Cycles × CommitWidth and
	// Breakdown.Committed == Insts.
	Breakdown metrics.Breakdown
	// Hists are the event and occupancy histograms (load/DRAM latency,
	// MLP at miss, sampled ROB/RS/LQ/SQ/MSHR occupancy).
	Hists metrics.Hists

	// Memory hierarchy snapshots.
	L1I, L1D, LLC cache.Stats
	DRAMReads     uint64
	DRAMAvgLat    float64

	// Per-PC profiles (the software pipeline's PMU stand-in).
	Loads    map[int]*LoadProf
	Branches map[int]*BranchProf

	// UPC timeline: retired µops per UPCWindow-cycle window (Figure 1).
	UPCWindows []float64

	// SkippedCycles counts simulated cycles the run never stepped: whenever
	// no stage can make forward progress the core computes the earliest
	// future event (ROB-head completion, pending wakeup, redirect end,
	// frontend ready time) and jumps there, bulk-charging the interval to
	// the same stall bucket the per-cycle path would have used. The count
	// is deterministic (same workload + config ⇒ same skips); it measures
	// skip efficiency, not timing — Cycles already includes skipped ones.
	SkippedCycles uint64

	// Host throughput: how fast the simulator itself ran, as opposed to
	// the simulated machine. HostAllocs is the process-wide heap
	// allocation delta across Run, so concurrent runs inflate each
	// other's counts; per-run numbers are exact only single-threaded.
	// HostIters counts cycle-loop iterations actually executed; with idle
	// skipping Cycles−SkippedCycles ≈ HostIters, and Cycles/HostIters is
	// the per-iteration leverage skipping bought.
	HostNS     int64  // wall-clock nanoseconds spent inside Run
	HostAllocs uint64 // heap allocations observed during Run
	HostIters  uint64 // cycle-loop iterations executed (skips collapse many cycles into one)

	// Co-phase counters, populated only by RunMulti with ≥2 cores: this
	// core's retired instructions and the shared-clock cycle at the moment
	// the FIRST core in the lockstep group finished its budget. Up to that
	// cycle every core was live, so CoInsts/CoCycles is a drain-free
	// co-located IPC — the quantity co-scheduled checkpoint calibration
	// needs, uncontaminated by the solo tail a slower core runs after its
	// neighbours drop out.
	CoInsts  uint64 `json:",omitempty"`
	CoCycles uint64 `json:",omitempty"`

	// Sampled simulation: set only on results aggregated from detailed
	// windows over checkpointed state. FFInsts/HostFFNS are the size and
	// host cost of the functional fast-forward that produced the
	// checkpoint set; the capture is shared by every config of the
	// workload, so per-run speedup numbers that include HostFFNS are
	// conservative (the real saving is larger when ≥2 configs share it).
	SampledWindows int    `json:",omitempty"` // detailed windows aggregated (0 = full detail)
	FFInsts        uint64 `json:",omitempty"` // instructions fast-forwarded functionally
	HostFFNS       int64  `json:",omitempty"` // host ns spent fast-forwarding + checkpointing
}

// Merge folds another window's result into r: counters, breakdowns,
// histograms, cache/DRAM stats and per-PC profiles all accumulate.
// Sampling aggregation uses it across equal-length windows, so plain
// summation is the weighted aggregate. The sampling and host fast-forward
// fields are left untouched (they describe the whole set, not a window).
func (r *Result) Merge(o *Result) {
	r.Cycles += o.Cycles
	r.Insts += o.Insts
	r.BranchExecs += o.BranchExecs
	r.BranchMispreds += o.BranchMispreds
	r.BTBMisses += o.BTBMisses
	r.FetchStallCycle += o.FetchStallCycle
	r.ROBHeadStalls += o.ROBHeadStalls
	r.LoadExecs += o.LoadExecs
	r.StoreExecs += o.StoreExecs
	r.CriticalExecs += o.CriticalExecs
	r.IssuedCritical += o.IssuedCritical
	r.QueueJumpSum += o.QueueJumpSum
	r.Breakdown.Add(&o.Breakdown)
	r.Hists.Add(&o.Hists)
	r.L1I.Add(&o.L1I)
	r.L1D.Add(&o.L1D)
	r.LLC.Add(&o.LLC)
	if total := r.DRAMReads + o.DRAMReads; total > 0 {
		r.DRAMAvgLat = (r.DRAMAvgLat*float64(r.DRAMReads) + o.DRAMAvgLat*float64(o.DRAMReads)) / float64(total)
	}
	r.DRAMReads += o.DRAMReads
	if r.Loads == nil {
		r.Loads = make(map[int]*LoadProf)
	}
	for pc, p := range o.Loads {
		if mine, ok := r.Loads[pc]; ok {
			mine.Count += p.Count
			mine.L1Miss += p.L1Miss
			mine.LLCMiss += p.LLCMiss
			mine.TotalLat += p.TotalLat
			mine.MLPSum += p.MLPSum
			mine.HeadStall += p.HeadStall
			mine.Forwards += p.Forwards
			mine.LatHist.Add(&p.LatHist)
		} else {
			cp := *p
			r.Loads[pc] = &cp
		}
	}
	if r.Branches == nil {
		r.Branches = make(map[int]*BranchProf)
	}
	for pc, p := range o.Branches {
		if mine, ok := r.Branches[pc]; ok {
			mine.Count += p.Count
			mine.Mispred += p.Mispred
			mine.Taken += p.Taken
		} else {
			cp := *p
			r.Branches[pc] = &cp
		}
	}
	r.UPCWindows = append(r.UPCWindows, o.UPCWindows...)
	r.CoInsts += o.CoInsts
	r.CoCycles += o.CoCycles
	r.SkippedCycles += o.SkippedCycles
	r.HostNS += o.HostNS
	r.HostAllocs += o.HostAllocs
	r.HostIters += o.HostIters
}

// SkippedFrac returns the fraction of simulated cycles covered by
// next-event jumps rather than stepped individually.
func (r *Result) SkippedFrac() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.SkippedCycles) / float64(r.Cycles)
}

// HostMIPS returns simulated million-instructions per host second.
func (r *Result) HostMIPS() float64 {
	if r.HostNS == 0 {
		return 0
	}
	return float64(r.Insts) * 1e3 / float64(r.HostNS)
}

// HostNSPerInst returns host nanoseconds per simulated instruction.
func (r *Result) HostNSPerInst() float64 {
	if r.Insts == 0 {
		return 0
	}
	return float64(r.HostNS) / float64(r.Insts)
}

// HostAllocsPerInst returns heap allocations per simulated instruction.
func (r *Result) HostAllocsPerInst() float64 {
	if r.Insts == 0 {
		return 0
	}
	return float64(r.HostAllocs) / float64(r.Insts)
}

// IPC returns committed instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// BranchMPKI returns branch mispredictions per kilo-instruction.
func (r *Result) BranchMPKI() float64 {
	if r.Insts == 0 {
		return 0
	}
	return float64(r.BranchMispreds) / float64(r.Insts) * 1000
}

// LLCMPKI returns LLC demand misses per kilo-instruction.
func (r *Result) LLCMPKI() float64 {
	if r.Insts == 0 {
		return 0
	}
	return float64(r.LLC.Misses+r.LLC.MergedMisses) / float64(r.Insts) * 1000
}

// L1IMPKI returns instruction-cache misses per kilo-instruction
// (Section 5.7's prefix-overhead metric).
func (r *Result) L1IMPKI() float64 {
	if r.Insts == 0 {
		return 0
	}
	return float64(r.L1I.Misses+r.L1I.MergedMisses) / float64(r.Insts) * 1000
}
