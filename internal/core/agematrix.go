// Package core implements the cycle-level out-of-order core model: a
// decoupled frontend with TAGE/BTB/RAS prediction and FDIP-style
// instruction prefetch, register renaming, a reorder buffer, a unified
// reservation station scheduled by an age-matrix picker (with the CRISP
// PRIO extension of Section 4.2), load/store queues with store-to-load
// forwarding, per-class issue ports, and in-order commit.
package core

import "math/bits"

// Bitset is a fixed-capacity bit vector used for the scheduler's BID
// (ready) and PRIO (ready-and-critical) vectors.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a bitset with capacity n bits.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Set sets bit i.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// Clear clears bit i.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << uint(i&63) }

// Get reports bit i.
func (b *Bitset) Get(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// Reset clears all bits.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Any reports whether any bit is set.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// AgeMatrix is the RAND-scheduler age matrix of Section 4.2: instructions
// are inserted into arbitrary IQ slots, and each slot keeps an N-bit age
// vector whose bit j is set iff slot j holds an older instruction. The
// oldest instruction among a candidate set (the BID or PRIO vector) is the
// one whose age vector ANDed with the candidate vector is all zeros —
// exactly the NOR-reduction select of Figure 6.
type AgeMatrix struct {
	n        int
	words    int
	rows     [][]uint64 // rows[slot] = age vector of the instruction in slot
	occupied *Bitset
}

// NewAgeMatrix returns an age matrix for an IQ with n slots.
func NewAgeMatrix(n int) *AgeMatrix {
	m := &AgeMatrix{n: n, words: (n + 63) / 64, occupied: NewBitset(n)}
	m.rows = make([][]uint64, n)
	for i := range m.rows {
		m.rows[i] = make([]uint64, m.words)
	}
	return m
}

// Size returns the number of IQ slots.
func (m *AgeMatrix) Size() int { return m.n }

// Occupied reports whether slot i currently holds an instruction.
func (m *AgeMatrix) Occupied(i int) bool { return m.occupied.Get(i) }

// Insert enqueues a new (youngest) instruction into the given free slot:
// its age vector is initialized to all ones except its own bit, and its
// bit is cleared in every existing instruction's age vector (hardware
// clears it in all rows; stale rows of free slots are harmless because
// they are never candidates).
func (m *AgeMatrix) Insert(slot int) {
	if m.occupied.Get(slot) {
		panic("core: AgeMatrix.Insert into occupied slot")
	}
	row := m.rows[slot]
	for i := range row {
		row[i] = ^uint64(0)
	}
	// Mask off bits beyond n and the slot's own bit.
	if extra := m.n & 63; extra != 0 {
		row[m.words-1] = (1 << uint(extra)) - 1
	}
	row[slot>>6] &^= 1 << uint(slot&63)
	// Clear this slot's bit in all other rows: nothing already enqueued is
	// younger than the new instruction.
	w, bit := slot>>6, uint64(1)<<uint(slot&63)
	for i := 0; i < m.n; i++ {
		if i != slot {
			m.rows[i][w] &^= bit
		}
	}
	m.occupied.Set(slot)
}

// Remove frees a slot at issue. As in hardware, other rows keep their
// stale bits for this slot; they are masked by the candidate vector.
func (m *AgeMatrix) Remove(slot int) { m.occupied.Clear(slot) }

// FreeSlot returns a free slot selected pseudo-randomly (the RAND
// insertion policy), or -1 when the IQ is full. The caller supplies the
// random word; determinism is preserved by seeding upstream.
func (m *AgeMatrix) FreeSlot(rnd uint64) int {
	free := m.n - m.occupied.Count()
	if free == 0 {
		return -1
	}
	k := int(rnd % uint64(free))
	for i := 0; i < m.n; i++ {
		if !m.occupied.Get(i) {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return -1
}

// OldestAmong returns the slot of the oldest instruction among the
// candidates (a BID or PRIO vector), or -1 if the candidate set is empty.
// A candidate is oldest iff its age vector has no bit in common with the
// candidate set.
func (m *AgeMatrix) OldestAmong(cand *Bitset) int {
	for wi, w := range cand.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			slot := wi*64 + b
			w &^= 1 << uint(b)
			row := m.rows[slot]
			zero := true
			for j := range row {
				if row[j]&cand.words[j] != 0 {
					zero = false
					break
				}
			}
			if zero {
				return slot
			}
		}
	}
	return -1
}
