// Package core implements the cycle-level out-of-order core model: a
// decoupled frontend with TAGE/BTB/RAS prediction and FDIP-style
// instruction prefetch, register renaming, a reorder buffer, a unified
// reservation station scheduled by an age-matrix picker (with the CRISP
// PRIO extension of Section 4.2), load/store queues with store-to-load
// forwarding, per-class issue ports, and in-order commit.
package core

import "math/bits"

// AgeMatrix is the RAND-scheduler age matrix of Section 4.2: instructions
// are inserted into arbitrary IQ slots, and each slot keeps an N-bit age
// vector whose bit j is set iff slot j holds an older instruction. The
// oldest instruction among a candidate set (the BID or PRIO vector) is the
// one whose age vector ANDed with the candidate vector is all zeros —
// exactly the NOR-reduction select of Figure 6.
type AgeMatrix struct {
	n        int
	words    int
	rows     []uint64 // flat n x words matrix; row slot starts at slot*words
	occupied *Bitset
}

// NewAgeMatrix returns an age matrix for an IQ with n slots. Rows share
// one flat backing array so inserts and row reads stay cache-friendly.
func NewAgeMatrix(n int) *AgeMatrix {
	m := &AgeMatrix{n: n, words: (n + 63) / 64, occupied: NewBitset(n)}
	m.rows = make([]uint64, n*m.words)
	return m
}

// Size returns the number of IQ slots.
func (m *AgeMatrix) Size() int { return m.n }

// Occupied reports whether slot i currently holds an instruction.
func (m *AgeMatrix) Occupied(i int) bool { return m.occupied.Get(i) }

// Row exposes the raw age-vector words of a slot. Bit j is set iff slot j
// held an older instruction when this slot was filled; bits of slots freed
// since then are stale and must be masked by an occupied candidate vector.
func (m *AgeMatrix) Row(slot int) []uint64 {
	return m.rows[slot*m.words : (slot+1)*m.words]
}

// Insert enqueues a new (youngest) instruction into the given free slot:
// its age vector is initialized to all ones except its own bit, and its
// bit is cleared in every existing instruction's age vector (hardware
// clears it in all rows; stale rows of free slots are harmless because
// they are never candidates).
func (m *AgeMatrix) Insert(slot int) {
	if m.occupied.Get(slot) {
		panic("core: AgeMatrix.Insert into occupied slot")
	}
	row := m.Row(slot)
	for i := range row {
		row[i] = ^uint64(0)
	}
	// Mask off bits beyond n and the slot's own bit.
	if extra := m.n & 63; extra != 0 {
		row[m.words-1] = (1 << uint(extra)) - 1
	}
	row[slot>>6] &^= 1 << uint(slot&63)
	// Clear this slot's bit in all other rows: nothing already enqueued is
	// younger than the new instruction. The flat layout makes this a
	// single strided sweep; it covers the new row too, where the slot's
	// own bit is already clear.
	w, bit := slot>>6, uint64(1)<<uint(slot&63)
	for i := w; i < len(m.rows); i += m.words {
		m.rows[i] &^= bit
	}
	m.occupied.Set(slot)
}

// Remove frees a slot at issue. As in hardware, other rows keep their
// stale bits for this slot; they are masked by the candidate vector.
func (m *AgeMatrix) Remove(slot int) { m.occupied.Clear(slot) }

// FreeSlot returns a free slot selected pseudo-randomly (the RAND
// insertion policy), or -1 when the IQ is full. The caller supplies the
// random word; determinism is preserved by seeding upstream. Selection
// ranks the k-th clear bit of the occupancy vector word-parallel.
func (m *AgeMatrix) FreeSlot(rnd uint64) int {
	free := m.n - m.occupied.Count()
	if free == 0 {
		return -1
	}
	k := int(rnd % uint64(free))
	occ := m.occupied.Words()
	for wi, w := range occ {
		inv := ^w
		if wi == len(occ)-1 {
			if extra := m.n & 63; extra != 0 {
				inv &= (1 << uint(extra)) - 1
			}
		}
		c := bits.OnesCount64(inv)
		if k >= c {
			k -= c
			continue
		}
		for ; k > 0; k-- {
			inv &= inv - 1
		}
		return wi<<6 + bits.TrailingZeros64(inv)
	}
	return -1
}

// OldestAmong returns the slot of the oldest instruction among the
// candidates (a BID or PRIO vector), or -1 if the candidate set is empty.
// A candidate is oldest iff its age vector has no bit in common with the
// candidate set.
func (m *AgeMatrix) OldestAmong(cand *Bitset) int {
	return m.OldestAmongWords(cand.Words())
}

// OldestAmongWords is OldestAmong over a raw candidate word slice, the
// form the scheduler's persistent BID/PRIO vectors hand over directly.
func (m *AgeMatrix) OldestAmongWords(cand []uint64) int {
	for wi, w := range cand {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			slot := wi<<6 + b
			w &^= 1 << uint(b)
			row := m.rows[slot*m.words:]
			zero := true
			for j := range cand {
				if row[j]&cand[j] != 0 {
					zero = false
					break
				}
			}
			if zero {
				return slot
			}
		}
	}
	return -1
}
