// Package core implements the cycle-level out-of-order core model: a
// decoupled frontend with TAGE/BTB/RAS prediction and FDIP-style
// instruction prefetch, register renaming, a reorder buffer, a unified
// reservation station scheduled by an age-matrix picker (with the CRISP
// PRIO extension of Section 4.2), load/store queues with store-to-load
// forwarding, per-class issue ports, and in-order commit.
package core

import "math/bits"

// AgeMatrix models the RAND-scheduler age matrix of Section 4.2: in
// hardware every IQ slot keeps an N-bit age vector whose bit j is set iff
// slot j holds an older instruction, and the oldest instruction among a
// candidate set (the BID or PRIO vector) is the one whose age vector ANDed
// with the candidates is all zeros — the NOR-reduction select of Figure 6.
//
// The matrix's rows induce exactly the insertion order of the live slots,
// so the model keeps the equivalent representation directly: a 64-bit
// insertion stamp per slot. Selection is then an argmin over candidate
// stamps, which picks the same slot the NOR-reduction would (the oldest
// live candidate is unique — stamps are strictly increasing), and Insert
// drops from an O(N) column clear to O(1). The hardware cost model is
// unchanged; only the host representation is.
type AgeMatrix struct {
	n        int
	age      []uint64 // insertion stamp per slot; valid only while occupied
	stamp    uint64   // next stamp to hand out, strictly increasing
	occupied *Bitset
}

// NewAgeMatrix returns an age matrix for an IQ with n slots.
func NewAgeMatrix(n int) *AgeMatrix {
	return &AgeMatrix{n: n, age: make([]uint64, n), occupied: NewBitset(n)}
}

// Size returns the number of IQ slots.
func (m *AgeMatrix) Size() int { return m.n }

// Occupied reports whether slot i currently holds an instruction.
func (m *AgeMatrix) Occupied(i int) bool { return m.occupied.Get(i) }

// Insert enqueues a new (youngest) instruction into the given free slot.
func (m *AgeMatrix) Insert(slot int) {
	if m.occupied.Get(slot) {
		panic("core: AgeMatrix.Insert into occupied slot")
	}
	m.age[slot] = m.stamp
	m.stamp++
	m.occupied.Set(slot)
}

// Remove frees a slot at issue. The slot's stamp goes stale, exactly like
// the stale row bits hardware leaves behind; it is never consulted again
// because freed slots are never candidates.
func (m *AgeMatrix) Remove(slot int) { m.occupied.Clear(slot) }

// FreeSlot returns a free slot selected pseudo-randomly (the RAND
// insertion policy), or -1 when the IQ is full. The caller supplies the
// random word; determinism is preserved by seeding upstream. Selection
// ranks the k-th clear bit of the occupancy vector word-parallel.
func (m *AgeMatrix) FreeSlot(rnd uint64) int {
	free := m.n - m.occupied.Count()
	if free == 0 {
		return -1
	}
	k := int(rnd % uint64(free))
	occ := m.occupied.Words()
	for wi, w := range occ {
		inv := ^w
		if wi == len(occ)-1 {
			if extra := m.n & 63; extra != 0 {
				inv &= (1 << uint(extra)) - 1
			}
		}
		c := bits.OnesCount64(inv)
		if k >= c {
			k -= c
			continue
		}
		for ; k > 0; k-- {
			inv &= inv - 1
		}
		return wi<<6 + bits.TrailingZeros64(inv)
	}
	return -1
}

// OldestAmong returns the slot of the oldest instruction among the
// candidates (a BID or PRIO vector), or -1 if the candidate set is empty.
func (m *AgeMatrix) OldestAmong(cand *Bitset) int {
	return m.OldestAmongWords(cand.Words())
}

// OldestAmongWords is OldestAmong over a raw candidate word slice, the
// form the scheduler's persistent BID/PRIO vectors hand over directly.
func (m *AgeMatrix) OldestAmongWords(cand []uint64) int {
	best := -1
	var bestAge uint64
	for wi, w := range cand {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			slot := wi<<6 + b
			w &^= 1 << uint(b)
			if a := m.age[slot]; best < 0 || a < bestAge {
				best, bestAge = slot, a
			}
		}
	}
	return best
}

// OlderCount returns how many candidates hold instructions older than the
// one in slot — the number of older ready entries a PRIO pick bypasses
// (in hardware, the popcount of the pick's age-vector row masked by the
// candidate vector).
func (m *AgeMatrix) OlderCount(cand *Bitset, slot int) int {
	mine, n := m.age[slot], 0
	for wi, w := range cand.Words() {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			if m.age[wi<<6+b] < mine {
				n++
			}
		}
	}
	return n
}
