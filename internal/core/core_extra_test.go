package core

import (
	"testing"

	"crisp/internal/cache"
	"crisp/internal/emu"
	"crisp/internal/isa"
	"crisp/internal/program"
)

func TestCallRetThroughPipeline(t *testing.T) {
	b := program.NewBuilder("fn")
	b.MovI(isa.R(1), 0)
	b.MovI(isa.R(2), 400)
	b.Label("loop")
	b.Call("work", isa.R(31))
	b.AddI(isa.R(1), isa.R(1), 1)
	b.Blt(isa.R(1), isa.R(2), "loop")
	b.Halt()
	b.Label("work")
	b.AddI(isa.R(3), isa.R(3), 1)
	b.Ret(isa.R(31))
	res := runProg(t, DefaultConfig(), b.MustBuild(), nil, nil)
	// The RAS should predict the returns; mispredicts only at warmup.
	if res.BranchMispreds > 5 {
		t.Errorf("call/ret loop mispredicted %d times", res.BranchMispreds)
	}
	want := emu.New(b.MustBuild(), nil).Run(0)
	if res.Insts != want {
		t.Errorf("committed %d, want %d", res.Insts, want)
	}
}

func TestStoreQueueCapacityStalls(t *testing.T) {
	// A burst of stores with a tiny store queue must still complete, just
	// more slowly than with a large one.
	mk := func() *program.Program {
		b := program.NewBuilder("st")
		b.MovI(isa.R(1), 0x10000)
		b.MovI(isa.R(2), 0)
		b.MovI(isa.R(3), 300)
		b.Label("loop")
		for i := 0; i < 8; i++ {
			b.Store(isa.R(1), int64(i*8), isa.R(2))
		}
		b.AddI(isa.R(2), isa.R(2), 1)
		b.Blt(isa.R(2), isa.R(3), "loop")
		b.Halt()
		return b.MustBuild()
	}
	small := DefaultConfig()
	small.StoreQueue = 4
	rs := runProg(t, small, mk(), nil, nil)
	rb := runProg(t, DefaultConfig(), mk(), nil, nil)
	if rs.Insts != rb.Insts {
		t.Fatalf("different instruction counts: %d vs %d", rs.Insts, rb.Insts)
	}
	if rs.Cycles <= rb.Cycles {
		t.Errorf("4-entry SQ (%d cycles) not slower than 128-entry (%d)", rs.Cycles, rb.Cycles)
	}
}

func TestLoadQueueCapacityStalls(t *testing.T) {
	mk := func() *program.Program {
		b := program.NewBuilder("ld")
		b.MovI(isa.R(1), 0x10000)
		b.MovI(isa.R(2), 0)
		b.MovI(isa.R(3), 300)
		b.Label("loop")
		for i := 0; i < 8; i++ {
			b.Load(isa.R(8+i%4), isa.R(1), int64(i*8))
		}
		b.AddI(isa.R(2), isa.R(2), 1)
		b.Blt(isa.R(2), isa.R(3), "loop")
		b.Halt()
		return b.MustBuild()
	}
	small := DefaultConfig()
	small.LoadQueue = 2
	rs := runProg(t, small, mk(), nil, nil)
	rb := runProg(t, DefaultConfig(), mk(), nil, nil)
	if rs.Cycles <= rb.Cycles {
		t.Errorf("2-entry LQ (%d cycles) not slower than 64-entry (%d)", rs.Cycles, rb.Cycles)
	}
}

func TestMaxInstsBoundsRun(t *testing.T) {
	b := program.NewBuilder("inf")
	b.Label("l")
	b.AddI(isa.R(1), isa.R(1), 1)
	b.AddI(isa.R(2), isa.R(2), 1)
	b.Jmp("l")
	cfg := DefaultConfig()
	cfg.MaxInsts = 5000
	res := runProg(t, cfg, b.MustBuild(), nil, nil)
	if res.Insts != 5000 {
		t.Errorf("insts = %d, want 5000", res.Insts)
	}
}

func TestColdCodePressuresICache(t *testing.T) {
	// A program with a huge straight-line body re-entered rarely has an
	// icache-bound phase; compare against a tight loop of the same
	// instruction count.
	big := program.NewBuilder("big")
	big.MovI(isa.R(1), 0)
	big.MovI(isa.R(2), 6)
	big.Label("loop")
	for i := 0; i < 12000; i++ {
		big.AddI(isa.R(8+i%8), isa.R(16+i%8), 1)
	}
	big.AddI(isa.R(1), isa.R(1), 1)
	big.Blt(isa.R(1), isa.R(2), "loop")
	big.Halt()
	res := runProg(t, DefaultConfig(), big.MustBuild(), nil, nil)
	if res.L1I.Misses == 0 {
		t.Errorf("60KB straight-line code produced no icache misses")
	}
	if res.L1IMPKI() <= 0 {
		t.Errorf("L1I MPKI = %v", res.L1IMPKI())
	}
}

func TestFDIPReducesICacheStalls(t *testing.T) {
	mk := func() *program.Program {
		b := program.NewBuilder("fdip")
		b.MovI(isa.R(1), 0)
		b.MovI(isa.R(2), 30)
		b.Label("loop")
		for i := 0; i < 2000; i++ {
			b.AddI(isa.R(8+i%8), isa.R(16+i%8), 1)
		}
		b.AddI(isa.R(1), isa.R(1), 1)
		b.Blt(isa.R(1), isa.R(2), "loop")
		b.Halt()
		return b.MustBuild()
	}
	on := DefaultConfig()
	off := DefaultConfig()
	off.FDIP = false
	ron := runProg(t, on, mk(), nil, nil)
	roff := runProg(t, off, mk(), nil, nil)
	if ron.IPC() <= roff.IPC() {
		t.Errorf("FDIP on (%.3f IPC) not faster than off (%.3f) on 10KB loop body",
			ron.IPC(), roff.IPC())
	}
}

type alwaysMarker struct{ calls int }

func (m *alwaysMarker) MarkDispatch(pc int, isLoad bool, producers []int) bool {
	m.calls++
	return isLoad
}

func TestMarkerIntegration(t *testing.T) {
	b := program.NewBuilder("mk")
	b.MovI(isa.R(1), 0x20000)
	b.MovI(isa.R(2), 0)
	b.MovI(isa.R(3), 100)
	b.Label("loop")
	b.Load(isa.R(4), isa.R(1), 0)
	b.AddI(isa.R(2), isa.R(2), 1)
	b.Blt(isa.R(2), isa.R(3), "loop")
	b.Halt()
	p := b.MustBuild()
	m := &alwaysMarker{}
	cfg := DefaultConfig()
	cfg.Scheduler = SchedCRISP
	em := emu.New(p, nil)
	c := New(cfg, p, em, cache.NewHierarchy(cache.DefaultHierConfig()), m)
	res := c.Run()
	if m.calls == 0 {
		t.Fatalf("marker never called")
	}
	if res.IssuedCritical == 0 {
		t.Errorf("marker-tagged loads never issued via PRIO")
	}
	if res.CriticalExecs == 0 {
		t.Errorf("no critical commits recorded")
	}
}

func TestBTBMissPenaltyApplied(t *testing.T) {
	// Many taken branches to distinct targets: with a 1-entry BTB nearly
	// every taken branch pays the decode redirect; with the default 8K BTB
	// they hit after warmup.
	mk := func() *program.Program {
		b := program.NewBuilder("btb")
		b.MovI(isa.R(1), 0)
		b.MovI(isa.R(2), 200)
		b.Label("loop")
		for i := 0; i < 16; i++ {
			b.Jmp("t" + string(rune('a'+i)))
			b.Label("t" + string(rune('a'+i)))
		}
		b.AddI(isa.R(1), isa.R(1), 1)
		b.Blt(isa.R(1), isa.R(2), "loop")
		b.Halt()
		return b.MustBuild()
	}
	tiny := DefaultConfig()
	tiny.BTBEntries = 4
	tiny.BTBWays = 1
	rt := runProg(t, tiny, mk(), nil, nil)
	rb := runProg(t, DefaultConfig(), mk(), nil, nil)
	if rt.BTBMisses <= rb.BTBMisses {
		t.Errorf("tiny BTB misses %d <= default %d", rt.BTBMisses, rb.BTBMisses)
	}
	if rt.Cycles <= rb.Cycles {
		t.Errorf("tiny BTB (%d cycles) not slower than default (%d)", rt.Cycles, rb.Cycles)
	}
}

func TestSquashFreeCommitStreamMatchesFunctional(t *testing.T) {
	// Whatever the schedulers do, the committed architectural work matches
	// the functional emulator: final register state must agree.
	p, mem, slots, slice := buildPointerChase(2000, 16)
	for _, sched := range []SchedulerKind{SchedOldestFirst, SchedCRISP, SchedRandom} {
		pp := p.Clone()
		if sched == SchedCRISP {
			pp.SetCritical(slice)
		}
		// Functional reference.
		ref := emu.New(pp, cloneMem(t, mem, pp, slots))
		ref.SetReg(isa.R(1), int64(slots[0]))
		ref.Run(30_000)
		refR2 := ref.Reg(isa.R(2))

		cfg := DefaultConfig()
		cfg.Scheduler = sched
		cfg.MaxInsts = 30_000
		em := emu.New(pp, cloneMem(t, mem, pp, slots))
		em.SetReg(isa.R(1), int64(slots[0]))
		c := New(cfg, pp, em, cache.NewHierarchy(cache.DefaultHierConfig()), nil)
		res := c.Run()
		if res.Insts != 30_000 {
			t.Fatalf("%v: committed %d", sched, res.Insts)
		}
		if got := em.Reg(isa.R(2)); got != refR2 {
			t.Errorf("%v: architectural r2 = %d, functional %d", sched, got, refR2)
		}
	}
}

// cloneMem rebuilds the pointer-chase memory image (Memory has no deep
// copy; reconstruct deterministically).
func cloneMem(t *testing.T, _ *emu.Memory, _ *program.Program, _ []uint64) *emu.Memory {
	t.Helper()
	_, mem, _, _ := buildPointerChase(2000, 16)
	return mem
}
