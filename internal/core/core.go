package core

import (
	"fmt"
	"runtime"
	"time"

	"crisp/internal/branch"
	"crisp/internal/cache"
	"crisp/internal/emu"
	"crisp/internal/isa"
	"crisp/internal/metrics"
	"crisp/internal/program"
)

// Marker lets a hardware criticality mechanism (IBDA) tag µops at
// dispatch. producers holds the static PCs of the most recent writers of
// the µop's source registers (-1 for architecturally ready values); memory
// producers are not visible, matching register-only IBDA. The return value
// ORs with the instruction's static CRISP prefix.
type Marker interface {
	MarkDispatch(pc int, isLoad bool, producers []int) bool
}

// entry is one in-flight µop: a ROB entry, and while waiting also an RS
// entry (slot >= 0).
type entry struct {
	seq  uint64
	d    emu.DynInst
	live bool

	critical     bool
	mispredicted bool

	dispatched bool
	issued     bool
	done       bool
	doneAt     uint64
	served     cache.ServedBy // loads: level serving the access

	dep1, dep2 int64 // producer seqs, -1 when architecturally ready
	storeDep   int64 // forwarding store seq, -1 if none

	slot int // RS slot while waiting, -1 otherwise
}

// fqEntry is a fetched, not yet dispatched µop.
type fqEntry struct {
	d               emu.DynInst
	mispredicted    bool
	dispatchReadyAt uint64
}

// Core is the cycle-level OOO processor model.
type Core struct {
	cfg  Config
	prog *program.Program
	em   *emu.Emulator
	hier *cache.Hierarchy

	bp  branch.Predictor
	btb *branch.BTB
	ras *branch.RAS

	marker Marker

	// Fetch state. fetchQ is a ring buffer (capacity fixed at FTQSize +
	// FetchWidth) so steady-state fetch/dispatch moves no memory.
	fetchQ            []fqEntry
	fqHead, fqLen     int
	fetchBlockedUntil uint64
	waitingBranchSeq  int64 // seq of unresolved mispredicted branch, -1 none
	mispredictPending bool  // a mispredicted branch is fetched but not yet dispatched
	curFetchLine      uint64
	streamDone        bool
	fetched           uint64

	// Backend state.
	rob       []entry
	headSeq   uint64
	tailSeq   uint64
	slots     []*entry
	matrix    *AgeMatrix
	regProd   [isa.NumRegs]int64
	regProdPC [isa.NumRegs]int
	storeQ    []uint64 // ring buffer of in-flight store seqs, FIFO
	sqHead    int
	lqCount   int
	sqCount   int
	rsCount   int
	portBusy  [isa.NumPortClasses][]uint64
	rng       uint64
	producers []int // scratch for marker callbacks

	// Cycle-accounting state (internal/metrics): dispStall records which
	// backend resources blocked dispatch last cycle, redirectUntil marks
	// the end of the latest mispredict-redirect window, occMask gates
	// occupancy sampling to power-of-two cycle boundaries.
	dispStall     uint8
	redirectUntil uint64
	occMask       uint64
	robMask       uint64 // len(rob)-1; ring capacity is a power of two

	// Incremental scheduler state (see wakeup.go): persistent BID/PRIO
	// vectors plus the wakeup machinery that maintains them.
	readyBid, readyPrio     *Bitset
	scratchBid, scratchPrio *Bitset
	waitCount               []int8  // per RS slot: outstanding unready deps
	waiterHead              []int32 // per ROB index: waiter chain head, -1 empty
	waiterNext              []int32 // per chain node (slot*3 + dep index)
	wakeups                 wakeupHeap

	cycle       uint64
	stats       Result
	cancelCheck func() bool

	upcAccum       uint64
	lastRetire     uint64
	lastRetireIter uint64

	// Dense per-PC profile storage (see loadProf/branchProf/exportProfs).
	loadProfs   []LoadProf
	branchProfs []BranchProf
}

// New builds a core over the given program, emulator and hierarchy.
// marker may be nil.
func New(cfg Config, prog *program.Program, em *emu.Emulator, hier *cache.Hierarchy, marker Marker) *Core {
	c := &Core{
		cfg:  cfg,
		prog: prog,
		em:   em,
		hier: hier,
		btb:  branch.NewBTB(cfg.BTBEntries, cfg.BTBWays),
		ras:  branch.NewRAS(cfg.RASEntries),

		marker:           marker,
		waitingBranchSeq: -1,

		rob:    make([]entry, ceilPow2(cfg.ROBSize)),
		slots:  make([]*entry, cfg.RSSize),
		matrix: NewAgeMatrix(cfg.RSSize),
		rng:    0x853C49E6748FEA9B,

		fetchQ: make([]fqEntry, cfg.FTQSize+cfg.FetchWidth+1),
		storeQ: make([]uint64, cfg.StoreQueue),

		readyBid:    NewBitset(cfg.RSSize),
		readyPrio:   NewBitset(cfg.RSSize),
		scratchBid:  NewBitset(cfg.RSSize),
		scratchPrio: NewBitset(cfg.RSSize),
		waitCount:   make([]int8, cfg.RSSize),
		waiterHead:  make([]int32, ceilPow2(cfg.ROBSize)),
		waiterNext:  make([]int32, cfg.RSSize*3),
		wakeups:     make(wakeupHeap, 0, cfg.RSSize*3),
	}
	for i := range c.waiterHead {
		c.waiterHead[i] = -1
	}
	if cfg.PerfectBP {
		c.bp = branch.Perfect{}
	} else {
		c.bp = branch.NewTAGE(branch.DefaultTAGELogBase, branch.DefaultTAGELogTagged)
	}
	for i := range c.regProd {
		c.regProd[i] = -1
		c.regProdPC[i] = -1
	}
	for cls := range c.portBusy {
		c.portBusy[cls] = make([]uint64, cfg.Ports[cls])
	}
	c.stats.Loads = make(map[int]*LoadProf)
	c.stats.Branches = make(map[int]*BranchProf)
	c.loadProfs = make([]LoadProf, prog.Len())
	c.branchProfs = make([]BranchProf, prog.Len())
	c.curFetchLine = ^uint64(0)
	occ := cfg.OccSampleEvery
	if occ <= 0 {
		occ = 256
	}
	period := 1
	for period < occ {
		period <<= 1
	}
	c.occMask = uint64(period - 1)
	c.robMask = uint64(len(c.rob) - 1)
	return c
}

// ceilPow2 rounds n up to the next power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// robEntry maps a sequence number to its ring slot. The ring capacity is
// the ROB size rounded up to a power of two (occupancy is still bounded by
// cfg.ROBSize at dispatch), so the hot-path modulo is a mask.
func (c *Core) robEntry(seq uint64) *entry { return &c.rob[seq&c.robMask] }

// depReady reports whether the producer identified by seq has its result
// available at cycle `at`.
func (c *Core) depReady(seq int64, at uint64) bool {
	if seq < 0 || uint64(seq) < c.headSeq {
		return true // architecturally ready or committed
	}
	e := c.robEntry(uint64(seq))
	return e.done && e.doneAt <= at
}

func (c *Core) nextRand() uint64 {
	c.rng ^= c.rng << 13
	c.rng ^= c.rng >> 7
	c.rng ^= c.rng << 17
	return c.rng
}

// SetCancelCheck installs a callback polled on every cycle-loop iteration
// during Run; when it returns true the simulation stops early and Run
// returns the partial statistics. It must be set before Run. Polling
// per iteration (not per simulated cycle) keeps cancellation latency
// bounded in host time: an idle-cycle skip can advance the clock by
// hundreds of cycles in one iteration, so any cycle-count modulus could
// be jumped over.
func (c *Core) SetCancelCheck(f func() bool) { c.cancelCheck = f }

// SetBranchState replaces the core's frontend prediction structures with
// pre-warmed ones (checkpoint restore for sampled simulation). Nil
// arguments keep the structures New built. Must be called before Run.
// Callers pass clones: the core trains these during the window.
func (c *Core) SetBranchState(bp branch.Predictor, btb *branch.BTB, ras *branch.RAS) {
	if bp != nil {
		c.bp = bp
	}
	if btb != nil {
		c.btb = btb
	}
	if ras != nil {
		c.ras = ras
	}
}

// Run simulates to completion and returns the results. It is the
// single-core composition of the step primitives the multi-core driver
// (RunMulti) sequences across cores: stepCycle / skipTarget+applySkip /
// advanceCycle / finishRun.
func (c *Core) Run() *Result {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	startAllocs := ms.Mallocs
	start := time.Now()
	for !c.finished() {
		c.stats.HostIters++
		if c.cancelCheck != nil && c.cancelCheck() {
			break
		}
		c.stepCycle()
		if !c.cfg.DebugNoSkip {
			if next, ok := c.skipTarget(); ok {
				c.applySkip(next)
			}
		}
		c.advanceCycle()
	}
	c.finishRun(start, startAllocs)
	return &c.stats
}

// stepCycle runs the four pipeline stages of the current cycle plus the
// occupancy sample that precedes any skip decision.
func (c *Core) stepCycle() {
	c.hier.Activate()
	c.commit()
	c.issue()
	c.dispatch()
	c.fetch()
	if c.cycle&c.occMask == 0 {
		c.sampleOccupancy()
	}
}

// advanceCycle increments the clock, closes UPC windows, and trips the
// no-progress watchdog.
func (c *Core) advanceCycle() {
	c.cycle++
	if c.cfg.UPCWindow > 0 && c.cycle%uint64(c.cfg.UPCWindow) == 0 {
		c.stats.UPCWindows = append(c.stats.UPCWindows, float64(c.upcAccum)/float64(c.cfg.UPCWindow))
		c.upcAccum = 0
	}
	// Watchdog on loop iterations, not simulated cycles: a legitimate
	// next-event jump can advance the clock by millions of cycles
	// (e.g. a huge UPC window over a dead backend), which must not be
	// mistaken for a hang. Iterations without retirement bound host
	// work directly.
	if c.stats.HostIters-c.lastRetireIter > 2_000_000 {
		panic(fmt.Sprintf("core: no commit for 2M loop iterations at cycle %d (head seq %d tail %d, fetchQ %d)",
			c.cycle, c.headSeq, c.tailSeq, c.fqLen))
	}
}

// finishRun materializes the result: per-PC profile export, host counters
// against the given run start, and this core's view of the memory-system
// statistics (its own share when the LLC/DRAM are contended).
func (c *Core) finishRun(start time.Time, startAllocs uint64) {
	c.exportProfs()
	c.stats.HostNS = time.Since(start).Nanoseconds()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.stats.HostAllocs = ms.Mallocs - startAllocs
	c.stats.Cycles = c.cycle
	c.stats.L1I = c.hier.L1I.Stats()
	c.stats.L1D = c.hier.L1D.Stats()
	c.stats.LLC = c.hier.LLCStats()
	ds := c.hier.DRAMStats()
	c.stats.DRAMReads = ds.Reads
	c.stats.DRAMAvgLat = ds.AvgReadLatency()
}

func (c *Core) finished() bool {
	return c.streamDone && c.fqLen == 0 && c.headSeq == c.tailSeq
}

// ---------------------------------------------------------------- commit

// commit retires up to CommitWidth µops and attributes every commit slot:
// n slots retire, and the remaining CommitWidth-n slots of this cycle are
// charged to the single stall bucket explaining why the ROB head could not
// retire. Exactly CommitWidth slots are accounted per cycle, so
// Breakdown.Total() == Cycles × CommitWidth by construction.
func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth; n++ {
		if c.headSeq == c.tailSeq {
			c.stats.Breakdown.Stalls[c.emptyBucket()] += uint64(c.cfg.CommitWidth - n)
			return
		}
		e := c.robEntry(c.headSeq)
		if !e.done || e.doneAt > c.cycle {
			c.stats.ROBHeadStalls++
			if e.d.Inst.Op == isa.OpLoad {
				c.loadProf(e.d.PC).HeadStall++
			}
			c.stats.Breakdown.Stalls[c.headBucket(e)] += uint64(c.cfg.CommitWidth - n)
			return
		}
		c.stats.Breakdown.Committed++
		switch e.d.Inst.Op {
		case isa.OpLoad:
			c.lqCount--
		case isa.OpStore:
			// Drain the store buffer to the cache in the background. The
			// drain carries no PC attribution: it is not a demand access by
			// the store instruction, and attributing it would let store PCs
			// reach the LLC miss observers (per-PC profiles, IBDA's
			// delinquent load table, which must only ever hold loads).
			c.hier.Data(cache.NoPC, e.d.Addr, true, c.cycle)
			if c.sqCount == 0 || c.storeQ[c.sqHead] != e.seq {
				panic("core: store queue out of sync at commit")
			}
			c.sqHead = (c.sqHead + 1) % len(c.storeQ)
			c.sqCount--
		}
		if e.critical {
			c.stats.CriticalExecs++
		}
		e.live = false
		c.headSeq++
		c.stats.Insts++
		c.upcAccum++
		c.lastRetire = c.cycle
		c.lastRetireIter = c.stats.HostIters
	}
}

// Dispatch-backpressure flags, recorded by dispatch() and consumed by the
// next cycle's commit() to split core-bound stalls by blocked resource.
const (
	dsROBFull = 1 << iota
	dsRSFull
	dsLQFull
	dsSQFull
)

// emptyBucket classifies a commit slot wasted while the ROB is empty:
// either the machine is recovering from a mispredict (squash + redirect)
// or the frontend simply failed to supply µops.
func (c *Core) emptyBucket() metrics.Bucket {
	if c.mispredictPending || c.cycle < c.redirectUntil {
		return metrics.BranchRedirect
	}
	return metrics.Frontend
}

// headBucket classifies a commit slot wasted behind an uncommittable ROB
// head. Issued loads charge the level serving them; issued non-loads are
// execution latency; a ready-but-unissued head lost port or selection
// bandwidth; otherwise the head waits on producers, and the split between
// plain dependency latency and a window/queue/RS bottleneck comes from the
// resource dispatch reported blocked last cycle.
func (c *Core) headBucket(e *entry) metrics.Bucket {
	if e.issued {
		if e.d.Inst.Op == isa.OpLoad {
			switch e.served {
			case cache.ServedDRAM:
				return metrics.MemDRAM
			case cache.ServedLLC:
				return metrics.MemLLC
			default:
				return metrics.MemL1
			}
		}
		return metrics.CoreExec
	}
	if e.slot >= 0 && c.readyBid.Get(e.slot) {
		return metrics.CorePort
	}
	switch {
	case c.dispStall&dsROBFull != 0:
		return metrics.CoreROBFull
	case c.dispStall&dsRSFull != 0:
		return metrics.CoreRSFull
	case c.dispStall&dsLQFull != 0:
		return metrics.CoreLQFull
	case c.dispStall&dsSQFull != 0:
		return metrics.CoreSQFull
	}
	return metrics.CoreDep
}

// sampleOccupancy records one occupancy sample of each bounded backend
// structure (period OccSampleEvery, default 256 cycles).
func (c *Core) sampleOccupancy() {
	h := &c.stats.Hists
	h.OccROB.Observe(c.tailSeq - c.headSeq)
	h.OccRS.Observe(uint64(c.rsCount))
	h.OccLQ.Observe(uint64(c.lqCount))
	h.OccSQ.Observe(uint64(c.sqCount))
	h.OccMSHR.Observe(uint64(c.hier.L1D.MSHROccupancy(c.cycle) + c.hier.LLC.MSHROccupancy(c.cycle)))
}

// ----------------------------------------------------------------- issue

// issue models the select stage. The Table 1 baseline is
// "6-oldest-ready-instructions-first": each cycle the picker selects up to
// IssueWidth ready instructions in age order (a global pick, not per
// functional unit) and each selected instruction issues only if a port of
// its class is free — a selection whose port is busy is wasted, as in an
// age-matrix select feeding a fixed port binding. CRISP performs the same
// selection but consults the PRIO vector first (Figure 6), so
// critical-tagged instructions claim selection slots and ports before
// older non-critical work.
//
// The BID/PRIO vectors are persistent and maintained incrementally by the
// wakeup machinery (wakeup.go); each cycle only drains due wakeups and
// word-copies the vectors into scratch so the selection loop can consume
// bits without disturbing the persistent state of not-issued picks.
func (c *Core) issue() {
	c.drainWakeups()
	if !c.readyBid.Any() {
		return
	}
	bid, prio := c.scratchBid, c.scratchPrio
	bid.CopyFrom(c.readyBid)
	prio.CopyFrom(c.readyPrio)

	width := c.cfg.FetchWidth // issue width matches machine width (6)
	for n := 0; n < width; n++ {
		slot := c.pick(bid, prio)
		if slot < 0 {
			return
		}
		bid.Clear(slot)
		prio.Clear(slot)
		e := c.slots[slot]
		cls := e.d.Inst.Op.Class()
		port := c.freePort(cls)
		if port < 0 {
			// Selected but no free functional unit: the selection slot is
			// consumed and the instruction retries next cycle (its
			// persistent BID bit stays set).
			continue
		}
		c.readyBid.Clear(slot)
		c.readyPrio.Clear(slot)
		c.execute(e, cls, port)
	}
}

// drainWakeups applies every wakeup due at or before the current cycle; a
// slot whose last outstanding dependence resolves becomes a selection
// candidate.
func (c *Core) drainWakeups() {
	for len(c.wakeups) > 0 && c.wakeups[0].at <= c.cycle {
		slot := c.wakeups.pop().slot
		if c.waitCount[slot]--; c.waitCount[slot] == 0 {
			c.setReady(int(slot))
		}
	}
}

// setReady marks an RS slot as a selection candidate.
func (c *Core) setReady(slot int) {
	c.readyBid.Set(slot)
	if c.slots[slot].critical {
		c.readyPrio.Set(slot)
	}
}

// armDep accounts one producer dependence of the instruction in slot.
// It returns 0 when the value is already available this cycle; otherwise
// it returns 1 after scheduling the wakeup — timed if the producer's
// completion cycle is known, chained onto the producer's waiter list if
// the producer has not executed yet. dep distinguishes the slot's up to
// three dependences (src1, src2, forwarding store) so two dependences on
// the same producer chain independently.
func (c *Core) armDep(seq int64, slot, dep int) int {
	if seq < 0 || uint64(seq) < c.headSeq {
		return 0 // architecturally ready or committed
	}
	p := c.robEntry(uint64(seq))
	if p.done {
		if p.doneAt <= c.cycle {
			return 0
		}
		c.wakeups.push(p.doneAt, int32(slot))
		return 1
	}
	node := int32(slot*3 + dep)
	robIdx := int32(uint64(seq) & c.robMask)
	c.waiterNext[node] = c.waiterHead[robIdx]
	c.waiterHead[robIdx] = node
	return 1
}

// freePort returns an available port index in the class, or -1.
func (c *Core) freePort(cls isa.PortClass) int {
	for i, busy := range c.portBusy[cls] {
		if busy <= c.cycle {
			return i
		}
	}
	return -1
}

// pick applies the configured scheduling policy to one selection.
func (c *Core) pick(bid, prio *Bitset) int {
	switch c.cfg.Scheduler {
	case SchedCRISP:
		if s := c.matrix.OldestAmong(prio); s >= 0 {
			c.stats.IssuedCritical++
			// Diagnostic: how many older ready entries did the PRIO pick
			// bypass?
			c.stats.QueueJumpSum += uint64(c.matrix.OlderCount(bid, s))
			return s
		}
		return c.matrix.OldestAmong(bid)
	case SchedRandom:
		n := bid.Count()
		if n == 0 {
			return -1
		}
		return bid.SelectNth(int(c.nextRand() % uint64(n)))
	default:
		return c.matrix.OldestAmong(bid)
	}
}

func (c *Core) execute(e *entry, cls isa.PortClass, port int) {
	e.issued = true
	c.matrix.Remove(e.slot)
	c.slots[e.slot] = nil
	e.slot = -1
	c.rsCount--

	op := e.d.Inst.Op
	if op.Pipelined() {
		c.portBusy[cls][port] = c.cycle + 1
	} else {
		c.portBusy[cls][port] = c.cycle + uint64(op.Latency())
	}

	switch op {
	case isa.OpLoad:
		c.stats.LoadExecs++
		lp := c.loadProf(e.d.PC)
		lp.Count++
		if e.storeDep >= 0 {
			// Store-to-load forwarding: AGU + bypass.
			e.doneAt = c.cycle + 2
			e.served = cache.ServedL1
			lp.Forwards++
			lp.TotalLat += 2
			lp.LatHist.Observe(2)
			c.stats.Hists.LoadLat.Observe(2)
		} else {
			done, by := c.hier.Data(uint64(e.d.PC), e.d.Addr, false, c.cycle+1)
			e.doneAt = done
			e.served = by
			lat := done - c.cycle
			lp.TotalLat += lat
			lp.LatHist.Observe(lat)
			c.stats.Hists.LoadLat.Observe(lat)
			if by != cache.ServedL1 {
				lp.L1Miss++
			}
			if by == cache.ServedDRAM {
				lp.LLCMiss++
				mlp := uint64(c.hier.OutstandingMisses(c.cycle + 1))
				lp.MLPSum += mlp
				c.stats.Hists.DRAMLat.Observe(lat)
				c.stats.Hists.MLPAtMiss.Observe(mlp)
			}
		}
	case isa.OpStore:
		c.stats.StoreExecs++
		e.doneAt = c.cycle + 1
	default:
		e.doneAt = c.cycle + uint64(op.Latency())
	}
	e.done = true

	// The completion cycle is now known: convert consumers that chained
	// onto this producer into timed wakeups.
	robIdx := int32(e.seq & c.robMask)
	for node := c.waiterHead[robIdx]; node >= 0; node = c.waiterNext[node] {
		c.wakeups.push(e.doneAt, node/3)
	}
	c.waiterHead[robIdx] = -1

	if e.mispredicted {
		// The branch has resolved: the frontend refetches from the correct
		// path after the redirect penalty. An in-force longer block (an
		// icache miss still filling) must not be shortened by the redirect,
		// so the later deadline wins.
		if until := e.doneAt + uint64(c.cfg.RedirectPenalty); until > c.fetchBlockedUntil {
			c.fetchBlockedUntil = until
		}
		if until := e.doneAt + uint64(c.cfg.RedirectPenalty); until > c.redirectUntil {
			c.redirectUntil = until
		}
		if c.waitingBranchSeq == int64(e.seq) {
			c.waitingBranchSeq = -1
		}
	}
}

// -------------------------------------------------------------- dispatch

func (c *Core) dispatch() {
	c.dispStall = 0
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.fqLen == 0 {
			return
		}
		f := &c.fetchQ[c.fqHead]
		if f.dispatchReadyAt > c.cycle {
			return
		}
		if c.tailSeq-c.headSeq >= uint64(c.cfg.ROBSize) {
			c.dispStall |= dsROBFull
			return
		}
		op := f.d.Inst.Op
		if op == isa.OpLoad && c.lqCount >= c.cfg.LoadQueue {
			c.dispStall |= dsLQFull
			return
		}
		if op == isa.OpStore && c.sqCount >= c.cfg.StoreQueue {
			c.dispStall |= dsSQFull
			return
		}
		slot := c.matrix.FreeSlot(c.nextRand())
		if slot < 0 {
			c.dispStall |= dsRSFull
			return
		}

		seq := c.tailSeq
		e := c.robEntry(seq)
		*e = entry{
			seq: seq, d: f.d, live: true,
			critical:     f.d.Inst.Critical,
			mispredicted: f.mispredicted,
			dep1:         -1, dep2: -1, storeDep: -1,
			slot: slot,
		}
		in := f.d.Inst
		if in.Src1.Valid() {
			e.dep1 = c.regProd[in.Src1]
		}
		if in.Src2.Valid() {
			e.dep2 = c.regProd[in.Src2]
		}
		if op == isa.OpLoad {
			e.storeDep = c.findForwardingStore(&f.d)
			c.lqCount++
		}
		if op == isa.OpStore {
			c.storeQ[(c.sqHead+c.sqCount)%len(c.storeQ)] = seq
			c.sqCount++
		}

		if c.marker != nil {
			c.producers = c.producers[:0]
			if in.Src1.Valid() {
				c.producers = append(c.producers, c.regProdPC[in.Src1])
			}
			if in.Src2.Valid() {
				c.producers = append(c.producers, c.regProdPC[in.Src2])
			}
			if c.marker.MarkDispatch(f.d.PC, op == isa.OpLoad, c.producers) {
				e.critical = true
			}
		}

		if in.HasDst() {
			c.regProd[in.Dst] = int64(seq)
			c.regProdPC[in.Dst] = f.d.PC
		}

		c.matrix.Insert(slot)
		c.slots[slot] = e
		c.rsCount++
		wait := c.armDep(e.dep1, slot, 0) + c.armDep(e.dep2, slot, 1)
		if op == isa.OpLoad {
			wait += c.armDep(e.storeDep, slot, 2)
		}
		c.waitCount[slot] = int8(wait)
		if wait == 0 {
			c.setReady(slot)
		}
		c.tailSeq++
		if f.mispredicted {
			c.mispredictPending = false
			c.waitingBranchSeq = int64(seq)
		}
		c.fqHead = (c.fqHead + 1) % len(c.fetchQ)
		c.fqLen--
	}
}

// findForwardingStore returns the seq of the youngest older in-flight
// store whose 8-byte access fully covers the load's, or -1. Addresses
// are exact (oracle), modeling perfect memory disambiguation. Accesses
// are 8 bytes wide throughout, so cover means an exact address match; a
// partially overlapping store cannot supply all of the load's bytes from
// the store buffer, so the load falls through to the cache instead (no
// merge network is modeled).
func (c *Core) findForwardingStore(d *emu.DynInst) int64 {
	for i := c.sqCount - 1; i >= 0; i-- {
		se := c.robEntry(c.storeQ[(c.sqHead+i)%len(c.storeQ)])
		delta := int64(d.Addr) - int64(se.d.Addr)
		if delta == 0 {
			return int64(se.seq)
		}
		if delta < 8 && delta > -8 {
			return -1 // partial overlap: not forwardable
		}
	}
	return -1
}

// ----------------------------------------------------------------- fetch

func (c *Core) fetch() {
	if c.cycle < c.fetchBlockedUntil || c.mispredictPending || c.waitingBranchSeq >= 0 {
		c.stats.FetchStallCycle++
		return
	}
	if c.streamDone {
		return
	}
	if c.fqLen >= c.cfg.FTQSize {
		return
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.cfg.MaxInsts > 0 && c.fetched >= c.cfg.MaxInsts {
			c.streamDone = true
			return
		}
		d, ok := c.em.Step()
		if !ok {
			c.streamDone = true
			return
		}
		c.fetched++

		// Instruction cache: fetching a new code line pays its access
		// latency; with FDIP the following lines are prefetched.
		readyAt := c.cycle + uint64(c.cfg.FrontendDepth)
		icacheStall := false
		line := c.prog.ByteAddr(d.PC) &^ 63
		if line != c.curFetchLine {
			done, hit := c.hier.Inst(line, c.cycle)
			c.curFetchLine = line
			if c.cfg.FDIP {
				for i := 1; i <= 3; i++ {
					c.hier.PrefetchInst(line+uint64(i*64), c.cycle)
				}
			}
			if !hit {
				icacheStall = true
				c.fetchBlockedUntil = done
				readyAt = done + uint64(c.cfg.FrontendDepth)
			}
		}

		if d.Inst.Op.IsBranch() {
			mispredict, bubbleUntil := c.fetchBranch(d)
			if mispredict {
				c.pushFetched(d, true, readyAt)
				c.mispredictPending = true
				return
			}
			if bubbleUntil > c.fetchBlockedUntil {
				c.fetchBlockedUntil = bubbleUntil
			}
			c.pushFetched(d, false, readyAt)
			if d.Taken || c.fetchBlockedUntil > c.cycle {
				// Taken branches end the fetch group; BTB-miss bubbles and
				// icache misses stop fetch until resolved.
				return
			}
			continue
		}

		c.pushFetched(d, false, readyAt)
		if icacheStall {
			return
		}
	}
}

func (c *Core) pushFetched(d emu.DynInst, misp bool, readyAt uint64) {
	if c.fqLen == len(c.fetchQ) {
		panic("core: fetch queue overflow")
	}
	c.fetchQ[(c.fqHead+c.fqLen)%len(c.fetchQ)] = fqEntry{d: d, mispredicted: misp, dispatchReadyAt: readyAt}
	c.fqLen++
}

// fetchBranch models prediction for one branch µop. It returns whether the
// branch was mispredicted and, for correctly predicted taken branches that
// miss the BTB, the cycle until which fetch bubbles (0 if none).
func (c *Core) fetchBranch(d emu.DynInst) (mispredict bool, bubbleUntil uint64) {
	in := d.Inst
	pcAddr := c.prog.ByteAddr(d.PC)
	c.stats.BranchExecs++
	bp := c.branchProf(d.PC)
	bp.Count++
	if d.Taken {
		bp.Taken++
	}

	switch in.Op {
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		pred := c.bp.PredictAndTrain(pcAddr, d.Taken)
		mispredict = pred != d.Taken
	case isa.OpJmp:
		// Direct unconditional: always predicted taken.
	case isa.OpCall:
		c.ras.Push(d.PC + 1)
	case isa.OpRet:
		target, ok := c.ras.Pop()
		mispredict = !ok || target != d.NextPC
	}

	if mispredict {
		c.stats.BranchMispreds++
		bp.Mispred++
		return true, 0
	}

	// Correct direction. Taken branches need the target from the BTB at
	// fetch; a miss costs a decode-redirect bubble.
	if d.Taken && in.Op != isa.OpRet {
		if _, ok := c.btb.Lookup(pcAddr); !ok {
			c.stats.BTBMisses++
			c.btb.Insert(pcAddr, d.NextPC)
			return false, c.cycle + uint64(c.cfg.BTBMissPenalty)
		}
	}
	return false, 0
}

// ----------------------------------------------------------- small utils

// Per-PC profiles live in dense slices indexed by static PC while the
// simulation runs (the PC space is the program, so this is exact and much
// cheaper than map lookups on the execute/commit paths); Run materializes
// the Result maps from the touched entries at the end.

func (c *Core) loadProf(pc int) *LoadProf { return &c.loadProfs[pc] }

func (c *Core) branchProf(pc int) *BranchProf { return &c.branchProfs[pc] }

// exportProfs copies every touched per-PC profile into the Result maps.
// Every loadProf call site bumps Count or HeadStall and every branchProf
// call site bumps Count, so "touched" is exactly "some counter nonzero" —
// the map contents match what per-call map insertion would have produced.
func (c *Core) exportProfs() {
	for pc := range c.loadProfs {
		if p := &c.loadProfs[pc]; p.Count != 0 || p.HeadStall != 0 {
			cp := *p
			c.stats.Loads[pc] = &cp
		}
	}
	for pc := range c.branchProfs {
		if p := &c.branchProfs[pc]; p.Count != 0 {
			cp := *p
			c.stats.Branches[pc] = &cp
		}
	}
}
