package core

import "math/bits"

// Bitset is a fixed-capacity bit vector used for the scheduler's BID
// (ready) and PRIO (ready-and-critical) vectors. The hot-path operations
// (copy, iteration, masked counts, rank selection) work a 64-bit word at a
// time so selection cost scales with RSSize/64, not RSSize.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a bitset with capacity n bits.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Words exposes the backing words for word-parallel consumers (the age
// matrix's NOR-reduction select). The slice aliases the bitset; bits at
// positions >= Len() are always zero.
func (b *Bitset) Words() []uint64 { return b.words }

// Set sets bit i.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// Clear clears bit i.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << uint(i&63) }

// Get reports bit i.
func (b *Bitset) Get(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// Reset clears all bits.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// CopyFrom overwrites b with the contents of src. The two bitsets must
// have the same capacity.
func (b *Bitset) CopyFrom(src *Bitset) {
	copy(b.words, src.words)
}

// Any reports whether any bit is set.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// NextSet returns the index of the first set bit at or after from, or -1
// if there is none. Scanning is word-parallel via TrailingZeros64.
func (b *Bitset) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= b.n {
		return -1
	}
	wi := from >> 6
	w := b.words[wi] >> uint(from&63)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi<<6 + bits.TrailingZeros64(b.words[wi])
		}
	}
	return -1
}

// SelectNth returns the index of the k-th set bit (k = 0 selects the
// lowest), or -1 if fewer than k+1 bits are set. It skips whole words by
// popcount and resolves the final word with a branchless rank search.
func (b *Bitset) SelectNth(k int) int {
	if k < 0 {
		return -1
	}
	for wi, w := range b.words {
		c := bits.OnesCount64(w)
		if k >= c {
			k -= c
			continue
		}
		// The k-th set bit lives in this word: peel k lower set bits.
		for ; k > 0; k-- {
			w &= w - 1
		}
		return wi<<6 + bits.TrailingZeros64(w)
	}
	return -1
}

// AndCount returns popcount(b & mask) where mask is a raw word slice (for
// example an age-matrix row). Words beyond the shorter operand count as
// zero.
func (b *Bitset) AndCount(mask []uint64) int {
	n := len(b.words)
	if len(mask) < n {
		n = len(mask)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(b.words[i] & mask[i])
	}
	return c
}
