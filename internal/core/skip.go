package core

import "crisp/internal/isa"

// Next-event idle-cycle skipping.
//
// The timing model is fully latency-scheduled: every future state change
// is carried by a recorded completion time (`doneAt`, the wakeup heap,
// `redirectUntil`, `fetchBlockedUntil`, the fetch queue's per-µop
// dispatch-ready times). When a cycle ends with no stage able to make
// forward progress, the earliest of those times is the first cycle at
// which anything *can* happen, and every cycle before it would replay an
// identical no-op: commit re-charges the same stall bucket, issue drains
// no wakeups, dispatch re-blocks on the same frozen resource, fetch stays
// stalled. skipTarget computes that event horizon and applySkip jumps the
// clock straight to it, bulk-charging the interval exactly as the
// per-cycle path would have — the exact-partition invariant
// Breakdown.Total() == Cycles × CommitWidth holds by construction on the
// skip path too, and every counter (ROBHeadStalls, per-PC HeadStall,
// FetchStallCycle) receives the same totals. Jumps are clipped to the
// next occupancy-sample and UPC-window boundary so sampled histograms and
// UPC timelines observe the same cycles they would per-cycle; the result
// is cycle-exact and pinned byte-identical by the harness goldens and
// TestSkipEquivalence.

// skipTarget runs after the four stages of the current cycle. If it can
// prove cycles cycle+1 .. next-1 are no-ops for some future event time
// `next`, it returns (next, true); the caller then charges the interval
// via applySkip. Any condition it cannot prove simply suppresses the jump
// — skipping is never required for correctness, only for host speed.
//
// The proof is purely per-core: it reads only this core's frozen pipeline
// state and already-recorded completion times. That is what makes the
// multi-core min-merge sound — a neighbour's activity during the interval
// cannot create work for this core before `next` (all of this core's
// in-flight completion times were fixed when the accesses were issued),
// so applySkip remains valid for any target ≤ next.
func (c *Core) skipTarget() (uint64, bool) {
	if c.finished() {
		return 0, false // the run ends at the next loop check; don't pad Cycles
	}
	if c.readyBid.Any() {
		return 0, false // selection candidates exist: issue can proceed next cycle
	}
	const never = ^uint64(0)
	next := never

	// Commit: a done ROB head retires at doneAt. A not-yet-issued head
	// has no timed event of its own — it becomes ready only via the
	// wakeup heap, which is covered below.
	if c.headSeq != c.tailSeq {
		if e := c.robEntry(c.headSeq); e.done {
			if e.doneAt <= c.cycle+1 {
				return 0, false // head committable next cycle
			}
			next = e.doneAt
		}
	}

	// Issue: the wakeup heap's minimum is the earliest cycle any RS slot
	// can become a selection candidate (issue() already drained every
	// wakeup due at or before the current cycle).
	if len(c.wakeups) > 0 && c.wakeups[0].at < next {
		next = c.wakeups[0].at
	}

	// Dispatch: a queued µop past its frontend latency dispatches as soon
	// as the blocking backend resource frees — and those resources only
	// free through commit or issue events, which are already in the min.
	// If no resource blocks it, dispatch proceeds next cycle: no skip.
	if c.fqLen > 0 {
		f := &c.fetchQ[c.fqHead]
		if f.dispatchReadyAt > c.cycle {
			if f.dispatchReadyAt < next {
				next = f.dispatchReadyAt
			}
		} else {
			op := f.d.Inst.Op
			blocked := c.tailSeq-c.headSeq >= uint64(c.cfg.ROBSize) ||
				(op == isa.OpLoad && c.lqCount >= c.cfg.LoadQueue) ||
				(op == isa.OpStore && c.sqCount >= c.cfg.StoreQueue) ||
				c.rsCount >= c.cfg.RSSize
			if !blocked {
				return 0, false
			}
		}
	}

	// Fetch: if the frontend could push µops next cycle the machine is
	// not idle. Blocked-on-branch states (mispredictPending, an
	// unresolved waiting branch) clear through dispatch/issue events;
	// only the timed block needs its own entry in the min.
	if !c.streamDone && !c.mispredictPending && c.waitingBranchSeq < 0 && c.fqLen < c.cfg.FTQSize {
		if c.fetchBlockedUntil <= c.cycle+1 {
			return 0, false
		}
	}
	if c.fetchBlockedUntil > c.cycle && c.fetchBlockedUntil < next {
		next = c.fetchBlockedUntil
	}
	// The redirect window's end flips the empty-ROB stall bucket from
	// branch_redirect to frontend, so it bounds any bulk charge.
	if c.redirectUntil > c.cycle && c.redirectUntil < next {
		next = c.redirectUntil
	}

	// Clip to the observability boundaries so sampling is unchanged: the
	// next occupancy sample (the loop lands on it and samples normally)
	// and the next UPC-window edge (the post-increment check fires on it).
	if b := (c.cycle | c.occMask) + 1; b < next {
		next = b
	}
	if c.cfg.UPCWindow > 0 {
		w := uint64(c.cfg.UPCWindow)
		if b := c.cycle - c.cycle%w + w; b < next {
			next = b
		}
	}

	if next == never || next <= c.cycle+1 {
		return 0, false
	}
	return next, true
}

// applySkip charges cycles cycle+1 .. next-1 in bulk and sets
// cycle = next-1 (the loop's increment then lands exactly on the event
// cycle). The caller must hold a skipTarget() proof for some value ≥ next:
// any prefix of a proven-idle interval is itself proven idle, which is how
// the multi-core driver applies the min across cores.
func (c *Core) applySkip(next uint64) {
	if next <= c.cycle+1 {
		return // another core's event lands next cycle: nothing to skip
	}
	delta := next - c.cycle - 1 // skipped cycle values: cycle+1 .. next-1

	// Bulk accounting: exactly what commit()/fetch() would have recorded
	// on each skipped cycle. The bucket is recomputed here — after this
	// cycle's dispatch — because the skipped commits consume the dispStall
	// dispatch just set, not the value this cycle's own commit saw.
	if c.headSeq == c.tailSeq {
		c.stats.Breakdown.Stalls[c.emptyBucket()] += delta * uint64(c.cfg.CommitWidth)
	} else {
		e := c.robEntry(c.headSeq)
		c.stats.Breakdown.Stalls[c.headBucket(e)] += delta * uint64(c.cfg.CommitWidth)
		c.stats.ROBHeadStalls += delta
		if e.d.Inst.Op == isa.OpLoad {
			c.loadProf(e.d.PC).HeadStall += delta
		}
	}
	if c.fetchBlockedUntil > c.cycle || c.mispredictPending || c.waitingBranchSeq >= 0 {
		c.stats.FetchStallCycle += delta
	}
	c.stats.SkippedCycles += delta
	c.cycle = next - 1

	// What stays exact without per-cycle replay, and why:
	//   - metrics.Bucket choice is frozen: headBucket reads only the head
	//     entry (frozen — nothing issues or commits before `next`), the
	//     empty readyBid, and dispStall (re-derived identically by the
	//     blocked dispatch each skipped cycle); emptyBucket's redirect
	//     test is frozen by the redirectUntil clip.
	//   - No hierarchy call happens on skipped cycles (commit/issue are
	//     the only stages that touch it, and both are provably inert), so
	//     cache, DRAM and prefetcher state see the same access stream.
	//   - upcAccum is untouched (no retirement), so the UPC window that
	//     closes at the clipped boundary reads the same value.
}
