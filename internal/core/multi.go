package core

import (
	"fmt"
	"runtime"
	"time"
)

// RunMulti steps the given cores in lockstep against one shared clock and
// returns each core's Result, indexed like cores. The cores must have been
// built over views of one cache.SharedHierarchy (RunMulti itself only
// requires that they start at cycle 0); a single core over a private
// hierarchy reproduces Core.Run exactly, which is what pins the refactor.
//
// Lockstep is load-bearing, not cosmetic: the shared LLC/DRAM busy state
// serializes same-cycle requests in arrival order, so all cores must reach
// a cycle before any core proceeds past it. Idle skipping therefore merges
// across cores — the clock jumps only when every live core proves its own
// skipTarget, and only to the minimum target. That min is safe for every
// core (any prefix of a proven-idle interval is proven idle), and a
// skipped interval makes no memory-system requests on any core, so no
// core's recorded completion times can be invalidated by a neighbour
// during the jump. Finished cores drop out of the merge and make no
// further requests; the survivors keep full-length skips.
//
// cancel is polled once per shared cycle; on cancellation the results
// reflect the simulated-so-far state, like a cancelled Core.Run. Host
// counters (HostNS/HostAllocs) are process-wide measurements from the
// RunMulti start to each core's finish — the cores interleave on one host
// thread, so per-core host attribution is not meaningful and the same
// wall/alloc window is reported to each.
func RunMulti(cores []*Core, cancel func() bool) []*Result {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	startAllocs := ms.Mallocs
	start := time.Now()

	allowSkip := true
	for _, c := range cores {
		if c.cfg.DebugNoSkip {
			allowSkip = false
		}
	}

	live := make([]bool, len(cores))
	liveCount := 0
	coOpen := len(cores) >= 2
	finalize := func(i int) {
		live[i] = false
		liveCount--
		if coOpen {
			// First core out: snapshot every core's progress at this shared
			// cycle. Up to here all cores were live, so CoInsts/CoCycles is
			// each core's drain-free co-located rate (see Result.CoInsts).
			coOpen = false
			for _, c := range cores {
				c.stats.CoInsts = c.stats.Insts
				c.stats.CoCycles = cores[i].cycle
			}
		}
		cores[i].finishRun(start, startAllocs)
	}
	for i, c := range cores {
		live[i] = true
		liveCount++
		if c.finished() {
			finalize(i)
		}
	}

	for liveCount > 0 {
		if cancel != nil && cancel() {
			for i := range cores {
				if live[i] {
					finalize(i)
				}
			}
			break
		}
		for i, c := range cores {
			if live[i] {
				c.stats.HostIters++
				c.stepCycle()
			}
		}
		if allowSkip {
			target := ^uint64(0)
			merged := true
			for i, c := range cores {
				if !live[i] {
					continue
				}
				next, ok := c.skipTarget()
				if !ok {
					merged = false
					break
				}
				if next < target {
					target = next
				}
			}
			if merged {
				for i, c := range cores {
					if live[i] {
						c.applySkip(target)
					}
				}
			}
		}
		for i, c := range cores {
			if !live[i] {
				continue
			}
			c.advanceCycle()
			if c.finished() {
				finalize(i)
			}
		}
	}

	results := make([]*Result, len(cores))
	for i, c := range cores {
		results[i] = &c.stats
	}
	return results
}

// RunMultiWindow drives checkpoint-restored cores through one detailed
// sampling window in lockstep: the same shared clock, arrival-order
// memory serialization and min-across-cores idle-skip merge as a
// full-detail RunMulti, applied to cores whose MaxInsts budgets are the
// window length. A core that retires its budget first drops out of the
// merge while the neighbours finish theirs — the same drain semantics a
// full-detail co-run has at each core's own budget. Every core must
// carry a budget: the suite's kernels never halt, so a window core
// without one would never finish.
func RunMultiWindow(cores []*Core, cancel func() bool) []*Result {
	for i, c := range cores {
		if c.cfg.MaxInsts == 0 {
			panic(fmt.Sprintf("core: RunMultiWindow core %d has no instruction budget", i))
		}
	}
	return RunMulti(cores, cancel)
}
