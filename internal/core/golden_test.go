package core_test

// Golden equivalence test for the scheduler/memory hot-path overhaul: the
// incremental BID/PRIO wakeup scheduler, the word-parallel pickers, and
// the emulator page cache must be cycle-exact with the original
// scan-per-cycle implementation. The constants below were recorded from
// the seed implementation (full RS rescan each cycle, allocation per
// cycle, map lookup per access) on two deterministic workloads; any drift
// in Cycles, Insts, or the CRISP diagnostics is a behavior change, not an
// optimization.

import (
	"testing"

	"crisp/internal/core"
	"crisp/internal/isa"
	"crisp/internal/sim"
	"crisp/internal/workload"
)

const goldenInsts = 60_000

type goldenCase struct {
	workload string
	sched    core.SchedulerKind
	cycles   uint64
	insts    uint64
	// CRISP-only diagnostics; zero for the other policies.
	queueJumpSum   uint64
	issuedCritical uint64
}

var goldenCases = []goldenCase{
	{"pointerchase", core.SchedOldestFirst, 72672, 60000, 0, 0},
	{"pointerchase", core.SchedCRISP, 70793, 60000, 286371, 76258},
	{"pointerchase", core.SchedRandom, 75224, 60000, 0, 0},
	{"mcf", core.SchedOldestFirst, 65952, 60000, 0, 0},
	{"mcf", core.SchedCRISP, 63879, 60000, 320412, 79339},
	{"mcf", core.SchedRandom, 65410, 60000, 0, 0},
}

// goldenImage builds the ref image for a case; for the CRISP policy every
// static load carries the critical prefix so the PRIO path, queue-jump
// diagnostic, and store-forwarding wakeups are all exercised without
// running the full software pipeline.
func goldenImage(t *testing.T, name string, sched core.SchedulerKind) *sim.Image {
	t.Helper()
	img := workload.ByName(name).Build(workload.Ref)
	if sched == core.SchedCRISP {
		p := img.Prog.Clone()
		var pcs []int
		for pc := range p.Insts {
			if p.Insts[pc].Op == isa.OpLoad {
				pcs = append(pcs, pc)
			}
		}
		p.SetCritical(pcs)
		img.Prog = p
	}
	return img
}

func TestGoldenSchedulerEquivalence(t *testing.T) {
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.workload+"/"+tc.sched.String(), func(t *testing.T) {
			cfg := sim.DefaultConfig()
			cfg.Core.MaxInsts = goldenInsts
			r := sim.Run(goldenImage(t, tc.workload, tc.sched), cfg.WithSched(tc.sched))
			if r.Cycles != tc.cycles {
				t.Errorf("Cycles = %d, want %d (IPC %.6f, want %.6f)",
					r.Cycles, tc.cycles, r.IPC(), float64(tc.insts)/float64(tc.cycles))
			}
			if r.Insts != tc.insts {
				t.Errorf("Insts = %d, want %d", r.Insts, tc.insts)
			}
			if r.QueueJumpSum != tc.queueJumpSum {
				t.Errorf("QueueJumpSum = %d, want %d", r.QueueJumpSum, tc.queueJumpSum)
			}
			if r.IssuedCritical != tc.issuedCritical {
				t.Errorf("IssuedCritical = %d, want %d", r.IssuedCritical, tc.issuedCritical)
			}
		})
	}
}
