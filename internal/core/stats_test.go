package core

import "testing"

func TestSchedulerKindString(t *testing.T) {
	if SchedOldestFirst.String() != "ooo" || SchedCRISP.String() != "crisp" || SchedRandom.String() != "random" {
		t.Errorf("scheduler names: %v %v %v", SchedOldestFirst, SchedCRISP, SchedRandom)
	}
}

func TestLoadProfMetrics(t *testing.T) {
	lp := &LoadProf{}
	if lp.AMAT() != 0 || lp.LLCMissRatio() != 0 || lp.AvgMLP() != 0 {
		t.Errorf("zero-value LoadProf metrics not zero")
	}
	lp = &LoadProf{Count: 10, TotalLat: 500, LLCMiss: 4, MLPSum: 12}
	if lp.AMAT() != 50 {
		t.Errorf("AMAT = %v", lp.AMAT())
	}
	if lp.LLCMissRatio() != 0.4 {
		t.Errorf("miss ratio = %v", lp.LLCMissRatio())
	}
	if lp.AvgMLP() != 3 {
		t.Errorf("avg MLP = %v", lp.AvgMLP())
	}
}

func TestBranchProfMetrics(t *testing.T) {
	bp := &BranchProf{}
	if bp.MispredictRate() != 0 {
		t.Errorf("zero-value mispredict rate = %v", bp.MispredictRate())
	}
	bp = &BranchProf{Count: 8, Mispred: 2}
	if bp.MispredictRate() != 0.25 {
		t.Errorf("mispredict rate = %v", bp.MispredictRate())
	}
}

func TestResultMetrics(t *testing.T) {
	r := &Result{}
	if r.IPC() != 0 || r.BranchMPKI() != 0 || r.LLCMPKI() != 0 || r.L1IMPKI() != 0 {
		t.Errorf("zero-value Result metrics not zero")
	}
	r = &Result{Cycles: 1000, Insts: 2000, BranchMispreds: 4}
	r.LLC.Misses = 6
	r.LLC.MergedMisses = 2
	r.L1I.Misses = 1
	if r.IPC() != 2 {
		t.Errorf("IPC = %v", r.IPC())
	}
	if r.BranchMPKI() != 2 {
		t.Errorf("branch MPKI = %v", r.BranchMPKI())
	}
	if r.LLCMPKI() != 4 {
		t.Errorf("LLC MPKI = %v", r.LLCMPKI())
	}
	if r.L1IMPKI() != 0.5 {
		t.Errorf("L1I MPKI = %v", r.L1IMPKI())
	}
}
