package core

import (
	"math/rand"
	"testing"

	"crisp/internal/cache"
	"crisp/internal/emu"
	"crisp/internal/isa"
	"crisp/internal/program"
)

func runProg(t *testing.T, cfg Config, p *program.Program, mem *emu.Memory, setup func(*emu.Emulator)) *Result {
	t.Helper()
	em := emu.New(p, mem)
	if setup != nil {
		setup(em)
	}
	c := New(cfg, p, em, cache.NewHierarchy(cache.DefaultHierConfig()), nil)
	return c.Run()
}

// straightLine emits a hot loop of independent adds.
func straightLine(iters int) *program.Program {
	b := program.NewBuilder("straight")
	b.MovI(isa.R(1), 0)
	b.MovI(isa.R(2), int64(iters))
	b.Label("loop")
	for i := 0; i < 12; i++ {
		b.AddI(isa.R(16+i%8), isa.R(8+i%8), 1) // src regs 8..15 never written
	}
	b.AddI(isa.R(1), isa.R(1), 1)
	b.Blt(isa.R(1), isa.R(2), "loop")
	b.Halt()
	return b.MustBuild()
}

// depChain emits a hot loop of serially dependent adds.
func depChain(iters int) *program.Program {
	b := program.NewBuilder("chain")
	b.MovI(isa.R(1), 0)
	b.MovI(isa.R(2), int64(iters))
	b.MovI(isa.R(3), 0)
	b.Label("loop")
	for i := 0; i < 12; i++ {
		b.AddI(isa.R(3), isa.R(3), 1)
	}
	b.AddI(isa.R(1), isa.R(1), 1)
	b.Blt(isa.R(1), isa.R(2), "loop")
	b.Halt()
	return b.MustBuild()
}

func TestCommitCountMatchesFunctional(t *testing.T) {
	p := depChain(100)
	want := emu.New(p, nil).Run(0)
	res := runProg(t, DefaultConfig(), p, nil, nil)
	if res.Insts != want {
		t.Errorf("committed %d insts, want %d", res.Insts, want)
	}
	if res.Cycles == 0 || res.IPC() <= 0 {
		t.Errorf("bogus cycles/IPC: %d / %v", res.Cycles, res.IPC())
	}
}

func TestILPExploitedOnIndependentOps(t *testing.T) {
	ind := runProg(t, DefaultConfig(), straightLine(2000), nil, nil)
	dep := runProg(t, DefaultConfig(), depChain(2000), nil, nil)
	if ind.IPC() < 3.0 {
		t.Errorf("independent-op IPC = %.2f, want >= 3 (4 ALU ports)", ind.IPC())
	}
	if dep.IPC() > 1.6 {
		t.Errorf("dependent-chain IPC = %.2f, want ~1.1 (chain-bound)", dep.IPC())
	}
	if ind.IPC() < 2*dep.IPC() {
		t.Errorf("ILP not exploited: ind %.2f vs dep %.2f", ind.IPC(), dep.IPC())
	}
}

func TestDeterminism(t *testing.T) {
	p := depChain(300)
	a := runProg(t, DefaultConfig(), p, nil, nil)
	b := runProg(t, DefaultConfig(), p, nil, nil)
	if a.Cycles != b.Cycles || a.Insts != b.Insts {
		t.Errorf("nondeterministic: %d/%d vs %d/%d cycles/insts", a.Cycles, a.Insts, b.Cycles, b.Insts)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	b := program.NewBuilder("fwd")
	b.MovI(isa.R(1), 0x10000)
	b.MovI(isa.R(2), 99)
	b.Label("loop")
	b.Store(isa.R(1), 0, isa.R(2))
	b.Load(isa.R(3), isa.R(1), 0)
	b.AddI(isa.R(2), isa.R(2), 1)
	b.AddI(isa.R(4), isa.R(4), 1)
	b.MovI(isa.R(5), 200)
	b.Blt(isa.R(4), isa.R(5), "loop")
	b.Halt()
	res := runProg(t, DefaultConfig(), b.MustBuild(), nil, nil)
	loadPC := 3
	lp := res.Loads[loadPC]
	if lp == nil {
		t.Fatalf("no load profile for pc %d", loadPC)
	}
	if lp.Forwards < lp.Count/2 {
		t.Errorf("forwards = %d of %d loads, expected most to forward", lp.Forwards, lp.Count)
	}
}

func TestBranchMispredictsCostCycles(t *testing.T) {
	// A loop whose inner branch is 50/50 data-dependent (from a seeded
	// xorshift in registers) vs the same loop with the branch always
	// falling through.
	mk := func(random bool) *program.Program {
		b := program.NewBuilder("br")
		b.MovI(isa.R(1), 12345) // rng state
		b.MovI(isa.R(2), 0)     // i
		b.MovI(isa.R(3), 3000)  // n
		b.MovI(isa.R(7), 2)
		b.Label("loop")
		if random {
			// xorshift-ish: r1 = r1 ^ (r1 << 7); odd/even decides branch
			b.Shl(isa.R(4), isa.R(1), 7)
			b.Xor(isa.R(1), isa.R(1), isa.R(4))
			b.Shr(isa.R(5), isa.R(1), 3)
			b.Xor(isa.R(1), isa.R(1), isa.R(5))
			b.Rem(isa.R(6), isa.R(1), isa.R(7))
		} else {
			b.MovI(isa.R(6), 3) // never equal to 1
		}
		b.MovI(isa.R(8), 1)
		b.Beq(isa.R(6), isa.R(8), "skip")
		b.AddI(isa.R(9), isa.R(9), 1)
		b.Label("skip")
		b.AddI(isa.R(2), isa.R(2), 1)
		b.Blt(isa.R(2), isa.R(3), "loop")
		b.Halt()
		return b.MustBuild()
	}
	rnd := runProg(t, DefaultConfig(), mk(true), nil, nil)
	pred := runProg(t, DefaultConfig(), mk(false), nil, nil)
	if rnd.BranchMPKI() < 20 {
		t.Errorf("random branch MPKI = %.1f, expected high", rnd.BranchMPKI())
	}
	if pred.BranchMPKI() > 5 {
		t.Errorf("predictable branch MPKI = %.1f, expected low", pred.BranchMPKI())
	}
	if pred.IPC() <= rnd.IPC() {
		t.Errorf("mispredicts did not cost IPC: pred %.2f vs rnd %.2f", pred.IPC(), rnd.IPC())
	}
}

func TestPerfectBPEliminatesMispredicts(t *testing.T) {
	b := program.NewBuilder("r")
	b.MovI(isa.R(1), 99991)
	b.MovI(isa.R(2), 0)
	b.MovI(isa.R(3), 1000)
	b.MovI(isa.R(7), 2)
	b.MovI(isa.R(8), 1)
	b.Label("loop")
	b.Shl(isa.R(4), isa.R(1), 13)
	b.Xor(isa.R(1), isa.R(1), isa.R(4))
	b.Rem(isa.R(6), isa.R(1), isa.R(7))
	b.Beq(isa.R(6), isa.R(8), "skip")
	b.Nop()
	b.Label("skip")
	b.AddI(isa.R(2), isa.R(2), 1)
	b.Blt(isa.R(2), isa.R(3), "loop")
	b.Halt()
	p := b.MustBuild()
	cfg := DefaultConfig()
	cfg.PerfectBP = true
	res := runProg(t, cfg, p, nil, nil)
	if res.BranchMispreds != 0 {
		t.Errorf("perfect BP mispredicted %d times", res.BranchMispreds)
	}
}

// buildPointerChase builds the Figure 2 kernel: an outer linked-list
// traversal whose next-pointer load misses the LLC, and an inner
// vector-multiply loop over an L1-resident array. The inner loop dispatches
// in order and keeps the two load ports saturated, so the baseline
// scheduler queues the delinquent pointer load behind older ready vector
// loads — the pathology CRISP's PRIO vector removes.
//
// Returns the program, the node region base, node placement slots, and the
// static PCs of the critical slice (the pointer load and the loop branch
// feeding the next iteration).
func buildPointerChase(nodes, vecSize int) (*program.Program, *emu.Memory, []uint64, []int) {
	const (
		nodeRegion = uint64(0x1000_0000)
		vecRegion  = uint64(0x2000_0000)
	)
	r := rand.New(rand.NewSource(42))
	perm := r.Perm(nodes)
	slots := make([]uint64, nodes)
	for i := range slots {
		slots[i] = nodeRegion + uint64(perm[i])*64
	}
	mem := emu.NewMemory()
	for i := 0; i < nodes; i++ {
		next := int64(0)
		if i+1 < nodes {
			next = int64(slots[i+1])
		}
		mem.WriteWord(slots[i], next)           // node.next
		mem.WriteWord(slots[i]+8, int64(i)*3+1) // node.val
	}
	for i := 0; i < vecSize+8; i++ {
		mem.WriteWord(vecRegion+uint64(i)*8, int64(i))
	}

	b := program.NewBuilder("pointerchase")
	cur, val, vbase := isa.R(1), isa.R(2), isa.R(3)
	e, lim := isa.R(4), isa.R(5)
	t1, t2, t3, acc := isa.R(8), isa.R(9), isa.R(10), isa.R(11)
	b.MovI(vbase, int64(vecRegion))
	b.MovI(lim, int64(vecSize))
	b.Label("outer")
	// Inner loop, 4x unrolled and load-dense (3 loads per element, shallow
	// element-independent consumers) so that fetch sustains >2 loads/cycle
	// and the load ports stay saturated with ready work.
	b.MovI(e, 0)
	b.Label("inner")
	for u := 0; u < 4; u++ {
		off := int64(u * 8)
		b.LoadIdx(t1, vbase, e, 8, off)
		b.LoadIdx(t2, vbase, e, 8, off+32)
		b.LoadIdx(t3, vbase, e, 8, off+64)
		b.Mul(t1, t1, val)
		b.Add(t2, t2, t3)
	}
	_ = acc
	b.AddI(e, e, 4)
	b.Blt(e, lim, "inner")
	var slice []int
	slice = append(slice, b.PC())
	b.Load(cur, cur, 0) // cur = cur->next   (the delinquent load)
	b.Load(val, cur, 8) // val = cur->val
	b.Bne(cur, isa.R(0), "outer")
	slice = append(slice, b.PC()-1)
	b.Halt()
	return b.MustBuild(), mem, slots, slice
}

func pointerChaseResultN(t testing.TB, sched SchedulerKind, tag bool, nodes, vecSize int, maxInsts uint64) *Result {
	t.Helper()
	p, mem, slots, slice := buildPointerChase(nodes, vecSize)
	p = p.Clone()
	if tag {
		p.SetCritical(slice)
	}
	cfg := DefaultConfig()
	cfg.Scheduler = sched
	cfg.MaxInsts = maxInsts
	em := emu.New(p, mem)
	em.SetReg(isa.R(1), int64(slots[0]))
	c := New(cfg, p, em, cache.NewHierarchy(cache.DefaultHierConfig()), nil)
	return c.Run()
}

// buildMultiChase interleaves `chains` independent linked-list traversals
// with the shared vector work; all pointer loads are delinquent and
// mutually independent, so prioritizing them creates memory-level
// parallelism that the baseline's age-ordered select delays.
func buildMultiChase(nodes, vecSize, chains int) (*program.Program, *emu.Memory, [][]uint64, []int) {
	const vecRegion = uint64(0x2000_0000)
	mem := emu.NewMemory()
	allSlots := make([][]uint64, chains)
	r := rand.New(rand.NewSource(42))
	for ch := 0; ch < chains; ch++ {
		region := uint64(0x1000_0000) + uint64(ch)<<28
		perm := r.Perm(nodes)
		slots := make([]uint64, nodes)
		for i := range slots {
			slots[i] = region + uint64(perm[i])*64
		}
		for i := 0; i < nodes; i++ {
			next := int64(0)
			if i+1 < nodes {
				next = int64(slots[i+1])
			}
			mem.WriteWord(slots[i], next)
			mem.WriteWord(slots[i]+8, int64(i+ch))
		}
		allSlots[ch] = slots
	}
	for i := 0; i < vecSize+8; i++ {
		mem.WriteWord(vecRegion+uint64(i)*8, int64(i))
	}

	b := program.NewBuilder("multichase")
	vbase, e, lim := isa.R(3), isa.R(4), isa.R(5)
	val := isa.R(2)
	t1, t2, t3 := isa.R(8), isa.R(9), isa.R(10)
	// cur pointers in r20..r20+chains-1.
	b.MovI(vbase, int64(vecRegion))
	b.MovI(lim, int64(vecSize))
	b.Label("outer")
	b.MovI(e, 0)
	b.Label("inner")
	for u := 0; u < 4; u++ {
		off := int64(u * 8)
		b.LoadIdx(t1, vbase, e, 8, off)
		b.LoadIdx(t2, vbase, e, 8, off+32)
		b.LoadIdx(t3, vbase, e, 8, off+64)
		b.Mul(t1, t1, val)
		b.Add(t2, t2, t3)
	}
	b.AddI(e, e, 4)
	b.Blt(e, lim, "inner")
	var slice []int
	for ch := 0; ch < chains; ch++ {
		cur := isa.R(20 + ch)
		slice = append(slice, b.PC())
		b.Load(cur, cur, 0)
	}
	b.Load(val, isa.R(20), 8)
	b.Bne(isa.R(20), isa.R(0), "outer")
	slice = append(slice, b.PC()-1)
	b.Halt()
	return b.MustBuild(), mem, allSlots, slice
}

// buildEncodedChase is buildMultiChase with next pointers stored as slot
// indices that must be decoded (load; shl; xor; add) — a 4-deep
// address-generation slice per chain, like hash-table probing or pointer
// compression. Each slice instruction contends with older ready vector
// work in the baseline's age-ordered select, so the delay compounds with
// slice depth.
func buildEncodedChase(nodes, vecSize, chains int) (*program.Program, *emu.Memory, [][]uint64, []int) {
	const vecRegion = uint64(0x2000_0000)
	mem := emu.NewMemory()
	allSlots := make([][]uint64, chains)
	r := rand.New(rand.NewSource(42))
	for ch := 0; ch < chains; ch++ {
		region := uint64(0x1000_0000) + uint64(ch)<<28
		perm := r.Perm(nodes)
		slots := make([]uint64, nodes)
		for i := range slots {
			slots[i] = region + uint64(perm[i])*64
		}
		for i := 0; i < nodes; i++ {
			// Encoded next: slot index of the successor, XOR-scrambled.
			nextIdx := int64(perm[(i+1)%nodes]) ^ 0x5a5a
			mem.WriteWord(slots[i], nextIdx)
			mem.WriteWord(slots[i]+8, int64(i+ch))
		}
		allSlots[ch] = slots
	}
	for i := 0; i < vecSize+8; i++ {
		mem.WriteWord(vecRegion+uint64(i)*8, int64(i))
	}

	b := program.NewBuilder("encodedchase")
	vbase, e, lim := isa.R(3), isa.R(4), isa.R(5)
	val, mask := isa.R(2), isa.R(6)
	t1, t2, t3, tmp := isa.R(8), isa.R(9), isa.R(10), isa.R(11)
	b.MovI(vbase, int64(vecRegion))
	b.MovI(lim, int64(vecSize))
	b.MovI(mask, 0x5a5a)
	for ch := 0; ch < chains; ch++ {
		b.MovI(isa.R(12+ch), int64(uint64(0x1000_0000)+uint64(ch)<<28))
	}
	b.Label("outer")
	b.MovI(e, 0)
	b.Label("inner")
	for u := 0; u < 4; u++ {
		off := int64(u * 8)
		b.LoadIdx(t1, vbase, e, 8, off)
		b.LoadIdx(t2, vbase, e, 8, off+32)
		b.LoadIdx(t3, vbase, e, 8, off+64)
		b.Mul(t1, t1, val)
		b.Add(t2, t2, t3)
	}
	b.AddI(e, e, 4)
	b.Blt(e, lim, "inner")
	var slice []int
	for ch := 0; ch < chains; ch++ {
		cur := isa.R(20 + ch)
		start := b.PC()
		b.Load(tmp, cur, 0)           // encoded index
		b.Xor(tmp, tmp, mask)         // descramble
		b.Shl(tmp, tmp, 6)            // *64
		b.Add(cur, isa.R(12+ch), tmp) // region + offset
		for pc := start; pc < b.PC(); pc++ {
			slice = append(slice, pc)
		}
	}
	b.Load(val, isa.R(20), 8)
	b.Bne(isa.R(20), isa.R(0), "outer")
	slice = append(slice, b.PC()-1)
	b.Halt()
	return b.MustBuild(), mem, allSlots, slice
}

func encodedChaseResult(t testing.TB, sched SchedulerKind, tag bool, nodes, vec, chains int, maxInsts uint64) *Result {
	t.Helper()
	p, mem, allSlots, slice := buildEncodedChase(nodes, vec, chains)
	p = p.Clone()
	if tag {
		p.SetCritical(slice)
	}
	cfg := DefaultConfig()
	cfg.Scheduler = sched
	cfg.MaxInsts = maxInsts
	em := emu.New(p, mem)
	for ch := 0; ch < chains; ch++ {
		em.SetReg(isa.R(20+ch), int64(allSlots[ch][0]))
	}
	c := New(cfg, p, em, cache.NewHierarchy(cache.DefaultHierConfig()), nil)
	return c.Run()
}

func multiChaseResult(t testing.TB, sched SchedulerKind, tag bool, nodes, vec, chains int, maxInsts uint64) *Result {
	t.Helper()
	p, mem, allSlots, slice := buildMultiChase(nodes, vec, chains)
	p = p.Clone()
	if tag {
		p.SetCritical(slice)
	}
	cfg := DefaultConfig()
	cfg.Scheduler = sched
	cfg.MaxInsts = maxInsts
	em := emu.New(p, mem)
	for ch := 0; ch < chains; ch++ {
		em.SetReg(isa.R(20+ch), int64(allSlots[ch][0]))
	}
	c := New(cfg, p, em, cache.NewHierarchy(cache.DefaultHierConfig()), nil)
	return c.Run()
}

// TestCalibratePointerChase logs CRISP gain across inner-loop sizes; run
// with -v to inspect. It asserts nothing beyond completion.
func TestCalibratePointerChase(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	for _, nodes := range []int{8000, 40000} {
		for _, vec := range []int{32, 64, 128} {
			base := pointerChaseResultN(t, SchedOldestFirst, false, nodes, vec, 150_000)
			crisp := pointerChaseResultN(t, SchedCRISP, true, nodes, vec, 150_000)
			t.Logf("nodes=%5d vec=%3d: OOO %.3f CRISP %.3f gain %+.1f%% (jump=%.1f, llcMPKI=%.1f)",
				nodes, vec, base.IPC(), crisp.IPC(), (crisp.IPC()/base.IPC()-1)*100,
				float64(crisp.QueueJumpSum)/float64(crisp.IssuedCritical+1), base.LLCMPKI())
		}
	}
	for _, chains := range []int{2, 4, 8} {
		for _, vec := range []int{32, 64, 128} {
			base := multiChaseResult(t, SchedOldestFirst, false, 20000, vec, chains, 150_000)
			crisp := multiChaseResult(t, SchedCRISP, true, 20000, vec, chains, 150_000)
			t.Logf("chains=%d vec=%3d: OOO %.3f CRISP %.3f gain %+.1f%% (jump=%.1f, llcMPKI=%.1f)",
				chains, vec, base.IPC(), crisp.IPC(), (crisp.IPC()/base.IPC()-1)*100,
				float64(crisp.QueueJumpSum)/float64(crisp.IssuedCritical+1), base.LLCMPKI())
		}
	}
	for _, chains := range []int{2, 4, 8} {
		for _, vec := range []int{32, 64, 128} {
			base := encodedChaseResult(t, SchedOldestFirst, false, 20000, vec, chains, 150_000)
			crisp := encodedChaseResult(t, SchedCRISP, true, 20000, vec, chains, 150_000)
			t.Logf("enc chains=%d vec=%3d: OOO %.3f CRISP %.3f gain %+.1f%% (jump=%.1f, llcMPKI=%.1f)",
				chains, vec, base.IPC(), crisp.IPC(), (crisp.IPC()/base.IPC()-1)*100,
				float64(crisp.QueueJumpSum)/float64(crisp.IssuedCritical+1), base.LLCMPKI())
		}
	}
}

func TestCRISPBeatsOOOOnPointerChase(t *testing.T) {
	base := pointerChaseResultN(t, SchedOldestFirst, false, 40000, 64, 150_000)
	crisp := pointerChaseResultN(t, SchedCRISP, true, 40000, 64, 150_000)
	speedup := crisp.IPC() / base.IPC()
	t.Logf("pointer chase: OOO IPC %.3f, CRISP IPC %.3f, speedup %.1f%%",
		base.IPC(), crisp.IPC(), (speedup-1)*100)
	if speedup < 1.01 {
		t.Errorf("CRISP speedup = %.3f, want >= 1.01", speedup)
	}
	if crisp.IssuedCritical == 0 {
		t.Errorf("CRISP never used the PRIO vector")
	}
	if base.Loads == nil {
		t.Fatalf("no load profiles")
	}
	// The delinquent load should show a high LLC miss ratio in the profile.
	var worst *LoadProf
	for _, lp := range base.Loads {
		if worst == nil || lp.LLCMiss > worst.LLCMiss {
			worst = lp
		}
	}
	if worst.LLCMissRatio() < 0.5 {
		t.Errorf("delinquent load LLC miss ratio = %.2f, want >= 0.5", worst.LLCMissRatio())
	}
	if worst.HeadStall == 0 {
		t.Errorf("delinquent load has no ROB-head stalls")
	}
}

func TestCRISPGainScalesWithMLP(t *testing.T) {
	base := multiChaseResult(t, SchedOldestFirst, false, 20000, 64, 4, 150_000)
	crisp := multiChaseResult(t, SchedCRISP, true, 20000, 64, 4, 150_000)
	speedup := crisp.IPC() / base.IPC()
	t.Logf("4-chain chase: OOO %.3f CRISP %.3f speedup %+.1f%%", base.IPC(), crisp.IPC(), (speedup-1)*100)
	if speedup < 1.04 {
		t.Errorf("multi-chain CRISP speedup = %.3f, want >= 1.04", speedup)
	}
	single := pointerChaseResultN(t, SchedCRISP, true, 20000, 64, 150_000)
	singleBase := pointerChaseResultN(t, SchedOldestFirst, false, 20000, 64, 150_000)
	if speedup <= single.IPC()/singleBase.IPC() {
		t.Errorf("MLP did not amplify CRISP gain: multi %.3f vs single %.3f",
			speedup, single.IPC()/singleBase.IPC())
	}
}

func TestCriticalTagIgnoredByBaselineScheduler(t *testing.T) {
	// Tagging must not change baseline (oldest-first) timing.
	plain := pointerChaseResultN(t, SchedOldestFirst, false, 40000, 64, 80_000)
	tagged := pointerChaseResultN(t, SchedOldestFirst, true, 40000, 64, 80_000)
	if plain.Cycles != tagged.Cycles {
		// Tagging changes code layout (prefix bytes) and hence icache
		// behaviour, so allow a small delta.
		d := float64(plain.Cycles) - float64(tagged.Cycles)
		if d < 0 {
			d = -d
		}
		if d/float64(plain.Cycles) > 0.02 {
			t.Errorf("baseline cycles changed by %.1f%% from tagging alone", d/float64(plain.Cycles)*100)
		}
	}
}

func TestRandomSchedulerWorseThanAgeOrdered(t *testing.T) {
	base := pointerChaseResultN(t, SchedOldestFirst, false, 40000, 64, 80_000)
	rnd := pointerChaseResultN(t, SchedRandom, false, 40000, 64, 80_000)
	if rnd.IPC() > base.IPC()*1.05 {
		t.Errorf("random scheduler (%.3f) beat age-ordered (%.3f)", rnd.IPC(), base.IPC())
	}
}

func TestUPCWindowsRecorded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UPCWindow = 100
	res := runProg(t, cfg, depChain(5000), nil, nil)
	if len(res.UPCWindows) == 0 {
		t.Fatalf("no UPC windows recorded")
	}
	var sum float64
	for _, u := range res.UPCWindows {
		sum += u * 100
	}
	if sum > float64(res.Insts) || sum < float64(res.Insts)/2 {
		t.Errorf("UPC windows sum %.0f inconsistent with %d insts", sum, res.Insts)
	}
}

func TestROBSizeLimitsWindow(t *testing.T) {
	// A long-latency load followed by many independent ops: a bigger ROB
	// lets more of them retire under the miss shadow.
	mk := func() (*program.Program, *emu.Memory) {
		b := program.NewBuilder("window")
		b.MovI(isa.R(1), 0x4000_0000)
		b.MovI(isa.R(30), 0)
		b.MovI(isa.R(31), 60)
		b.Label("outer")
		b.Mul(isa.R(2), isa.R(1), isa.R(31))
		b.Rem(isa.R(2), isa.R(2), isa.R(1))
		b.Load(isa.R(3), isa.R(1), 0) // DRAM miss (sequential 8KB stride)
		b.AddI(isa.R(1), isa.R(1), 8192)
		for i := 0; i < 64; i++ {
			b.AddI(isa.R(8+i%8), isa.R(16+i%8), 1)
		}
		b.AddI(isa.R(30), isa.R(30), 1)
		b.Blt(isa.R(30), isa.R(31), "outer")
		b.Halt()
		return b.MustBuild(), emu.NewMemory()
	}
	small := DefaultConfig()
	small.ROBSize = 32
	small.RSSize = 16
	big := DefaultConfig()
	p1, m1 := mk()
	p2, m2 := mk()
	rs := runProg(t, small, p1, m1, nil)
	rb := runProg(t, big, p2, m2, nil)
	if rb.IPC() <= rs.IPC() {
		t.Errorf("bigger ROB not faster: %d-entry %.3f vs 32-entry %.3f", big.ROBSize, rb.IPC(), rs.IPC())
	}
}
