package core_test

import (
	"reflect"
	"testing"

	"crisp/internal/core"
	"crisp/internal/sim"
)

// TestSkipEquivalence pins the tentpole invariant of next-event idle-cycle
// skipping: with DebugNoSkip the core steps every simulated cycle through
// the full stage loop; without it, provably idle intervals are jumped and
// bulk-charged. The two paths must produce identical results — every
// counter, the exact cycle breakdown, the occupancy/latency histograms,
// the per-PC load and branch profiles, and the UPC timeline — on a
// latency-bound pointer chase, a DRAM-thrashing kernel (mcf) and a branchy
// one (xalancbmk), under both the baseline and CRISP schedulers (the CRISP
// cases tag all loads critical, so the PRIO path is exercised too).
// UPCWindow is set off the occupancy-sample period so the window-boundary
// and sample-boundary clips both land mid-skip.
func TestSkipEquivalence(t *testing.T) {
	for _, name := range []string{"pointerchase", "mcf", "xalancbmk"} {
		for _, sched := range []core.SchedulerKind{core.SchedOldestFirst, core.SchedCRISP} {
			name, sched := name, sched
			t.Run(name+"/"+sched.String(), func(t *testing.T) {
				run := func(noskip bool) *core.Result {
					cfg := sim.DefaultConfig().WithSched(sched)
					cfg.Core.MaxInsts = 60_000
					cfg.Core.UPCWindow = 500
					cfg.Core.DebugNoSkip = noskip
					r := sim.Run(goldenImage(t, name, sched), cfg)
					// Host-side measurements legitimately differ between
					// the two paths; everything else must match exactly.
					r.HostNS, r.HostAllocs, r.HostIters, r.SkippedCycles = 0, 0, 0, 0
					return r
				}
				fast, slow := run(false), run(true)
				if !reflect.DeepEqual(fast, slow) {
					t.Errorf("skip path diverged from per-cycle path:\n"+
						"  cycles      %d vs %d\n"+
						"  insts       %d vs %d\n"+
						"  breakdown   %v vs %v\n"+
						"  headstalls  %d vs %d\n"+
						"  fetchstall  %d vs %d\n"+
						"  upcwindows  %d vs %d entries",
						fast.Cycles, slow.Cycles,
						fast.Insts, slow.Insts,
						fast.Breakdown, slow.Breakdown,
						fast.ROBHeadStalls, slow.ROBHeadStalls,
						fast.FetchStallCycle, slow.FetchStallCycle,
						len(fast.UPCWindows), len(slow.UPCWindows))
				}
			})
		}
	}
}

// TestSkipCoverage pins that skipping actually engages where it matters:
// on the DRAM-bound kernel the majority of simulated cycles must be
// covered by next-event jumps (the ISSUE's SkippedCycles/Cycles >= 0.5
// acceptance bar), and the per-cycle path must report none.
func TestSkipCoverage(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Core.MaxInsts = 60_000
	r := sim.Run(goldenImage(t, "mcf", core.SchedOldestFirst), cfg)
	if r.SkippedFrac() < 0.5 {
		t.Errorf("mcf skipped fraction = %.3f, want >= 0.5 (skipped %d of %d cycles)",
			r.SkippedFrac(), r.SkippedCycles, r.Cycles)
	}
	if r.HostIters+r.SkippedCycles != r.Cycles {
		t.Errorf("iteration accounting broken: HostIters %d + SkippedCycles %d != Cycles %d",
			r.HostIters, r.SkippedCycles, r.Cycles)
	}
	cfg.Core.DebugNoSkip = true
	if r := sim.Run(goldenImage(t, "mcf", core.SchedOldestFirst), cfg); r.SkippedCycles != 0 {
		t.Errorf("DebugNoSkip run reported %d skipped cycles", r.SkippedCycles)
	}
}
