package core

import (
	"math/rand"
	"testing"
)

// naive reference implementations, one bit at a time.

func naiveNextSet(b *Bitset, from int) int {
	if from < 0 {
		from = 0
	}
	for i := from; i < b.Len(); i++ {
		if b.Get(i) {
			return i
		}
	}
	return -1
}

func naiveSelectNth(b *Bitset, k int) int {
	if k < 0 {
		return -1
	}
	for i := 0; i < b.Len(); i++ {
		if b.Get(i) {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return -1
}

func naiveAndCount(b *Bitset, mask []uint64) int {
	c := 0
	for i := 0; i < b.Len(); i++ {
		w := i >> 6
		if w >= len(mask) {
			break
		}
		if b.Get(i) && mask[w]&(1<<uint(i&63)) != 0 {
			c++
		}
	}
	return c
}

func TestBitsetNextSet(t *testing.T) {
	b := NewBitset(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		b.Set(i)
	}
	cases := []struct{ from, want int }{
		{-5, 0},  // negative from clamps to 0
		{0, 0},   // hit at from itself
		{1, 1},   // within first word
		{2, 63},  // skip to end of word 0
		{64, 64}, // exactly on a word boundary
		{66, 127},
		{129, 199}, // cross an entirely empty word (word 2)
		{199, 199}, // last valid bit
		{200, -1},  // from past capacity
	}
	for _, c := range cases {
		if got := b.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	empty := NewBitset(130)
	if got := empty.NextSet(0); got != -1 {
		t.Errorf("empty NextSet(0) = %d, want -1", got)
	}
}

func TestBitsetSelectNth(t *testing.T) {
	b := NewBitset(200)
	set := []int{3, 63, 64, 100, 128, 199} // spans three words
	for _, i := range set {
		b.Set(i)
	}
	for k, want := range set {
		if got := b.SelectNth(k); got != want {
			t.Errorf("SelectNth(%d) = %d, want %d", k, got, want)
		}
	}
	if got := b.SelectNth(len(set)); got != -1 {
		t.Errorf("SelectNth past count = %d, want -1", got)
	}
	if got := b.SelectNth(-1); got != -1 {
		t.Errorf("SelectNth(-1) = %d, want -1", got)
	}
}

func TestBitsetAndCount(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
	}
	full := []uint64{^uint64(0), ^uint64(0), ^uint64(0)}
	if got := b.AndCount(full); got != 4 {
		t.Errorf("AndCount(all-ones) = %d, want 4", got)
	}
	// Mask shorter than the bitset: words beyond it count as zero.
	if got := b.AndCount(full[:1]); got != 2 {
		t.Errorf("AndCount(one word) = %d, want 2", got)
	}
	if got := b.AndCount(nil); got != 0 {
		t.Errorf("AndCount(nil) = %d, want 0", got)
	}
	only64 := []uint64{0, 1, 0}
	if got := b.AndCount(only64); got != 1 {
		t.Errorf("AndCount(bit 64 only) = %d, want 1", got)
	}
}

// TestBitsetProperty cross-checks the word-parallel primitives against the
// naive bit-at-a-time references on random contents, including sizes that
// are not multiples of 64.
func TestBitsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 63, 64, 65, 128, 160, 257} {
		for trial := 0; trial < 50; trial++ {
			b := NewBitset(n)
			for i := 0; i < n; i++ {
				if rng.Intn(3) == 0 {
					b.Set(i)
				}
			}
			mask := make([]uint64, rng.Intn(len(b.Words())+1))
			for i := range mask {
				mask[i] = rng.Uint64()
			}
			for from := -1; from <= n; from++ {
				if got, want := b.NextSet(from), naiveNextSet(b, from); got != want {
					t.Fatalf("n=%d NextSet(%d) = %d, want %d", n, from, got, want)
				}
			}
			for k := -1; k <= b.Count()+1; k++ {
				if got, want := b.SelectNth(k), naiveSelectNth(b, k); got != want {
					t.Fatalf("n=%d SelectNth(%d) = %d, want %d", n, k, got, want)
				}
			}
			if got, want := b.AndCount(mask), naiveAndCount(b, mask); got != want {
				t.Fatalf("n=%d AndCount = %d, want %d", n, got, want)
			}
			// Count/Any stay consistent with the reference view.
			cnt := 0
			for i := 0; i < n; i++ {
				if b.Get(i) {
					cnt++
				}
			}
			if b.Count() != cnt || b.Any() != (cnt > 0) {
				t.Fatalf("n=%d Count=%d Any=%v, want %d/%v", n, b.Count(), b.Any(), cnt, cnt > 0)
			}
		}
	}
}
