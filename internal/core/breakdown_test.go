package core_test

// Cycle-accounting invariants: the metrics layer attributes every commit
// slot of every cycle, so the breakdown is an exact partition — not a
// sampled approximation. These tests pin that property across workloads
// and scheduling policies, plus the CRISP headline effect (the DRAM-bound
// bucket shrinking under criticality scheduling).

import (
	"testing"

	"crisp/internal/core"
	"crisp/internal/metrics"
	"crisp/internal/sim"
)

// TestBreakdownExactPartition checks, over two workloads and all three
// schedulers, that sum(stall buckets) + committed slots == Cycles ×
// CommitWidth and that committed slots equal committed µops.
func TestBreakdownExactPartition(t *testing.T) {
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.workload+"/"+tc.sched.String(), func(t *testing.T) {
			cfg := sim.DefaultConfig()
			cfg.Core.MaxInsts = goldenInsts
			r := sim.Run(goldenImage(t, tc.workload, tc.sched), cfg.WithSched(tc.sched))

			want := r.Cycles * uint64(cfg.Core.CommitWidth)
			if got := r.Breakdown.Total(); got != want {
				t.Errorf("Breakdown.Total() = %d, want Cycles×CommitWidth = %d (off by %d)",
					got, want, int64(got)-int64(want))
			}
			if r.Breakdown.Committed != r.Insts {
				t.Errorf("Breakdown.Committed = %d, want Insts = %d", r.Breakdown.Committed, r.Insts)
			}
			if r.Breakdown.StallSlots() == 0 {
				t.Errorf("no stall slots attributed on a memory-bound workload")
			}
			if got := r.Hists.LoadLat.Total(); got != r.LoadExecs {
				t.Errorf("LoadLat observations = %d, want LoadExecs = %d", got, r.LoadExecs)
			}
			if r.Hists.OccROB.Total() == 0 {
				t.Errorf("no ROB occupancy samples over %d cycles", r.Cycles)
			}
		})
	}
}

// TestBreakdownDRAMBoundShrinksUnderCRISP pins the paper's headline
// mechanism as seen by the accounting layer: prioritizing the critical
// slice overlaps DRAM misses, so the MemDRAM ROB-head bucket must shrink
// versus the oldest-first baseline on the pointer-chasing workload.
func TestBreakdownDRAMBoundShrinksUnderCRISP(t *testing.T) {
	run := func(sched core.SchedulerKind) *core.Result {
		cfg := sim.DefaultConfig()
		cfg.Core.MaxInsts = goldenInsts
		return sim.Run(goldenImage(t, "pointerchase", sched), cfg.WithSched(sched))
	}
	base := run(core.SchedOldestFirst)
	crisp := run(core.SchedCRISP)
	b := base.Breakdown.Stalls[metrics.MemDRAM]
	c := crisp.Breakdown.Stalls[metrics.MemDRAM]
	if b == 0 {
		t.Fatal("baseline pointerchase shows no DRAM-bound slots; workload no longer memory-bound")
	}
	if c >= b {
		t.Errorf("CRISP MemDRAM slots = %d, want < baseline %d", c, b)
	}
}

// TestBreakdownPerPCLatHist checks the per-PC latency histograms agree
// with the aggregate: summing every load PC's histogram reproduces the
// run-level load-latency histogram.
func TestBreakdownPerPCLatHist(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Core.MaxInsts = goldenInsts
	r := sim.Run(goldenImage(t, "mcf", core.SchedOldestFirst), cfg)
	var sum metrics.Hist
	for _, lp := range r.Loads {
		sum.Add(&lp.LatHist)
	}
	if sum != r.Hists.LoadLat {
		t.Errorf("per-PC LatHist sum != aggregate LoadLat (totals %d vs %d, sums %d vs %d)",
			sum.Total(), r.Hists.LoadLat.Total(), sum.Sum, r.Hists.LoadLat.Sum)
	}
}
