package core

import "crisp/internal/isa"

// SchedulerKind selects the issue-selection policy.
type SchedulerKind int

// Scheduler policies.
const (
	// SchedOldestFirst is the Table 1 baseline: the age-matrix picker
	// selects the oldest ready instruction per port
	// ("6-oldest-ready-instructions-first").
	SchedOldestFirst SchedulerKind = iota
	// SchedCRISP extends the picker with the PRIO vector: the oldest
	// ready-and-critical instruction wins; if none exists the oldest ready
	// instruction is selected (Figure 6).
	SchedCRISP
	// SchedRandom picks uniformly among ready instructions (a RAND
	// scheduler without the age matrix), used for the ablation bench.
	SchedRandom
)

func (s SchedulerKind) String() string {
	switch s {
	case SchedOldestFirst:
		return "ooo"
	case SchedCRISP:
		return "crisp"
	default:
		return "random"
	}
}

// Config holds the core microarchitectural parameters (Table 1 defaults
// via DefaultConfig).
type Config struct {
	FetchWidth  int
	CommitWidth int
	ROBSize     int
	RSSize      int
	LoadQueue   int
	StoreQueue  int

	Ports [isa.NumPortClasses]int

	Scheduler SchedulerKind

	// FrontendDepth is the fetch-to-dispatch pipeline depth in cycles.
	FrontendDepth int
	// RedirectPenalty is the extra frontend refill delay after a resolved
	// misprediction, on top of waiting for the branch to execute.
	RedirectPenalty int
	// BTBMissPenalty is the decode-redirect bubble for a taken branch
	// whose target missed the BTB.
	BTBMissPenalty int

	// PerfectBP replaces TAGE with an oracle direction predictor
	// (Section 5.3 study).
	PerfectBP bool
	// FDIP enables fetch-directed instruction prefetching into the L1I.
	FDIP bool
	// FTQSize bounds how far ahead (in code lines) FDIP prefetches.
	FTQSize int

	// BTBEntries and BTBWays size the branch target buffer.
	BTBEntries, BTBWays int
	// RASEntries sizes the return address stack.
	RASEntries int

	// UPCWindow, when nonzero, records retired µops per window of this
	// many cycles (Figure 1 timelines).
	UPCWindow int

	// OccSampleEvery is the occupancy-sampling period in cycles for the
	// ROB/RS/LQ/SQ/MSHR histograms; it is rounded up to a power of two.
	// <= 0 selects the default (256). Cycle attribution itself is always
	// on and per-cycle exact — only occupancy is sampled.
	OccSampleEvery int

	// DebugNoSkip disables next-event idle-cycle skipping, stepping every
	// simulated cycle through the full stage loop. Results are identical
	// either way — skipping is cycle-exact by construction and the
	// equivalence test pins it — so the flag exists for debugging the
	// timing model and for the slow half of that test.
	DebugNoSkip bool

	// MaxInsts bounds the number of instructions simulated (0 = to Halt).
	MaxInsts uint64
}

// DefaultConfig returns the Table 1 core: 6-wide fetch/retire, 224-entry
// ROB, 96-entry unified RS, 64-entry load buffer, 128-entry store buffer,
// 4 ALU + 2 load + 1 store ports, TAGE, 8K-entry BTB, FDIP with 128 FTQ
// entries, oldest-ready-first scheduling.
func DefaultConfig() Config {
	return Config{
		FetchWidth:      6,
		CommitWidth:     6,
		ROBSize:         224,
		RSSize:          96,
		LoadQueue:       64,
		StoreQueue:      128,
		Ports:           isa.Ports(),
		Scheduler:       SchedOldestFirst,
		FrontendDepth:   5,
		RedirectPenalty: 10,
		BTBMissPenalty:  8,
		FDIP:            true,
		FTQSize:         128,
		BTBEntries:      8192,
		BTBWays:         4,
		RASEntries:      32,
	}
}
