package isa

import (
	"strings"
	"testing"
)

func TestRegValidity(t *testing.T) {
	if NoReg.Valid() {
		t.Errorf("NoReg.Valid() = true, want false")
	}
	for i := 0; i < NumRegs; i++ {
		if !R(i).Valid() {
			t.Errorf("R(%d).Valid() = false, want true", i)
		}
	}
}

func TestRPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("R(NumRegs) did not panic")
		}
	}()
	R(NumRegs)
}

func TestOpClassification(t *testing.T) {
	tests := []struct {
		op                Op
		branch, cond, mem bool
	}{
		{OpAdd, false, false, false},
		{OpLoad, false, false, true},
		{OpStore, false, false, true},
		{OpBeq, true, true, false},
		{OpBne, true, true, false},
		{OpBlt, true, true, false},
		{OpBge, true, true, false},
		{OpJmp, true, false, false},
		{OpCall, true, false, false},
		{OpRet, true, false, false},
		{OpHalt, false, false, false},
	}
	for _, tt := range tests {
		if got := tt.op.IsBranch(); got != tt.branch {
			t.Errorf("%v.IsBranch() = %v, want %v", tt.op, got, tt.branch)
		}
		if got := tt.op.IsCondBranch(); got != tt.cond {
			t.Errorf("%v.IsCondBranch() = %v, want %v", tt.op, got, tt.cond)
		}
		if got := tt.op.IsMem(); got != tt.mem {
			t.Errorf("%v.IsMem() = %v, want %v", tt.op, got, tt.mem)
		}
	}
}

func TestOpNamesComplete(t *testing.T) {
	for o := Op(0); o < numOps; o++ {
		if s := o.String(); strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no name", o)
		}
	}
}

func TestLatencies(t *testing.T) {
	if OpAdd.Latency() != 1 {
		t.Errorf("add latency = %d, want 1", OpAdd.Latency())
	}
	if OpDiv.Latency() <= OpMul.Latency() {
		t.Errorf("div latency %d should exceed mul latency %d", OpDiv.Latency(), OpMul.Latency())
	}
	if OpDiv.Pipelined() || OpFDiv.Pipelined() {
		t.Errorf("divides must be unpipelined")
	}
	if !OpAdd.Pipelined() || !OpLoad.Pipelined() {
		t.Errorf("add/load must be pipelined")
	}
}

func TestPortClasses(t *testing.T) {
	if OpLoad.Class() != PortLoad {
		t.Errorf("load port class = %v", OpLoad.Class())
	}
	if OpStore.Class() != PortStore {
		t.Errorf("store port class = %v", OpStore.Class())
	}
	for _, o := range []Op{OpAdd, OpMul, OpDiv, OpBeq, OpJmp, OpFMul} {
		if o.Class() != PortALU {
			t.Errorf("%v port class = %v, want ALU", o, o.Class())
		}
	}
	p := Ports()
	if p[PortALU] != 4 || p[PortLoad] != 2 || p[PortStore] != 1 {
		t.Errorf("Ports() = %v, want 4/2/1 per Table 1", p)
	}
}

func TestCriticalPrefixAddsOneByte(t *testing.T) {
	for o := Op(0); o < numOps; o++ {
		plain := Inst{Op: o, Dst: R(1), Src1: R(2), Src2: R(3)}
		crit := plain
		crit.Critical = true
		if crit.EncodedSize() != plain.EncodedSize()+1 {
			t.Errorf("%v: critical size %d, plain %d; want +1", o, crit.EncodedSize(), plain.EncodedSize())
		}
		if plain.EncodedSize() <= 0 {
			t.Errorf("%v: non-positive size", o)
		}
	}
}

func TestSrcs(t *testing.T) {
	in := Inst{Op: OpAdd, Dst: R(1), Src1: R(2), Src2: R(3)}
	if got := in.Srcs(nil); len(got) != 2 || got[0] != R(2) || got[1] != R(3) {
		t.Errorf("Srcs = %v", got)
	}
	in = Inst{Op: OpMovI, Dst: R(1), Src1: NoReg, Src2: NoReg}
	if got := in.Srcs(nil); len(got) != 0 {
		t.Errorf("MovI Srcs = %v, want empty", got)
	}
	in = Inst{Op: OpStore, Src1: R(4), Src2: R(5), Dst: NoReg}
	if got := in.Srcs(nil); len(got) != 2 {
		t.Errorf("Store Srcs = %v, want base+value", got)
	}
	if in.HasDst() {
		t.Errorf("store HasDst = true")
	}
}

func TestStringForms(t *testing.T) {
	in := Inst{Op: OpLoad, Dst: R(1), Src1: R(2), Src2: R(3), Scale: 8, Imm: 16}
	if s := in.String(); !strings.Contains(s, "load") || !strings.Contains(s, "r2") {
		t.Errorf("load string = %q", s)
	}
	in.Critical = true
	if s := in.String(); !strings.HasPrefix(s, "crit.") {
		t.Errorf("critical string = %q, want crit. prefix", s)
	}
}
