// Package isa defines the micro-op instruction set executed by the
// functional emulator and timed by the out-of-order core model.
//
// The ISA is a small RISC-style set chosen so that the workload kernels can
// express the access-pattern classes the paper evaluates (pointer chasing,
// strided streams, gathers, hash probes, data-dependent branches) while
// keeping the simulator simple. Every instruction reads at most two source
// registers and writes at most one destination register. Memory operations
// access 8-byte words; effective addresses are byte addresses formed as
// base + index*scale + displacement.
package isa

import "fmt"

// Reg identifies an architectural register. The machine has NumRegs
// general-purpose 64-bit registers R0..R31. R0 is not special. NoReg marks
// an unused operand slot.
type Reg uint8

// NumRegs is the number of architectural registers.
const NumRegs = 32

// NoReg marks an absent register operand.
const NoReg Reg = 0xFF

// R returns the n-th architectural register and panics if out of range.
func R(n int) Reg {
	if n < 0 || n >= NumRegs {
		panic(fmt.Sprintf("isa: register %d out of range", n))
	}
	return Reg(n)
}

// Valid reports whether r names an actual register (not NoReg).
func (r Reg) Valid() bool { return r < NumRegs }

func (r Reg) String() string {
	if !r.Valid() {
		return "--"
	}
	return fmt.Sprintf("r%d", r)
}

// Op enumerates micro-op kinds.
type Op uint8

// Micro-op opcodes.
const (
	OpNop Op = iota
	// Integer ALU.
	OpAdd  // Dst = Src1 + Src2
	OpAddI // Dst = Src1 + Imm
	OpSub  // Dst = Src1 - Src2
	OpMul  // Dst = Src1 * Src2
	OpDiv  // Dst = Src1 / Src2 (0 if divisor 0)
	OpRem  // Dst = Src1 % Src2 (0 if divisor 0)
	OpAnd  // Dst = Src1 & Src2
	OpOr   // Dst = Src1 | Src2
	OpXor  // Dst = Src1 ^ Src2
	OpShl  // Dst = Src1 << (Imm & 63)
	OpShr  // Dst = uint(Src1) >> (Imm & 63)
	OpMov  // Dst = Src1
	OpMovI // Dst = Imm
	// Long-latency arithmetic modeled after FP units. Values are still
	// int64 bit patterns; only the latency class differs from integer ops.
	OpFAdd // Dst = Src1 + Src2 (FP-add latency)
	OpFMul // Dst = Src1 * Src2 (FP-mul latency)
	OpFDiv // Dst = Src1 / Src2 (FP-div latency, unpipelined)
	// Memory.
	OpLoad  // Dst = MEM8[Src1 + Src2*Scale + Imm]
	OpStore // MEM8[Src1 + Imm] = Src2
	// Control flow. Conditional branches compare Src1 against Src2
	// (or zero when Src2 is NoReg) and jump to Target when the condition
	// holds. Targets are static program indices resolved by the assembler.
	OpBeq
	OpBne
	OpBlt  // signed <
	OpBge  // signed >=
	OpJmp  // unconditional direct jump
	OpCall // Dst = return PC; jump to Target
	OpRet  // indirect jump to Src1 (predicted by the RAS)
	// OpHalt terminates the program.
	OpHalt

	numOps
)

var opNames = [numOps]string{
	OpNop: "nop", OpAdd: "add", OpAddI: "addi", OpSub: "sub", OpMul: "mul",
	OpDiv: "div", OpRem: "rem", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpMov: "mov", OpMovI: "movi",
	OpFAdd: "fadd", OpFMul: "fmul", OpFDiv: "fdiv",
	OpLoad: "load", OpStore: "store",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpJmp: "jmp", OpCall: "call", OpRet: "ret", OpHalt: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsBranch reports whether the op redirects control flow.
func (o Op) IsBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpCall, OpRet:
		return true
	}
	return false
}

// IsCondBranch reports whether the op is a conditional direct branch.
func (o Op) IsCondBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// IsMem reports whether the op accesses data memory.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// Inst is a static micro-op. Programs are slices of Inst indexed by static
// PC. Critical carries the CRISP instruction prefix: the single bit of
// hardware-visible information the software pipeline communicates to the
// scheduler.
type Inst struct {
	Op         Op
	Dst        Reg   // destination register, NoReg if none
	Src1, Src2 Reg   // source registers, NoReg if unused
	Imm        int64 // immediate / displacement
	Scale      uint8 // index scale for loads (0 treated as no index)
	Target     int   // static PC of branch target (direct branches)
	Critical   bool  // CRISP critical prefix
}

// Srcs appends the valid source registers of the instruction to dst and
// returns it. Stores read both the base (Src1) and the value (Src2).
func (in *Inst) Srcs(dst []Reg) []Reg {
	if in.Src1.Valid() {
		dst = append(dst, in.Src1)
	}
	if in.Src2.Valid() {
		dst = append(dst, in.Src2)
	}
	return dst
}

// HasDst reports whether the instruction writes a register.
func (in *Inst) HasDst() bool { return in.Dst.Valid() }

// Imm64 returns the displacement as an unsigned 64-bit value suitable for
// wrapping address arithmetic.
func (in *Inst) Imm64() uint64 { return uint64(in.Imm) }

func (in *Inst) String() string {
	s := in.Op.String()
	if in.Critical {
		s = "crit." + s
	}
	switch in.Op {
	case OpLoad:
		return fmt.Sprintf("%s %s, [%s+%s*%d+%d]", s, in.Dst, in.Src1, in.Src2, in.Scale, in.Imm)
	case OpStore:
		return fmt.Sprintf("%s [%s+%d], %s", s, in.Src1, in.Imm, in.Src2)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s %s, %s, @%d", s, in.Src1, in.Src2, in.Target)
	case OpJmp:
		return fmt.Sprintf("%s @%d", s, in.Target)
	case OpCall:
		return fmt.Sprintf("%s @%d, link=%s", s, in.Target, in.Dst)
	case OpRet:
		return fmt.Sprintf("%s %s", s, in.Src1)
	case OpMovI:
		return fmt.Sprintf("%s %s, %d", s, in.Dst, in.Imm)
	case OpAddI, OpShl, OpShr:
		return fmt.Sprintf("%s %s, %s, %d", s, in.Dst, in.Src1, in.Imm)
	case OpHalt, OpNop:
		return s
	default:
		return fmt.Sprintf("%s %s, %s, %s", s, in.Dst, in.Src1, in.Src2)
	}
}

// EncodedSize returns the synthetic encoded size of the instruction in
// bytes, used to lay static code out in the instruction cache and to model
// the one-byte CRISP prefix overhead of Section 5.7. Sizes loosely follow
// x86-64 conventions: simple ALU ops are short, memory ops and branches
// with displacements are longer.
func (in *Inst) EncodedSize() int {
	var n int
	switch in.Op {
	case OpNop:
		n = 1
	case OpMov:
		n = 2
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpMul:
		n = 3
	case OpAddI, OpShl, OpShr, OpMovI:
		n = 4
	case OpDiv, OpRem, OpFAdd, OpFMul, OpFDiv:
		n = 4
	case OpLoad:
		n = 5
	case OpStore:
		n = 5
	case OpBeq, OpBne, OpBlt, OpBge:
		n = 4
	case OpJmp, OpCall:
		n = 5
	case OpRet:
		n = 1
	case OpHalt:
		n = 2
	default:
		n = 4
	}
	if in.Critical {
		n++ // the CRISP prefix byte
	}
	return n
}

// Latency returns the fixed execution latency of the op in cycles, per the
// approach of Section 3.5 (fixed latencies from published instruction
// tables). Loads are excluded: their latency is determined by the memory
// hierarchy at run time, and by the profiled AMAT during critical-path
// analysis.
func (o Op) Latency() int {
	switch o {
	case OpMul:
		return 3
	case OpDiv, OpRem:
		return 20
	case OpFAdd:
		return 3
	case OpFMul:
		return 4
	case OpFDiv:
		return 18
	case OpLoad:
		return 4 // L1 hit; the hierarchy overrides this
	default:
		return 1
	}
}

// Pipelined reports whether a functional unit can accept a new op of this
// kind every cycle. Divides occupy their unit for their full latency.
func (o Op) Pipelined() bool {
	switch o {
	case OpDiv, OpRem, OpFDiv:
		return false
	}
	return true
}

// PortClass buckets ops by the issue-port class that executes them,
// matching Table 1's functional units: 4 ALU, 2 load, 1 store.
type PortClass uint8

// Issue-port classes.
const (
	PortALU PortClass = iota
	PortLoad
	PortStore
	NumPortClasses
)

// Ports returns the per-class port counts of the Table 1 configuration.
func Ports() [NumPortClasses]int { return [NumPortClasses]int{PortALU: 4, PortLoad: 2, PortStore: 1} }

// Class returns the issue-port class of the op. Branches and all arithmetic
// execute on ALU ports.
func (o Op) Class() PortClass {
	switch o {
	case OpLoad:
		return PortLoad
	case OpStore:
		return PortStore
	default:
		return PortALU
	}
}
