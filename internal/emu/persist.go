package emu

import (
	"fmt"
	"sort"

	"crisp/internal/codec"
)

// PageDict deduplicates page storage across the memories of one encoded
// checkpoint set. Checkpoint capture snapshots one emulator copy-on-write
// per window, so consecutive points share almost every page by pointer;
// encoding each memory's pages verbatim would multiply the image size by
// the point count. Instead each memory encodes (page number, dict index)
// pairs, the dict stores each distinct page array once, and decoding
// rebuilds the sharing: memories that referenced one page array reference
// one page array again.
type PageDict struct {
	index map[*[pageSize]byte]uint32 // encode side: identity -> index
	pages []*[pageSize]byte
}

// NewPageDict returns an empty dictionary for encoding.
func NewPageDict() *PageDict {
	return &PageDict{index: make(map[*[pageSize]byte]uint32)}
}

// Len returns the number of distinct pages collected so far.
func (d *PageDict) Len() int { return len(d.pages) }

// EncodeState writes m's page table — page count, then (page number,
// dict index) pairs sorted by page number — interning page contents into
// d. The caller emits d's pages (EncodePages) ahead of the page tables in
// the final stream so decoding is single-pass.
func (m *Memory) EncodeState(w *codec.Writer, d *PageDict) {
	pns := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	w.U64(uint64(len(pns)))
	for _, pn := range pns {
		p := m.pages[pn]
		idx, ok := d.index[p]
		if !ok {
			idx = uint32(len(d.pages))
			d.index[p] = idx
			d.pages = append(d.pages, p)
		}
		w.U64(pn)
		w.U32(idx)
	}
}

// EncodePages emits the interned page contents: count, then raw pages in
// index order.
func (d *PageDict) EncodePages(w *codec.Writer) {
	w.U32(uint32(len(d.pages)))
	for _, p := range d.pages {
		w.Raw(p[:])
	}
}

// DecodePageDict reads the page contents emitted by EncodePages.
func DecodePageDict(r *codec.Reader) (*PageDict, error) {
	n := int(r.U32())
	d := &PageDict{}
	for i := 0; i < n; i++ {
		b := r.Raw(pageSize)
		if r.Err() != nil {
			return nil, r.Err()
		}
		p := new([pageSize]byte)
		copy(p[:], b)
		d.pages = append(d.pages, p)
	}
	return d, nil
}

// DecodeMemory reconstructs one memory from its page table, resolving
// dict indices through d so memories that shared a page on the encode
// side share it again. Every page is marked copy-on-write, making the
// result behave like a fresh Snapshot: pristine until written, and safe
// for concurrent Snapshot calls (restore's per-window fork).
func DecodeMemory(r *codec.Reader, d *PageDict) (*Memory, error) {
	n := r.U64()
	const entrySize = 12 // u64 page number + u32 dict index
	if max := uint64(r.Remaining() / entrySize); n > max {
		return nil, fmt.Errorf("emu: page table claims %d entries, only %d encoded", n, max)
	}
	m := &Memory{
		pages: make(map[uint64]*[pageSize]byte, n),
		cow:   make(map[uint64]struct{}, n),
	}
	for i := uint64(0); i < n; i++ {
		pn := r.U64()
		idx := r.U32()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if int(idx) >= len(d.pages) {
			return nil, fmt.Errorf("emu: page dict index %d out of range (%d pages)", idx, len(d.pages))
		}
		m.pages[pn] = d.pages[idx]
		m.cow[pn] = struct{}{}
	}
	return m, nil
}
