package emu

import (
	"testing"
	"testing/quick"

	"crisp/internal/isa"
	"crisp/internal/program"
)

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	addrs := []uint64{0, 8, 4096, 4090, 1 << 40, (1 << 40) + 4093}
	for i, a := range addrs {
		want := int64(0x0102030405060708)*int64(i+1) - 7
		m.WriteWord(a, want)
		if got := m.ReadWord(a); got != want {
			t.Errorf("ReadWord(%#x) = %#x, want %#x", a, got, want)
		}
	}
}

func TestMemoryZeroDefault(t *testing.T) {
	m := NewMemory()
	if got := m.ReadWord(0xdeadbeef); got != 0 {
		t.Errorf("unbacked read = %d, want 0", got)
	}
	if m.Pages() != 0 {
		t.Errorf("reads allocated pages: %d", m.Pages())
	}
}

func TestMemoryRoundTripQuick(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, v int64) bool {
		addr &= (1 << 44) - 1 // keep page map small-ish
		m.WriteWord(addr, v)
		return m.ReadWord(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMemoryPageStraddle(t *testing.T) {
	m := NewMemory()
	// A write straddling a page boundary must not clobber neighbours.
	m.WriteWord(4096-8, 0x1111111111111111)
	m.WriteWord(4096-4, -1)
	m.WriteWord(4096+4, 0x2222222222222222)
	if got := m.ReadWord(4096 - 4); got != -1 {
		t.Errorf("straddle read = %#x", got)
	}
}

// sumProgram computes sum of 0..n-1 in r1.
func sumProgram(t *testing.T, n int64) *program.Program {
	t.Helper()
	b := program.NewBuilder("sum")
	b.MovI(isa.R(1), 0) // acc
	b.MovI(isa.R(2), 0) // i
	b.MovI(isa.R(3), n)
	b.Label("loop")
	b.Add(isa.R(1), isa.R(1), isa.R(2))
	b.AddI(isa.R(2), isa.R(2), 1)
	b.Blt(isa.R(2), isa.R(3), "loop")
	b.Halt()
	return b.MustBuild()
}

func TestEmulatorArithmeticLoop(t *testing.T) {
	e := New(sumProgram(t, 100), nil)
	n := e.Run(0)
	if !e.Done() {
		t.Fatalf("program did not halt after %d insts", n)
	}
	if got := e.Reg(isa.R(1)); got != 4950 {
		t.Errorf("sum = %d, want 4950", got)
	}
	// 3 movi + 100 iterations * 3 + halt
	if want := uint64(3 + 300 + 1); n != want {
		t.Errorf("executed %d insts, want %d", n, want)
	}
}

func TestEmulatorLoadStore(t *testing.T) {
	b := program.NewBuilder("ls")
	b.MovI(isa.R(1), 0x1000)
	b.MovI(isa.R(2), 42)
	b.Store(isa.R(1), 8, isa.R(2))
	b.Load(isa.R(3), isa.R(1), 8)
	b.MovI(isa.R(4), 2)
	b.LoadIdx(isa.R(5), isa.R(1), isa.R(4), 0, 8) // scale 0: plain base+disp
	b.Halt()
	e := New(b.MustBuild(), nil)
	e.Run(0)
	if got := e.Reg(isa.R(3)); got != 42 {
		t.Errorf("loaded %d, want 42", got)
	}
	if got := e.Reg(isa.R(5)); got != 42 {
		t.Errorf("scale-0 indexed load = %d, want 42", got)
	}
}

func TestEmulatorIndexedLoad(t *testing.T) {
	mem := NewMemory()
	for i := int64(0); i < 10; i++ {
		mem.WriteWord(uint64(0x2000+8*i), i*i)
	}
	b := program.NewBuilder("idx")
	b.MovI(isa.R(1), 0x2000)
	b.MovI(isa.R(2), 7)
	b.LoadIdx(isa.R(3), isa.R(1), isa.R(2), 8, 0)
	b.Halt()
	e := New(b.MustBuild(), mem)
	e.Run(0)
	if got := e.Reg(isa.R(3)); got != 49 {
		t.Errorf("indexed load = %d, want 49", got)
	}
}

func TestEmulatorBranchOutcomes(t *testing.T) {
	p := sumProgram(t, 3)
	e := New(p, nil)
	var branches []DynInst
	for {
		d, ok := e.Step()
		if !ok {
			break
		}
		if d.Inst.Op.IsCondBranch() {
			branches = append(branches, d)
		}
	}
	if len(branches) != 3 {
		t.Fatalf("saw %d branch executions, want 3", len(branches))
	}
	for i, d := range branches[:2] {
		if !d.Taken || d.NextPC != p.Label("loop") {
			t.Errorf("branch %d: taken=%v next=%d, want taken to loop", i, d.Taken, d.NextPC)
		}
	}
	if last := branches[2]; last.Taken {
		t.Errorf("final branch taken, want fall-through")
	}
}

func TestEmulatorCallRet(t *testing.T) {
	b := program.NewBuilder("fn")
	b.MovI(isa.R(1), 5)
	b.Call("double", isa.R(31))
	b.Mov(isa.R(3), isa.R(2))
	b.Halt()
	b.Label("double")
	b.Add(isa.R(2), isa.R(1), isa.R(1))
	b.Ret(isa.R(31))
	e := New(b.MustBuild(), nil)
	e.Run(0)
	if got := e.Reg(isa.R(3)); got != 10 {
		t.Errorf("call/ret result = %d, want 10", got)
	}
}

func TestEmulatorDivByZero(t *testing.T) {
	b := program.NewBuilder("div0")
	b.MovI(isa.R(1), 7)
	b.MovI(isa.R(2), 0)
	b.Div(isa.R(3), isa.R(1), isa.R(2))
	b.Rem(isa.R(4), isa.R(1), isa.R(2))
	b.Halt()
	e := New(b.MustBuild(), nil)
	e.Run(0)
	if e.Reg(isa.R(3)) != 0 || e.Reg(isa.R(4)) != 0 {
		t.Errorf("div/rem by zero = %d/%d, want 0/0", e.Reg(isa.R(3)), e.Reg(isa.R(4)))
	}
}

func TestEmulatorSeqNumbersAndHalt(t *testing.T) {
	e := New(sumProgram(t, 2), nil)
	var prev uint64
	first := true
	for {
		d, ok := e.Step()
		if !ok {
			break
		}
		if !first && d.Seq != prev+1 {
			t.Fatalf("seq %d after %d", d.Seq, prev)
		}
		prev, first = d.Seq, false
	}
	if _, ok := e.Step(); ok {
		t.Errorf("Step after halt returned ok")
	}
	if _, ok := e.Step(); ok {
		t.Errorf("second Step after halt returned ok")
	}
}

func TestRunLimit(t *testing.T) {
	e := New(sumProgram(t, 1000000), nil)
	if n := e.Run(10); n != 10 {
		t.Errorf("Run(10) = %d", n)
	}
	if e.Done() {
		t.Errorf("Done after limited run")
	}
}
