package emu

import (
	"testing"
	"testing/quick"

	"crisp/internal/isa"
	"crisp/internal/program"
)

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	addrs := []uint64{0, 8, 4096, 4090, 1 << 40, (1 << 40) + 4093}
	for i, a := range addrs {
		want := int64(0x0102030405060708)*int64(i+1) - 7
		m.WriteWord(a, want)
		if got := m.ReadWord(a); got != want {
			t.Errorf("ReadWord(%#x) = %#x, want %#x", a, got, want)
		}
	}
}

func TestMemoryZeroDefault(t *testing.T) {
	m := NewMemory()
	if got := m.ReadWord(0xdeadbeef); got != 0 {
		t.Errorf("unbacked read = %d, want 0", got)
	}
	if m.Pages() != 0 {
		t.Errorf("reads allocated pages: %d", m.Pages())
	}
}

func TestMemoryRoundTripQuick(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, v int64) bool {
		addr &= (1 << 44) - 1 // keep page map small-ish
		m.WriteWord(addr, v)
		return m.ReadWord(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMemoryPageStraddle(t *testing.T) {
	m := NewMemory()
	// A write straddling a page boundary must not clobber neighbours.
	m.WriteWord(4096-8, 0x1111111111111111)
	m.WriteWord(4096-4, -1)
	m.WriteWord(4096+4, 0x2222222222222222)
	if got := m.ReadWord(4096 - 4); got != -1 {
		t.Errorf("straddle read = %#x", got)
	}
}

// sumProgram computes sum of 0..n-1 in r1.
func sumProgram(t *testing.T, n int64) *program.Program {
	t.Helper()
	b := program.NewBuilder("sum")
	b.MovI(isa.R(1), 0) // acc
	b.MovI(isa.R(2), 0) // i
	b.MovI(isa.R(3), n)
	b.Label("loop")
	b.Add(isa.R(1), isa.R(1), isa.R(2))
	b.AddI(isa.R(2), isa.R(2), 1)
	b.Blt(isa.R(2), isa.R(3), "loop")
	b.Halt()
	return b.MustBuild()
}

func TestEmulatorArithmeticLoop(t *testing.T) {
	e := New(sumProgram(t, 100), nil)
	n := e.Run(0)
	if !e.Done() {
		t.Fatalf("program did not halt after %d insts", n)
	}
	if got := e.Reg(isa.R(1)); got != 4950 {
		t.Errorf("sum = %d, want 4950", got)
	}
	// 3 movi + 100 iterations * 3 + halt
	if want := uint64(3 + 300 + 1); n != want {
		t.Errorf("executed %d insts, want %d", n, want)
	}
}

func TestEmulatorLoadStore(t *testing.T) {
	b := program.NewBuilder("ls")
	b.MovI(isa.R(1), 0x1000)
	b.MovI(isa.R(2), 42)
	b.Store(isa.R(1), 8, isa.R(2))
	b.Load(isa.R(3), isa.R(1), 8)
	b.MovI(isa.R(4), 2)
	b.LoadIdx(isa.R(5), isa.R(1), isa.R(4), 0, 8) // scale 0: plain base+disp
	b.Halt()
	e := New(b.MustBuild(), nil)
	e.Run(0)
	if got := e.Reg(isa.R(3)); got != 42 {
		t.Errorf("loaded %d, want 42", got)
	}
	if got := e.Reg(isa.R(5)); got != 42 {
		t.Errorf("scale-0 indexed load = %d, want 42", got)
	}
}

func TestEmulatorIndexedLoad(t *testing.T) {
	mem := NewMemory()
	for i := int64(0); i < 10; i++ {
		mem.WriteWord(uint64(0x2000+8*i), i*i)
	}
	b := program.NewBuilder("idx")
	b.MovI(isa.R(1), 0x2000)
	b.MovI(isa.R(2), 7)
	b.LoadIdx(isa.R(3), isa.R(1), isa.R(2), 8, 0)
	b.Halt()
	e := New(b.MustBuild(), mem)
	e.Run(0)
	if got := e.Reg(isa.R(3)); got != 49 {
		t.Errorf("indexed load = %d, want 49", got)
	}
}

func TestEmulatorBranchOutcomes(t *testing.T) {
	p := sumProgram(t, 3)
	e := New(p, nil)
	var branches []DynInst
	for {
		d, ok := e.Step()
		if !ok {
			break
		}
		if d.Inst.Op.IsCondBranch() {
			branches = append(branches, d)
		}
	}
	if len(branches) != 3 {
		t.Fatalf("saw %d branch executions, want 3", len(branches))
	}
	for i, d := range branches[:2] {
		if !d.Taken || d.NextPC != p.Label("loop") {
			t.Errorf("branch %d: taken=%v next=%d, want taken to loop", i, d.Taken, d.NextPC)
		}
	}
	if last := branches[2]; last.Taken {
		t.Errorf("final branch taken, want fall-through")
	}
}

func TestEmulatorCallRet(t *testing.T) {
	b := program.NewBuilder("fn")
	b.MovI(isa.R(1), 5)
	b.Call("double", isa.R(31))
	b.Mov(isa.R(3), isa.R(2))
	b.Halt()
	b.Label("double")
	b.Add(isa.R(2), isa.R(1), isa.R(1))
	b.Ret(isa.R(31))
	e := New(b.MustBuild(), nil)
	e.Run(0)
	if got := e.Reg(isa.R(3)); got != 10 {
		t.Errorf("call/ret result = %d, want 10", got)
	}
}

func TestEmulatorDivByZero(t *testing.T) {
	b := program.NewBuilder("div0")
	b.MovI(isa.R(1), 7)
	b.MovI(isa.R(2), 0)
	b.Div(isa.R(3), isa.R(1), isa.R(2))
	b.Rem(isa.R(4), isa.R(1), isa.R(2))
	b.Halt()
	e := New(b.MustBuild(), nil)
	e.Run(0)
	if e.Reg(isa.R(3)) != 0 || e.Reg(isa.R(4)) != 0 {
		t.Errorf("div/rem by zero = %d/%d, want 0/0", e.Reg(isa.R(3)), e.Reg(isa.R(4)))
	}
}

func TestEmulatorSeqNumbersAndHalt(t *testing.T) {
	e := New(sumProgram(t, 2), nil)
	var prev uint64
	first := true
	for {
		d, ok := e.Step()
		if !ok {
			break
		}
		if !first && d.Seq != prev+1 {
			t.Fatalf("seq %d after %d", d.Seq, prev)
		}
		prev, first = d.Seq, false
	}
	if _, ok := e.Step(); ok {
		t.Errorf("Step after halt returned ok")
	}
	if _, ok := e.Step(); ok {
		t.Errorf("second Step after halt returned ok")
	}
}

func TestRunLimit(t *testing.T) {
	e := New(sumProgram(t, 1000000), nil)
	if n := e.Run(10); n != 10 {
		t.Errorf("Run(10) = %d", n)
	}
	if e.Done() {
		t.Errorf("Done after limited run")
	}
}

func TestMemoryWordsAcrossPages(t *testing.T) {
	m := NewMemory()
	// Batched writes and reads straddling a page boundary must agree with
	// word-at-a-time access.
	base := uint64(2*pageSize - 24)
	vals := []int64{1, -2, 3, -4, 5, -6} // 48 bytes: 24 before, 24 after the boundary
	m.WriteWords(base, vals)
	got := make([]int64, len(vals))
	m.ReadWords(base, got)
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("ReadWords[%d] = %d, want %d", i, got[i], vals[i])
		}
		if w := m.ReadWord(base + uint64(8*i)); w != vals[i] {
			t.Errorf("ReadWord(%#x) = %d, want %d", base+uint64(8*i), w, vals[i])
		}
	}
}

func TestMemoryReadWordsUnbacked(t *testing.T) {
	m := NewMemory()
	m.WriteWord(0, 7) // back page 0 only
	dst := []int64{99, 99, 99}
	// Read straddles from backed page 0 into an unbacked page: the
	// unbacked tail must come back zero, and no page may be allocated.
	m.ReadWords(pageSize-8, dst)
	if dst[0] != 0 || dst[1] != 0 || dst[2] != 0 {
		t.Errorf("unbacked ReadWords = %v, want zeros", dst)
	}
	if m.Pages() != 1 {
		t.Errorf("ReadWords allocated pages: %d", m.Pages())
	}
}

func TestMemoryPageCacheAliasing(t *testing.T) {
	m := NewMemory()
	// Page numbers 1 and 1+pcacheSize map to the same translation-cache
	// slot; interleaved access must not serve one page's data for the
	// other.
	a := uint64(1 * pageSize)
	b := uint64((1 + pcacheSize) * pageSize)
	m.WriteWord(a, 111)
	m.WriteWord(b, 222)
	for i := 0; i < 3; i++ {
		if got := m.ReadWord(a); got != 111 {
			t.Fatalf("aliased read a = %d, want 111", got)
		}
		if got := m.ReadWord(b); got != 222 {
			t.Fatalf("aliased read b = %d, want 222", got)
		}
	}
}

func TestMemorySnapshotIsolation(t *testing.T) {
	m := NewMemory()
	m.WriteWord(0x1000, 1)
	m.WriteWord(0x2000, 2)
	snap := m.Snapshot()

	// Writes on either side must not leak to the other, including via the
	// page-translation caches populated before the snapshot.
	m.WriteWord(0x1000, 10)
	snap.WriteWord(0x2000, 20)
	if got := snap.ReadWord(0x1000); got != 1 {
		t.Errorf("snapshot saw parent write: %d", got)
	}
	if got := m.ReadWord(0x2000); got != 2 {
		t.Errorf("parent saw snapshot write: %d", got)
	}

	// An untouched page stays shared and readable on both sides.
	m.WriteWord(0x3000, 3)
	if got := snap.ReadWord(0x3000); got != 0 {
		t.Errorf("snapshot saw post-snapshot page: %d", got)
	}
}

func TestMemorySnapshotOfSnapshot(t *testing.T) {
	m := NewMemory()
	m.WriteWord(0, 42)
	pristine := m.Snapshot()
	// A pristine snapshot (never written) can be re-snapshotted; all
	// three views remain independent for writes.
	fork := pristine.Snapshot()
	fork.WriteWord(0, 1)
	m.WriteWord(0, 2)
	if got := pristine.ReadWord(0); got != 42 {
		t.Errorf("pristine = %d, want 42", got)
	}
}

func TestFastForwardMatchesStep(t *testing.T) {
	prog := sumProgram(t, 50)
	ff := New(prog, nil)
	st := New(prog, nil)
	n := ff.FastForward(37, nil)
	if n != 37 {
		t.Fatalf("FastForward(37) = %d", n)
	}
	for i := 0; i < 37; i++ {
		st.Step()
	}
	if ff.PC() != st.PC() || ff.Regs() != st.Regs() || ff.Done() != st.Done() {
		t.Errorf("FastForward diverged from Step: pc %d vs %d", ff.PC(), st.PC())
	}
	// Finish both: same halt point.
	ff.FastForward(1<<20, nil)
	st.Run(0)
	if ff.PC() != st.PC() || ff.Regs() != st.Regs() || !ff.Done() {
		t.Errorf("post-halt state diverged")
	}
}

// countWarmer records FastForward's warming callbacks.
type countWarmer struct {
	instLines map[uint64]bool
	data      []uint64
	stores    int
	branches  int
	taken     int
}

func (w *countWarmer) WarmInstLine(lineAddr uint64) {
	if w.instLines == nil {
		w.instLines = map[uint64]bool{}
	}
	w.instLines[lineAddr] = true
}
func (w *countWarmer) WarmData(pc int, addr uint64, store bool) {
	w.data = append(w.data, addr)
	if store {
		w.stores++
	}
}
func (w *countWarmer) WarmBranch(pc int, in *isa.Inst, taken bool, nextPC int) {
	w.branches++
	if taken {
		w.taken++
	}
}

func TestFastForwardWarmerStream(t *testing.T) {
	b := program.NewBuilder("warm")
	b.MovI(isa.R(1), 0x1000)
	b.MovI(isa.R(2), 42)
	b.MovI(isa.R(4), 0)
	b.Label("loop")
	b.Store(isa.R(1), 0, isa.R(2))
	b.Load(isa.R(3), isa.R(1), 0)
	b.AddI(isa.R(4), isa.R(4), 1)
	b.MovI(isa.R(5), 3)
	b.Blt(isa.R(4), isa.R(5), "loop")
	b.Halt()
	w := &countWarmer{}
	e := New(b.MustBuild(), nil)
	e.FastForward(1<<20, w)
	if !e.Done() {
		t.Fatal("program did not halt")
	}
	if len(w.data) != 6 || w.stores != 3 {
		t.Errorf("data accesses = %d (stores %d), want 6 (3)", len(w.data), w.stores)
	}
	for _, a := range w.data {
		if a != 0x1000 {
			t.Errorf("data addr %#x, want 0x1000", a)
		}
	}
	if w.branches != 3 || w.taken != 2 {
		t.Errorf("branches = %d taken %d, want 3 taken 2", w.branches, w.taken)
	}
	if len(w.instLines) == 0 {
		t.Errorf("no instruction lines warmed")
	}
}
