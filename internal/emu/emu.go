// Package emu implements a functional emulator for isa programs. The
// emulator maintains architectural state (registers and a sparse paged
// byte memory) and produces the dynamic instruction stream consumed by the
// timing model ("execute-at-fetch" trace-driven simulation) and by the
// CRISP software pipeline's tracer.
package emu

import (
	"encoding/binary"
	"fmt"

	"crisp/internal/isa"
	"crisp/internal/program"
)

// DynInst is one dynamic instruction: a static instruction instance with
// its resolved effective address, branch outcome, and successor PC. Seq is
// the dynamic sequence number (0-based retirement order).
type DynInst struct {
	Seq    uint64
	PC     int
	NextPC int
	Addr   uint64 // effective address for loads/stores
	Taken  bool   // outcome for branches (unconditional: true)
	Inst   *isa.Inst
}

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1

	// pcacheSize is the direct-mapped page-translation cache in front of
	// the pages map. Must be a power of two.
	pcacheSize = 64
	pcacheMask = pcacheSize - 1
)

// Memory is a sparse, paged byte-addressable memory. The zero value is
// ready to use. Reads of unbacked addresses return zero.
//
// Page translation is served by a last-page register and a small
// direct-mapped cache before falling back to the map, so the common
// sequential- and strided-access cases skip hashing entirely. Pages are
// never deallocated, so cached translations need no invalidation.
//
// Snapshot forks the memory copy-on-write: after a snapshot both sides
// share page storage, and the first write to a shared page (on either
// side) copies it first, so checkpointed state stays pristine while the
// fast-forwarding emulator and restored runs keep executing.
type Memory struct {
	pages map[uint64]*[pageSize]byte

	// cow marks pages shared with a snapshot: they must be copied before
	// the first write. Nil/empty for memories that were never forked, so
	// the write path pays only a len check.
	cow map[uint64]struct{}

	lastPN uint64
	lastPg *[pageSize]byte

	pcachePN [pcacheSize]uint64 // pn+1; 0 = invalid
	pcachePg [pcacheSize]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{pages: make(map[uint64]*[pageSize]byte)} }

// Snapshot forks the memory copy-on-write and returns the fork. Page
// storage is shared until either side writes a shared page, which copies
// it first. The snapshot is immediately usable (and itself snapshotable:
// checkpoint restore snapshots the checkpointed image once per run).
//
// Concurrency: a memory whose pages are all already marked shared — any
// memory returned by Snapshot, as long as it has not been written or
// executed since — is not mutated here, so concurrent Snapshot calls on
// the same pristine checkpoint image are safe.
func (m *Memory) Snapshot() *Memory {
	cl := &Memory{
		pages: make(map[uint64]*[pageSize]byte, len(m.pages)),
		cow:   make(map[uint64]struct{}, len(m.pages)),
	}
	for pn, p := range m.pages {
		cl.pages[pn] = p
		cl.cow[pn] = struct{}{}
	}
	for pn := range m.pages {
		if _, shared := m.cow[pn]; !shared {
			if m.cow == nil {
				m.cow = make(map[uint64]struct{}, len(m.pages))
			}
			m.cow[pn] = struct{}{}
		}
	}
	return cl
}

func (m *Memory) page(addr uint64, alloc bool) *[pageSize]byte {
	pn := addr >> pageShift
	if m.lastPg != nil && m.lastPN == pn {
		return m.lastPg
	}
	idx := pn & pcacheMask
	if m.pcachePN[idx] == pn+1 {
		p := m.pcachePg[idx]
		m.lastPN, m.lastPg = pn, p
		return p
	}
	p := m.pages[pn]
	if p == nil {
		if !alloc {
			// Unbacked reads are not cached: the page may be allocated
			// later and the cached nil would go stale.
			return nil
		}
		p = new([pageSize]byte)
		if m.pages == nil {
			m.pages = make(map[uint64]*[pageSize]byte)
		}
		m.pages[pn] = p
	}
	m.pcachePN[idx], m.pcachePg[idx] = pn+1, p
	m.lastPN, m.lastPg = pn, p
	return p
}

// pageW resolves addr's page for writing, copying it first if it is
// shared with a snapshot. Memories that were never forked pay only the
// len(m.cow) check. The copy refreshes any cached translations so stale
// shared-page pointers can never be written through.
func (m *Memory) pageW(addr uint64) *[pageSize]byte {
	if len(m.cow) != 0 {
		pn := addr >> pageShift
		if _, shared := m.cow[pn]; shared {
			np := new([pageSize]byte)
			*np = *m.pages[pn]
			m.pages[pn] = np
			delete(m.cow, pn)
			if idx := pn & pcacheMask; m.pcachePN[idx] == pn+1 {
				m.pcachePg[idx] = np
			}
			if m.lastPg != nil && m.lastPN == pn {
				m.lastPg = np
			}
			return np
		}
	}
	return m.page(addr, true)
}

// ReadWord reads the 8-byte little-endian word at addr (may straddle a
// page boundary).
func (m *Memory) ReadWord(addr uint64) int64 {
	if off := addr & pageMask; off <= pageSize-8 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return int64(binary.LittleEndian.Uint64(p[off:]))
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.readByte(addr+i)) << (8 * i)
	}
	return int64(v)
}

// WriteWord writes the 8-byte little-endian word v at addr.
func (m *Memory) WriteWord(addr uint64, v int64) {
	if off := addr & pageMask; off <= pageSize-8 {
		binary.LittleEndian.PutUint64(m.pageW(addr)[off:], uint64(v))
		return
	}
	u := uint64(v)
	for i := uint64(0); i < 8; i++ {
		m.writeByte(addr+i, byte(u>>(8*i)))
	}
}

// WriteWords writes len(vals) consecutive 8-byte little-endian words
// starting at addr, resolving each page once per in-page run instead of
// once per word. Workload initializers use it to populate large arrays.
func (m *Memory) WriteWords(addr uint64, vals []int64) {
	for len(vals) > 0 {
		off := addr & pageMask
		if off > pageSize-8 {
			m.WriteWord(addr, vals[0]) // straddling word: slow path
			addr += 8
			vals = vals[1:]
			continue
		}
		p := m.pageW(addr)
		n := int((pageSize - off) / 8)
		if n > len(vals) {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(p[off+uint64(i)*8:], uint64(vals[i]))
		}
		addr += uint64(n) * 8
		vals = vals[n:]
	}
}

// ReadWords fills dst with len(dst) consecutive 8-byte little-endian
// words starting at addr; unbacked ranges read as zero.
func (m *Memory) ReadWords(addr uint64, dst []int64) {
	for len(dst) > 0 {
		off := addr & pageMask
		if off > pageSize-8 {
			dst[0] = m.ReadWord(addr) // straddling word: slow path
			addr += 8
			dst = dst[1:]
			continue
		}
		n := int((pageSize - off) / 8)
		if n > len(dst) {
			n = len(dst)
		}
		if p := m.page(addr, false); p == nil {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		} else {
			for i := 0; i < n; i++ {
				dst[i] = int64(binary.LittleEndian.Uint64(p[off+uint64(i)*8:]))
			}
		}
		addr += uint64(n) * 8
		dst = dst[n:]
	}
}

func (m *Memory) readByte(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

func (m *Memory) writeByte(addr uint64, b byte) {
	m.pageW(addr)[addr&pageMask] = b
}

// Pages returns the number of resident pages (for footprint reporting).
func (m *Memory) Pages() int { return len(m.pages) }

// Emulator executes a program functionally, one instruction per Step.
type Emulator struct {
	prog *program.Program
	mem  *Memory
	regs [isa.NumRegs]int64
	pc   int
	seq  uint64
	done bool
}

// New returns an emulator positioned at entry PC 0 of prog, using mem as
// its data memory (workloads pre-populate it). A nil mem allocates a fresh
// one.
func New(prog *program.Program, mem *Memory) *Emulator {
	if mem == nil {
		mem = NewMemory()
	}
	return &Emulator{prog: prog, mem: mem}
}

// Resume returns an emulator positioned mid-program: at pc with the given
// architectural register file over mem. Checkpoint restore uses it to
// start detailed windows from fast-forwarded state.
func Resume(prog *program.Program, mem *Memory, pc int, regs [isa.NumRegs]int64) *Emulator {
	e := New(prog, mem)
	e.pc = pc
	e.regs = regs
	return e
}

// Mem returns the emulator's data memory.
func (e *Emulator) Mem() *Memory { return e.mem }

// Reg returns the current architectural value of r.
func (e *Emulator) Reg(r isa.Reg) int64 { return e.regs[r] }

// Regs returns a copy of the architectural register file (for
// checkpointing).
func (e *Emulator) Regs() [isa.NumRegs]int64 { return e.regs }

// SetReg sets an architectural register (used by workload setup to pass
// base pointers and sizes).
func (e *Emulator) SetReg(r isa.Reg, v int64) { e.regs[r] = v }

// Done reports whether the program has executed Halt.
func (e *Emulator) Done() bool { return e.done }

// PC returns the PC of the next instruction to execute.
func (e *Emulator) PC() int { return e.pc }

// Step executes one instruction and returns its dynamic record. ok is
// false once the program has halted. Step panics on a control-flow transfer
// outside the program, which indicates a broken kernel.
func (e *Emulator) Step() (d DynInst, ok bool) {
	if e.done {
		return DynInst{}, false
	}
	if e.pc < 0 || e.pc >= e.prog.Len() {
		panic(fmt.Sprintf("emu: pc %d out of range in %q", e.pc, e.prog.Name))
	}
	in := &e.prog.Insts[e.pc]
	d = DynInst{Seq: e.seq, PC: e.pc, Inst: in}
	e.seq++
	next := e.pc + 1

	switch in.Op {
	case isa.OpNop:
	case isa.OpAdd:
		e.regs[in.Dst] = e.regs[in.Src1] + e.regs[in.Src2]
	case isa.OpAddI:
		e.regs[in.Dst] = e.regs[in.Src1] + in.Imm
	case isa.OpSub:
		e.regs[in.Dst] = e.regs[in.Src1] - e.regs[in.Src2]
	case isa.OpMul:
		e.regs[in.Dst] = e.regs[in.Src1] * e.regs[in.Src2]
	case isa.OpDiv:
		if v := e.regs[in.Src2]; v != 0 {
			e.regs[in.Dst] = e.regs[in.Src1] / v
		} else {
			e.regs[in.Dst] = 0
		}
	case isa.OpRem:
		if v := e.regs[in.Src2]; v != 0 {
			e.regs[in.Dst] = e.regs[in.Src1] % v
		} else {
			e.regs[in.Dst] = 0
		}
	case isa.OpAnd:
		e.regs[in.Dst] = e.regs[in.Src1] & e.regs[in.Src2]
	case isa.OpOr:
		e.regs[in.Dst] = e.regs[in.Src1] | e.regs[in.Src2]
	case isa.OpXor:
		e.regs[in.Dst] = e.regs[in.Src1] ^ e.regs[in.Src2]
	case isa.OpShl:
		e.regs[in.Dst] = e.regs[in.Src1] << (uint64(in.Imm) & 63)
	case isa.OpShr:
		e.regs[in.Dst] = int64(uint64(e.regs[in.Src1]) >> (uint64(in.Imm) & 63))
	case isa.OpMov:
		e.regs[in.Dst] = e.regs[in.Src1]
	case isa.OpMovI:
		e.regs[in.Dst] = in.Imm
	case isa.OpFAdd:
		e.regs[in.Dst] = e.regs[in.Src1] + e.regs[in.Src2]
	case isa.OpFMul:
		e.regs[in.Dst] = e.regs[in.Src1] * e.regs[in.Src2]
	case isa.OpFDiv:
		if v := e.regs[in.Src2]; v != 0 {
			e.regs[in.Dst] = e.regs[in.Src1] / v
		} else {
			e.regs[in.Dst] = 0
		}
	case isa.OpLoad:
		addr := uint64(e.regs[in.Src1]) + in.Imm64()
		if in.Src2.Valid() && in.Scale != 0 {
			addr += uint64(e.regs[in.Src2]) * uint64(in.Scale)
		}
		d.Addr = addr
		e.regs[in.Dst] = e.mem.ReadWord(addr)
	case isa.OpStore:
		addr := uint64(e.regs[in.Src1]) + in.Imm64()
		d.Addr = addr
		e.mem.WriteWord(addr, e.regs[in.Src2])
	case isa.OpBeq:
		d.Taken = e.regs[in.Src1] == e.src2OrZero(in)
		if d.Taken {
			next = in.Target
		}
	case isa.OpBne:
		d.Taken = e.regs[in.Src1] != e.src2OrZero(in)
		if d.Taken {
			next = in.Target
		}
	case isa.OpBlt:
		d.Taken = e.regs[in.Src1] < e.src2OrZero(in)
		if d.Taken {
			next = in.Target
		}
	case isa.OpBge:
		d.Taken = e.regs[in.Src1] >= e.src2OrZero(in)
		if d.Taken {
			next = in.Target
		}
	case isa.OpJmp:
		d.Taken = true
		next = in.Target
	case isa.OpCall:
		d.Taken = true
		e.regs[in.Dst] = int64(e.pc + 1)
		next = in.Target
	case isa.OpRet:
		d.Taken = true
		next = int(e.regs[in.Src1])
	case isa.OpHalt:
		e.done = true
		next = e.pc
	default:
		panic(fmt.Sprintf("emu: unknown op %v at pc %d", in.Op, e.pc))
	}

	d.NextPC = next
	e.pc = next
	return d, true
}

func (e *Emulator) src2OrZero(in *isa.Inst) int64 {
	if in.Src2.Valid() {
		return e.regs[in.Src2]
	}
	return 0
}

// Run executes up to limit instructions (or to Halt if limit <= 0) and
// returns the number executed.
func (e *Emulator) Run(limit uint64) uint64 {
	var n uint64
	for limit <= 0 || n < limit {
		if _, ok := e.Step(); !ok {
			break
		}
		n++
	}
	return n
}

// Warmer observes the functional instruction stream during FastForward so
// long-lived microarchitectural structures (cache tags, branch predictor,
// BTB, RAS) can be warmed without any core timing. Implementations must
// not charge statistics: warming precedes the measured detailed window.
type Warmer interface {
	// WarmInstLine is called once per executed 64B code line on a line
	// change (not per instruction), with the line-aligned byte address.
	WarmInstLine(lineAddr uint64)
	// WarmData is called for every load and store with the executing
	// instruction's PC (program index) and the effective address.
	WarmData(pc int, addr uint64, store bool)
	// WarmBranch is called for every control-flow instruction with its
	// outcome and successor PC.
	WarmBranch(pc int, in *isa.Inst, taken bool, nextPC int)
}

// FastForward executes up to limit instructions functionally (no core
// timing), optionally streaming the access/branch trace into w, and
// returns the number executed. With a nil warmer this is a plain
// emulator-speed skip; with a warmer it is the functional-warming phase
// of sampled simulation. A limit of 0 executes nothing.
func (e *Emulator) FastForward(limit uint64, w Warmer) uint64 {
	var n uint64
	if w == nil {
		for n < limit {
			if _, ok := e.Step(); !ok {
				break
			}
			n++
		}
		return n
	}
	lastLine := ^uint64(0)
	for n < limit {
		d, ok := e.Step()
		if !ok {
			break
		}
		n++
		if line := e.prog.ByteAddr(d.PC) &^ 63; line != lastLine {
			lastLine = line
			w.WarmInstLine(line)
		}
		switch op := d.Inst.Op; {
		case op == isa.OpLoad:
			w.WarmData(d.PC, d.Addr, false)
		case op == isa.OpStore:
			w.WarmData(d.PC, d.Addr, true)
		case op.IsBranch():
			w.WarmBranch(d.PC, d.Inst, d.Taken, d.NextPC)
		}
	}
	return n
}
