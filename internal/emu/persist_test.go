package emu

import (
	"testing"

	"crisp/internal/codec"
)

// TestPageDictSharing: memories forked copy-on-write must intern their
// shared pages once, and decoding must rebuild both the contents and
// the copy-on-write discipline.
func TestPageDictSharing(t *testing.T) {
	m := NewMemory()
	for pg := uint64(0); pg < 8; pg++ {
		m.WriteWord(pg*pageSize, int64(pg)+100)
	}
	snap1 := m.Snapshot()
	m.WriteWord(0, 999) // copies page 0 in m; snap1 keeps the original
	snap2 := m.Snapshot()

	var pw codec.Writer
	dict := NewPageDict()
	snap1.EncodeState(&pw, dict)
	snap2.EncodeState(&pw, dict)
	// 8 pages each, 7 shared: 9 distinct arrays.
	if dict.Len() != 9 {
		t.Fatalf("dict holds %d pages, want 9 (7 shared + 2 versions of page 0)", dict.Len())
	}

	var w codec.Writer
	dict.EncodePages(&w)
	w.Raw(pw.Bytes())

	r := codec.NewReader(w.Bytes())
	dec, err := DecodePageDict(r)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := DecodeMemory(r, dec)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DecodeMemory(r, dec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d trailing bytes", r.Remaining())
	}
	if got := d1.ReadWord(0); got != 100 {
		t.Errorf("snap1 page 0 = %d, want the pre-write 100", got)
	}
	if got := d2.ReadWord(0); got != 999 {
		t.Errorf("snap2 page 0 = %d, want the post-write 999", got)
	}
	for pg := uint64(1); pg < 8; pg++ {
		if d1.ReadWord(pg*pageSize) != d2.ReadWord(pg*pageSize) {
			t.Errorf("page %d differs between decoded memories", pg)
		}
	}

	// Decoded memories are copy-on-write: writing one must not leak into
	// the other's shared page.
	d1.WriteWord(pageSize, -1)
	if got := d2.ReadWord(pageSize); got != 101 {
		t.Errorf("write to decoded snap1 leaked into snap2: page 1 = %d", got)
	}

	// All pages are marked shared, so Snapshot performs no map writes on
	// the decoded memory (restore relies on this for concurrency) and the
	// fork reads identically.
	fork := d2.Snapshot()
	if got := fork.ReadWord(0); got != 999 {
		t.Errorf("fork of decoded memory reads %d, want 999", got)
	}
}

// TestDecodeMemoryCorrupt: out-of-range dict indices and oversized page
// tables must error, not panic or allocate wildly.
func TestDecodeMemoryCorrupt(t *testing.T) {
	var pw codec.Writer
	dict := NewPageDict()
	m := NewMemory()
	m.WriteWord(0, 7)
	m.Snapshot().EncodeState(&pw, dict)

	var w codec.Writer
	dict.EncodePages(&w)
	w.Raw(pw.Bytes())
	enc := append([]byte(nil), w.Bytes()...)

	// Corrupt the dict index of the only page-table entry (last 4 bytes).
	enc[len(enc)-1] = 0xFF
	r := codec.NewReader(enc)
	dec, err := DecodePageDict(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMemory(r, dec); err == nil {
		t.Error("out-of-range dict index decoded without error")
	}

	// A page count far beyond the buffer must fail fast.
	var w2 codec.Writer
	w2.U64(1 << 40)
	if _, err := DecodeMemory(codec.NewReader(w2.Bytes()), dec); err == nil {
		t.Error("oversized page table decoded without error")
	}
}
