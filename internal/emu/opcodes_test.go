package emu

import (
	"testing"

	"crisp/internal/isa"
	"crisp/internal/program"
)

// evalBinary runs a single two-source op with the given inputs and returns
// the architectural result.
func evalBinary(t *testing.T, op isa.Op, a, b int64) int64 {
	t.Helper()
	bld := program.NewBuilder("op")
	bld.Emit(isa.Inst{Op: op, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)})
	bld.Halt()
	e := New(bld.MustBuild(), nil)
	e.SetReg(isa.R(1), a)
	e.SetReg(isa.R(2), b)
	e.Run(0)
	return e.Reg(isa.R(3))
}

func TestBinaryOpSemantics(t *testing.T) {
	tests := []struct {
		op   isa.Op
		a, b int64
		want int64
	}{
		{isa.OpAdd, 5, 7, 12},
		{isa.OpAdd, -5, 2, -3},
		{isa.OpSub, 5, 7, -2},
		{isa.OpMul, -3, 4, -12},
		{isa.OpDiv, 20, 6, 3},
		{isa.OpDiv, -20, 6, -3},
		{isa.OpDiv, 20, 0, 0},
		{isa.OpRem, 20, 6, 2},
		{isa.OpRem, 20, 0, 0},
		{isa.OpAnd, 0b1100, 0b1010, 0b1000},
		{isa.OpOr, 0b1100, 0b1010, 0b1110},
		{isa.OpXor, 0b1100, 0b1010, 0b0110},
		{isa.OpFAdd, 10, 3, 13},
		{isa.OpFMul, 10, 3, 30},
		{isa.OpFDiv, 10, 3, 3},
		{isa.OpFDiv, 10, 0, 0},
	}
	for _, tt := range tests {
		if got := evalBinary(t, tt.op, tt.a, tt.b); got != tt.want {
			t.Errorf("%v(%d, %d) = %d, want %d", tt.op, tt.a, tt.b, got, tt.want)
		}
	}
}

func evalImm(t *testing.T, op isa.Op, a, imm int64) int64 {
	t.Helper()
	bld := program.NewBuilder("op")
	bld.Emit(isa.Inst{Op: op, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.NoReg, Imm: imm})
	bld.Halt()
	e := New(bld.MustBuild(), nil)
	e.SetReg(isa.R(1), a)
	e.Run(0)
	return e.Reg(isa.R(3))
}

func TestImmediateOpSemantics(t *testing.T) {
	tests := []struct {
		op     isa.Op
		a, imm int64
		want   int64
	}{
		{isa.OpAddI, 5, 7, 12},
		{isa.OpAddI, 5, -7, -2},
		{isa.OpShl, 3, 4, 48},
		{isa.OpShl, 1, 63, -9223372036854775808},
		{isa.OpShr, -1, 60, 15},
		{isa.OpShr, 256, 4, 16},
		{isa.OpMovI, 99, 42, 42},
		{isa.OpMov, -7, 0, -7},
	}
	for _, tt := range tests {
		if got := evalImm(t, tt.op, tt.a, tt.imm); got != tt.want {
			t.Errorf("%v(%d, imm %d) = %d, want %d", tt.op, tt.a, tt.imm, got, tt.want)
		}
	}
}

func TestConditionalBranchSemantics(t *testing.T) {
	tests := []struct {
		op    isa.Op
		a, b  int64
		taken bool
	}{
		{isa.OpBeq, 3, 3, true},
		{isa.OpBeq, 3, 4, false},
		{isa.OpBne, 3, 4, true},
		{isa.OpBne, 3, 3, false},
		{isa.OpBlt, -1, 0, true},
		{isa.OpBlt, 0, 0, false},
		{isa.OpBlt, 1, 0, false},
		{isa.OpBge, 0, 0, true},
		{isa.OpBge, -1, 0, false},
		{isa.OpBge, 5, 4, true},
	}
	for _, tt := range tests {
		b := program.NewBuilder("br")
		b.Emit(isa.Inst{Op: tt.op, Dst: isa.NoReg, Src1: isa.R(1), Src2: isa.R(2), Target: 2})
		b.Halt()            // fall-through
		b.MovI(isa.R(5), 1) // pc 2: the taken target
		b.Halt()
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		e := New(p, nil)
		e.SetReg(isa.R(1), tt.a)
		e.SetReg(isa.R(2), tt.b)
		e.Run(0)
		got := e.Reg(isa.R(5)) == 1
		if got != tt.taken {
			t.Errorf("%v(%d, %d): taken = %v, want %v", tt.op, tt.a, tt.b, got, tt.taken)
		}
	}
}

func TestBranchAgainstImplicitZero(t *testing.T) {
	// Conditional branches with Src2 == NoReg compare against zero.
	b := program.NewBuilder("z")
	b.MovI(isa.R(1), -5)
	b.Emit(isa.Inst{Op: isa.OpBlt, Dst: isa.NoReg, Src1: isa.R(1), Src2: isa.NoReg, Target: 3})
	b.Halt()
	b.MovI(isa.R(5), 1)
	b.Halt()
	e := New(b.MustBuild(), nil)
	e.Run(0)
	if e.Reg(isa.R(5)) != 1 {
		t.Errorf("blt r1, <zero> with r1=-5 not taken")
	}
}

func TestNopAndHalt(t *testing.T) {
	b := program.NewBuilder("nh")
	b.Nop()
	b.Nop()
	b.Halt()
	e := New(b.MustBuild(), nil)
	if n := e.Run(0); n != 3 {
		t.Errorf("ran %d insts, want 3", n)
	}
	if !e.Done() {
		t.Errorf("not done after halt")
	}
}

func TestJmpSemantics(t *testing.T) {
	b := program.NewBuilder("jmp")
	b.Jmp("over")
	b.MovI(isa.R(5), 99) // skipped
	b.Label("over")
	b.MovI(isa.R(6), 1)
	b.Halt()
	e := New(b.MustBuild(), nil)
	e.Run(0)
	if e.Reg(isa.R(5)) != 0 || e.Reg(isa.R(6)) != 1 {
		t.Errorf("jmp did not skip: r5=%d r6=%d", e.Reg(isa.R(5)), e.Reg(isa.R(6)))
	}
}

func TestAddressWraparound(t *testing.T) {
	// Negative displacement addressing.
	b := program.NewBuilder("neg")
	b.MovI(isa.R(1), 0x1040)
	b.MovI(isa.R(2), 77)
	b.Store(isa.R(1), -64, isa.R(2))
	b.Load(isa.R(3), isa.R(1), -64)
	b.Halt()
	e := New(b.MustBuild(), nil)
	e.Run(0)
	if e.Reg(isa.R(3)) != 77 {
		t.Errorf("negative-displacement round trip = %d", e.Reg(isa.R(3)))
	}
	if e.Mem().ReadWord(0x1000) != 77 {
		t.Errorf("store landed at wrong address")
	}
}
