package emu

import (
	"crisp/internal/isa"
	"crisp/internal/program"
)

// Batched warm-stream recording: FastForwardBatch is FastForward with the
// Warmer callbacks replaced by an append-only event log, so the functional
// fast-forward of one region can overlap with the (possibly parallel)
// warming replay of the previous one. A Batch preserves the exact event
// order FastForward would have delivered; replaying it through a Warmer
// produces bit-identical warmed state, which is what lets checkpoint
// capture fan the replay out across per-variant goroutines without
// changing any captured byte.

// EvKind tags one recorded warm-stream event.
type EvKind uint8

// Warm-stream event kinds, in the order FastForward emits them.
const (
	// EvInstLine is a 64B code-line change; Addr is the line address.
	EvInstLine EvKind = iota
	// EvData is a load or store; PC is the program index, Addr the
	// effective address, Flag the store bit.
	EvData
	// EvBranch is a control-flow instruction; PC is the program index,
	// NextPC the successor, Flag the taken bit.
	EvBranch
)

// BatchEv is one recorded event. The fields are packed so a batch of
// tens of thousands of events stays cache-friendly: 24 bytes per event,
// no pointers, so batches recycle through a pool without allocation and
// without growing GC scan work.
type BatchEv struct {
	Kind   EvKind
	Flag   bool  // EvData: store; EvBranch: taken
	Core   uint8 // producing core for interleaved multi-core batches
	PC     int32 // program index (EvData, EvBranch)
	NextPC int32 // successor program index (EvBranch)
	Addr   uint64
}

// Batch is a fixed-order slice of warm-stream events recorded by
// FastForwardBatch. It is append-only while recording and strictly
// read-only while being replayed (several goroutines may replay one
// batch concurrently).
type Batch struct {
	Ev []BatchEv
}

// Reset empties the batch for reuse, keeping its capacity.
func (b *Batch) Reset() { b.Ev = b.Ev[:0] }

// FastForwardBatch executes up to limit instructions functionally,
// appending the warm-stream events FastForward would have delivered to b
// instead of calling a Warmer. It returns the number of instructions
// executed and the updated instruction-line dedup state.
//
// lastLine threads FastForward's per-call code-line dedup across batch
// boundaries: pass ^uint64(0) where the sequential path would start a
// fresh FastForward call (a new warm phase, or a new interleave chunk in
// the multi-core capture), and the returned value to continue the same
// logical call in the next batch. Getting this wrong does not corrupt
// anything, but the replayed state would no longer be bit-identical to
// sequential warming. core tags every appended event for interleaved
// multi-core batches; single-core callers pass 0.
func (e *Emulator) FastForwardBatch(limit uint64, b *Batch, core uint8, lastLine uint64) (uint64, uint64) {
	var n uint64
	for n < limit {
		d, ok := e.Step()
		if !ok {
			break
		}
		n++
		if line := e.prog.ByteAddr(d.PC) &^ 63; line != lastLine {
			lastLine = line
			b.Ev = append(b.Ev, BatchEv{Kind: EvInstLine, Core: core, Addr: line})
		}
		switch op := d.Inst.Op; {
		case op == isa.OpLoad:
			b.Ev = append(b.Ev, BatchEv{Kind: EvData, Core: core, PC: int32(d.PC), Addr: d.Addr})
		case op == isa.OpStore:
			b.Ev = append(b.Ev, BatchEv{Kind: EvData, Flag: true, Core: core, PC: int32(d.PC), Addr: d.Addr})
		case op.IsBranch():
			b.Ev = append(b.Ev, BatchEv{Kind: EvBranch, Flag: d.Taken, Core: core, PC: int32(d.PC), NextPC: int32(d.NextPC)})
		}
	}
	return n, lastLine
}

// Replay streams the batch's events for one core into w in recorded
// order, exactly as FastForward would have delivered them live. prog
// resolves branch program indices back to instructions; it must be the
// program the events were recorded from.
func (b *Batch) Replay(core uint8, prog *program.Program, w Warmer) {
	for i := range b.Ev {
		ev := &b.Ev[i]
		if ev.Core != core {
			continue
		}
		switch ev.Kind {
		case EvInstLine:
			w.WarmInstLine(ev.Addr)
		case EvData:
			w.WarmData(int(ev.PC), ev.Addr, ev.Flag)
		case EvBranch:
			w.WarmBranch(int(ev.PC), &prog.Insts[ev.PC], ev.Flag, int(ev.NextPC))
		}
	}
}
