package branch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// accuracy runs n outcomes from gen through p and returns the fraction
// predicted correctly over the second half (after warmup).
func accuracy(p Predictor, pc uint64, n int, gen func(i int) bool) float64 {
	correct, counted := 0, 0
	for i := 0; i < n; i++ {
		actual := gen(i)
		pred := p.PredictAndTrain(pc, actual)
		if i >= n/2 {
			counted++
			if pred == actual {
				correct++
			}
		}
	}
	return float64(correct) / float64(counted)
}

func TestPerfectPredictor(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if acc := accuracy(Perfect{}, 0x100, 1000, func(int) bool { return r.Intn(2) == 0 }); acc != 1.0 {
		t.Errorf("perfect accuracy = %v", acc)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	if acc := accuracy(NewBimodal(10), 0x40, 500, func(int) bool { return true }); acc != 1.0 {
		t.Errorf("always-taken accuracy = %v, want 1.0", acc)
	}
	// 90% taken: bimodal should get ~90%.
	r := rand.New(rand.NewSource(2))
	acc := accuracy(NewBimodal(10), 0x40, 4000, func(int) bool { return r.Float64() < 0.9 })
	if acc < 0.85 {
		t.Errorf("biased accuracy = %v, want >= 0.85", acc)
	}
}

func TestGshareLearnsAlternating(t *testing.T) {
	acc := accuracy(NewGshare(12, 12), 0x40, 2000, func(i int) bool { return i%2 == 0 })
	if acc < 0.99 {
		t.Errorf("gshare alternating accuracy = %v, want ~1", acc)
	}
	// Bimodal cannot learn alternation: it should be markedly worse.
	bacc := accuracy(NewBimodal(12), 0x40, 2000, func(i int) bool { return i%2 == 0 })
	if bacc > 0.75 {
		t.Errorf("bimodal alternating accuracy = %v, expected poor", bacc)
	}
}

func TestTAGELearnsLoopPattern(t *testing.T) {
	// Loop branch: taken 19 times, then not taken (period 20). Requires
	// ~20 bits of history.
	acc := accuracy(NewTAGE(12, 10), 0x80, 8000, func(i int) bool { return i%20 != 19 })
	if acc < 0.98 {
		t.Errorf("TAGE loop accuracy = %v, want >= 0.98", acc)
	}
}

func TestTAGEBeatsGshareOnLongPattern(t *testing.T) {
	// Period-50 pattern needs longer history than gshare's.
	gen := func(i int) bool { return i%50 != 49 && i%50 != 24 }
	tacc := accuracy(NewTAGE(12, 10), 0x80, 20000, gen)
	gacc := accuracy(NewGshare(12, 12), 0x80, 20000, gen)
	if tacc < gacc {
		t.Errorf("TAGE %.3f < gshare %.3f on long pattern", tacc, gacc)
	}
	if tacc < 0.95 {
		t.Errorf("TAGE long-pattern accuracy = %v, want >= 0.95", tacc)
	}
}

func TestTAGERandomIsHard(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	acc := accuracy(NewTAGE(10, 8), 0x80, 10000, func(int) bool { return r.Intn(2) == 0 })
	if acc < 0.4 || acc > 0.6 {
		t.Errorf("TAGE random accuracy = %v, want ~0.5", acc)
	}
}

func TestTAGEMultipleBranches(t *testing.T) {
	// Two branches with different biases must not destructively alias.
	p := NewTAGE(12, 10)
	correct, total := 0, 0
	for i := 0; i < 8000; i++ {
		for pc, gen := range map[uint64]bool{0x100: true, 0x204: i%3 == 0} {
			pred := p.PredictAndTrain(pc, gen)
			if i > 4000 {
				total++
				if pred == gen {
					correct++
				}
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Errorf("two-branch accuracy = %v, want >= 0.95", acc)
	}
}

func TestTAGEMispredictRate(t *testing.T) {
	p := NewTAGE(10, 8)
	for i := 0; i < 1000; i++ {
		p.PredictAndTrain(0x10, true)
	}
	if r := p.MispredictRate(); r > 0.05 {
		t.Errorf("always-taken mispredict rate = %v", r)
	}
}

func TestBTBHitAfterInsert(t *testing.T) {
	b := NewBTB(8192, 4)
	b.Insert(0x400, 77)
	if tgt, ok := b.Lookup(0x400); !ok || tgt != 77 {
		t.Errorf("Lookup = %d,%v", tgt, ok)
	}
	if _, ok := b.Lookup(0x404); ok {
		t.Errorf("lookup of never-inserted pc hit")
	}
	b.Insert(0x400, 99) // update in place
	if tgt, _ := b.Lookup(0x400); tgt != 99 {
		t.Errorf("updated target = %d", tgt)
	}
}

func TestBTBEvictsLRU(t *testing.T) {
	b := NewBTB(8, 2) // 4 sets x 2 ways
	// Three PCs mapping to set 0 (pc % 4 == 0).
	b.Insert(0, 10)
	b.Insert(4, 11)
	b.Lookup(0) // make pc 0 MRU
	b.Insert(8, 12)
	if _, ok := b.Lookup(4); ok {
		t.Errorf("LRU entry pc=4 survived")
	}
	if tgt, ok := b.Lookup(0); !ok || tgt != 10 {
		t.Errorf("MRU entry pc=0 evicted")
	}
	if tgt, ok := b.Lookup(8); !ok || tgt != 12 {
		t.Errorf("new entry missing")
	}
}

func TestBTBProperty(t *testing.T) {
	f := func(pcs []uint64) bool {
		b := NewBTB(1024, 4)
		if len(pcs) > 64 {
			pcs = pcs[:64]
		}
		for i, pc := range pcs {
			b.Insert(pc, i)
		}
		// The most recently inserted pc must always hit.
		if len(pcs) == 0 {
			return true
		}
		last := pcs[len(pcs)-1]
		want := len(pcs) - 1
		for i := len(pcs) - 1; i >= 0; i-- {
			if pcs[i] == last {
				want = i
				break
			}
		}
		_ = want
		_, ok := b.Lookup(last)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRASBalancedCalls(t *testing.T) {
	r := NewRAS(16)
	for i := 0; i < 10; i++ {
		r.Push(100 + i)
	}
	for i := 9; i >= 0; i-- {
		got, ok := r.Pop()
		if !ok || got != 100+i {
			t.Fatalf("Pop = %d,%v, want %d", got, ok, 100+i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Errorf("underflow Pop ok")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(4)
	for i := 0; i < 6; i++ {
		r.Push(i)
	}
	// Deepest 4 survive: 5,4,3,2.
	for want := 5; want >= 2; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %d,%v, want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Errorf("over-popped wrapped RAS")
	}
}
