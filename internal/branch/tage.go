package branch

// TAGE implements a TAgged GEometric history length predictor (Seznec,
// "A case for (partially)-tagged geometric history length predictors"),
// the state-of-the-art direction predictor the paper simulates (Table 1).
//
// The predictor consists of a bimodal base table and several tagged
// components indexed with hashes of geometrically increasing global
// history lengths. The longest-history matching component provides the
// prediction; allocation on mispredictions steers hard branches into
// longer-history components.
type TAGE struct {
	base   []int8 // bimodal base predictor, 2-bit
	baseSz uint64

	tables []tageTable

	hist    []uint8 // circular global history buffer, 1 bit per entry
	histPos int

	useAltOnNA int8 // counter: trust alt prediction for newly allocated entries

	tick    uint64 // usefulness aging clock
	rng     uint64 // xorshift for allocation randomization
	mispred uint64
	total   uint64
}

type tageEntry struct {
	tag uint16
	ctr int8  // 3-bit signed: -4..3, >=0 predicts taken
	u   uint8 // 2-bit usefulness
}

type tageTable struct {
	entries []tageEntry
	mask    uint64
	histLen int
	tagBits uint

	idxFold  folded
	tagFold1 folded
	tagFold2 folded
}

// folded is an incrementally maintained folded history register
// (Seznec's circular shift register), compressing histLen bits of global
// history into compLen bits.
type folded struct {
	comp    uint64
	compLen uint
	origLen int
}

func (f *folded) update(newBit, evictedBit uint64) {
	f.comp = (f.comp << 1) | newBit
	f.comp ^= evictedBit << (uint(f.origLen) % f.compLen)
	f.comp ^= f.comp >> f.compLen
	f.comp &= (1 << f.compLen) - 1
}

// tageHistLens are the geometric history lengths of the tagged components.
var tageHistLens = []int{4, 8, 16, 32, 64, 130}

// Default TAGE geometry used by the core frontend and by checkpoint
// warming (which must build an identically-shaped predictor).
const (
	DefaultTAGELogBase   = 13
	DefaultTAGELogTagged = 11
)

// NewTAGE returns a TAGE predictor with a 2^logBase bimodal base table and
// 2^logTagged entries per tagged component.
func NewTAGE(logBase, logTagged int) *TAGE {
	t := &TAGE{
		base:   make([]int8, 1<<logBase),
		baseSz: uint64(1<<logBase - 1),
		rng:    0x9E3779B97F4A7C15,
	}
	maxHist := tageHistLens[len(tageHistLens)-1]
	t.hist = make([]uint8, maxHist+1)
	for _, hl := range tageHistLens {
		tt := tageTable{
			entries: make([]tageEntry, 1<<logTagged),
			mask:    uint64(1<<logTagged - 1),
			histLen: hl,
			tagBits: 11,
		}
		tt.idxFold = folded{compLen: uint(logTagged), origLen: hl}
		tt.tagFold1 = folded{compLen: tt.tagBits, origLen: hl}
		tt.tagFold2 = folded{compLen: tt.tagBits - 1, origLen: hl}
		t.tables = append(t.tables, tt)
	}
	return t
}

func (t *tageTable) index(pc uint64) uint64 {
	return (pc ^ (pc >> 4) ^ t.idxFold.comp) & t.mask
}

func (t *tageTable) tag(pc uint64) uint16 {
	return uint16((pc ^ t.tagFold1.comp ^ (t.tagFold2.comp << 1)) & ((1 << t.tagBits) - 1))
}

// PredictAndTrain implements Predictor.
func (t *TAGE) PredictAndTrain(pc uint64, actual bool) bool {
	t.total++

	// Find provider (longest matching) and alternate (next longest).
	provider, alt := -1, -1
	var provIdx, altIdx uint64
	for i := len(t.tables) - 1; i >= 0; i-- {
		tbl := &t.tables[i]
		idx := tbl.index(pc)
		if tbl.entries[idx].tag == tbl.tag(pc) {
			if provider < 0 {
				provider, provIdx = i, idx
			} else {
				alt, altIdx = i, idx
				break
			}
		}
	}

	basePred := t.base[pc&t.baseSz] >= 0
	altPred := basePred
	if alt >= 0 {
		altPred = t.tables[alt].entries[altIdx].ctr >= 0
	}

	pred := altPred
	providerWeak := false
	if provider >= 0 {
		e := &t.tables[provider].entries[provIdx]
		providerWeak = (e.ctr == 0 || e.ctr == -1) && e.u == 0
		if providerWeak && t.useAltOnNA >= 0 {
			pred = altPred
		} else {
			pred = e.ctr >= 0
		}
	}

	t.update(pc, actual, pred, altPred, provider, provIdx, alt, providerWeak)
	if pred != actual {
		t.mispred++
	}
	return pred
}

func (t *TAGE) update(pc uint64, actual, pred, altPred bool, provider int, provIdx uint64, alt int, providerWeak bool) {
	// Train useAltOnNA when the provider was newly allocated/weak.
	if provider >= 0 && providerWeak && pred != altPred {
		provCorrect := (t.tables[provider].entries[provIdx].ctr >= 0) == actual
		if provCorrect {
			t.useAltOnNA = sat(t.useAltOnNA, false, -4, 3)
		} else {
			t.useAltOnNA = sat(t.useAltOnNA, true, -4, 3)
		}
	}

	// Update provider counter (or base if no provider).
	if provider >= 0 {
		e := &t.tables[provider].entries[provIdx]
		e.ctr = sat(e.ctr, actual, -4, 3)
		// Usefulness: provider differed from alternate and was correct.
		provPred := e.ctr >= 0 // note: post-update; acceptable approximation
		if provPred == actual && (e.ctr >= 0) != altPred {
			if pred == actual && e.u < 3 {
				e.u++
			} else if pred != actual && e.u > 0 {
				e.u--
			}
		}
	} else {
		i := pc & t.baseSz
		t.base[i] = sat(t.base[i], actual, -2, 1)
	}

	// Allocate a new entry in a longer-history table on misprediction.
	if pred != actual && provider < len(t.tables)-1 {
		start := provider + 1
		// Randomize among candidate tables to avoid ping-ponging.
		t.rng ^= t.rng << 13
		t.rng ^= t.rng >> 7
		t.rng ^= t.rng << 17
		if start < len(t.tables)-1 && t.rng&3 == 0 {
			start++
		}
		allocated := false
		for i := start; i < len(t.tables); i++ {
			tbl := &t.tables[i]
			idx := tbl.index(pc)
			if tbl.entries[idx].u == 0 {
				tbl.entries[idx] = tageEntry{tag: tbl.tag(pc), ctr: ctrInit(actual), u: 0}
				allocated = true
				break
			}
		}
		if !allocated {
			// Decay usefulness of the candidates so future allocations
			// succeed.
			for i := start; i < len(t.tables); i++ {
				tbl := &t.tables[i]
				idx := tbl.index(pc)
				if tbl.entries[idx].u > 0 {
					tbl.entries[idx].u--
				}
			}
		}
	}

	// Periodic graceful aging of usefulness bits.
	t.tick++
	if t.tick&(1<<18-1) == 0 {
		for i := range t.tables {
			for j := range t.tables[i].entries {
				t.tables[i].entries[j].u >>= 1
			}
		}
	}

	t.pushHistory(actual)
	_ = alt
}

func ctrInit(taken bool) int8 {
	if taken {
		return 0
	}
	return -1
}

func (t *TAGE) pushHistory(taken bool) {
	newBit := b2u(taken)
	t.hist[t.histPos] = uint8(newBit)
	for i := range t.tables {
		tbl := &t.tables[i]
		evictPos := (t.histPos - tbl.histLen + len(t.hist)) % len(t.hist)
		evicted := uint64(t.hist[evictPos])
		tbl.idxFold.update(newBit, evicted)
		tbl.tagFold1.update(newBit, evicted)
		tbl.tagFold2.update(newBit, evicted)
	}
	t.histPos = (t.histPos + 1) % len(t.hist)
}

// Clone returns a deep copy of the predictor: trained tables, folded
// history registers and allocation RNG all carry over, so a clone
// restored into a detailed window predicts exactly as the warmed
// original would, without sharing any mutable state.
func (t *TAGE) Clone() *TAGE {
	cl := *t
	cl.base = append([]int8(nil), t.base...)
	cl.hist = append([]uint8(nil), t.hist...)
	cl.tables = make([]tageTable, len(t.tables))
	for i, tbl := range t.tables {
		tbl.entries = append([]tageEntry(nil), tbl.entries...)
		cl.tables[i] = tbl
	}
	return &cl
}

// MispredictRate returns the fraction of mispredicted calls so far.
func (t *TAGE) MispredictRate() float64 {
	if t.total == 0 {
		return 0
	}
	return float64(t.mispred) / float64(t.total)
}
