package branch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFoldedHistoryMatchesNaive verifies the incremental folded-history
// register against a naive recomputation from the raw history bits — the
// trickiest invariant in the TAGE implementation.
func TestFoldedHistoryMatchesNaive(t *testing.T) {
	f := func(seed int64, histLen8, compLen8 uint8) bool {
		histLen := int(histLen8%120) + 2
		compLen := uint(compLen8%14) + 2
		r := rand.New(rand.NewSource(seed))

		fh := folded{compLen: compLen, origLen: histLen}
		// Raw history, newest first.
		var hist []uint64

		naive := func() uint64 {
			// Fold the newest histLen bits into compLen bits exactly as the
			// shift-register accumulates them: bit i of the history (0 =
			// newest) lands at position (histLen-1-i) mod compLen... easiest
			// is to replay the updates on a fresh register.
			replay := folded{compLen: compLen, origLen: histLen}
			// Replay from oldest to newest.
			for i := len(hist) - 1; i >= 0; i-- {
				evicted := uint64(0)
				if i+histLen < len(hist) {
					evicted = hist[i+histLen]
				}
				replay.update(hist[i], evicted)
			}
			return replay.comp
		}

		for step := 0; step < 200; step++ {
			bit := uint64(r.Intn(2))
			evicted := uint64(0)
			if len(hist) >= histLen {
				evicted = hist[histLen-1]
			}
			fh.update(bit, evicted)
			hist = append([]uint64{bit}, hist...)
			if len(hist) > histLen+8 {
				hist = hist[:histLen+8]
			}
		}
		return fh.comp == naive()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTAGEDeterministic(t *testing.T) {
	gen := func(i int) bool { return i%7 == 3 || i%3 == 1 }
	run := func() []bool {
		p := NewTAGE(10, 8)
		out := make([]bool, 500)
		for i := range out {
			out[i] = p.PredictAndTrain(uint64(0x40+i%13*4), gen(i))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction %d differs between identical runs", i)
		}
	}
}

func TestTAGEHistoryLengthsGeometric(t *testing.T) {
	for i := 1; i < len(tageHistLens); i++ {
		if tageHistLens[i] <= tageHistLens[i-1] {
			t.Errorf("history lengths not increasing: %v", tageHistLens)
		}
	}
	if tageHistLens[0] > 8 || tageHistLens[len(tageHistLens)-1] < 64 {
		t.Errorf("history span %v too narrow for a TAGE", tageHistLens)
	}
}

// TestTAGEAllocationOnMispredict: after sustained mispredictions on a
// pattern the base table cannot express, tagged entries must be allocated
// (indirectly observed: accuracy recovers).
func TestTAGEAllocationOnMispredict(t *testing.T) {
	p := NewTAGE(12, 10)
	// Pattern: alternating, which bimodal alone cannot learn (stays ~50%).
	correct := 0
	for i := 0; i < 4000; i++ {
		actual := i%2 == 0
		if p.PredictAndTrain(0x99, actual) == actual && i >= 2000 {
			correct++
		}
	}
	if acc := float64(correct) / 2000; acc < 0.95 {
		t.Errorf("TAGE failed to allocate for alternating pattern: acc %.3f", acc)
	}
}
