// Package branch implements the branch-prediction structures of the
// simulated frontend: a TAGE direction predictor (the paper's Table 1
// baseline), simpler gshare/bimodal alternatives, a set-associative branch
// target buffer, and a return address stack.
//
// Predictors follow the trace-driven convention: PredictAndTrain returns
// the prediction for a branch and immediately trains on the actual
// outcome. The timing cost of a misprediction is modeled by the core, not
// here; this package models accuracy.
package branch

// Predictor predicts conditional branch directions.
type Predictor interface {
	// PredictAndTrain returns the predicted direction for the branch at pc
	// and trains the predictor with the actual outcome.
	PredictAndTrain(pc uint64, actual bool) bool
}

// Perfect is an oracle direction predictor (used for the perfect-BP
// studies of Section 5.3).
type Perfect struct{}

// PredictAndTrain returns the actual outcome.
func (Perfect) PredictAndTrain(_ uint64, actual bool) bool { return actual }

// Bimodal is a classic PC-indexed table of 2-bit saturating counters.
type Bimodal struct {
	ctrs []int8
	mask uint64
}

// NewBimodal returns a bimodal predictor with 2^logSize counters.
func NewBimodal(logSize int) *Bimodal {
	n := 1 << logSize
	b := &Bimodal{ctrs: make([]int8, n), mask: uint64(n - 1)}
	return b
}

// PredictAndTrain implements Predictor.
func (b *Bimodal) PredictAndTrain(pc uint64, actual bool) bool {
	i := pc & b.mask
	pred := b.ctrs[i] >= 0
	b.ctrs[i] = sat(b.ctrs[i], actual, -2, 1)
	return pred
}

// Gshare is a global-history XOR-indexed 2-bit counter predictor.
type Gshare struct {
	ctrs    []int8
	mask    uint64
	history uint64
	histLen uint
}

// NewGshare returns a gshare predictor with 2^logSize counters and the
// given history length (<= 64).
func NewGshare(logSize int, histLen uint) *Gshare {
	n := 1 << logSize
	return &Gshare{ctrs: make([]int8, n), mask: uint64(n - 1), histLen: histLen}
}

// PredictAndTrain implements Predictor.
func (g *Gshare) PredictAndTrain(pc uint64, actual bool) bool {
	i := (pc ^ g.history) & g.mask
	pred := g.ctrs[i] >= 0
	g.ctrs[i] = sat(g.ctrs[i], actual, -2, 1)
	g.history = ((g.history << 1) | b2u(actual)) & ((1 << g.histLen) - 1)
	return pred
}

func sat(c int8, up bool, lo, hi int8) int8 {
	if up {
		if c < hi {
			return c + 1
		}
		return c
	}
	if c > lo {
		return c - 1
	}
	return c
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTB is a set-associative branch target buffer mapping branch PCs to
// targets. Table 1: 8K entries. It models whether the fetch stage knows a
// taken branch's target; misses cost a decode redirect bubble.
type BTB struct {
	sets       int
	ways       int
	tags       []uint64
	valid      []bool
	targets    []int
	lru        []uint8
	hits, miss uint64
}

// NewBTB returns a BTB with the given total entry count and associativity.
func NewBTB(entries, ways int) *BTB {
	sets := entries / ways
	if sets < 1 {
		sets = 1
	}
	return &BTB{
		sets: sets, ways: ways,
		tags:    make([]uint64, sets*ways),
		valid:   make([]bool, sets*ways),
		targets: make([]int, sets*ways),
		lru:     make([]uint8, sets*ways),
	}
}

// Lookup returns the predicted target for the branch at pc and whether the
// BTB hit.
func (b *BTB) Lookup(pc uint64) (target int, ok bool) {
	base := int(pc%uint64(b.sets)) * b.ways
	for w := 0; w < b.ways; w++ {
		if b.valid[base+w] && b.tags[base+w] == pc {
			b.hits++
			b.touch(base, w)
			return b.targets[base+w], true
		}
	}
	b.miss++
	return 0, false
}

// Insert records the target for the branch at pc, evicting LRU on
// conflict.
func (b *BTB) Insert(pc uint64, target int) {
	base := int(pc%uint64(b.sets)) * b.ways
	victim := 0
	for w := 0; w < b.ways; w++ {
		if !b.valid[base+w] || b.tags[base+w] == pc {
			victim = w
			break
		}
		if b.lru[base+w] > b.lru[base+victim] {
			victim = w
		}
	}
	b.tags[base+victim] = pc
	b.valid[base+victim] = true
	b.targets[base+victim] = target
	b.touch(base, victim)
}

func (b *BTB) touch(base, way int) {
	for w := 0; w < b.ways; w++ {
		if b.lru[base+w] < 255 {
			b.lru[base+w]++
		}
	}
	b.lru[base+way] = 0
}

// Stats returns hit and miss counts.
func (b *BTB) Stats() (hits, misses uint64) { return b.hits, b.miss }

// Clone returns a deep copy of the BTB's warmed contents with zeroed
// hit/miss counters (warming must not pollute measured-window stats).
func (b *BTB) Clone() *BTB {
	return &BTB{
		sets: b.sets, ways: b.ways,
		tags:    append([]uint64(nil), b.tags...),
		valid:   append([]bool(nil), b.valid...),
		targets: append([]int(nil), b.targets...),
		lru:     append([]uint8(nil), b.lru...),
	}
}

// RAS is a return address stack. Overflow wraps (oldest entries are
// clobbered), underflow mispredicts, as in real hardware.
type RAS struct {
	stack []int
	top   int
	depth int
}

// NewRAS returns a RAS with the given entry count.
func NewRAS(entries int) *RAS { return &RAS{stack: make([]int, entries)} }

// Push records a return address at a call.
func (r *RAS) Push(retPC int) {
	r.stack[r.top] = retPC
	r.top = (r.top + 1) % len(r.stack)
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the target of a return. ok is false on underflow.
func (r *RAS) Pop() (retPC int, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	r.depth--
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	return r.stack[r.top], true
}

// Clone returns a deep copy of the stack.
func (r *RAS) Clone() *RAS {
	return &RAS{stack: append([]int(nil), r.stack...), top: r.top, depth: r.depth}
}
