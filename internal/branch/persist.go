package branch

import (
	"fmt"

	"crisp/internal/codec"
)

// This file serializes the warmed frontend structures for the persistent
// checkpoint store. Encoders write geometry alongside contents, so a
// decoded structure is byte-for-byte the warmed original — including
// history registers, usefulness clocks and the allocation RNG, which all
// influence later predictions. Decoders validate geometry against sane
// bounds and never panic on corrupt input: the store treats a decode
// error as a miss and recaptures.

// EncodeState serializes the predictor's full training state.
func (t *TAGE) EncodeState(w *codec.Writer) {
	w.U32(uint32(len(t.base)))
	for _, c := range t.base {
		w.I8(c)
	}
	w.U64(t.baseSz)
	w.U32(uint32(len(t.tables)))
	for i := range t.tables {
		tbl := &t.tables[i]
		w.U32(uint32(len(tbl.entries)))
		for _, e := range tbl.entries {
			w.U16(e.tag)
			w.I8(e.ctr)
			w.U8(e.u)
		}
		w.U64(tbl.mask)
		w.Int(tbl.histLen)
		w.Uint(tbl.tagBits)
		for _, f := range []folded{tbl.idxFold, tbl.tagFold1, tbl.tagFold2} {
			w.U64(f.comp)
			w.Uint(f.compLen)
			w.Int(f.origLen)
		}
	}
	w.Blob(t.hist)
	w.Int(t.histPos)
	w.I8(t.useAltOnNA)
	w.U64(t.tick)
	w.U64(t.rng)
	w.U64(t.mispred)
	w.U64(t.total)
}

// maxTableLen bounds decoded table sizes so a corrupt length prefix
// cannot drive a huge allocation before the truncation is detected.
const maxTableLen = 1 << 24

// DecodeTAGE reconstructs a predictor encoded by EncodeState.
func DecodeTAGE(r *codec.Reader) (*TAGE, error) {
	nb := int(r.U32())
	if nb <= 0 || nb > maxTableLen {
		return nil, fmt.Errorf("branch: TAGE base size %d out of range", nb)
	}
	t := &TAGE{base: make([]int8, nb)}
	for i := range t.base {
		t.base[i] = r.I8()
	}
	t.baseSz = r.U64()
	if t.baseSz != uint64(nb-1) {
		return nil, fmt.Errorf("branch: TAGE base mask %d does not match %d entries", t.baseSz, nb)
	}
	nt := int(r.U32())
	if nt < 0 || nt > 64 {
		return nil, fmt.Errorf("branch: TAGE table count %d out of range", nt)
	}
	for i := 0; i < nt; i++ {
		var tbl tageTable
		ne := int(r.U32())
		if ne <= 0 || ne > maxTableLen {
			return nil, fmt.Errorf("branch: TAGE component size %d out of range", ne)
		}
		tbl.entries = make([]tageEntry, ne)
		for j := range tbl.entries {
			tbl.entries[j] = tageEntry{tag: r.U16(), ctr: r.I8(), u: r.U8()}
		}
		tbl.mask = r.U64()
		if tbl.mask != uint64(ne-1) {
			return nil, fmt.Errorf("branch: TAGE component mask %d does not match %d entries", tbl.mask, ne)
		}
		tbl.histLen = r.Int()
		tbl.tagBits = r.Uint()
		for _, f := range []*folded{&tbl.idxFold, &tbl.tagFold1, &tbl.tagFold2} {
			f.comp = r.U64()
			f.compLen = r.Uint()
			f.origLen = r.Int()
			if f.compLen == 0 || f.compLen > 64 {
				return nil, fmt.Errorf("branch: TAGE folded compLen %d out of range", f.compLen)
			}
		}
		t.tables = append(t.tables, tbl)
	}
	t.hist = append([]uint8(nil), r.Blob()...)
	t.histPos = r.Int()
	t.useAltOnNA = r.I8()
	t.tick = r.U64()
	t.rng = r.U64()
	t.mispred = r.U64()
	t.total = r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(t.hist) == 0 || t.histPos < 0 || t.histPos >= len(t.hist) {
		return nil, fmt.Errorf("branch: TAGE history position %d out of range (%d entries)", t.histPos, len(t.hist))
	}
	return t, nil
}

// EncodeState serializes the BTB's geometry and warmed contents.
func (b *BTB) EncodeState(w *codec.Writer) {
	w.Int(b.sets)
	w.Int(b.ways)
	w.U32(uint32(len(b.tags)))
	for i := range b.tags {
		w.U64(b.tags[i])
		w.Bool(b.valid[i])
		w.Int(b.targets[i])
		w.U8(b.lru[i])
	}
	w.U64(b.hits)
	w.U64(b.miss)
}

// DecodeBTB reconstructs a BTB encoded by EncodeState.
func DecodeBTB(r *codec.Reader) (*BTB, error) {
	sets := r.Int()
	ways := r.Int()
	n := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if sets <= 0 || ways <= 0 || n != sets*ways || n > maxTableLen {
		return nil, fmt.Errorf("branch: BTB geometry %dx%d does not match %d entries", sets, ways, n)
	}
	b := &BTB{
		sets: sets, ways: ways,
		tags:    make([]uint64, n),
		valid:   make([]bool, n),
		targets: make([]int, n),
		lru:     make([]uint8, n),
	}
	for i := 0; i < n; i++ {
		b.tags[i] = r.U64()
		b.valid[i] = r.Bool()
		b.targets[i] = r.Int()
		b.lru[i] = r.U8()
	}
	b.hits = r.U64()
	b.miss = r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// EncodeState serializes the return address stack.
func (s *RAS) EncodeState(w *codec.Writer) {
	w.U32(uint32(len(s.stack)))
	for _, v := range s.stack {
		w.Int(v)
	}
	w.Int(s.top)
	w.Int(s.depth)
}

// DecodeRAS reconstructs a RAS encoded by EncodeState.
func DecodeRAS(r *codec.Reader) (*RAS, error) {
	n := int(r.U32())
	if n <= 0 || n > maxTableLen {
		return nil, fmt.Errorf("branch: RAS size %d out of range", n)
	}
	s := &RAS{stack: make([]int, n)}
	for i := range s.stack {
		s.stack[i] = r.Int()
	}
	s.top = r.Int()
	s.depth = r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if s.top < 0 || s.top >= n || s.depth < 0 || s.depth > n {
		return nil, fmt.Errorf("branch: RAS top %d / depth %d out of range (%d entries)", s.top, s.depth, n)
	}
	return s, nil
}
