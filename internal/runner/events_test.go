package runner

import (
	"context"
	"sync"
	"testing"

	"crisp/internal/sim"
)

// TestTaskEvents: an owned task emits queued → running → done exactly
// once with the store-style (kind, key) pair, and a memoized re-request
// emits nothing (single-flight = one lifecycle per key).
func TestTaskEvents(t *testing.T) {
	var mu sync.Mutex
	var events []TaskEvent
	r, err := New(context.Background(), Options{Workers: 2, OnEvent: func(ev TaskEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.RunSpec{Workload: "pointerchase", Insts: 20_000}
	if _, err := r.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), spec); err != nil { // memoized: no new events
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	var seq []TaskState
	for _, ev := range events {
		if ev.Kind != kindRun || ev.Key != spec.Key() {
			t.Errorf("unexpected event (%s, %s): want kind %q key %q", ev.Kind, ev.Key, kindRun, spec.Key())
			continue
		}
		if ev.Err != nil {
			t.Errorf("event %v carries error %v", ev.State, ev.Err)
		}
		seq = append(seq, ev.State)
	}
	want := []TaskState{TaskQueued, TaskRunning, TaskDone}
	if len(seq) != len(want) {
		t.Fatalf("event sequence %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("event sequence %v, want %v", seq, want)
		}
	}
}

// TestRemoteExcludesLocalStore: a remote runner must not also persist or
// shard locally — the server owns the store.
func TestRemoteExcludesLocalStore(t *testing.T) {
	if _, err := New(context.Background(), Options{Remote: stubRemote{}, CacheDir: t.TempDir()}); err == nil {
		t.Error("New accepted Remote together with CacheDir")
	}
	if _, err := New(context.Background(), Options{Remote: stubRemote{}, ShardCount: 2, ShardIndex: 0, CacheDir: t.TempDir()}); err == nil {
		t.Error("New accepted Remote together with sharding")
	}
}

// stubRemote satisfies Remote without doing anything; only New's
// validation is under test.
type stubRemote struct{ Remote }
