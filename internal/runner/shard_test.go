package runner

import (
	"context"
	"testing"
	"time"

	"crisp/internal/sim"
)

// sweepSpecs is the 4-config sampled sweep the sharding and
// cross-process tests split: one schedule (so one checkpoint set),
// four prefetcher configs.
func sweepSpecs() []sim.RunSpec {
	s := sim.Sampling{Warm: 15_000, Window: 5_000, Count: 2}
	specs := make([]sim.RunSpec, 0, 4)
	for _, pf := range []sim.PrefetcherKind{sim.PFBOPStream, sim.PFNone, sim.PFStride, sim.PFGHB} {
		specs = append(specs, sim.RunSpec{Workload: "pointerchase", Sampling: &s, Prefetcher: pf})
	}
	return specs
}

// TestParseShard: the flag-level "i/n" parser accepts exactly the
// well-formed in-range assignments and rejects everything that would
// silently skew a sweep.
func TestParseShard(t *testing.T) {
	good := []struct {
		in           string
		index, count int
	}{
		{"0/1", 0, 1},
		{"0/4", 0, 4},
		{"3/4", 3, 4},
		{" 1/2 ", 1, 2}, // stray whitespace from shell quoting
	}
	for _, c := range good {
		i, n, err := ParseShard(c.in)
		if err != nil || i != c.index || n != c.count {
			t.Errorf("ParseShard(%q) = (%d, %d, %v), want (%d, %d, nil)", c.in, i, n, err, c.index, c.count)
		}
	}
	bad := []string{
		"",      // empty
		"2",     // no slash
		"0/0",   // zero count
		"0/-1",  // negative count
		"-1/2",  // negative index
		"2/2",   // index == count
		"3/2",   // index > count
		"a/2",   // non-numeric index
		"0/b",   // non-numeric count
		"0/2/3", // extra piece
		"0/2x",  // trailing garbage
		"1.0/2", // not an integer
	}
	for _, in := range bad {
		if _, _, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) accepted, want error", in)
		}
	}
}

// TestShardValidation: sharding without a store, or with an
// out-of-range index, is a configuration error, not a silent hang.
func TestShardValidation(t *testing.T) {
	if _, err := New(context.Background(), Options{ShardCount: 2}); err == nil {
		t.Error("sharding without a cache dir accepted")
	}
	if _, err := New(context.Background(), Options{ShardCount: 2, ShardIndex: 2, CacheDir: t.TempDir()}); err == nil {
		t.Error("shard index == shard count accepted")
	}
	if _, err := New(context.Background(), Options{ShardCount: 2, ShardIndex: -1, CacheDir: t.TempDir()}); err == nil {
		t.Error("negative shard index accepted")
	}
}

// TestShardOwnership: the key->shard assignment is deterministic,
// total, and disjoint — every key has exactly one owner.
func TestShardOwnership(t *testing.T) {
	dir := t.TempDir()
	const n = 3
	shards := make([]*Runner, n)
	for i := range shards {
		shards[i] = newRunner(t, Options{CacheDir: dir, ShardIndex: i, ShardCount: n})
	}
	for _, spec := range sweepSpecs() {
		owners := 0
		for _, r := range shards {
			if r.ownsKey(spec.Key()) {
				owners++
			}
		}
		if owners != 1 {
			t.Errorf("spec %s has %d owners, want exactly 1", spec.Key(), owners)
		}
	}
	// Unsharded runners own everything.
	solo := newRunner(t, Options{})
	if !solo.ownsKey(sweepSpecs()[0].Key()) {
		t.Error("unsharded runner disowns a key")
	}
}

// TestShardedSweepNoDuplicates is the scale-out contract: two runners
// over one store, each submitting the SAME figure spec list, split the
// work — every spec simulates exactly once globally, every checkpoint
// fast-forward runs exactly once globally, and both sides resolve
// identical results.
func TestShardedSweepNoDuplicates(t *testing.T) {
	dir := t.TempDir()
	specs := sweepSpecs()
	// A long steal grace isolates the ownership split from the stealing
	// fallback: any duplicate execution here is a real dedup bug.
	mk := func(i int) *Runner {
		return newRunner(t, Options{Workers: 2, CacheDir: dir, ShardIndex: i, ShardCount: 2, StealGrace: time.Minute})
	}
	r0, r1 := mk(0), mk(1)
	h0 := make([]*RunHandle, len(specs))
	h1 := make([]*RunHandle, len(specs))
	for i, spec := range specs {
		h0[i] = r0.Submit(spec)
		h1[i] = r1.Submit(spec)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i := range specs {
		a, err := h0[i].Result(ctx)
		if err != nil {
			t.Fatalf("shard 0 spec %d: %v", i, err)
		}
		b, err := h1[i].Result(ctx)
		if err != nil {
			t.Fatalf("shard 1 spec %d: %v", i, err)
		}
		if a.Cycles != b.Cycles || a.Insts != b.Insts || a.IPC() != b.IPC() {
			t.Errorf("spec %d: shards disagree: %d vs %d cycles", i, a.Cycles, b.Cycles)
		}
	}
	s0, s1 := r0.Stats(), r1.Stats()
	if total := s0.Executed + s1.Executed; total != int64(len(specs)) {
		t.Errorf("Executed sum = %d, want %d (each spec simulates once globally)", total, len(specs))
	}
	if caps := s0.CkptCaptured + s1.CkptCaptured; caps != 1 {
		t.Errorf("CkptCaptured sum = %d, want 1 (one schedule, one fast-forward globally)", caps)
	}
	if s0.Executed == 0 || s1.Executed == 0 {
		t.Logf("note: ownership split was %d/%d for this key set", s0.Executed, s1.Executed)
	}
}

// TestShardSteal: a shard whose peer never shows up must take over the
// peer's specs after the grace period instead of hanging the sweep.
func TestShardSteal(t *testing.T) {
	dir := t.TempDir()
	r := newRunner(t, Options{Workers: 2, CacheDir: dir, ShardIndex: 0, ShardCount: 4, StealGrace: 100 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i, spec := range sweepSpecs() {
		res, err := r.Submit(spec).Result(ctx)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if res.Insts == 0 {
			t.Errorf("spec %d: empty result", i)
		}
	}
	if ex := r.Stats().Executed; ex != int64(len(sweepSpecs())) {
		t.Errorf("Executed = %d, want %d (lone shard steals everything)", ex, len(sweepSpecs()))
	}
}
