package runner

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"
)

// TestLockMutualExclusion: the second acquirer blocks until the first
// releases, and the critical sections never overlap.
func TestLockMutualExclusion(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rel1, _, err := s.Lock(ctx, kindRun, "k")
	if err != nil {
		t.Fatal(err)
	}
	if !s.LockHeld(kindRun, "k") {
		t.Error("LockHeld = false while the lock is held")
	}

	var inside atomic.Bool
	acquired := make(chan struct{})
	go func() {
		rel2, _, err := s.Lock(ctx, kindRun, "k")
		if err != nil {
			t.Error(err)
			return
		}
		inside.Store(true)
		close(acquired)
		rel2()
	}()
	select {
	case <-acquired:
		t.Fatal("second acquirer got the lock while the first held it")
	case <-time.After(100 * time.Millisecond):
	}
	rel1()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("second acquirer never got the released lock")
	}
	if s.LockHeld(kindRun, "k") {
		t.Error("LockHeld = true after both releases")
	}
}

// TestLockCtxCancel: a waiter honours context cancellation instead of
// polling forever against a held lock.
func TestLockCtxCancel(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rel, _, err := s.Lock(context.Background(), kindRun, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	if _, _, err := s.Lock(ctx, kindRun, "k"); err == nil {
		t.Fatal("lock acquired despite a live holder and an expired context")
	}
}

// TestLockStaleRecovery: lock files left by crashed processes — dead
// pid, or an empty file from a crash between create and write — must be
// broken and reacquired, not waited on forever.
func TestLockStaleRecovery(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	host, _ := os.Hostname()
	// A pid far beyond the kernel's pid space is definitely dead.
	dead := fmt.Sprintf("%d %d %s", 1<<30, time.Now().UnixNano(), host)
	if err := os.WriteFile(s.lockPath(kindCkpt, "crashed"), []byte(dead), 0o644); err != nil {
		t.Fatal(err)
	}
	if s.LockHeld(kindCkpt, "crashed") {
		t.Error("dead holder's lock reported as held")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rel, _, err := s.Lock(ctx, kindCkpt, "crashed")
	if err != nil {
		t.Fatalf("stale lock (dead pid) not recovered: %v", err)
	}
	rel()

	// Empty lock file: stale only after lockEmptyTTL, judged by mtime.
	path := s.lockPath(kindCkpt, "torn")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * lockEmptyTTL)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	rel, _, err = s.Lock(ctx, kindCkpt, "torn")
	if err != nil {
		t.Fatalf("stale empty lock not recovered: %v", err)
	}
	rel()

	// A live holder (this process) must NOT be judged stale.
	live := fmt.Sprintf("%d %d %s", os.Getpid(), time.Now().UnixNano(), host)
	if lockStale([]byte(live), time.Now()) {
		t.Error("live holder judged stale")
	}
	if !lockStale([]byte(dead), time.Now()) {
		t.Error("dead holder judged live")
	}
	// A foreign host's lock is only broken by the TTL.
	foreign := fmt.Sprintf("%d %d not-%s", 1<<30, time.Now().UnixNano(), host)
	if lockStale([]byte(foreign), time.Now()) {
		t.Error("young foreign-host lock judged stale (pid check must be host-local)")
	}
	expired := fmt.Sprintf("%d %d not-%s", 1<<30, time.Now().Add(-2*lockStaleTTL).UnixNano(), host)
	if !lockStale([]byte(expired), time.Now()) {
		t.Error("TTL-expired foreign-host lock judged live")
	}
}

// TestLockWriteFailure: a failed lock-body write (the full-disk case)
// must fail the acquire and remove the lock file, instead of proceeding
// with an empty lock that peers judge stale after lockEmptyTTL and
// break mid-compute — the duplicate-capture case the lock prevents.
func TestLockWriteFailure(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	orig := lockWrite
	lockWrite = func(f *os.File, body string) error {
		f.Close()
		return fmt.Errorf("write: no space left on device")
	}
	defer func() { lockWrite = orig }()

	if _, _, err := s.Lock(context.Background(), kindRun, "k"); err == nil {
		t.Fatal("Lock succeeded despite a failed lock-body write")
	}
	if _, err := os.Stat(s.lockPath(kindRun, "k")); !os.IsNotExist(err) {
		t.Errorf("failed acquire left the lock file behind (stat err = %v)", err)
	}

	// With the write working again the same key must be acquirable
	// immediately — no stale debris to wait out.
	lockWrite = orig
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	rel, _, err := s.Lock(ctx, kindRun, "k")
	if err != nil {
		t.Fatalf("re-acquire after failed write: %v", err)
	}
	rel()
}

// TestLockHeldSnapshotRace: LockHeld must judge content and mtime from
// one file, not pair an old file's content with its replacement's
// mtime. The seam fires between the read and the stat; replacing a
// stale empty lock with a fresh one there made the old implementation
// report the stale lock as held (old empty content + new fresh mtime),
// so shard peers kept resetting their steal deadline forever.
func TestLockHeldSnapshotRace(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	path := s.lockPath(kindRun, "raced")
	// A crashed holder's empty lock, old enough to be stale.
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * lockEmptyTTL)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	lockSnapshotGap = func() {
		lockSnapshotGap = nil // fire once: the replacement re-stats too
		os.Remove(path)
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Error(err)
		}
	}
	defer func() { lockSnapshotGap = nil }()
	if s.LockHeld(kindRun, "raced") {
		t.Error("LockHeld judged the stale lock by its replacement's mtime")
	}
}

// TestLockDisabledStore: a nil-dir store's locks are free no-ops.
func TestLockDisabledStore(t *testing.T) {
	s, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	rel, waited, err := s.Lock(context.Background(), kindRun, "k")
	if err != nil || waited != 0 {
		t.Fatalf("disabled store Lock = (%v, %v)", waited, err)
	}
	rel()
	if s.LockHeld(kindRun, "k") || s.Has(kindRun, "k") {
		t.Error("disabled store reports held locks or entries")
	}
}
