package runner

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"crisp/internal/sim"
)

// childEnvDir is the env var that turns TestCrossProcessChild from a
// skip into a sweep worker; its value is the shared store directory.
const childEnvDir = "CRISP_CROSSPROC_DIR"

// TestCrossProcessChild is the worker half of TestCrossProcessDedup: a
// re-exec of this test binary that sweeps the shared store and reports
// its counters on stdout. It skips when run as part of a normal test
// pass.
func TestCrossProcessChild(t *testing.T) {
	dir := os.Getenv(childEnvDir)
	if dir == "" {
		t.Skip("helper process for TestCrossProcessDedup")
	}
	r, err := New(context.Background(), Options{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	specs := sweepSpecs()
	handles := make([]*RunHandle, len(specs))
	for i, spec := range specs {
		handles[i] = r.Submit(spec)
	}
	mh := r.SubmitMulti(multiSweepSpec())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i, h := range handles {
		if _, err := h.Result(ctx); err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
	}
	if _, err := mh.Result(ctx); err != nil {
		t.Fatalf("multi spec: %v", err)
	}
	b, err := json.Marshal(r.Stats())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("CHILDSTATS %s\n", b)
}

// multiSweepSpec is the sampled co-scheduled run each sweep worker adds
// beyond sweepSpecs: one 2-core tuple under one schedule, so between
// two processes the multi-capture must run exactly once.
func multiSweepSpec() sim.MultiSpec {
	s := sim.Sampling{Warm: 15_000, Window: 5_000, Count: 2}
	return sim.MultiSpec{Cores: []sim.RunSpec{
		{Workload: "tailchase"},
		{Workload: "streambatch"},
	}, Sampling: &s}
}

// TestCrossProcessDedup is the acceptance test for cross-process
// single-flight: two OS processes sweep the same spec list — four
// sampled single-core configs plus one sampled co-scheduled 2-core
// tuple — against one shared store, concurrently. Between them they
// must fast-forward each checkpoint schedule exactly once (one
// single-core set, one multi-core set) and simulate each spec exactly
// once (the file locks serialize, the store re-checks dedup), and every
// entry left in the store must decode cleanly.
func TestCrossProcessDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	type childOut struct {
		out []byte
		err error
	}
	const children = 2
	outs := make([]childOut, children)
	var wg sync.WaitGroup
	for i := 0; i < children; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cmd := exec.Command(exe, "-test.run=^TestCrossProcessChild$", "-test.v")
			cmd.Env = append(os.Environ(), childEnvDir+"="+dir)
			outs[i].out, outs[i].err = cmd.CombinedOutput()
		}()
	}
	wg.Wait()

	var sum Stats
	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("child %d failed: %v\n%s", i, o.err, o.out)
		}
		var st Stats
		found := false
		sc := bufio.NewScanner(bytes.NewReader(o.out))
		for sc.Scan() {
			if line, ok := strings.CutPrefix(sc.Text(), "CHILDSTATS "); ok {
				if err := json.Unmarshal([]byte(line), &st); err != nil {
					t.Fatalf("child %d stats: %v", i, err)
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("child %d printed no CHILDSTATS line:\n%s", i, o.out)
		}
		t.Logf("child %d: executed %d, disk hits %d, ckpt captured %d, ckpt disk hits %d, lock wait %v",
			i, st.Executed, st.DiskHits, st.CkptCaptured, st.CkptDiskHits, time.Duration(st.LockWaitNS))
		sum.Executed += st.Executed
		sum.DiskHits += st.DiskHits
		sum.CkptCaptured += st.CkptCaptured
		sum.CkptDiskHits += st.CkptDiskHits
	}

	specs := int64(len(sweepSpecs())) + 1 // + the co-scheduled tuple
	if sum.CkptCaptured != 2 {
		t.Errorf("CkptCaptured sum = %d, want 2 (one single-core set, one multi-core set): a fast-forward ran more than once across processes", sum.CkptCaptured)
	}
	if sum.Executed != specs {
		t.Errorf("Executed sum = %d, want %d: some spec simulated twice (or was lost)", sum.Executed, specs)
	}
	// The second process resolved every spec it didn't execute from the
	// store, and at least one side loaded the checkpoint set from disk
	// or memory rather than recapturing.
	if sum.Executed+sum.DiskHits < 2*specs {
		t.Errorf("Executed+DiskHits = %d, want >= %d: a spec resolved without compute or store", sum.Executed+sum.DiskHits, 2*specs)
	}

	// No corrupt or temporary debris: every surviving entry decodes.
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".lock"):
			t.Errorf("lock file %s survived both sweeps", name)
		case strings.HasSuffix(name, ".tmp"):
			t.Errorf("temp file %s survived both sweeps", name)
		case strings.HasSuffix(name, ".bin"):
			// "mckpt-" before "ckpt-": the multi prefix would survive a
			// single-core trim and decode under the wrong codec.
			if key, ok := strings.CutPrefix(name, kindMultiCkpt+"-"); ok {
				if _, ok := s.GetMultiCheckpoint(strings.TrimSuffix(key, ".bin")); !ok {
					t.Errorf("multi checkpoint entry %s is corrupt", name)
				}
			} else {
				key := strings.TrimSuffix(strings.TrimPrefix(name, kindCkpt+"-"), ".bin")
				if _, ok := s.GetCheckpoint(key); !ok {
					t.Errorf("checkpoint entry %s is corrupt", name)
				}
			}
			checked++
		case strings.HasSuffix(name, ".json"):
			kind, key, ok := strings.Cut(strings.TrimSuffix(name, ".json"), "-")
			if !ok {
				t.Errorf("unrecognized store file %s", name)
				continue
			}
			var v map[string]any
			if !s.Get(kind, key, &v) {
				t.Errorf("store entry %s is corrupt", name)
			}
			checked++
		}
	}
	if checked < int(specs)+2 { // one result per spec + two checkpoint sets
		t.Errorf("store holds %d entries, want at least %d", checked, specs+2)
	}
}
