package runner

import (
	"os"
	"testing"
)

type storedThing struct {
	A, B int
	Name string
}

// TestStoreCorruptEntry: a corrupt cache entry must count as a miss AND
// leave the caller's value untouched. json.Unmarshal populates fields as
// it decodes and only then reports type errors, so decoding straight into
// the caller's value would hand back a half-overwritten struct alongside
// the "miss" verdict.
func TestStoreCorruptEntry(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(kindRun, "k", storedThing{A: 1, B: 2, Name: "good"}); err != nil {
		t.Fatal(err)
	}
	// Overwrite with an entry whose A and Name decode fine before B hits a
	// type error — the partial-population trap.
	if err := os.WriteFile(s.path(kindRun, "k"), []byte(`{"A":999,"Name":"evil","B":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	v := storedThing{A: 1, B: 2, Name: "keep"}
	if s.Get(kindRun, "k", &v) {
		t.Error("corrupt entry reported as a cache hit")
	}
	if (v != storedThing{A: 1, B: 2, Name: "keep"}) {
		t.Errorf("corrupt entry mutated the caller's value: %+v", v)
	}

	// Truncated file (interrupted write without the atomic rename): also a
	// clean miss.
	if err := os.WriteFile(s.path(kindRun, "k"), []byte(`{"A":7,"Na`), 0o644); err != nil {
		t.Fatal(err)
	}
	if s.Get(kindRun, "k", &v) {
		t.Error("truncated entry reported as a cache hit")
	}
	if (v != storedThing{A: 1, B: 2, Name: "keep"}) {
		t.Errorf("truncated entry mutated the caller's value: %+v", v)
	}

	// Non-pointer destinations are rejected, not panicked on.
	if s.Get(kindRun, "k", storedThing{}) {
		t.Error("non-pointer destination reported as a hit")
	}

	// And a valid entry still round-trips.
	if err := s.Put(kindRun, "k2", storedThing{A: 5, B: 6, Name: "ok"}); err != nil {
		t.Fatal(err)
	}
	var got storedThing
	if !s.Get(kindRun, "k2", &got) || got != (storedThing{A: 5, B: 6, Name: "ok"}) {
		t.Errorf("valid entry failed to round-trip: %+v", got)
	}
}
