package runner

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crisp/internal/sim"
	"crisp/internal/workload"
)

type storedThing struct {
	A, B int
	Name string
}

// TestStoreCorruptEntry: a corrupt cache entry must count as a miss AND
// leave the caller's value untouched. json.Unmarshal populates fields as
// it decodes and only then reports type errors, so decoding straight into
// the caller's value would hand back a half-overwritten struct alongside
// the "miss" verdict.
func TestStoreCorruptEntry(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(kindRun, "k", storedThing{A: 1, B: 2, Name: "good"}); err != nil {
		t.Fatal(err)
	}
	// Overwrite with an entry whose A and Name decode fine before B hits a
	// type error — the partial-population trap.
	if err := os.WriteFile(s.path(kindRun, "k"), []byte(`{"A":999,"Name":"evil","B":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	v := storedThing{A: 1, B: 2, Name: "keep"}
	if s.Get(kindRun, "k", &v) {
		t.Error("corrupt entry reported as a cache hit")
	}
	if (v != storedThing{A: 1, B: 2, Name: "keep"}) {
		t.Errorf("corrupt entry mutated the caller's value: %+v", v)
	}

	// Truncated file (interrupted write without the atomic rename): also a
	// clean miss.
	if err := os.WriteFile(s.path(kindRun, "k"), []byte(`{"A":7,"Na`), 0o644); err != nil {
		t.Fatal(err)
	}
	if s.Get(kindRun, "k", &v) {
		t.Error("truncated entry reported as a cache hit")
	}
	if (v != storedThing{A: 1, B: 2, Name: "keep"}) {
		t.Errorf("truncated entry mutated the caller's value: %+v", v)
	}

	// Non-pointer destinations are rejected, not panicked on.
	if s.Get(kindRun, "k", storedThing{}) {
		t.Error("non-pointer destination reported as a hit")
	}

	// And a valid entry still round-trips.
	if err := s.Put(kindRun, "k2", storedThing{A: 5, B: 6, Name: "ok"}); err != nil {
		t.Fatal(err)
	}
	var got storedThing
	if !s.Get(kindRun, "k2", &got) || got != (storedThing{A: 5, B: 6, Name: "ok"}) {
		t.Errorf("valid entry failed to round-trip: %+v", got)
	}
}

// TestStoreDeletesCorruptEntry: a corrupt entry is removed on the miss,
// so the recompute that follows can publish cleanly and later readers
// never trip over the same damage.
func TestStoreDeletesCorruptEntry(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(kindRun, "k"), []byte(`{"A":`), 0o644); err != nil {
		t.Fatal(err)
	}
	var v storedThing
	if s.Get(kindRun, "k", &v) {
		t.Fatal("corrupt entry reported as a hit")
	}
	if _, err := os.Stat(s.path(kindRun, "k")); !os.IsNotExist(err) {
		t.Error("corrupt entry not deleted on miss")
	}
}

// TestStoreSweepsStaleTmp: NewStore removes *.tmp debris left by a
// process that crashed between CreateTemp and rename — but only files
// older than tmpSweepTTL, so a live writer in another process keeps its
// in-flight temp file, and non-tmp entries are never touched.
func TestStoreSweepsStaleTmp(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "run-12345678.tmp")
	fresh := filepath.Join(dir, "ckpt-87654321.tmp")
	entry := filepath.Join(dir, "run-deadbeef.json")
	for _, p := range []string{stale, fresh, entry} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tmpSweepTTL)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	// The real entry is also old: age must only matter for .tmp files.
	if err := os.Chtimes(entry, old, old); err != nil {
		t.Fatal(err)
	}

	if _, err := NewStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived NewStore (stat err = %v)", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp file swept: a live writer's in-flight file was removed (%v)", err)
	}
	if _, err := os.Stat(entry); err != nil {
		t.Errorf("non-tmp store entry swept: %v", err)
	}
}

// TestStoreCheckpointEntry: checkpoint sets round-trip through the
// binary codec path, a truncated file (the torn write the fsync+rename
// discipline prevents, injected by hand) is a miss that deletes the
// entry, and the slot is rewritable afterwards.
func TestStoreCheckpointEntry(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w := workload.ByName("pointerchase")
	sched := sim.Sampling{Warm: 15_000, Window: 5_000, Count: 2}
	set := sim.CaptureCheckpoints(w.Build(workload.Ref), sim.DefaultConfig(), sched)
	key := checkpointKey("pointerchase", workload.Ref, sched)

	if _, ok := s.GetCheckpoint(key); ok {
		t.Fatal("hit on an empty store")
	}
	if err := s.PutCheckpoint(key, set); err != nil {
		t.Fatal(err)
	}
	if !s.Has(kindCkpt, key) {
		t.Error("Has = false after PutCheckpoint")
	}
	got, ok := s.GetCheckpoint(key)
	if !ok {
		t.Fatal("miss after PutCheckpoint")
	}
	if len(got.Points) != len(set.Points) || got.FFInsts != set.FFInsts || got.Hier != set.Hier {
		t.Errorf("checkpoint set did not round-trip: %d/%d points", len(got.Points), len(set.Points))
	}

	// Truncate the entry to a third: the CRC/length checks must turn it
	// into a miss AND delete the file so the recapture can publish.
	path := s.path(kindCkpt, key)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetCheckpoint(key); ok {
		t.Fatal("truncated checkpoint entry reported as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("truncated checkpoint entry not deleted on miss")
	}
	if err := s.PutCheckpoint(key, set); err != nil {
		t.Fatalf("re-publish after corrupt delete: %v", err)
	}
	if _, ok := s.GetCheckpoint(key); !ok {
		t.Error("miss after re-publishing over a deleted entry")
	}

	// A key mismatch (file renamed over the wrong slot) is also a miss.
	if err := os.Rename(s.path(kindCkpt, key), s.path(kindCkpt, "wrong")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetCheckpoint("wrong"); ok {
		t.Error("checkpoint served under a mismatched content key")
	}

	// No temp files left behind by any of the writes above.
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("stray temp file %s", filepath.Join(s.dir, e.Name()))
		}
	}
}
