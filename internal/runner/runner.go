// Package runner executes declarative simulation jobs (sim.RunSpec and
// the software-pipeline specs derived from them) on a bounded worker
// pool with content-keyed deduplication and memoization.
//
// The experiment harness submits the flat set of specs behind every
// requested figure at once; the runner collapses identical specs to a
// single execution (figures share OOO baselines and train profiles),
// saturates the pool across figure boundaries, honours context
// cancellation mid-simulation, and optionally persists results as JSON
// keyed by spec hash + code version so interrupted or repeated sweeps
// resume from cache.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"crisp/internal/sim"
)

// Options configure a Runner.
type Options struct {
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// CaptureWorkers bounds the goroutines of each checkpoint-capture
	// pipeline, producer included (0 = GOMAXPROCS, 1 = sequential
	// capture). Parallel and sequential captures are bit-identical; the
	// knob only trades capture latency against host parallelism.
	CaptureWorkers int
	// WindowWorkers bounds the concurrently simulated detailed windows
	// within one sampled run (0 = GOMAXPROCS, 1 = sequential). Total
	// host load is roughly Workers × WindowWorkers during sampled
	// sweeps, so oversubscribed machines may want to pin one of them.
	WindowWorkers int
	// CacheDir, when non-empty, persists results there as JSON keyed by
	// spec hash + code version; re-runs load them instead of simulating.
	CacheDir string
	// MetricsJSONL, when non-empty, appends one JSON record per resolved
	// timing run (identity + cycle-accounting breakdown + histograms).
	MetricsJSONL string
	// MetricsCSV, when non-empty, appends the same records as flat CSV
	// rows (bucket slot counts, histogram means/p99s).
	MetricsCSV string
	// ShardIndex/ShardCount split top-level submissions across cooperating
	// processes sharing one CacheDir: each process executes the specs whose
	// content key hashes to its shard and polls the shared store for the
	// rest, stealing orphaned specs after a grace period so a dead peer
	// never stalls the sweep. ShardCount <= 1 disables sharding; sharding
	// requires CacheDir (the store is the only channel between shards).
	ShardIndex int
	ShardCount int
	// StealGrace overrides how long a non-owning shard waits for an absent
	// owner before computing a spec itself (0 = 2s default).
	StealGrace time.Duration
	// OnEvent, when non-nil, observes every owned task's lifecycle
	// (queued → running → done/failed). The callback runs on task
	// goroutines with no runner locks held; it must be fast and must not
	// call back into the runner synchronously. crispd uses it to track
	// job state and stream progress to HTTP clients.
	OnEvent func(TaskEvent)
	// Remote, when non-nil, delegates run/multi/analysis/footprint tasks
	// to a crispd job server instead of simulating locally. Mutually
	// exclusive with CacheDir and sharding: the server owns persistence
	// and cross-client dedup.
	Remote Remote
}

// Stats is a snapshot of the runner's progress counters.
type Stats struct {
	Started      int64 // unique tasks registered (deduped)
	Done         int64 // tasks finished (success or failure)
	Failed       int64 // tasks finished with an error
	Executed     int64 // timing simulations actually run on the pool
	DiskHits     int64 // results served from the persistent cache
	CkptCaptured int64 // checkpoint sets captured (fast-forward executed)
	CkptDiskHits int64 // checkpoint sets loaded from the persistent store
	CaptureNS    int64 // host time spent inside checkpoint captures
	WarmInsts    int64 // instructions streamed through capture warming
	LockWaitNS   int64 // total time blocked on cross-process file locks
	RemoteRuns   int64 // tasks resolved by a remote crispd server
}

// Runner is a context-aware single-flight executor: each distinct task
// key runs at most once, concurrent requesters share the result, and at
// most Workers tasks simulate at a time.
type Runner struct {
	ctx     context.Context
	sem     chan struct{}
	store   *Store
	sink    *metricsSink
	onEvent func(TaskEvent)
	remote  Remote

	shardIndex, shardCount int
	stealGrace             time.Duration
	workers                sim.Workers

	mu    sync.Mutex
	calls map[string]*call

	started, done, failed, executed, diskHits atomic.Int64
	ckptCaptured, ckptDiskHits, lockWaitNS    atomic.Int64
	captureNS, warmInsts                      atomic.Int64
	remoteRuns                                atomic.Int64
}

type call struct {
	done chan struct{}
	val  any
	err  error
}

// New returns a Runner. ctx is the base context for background
// submissions (Submit*); cancelling it aborts in-flight work.
func New(ctx context.Context, opts Options) (*Runner, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.ShardCount > 1 {
		if opts.CacheDir == "" {
			return nil, fmt.Errorf("runner: sharding (%d shards) requires a cache dir: shards exchange results only through the shared store", opts.ShardCount)
		}
		if opts.ShardIndex < 0 || opts.ShardIndex >= opts.ShardCount {
			return nil, fmt.Errorf("runner: shard index %d out of range [0,%d)", opts.ShardIndex, opts.ShardCount)
		}
	}
	if opts.Remote != nil {
		if opts.CacheDir != "" {
			return nil, fmt.Errorf("runner: remote execution and a local store are mutually exclusive: the server owns persistence and dedup")
		}
		if opts.ShardCount > 1 {
			return nil, fmt.Errorf("runner: remote execution and sharding are mutually exclusive: the server's worker pool is the shard unit")
		}
	}
	stealGrace := opts.StealGrace
	if stealGrace <= 0 {
		stealGrace = 2 * time.Second
	}
	store, err := NewStore(opts.CacheDir)
	if err != nil {
		return nil, err
	}
	sink, err := newMetricsSink(opts.MetricsJSONL, opts.MetricsCSV)
	if err != nil {
		return nil, err
	}
	return &Runner{
		ctx:        ctx,
		sem:        make(chan struct{}, workers),
		store:      store,
		sink:       sink,
		onEvent:    opts.OnEvent,
		remote:     opts.Remote,
		shardIndex: opts.ShardIndex,
		shardCount: opts.ShardCount,
		stealGrace: stealGrace,
		workers:    sim.Workers{Capture: opts.CaptureWorkers, Window: opts.WindowWorkers},
		calls:      make(map[string]*call),
	}, nil
}

// simCtx attaches the runner's configured capture/window worker bounds
// to a task context, so every sim-layer call under this runner observes
// the same parallelism policy.
func (r *Runner) simCtx(ctx context.Context) context.Context {
	return sim.WithWorkers(ctx, r.workers)
}

// Store returns the runner's persistent store. It is never nil; a
// runner without a cache dir holds a disabled store. crispd reads it to
// serve already-published results without occupying a queue slot.
func (r *Runner) Store() *Store { return r.store }

// Close flushes and closes the metrics streams (no-op when none are
// configured). The runner remains usable for simulation afterwards; only
// metrics export stops.
func (r *Runner) Close() error { return r.sink.close() }

// Stats returns a snapshot of the progress counters. Started grows as
// submitted specs resolve their dependencies, so Done/Started is a live
// progress fraction, not a fixed total.
func (r *Runner) Stats() Stats {
	return Stats{
		Started:      r.started.Load(),
		Done:         r.done.Load(),
		Failed:       r.failed.Load(),
		Executed:     r.executed.Load(),
		DiskHits:     r.diskHits.Load(),
		CkptCaptured: r.ckptCaptured.Load(),
		CkptDiskHits: r.ckptDiskHits.Load(),
		CaptureNS:    r.captureNS.Load(),
		WarmInsts:    r.warmInsts.Load(),
		LockWaitNS:   r.lockWaitNS.Load(),
		RemoteRuns:   r.remoteRuns.Load(),
	}
}

// slot tracks whether the current goroutine holds a worker token. It is
// threaded through contexts so that a task computing a dependency
// in-line keeps its token, while a task *waiting* on someone else's
// in-flight computation releases its token back to the pool.
type slot struct{ held bool }

type slotCtxKey struct{}

func (r *Runner) acquire(ctx context.Context, s *slot) error {
	if s.held {
		return nil
	}
	select {
	case r.sem <- struct{}{}:
		s.held = true
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (r *Runner) release(s *slot) {
	if s.held {
		<-r.sem
		s.held = false
	}
}

// ctxErr reports whether err is a context cancellation or deadline.
func ctxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// do returns the memoized value for key, computing it with fn at most
// once across all concurrent callers. The owning caller runs fn on a
// worker token (acquiring one unless it already holds one); joining
// callers release any token they hold while they wait, so a pool of
// tasks blocked on one shared dependency does not idle the machine.
// Failed computations are not memoized: cancellation of one caller
// leaves the key recomputable by the next.
func (r *Runner) do(ctx context.Context, key string, fn func(context.Context) (any, error)) (any, error) {
	for {
		r.mu.Lock()
		if c, ok := r.calls[key]; ok {
			r.mu.Unlock()
			s, _ := ctx.Value(slotCtxKey{}).(*slot)
			joinedWithToken := s != nil && s.held
			if joinedWithToken {
				r.release(s)
			}
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if joinedWithToken {
				if err := r.acquire(ctx, s); err != nil {
					return nil, err
				}
			}
			if c.err != nil && ctxErr(c.err) && ctx.Err() == nil {
				continue // owner was cancelled but we are alive: recompute
			}
			return c.val, c.err
		}
		c := &call{done: make(chan struct{})}
		r.calls[key] = c
		r.mu.Unlock()
		r.started.Add(1)
		r.emit(key, TaskQueued, nil)

		s, _ := ctx.Value(slotCtxKey{}).(*slot)
		if s == nil {
			s = &slot{}
			ctx = context.WithValue(ctx, slotCtxKey{}, s)
		}
		nested := s.held
		if err := r.acquire(ctx, s); err != nil {
			c.err = err
		} else {
			r.emit(key, TaskRunning, nil)
			c.val, c.err = fn(ctx)
			if !nested {
				r.release(s)
			}
		}
		if c.err != nil {
			// Drop failures from the memo table so a later attempt (for
			// example after a cancelled sweep resumes) can recompute.
			r.mu.Lock()
			if r.calls[key] == c {
				delete(r.calls, key)
			}
			r.mu.Unlock()
			r.failed.Add(1)
			r.emit(key, TaskFailed, c.err)
		} else {
			r.emit(key, TaskDone, nil)
		}
		r.done.Add(1)
		close(c.done)
		return c.val, c.err
	}
}

// background starts fn for key on the pool without waiting for it; a
// later do() with the same key joins the in-flight computation.
func (r *Runner) background(key string, fn func(context.Context) (any, error)) {
	go r.do(r.ctx, key, fn) //nolint:errcheck // result observed via the memo table
}

// lockTask acquires the cross-process file lock for (kind, key),
// releasing the caller's worker token while blocked so lock waits never
// idle the pool, and charging the wait to the LockWaitNS counter. It
// returns the release function and the wait in nanoseconds; on a
// disabled store it is a no-op.
func (r *Runner) lockTask(ctx context.Context, kind, key string) (func(), int64, error) {
	if !r.store.Enabled() {
		return func() {}, 0, nil
	}
	s, _ := ctx.Value(slotCtxKey{}).(*slot)
	held := s != nil && s.held
	if held {
		r.release(s)
	}
	rel, waited, err := r.store.Lock(ctx, kind, key)
	r.lockWaitNS.Add(waited.Nanoseconds())
	if held {
		if aerr := r.acquire(ctx, s); aerr != nil {
			if err == nil {
				rel()
			}
			return nil, 0, aerr
		}
	}
	if err != nil {
		return nil, 0, err
	}
	return rel, waited.Nanoseconds(), nil
}

// ownsKey reports whether this shard executes the task with the given
// content key. Keys are hex digests, so their leading 32 bits are a
// uniform hash; every shard computes the same assignment independently.
func (r *Runner) ownsKey(key string) bool {
	if r.shardCount <= 1 || len(key) < 8 {
		return true
	}
	v, err := strconv.ParseUint(key[:8], 16, 64)
	if err != nil {
		return true
	}
	return int(v%uint64(r.shardCount)) == r.shardIndex
}

// shardPollInterval paces a non-owning shard's store probes.
const shardPollInterval = 25 * time.Millisecond

// submitTask gates a top-level submission on shard ownership. A
// non-owned key polls the shared store (worker token released, so
// waiting costs no parallelism) until the owner publishes, and falls
// through to computing it locally if no live owner shows up within the
// steal grace — so a crashed or lagging peer delays its specs, never
// loses them. Only Submit* paths pass through here; inline dependency
// resolution (Run/Analysis called from inside another task) always
// computes, so a shard can never deadlock waiting for intermediate
// state only another shard would produce. Duplicate computation across
// shards is still prevented by the per-key file lock inside each task.
func (r *Runner) submitTask(kind, key string, fn func(context.Context) (any, error)) func(context.Context) (any, error) {
	if r.shardCount <= 1 || r.ownsKey(key) {
		return fn
	}
	return func(ctx context.Context) (any, error) {
		s, _ := ctx.Value(slotCtxKey{}).(*slot)
		held := s != nil && s.held
		if held {
			r.release(s)
		}
		deadline := time.Now().Add(r.stealGrace)
		ticker := time.NewTicker(shardPollInterval)
		defer ticker.Stop()
		for !r.store.Has(kind, key) {
			if r.store.LockHeld(kind, key) {
				// A peer is computing it right now: keep waiting.
				deadline = time.Now().Add(r.stealGrace)
			} else if time.Now().After(deadline) {
				break // no owner in sight: steal the spec
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-ticker.C:
			}
		}
		if held {
			if err := r.acquire(ctx, s); err != nil {
				return nil, err
			}
		}
		return fn(ctx)
	}
}
