// Package runner executes declarative simulation jobs (sim.RunSpec and
// the software-pipeline specs derived from them) on a bounded worker
// pool with content-keyed deduplication and memoization.
//
// The experiment harness submits the flat set of specs behind every
// requested figure at once; the runner collapses identical specs to a
// single execution (figures share OOO baselines and train profiles),
// saturates the pool across figure boundaries, honours context
// cancellation mid-simulation, and optionally persists results as JSON
// keyed by spec hash + code version so interrupted or repeated sweeps
// resume from cache.
package runner

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configure a Runner.
type Options struct {
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// CacheDir, when non-empty, persists results there as JSON keyed by
	// spec hash + code version; re-runs load them instead of simulating.
	CacheDir string
	// MetricsJSONL, when non-empty, appends one JSON record per resolved
	// timing run (identity + cycle-accounting breakdown + histograms).
	MetricsJSONL string
	// MetricsCSV, when non-empty, appends the same records as flat CSV
	// rows (bucket slot counts, histogram means/p99s).
	MetricsCSV string
}

// Stats is a snapshot of the runner's progress counters.
type Stats struct {
	Started  int64 // unique tasks registered (deduped)
	Done     int64 // tasks finished (success or failure)
	Failed   int64 // tasks finished with an error
	Executed int64 // timing simulations actually run on the pool
	DiskHits int64 // results served from the persistent cache
}

// Runner is a context-aware single-flight executor: each distinct task
// key runs at most once, concurrent requesters share the result, and at
// most Workers tasks simulate at a time.
type Runner struct {
	ctx   context.Context
	sem   chan struct{}
	store *Store
	sink  *metricsSink

	mu    sync.Mutex
	calls map[string]*call

	started, done, failed, executed, diskHits atomic.Int64
}

type call struct {
	done chan struct{}
	val  any
	err  error
}

// New returns a Runner. ctx is the base context for background
// submissions (Submit*); cancelling it aborts in-flight work.
func New(ctx context.Context, opts Options) (*Runner, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	store, err := NewStore(opts.CacheDir)
	if err != nil {
		return nil, err
	}
	sink, err := newMetricsSink(opts.MetricsJSONL, opts.MetricsCSV)
	if err != nil {
		return nil, err
	}
	return &Runner{
		ctx:   ctx,
		sem:   make(chan struct{}, workers),
		store: store,
		sink:  sink,
		calls: make(map[string]*call),
	}, nil
}

// Close flushes and closes the metrics streams (no-op when none are
// configured). The runner remains usable for simulation afterwards; only
// metrics export stops.
func (r *Runner) Close() error { return r.sink.close() }

// Stats returns a snapshot of the progress counters. Started grows as
// submitted specs resolve their dependencies, so Done/Started is a live
// progress fraction, not a fixed total.
func (r *Runner) Stats() Stats {
	return Stats{
		Started:  r.started.Load(),
		Done:     r.done.Load(),
		Failed:   r.failed.Load(),
		Executed: r.executed.Load(),
		DiskHits: r.diskHits.Load(),
	}
}

// slot tracks whether the current goroutine holds a worker token. It is
// threaded through contexts so that a task computing a dependency
// in-line keeps its token, while a task *waiting* on someone else's
// in-flight computation releases its token back to the pool.
type slot struct{ held bool }

type slotCtxKey struct{}

func (r *Runner) acquire(ctx context.Context, s *slot) error {
	if s.held {
		return nil
	}
	select {
	case r.sem <- struct{}{}:
		s.held = true
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (r *Runner) release(s *slot) {
	if s.held {
		<-r.sem
		s.held = false
	}
}

// ctxErr reports whether err is a context cancellation or deadline.
func ctxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// do returns the memoized value for key, computing it with fn at most
// once across all concurrent callers. The owning caller runs fn on a
// worker token (acquiring one unless it already holds one); joining
// callers release any token they hold while they wait, so a pool of
// tasks blocked on one shared dependency does not idle the machine.
// Failed computations are not memoized: cancellation of one caller
// leaves the key recomputable by the next.
func (r *Runner) do(ctx context.Context, key string, fn func(context.Context) (any, error)) (any, error) {
	for {
		r.mu.Lock()
		if c, ok := r.calls[key]; ok {
			r.mu.Unlock()
			s, _ := ctx.Value(slotCtxKey{}).(*slot)
			joinedWithToken := s != nil && s.held
			if joinedWithToken {
				r.release(s)
			}
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if joinedWithToken {
				if err := r.acquire(ctx, s); err != nil {
					return nil, err
				}
			}
			if c.err != nil && ctxErr(c.err) && ctx.Err() == nil {
				continue // owner was cancelled but we are alive: recompute
			}
			return c.val, c.err
		}
		c := &call{done: make(chan struct{})}
		r.calls[key] = c
		r.mu.Unlock()
		r.started.Add(1)

		s, _ := ctx.Value(slotCtxKey{}).(*slot)
		if s == nil {
			s = &slot{}
			ctx = context.WithValue(ctx, slotCtxKey{}, s)
		}
		nested := s.held
		if err := r.acquire(ctx, s); err != nil {
			c.err = err
		} else {
			c.val, c.err = fn(ctx)
			if !nested {
				r.release(s)
			}
		}
		if c.err != nil {
			// Drop failures from the memo table so a later attempt (for
			// example after a cancelled sweep resumes) can recompute.
			r.mu.Lock()
			if r.calls[key] == c {
				delete(r.calls, key)
			}
			r.mu.Unlock()
			r.failed.Add(1)
		}
		r.done.Add(1)
		close(c.done)
		return c.val, c.err
	}
}

// background starts fn for key on the pool without waiting for it; a
// later do() with the same key joins the in-flight computation.
func (r *Runner) background(key string, fn func(context.Context) (any, error)) {
	go r.do(r.ctx, key, fn) //nolint:errcheck // result observed via the memo table
}
