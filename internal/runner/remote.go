package runner

import (
	"context"

	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/sim"
)

// Remote executes tasks on a crispd job server instead of simulating
// locally. When Options.Remote is set, the task bodies delegate whole
// specs to it — the server owns the persistent store, the file locks
// and the cross-client dedup, so a remote runner must not also have a
// local CacheDir or shard assignment (New rejects the combinations).
//
// The in-process single-flight memo still applies on top: a figure
// suite that references one baseline from ten rows posts it to the
// server once and shares the decoded result. Remote results are not
// recorded in the local metrics sink (the server records its own); they
// are counted in Stats.RemoteRuns.
//
// internal/crispd.Client is the HTTP implementation.
type Remote interface {
	Run(ctx context.Context, spec sim.RunSpec) (*core.Result, error)
	RunMulti(ctx context.Context, spec sim.MultiSpec) (*sim.MultiResult, error)
	Analysis(ctx context.Context, spec AnalysisSpec) (*crisp.Analysis, error)
	Footprint(ctx context.Context, spec AnalysisSpec) (*crisp.Footprint, error)
}
