package runner

import "strings"

// TaskState is a point in a task's single-flight lifecycle.
type TaskState int

// Task lifecycle states, in order. Every owned task emits Queued when it
// registers in the memo table, Running once it holds a worker token and
// begins computing (a disk-cache hit still passes through Running — the
// store check happens inside the task body), and exactly one of Done or
// Failed. Joining callers emit nothing: single-flight means one
// lifecycle per key.
const (
	TaskQueued TaskState = iota
	TaskRunning
	TaskDone
	TaskFailed
)

func (s TaskState) String() string {
	switch s {
	case TaskQueued:
		return "queued"
	case TaskRunning:
		return "running"
	case TaskDone:
		return "done"
	default:
		return "failed"
	}
}

// TaskEvent is one observation of the runner's task lifecycle, delivered
// to Options.OnEvent. Kind is the task family ("run", "multi",
// "analysis", "footprint", "ckpt", "mckpt", "trace") and Key the content key
// within it — the same (kind, key) pair the persistent store files are
// named by, so an observer can correlate events with store entries.
type TaskEvent struct {
	Kind  string
	Key   string
	State TaskState
	// Err carries the task error on TaskFailed, nil otherwise.
	Err error
}

// emit delivers a lifecycle event for a memo-table key ("kind|key") to
// the configured observer. The callback runs on the task's goroutine
// with no runner locks held; it must be fast and must not call back
// into the runner synchronously.
func (r *Runner) emit(memoKey string, state TaskState, err error) {
	if r.onEvent == nil {
		return
	}
	kind, key, _ := strings.Cut(memoKey, "|")
	r.onEvent(TaskEvent{Kind: kind, Key: key, State: state, Err: err})
}
