package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// Cross-process advisory locks. A lock is a file created with
// O_CREATE|O_EXCL next to the store entry it guards, holding
// "pid startUnixNano hostname". Creation is the atomic acquire; removal
// is the release. Writers hold the lock across compute-and-publish, so
// two processes sweeping one store never capture the same checkpoint or
// run the same spec concurrently — the loser blocks, then finds the
// winner's entry on its post-acquire store re-check.
//
// Crash recovery: a holder that dies leaves its lock file behind. A
// waiter judges a lock stale when the recorded pid is no longer alive on
// this host (same-host locks, the common case), or — when liveness
// cannot be determined, e.g. the lock was taken on another machine or
// the pid was recycled — when the lock has outlived lockStaleTTL.
// Unparseable lock files (a crash between create and write) go stale
// after lockEmptyTTL. Breaking re-reads the file first so a lock
// released and re-acquired during the staleness check is not clobbered.
const (
	lockPollInterval = 20 * time.Millisecond
	lockEmptyTTL     = 2 * time.Second
	lockStaleTTL     = 10 * time.Minute
)

func (s *Store) lockPath(kind, key string) string {
	return filepath.Join(s.dir, kind+"-"+key+".lock")
}

// lockWrite writes the lock body and closes the file, reporting the
// first error. It is a variable only so tests can inject the full-disk
// failure that is otherwise impractical to provoke in a temp dir.
var lockWrite = func(f *os.File, body string) error {
	if _, err := io.WriteString(f, body); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LockHeld reports whether a live process currently holds the advisory
// lock for (kind, key). Shard peers use it to distinguish "the owner is
// computing this" from "nobody is".
func (s *Store) LockHeld(kind, key string) bool {
	b, mod, ok := lockSnapshot(s.lockPath(kind, key))
	return ok && !lockStale(b, mod)
}

// lockSnapshotGap is a test seam invoked between the content read and
// the stat inside lockSnapshot, so tests can interleave a release and
// re-acquire at the exact point the old two-path implementation raced.
var lockSnapshotGap func()

// lockSnapshot reads a lock file's content and modification time as one
// consistent pair: both come from a single open file descriptor, so a
// lock released and re-acquired between the two reads cannot pair the
// old file's content with the new file's mtime (which misjudged
// staleness — an empty crashed lock looked freshly written, so peers
// waited on it forever instead of breaking it).
func lockSnapshot(path string) (content []byte, mod time.Time, ok bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, time.Time{}, false
	}
	defer f.Close()
	content, err = io.ReadAll(f)
	if err != nil {
		return nil, time.Time{}, false
	}
	if lockSnapshotGap != nil {
		lockSnapshotGap()
	}
	fi, err := f.Stat() // fstat: describes the inode we read, even if the path was replaced
	if err != nil {
		return nil, time.Time{}, false
	}
	return content, fi.ModTime(), true
}

// Lock acquires the advisory cross-process lock for (kind, key),
// polling until it is free, a stale lock is broken, or ctx is done. It
// returns the release function and how long acquisition blocked. On a
// nil-dir store it is an immediate no-op.
func (s *Store) Lock(ctx context.Context, kind, key string) (release func(), waited time.Duration, err error) {
	if s.dir == "" {
		return func() {}, 0, nil
	}
	path := s.lockPath(kind, key)
	start := time.Now()
	for {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			host, _ := os.Hostname()
			body := fmt.Sprintf("%d %d %s", os.Getpid(), time.Now().UnixNano(), host)
			if werr := lockWrite(f, body); werr != nil {
				// A failed body write (full disk, dying filesystem) must not
				// leave an empty lock behind: peers would judge it stale
				// after lockEmptyTTL and break it mid-compute — exactly the
				// duplicate execution the lock exists to prevent. Remove the
				// file and fail the acquire instead of proceeding unlocked.
				os.Remove(path)
				return nil, time.Since(start), fmt.Errorf("runner: write lock %s: %w", path, werr)
			}
			return func() { os.Remove(path) }, time.Since(start), nil
		}
		if !errors.Is(err, os.ErrExist) {
			return nil, time.Since(start), fmt.Errorf("runner: create lock %s: %w", path, err)
		}
		s.breakIfStale(path)
		select {
		case <-ctx.Done():
			return nil, time.Since(start), ctx.Err()
		case <-time.After(lockPollInterval):
		}
	}
}

// breakIfStale removes path if it is a stale lock. The re-read before
// removal closes (most of) the window where the judged-stale file has
// been released and re-acquired by a live process; the TTLs make any
// remaining race harmless — a broken live lock only means one duplicate
// computation, and the post-acquire store re-check keeps entries
// single-writer-consistent.
func (s *Store) breakIfStale(path string) {
	b, mod, ok := lockSnapshot(path)
	if !ok || !lockStale(b, mod) {
		return
	}
	if b2, err := os.ReadFile(path); err != nil || !bytes.Equal(b, b2) {
		return
	}
	os.Remove(path)
}

// lockStale judges a lock file's content (with the file mtime as a
// fallback clock for unparseable content).
func lockStale(content []byte, mod time.Time) bool {
	fields := strings.Fields(string(content))
	if len(fields) < 2 {
		return time.Since(mod) > lockEmptyTTL
	}
	pid, err1 := strconv.Atoi(fields[0])
	startNano, err2 := strconv.ParseInt(fields[1], 10, 64)
	if err1 != nil || err2 != nil || pid <= 0 {
		return time.Since(mod) > lockEmptyTTL
	}
	if age := time.Since(time.Unix(0, startNano)); age > lockStaleTTL {
		return true // pid recycled or cross-machine holder: TTL decides
	}
	if len(fields) >= 3 {
		if host, err := os.Hostname(); err == nil && fields[2] != host {
			return false // foreign holder: only the TTL above applies
		}
	}
	return !pidAlive(pid)
}

// pidAlive reports whether pid is a live process on this host, treating
// permission errors as alive (the process exists, it just isn't ours).
func pidAlive(pid int) bool {
	proc, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = proc.Signal(syscall.Signal(0))
	if err == nil {
		return true
	}
	if errors.Is(err, os.ErrProcessDone) || errors.Is(err, syscall.ESRCH) {
		return false
	}
	return true
}
