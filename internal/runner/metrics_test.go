package runner

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crisp/internal/core"
)

// TestMetricsExport: a runner with metrics streams configured writes one
// JSONL record and one CSV row per resolved run, and the record carries
// the exact cycle accounting of the result it describes.
func TestMetricsExport(t *testing.T) {
	dir := t.TempDir()
	jl := filepath.Join(dir, "runs.jsonl")
	cs := filepath.Join(dir, "runs.csv")
	r := newRunner(t, Options{Workers: 2, MetricsJSONL: jl, MetricsCSV: cs})
	res, err := r.Run(context.Background(), chaseSpec(20_000))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(jl)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 1 {
		t.Fatalf("jsonl has %d records, want 1", len(lines))
	}
	var rec RunRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("jsonl record does not parse: %v", err)
	}
	if rec.Workload != "pointerchase" || rec.Sched != "ooo" || rec.Input != "ref" || rec.Cached {
		t.Errorf("record identity wrong: %+v", rec)
	}
	if rec.Cycles != res.Cycles || rec.Committed != res.Insts {
		t.Errorf("record totals: cycles %d/%d committed %d/%d", rec.Cycles, res.Cycles, rec.Committed, res.Insts)
	}
	if rec.Breakdown != res.Breakdown || rec.Hists != res.Hists {
		t.Error("cycle accounting did not survive the JSONL round trip")
	}
	w := uint64(core.DefaultConfig().CommitWidth)
	if got := rec.Breakdown.Total(); got != rec.Cycles*w {
		t.Errorf("record breakdown total %d != cycles×width %d", got, rec.Cycles*w)
	}
	if rec.SkippedCycles != res.SkippedCycles || rec.HostIters != res.HostIters {
		t.Errorf("skip efficiency: record %d/%d, result %d/%d",
			rec.SkippedCycles, rec.HostIters, res.SkippedCycles, res.HostIters)
	}
	if rec.SkippedCycles+rec.HostIters != rec.Cycles {
		t.Errorf("skipped %d + iters %d != cycles %d", rec.SkippedCycles, rec.HostIters, rec.Cycles)
	}

	f, err := os.Open(cs)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	var rows [][]string
	for sc.Scan() {
		rows = append(rows, strings.Split(sc.Text(), ","))
	}
	if len(rows) != 2 {
		t.Fatalf("csv has %d lines, want header + 1 row", len(rows))
	}
	if len(rows[0]) != len(rows[1]) {
		t.Errorf("csv header has %d columns, row has %d", len(rows[0]), len(rows[1]))
	}
	header := strings.Join(rows[0], ",")
	for _, col := range []string{"workload", "mem_dram", "core_rob_full", "load_lat_mean", "occ_mshr_mean", "skipped_cycles", "host_iters"} {
		if !strings.Contains(header, col) {
			t.Errorf("csv header missing column %q", col)
		}
	}
}

// TestMetricsExportDisabled: the zero Options leave no sink; Close is a
// no-op and running works as before.
func TestMetricsExportDisabled(t *testing.T) {
	r := newRunner(t, Options{Workers: 1})
	if _, err := r.Run(context.Background(), chaseSpec(5_000)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
