package runner

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"

	"crisp/internal/checkpoint"
	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/sim"
	"crisp/internal/trace"
	"crisp/internal/workload"
)

// resolveWorkload looks up a workload name, returning an error that
// enumerates the known names on a miss (so a typo in -only or -workload
// fails with guidance instead of a nil-pointer panic in a goroutine).
func resolveWorkload(name string) (*workload.Workload, error) {
	if w := workload.ByName(name); w != nil {
		return w, nil
	}
	return nil, fmt.Errorf("runner: unknown workload %q (known: %s)",
		name, strings.Join(workload.Names(), ", "))
}

// ValidateWorkloads checks a list of workload names, for flag validation
// before any job is submitted.
func ValidateWorkloads(names []string) error {
	for _, n := range names {
		if _, err := resolveWorkload(n); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------- timing runs

// Run resolves a timing spec to its result, executing the simulation at
// most once per content key across all concurrent callers and processes
// sharing the persistent cache.
func (r *Runner) Run(ctx context.Context, spec sim.RunSpec) (*core.Result, error) {
	v, err := r.do(ctx, "run|"+spec.Key(), r.runTask(spec))
	if err != nil {
		return nil, err
	}
	return v.(*core.Result), nil
}

// Submit starts spec on the pool without waiting and returns a handle
// whose Result joins the in-flight (or finished) computation. Under
// sharding, submissions for keys another process owns wait on the
// shared store instead of computing.
func (r *Runner) Submit(spec sim.RunSpec) *RunHandle {
	r.background("run|"+spec.Key(), r.submitTask(kindRun, spec.Key(), r.runTask(spec)))
	return &RunHandle{r: r, Spec: spec}
}

// RunHandle is a submitted timing run.
type RunHandle struct {
	r    *Runner
	Spec sim.RunSpec
}

// Result blocks until the run resolves.
func (h *RunHandle) Result(ctx context.Context) (*core.Result, error) {
	return h.r.Run(ctx, h.Spec)
}

func (r *Runner) runTask(spec sim.RunSpec) func(context.Context) (any, error) {
	return func(ctx context.Context) (any, error) {
		w, err := resolveWorkload(spec.Workload)
		if err != nil {
			return nil, err
		}
		cfg, err := spec.Config()
		if err != nil {
			return nil, err
		}
		if r.remote != nil {
			res, err := r.remote.Run(ctx, spec)
			if err != nil {
				return nil, err
			}
			r.remoteRuns.Add(1)
			return res, nil
		}
		key := spec.Key()
		var cached core.Result
		if r.store.Get(kindRun, key, &cached) {
			r.diskHits.Add(1)
			r.sink.record(newRunRecord(spec, &cached, true))
			return &cached, nil
		}
		// Cross-process single-flight: hold the spec's file lock across
		// compute-and-publish. A process losing the race blocks here,
		// then finds the winner's entry on the re-check.
		unlock, lockNS, err := r.lockTask(ctx, kindRun, key)
		if err != nil {
			return nil, err
		}
		defer unlock()
		if r.store.Get(kindRun, key, &cached) {
			r.diskHits.Add(1)
			rec := newRunRecord(spec, &cached, true)
			rec.LockWaitNS = lockNS
			r.sink.record(rec)
			return &cached, nil
		}
		var a *crisp.Analysis
		if spec.Crisp != nil {
			// Sampled specs carry no Insts; the analysis window matches the
			// budget the sampling schedule covers.
			budget := spec.Insts
			if spec.Sampling != nil {
				budget = spec.Sampling.Total()
			}
			a, err = r.Analysis(ctx, AnalysisSpec{Workload: spec.Workload, Insts: budget, Opts: *spec.Crisp})
			if err != nil {
				return nil, err
			}
		}
		variant := workload.Ref
		if spec.Input == sim.InputTrain {
			variant = workload.Train
		}
		img := w.Build(variant)
		if a != nil {
			img.Prog = a.Apply(img.Prog)
		}
		var res *core.Result
		var ckpt ckptResult
		if spec.Sampling != nil {
			// Every config sharing (workload, input, schedule) restores
			// from one memoized checkpoint set: the functional prefix runs
			// once per set, not once per config. Critical tags change
			// neither functional behaviour nor instruction positions, so
			// untagged checkpoints serve tagged programs.
			var set *checkpoint.Set
			var cerr error
			set, ckpt, cerr = r.checkpointSet(ctx, spec.Workload, variant, *spec.Sampling)
			if cerr != nil {
				return nil, cerr
			}
			res, err = sim.RunSampledContext(r.simCtx(ctx), set, img.Prog, cfg, *spec.Sampling)
		} else {
			res, err = sim.RunContext(ctx, img, cfg)
		}
		if err != nil {
			return nil, err
		}
		r.executed.Add(1)
		// Cache-write failures only cost a future re-simulation.
		_ = r.store.Put(kindRun, key, res)
		rec := newRunRecord(spec, res, false)
		rec.CkptStoreHit = ckpt.fromStore
		rec.CaptureNS, rec.WarmInsts = ckpt.stats.claim()
		rec.LockWaitNS = lockNS
		r.sink.record(rec)
		return res, nil
	}
}

// ------------------------------------------------- software pipeline

// AnalysisSpec is a pure-data description of one CRISP software-pipeline
// invocation: profile + trace the workload's train input at the given
// budget, then classify, slice and filter under Opts.
type AnalysisSpec struct {
	Workload string        `json:"workload"`
	Insts    uint64        `json:"insts"`
	Opts     crisp.Options `json:"opts"`
}

// Key returns the spec's deterministic content key (see sim.RunSpec.Key).
func (s AnalysisSpec) Key() string {
	b, err := json.Marshal(s)
	if err != nil { // unreachable: AnalysisSpec is plain data
		panic(fmt.Sprintf("runner: marshal AnalysisSpec: %v", err))
	}
	h := sha256.Sum256(append([]byte(sim.CodeVersion+"|analysis|"), b...))
	return hex.EncodeToString(h[:16])
}

// Validate reports spec-level errors a remote submission must reject
// before any work starts: a missing workload name (existence is checked
// by the executor, which owns the registry) or a zero instruction
// budget, which would profile to Halt — and the workload kernels never
// halt, they run until a budget stops them.
func (s AnalysisSpec) Validate() error {
	if s.Workload == "" {
		return fmt.Errorf("runner: AnalysisSpec has no workload")
	}
	if s.Insts == 0 {
		return fmt.Errorf("runner: AnalysisSpec has no instruction budget (the profiling run would never halt)")
	}
	return nil
}

// Analysis resolves the CRISP software pipeline for a spec. The train
// profiling run is a regular timing job (deduped and disk-cached like
// any other); the trace is memoized in memory; the resulting Analysis is
// also persisted, so cache-warm sweeps skip the pipeline entirely.
func (r *Runner) Analysis(ctx context.Context, spec AnalysisSpec) (*crisp.Analysis, error) {
	v, err := r.do(ctx, "analysis|"+spec.Key(), r.analysisTask(spec))
	if err != nil {
		return nil, err
	}
	return v.(*crisp.Analysis), nil
}

// SubmitAnalysis starts the pipeline without waiting.
func (r *Runner) SubmitAnalysis(spec AnalysisSpec) *AnalysisHandle {
	r.background("analysis|"+spec.Key(), r.submitTask(kindAnalysis, spec.Key(), r.analysisTask(spec)))
	return &AnalysisHandle{r: r, Spec: spec}
}

// AnalysisHandle is a submitted software-pipeline job.
type AnalysisHandle struct {
	r    *Runner
	Spec AnalysisSpec
}

// Result blocks until the analysis resolves.
func (h *AnalysisHandle) Result(ctx context.Context) (*crisp.Analysis, error) {
	return h.r.Analysis(ctx, h.Spec)
}

func (r *Runner) analysisTask(spec AnalysisSpec) func(context.Context) (any, error) {
	return func(ctx context.Context) (any, error) {
		w, err := resolveWorkload(spec.Workload)
		if err != nil {
			return nil, err
		}
		if r.remote != nil {
			a, err := r.remote.Analysis(ctx, spec)
			if err != nil {
				return nil, err
			}
			r.remoteRuns.Add(1)
			return a, nil
		}
		var cached crisp.Analysis
		if r.store.Get(kindAnalysis, spec.Key(), &cached) {
			r.diskHits.Add(1)
			return &cached, nil
		}
		unlock, _, err := r.lockTask(ctx, kindAnalysis, spec.Key())
		if err != nil {
			return nil, err
		}
		defer unlock()
		if r.store.Get(kindAnalysis, spec.Key(), &cached) {
			r.diskHits.Add(1)
			return &cached, nil
		}
		prof, err := r.Run(ctx, sim.RunSpec{Workload: spec.Workload, Input: sim.InputTrain, Insts: spec.Insts})
		if err != nil {
			return nil, err
		}
		tr, err := r.trace(ctx, spec.Workload, spec.Insts)
		if err != nil {
			return nil, err
		}
		a := crisp.Analyze(prof, tr, w.Build(workload.Train).Prog, spec.Opts)
		_ = r.store.Put(kindAnalysis, spec.Key(), a)
		return a, nil
	}
}

// trace memoizes the train-input trace capture per (workload, budget).
// Traces are large, so they live in memory only; the analyses and
// footprints derived from them are what the disk cache persists.
func (r *Runner) trace(ctx context.Context, name string, insts uint64) (*trace.Trace, error) {
	key := fmt.Sprintf("trace|%s|%d", name, insts)
	v, err := r.do(ctx, key, func(ctx context.Context) (any, error) {
		w, err := resolveWorkload(name)
		if err != nil {
			return nil, err
		}
		return sim.CaptureTrace(w.Build(workload.Train), insts), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*trace.Trace), nil
}

// ckptResult carries a resolved checkpoint set through the memo table
// along with whether it was loaded from the persistent store (fed into
// per-run metrics) rather than captured by fast-forwarding, and — for a
// fresh capture — its claim-once cost record.
type ckptResult struct {
	set       *checkpoint.Set
	fromStore bool
	stats     *captureStats // nil unless this process ran the capture
}

// captureStats is the host cost of one fresh capture. The memo table
// hands the same ckptResult to every run sharing the set, so the record
// is claimed exactly once: the first run to read it exports the cost in
// its metrics row and later sharers export zero, keeping column sums
// equal to the aggregate Stats counters.
type captureStats struct {
	captureNS int64
	warmInsts uint64
	claimed   atomic.Bool
}

// claim returns the capture cost the first time it is called and zeros
// afterwards (or on a nil receiver, i.e. a store hit).
func (cs *captureStats) claim() (int64, uint64) {
	if cs == nil || !cs.claimed.CompareAndSwap(false, true) {
		return 0, 0
	}
	return cs.captureNS, cs.warmInsts
}

// checkpointKey is the content key a checkpoint set persists under. It
// hashes everything that shapes a capture — code version, workload,
// input variant, schedule, warmed cache geometry and front-end
// structure sizes — so a simulator or configuration change misses every
// stale file instead of restoring wrong state.
func checkpointKey(name string, variant workload.Variant, s sim.Sampling) string {
	cfg := sim.DefaultConfig()
	hier, err := json.Marshal(cfg.Hier)
	if err != nil { // unreachable: HierConfig is plain data
		panic(fmt.Sprintf("runner: marshal HierConfig: %v", err))
	}
	msg := fmt.Sprintf("%s|ckpt|%s|%d|%d|%d|%d|%d|btb=%d/%d|ras=%d|hier=%s",
		sim.CodeVersion, name, variant, s.Skip, s.Warm, s.Window, s.Count,
		cfg.Core.BTBEntries, cfg.Core.BTBWays, cfg.Core.RASEntries, hier)
	h := sha256.Sum256([]byte(msg))
	return hex.EncodeToString(h[:16])
}

// checkpointSet resolves the sampled-simulation checkpoint capture per
// (workload, variant, schedule): the cross-config sharing at the heart
// of sampling. Within a process the set is memoized; across processes
// it persists in the store under the binary checkpoint codec, so a
// second process (or a re-run) decodes the warmed state instead of
// re-executing the functional fast-forward. Captures run under the
// runner's CaptureWorkers bound and honour cancellation: a cancelled
// capture returns the context's error without publishing a store entry.
func (r *Runner) checkpointSet(ctx context.Context, name string, variant workload.Variant, s sim.Sampling) (*checkpoint.Set, ckptResult, error) {
	key := checkpointKey(name, variant, s)
	v, err := r.do(ctx, "ckpt|"+key, func(ctx context.Context) (any, error) {
		if set, ok := r.store.GetCheckpoint(key); ok {
			r.ckptDiskHits.Add(1)
			return ckptResult{set: set, fromStore: true}, nil
		}
		w, err := resolveWorkload(name)
		if err != nil {
			return nil, err
		}
		// Hold the capture lock across fast-forward and publish: two
		// processes sweeping one store fast-forward each schedule once
		// between them, not once each.
		unlock, _, err := r.lockTask(ctx, kindCkpt, key)
		if err != nil {
			return nil, err
		}
		defer unlock()
		if set, ok := r.store.GetCheckpoint(key); ok {
			r.ckptDiskHits.Add(1)
			return ckptResult{set: set, fromStore: true}, nil
		}
		set, err := sim.CaptureCheckpointsContext(r.simCtx(ctx), w.Build(variant), sim.DefaultConfig(), s)
		if err != nil {
			return nil, err
		}
		r.ckptCaptured.Add(1)
		r.captureNS.Add(set.HostNS)
		r.warmInsts.Add(int64(set.WarmInsts))
		// A failed write only costs the next process a recapture.
		_ = r.store.PutCheckpoint(key, set)
		return ckptResult{set: set, stats: &captureStats{captureNS: set.HostNS, warmInsts: set.WarmInsts}}, nil
	})
	if err != nil {
		return nil, ckptResult{}, err
	}
	cr := v.(ckptResult)
	return cr.set, cr, nil
}

// Footprint resolves the Figure 12 code-size metrics for an analysis.
func (r *Runner) Footprint(ctx context.Context, spec AnalysisSpec) (*crisp.Footprint, error) {
	v, err := r.do(ctx, "footprint|"+spec.Key(), r.footprintTask(spec))
	if err != nil {
		return nil, err
	}
	return v.(*crisp.Footprint), nil
}

// SubmitFootprint starts the footprint measurement without waiting.
func (r *Runner) SubmitFootprint(spec AnalysisSpec) *FootprintHandle {
	r.background("footprint|"+spec.Key(), r.submitTask(kindFootprint, spec.Key(), r.footprintTask(spec)))
	return &FootprintHandle{r: r, Spec: spec}
}

// FootprintHandle is a submitted footprint measurement.
type FootprintHandle struct {
	r    *Runner
	Spec AnalysisSpec
}

// Result blocks until the footprint resolves.
func (h *FootprintHandle) Result(ctx context.Context) (*crisp.Footprint, error) {
	return h.r.Footprint(ctx, h.Spec)
}

func (r *Runner) footprintTask(spec AnalysisSpec) func(context.Context) (any, error) {
	return func(ctx context.Context) (any, error) {
		w, err := resolveWorkload(spec.Workload)
		if err != nil {
			return nil, err
		}
		if r.remote != nil {
			fp, err := r.remote.Footprint(ctx, spec)
			if err != nil {
				return nil, err
			}
			r.remoteRuns.Add(1)
			return fp, nil
		}
		var cached crisp.Footprint
		if r.store.Get(kindFootprint, spec.Key(), &cached) {
			r.diskHits.Add(1)
			return &cached, nil
		}
		unlock, _, err := r.lockTask(ctx, kindFootprint, spec.Key())
		if err != nil {
			return nil, err
		}
		defer unlock()
		if r.store.Get(kindFootprint, spec.Key(), &cached) {
			r.diskHits.Add(1)
			return &cached, nil
		}
		a, err := r.Analysis(ctx, spec)
		if err != nil {
			return nil, err
		}
		tr, err := r.trace(ctx, spec.Workload, spec.Insts)
		if err != nil {
			return nil, err
		}
		fp := crisp.MeasureFootprint(w.Build(workload.Train).Prog, tr, a.CriticalPCs)
		_ = r.store.Put(kindFootprint, spec.Key(), &fp)
		return &fp, nil
	}
}
