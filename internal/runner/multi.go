package runner

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"crisp/internal/checkpoint"
	"crisp/internal/crisp"
	"crisp/internal/program"
	"crisp/internal/sim"
	"crisp/internal/workload"
)

// ------------------------------------------------- multi-core timing runs

// RunMulti resolves a multi-core co-location spec to its result,
// executing the lockstep simulation at most once per content key across
// all concurrent callers and processes sharing the persistent cache —
// the same single-flight discipline as single-core Run.
func (r *Runner) RunMulti(ctx context.Context, spec sim.MultiSpec) (*sim.MultiResult, error) {
	v, err := r.do(ctx, "multi|"+spec.Key(), r.multiTask(spec))
	if err != nil {
		return nil, err
	}
	return v.(*sim.MultiResult), nil
}

// SubmitMulti starts spec on the pool without waiting and returns a
// handle whose Result joins the in-flight (or finished) computation.
// Under sharding, submissions for keys another process owns wait on the
// shared store instead of computing.
func (r *Runner) SubmitMulti(spec sim.MultiSpec) *MultiHandle {
	r.background("multi|"+spec.Key(), r.submitTask(kindMulti, spec.Key(), r.multiTask(spec)))
	return &MultiHandle{r: r, Spec: spec}
}

// MultiHandle is a submitted multi-core timing run.
type MultiHandle struct {
	r    *Runner
	Spec sim.MultiSpec
}

// Result blocks until the run resolves.
func (h *MultiHandle) Result(ctx context.Context) (*sim.MultiResult, error) {
	return h.r.RunMulti(ctx, h.Spec)
}

func (r *Runner) multiTask(spec sim.MultiSpec) func(context.Context) (any, error) {
	return func(ctx context.Context) (any, error) {
		cfgs, err := spec.Configs() // validates the spec as a side effect
		if err != nil {
			return nil, err
		}
		if r.remote != nil {
			res, err := r.remote.RunMulti(ctx, spec)
			if err != nil {
				return nil, err
			}
			r.remoteRuns.Add(1)
			return res, nil
		}
		key := spec.Key()
		var cached sim.MultiResult
		if r.store.Get(kindMulti, key, &cached) {
			r.diskHits.Add(1)
			return &cached, nil
		}
		// Cross-process single-flight, as in runTask: hold the spec's
		// file lock across compute-and-publish.
		unlock, _, err := r.lockTask(ctx, kindMulti, key)
		if err != nil {
			return nil, err
		}
		defer unlock()
		if r.store.Get(kindMulti, key, &cached) {
			r.diskHits.Add(1)
			return &cached, nil
		}
		// Resolve each clause to an image exactly as runTask would: CRISP
		// clauses run the (deduped, disk-cached) software pipeline first,
		// so a colocate sweep shares analyses with the single-core figures.
		// Sampled specs have no per-clause budget; the analysis profiles
		// over the instruction span the schedule covers, as runTask does.
		imgs := make([]*sim.Image, len(spec.Cores))
		for i, cs := range spec.Cores {
			w, err := resolveWorkload(cs.Workload)
			if err != nil {
				return nil, err
			}
			var a *crisp.Analysis
			if cs.Crisp != nil {
				budget := cs.Insts
				if spec.Sampling != nil {
					budget = spec.Sampling.Total()
				}
				a, err = r.Analysis(ctx, AnalysisSpec{Workload: cs.Workload, Insts: budget, Opts: *cs.Crisp})
				if err != nil {
					return nil, err
				}
			}
			variant := workload.Ref
			if cs.Input == sim.InputTrain {
				variant = workload.Train
			}
			img := w.Build(variant)
			if a != nil {
				img.Prog = a.Apply(img.Prog)
			}
			imgs[i] = img
		}
		var res *sim.MultiResult
		if spec.Sampling != nil {
			// Sampled path: resolve the co-scheduled checkpoint set (one
			// capture per workload/schedule/prefetcher tuple, shared by
			// every scheduler config and every process on the store), then
			// run the detailed lockstep windows over the tagged programs.
			set, _, err := r.multiCheckpointSet(ctx, spec, cfgs)
			if err != nil {
				return nil, err
			}
			progs := make([]*program.Program, len(imgs))
			for i := range imgs {
				progs[i] = imgs[i].Prog
			}
			res, err = sim.RunMultiSampledContext(r.simCtx(ctx), set, progs, cfgs, *spec.Sampling)
			if err != nil {
				return nil, err
			}
		} else {
			res, err = sim.RunMultiContext(ctx, imgs, cfgs)
			if err != nil {
				return nil, err
			}
		}
		r.executed.Add(1)
		// Cache-write failures only cost a future re-simulation.
		_ = r.store.Put(kindMulti, key, res)
		return res, nil
	}
}

// mckptResult mirrors ckptResult for co-scheduled multi-core sets.
type mckptResult struct {
	set       *checkpoint.MultiSet
	fromStore bool
}

// multiCheckpointKey is the content key a co-scheduled checkpoint set
// persists under. Beyond the single-core key's inputs (code version,
// schedule, warmed geometry, front-end sizes) it hashes the ordered
// per-core workload/input/prefetcher tuple: core order fixes requester
// indices and address-space slices, and the prefetcher tuple shapes the
// shared LLC's warmed occupancy, so any of them changing must miss.
func multiCheckpointKey(spec sim.MultiSpec) string {
	cfg := sim.DefaultConfig()
	hier, err := json.Marshal(cfg.Hier)
	if err != nil { // unreachable: HierConfig is plain data
		panic(fmt.Sprintf("runner: marshal HierConfig: %v", err))
	}
	s := spec.Sampling
	var b strings.Builder
	fmt.Fprintf(&b, "%s|mckpt|%d|%d|%d|%d", sim.CodeVersion, s.Skip, s.Warm, s.Window, s.Count)
	for _, cs := range spec.Cores {
		variant := workload.Ref
		if cs.Input == sim.InputTrain {
			variant = workload.Train
		}
		fmt.Fprintf(&b, "|core=%s/%d/pf=%s", cs.Workload, variant, cs.Prefetcher.String())
	}
	fmt.Fprintf(&b, "|btb=%d/%d|ras=%d|hier=%s",
		cfg.Core.BTBEntries, cfg.Core.BTBWays, cfg.Core.RASEntries, hier)
	h := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(h[:16])
}

// multiCheckpointSet resolves the co-scheduled checkpoint capture for a
// sampled MultiSpec with checkpointSet's discipline: memoized in
// process, file-lock single-flighted across processes, persisted under
// the binary multi-set codec. The capture warms untagged images — tags
// do not change functional behaviour, so every CRISP/OOO scheduler
// config of the same workload tuple shares the set. The reported bool
// is true when the set came from the store.
func (r *Runner) multiCheckpointSet(ctx context.Context, spec sim.MultiSpec, cfgs []sim.Config) (*checkpoint.MultiSet, bool, error) {
	key := multiCheckpointKey(spec)
	v, err := r.do(ctx, "mckpt|"+key, func(ctx context.Context) (any, error) {
		if set, ok := r.store.GetMultiCheckpoint(key); ok {
			r.ckptDiskHits.Add(1)
			return mckptResult{set, true}, nil
		}
		ws := make([]*workload.Workload, len(spec.Cores))
		for i, cs := range spec.Cores {
			w, err := resolveWorkload(cs.Workload)
			if err != nil {
				return nil, err
			}
			ws[i] = w
		}
		// Hold the capture lock across fast-forward and publish: two
		// processes sweeping one store co-schedule each tuple once
		// between them, not once each.
		unlock, _, err := r.lockTask(ctx, kindMultiCkpt, key)
		if err != nil {
			return nil, err
		}
		defer unlock()
		if set, ok := r.store.GetMultiCheckpoint(key); ok {
			r.ckptDiskHits.Add(1)
			return mckptResult{set, true}, nil
		}
		imgs := make([]*sim.Image, len(spec.Cores))
		for i, cs := range spec.Cores {
			variant := workload.Ref
			if cs.Input == sim.InputTrain {
				variant = workload.Train
			}
			imgs[i] = ws[i].Build(variant)
		}
		set, err := sim.CaptureMultiCheckpointsContext(r.simCtx(ctx), imgs, cfgs, *spec.Sampling)
		if err != nil {
			return nil, err
		}
		r.ckptCaptured.Add(1)
		r.captureNS.Add(set.HostNS)
		r.warmInsts.Add(int64(set.WarmInsts))
		// A failed write only costs the next process a recapture.
		_ = r.store.PutMultiCheckpoint(key, set)
		return mckptResult{set, false}, nil
	})
	if err != nil {
		return nil, false, err
	}
	cr := v.(mckptResult)
	return cr.set, cr.fromStore, nil
}
