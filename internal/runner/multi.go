package runner

import (
	"context"

	"crisp/internal/crisp"
	"crisp/internal/sim"
	"crisp/internal/workload"
)

// ------------------------------------------------- multi-core timing runs

// RunMulti resolves a multi-core co-location spec to its result,
// executing the lockstep simulation at most once per content key across
// all concurrent callers and processes sharing the persistent cache —
// the same single-flight discipline as single-core Run.
func (r *Runner) RunMulti(ctx context.Context, spec sim.MultiSpec) (*sim.MultiResult, error) {
	v, err := r.do(ctx, "multi|"+spec.Key(), r.multiTask(spec))
	if err != nil {
		return nil, err
	}
	return v.(*sim.MultiResult), nil
}

// SubmitMulti starts spec on the pool without waiting and returns a
// handle whose Result joins the in-flight (or finished) computation.
// Under sharding, submissions for keys another process owns wait on the
// shared store instead of computing.
func (r *Runner) SubmitMulti(spec sim.MultiSpec) *MultiHandle {
	r.background("multi|"+spec.Key(), r.submitTask(kindMulti, spec.Key(), r.multiTask(spec)))
	return &MultiHandle{r: r, Spec: spec}
}

// MultiHandle is a submitted multi-core timing run.
type MultiHandle struct {
	r    *Runner
	Spec sim.MultiSpec
}

// Result blocks until the run resolves.
func (h *MultiHandle) Result(ctx context.Context) (*sim.MultiResult, error) {
	return h.r.RunMulti(ctx, h.Spec)
}

func (r *Runner) multiTask(spec sim.MultiSpec) func(context.Context) (any, error) {
	return func(ctx context.Context) (any, error) {
		cfgs, err := spec.Configs() // validates the spec as a side effect
		if err != nil {
			return nil, err
		}
		if r.remote != nil {
			res, err := r.remote.RunMulti(ctx, spec)
			if err != nil {
				return nil, err
			}
			r.remoteRuns.Add(1)
			return res, nil
		}
		key := spec.Key()
		var cached sim.MultiResult
		if r.store.Get(kindMulti, key, &cached) {
			r.diskHits.Add(1)
			return &cached, nil
		}
		// Cross-process single-flight, as in runTask: hold the spec's
		// file lock across compute-and-publish.
		unlock, _, err := r.lockTask(ctx, kindMulti, key)
		if err != nil {
			return nil, err
		}
		defer unlock()
		if r.store.Get(kindMulti, key, &cached) {
			r.diskHits.Add(1)
			return &cached, nil
		}
		// Resolve each clause to an image exactly as runTask would: CRISP
		// clauses run the (deduped, disk-cached) software pipeline first,
		// so a colocate sweep shares analyses with the single-core figures.
		imgs := make([]*sim.Image, len(spec.Cores))
		for i, cs := range spec.Cores {
			w, err := resolveWorkload(cs.Workload)
			if err != nil {
				return nil, err
			}
			var a *crisp.Analysis
			if cs.Crisp != nil {
				a, err = r.Analysis(ctx, AnalysisSpec{Workload: cs.Workload, Insts: cs.Insts, Opts: *cs.Crisp})
				if err != nil {
					return nil, err
				}
			}
			variant := workload.Ref
			if cs.Input == sim.InputTrain {
				variant = workload.Train
			}
			img := w.Build(variant)
			if a != nil {
				img.Prog = a.Apply(img.Prog)
			}
			imgs[i] = img
		}
		res, err := sim.RunMultiContext(ctx, imgs, cfgs)
		if err != nil {
			return nil, err
		}
		r.executed.Add(1)
		// Cache-write failures only cost a future re-simulation.
		_ = r.store.Put(kindMulti, key, res)
		return res, nil
	}
}
