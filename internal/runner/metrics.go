package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"

	"crisp/internal/core"
	"crisp/internal/metrics"
	"crisp/internal/sim"
)

// RunRecord is one line of the metrics export: the identity of a resolved
// timing run plus its cycle accounting and histograms. The JSONL stream
// carries the record verbatim; the CSV stream flattens it to scalar
// columns (bucket slot counts, histogram means and p99s).
type RunRecord struct {
	Workload  string            `json:"workload"`
	Input     string            `json:"input"`
	Sched     string            `json:"sched"`
	Insts     uint64            `json:"insts"`
	Key       string            `json:"key"`
	Cached    bool              `json:"cached"`
	Cycles    uint64            `json:"cycles"`
	Committed uint64            `json:"committed"`
	IPC       float64           `json:"ipc"`
	Breakdown metrics.Breakdown `json:"breakdown"`
	Hists     metrics.Hists     `json:"hists"`

	// Host-side split: detailed core.Run time vs the functional
	// fast-forward that produced the run's checkpoint set (zero for
	// full-detail runs; shared across configs for sampled ones).
	HostNS   int64  `json:"host_ns"`
	HostFFNS int64  `json:"host_ff_ns,omitempty"`
	FFInsts  uint64 `json:"ff_insts,omitempty"`
	Windows  int    `json:"windows,omitempty"` // sampled windows (0 = full detail)

	// Skip efficiency of next-event idle-cycle skipping: simulated cycles
	// covered by bulk jumps and cycle-loop iterations the host actually
	// executed (Cycles == SkippedCycles + HostIters per window).
	SkippedCycles uint64 `json:"skipped_cycles"`
	HostIters     uint64 `json:"host_iters"`

	// Persistent-store provenance: whether this run's checkpoint set or
	// result came from the shared store rather than being computed here,
	// and how long the producing task blocked on cross-process file
	// locks. SpecStoreHit mirrors Cached (the spec_store_hit column name
	// matches the store counter it reports).
	CkptStoreHit bool  `json:"checkpoint_store_hit"`
	SpecStoreHit bool  `json:"spec_store_hit"`
	LockWaitNS   int64 `json:"lock_wait_ns"`

	// Capture provenance: host time and warming volume of the checkpoint
	// capture this run triggered. Zero when the set came from the store
	// or another run's in-process capture — the capture is charged to the
	// run that executed it, so summing the columns never double-counts.
	CaptureNS int64  `json:"capture_ns,omitempty"`
	WarmInsts uint64 `json:"warm_insts,omitempty"`
}

// newRunRecord flattens a spec/result pair into a record.
func newRunRecord(spec sim.RunSpec, res *core.Result, cached bool) RunRecord {
	input := spec.Input
	if input == "" {
		input = sim.InputRef
	}
	sched := spec.Sched
	if sched == "" {
		sched = sim.SchedOOO
	}
	insts := spec.Insts
	if spec.Sampling != nil {
		insts = spec.Sampling.Total()
	}
	return RunRecord{
		Workload:      spec.Workload,
		Input:         input,
		Sched:         sched,
		Insts:         insts,
		Key:           spec.Key(),
		Cached:        cached,
		Cycles:        res.Cycles,
		Committed:     res.Insts,
		IPC:           res.IPC(),
		Breakdown:     res.Breakdown,
		Hists:         res.Hists,
		HostNS:        res.HostNS,
		HostFFNS:      res.HostFFNS,
		FFInsts:       res.FFInsts,
		Windows:       res.SampledWindows,
		SkippedCycles: res.SkippedCycles,
		HostIters:     res.HostIters,
		SpecStoreHit:  cached,
	}
}

// metricsSink streams RunRecords to the files configured in Options. Each
// unique run records once per process (the single-flight executor runs
// the producing task once); files are opened in append mode so successive
// sweeps accumulate.
type metricsSink struct {
	mu    sync.Mutex
	jsonl *os.File
	csv   *os.File
}

// newMetricsSink opens the configured outputs ("" disables a stream). A
// fresh CSV file gets its header row immediately so even an empty sweep
// leaves a parseable file.
func newMetricsSink(jsonlPath, csvPath string) (*metricsSink, error) {
	s := &metricsSink{}
	if jsonlPath != "" {
		f, err := os.OpenFile(jsonlPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("runner: open metrics jsonl: %w", err)
		}
		s.jsonl = f
	}
	if csvPath != "" {
		f, err := os.OpenFile(csvPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			s.close()
			return nil, fmt.Errorf("runner: open metrics csv: %w", err)
		}
		s.csv = f
		if st, err := f.Stat(); err == nil && st.Size() == 0 {
			fmt.Fprintln(f, strings.Join(csvHeader(), ","))
		}
	}
	return s, nil
}

func (s *metricsSink) enabled() bool { return s != nil && (s.jsonl != nil || s.csv != nil) }

// record appends one run to every open stream. Write failures are
// reported once via the returned error chain at Close; a telemetry write
// must never fail the simulation that produced it.
func (s *metricsSink) record(rec RunRecord) {
	if !s.enabled() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jsonl != nil {
		if b, err := json.Marshal(rec); err == nil {
			s.jsonl.Write(append(b, '\n'))
		}
	}
	if s.csv != nil {
		fmt.Fprintln(s.csv, strings.Join(csvRow(rec), ","))
	}
}

func (s *metricsSink) close() error {
	var firstErr error
	for _, f := range []*os.File{s.jsonl, s.csv} {
		if f != nil {
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	s.jsonl, s.csv = nil, nil
	return firstErr
}

// csvHeader returns the flat column names: run identity, totals, one
// slot-count column per stall bucket, then histogram summaries.
func csvHeader() []string {
	cols := []string{"workload", "input", "sched", "insts", "cached", "cycles", "committed", "ipc", "committed_frac"}
	cols = append(cols, metrics.BucketNames()...)
	return append(cols,
		"load_lat_mean", "load_lat_p99",
		"dram_lat_mean", "dram_lat_p99",
		"mlp_mean",
		"occ_rob_mean", "occ_rs_mean", "occ_lq_mean", "occ_sq_mean", "occ_mshr_mean",
		"host_ns", "host_ff_ns", "ff_insts", "windows",
		"skipped_cycles", "host_iters",
		"checkpoint_store_hit", "spec_store_hit", "lock_wait_ns",
		"capture_ns", "warm_insts")
}

func csvRow(rec RunRecord) []string {
	row := []string{
		rec.Workload, rec.Input, rec.Sched,
		fmt.Sprintf("%d", rec.Insts),
		fmt.Sprintf("%t", rec.Cached),
		fmt.Sprintf("%d", rec.Cycles),
		fmt.Sprintf("%d", rec.Committed),
		fmt.Sprintf("%.6f", rec.IPC),
		fmt.Sprintf("%.6f", rec.Breakdown.CommittedFrac()),
	}
	for _, n := range rec.Breakdown.Stalls {
		row = append(row, fmt.Sprintf("%d", n))
	}
	h := &rec.Hists
	return append(row,
		fmt.Sprintf("%.3f", h.LoadLat.Mean()),
		fmt.Sprintf("%d", h.LoadLat.Quantile(0.99)),
		fmt.Sprintf("%.3f", h.DRAMLat.Mean()),
		fmt.Sprintf("%d", h.DRAMLat.Quantile(0.99)),
		fmt.Sprintf("%.3f", h.MLPAtMiss.Mean()),
		fmt.Sprintf("%.3f", h.OccROB.Mean()),
		fmt.Sprintf("%.3f", h.OccRS.Mean()),
		fmt.Sprintf("%.3f", h.OccLQ.Mean()),
		fmt.Sprintf("%.3f", h.OccSQ.Mean()),
		fmt.Sprintf("%.3f", h.OccMSHR.Mean()),
		fmt.Sprintf("%d", rec.HostNS),
		fmt.Sprintf("%d", rec.HostFFNS),
		fmt.Sprintf("%d", rec.FFInsts),
		fmt.Sprintf("%d", rec.Windows),
		fmt.Sprintf("%d", rec.SkippedCycles),
		fmt.Sprintf("%d", rec.HostIters),
		fmt.Sprintf("%t", rec.CkptStoreHit),
		fmt.Sprintf("%t", rec.SpecStoreHit),
		fmt.Sprintf("%d", rec.LockWaitNS),
		fmt.Sprintf("%d", rec.CaptureNS),
		fmt.Sprintf("%d", rec.WarmInsts))
}
