package runner

import (
	"context"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/sim"
)

func newRunner(t *testing.T, opts Options) *Runner {
	t.Helper()
	r, err := New(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func chaseSpec(insts uint64) sim.RunSpec {
	return sim.RunSpec{Workload: "pointerchase", Insts: insts}
}

// TestSingleFlight: concurrent requests for one spec run one simulation
// and share the result instance.
func TestSingleFlight(t *testing.T) {
	r := newRunner(t, Options{Workers: 4})
	const callers = 16
	results := make([]*core.Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = r.Run(context.Background(), chaseSpec(20_000))
		}()
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result instance", i)
		}
	}
	if s := r.Stats(); s.Executed != 1 {
		t.Fatalf("Executed = %d, want 1", s.Executed)
	}
}

// TestCrispSharesProfile: a CRISP run resolves its train profile through
// the same memo table, so a later explicit request for the profile is a
// hit, not a new simulation.
func TestCrispSharesProfile(t *testing.T) {
	r := newRunner(t, Options{Workers: 2})
	ctx := context.Background()
	spec := chaseSpec(20_000).WithCrisp(crisp.DefaultOptions())
	if _, err := r.Run(ctx, spec); err != nil {
		t.Fatal(err)
	}
	executed := r.Stats().Executed // crisp run + its train profile
	profile := sim.RunSpec{Workload: "pointerchase", Input: sim.InputTrain, Insts: 20_000}
	if _, err := r.Run(ctx, profile); err != nil {
		t.Fatal(err)
	}
	if after := r.Stats().Executed; after != executed {
		t.Fatalf("train profile re-executed: %d -> %d", executed, after)
	}
	// Same analysis under the same options is memoized too.
	a1, err := r.Analysis(ctx, AnalysisSpec{Workload: "pointerchase", Insts: 20_000, Opts: crisp.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := r.Analysis(ctx, AnalysisSpec{Workload: "pointerchase", Insts: 20_000, Opts: crisp.DefaultOptions()})
	if a1 != a2 {
		t.Error("analysis not memoized")
	}
}

// TestDiskCache: a second runner over the same cache dir serves results
// from disk without simulating, and the JSON round-trip preserves the
// numbers figures are formatted from.
func TestDiskCache(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	spec := chaseSpec(20_000).WithCrisp(crisp.DefaultOptions())

	r1 := newRunner(t, Options{Workers: 2, CacheDir: dir})
	warm, err := r1.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := r1.Stats(); s.Executed == 0 || s.DiskHits != 0 {
		t.Fatalf("cold run stats = %+v", s)
	}

	r2 := newRunner(t, Options{Workers: 2, CacheDir: dir})
	cached, err := r2.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := r2.Stats(); s.Executed != 0 {
		t.Fatalf("warm run executed %d simulations, want 0", s.Executed)
	}
	if cached.IPC() != warm.IPC() || cached.Cycles != warm.Cycles || cached.Insts != warm.Insts ||
		cached.LLCMPKI() != warm.LLCMPKI() || cached.BranchMPKI() != warm.BranchMPKI() {
		t.Fatalf("round-tripped result differs: %+v vs %+v", cached, warm)
	}
	if len(cached.Loads) != len(warm.Loads) {
		t.Fatalf("per-PC load profiles lost in round trip: %d vs %d", len(cached.Loads), len(warm.Loads))
	}
	if cached.Breakdown != warm.Breakdown || cached.Hists != warm.Hists {
		t.Fatal("cycle accounting lost in disk round trip")
	}

	// The analysis was persisted as well: a warm pipeline request must
	// not re-profile.
	if _, err := r2.Analysis(ctx, AnalysisSpec{Workload: "pointerchase", Insts: 20_000, Opts: crisp.DefaultOptions()}); err != nil {
		t.Fatal(err)
	}
	if s := r2.Stats(); s.Executed != 0 {
		t.Fatalf("warm analysis executed %d simulations, want 0", s.Executed)
	}
}

// TestCancellation: a cancelled context aborts a long simulation
// mid-cycle-loop, and the key stays recomputable afterwards.
func TestCancellation(t *testing.T) {
	r := newRunner(t, Options{Workers: 1})
	spec := chaseSpec(200_000_000) // far more than completes in the deadline
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := r.Run(ctx, spec)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; context not threaded into the cycle loop", elapsed)
	}
	// The failed attempt is not memoized: a fresh context can run a
	// (smaller) spec with the same key path.
	if _, err := r.Run(context.Background(), chaseSpec(10_000)); err != nil {
		t.Fatalf("runner unusable after cancellation: %v", err)
	}
}

// TestCancelMidCapture: cancelling a sampled run while its checkpoint
// capture is fast-forwarding must surface the context error and leave
// the store pristine — no partial checkpoint entry a later process
// would restore from, and no orphaned lock or temp files.
func TestCancelMidCapture(t *testing.T) {
	dir := t.TempDir()
	// CaptureWorkers forces the pipelined capture path, which polls the
	// context every batch; the sequential path only checks it at phase
	// boundaries, so on a small machine this test would ride out the
	// whole warm fast-forward before noticing the deadline.
	r := newRunner(t, Options{Workers: 1, CacheDir: dir, CaptureWorkers: 4})
	// A warm budget far beyond what 50ms covers keeps the cancellation
	// inside the capture phase, before any store publish.
	spec := sim.RunSpec{Workload: "pointerchase",
		Sampling: &sim.Sampling{Warm: 2_000_000_000, Window: 1000, Count: 4}}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := r.Run(ctx, spec); err == nil {
		t.Fatal("expected cancellation error")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("cancelled capture left %q in the store", e.Name())
	}
	if st := r.Stats(); st.CkptCaptured != 0 || st.CaptureNS != 0 || st.WarmInsts != 0 {
		t.Errorf("cancelled capture counted as completed: %+v", st)
	}
}

// TestSampledSharing: sampled specs are content-keyed like any other —
// a repeat is a memo hit — and configs that differ only in scheduler or
// prefetcher share one checkpoint capture. The disk round trip keeps the
// sampling metadata the metrics sink exports.
func TestSampledSharing(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s := sim.Sampling{Warm: 15_000, Window: 5_000, Count: 2}
	base := sim.RunSpec{Workload: "pointerchase", Sampling: &s}

	r1 := newRunner(t, Options{Workers: 4, CacheDir: dir})
	warm, err := r1.Run(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	if warm.SampledWindows != s.Count || warm.FFInsts == 0 {
		t.Fatalf("sampled result metadata = windows %d ff %d", warm.SampledWindows, warm.FFInsts)
	}
	// Same spec again: memo hit, no new simulation.
	again, err := r1.Run(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	if again != warm {
		t.Error("identical sampled spec re-executed")
	}
	executed := r1.Stats().Executed
	// Different scheduler and prefetcher: new simulations, but the
	// functional prefix is restored from the shared checkpoint set, so
	// each costs only the detailed windows.
	rnd := base
	rnd.Sched = sim.SchedRandom
	nopf := base
	nopf.Prefetcher = sim.PFNone
	for _, spec := range []sim.RunSpec{rnd, nopf} {
		res, err := r1.Run(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if res == warm {
			t.Error("distinct config shared a result")
		}
	}
	if after := r1.Stats().Executed; after != executed+2 {
		t.Errorf("Executed %d -> %d, want +2", executed, after)
	}
	// Any sampling-field change is a different key.
	s2 := s
	s2.Count++
	changed, err := r1.Run(ctx, sim.RunSpec{Workload: "pointerchase", Sampling: &s2})
	if err != nil {
		t.Fatal(err)
	}
	if changed == warm {
		t.Error("changed sampling schedule hit the old key")
	}

	// A fresh runner over the same cache dir serves the sampled result
	// from disk, metadata intact.
	r2 := newRunner(t, Options{Workers: 2, CacheDir: dir})
	cached, err := r2.Run(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Stats().Executed; got != 0 {
		t.Fatalf("warm sampled run executed %d simulations, want 0", got)
	}
	if cached.Cycles != warm.Cycles || cached.Insts != warm.Insts ||
		cached.SampledWindows != warm.SampledWindows || cached.FFInsts != warm.FFInsts {
		t.Fatalf("sampled result lost in disk round trip: %+v vs %+v", cached, warm)
	}
}

// TestUnknownWorkload: a bad name produces an error enumerating the
// registry instead of a nil-pointer panic in a worker.
func TestUnknownWorkload(t *testing.T) {
	r := newRunner(t, Options{Workers: 1})
	_, err := r.Run(context.Background(), sim.RunSpec{Workload: "mfc", Insts: 1000})
	if err == nil || !strings.Contains(err.Error(), `"mfc"`) || !strings.Contains(err.Error(), "mcf") {
		t.Fatalf("err = %v, want unknown-workload error listing known names", err)
	}
	if err := ValidateWorkloads([]string{"mcf", "lbm"}); err != nil {
		t.Fatalf("ValidateWorkloads(valid) = %v", err)
	}
	if err := ValidateWorkloads([]string{"mcf", "bogus"}); err == nil {
		t.Fatal("ValidateWorkloads missed a bad name")
	}
}

// TestSubmitHandles: background submission overlaps independent runs and
// handles join the in-flight work.
func TestSubmitHandles(t *testing.T) {
	r := newRunner(t, Options{Workers: 4})
	h1 := r.Submit(chaseSpec(20_000))
	h2 := r.Submit(sim.RunSpec{Workload: "mcf", Insts: 20_000})
	h3 := r.Submit(chaseSpec(20_000)) // duplicate of h1
	ctx := context.Background()
	r1, err := h1.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Result(ctx); err != nil {
		t.Fatal(err)
	}
	r3, err := h3.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r3 {
		t.Error("duplicate submission produced a distinct result")
	}
	if s := r.Stats(); s.Executed != 2 {
		t.Errorf("Executed = %d, want 2", s.Executed)
	}
}
