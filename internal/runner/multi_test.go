package runner

import (
	"context"
	"testing"

	"crisp/internal/sim"
)

// TestRunMultiDedup: multi-core runs flow through the same single-flight
// and persistent-store machinery as single-core ones — a repeated spec
// memoizes in-process, and a second runner over the same cache dir loads
// the published result from disk instead of re-simulating.
func TestRunMultiDedup(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	spec := sim.MultiSpec{Cores: []sim.RunSpec{
		{Workload: "tailchase", Insts: 20_000},
		{Workload: "streambatch", Insts: 20_000},
	}}

	r1 := newRunner(t, Options{CacheDir: dir})
	a, err := r1.RunMulti(ctx, spec)
	if err != nil {
		t.Fatalf("RunMulti: %v", err)
	}
	if len(a.Cores) != 2 || a.Cores[0].Insts == 0 || a.Cores[1].Insts == 0 {
		t.Fatalf("empty multi result: %+v", a)
	}
	b, err := r1.RunMulti(ctx, spec)
	if err != nil {
		t.Fatalf("RunMulti (repeat): %v", err)
	}
	if a != b {
		t.Error("repeated RunMulti did not memoize in-process")
	}
	if ex := r1.Stats().Executed; ex != 1 {
		t.Errorf("Executed = %d, want 1", ex)
	}

	r2 := newRunner(t, Options{CacheDir: dir})
	c, err := r2.RunMulti(ctx, spec)
	if err != nil {
		t.Fatalf("RunMulti (second process): %v", err)
	}
	if r2.Stats().Executed != 0 {
		t.Error("second runner re-simulated despite a published store entry")
	}
	for i := range a.Cores {
		if a.Cores[i].Cycles != c.Cores[i].Cycles || a.Cores[i].Insts != c.Cores[i].Insts {
			t.Errorf("core %d: disk round-trip disagrees: %d/%d vs %d/%d cycles/insts",
				i, a.Cores[i].Cycles, a.Cores[i].Insts, c.Cores[i].Cycles, c.Cores[i].Insts)
		}
	}
	if a.DRAM.Reads != c.DRAM.Reads || a.LLC.Misses != c.LLC.Misses {
		t.Error("shared-level stats did not survive the disk round-trip")
	}
}
