package runner

import (
	"context"
	"sync"
	"testing"

	"crisp/internal/sim"
)

// TestRunMultiDedup: multi-core runs flow through the same single-flight
// and persistent-store machinery as single-core ones — a repeated spec
// memoizes in-process, and a second runner over the same cache dir loads
// the published result from disk instead of re-simulating.
func TestRunMultiDedup(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	spec := sim.MultiSpec{Cores: []sim.RunSpec{
		{Workload: "tailchase", Insts: 20_000},
		{Workload: "streambatch", Insts: 20_000},
	}}

	r1 := newRunner(t, Options{CacheDir: dir})
	a, err := r1.RunMulti(ctx, spec)
	if err != nil {
		t.Fatalf("RunMulti: %v", err)
	}
	if len(a.Cores) != 2 || a.Cores[0].Insts == 0 || a.Cores[1].Insts == 0 {
		t.Fatalf("empty multi result: %+v", a)
	}
	b, err := r1.RunMulti(ctx, spec)
	if err != nil {
		t.Fatalf("RunMulti (repeat): %v", err)
	}
	if a != b {
		t.Error("repeated RunMulti did not memoize in-process")
	}
	if ex := r1.Stats().Executed; ex != 1 {
		t.Errorf("Executed = %d, want 1", ex)
	}

	r2 := newRunner(t, Options{CacheDir: dir})
	c, err := r2.RunMulti(ctx, spec)
	if err != nil {
		t.Fatalf("RunMulti (second process): %v", err)
	}
	if r2.Stats().Executed != 0 {
		t.Error("second runner re-simulated despite a published store entry")
	}
	for i := range a.Cores {
		if a.Cores[i].Cycles != c.Cores[i].Cycles || a.Cores[i].Insts != c.Cores[i].Insts {
			t.Errorf("core %d: disk round-trip disagrees: %d/%d vs %d/%d cycles/insts",
				i, a.Cores[i].Cycles, a.Cores[i].Insts, c.Cores[i].Cycles, c.Cores[i].Insts)
		}
	}
	if a.DRAM.Reads != c.DRAM.Reads || a.LLC.Misses != c.LLC.Misses {
		t.Error("shared-level stats did not survive the disk round-trip")
	}
}

// TestMultiSampledStoreFastPath: the co-scheduled capture is the
// expensive prefix a sampled colocate sweep amortizes, so a second
// process sweeping a different scheduler of the same workload tuple
// must load the persisted MultiSet instead of re-running the
// fast-forward — and the capture's own lifecycle must surface as
// "mckpt" task events so observers can see what a cold run is doing.
func TestMultiSampledStoreFastPath(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s := sim.Sampling{Warm: 15_000, Window: 5_000, Count: 2}
	spec := sim.MultiSpec{Cores: []sim.RunSpec{
		{Workload: "tailchase"},
		{Workload: "streambatch"},
	}, Sampling: &s}

	var mu sync.Mutex
	var kinds []string
	r1 := newRunner(t, Options{CacheDir: dir, OnEvent: func(ev TaskEvent) {
		mu.Lock()
		defer mu.Unlock()
		kinds = append(kinds, ev.Kind+":"+ev.State.String())
	}})
	if _, err := r1.RunMulti(ctx, spec); err != nil {
		t.Fatal(err)
	}
	st := r1.Stats()
	if st.CkptCaptured != 1 || st.CkptDiskHits != 0 {
		t.Errorf("first runner: captured %d / disk hits %d, want 1 / 0", st.CkptCaptured, st.CkptDiskHits)
	}
	mu.Lock()
	var sawRunning, sawDone bool
	for _, k := range kinds {
		sawRunning = sawRunning || k == "mckpt:running"
		sawDone = sawDone || k == "mckpt:done"
	}
	mu.Unlock()
	if !sawRunning || !sawDone {
		t.Errorf("capture lifecycle not observed (events %v)", kinds)
	}

	// A different core-0 scheduler shares the set (the key hashes the
	// workload/input/prefetcher tuple, not the scheduler), so a fresh
	// runner over the same store restores rather than recaptures.
	other := spec
	other.Cores = append([]sim.RunSpec(nil), spec.Cores...)
	other.Cores[0].Sched = sim.SchedRandom
	r2 := newRunner(t, Options{CacheDir: dir})
	if _, err := r2.RunMulti(ctx, other); err != nil {
		t.Fatal(err)
	}
	st2 := r2.Stats()
	if st2.Executed != 1 {
		t.Errorf("second runner executed %d specs, want 1 (new scheduler config)", st2.Executed)
	}
	if st2.CkptCaptured != 0 || st2.CkptDiskHits != 1 {
		t.Errorf("second runner: captured %d / disk hits %d, want 0 / 1 (store fast path)", st2.CkptCaptured, st2.CkptDiskHits)
	}
}
