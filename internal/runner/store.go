package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"crisp/internal/checkpoint"
)

// Store is the persistent result cache shared by every process sweeping
// against one directory: one file per task, named by kind and content
// key. Keys already hash sim.CodeVersion, so a simulator change
// naturally misses every stale entry instead of serving wrong numbers.
// Small results (runs, analyses, footprints) are JSON; checkpoint sets
// use the binary checkpoint codec. All writes are atomic
// (fsync-before-rename), and corrupt entries are deleted on read so the
// next producer recomputes them. A nil-dir Store stores nothing.
type Store struct {
	dir string
}

// Store kinds (file-name prefixes).
const (
	kindRun       = "run"
	kindMulti     = "multi"
	kindAnalysis  = "analysis"
	kindFootprint = "footprint"
	kindCkpt      = "ckpt"
	kindMultiCkpt = "mckpt"
)

// Exported kind names, for external readers of a shared store (crispd
// serves already-published entries straight from disk) and for event
// consumers matching TaskEvent.Kind.
const (
	KindRun       = kindRun
	KindMulti     = kindMulti
	KindAnalysis  = kindAnalysis
	KindFootprint = kindFootprint
	KindCkpt      = kindCkpt
	KindMultiCkpt = kindMultiCkpt
)

// tmpSweepTTL is how old a *.tmp file must be before NewStore removes
// it. writeAtomic deletes its temp file on every error path, so a .tmp
// that outlives this is debris from a crashed process (killed between
// CreateTemp and rename); an hour is far beyond any live write — even a
// checkpoint-set encode finishes in seconds — so sweeping cannot race a
// writer in another process.
const tmpSweepTTL = time.Hour

// NewStore returns a Store rooted at dir, creating it if needed, and
// sweeps temp-file debris left by crashed writers. An empty dir
// disables persistence.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return &Store{}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: create cache dir: %w", err)
	}
	s := &Store{dir: dir}
	s.sweepTmp(time.Now())
	return s, nil
}

// sweepTmp removes stale *.tmp files under the store root. A process
// that crashes between CreateTemp and rename orphans its temp file;
// without a sweep they accumulate forever in a shared store directory.
// Only files older than tmpSweepTTL go, so live writers in other
// processes are untouched, and every error is ignored — the sweep is
// best-effort hygiene, never a reason to fail an open.
func (s *Store) sweepTmp(now time.Time) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".tmp" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if now.Sub(info.ModTime()) > tmpSweepTTL {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
}

// Enabled reports whether the store persists anything.
func (s *Store) Enabled() bool { return s.dir != "" }

func (s *Store) path(kind, key string) string {
	ext := ".json"
	if kind == kindCkpt || kind == kindMultiCkpt {
		ext = ".bin"
	}
	return filepath.Join(s.dir, kind+"-"+key+ext)
}

// Has reports whether an entry exists for (kind, key) without decoding
// it. Shard peers poll it to learn when the owning process has published
// a result; validity is checked by the Get that follows.
func (s *Store) Has(kind, key string) bool {
	if s.dir == "" {
		return false
	}
	_, err := os.Stat(s.path(kind, key))
	return err == nil
}

// Get loads the cached value for (kind, key) into v, reporting whether a
// valid entry existed. Corrupt or unreadable entries count as misses and
// are deleted, so the caller's recompute can overwrite them and later
// readers do not trip over the same damage. Decoding goes through a
// fresh value of v's type: json.Unmarshal populates fields as it parses
// and only then reports an error, so decoding straight into v would let
// a truncated or corrupt entry leave the caller's value half-written
// while Get reports a miss.
func (s *Store) Get(kind, key string, v any) bool {
	if s.dir == "" {
		return false
	}
	b, err := os.ReadFile(s.path(kind, key))
	if err != nil {
		return false
	}
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return false
	}
	fresh := reflect.New(rv.Type().Elem())
	if json.Unmarshal(b, fresh.Interface()) != nil {
		os.Remove(s.path(kind, key)) // delete-and-recompute
		return false
	}
	rv.Elem().Set(fresh.Elem())
	return true
}

// Put persists v under (kind, key). The write is atomic and durable
// (temp file + fsync + rename + directory fsync), so neither an
// interrupted sweep nor a crash right after the rename can leave a torn
// or vanishing entry for another process to read.
func (s *Store) Put(kind, key string, v any) error {
	if s.dir == "" {
		return nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return s.writeAtomic(kind, key, b)
}

// GetCheckpoint loads and decodes the checkpoint set stored under key.
// A corrupt or key-mismatched file is deleted (the next capture rewrites
// it) and reported as a miss.
func (s *Store) GetCheckpoint(key string) (*checkpoint.Set, bool) {
	if s.dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(s.path(kindCkpt, key))
	if err != nil {
		return nil, false
	}
	set, err := checkpoint.DecodeSet(b, key)
	if err != nil {
		os.Remove(s.path(kindCkpt, key)) // delete-and-recompute
		return nil, false
	}
	return set, true
}

// PutCheckpoint persists a captured checkpoint set under key with the
// same atomic, durable discipline as Put.
func (s *Store) PutCheckpoint(key string, set *checkpoint.Set) error {
	if s.dir == "" {
		return nil
	}
	return s.writeAtomic(kindCkpt, key, checkpoint.EncodeSet(set, key))
}

// GetMultiCheckpoint loads and decodes the co-scheduled multi-core
// checkpoint set stored under key, with GetCheckpoint's
// delete-and-recompute discipline for corrupt or mismatched files.
func (s *Store) GetMultiCheckpoint(key string) (*checkpoint.MultiSet, bool) {
	if s.dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(s.path(kindMultiCkpt, key))
	if err != nil {
		return nil, false
	}
	set, err := checkpoint.DecodeMultiSet(b, key)
	if err != nil {
		os.Remove(s.path(kindMultiCkpt, key)) // delete-and-recompute
		return nil, false
	}
	return set, true
}

// PutMultiCheckpoint persists a captured multi-core checkpoint set under
// key with the same atomic, durable discipline as Put.
func (s *Store) PutMultiCheckpoint(key string, set *checkpoint.MultiSet) error {
	if s.dir == "" {
		return nil
	}
	return s.writeAtomic(kindMultiCkpt, key, checkpoint.EncodeMultiSet(set, key))
}

// writeAtomic writes data to (kind, key) via a temp file, fsyncing the
// file before the rename and the directory after it.
func (s *Store) writeAtomic(kind, key string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, kind+"-*.tmp")
	if err != nil {
		return err
	}
	cleanup := func() { tmp.Close(); os.Remove(tmp.Name()) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	// fsync before rename: otherwise a crash can leave the renamed file
	// present but empty or truncated — exactly the torn entry the atomic
	// rename is supposed to prevent.
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.path(kind, key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// fsync the directory so the rename itself survives a crash; other
	// processes polling Has must not observe the entry and then lose it.
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
