package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
)

// Store is the persistent result cache: one JSON file per task, named by
// kind and content key. Keys already hash sim.CodeVersion, so a
// simulator change naturally misses every stale entry instead of serving
// wrong numbers. A nil-dir Store stores nothing.
type Store struct {
	dir string
}

// Store kinds (file-name prefixes).
const (
	kindRun       = "run"
	kindAnalysis  = "analysis"
	kindFootprint = "footprint"
)

// NewStore returns a Store rooted at dir, creating it if needed. An
// empty dir disables persistence.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return &Store{}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: create cache dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Enabled reports whether the store persists anything.
func (s *Store) Enabled() bool { return s.dir != "" }

func (s *Store) path(kind, key string) string {
	return filepath.Join(s.dir, kind+"-"+key+".json")
}

// Get loads the cached value for (kind, key) into v, reporting whether a
// valid entry existed. Corrupt or unreadable entries count as misses.
// Decoding goes through a fresh value of v's type: json.Unmarshal
// populates fields as it parses and only then reports an error, so
// decoding straight into v would let a truncated or corrupt entry leave
// the caller's value half-written while Get reports a miss.
func (s *Store) Get(kind, key string, v any) bool {
	if s.dir == "" {
		return false
	}
	b, err := os.ReadFile(s.path(kind, key))
	if err != nil {
		return false
	}
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return false
	}
	fresh := reflect.New(rv.Type().Elem())
	if json.Unmarshal(b, fresh.Interface()) != nil {
		return false
	}
	rv.Elem().Set(fresh.Elem())
	return true
}

// Put persists v under (kind, key). The write is atomic (temp file +
// rename) so an interrupted sweep never leaves a torn entry behind.
func (s *Store) Put(kind, key string, v any) error {
	if s.dir == "" {
		return nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, kind+"-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), s.path(kind, key))
}
