package runner

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseShard parses an "i/n" shard assignment as accepted by the -shard
// flags: index i in [0, n) of n cooperating processes. It rejects the
// malformed inputs that would otherwise silently skew a sweep — a zero
// or negative shard count, an index outside [0, n), non-numeric pieces,
// and trailing garbage (strconv.Atoi accepts no suffix, so "0/2x" and
// "1.0/2" both fail here rather than half-parse).
func ParseShard(s string) (index, count int, err error) {
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("bad -shard %q: want i/n, e.g. 0/4", s)
	}
	index, ierr := strconv.Atoi(strings.TrimSpace(is))
	count, nerr := strconv.Atoi(strings.TrimSpace(ns))
	if ierr != nil || nerr != nil {
		return 0, 0, fmt.Errorf("bad -shard %q: want i/n with integer i and n, e.g. 0/4", s)
	}
	if count < 1 {
		return 0, 0, fmt.Errorf("bad -shard %q: shard count must be >= 1", s)
	}
	if index < 0 || index >= count {
		return 0, 0, fmt.Errorf("bad -shard %q: index must be in [0, %d)", s, count)
	}
	return index, count, nil
}
