package prefetch

// BOP implements best-offset prefetching (Michaud, HPCA 2016), the default
// data prefetcher of the paper's simulated system. BOP learns the single
// line offset D that best predicts future accesses: for each access to
// line X it tests whether X-D was recently accessed (recorded in the
// recent-requests table); offsets accumulate scores over a learning round,
// and the best-scoring offset becomes the active prefetch offset.
type BOP struct {
	rr      []uint64 // recent-requests table of line addresses (direct mapped)
	rrMask  uint64
	offsets []int64
	scores  []int
	testIdx int
	round   int

	active int64 // current best offset in lines (0 = prefetch off)

	// Tunables (defaults per the BOP paper).
	ScoreMax int // stop a round early when a score reaches this
	RoundMax int // number of test iterations per learning round
	BadScore int // below this the prefetcher turns off

	out [1]uint64
}

// bopOffsets is the candidate offset list: positive and negative line
// offsets with small prime factors, per the BOP design.
var bopOffsets = []int64{
	1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25, 27, 30, 32,
	-1, -2, -3, -4, -6, -8,
}

// NewBOP returns a best-offset prefetcher with a 256-entry recent-requests
// table.
func NewBOP() *BOP {
	b := &BOP{
		rr:       make([]uint64, 256),
		rrMask:   255,
		offsets:  bopOffsets,
		scores:   make([]int, len(bopOffsets)),
		active:   1,
		ScoreMax: 31,
		RoundMax: 100,
		BadScore: 1,
	}
	return b
}

func (b *BOP) clone() *BOP {
	c := *b
	c.rr = append([]uint64(nil), b.rr...)
	c.scores = append([]int(nil), b.scores...)
	return &c
}

func (b *BOP) rrInsert(line uint64) { b.rr[line&b.rrMask] = line }

func (b *BOP) rrHit(line uint64) bool { return b.rr[line&b.rrMask] == line }

// OnAccess implements the prefetcher interface. Training uses misses and
// prefetched-line first-hits; per the paper, the recent-requests table
// records the base address of completed fills (approximated here by
// recording X for every miss).
func (b *BOP) OnAccess(_, addr uint64, hit bool) []uint64 {
	line := addr / lineSize

	if !hit {
		b.train(line)
		b.rrInsert(line)
	}

	if b.active == 0 {
		return nil
	}
	target := int64(line) + b.active
	if target < 0 {
		return nil
	}
	b.out[0] = uint64(target) * lineSize
	return b.out[:]
}

func (b *BOP) train(line uint64) {
	off := b.offsets[b.testIdx]
	prev := int64(line) - off
	if prev >= 0 && b.rrHit(uint64(prev)) {
		b.scores[b.testIdx]++
		if b.scores[b.testIdx] >= b.ScoreMax {
			b.endRound()
			return
		}
	}
	b.testIdx++
	if b.testIdx == len(b.offsets) {
		b.testIdx = 0
		b.round++
		if b.round >= b.RoundMax {
			b.endRound()
		}
	}
}

func (b *BOP) endRound() {
	best, bestScore := int64(0), -1
	for i, s := range b.scores {
		if s > bestScore {
			best, bestScore = b.offsets[i], s
		}
	}
	if bestScore <= b.BadScore {
		b.active = 0 // pattern too irregular: disable prefetching
	} else {
		b.active = best
	}
	for i := range b.scores {
		b.scores[i] = 0
	}
	b.testIdx = 0
	b.round = 0
}

// ActiveOffset returns the currently selected offset in lines (0 when
// prefetching is disabled), exposed for tests and diagnostics.
func (b *BOP) ActiveOffset() int64 { return b.active }

// GHB implements a global-history-buffer delta-correlation prefetcher
// (Nesbit & Smith, G/DC): a FIFO of recent miss addresses per PC is used
// to find the last occurrence of the current delta pair and replay the
// deltas that followed it.
type GHB struct {
	buf   []ghbEntry
	head  int
	size  int
	index map[uint64]int // pc -> most recent buffer position
	Depth int            // deltas to replay per prediction

	deltas []int64
	out    []uint64
}

type ghbEntry struct {
	addr uint64
	prev int // previous entry for the same PC, -1 if none
	id   int // monotonically increasing; detects overwritten links
}

// NewGHB returns a GHB prefetcher with the given buffer size.
func NewGHB(size int) *GHB {
	g := &GHB{buf: make([]ghbEntry, size), size: size, index: make(map[uint64]int), Depth: 2}
	for i := range g.buf {
		g.buf[i].prev = -1
		g.buf[i].id = -1
	}
	return g
}

func (g *GHB) clone() *GHB {
	c := &GHB{
		buf:   append([]ghbEntry(nil), g.buf...),
		head:  g.head,
		size:  g.size,
		index: make(map[uint64]int, len(g.index)),
		Depth: g.Depth,
	}
	for k, v := range g.index {
		c.index[k] = v
	}
	return c
}

// OnAccess implements the prefetcher interface: it trains on misses only.
func (g *GHB) OnAccess(pc, addr uint64, hit bool) []uint64 {
	if hit {
		return nil
	}
	line := addr / lineSize

	// Link the new entry into the per-PC chain.
	prev, havePrev := g.index[pc]
	id := g.head
	e := ghbEntry{addr: line, prev: -1, id: id}
	if havePrev && g.buf[prev%g.size].id == prev {
		e.prev = prev
	}
	g.buf[id%g.size] = e
	g.index[pc] = id
	g.head++

	// Walk the chain to collect recent per-PC deltas (newest first).
	deltas := g.deltas[:0]
	cur := id
	for len(deltas) < 8 {
		ce := g.buf[cur%g.size]
		if ce.id != cur || ce.prev < 0 {
			break
		}
		pe := g.buf[ce.prev%g.size]
		if pe.id != ce.prev {
			break
		}
		deltas = append(deltas, int64(ce.addr)-int64(pe.addr))
		cur = ce.prev
	}
	g.deltas = deltas
	if len(deltas) < 3 {
		return nil
	}
	// Delta correlation: find the most recent earlier occurrence of the
	// pair (deltas[1], deltas[0]) and replay what followed.
	d1, d0 := deltas[1], deltas[0]
	for i := 2; i+1 < len(deltas); i++ {
		if deltas[i] == d0 && deltas[i+1] == d1 {
			// deltas[i-1], deltas[i-2], ... followed the pair historically.
			out := g.out[:0]
			next := int64(line)
			for j := i - 1; j >= 0 && len(out) < g.Depth; j-- {
				next += deltas[j]
				if next >= 0 {
					out = append(out, uint64(next)*lineSize)
				}
			}
			g.out = out
			return out
		}
	}
	return nil
}
