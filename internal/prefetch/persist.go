package prefetch

import (
	"fmt"
	"sort"

	"crisp/internal/codec"
)

// This file serializes warmed prefetcher training state for the
// persistent checkpoint store. Encoding is type-tagged (mirroring
// Clone's type switch) and map-backed tables are written in sorted key
// order, so encoding the same state twice produces identical bytes —
// the store's round-trip and determinism tests rely on that.

// Type tags in the encoded form. Order is part of the format; new kinds
// append.
const (
	tagNil = iota
	tagNextLine
	tagStride
	tagStream
	tagBOP
	tagGHB
	tagComposite
)

// maxEntries bounds decoded table sizes so a corrupt length prefix
// cannot drive a huge allocation before truncation is detected.
const maxEntries = 1 << 24

// Encode serializes p (nil allowed: the no-prefetcher configuration).
func Encode(w *codec.Writer, p Prefetcher) {
	switch p := p.(type) {
	case nil:
		w.U8(tagNil)
	case *NextLine:
		w.U8(tagNextLine)
		w.Int(p.Degree)
	case *Stride:
		w.U8(tagStride)
		w.Int(p.cap)
		w.Int(p.Distance)
		keys := make([]uint64, 0, len(p.table))
		for k := range p.table {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		w.U32(uint32(len(keys)))
		for _, k := range keys {
			e := p.table[k]
			w.U64(k)
			w.U64(e.lastAddr)
			w.I64(e.stride)
			w.I8(e.conf)
		}
	case *Stream:
		w.U8(tagStream)
		w.Int(p.cap)
		w.Int(p.Degree)
		keys := make([]uint64, 0, len(p.regions))
		for k := range p.regions {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		w.U32(uint32(len(keys)))
		for _, k := range keys {
			e := p.regions[k]
			w.U64(k)
			w.I64(e.lastLine)
			w.I64(e.dir)
			w.I8(e.count)
		}
	case *BOP:
		w.U8(tagBOP)
		w.U32(uint32(len(p.rr)))
		for _, v := range p.rr {
			w.U64(v)
		}
		w.U64(p.rrMask)
		w.U32(uint32(len(p.offsets)))
		for _, o := range p.offsets {
			w.I64(o)
		}
		for _, s := range p.scores {
			w.Int(s)
		}
		w.Int(p.testIdx)
		w.Int(p.round)
		w.I64(p.active)
		w.Int(p.ScoreMax)
		w.Int(p.RoundMax)
		w.Int(p.BadScore)
	case *GHB:
		w.U8(tagGHB)
		w.Int(p.size)
		w.Int(p.head)
		w.Int(p.Depth)
		w.U32(uint32(len(p.buf)))
		for _, e := range p.buf {
			w.U64(e.addr)
			w.Int(e.prev)
			w.Int(e.id)
		}
		keys := make([]uint64, 0, len(p.index))
		for k := range p.index {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		w.U32(uint32(len(keys)))
		for _, k := range keys {
			w.U64(k)
			w.Int(p.index[k])
		}
	case *Composite:
		w.U8(tagComposite)
		w.U32(uint32(len(p.Parts)))
		for _, part := range p.Parts {
			Encode(w, part)
		}
	default:
		panic("prefetch: Encode: unknown prefetcher type")
	}
}

// Decode reconstructs a prefetcher encoded by Encode. A tagNil encoding
// decodes to (nil, nil).
func Decode(r *codec.Reader) (Prefetcher, error) {
	tag := r.U8()
	if r.Err() != nil {
		return nil, r.Err()
	}
	switch tag {
	case tagNil:
		return nil, nil
	case tagNextLine:
		return &NextLine{Degree: r.Int()}, r.Err()
	case tagStride:
		p := &Stride{cap: r.Int(), Distance: r.Int()}
		n := int(r.U32())
		if n < 0 || n > maxEntries {
			return nil, fmt.Errorf("prefetch: stride table size %d out of range", n)
		}
		p.table = make(map[uint64]*strideEntry, n)
		for i := 0; i < n; i++ {
			k := r.U64()
			p.table[k] = &strideEntry{lastAddr: r.U64(), stride: r.I64(), conf: r.I8()}
		}
		return p, r.Err()
	case tagStream:
		p := &Stream{cap: r.Int(), Degree: r.Int()}
		n := int(r.U32())
		if n < 0 || n > maxEntries {
			return nil, fmt.Errorf("prefetch: stream table size %d out of range", n)
		}
		p.regions = make(map[uint64]*streamEntry, n)
		for i := 0; i < n; i++ {
			k := r.U64()
			p.regions[k] = &streamEntry{lastLine: r.I64(), dir: r.I64(), count: r.I8()}
		}
		return p, r.Err()
	case tagBOP:
		p := &BOP{}
		n := int(r.U32())
		if n <= 0 || n > maxEntries {
			return nil, fmt.Errorf("prefetch: BOP rr table size %d out of range", n)
		}
		p.rr = make([]uint64, n)
		for i := range p.rr {
			p.rr[i] = r.U64()
		}
		p.rrMask = r.U64()
		if p.rrMask != uint64(n-1) {
			return nil, fmt.Errorf("prefetch: BOP rr mask %d does not match %d entries", p.rrMask, n)
		}
		no := int(r.U32())
		if no <= 0 || no > maxEntries {
			return nil, fmt.Errorf("prefetch: BOP offset count %d out of range", no)
		}
		p.offsets = make([]int64, no)
		for i := range p.offsets {
			p.offsets[i] = r.I64()
		}
		p.scores = make([]int, no)
		for i := range p.scores {
			p.scores[i] = r.Int()
		}
		p.testIdx = r.Int()
		p.round = r.Int()
		p.active = r.I64()
		p.ScoreMax = r.Int()
		p.RoundMax = r.Int()
		p.BadScore = r.Int()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if p.testIdx < 0 || p.testIdx >= no {
			return nil, fmt.Errorf("prefetch: BOP test index %d out of range (%d offsets)", p.testIdx, no)
		}
		return p, nil
	case tagGHB:
		p := &GHB{size: r.Int(), head: r.Int(), Depth: r.Int()}
		n := int(r.U32())
		if n <= 0 || n > maxEntries || n != p.size {
			return nil, fmt.Errorf("prefetch: GHB buffer size %d does not match geometry %d", n, p.size)
		}
		if p.head < 0 {
			return nil, fmt.Errorf("prefetch: GHB head %d out of range", p.head)
		}
		p.buf = make([]ghbEntry, n)
		for i := range p.buf {
			p.buf[i] = ghbEntry{addr: r.U64(), prev: r.Int(), id: r.Int()}
		}
		ni := int(r.U32())
		if ni < 0 || ni > maxEntries {
			return nil, fmt.Errorf("prefetch: GHB index size %d out of range", ni)
		}
		p.index = make(map[uint64]int, ni)
		for i := 0; i < ni; i++ {
			k := r.U64()
			p.index[k] = r.Int()
		}
		return p, r.Err()
	case tagComposite:
		n := int(r.U32())
		if n < 0 || n > 64 {
			return nil, fmt.Errorf("prefetch: composite part count %d out of range", n)
		}
		c := &Composite{Parts: make([]Prefetcher, 0, n)}
		for i := 0; i < n; i++ {
			part, err := Decode(r)
			if err != nil {
				return nil, err
			}
			if part == nil {
				return nil, fmt.Errorf("prefetch: nil part inside composite")
			}
			c.Parts = append(c.Parts, part)
		}
		return c, r.Err()
	default:
		return nil, fmt.Errorf("prefetch: unknown prefetcher tag %d", tag)
	}
}
