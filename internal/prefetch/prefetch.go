// Package prefetch implements the hardware data prefetchers of the
// evaluation platform. Table 1 enables BOP (best-offset prefetching,
// Michaud 2016) plus a stream prefetcher; the paper also reports trying
// stride and GHB prefetchers as baselines. All implement the structural
// interface expected by the cache package: OnAccess(pc, addr, hit) ->
// prefetch addresses. To keep the per-access hot path allocation-free,
// every prefetcher reuses an internal scratch buffer for its suggestions:
// the returned slice is valid only until the next OnAccess call on the
// same prefetcher, and callers must consume (or copy) it before then.
//
// CRISP's premise is that these prefetchers cover regular (stride and
// periodic) patterns but cannot cover irregular ones like pointer chasing;
// the workloads exercise both classes.
package prefetch

const lineSize = 64

// Prefetcher is the common interface of every prefetcher in this package,
// structurally identical to the one the cache package expects.
type Prefetcher interface {
	OnAccess(pc, addr uint64, hit bool) []uint64
}

// Clone deep-copies a prefetcher's training state so the copy can be
// attached to a different cache without sharing mutable state. Sampled
// simulation warms one prefetcher per kind during checkpoint capture and
// hands each detailed window a clone.
func Clone(p Prefetcher) Prefetcher {
	switch p := p.(type) {
	case *NextLine:
		return &NextLine{Degree: p.Degree}
	case *Stride:
		return p.clone()
	case *Stream:
		return p.clone()
	case *BOP:
		return p.clone()
	case *GHB:
		return p.clone()
	case *Composite:
		parts := make([]Prefetcher, len(p.Parts))
		for i, part := range p.Parts {
			parts[i] = Clone(part)
		}
		return &Composite{Parts: parts}
	default:
		panic("prefetch: Clone: unknown prefetcher type")
	}
}

// NextLine prefetches the next sequential line on every access.
type NextLine struct {
	Degree int

	out []uint64
}

// OnAccess implements the prefetcher interface.
func (p *NextLine) OnAccess(_, addr uint64, _ bool) []uint64 {
	deg := p.Degree
	if deg <= 0 {
		deg = 1
	}
	p.out = p.out[:0]
	line := addr &^ (lineSize - 1)
	for i := 0; i < deg; i++ {
		p.out = append(p.out, line+uint64(i+1)*lineSize)
	}
	return p.out
}

// Stride is a PC-indexed stride prefetcher with confidence counters.
type Stride struct {
	table map[uint64]*strideEntry
	cap   int
	// Distance is how many strides ahead to prefetch (default 4).
	Distance int

	out [1]uint64
}

type strideEntry struct {
	lastAddr uint64
	stride   int64
	conf     int8
}

// NewStride returns a stride prefetcher with the given table capacity.
func NewStride(capacity int) *Stride {
	return &Stride{table: make(map[uint64]*strideEntry), cap: capacity, Distance: 4}
}

func (p *Stride) clone() *Stride {
	c := &Stride{table: make(map[uint64]*strideEntry, len(p.table)), cap: p.cap, Distance: p.Distance}
	for k, e := range p.table {
		cp := *e
		c.table[k] = &cp
	}
	return c
}

// OnAccess implements the prefetcher interface.
func (p *Stride) OnAccess(pc, addr uint64, _ bool) []uint64 {
	e := p.table[pc]
	if e == nil {
		if len(p.table) >= p.cap {
			// Cheap random-ish eviction: drop one arbitrary entry.
			for k := range p.table {
				delete(p.table, k)
				break
			}
		}
		p.table[pc] = &strideEntry{lastAddr: addr}
		return nil
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.conf--
		if e.conf <= 0 {
			e.stride = stride
			e.conf = 1
		}
	}
	e.lastAddr = addr
	if e.conf >= 2 && e.stride != 0 {
		p.out[0] = uint64(int64(addr) + e.stride*int64(p.Distance))
		return p.out[:]
	}
	return nil
}

// Stream detects ascending or descending line streams within aligned 4 KiB
// regions and prefetches ahead of the stream with a configurable degree.
type Stream struct {
	regions map[uint64]*streamEntry
	cap     int
	Degree  int

	out []uint64
}

type streamEntry struct {
	lastLine int64
	dir      int64 // +1, -1, or 0 (untrained)
	count    int8
}

// NewStream returns a stream prefetcher tracking up to capacity regions.
func NewStream(capacity int) *Stream {
	return &Stream{regions: make(map[uint64]*streamEntry), cap: capacity, Degree: 2}
}

func (p *Stream) clone() *Stream {
	c := &Stream{regions: make(map[uint64]*streamEntry, len(p.regions)), cap: p.cap, Degree: p.Degree}
	for k, e := range p.regions {
		cp := *e
		c.regions[k] = &cp
	}
	return c
}

// OnAccess implements the prefetcher interface.
func (p *Stream) OnAccess(_, addr uint64, _ bool) []uint64 {
	region := addr >> 12
	line := int64(addr / lineSize)
	e := p.regions[region]
	if e == nil {
		if len(p.regions) >= p.cap {
			for k := range p.regions {
				delete(p.regions, k)
				break
			}
		}
		p.regions[region] = &streamEntry{lastLine: line}
		return nil
	}
	delta := line - e.lastLine
	e.lastLine = line
	var dir int64
	switch {
	case delta > 0 && delta <= 4:
		dir = 1
	case delta < 0 && delta >= -4:
		dir = -1
	default:
		e.count = 0
		e.dir = 0
		return nil
	}
	if dir == e.dir {
		if e.count < 4 {
			e.count++
		}
	} else {
		e.dir = dir
		e.count = 1
	}
	if e.count < 2 {
		return nil
	}
	p.out = p.out[:0]
	for i := 1; i <= p.Degree; i++ {
		next := line + dir*int64(i)
		if next >= 0 {
			p.out = append(p.out, uint64(next)*lineSize)
		}
	}
	return p.out
}

// Composite chains prefetchers, concatenating their suggestions (Table 1
// enables "BOP and Stream").
type Composite struct {
	Parts []Prefetcher

	out []uint64
}

// OnAccess implements the prefetcher interface.
func (c *Composite) OnAccess(pc, addr uint64, hit bool) []uint64 {
	c.out = c.out[:0]
	for _, p := range c.Parts {
		c.out = append(c.out, p.OnAccess(pc, addr, hit)...)
	}
	return c.out
}
