package prefetch

import (
	"math/rand"
	"testing"
)

func TestNextLine(t *testing.T) {
	p := &NextLine{}
	got := p.OnAccess(0, 0x1008, false)
	if len(got) != 1 || got[0] != 0x1040 {
		t.Errorf("next-line = %#x", got)
	}
	p.Degree = 3
	got = p.OnAccess(0, 0x1000, false)
	if len(got) != 3 || got[2] != 0x10c0 {
		t.Errorf("degree-3 = %#x", got)
	}
}

func TestStrideLearnsConstantStride(t *testing.T) {
	p := NewStride(64)
	var got []uint64
	for i := 0; i < 10; i++ {
		got = p.OnAccess(0x40, uint64(0x1000+i*256), false)
	}
	want := uint64(0x1000 + 9*256 + 4*256)
	if len(got) != 1 || got[0] != want {
		t.Errorf("stride prediction = %#x, want %#x", got, want)
	}
}

func TestStrideIgnoresRandom(t *testing.T) {
	p := NewStride(64)
	r := rand.New(rand.NewSource(1))
	fired := 0
	for i := 0; i < 200; i++ {
		if len(p.OnAccess(0x40, uint64(r.Intn(1<<30)), false)) > 0 {
			fired++
		}
	}
	if fired > 20 {
		t.Errorf("stride fired %d times on random accesses", fired)
	}
}

func TestStridePerPC(t *testing.T) {
	p := NewStride(64)
	// Interleave two PCs with different strides; both must train.
	// OnAccess reuses its scratch buffer, so snapshot each prediction
	// before the next call.
	var gotA, gotB []uint64
	for i := 0; i < 10; i++ {
		gotA = append(gotA[:0], p.OnAccess(0x10, uint64(0x10000+i*64), false)...)
		gotB = append(gotB[:0], p.OnAccess(0x20, uint64(0x80000+i*4096), false)...)
	}
	if len(gotA) != 1 || gotA[0] != uint64(0x10000+9*64+4*64) {
		t.Errorf("pc A prediction = %#x", gotA)
	}
	if len(gotB) != 1 || gotB[0] != uint64(0x80000+9*4096+4*4096) {
		t.Errorf("pc B prediction = %#x", gotB)
	}
}

func TestStreamDetectsAscending(t *testing.T) {
	p := NewStream(16)
	var got []uint64
	for i := 0; i < 6; i++ {
		got = p.OnAccess(0, uint64(0x3000+i*64), false)
	}
	if len(got) == 0 {
		t.Fatalf("stream did not fire on ascending accesses")
	}
	if got[0] != uint64(0x3000+5*64+64) {
		t.Errorf("stream prediction = %#x", got)
	}
}

func TestStreamDetectsDescending(t *testing.T) {
	p := NewStream(16)
	var got []uint64
	for i := 0; i < 6; i++ {
		got = p.OnAccess(0, uint64(0x30000-i*64), false)
	}
	if len(got) == 0 {
		t.Fatalf("stream did not fire on descending accesses")
	}
	if got[0] != uint64(0x30000-5*64-64) {
		t.Errorf("stream prediction = %#x", got)
	}
}

func TestStreamResetsOnJump(t *testing.T) {
	p := NewStream(16)
	for i := 0; i < 6; i++ {
		p.OnAccess(0, uint64(0x3000+i*64), false)
	}
	if got := p.OnAccess(0, 0x3c00, false); len(got) != 0 {
		t.Errorf("stream fired immediately after a 3KB jump: %#x", got)
	}
}

func TestBOPLearnsOffset(t *testing.T) {
	b := NewBOP()
	// Access pattern with constant offset 4 lines; all misses.
	addr := uint64(0x100000)
	for i := 0; i < 4000; i++ {
		b.OnAccess(0, addr, false)
		addr += 4 * 64
	}
	if got := b.ActiveOffset(); got != 4 {
		t.Errorf("BOP active offset = %d, want 4", got)
	}
	out := b.OnAccess(0, addr, false)
	if len(out) != 1 || out[0] != (addr/64+4)*64 {
		t.Errorf("BOP prefetch = %#x", out)
	}
}

func TestBOPDisablesOnRandom(t *testing.T) {
	b := NewBOP()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		b.OnAccess(0, uint64(r.Int63n(1<<40))&^63, false)
	}
	if got := b.ActiveOffset(); got != 0 {
		t.Errorf("BOP offset on random stream = %d, want 0 (off)", got)
	}
}

func TestGHBReplaysDeltaPattern(t *testing.T) {
	g := NewGHB(256)
	// Repeating delta pattern +1, +2, +5 lines (period 3), all misses.
	deltas := []int64{1, 2, 5}
	line := int64(1000)
	var got []uint64
	for i := 0; i < 30; i++ {
		got = g.OnAccess(0x40, uint64(line)*64, false)
		line += deltas[i%3]
	}
	if len(got) == 0 {
		t.Fatalf("GHB never predicted on periodic deltas")
	}
}

func TestGHBQuietOnHits(t *testing.T) {
	g := NewGHB(64)
	if out := g.OnAccess(0x40, 0x1000, true); out != nil {
		t.Errorf("GHB predicted on a hit: %v", out)
	}
}

func TestComposite(t *testing.T) {
	c := &Composite{}
	c.Parts = append(c.Parts, &NextLine{}, &NextLine{Degree: 2})
	got := c.OnAccess(0, 0x1000, false)
	if len(got) != 3 {
		t.Errorf("composite returned %d addrs, want 3", len(got))
	}
}
