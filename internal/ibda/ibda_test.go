package ibda

import "testing"

func TestDLTTracksFrequentMissers(t *testing.T) {
	ib := New(Config{ISTEntries: 64, ISTWays: 4, DLTEntries: 2})
	for i := 0; i < 10; i++ {
		ib.OnLLCMiss(100)
	}
	for i := 0; i < 5; i++ {
		ib.OnLLCMiss(200)
	}
	if !ib.inDLT(100) || !ib.inDLT(200) {
		t.Fatalf("frequent missers not tracked")
	}
	// A one-off miss cannot displace established entries with count > 1.
	ib.OnLLCMiss(300)
	if ib.inDLT(300) {
		t.Errorf("cold miss displaced hot DLT entry")
	}
}

func TestMarkingAndSliceGrowth(t *testing.T) {
	ib := New(DefaultConfig())
	ib.OnLLCMiss(50)
	// First dispatch of the delinquent load: critical; its producers join
	// the IST.
	if !ib.MarkDispatch(50, true, []int{40, 41}) {
		t.Fatalf("delinquent load not marked")
	}
	if ib.ISTSize() != 2 {
		t.Fatalf("IST size = %d, want 2", ib.ISTSize())
	}
	// Second level: producer 40 is now critical; its producer 30 joins.
	if !ib.MarkDispatch(40, false, []int{30}) {
		t.Fatalf("first-level producer not marked")
	}
	if !ib.MarkDispatch(30, false, nil) {
		t.Errorf("second-level producer not marked after iteration")
	}
	// Unrelated instruction stays non-critical.
	if ib.MarkDispatch(99, false, []int{98}) {
		t.Errorf("unrelated µop marked")
	}
	if ib.MarkDispatch(98, false, nil) {
		t.Errorf("producer of non-critical µop entered IST")
	}
}

func TestNonDelinquentLoadNotMarked(t *testing.T) {
	ib := New(DefaultConfig())
	if ib.MarkDispatch(10, true, []int{5}) {
		t.Errorf("load with no LLC misses marked critical")
	}
}

func TestISTCapacityBounds(t *testing.T) {
	ib := New(Config{ISTEntries: 8, ISTWays: 2, DLTEntries: 32})
	ib.OnLLCMiss(1000)
	// Push many producers through: IST can hold at most 8.
	for i := 0; i < 100; i++ {
		ib.MarkDispatch(1000, true, []int{i})
	}
	if ib.ISTSize() > 8 {
		t.Errorf("IST grew to %d entries, cap 8", ib.ISTSize())
	}
}

func TestInfiniteIST(t *testing.T) {
	ib := New(Config{ISTEntries: 0, DLTEntries: 32})
	ib.OnLLCMiss(1000)
	for i := 0; i < 5000; i++ {
		ib.MarkDispatch(1000, true, []int{i})
	}
	if ib.ISTSize() != 5000 {
		t.Errorf("infinite IST size = %d, want 5000", ib.ISTSize())
	}
	if !ib.MarkDispatch(4999, false, nil) {
		t.Errorf("infinite IST lost an entry")
	}
}

func TestDLTCapacity(t *testing.T) {
	ib := New(Config{ISTEntries: 64, ISTWays: 4, DLTEntries: 4})
	for pc := 0; pc < 10; pc++ {
		for i := 0; i <= pc; i++ {
			ib.OnLLCMiss(pc)
		}
	}
	if ib.DLTSize() > 4 {
		t.Errorf("DLT size = %d, cap 4", ib.DLTSize())
	}
	// The hottest load must have survived.
	if !ib.inDLT(9) {
		t.Errorf("hottest load evicted from DLT")
	}
}
