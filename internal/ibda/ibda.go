// Package ibda implements the hardware-only baseline the paper compares
// against (Section 5.2): iterative backwards dependency analysis as in the
// load-slice architecture (Carlson et al., ISCA 2015). A delinquent load
// table (DLT) captures the load PCs missing the LLC most frequently; an
// instruction slice table (IST) accumulates the PCs of their
// address-generating producers, one dependency level per encounter.
//
// IBDA's structural shortcomings versus CRISP emerge from this design
// rather than being hard-coded:
//   - it observes dependencies through registers only (the rename-time
//     producer PCs), so slices through memory are invisible;
//   - it has no notion of critical-path filtering, so whole slices are
//     tagged, flooding the PRIO vector for slice-heavy applications;
//   - IST capacity bounds how much slice it can remember;
//   - the DLT selects by LLC miss frequency alone, so high-MLP loads that
//     are not latency-critical are still tagged.
package ibda

type assocTable struct {
	sets    int
	ways    int
	keys    []int
	valid   []bool
	lru     []uint32
	clock   uint32
	entries map[int]struct{} // used when infinite
}

func newAssocTable(entries, ways int) *assocTable {
	if entries <= 0 {
		return &assocTable{entries: make(map[int]struct{})}
	}
	sets := entries / ways
	if sets < 1 {
		sets = 1
	}
	return &assocTable{
		sets: sets, ways: ways,
		keys:  make([]int, sets*ways),
		valid: make([]bool, sets*ways),
		lru:   make([]uint32, sets*ways),
	}
}

func (t *assocTable) contains(pc int) bool {
	if t.entries != nil {
		_, ok := t.entries[pc]
		return ok
	}
	base := (pc % t.sets) * t.ways
	for w := 0; w < t.ways; w++ {
		if t.valid[base+w] && t.keys[base+w] == pc {
			t.clock++
			t.lru[base+w] = t.clock
			return true
		}
	}
	return false
}

func (t *assocTable) insert(pc int) {
	if t.entries != nil {
		t.entries[pc] = struct{}{}
		return
	}
	base := (pc % t.sets) * t.ways
	victim := 0
	for w := 0; w < t.ways; w++ {
		if !t.valid[base+w] || t.keys[base+w] == pc {
			victim = w
			break
		}
		if t.lru[base+w] < t.lru[base+victim] {
			victim = w
		}
	}
	t.clock++
	t.keys[base+victim] = pc
	t.valid[base+victim] = true
	t.lru[base+victim] = t.clock
}

func (t *assocTable) size() int {
	if t.entries != nil {
		return len(t.entries)
	}
	n := 0
	for _, v := range t.valid {
		if v {
			n++
		}
	}
	return n
}

// dltEntry tracks one delinquent load candidate.
type dltEntry struct {
	pc    int
	count uint64
}

// IBDA is the runtime criticality marker. It implements the core package's
// Marker interface structurally.
type IBDA struct {
	ist     *assocTable
	dlt     []dltEntry // bounded by dltSize
	dltSize int

	// Stats.
	Marked     uint64 // µops tagged critical at dispatch
	ISTInserts uint64
}

// Config sizes the hardware structures.
type Config struct {
	ISTEntries int // <= 0 means unbounded ("infinite IST")
	ISTWays    int
	DLTEntries int
}

// DefaultConfig returns the paper's primary IBDA configuration: a 1024-entry
// 4-way IST and a 32-entry delinquent load table.
func DefaultConfig() Config { return Config{ISTEntries: 1024, ISTWays: 4, DLTEntries: 32} }

// New returns an IBDA engine.
func New(cfg Config) *IBDA {
	if cfg.DLTEntries == 0 {
		cfg.DLTEntries = 32
	}
	if cfg.ISTWays == 0 {
		cfg.ISTWays = 4
	}
	return &IBDA{ist: newAssocTable(cfg.ISTEntries, cfg.ISTWays), dltSize: cfg.DLTEntries}
}

// OnLLCMiss records an LLC demand miss by the load at pc, maintaining the
// most-frequently-missing set (smallest-count replacement when full).
func (ib *IBDA) OnLLCMiss(pc int) {
	for i := range ib.dlt {
		if ib.dlt[i].pc == pc {
			ib.dlt[i].count++
			return
		}
	}
	if len(ib.dlt) < ib.dltSize {
		ib.dlt = append(ib.dlt, dltEntry{pc: pc, count: 1})
		return
	}
	min := 0
	for i := range ib.dlt {
		if ib.dlt[i].count < ib.dlt[min].count {
			min = i
		}
	}
	// Frequency-style replacement: a newcomer displaces the coldest entry
	// only once repeated misses have decayed it, so established hot loads
	// are not evicted by one-off misses.
	if ib.dlt[min].count <= 1 {
		ib.dlt[min] = dltEntry{pc: pc, count: 1}
	} else {
		ib.dlt[min].count--
	}
}

func (ib *IBDA) inDLT(pc int) bool {
	for i := range ib.dlt {
		if ib.dlt[i].pc == pc {
			return true
		}
	}
	return false
}

// MarkDispatch implements the core Marker interface: a µop is critical if
// its PC is in the IST, or if it is a DLT-resident delinquent load. When a
// µop is critical, the PCs of its register producers are inserted into the
// IST — one backward level per encounter, converging over iterations
// (the "iterative" in IBDA). Producers through memory are not visible.
func (ib *IBDA) MarkDispatch(pc int, isLoad bool, producers []int) bool {
	critical := ib.ist.contains(pc) || (isLoad && ib.inDLT(pc))
	if !critical {
		return false
	}
	ib.Marked++
	for _, p := range producers {
		if p >= 0 && !ib.ist.contains(p) {
			ib.ist.insert(p)
			ib.ISTInserts++
		}
	}
	return true
}

// ISTSize returns the current number of valid IST entries.
func (ib *IBDA) ISTSize() int { return ib.ist.size() }

// DLTSize returns the number of tracked delinquent loads.
func (ib *IBDA) DLTSize() int { return len(ib.dlt) }
