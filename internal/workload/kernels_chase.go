package workload

import (
	"math/rand"

	"crisp/internal/emu"
	"crisp/internal/isa"
	"crisp/internal/program"
	"crisp/internal/sim"
)

// pointerchase is the Figure 1/2 microbenchmark: one linked-list traversal
// interleaved with an embarrassingly parallel vector multiply (VEC_SIZE =
// 32 as in the paper's listing). The next-pointer load misses the LLC and
// serializes iterations; CRISP hoists it past the vector work.
func init() {
	register(&Workload{
		Name: "pointerchase",
		Pathology: "Fig 1 µbench: serial pointer chase behind vector work; " +
			"expect a visible UPC sawtooth for OOO and a flattened, higher " +
			"curve for CRISP.",
		Build: func(v Variant) *sim.Image {
			r := rand.New(rand.NewSource(seedFor("pointerchase", v)))
			nodes := sizes(20000, 40000, v)
			const elems = 32
			mem := emu.NewMemory()
			slots := ringList(mem, regionA, nodes, r)
			vecInit(mem, regionD, elems*2, r)

			b := program.NewBuilder("pointerchase")
			b.MovI(rVecB, int64(regionD))
			b.Label("outer")
			emitVecWork(b, "inner", elems)
			b.Load(rCur, rCur, 0) // cur = cur->next (delinquent)
			b.Load(rVal, rCur, 8) // val = cur->val
			b.Bne(rCur, rZero, "outer")
			b.Halt()
			return &sim.Image{
				Prog: b.MustBuild(), Mem: mem,
				Regs: map[isa.Reg]int64{rCur: int64(slots[0]), rVal: 1},
			}
		},
	})
}

// mcf models SPEC mcf's network-simplex arc traversals: several mutually
// independent pointer chases over a large arc pool, interleaved with
// arithmetic on L1-resident data. The independent chains give CRISP MLP to
// create; the paper reports mcf-like apps among its largest gains.
func init() {
	register(&Workload{
		Name: "mcf",
		Pathology: "multi-chain pointer chase (MLP): CRISP's largest-gain " +
			"class; IBDA captures it partially (register-only slices suffice).",
		Build: func(v Variant) *sim.Image {
			r := rand.New(rand.NewSource(seedFor("mcf", v)))
			nodes := sizes(16000, 32000, v)
			const chains, elems = 4, 64
			mem := emu.NewMemory()
			regs := map[isa.Reg]int64{rVal: 1}
			for ch := 0; ch <= chains; ch++ {
				region := regionA + uint64(ch)*0x0400_0000
				slots := ringList(mem, region, nodes, r)
				regs[isa.R(20+ch)] = int64(slots[0])
			}
			vecInit(mem, regionD, elems*2, r)

			b := program.NewBuilder("mcf")
			b.MovI(rVecB, int64(regionD))
			b.Label("outer")
			emitVecWork(b, "inner", elems)
			for ch := 0; ch < chains; ch++ {
				cur := isa.R(20 + ch)
				b.Load(cur, cur, 0) // advance chain (delinquent)
			}
			// A colder fifth chain advances every 8th iteration: its small
			// miss share makes mcf sensitive to the Figure 10 threshold T.
			b.AddI(rCnt, rCnt, 1)
			b.MovI(rT1, 7)
			b.And(rT1, rCnt, rT1)
			b.Bne(rT1, rZero, "skipcold")   // predictable (period 8)
			b.Load(isa.R(24), isa.R(24), 0) // cold chain hop (delinquent, ~6% share)
			b.Label("skipcold")
			b.Load(rVal, isa.R(20), 8)
			b.Bne(isa.R(20), rZero, "outer")
			b.Halt()
			return &sim.Image{Prog: b.MustBuild(), Mem: mem, Regs: regs}
		},
	})
}

// omnetpp models discrete-event simulation: a binary-heap-like walk whose
// child choice depends on loaded keys, plus an event handler dispatch
// branch that is data-dependent and poorly predictable.
func init() {
	register(&Workload{
		Name: "omnetpp",
		Pathology: "two pointer chases with a data-dependent direction " +
			"branch: load slices dominate, with a secondary branch-slice gain.",
		Build: func(v Variant) *sim.Image {
			r := rand.New(rand.NewSource(seedFor("omnetpp", v)))
			nodes := sizes(12000, 24000, v)
			const elems = 48
			mem := emu.NewMemory()
			// Node layout: [0]=left, [8]=right (both random successors),
			// [16]=key. The walk picks left/right on key parity.
			perm := r.Perm(nodes)
			slots := make([]uint64, nodes)
			for i := range slots {
				slots[i] = regionA + uint64(perm[i])*64
			}
			for i := 0; i < nodes; i++ {
				mem.WriteWord(slots[i], int64(slots[(i+1)%nodes]))
				mem.WriteWord(slots[i]+8, int64(slots[(i+7919)%nodes]))
				mem.WriteWord(slots[i]+16, int64(r.Intn(1<<30)))
			}
			slots2 := ringList(mem, regionB, nodes, r)
			vecInit(mem, regionD, elems*2, r)

			b := program.NewBuilder("omnetpp")
			b.MovI(rVecB, int64(regionD))
			b.MovI(rMask, 1)
			b.Label("outer")
			emitVecWork(b, "inner", elems)
			// Heap walk: key parity chooses the child pointer.
			b.Load(rT4, rCur, 16) // key (delinquent-ish: same line as node)
			b.And(rT4, rT4, rMask)
			b.Beq(rT4, rZero, "left") // data-dependent: ~50% mispredict
			b.Load(rCur, rCur, 8)     // right child (delinquent)
			b.Jmp("join")
			b.Label("left")
			b.Load(rCur, rCur, 0) // left child (delinquent)
			b.Label("join")
			// Second, independent event chain.
			b.Load(isa.R(21), isa.R(21), 0)
			b.Load(rVal, rCur, 16)
			b.Bne(rCur, rZero, "outer")
			b.Halt()
			return &sim.Image{
				Prog: b.MustBuild(), Mem: mem,
				Regs: map[isa.Reg]int64{rCur: int64(slots[0]), isa.R(21): int64(slots2[0]), rVal: 1},
			}
		},
	})
}

// xalancbmk models XML tree/DOM walks: encoded child references that need
// a short decode slice, two concurrent walks.
func init() {
	register(&Workload{
		Name: "xalancbmk",
		Pathology: "encoded pointer chase (decode slice of 3 ops per hop): " +
			"slice prioritization compounds per hop.",
		Build: func(v Variant) *sim.Image {
			r := rand.New(rand.NewSource(seedFor("xalancbmk", v)))
			nodes := sizes(12000, 24000, v)
			const elems, mask = 48, int64(0x5a5a)
			mem := emu.NewMemory()
			regs := map[isa.Reg]int64{rVal: 1}
			for ch := 0; ch < 2; ch++ {
				region := regionA + uint64(ch)*0x0400_0000
				slots := encodedRing(mem, region, nodes, mask, r)
				regs[isa.R(20+ch)] = int64(slots[0])
				regs[isa.R(12+ch)] = int64(region)
			}
			vecInit(mem, regionD, elems*2, r)

			b := program.NewBuilder("xalancbmk")
			b.MovI(rVecB, int64(regionD))
			b.MovI(rMask, mask)
			b.Label("outer")
			emitVecWork(b, "inner", elems)
			for ch := 0; ch < 2; ch++ {
				cur := isa.R(20 + ch)
				b.Load(rT4, cur, 0)           // encoded child index (delinquent)
				b.Xor(rT4, rT4, rMask)        // decode
				b.Shl(rT4, rT4, 6)            // *64
				b.Add(cur, isa.R(12+ch), rT4) // base + offset
			}
			b.Load(rVal, isa.R(20), 8)
			b.Bne(isa.R(20), rZero, "outer")
			b.Halt()
			return &sim.Image{Prog: b.MustBuild(), Mem: mem, Regs: regs}
		},
	})
}

// moses models the phrase-table lookups of statistical MT: many distinct
// probe sites (large static footprint of critical code), multi-level hash
// probing with long slices that overflow a 1K-entry IST, and dependencies
// through a memory-resident probe state.
func init() {
	register(&Workload{
		Name: "moses",
		Pathology: "many distinct long probe slices: exceeds IBDA's IST; " +
			"large unique-critical-instruction count (Fig 11).",
		Build: func(v Variant) *sim.Image {
			r := rand.New(rand.NewSource(seedFor("moses", v)))
			buckets := sizes(1<<14, 1<<15, v)
			const sites, elems = 4, 32
			mem := emu.NewMemory()
			// Hash table: bucket array of node pointers; nodes hold
			// [0]=next-key-seed, [8]=value.
			fillWords(mem, regionA, buckets, func(i int) int64 {
				return int64(regionB + uint64(r.Intn(buckets))*64)
			})
			for i := 0; i < buckets; i++ {
				mem.WriteWord(regionB+uint64(i)*64, int64(r.Intn(1<<30)))
				mem.WriteWord(regionB+uint64(i)*64+8, int64(r.Intn(1<<30)))
			}
			vecInit(mem, regionD, elems*2, r)

			b := program.NewBuilder("moses")
			b.MovI(rVecB, int64(regionD))
			b.MovI(rB1, int64(regionA))
			setParam(mem, 0, int64(buckets-1))
			emitLoadParam(b, rMask, 0)
			// Second-level probe space is 4x the bucket count (a few MiB):
			// it stays DRAM-resident, as phrase tables do.
			setParam(mem, 1, int64(buckets*4-1))
			emitLoadParam(b, rCur, 1)
			spill := int64(regionC) // memory-resident probe state
			b.MovI(rB2, spill)
			b.Label("outer")
			emitVecWork(b, "inner", elems)
			// `sites` distinct probe sequences, software-pipelined: this
			// iteration reads the second-level entry located last iteration,
			// then hashes and probes the first level for the next one.
			for s := 0; s < sites; s++ {
				off := int64(s * 8)
				b.Load(rT4, isa.R(20+s), 8) // second-level probe (delinquent, ready at dispatch)
				b.Load(rRng, rB2, off)      // probe state through memory
				b.Shl(rT1, rRng, 13)
				b.Xor(rRng, rRng, rT1)
				b.Shr(rT1, rRng, 7)
				b.Xor(rRng, rRng, rT1)
				b.And(rT2, rRng, rMask)
				b.LoadIdx(rT3, rB1, rT2, 8, 0) // bucket head (delinquent)
				b.Shr(rT1, rT3, 6)
				b.And(rT1, rT1, rCur) // wide second-level index space
				b.Shl(rT1, rT1, 6)
				b.Add(isa.R(20+s), rB2, rT1) // next second-level address
				b.Xor(rRng, rRng, rT4)
				b.Store(rB2, off, rRng) // spill probe state
			}
			b.AddI(rCnt, rCnt, 1)
			b.Bne(rCnt, rZero, "outer")
			b.Halt()
			// Seed the probe states.
			for s := 0; s < sites; s++ {
				mem.WriteWord(uint64(spill)+uint64(s*8), int64(r.Intn(1<<30))|1)
			}
			return &sim.Image{
				Prog: b.MustBuild(), Mem: mem,
				Regs: mosesRegs(),
			}
		},
	})
}

func mosesRegs() map[isa.Reg]int64 {
	return map[isa.Reg]int64{
		rVal: 1, isa.R(20): int64(regionC + 4096),
		isa.R(21): int64(regionC + 8192), isa.R(22): int64(regionC + 12288),
		isa.R(23): int64(regionC + 16384),
	}
}

// memcached models slab-cache GET paths: hash a key, load the bucket head,
// walk a short chain with a key-compare branch that exits at an
// unpredictable position (branch and load slices synergize).
func init() {
	register(&Workload{
		Name: "memcached",
		Pathology: "hash-chain walk with unpredictable early-exit compare: " +
			"load+branch slice synergy (Fig 8 class).",
		Build: func(v Variant) *sim.Image {
			r := rand.New(rand.NewSource(seedFor("memcached", v)))
			buckets := sizes(1<<12, 1<<13, v)
			const elems = 24
			mem := emu.NewMemory()
			// Buckets point into a node pool; nodes: [0]=next, [8]=key,
			// [16]=value. Chains are 1-4 long.
			pool := regionB
			next := 0
			fillWords(mem, regionA, buckets, func(i int) int64 {
				head := pool + uint64(next)*64
				chain := 1 + r.Intn(4)
				for c := 0; c < chain; c++ {
					addr := pool + uint64(next)*64
					next++
					var nxt int64
					if c+1 < chain {
						nxt = int64(pool + uint64(next)*64)
					}
					mem.WriteWord(addr, nxt)
					mem.WriteWord(addr+8, int64(r.Intn(8))) // small key space
					mem.WriteWord(addr+16, int64(r.Intn(1<<30)))
				}
				return int64(head)
			})
			vecInit(mem, regionD, elems*2, r)

			b := program.NewBuilder("memcached")
			b.MovI(rVecB, int64(regionD))
			b.MovI(rB1, int64(regionA))
			setParam(mem, 0, int64(buckets-1))
			emitLoadParam(b, rMask, 0)
			b.Label("outer")
			emitVecWorkALU(b, "inner", elems)
			// Software-pipelined probe: walk the bucket whose address was
			// hashed last iteration; the chain loads feed unpredictable
			// key-compare branches (load+branch synergy).
			b.MovI(rB2, 7)
			b.And(rT4, rRng, rB2)      // search key in 0..7 (from last hash)
			b.Load(rCur, isa.R(20), 0) // bucket head (delinquent, ready at dispatch)
			// Compute the next iteration's bucket while walking.
			b.Shl(rT1, rRng, 13)
			b.Xor(rRng, rRng, rT1)
			b.Shr(rT1, rRng, 7)
			b.Xor(rRng, rRng, rT1)
			b.And(rT2, rRng, rMask)
			b.Shl(rT2, rT2, 3)
			b.Add(isa.R(20), rB1, rT2)
			// Walk up to 3 nodes; exit when the key matches (unpredictable).
			for hop := 0; hop < 3; hop++ {
				b.Load(rT3, rCur, 8)       // node key (delinquent)
				b.Beq(rT3, rT4, "hit")     // hard-to-predict compare
				b.Load(rCur, rCur, 0)      // next node (delinquent)
				b.Beq(rCur, rZero, "miss") // end of chain
			}
			b.Label("miss")
			b.MovI(rCur, int64(pool))
			b.Label("hit")
			b.Load(rVal, rCur, 16)
			b.AddI(rCnt, rCnt, 1)
			b.Bne(rCnt, rZero, "outer")
			b.Halt()
			return &sim.Image{
				Prog: b.MustBuild(), Mem: mem,
				Regs: map[isa.Reg]int64{rRng: 0x12345 | 1, rVal: 1, isa.R(20): int64(regionA)},
			}
		},
	})
}

// gcc models compiler passes: many small, distinct IR-walking loops, each
// with its own modest pointer chase. The critical-instruction footprint is
// spread over many static sites (Figure 11's high unique counts) and the
// code footprint pressures the instruction cache.
func init() {
	register(&Workload{
		Name: "gcc",
		Pathology: "many distinct small chase sites: large unique critical " +
			"footprint, moderate per-site gain.",
		Build: func(v Variant) *sim.Image {
			r := rand.New(rand.NewSource(seedFor("gcc", v)))
			nodes := sizes(8000, 16000, v)
			const phases, elems = 6, 48
			mem := emu.NewMemory()
			regs := map[isa.Reg]int64{rVal: 1}
			// One small ring per phase, all sharing cursor registers
			// round-robin (8 cursors).
			starts := make([]uint64, phases)
			for ph := 0; ph < phases; ph++ {
				region := regionA + uint64(ph)*0x0100_0000
				slots := ringList(mem, region, nodes, r)
				starts[ph] = slots[0]
			}
			fillWords(mem, regionC, phases, func(i int) int64 { return int64(starts[i]) })
			vecInit(mem, regionD, elems*2, r)

			b := program.NewBuilder("gcc")
			b.MovI(rVecB, int64(regionD))
			b.MovI(rB2, int64(regionC))
			b.Label("outer")
			for ph := 0; ph < phases; ph++ {
				// Each phase has distinct static code: filler + one hop on
				// its ring through a memory-resident cursor.
				off := int64(ph * 8)
				b.Load(rT1, rVecB, off)
				b.Mul(rT1, rT1, rVal)
				b.Load(rT2, rVecB, off+8)
				b.Add(rT1, rT1, rT2)
				b.Load(rCur, rB2, off)  // cursor through memory
				b.Load(rCur, rCur, 0)   // hop (delinquent)
				b.Store(rB2, off, rCur) // spill cursor
			}
			emitVecWork(b, "inner", elems)
			b.AddI(rCnt, rCnt, 1)
			b.Bne(rCnt, rZero, "outer")
			b.Halt()
			return &sim.Image{Prog: b.MustBuild(), Mem: mem, Regs: regs}
		},
	})
}
