// Package workload provides the evaluation suite: synthetic kernels that
// reproduce, per application, the memory- and branch-behaviour classes the
// paper reports for SPEC2017, Xhpcg, and the TailBench datacenter
// applications (Section 5.1). Real inputs and binaries are unavailable, so
// each kernel is engineered to exhibit its application's documented
// pathology — pointer chasing, indirect gathers, hash probing,
// hard-to-predict branches, high-MLP streaming — as described per workload
// below and in DESIGN.md.
//
// Train and ref variants share the same static program (the paper
// profiles on train inputs and evaluates on ref inputs); they differ in
// data-structure sizes, seeds, and layouts, which are injected through
// registers and memory.
package workload

import (
	"fmt"
	"math/rand"

	"crisp/internal/emu"
	"crisp/internal/isa"
	"crisp/internal/program"
	"crisp/internal/sim"
)

// Variant selects the input set.
type Variant int

// Input variants (Section 5.1: profile on train, evaluate on ref).
const (
	Train Variant = iota
	Ref
)

func (v Variant) String() string {
	if v == Train {
		return "train"
	}
	return "ref"
}

// Workload is one benchmark of the suite.
type Workload struct {
	Name string
	// Pathology documents which paper-reported behaviour the kernel
	// models and what result shape is expected.
	Pathology string
	// Build constructs a fresh image for the variant. Each returned image
	// may be consumed by exactly one run.
	Build func(v Variant) *sim.Image
}

var registry []*Workload

func register(w *Workload) { registry = append(registry, w) }

// All returns the evaluation suite in the paper's presentation order.
func All() []*Workload {
	out := make([]*Workload, len(registry))
	copy(out, registry)
	return out
}

// ByName returns the named workload or nil.
func ByName(name string) *Workload {
	for _, w := range registry {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// Names returns all workload names.
func Names() []string {
	var out []string
	for _, w := range registry {
		out = append(out, w.Name)
	}
	return out
}

// ---------------------------------------------------------------- helpers

// Memory regions: keep data structures on distinct high bits so kernels
// compose without overlap. Code lives at program.CodeBase (4 MiB).
const (
	regionA = uint64(0x1000_0000)
	regionB = uint64(0x3000_0000)
	regionC = uint64(0x5000_0000)
	regionD = uint64(0x7000_0000)
)

var _ = fmt.Sprintf // keep fmt for kernels that format panics

// paramBase is where kernels stash variant-dependent scalar parameters
// (sizes, masks). Code loads them at startup so the static program is
// identical across train and ref variants.
const paramBase = uint64(0x0F00_0000)

// setParam writes parameter word idx for the variant.
func setParam(mem *emu.Memory, idx int, v int64) {
	mem.WriteWord(paramBase+uint64(idx)*8, v)
}

// emitLoadParam emits code loading parameter word idx into reg.
func emitLoadParam(b *program.Builder, reg isa.Reg, idx int) {
	b.MovI(reg, int64(paramBase))
	b.Load(reg, reg, int64(idx)*8)
}

// ringList lays a singly linked ring of `nodes` 64-byte nodes at random
// slots inside region and returns the slot addresses in traversal order.
// Node layout: [0]=next pointer, [8]=value.
func ringList(mem *emu.Memory, region uint64, nodes int, r *rand.Rand) []uint64 {
	perm := r.Perm(nodes)
	slots := make([]uint64, nodes)
	for i := range slots {
		slots[i] = region + uint64(perm[i])*64
	}
	for i := 0; i < nodes; i++ {
		mem.WriteWord(slots[i], int64(slots[(i+1)%nodes]))
		mem.WriteWord(slots[i]+8, int64(r.Intn(1<<30)))
	}
	return slots
}

// encodedRing is ringList but stores the successor as a scrambled slot
// index (decode: xor mask, shift, add base), forcing a multi-instruction
// address-generation slice.
func encodedRing(mem *emu.Memory, region uint64, nodes int, mask int64, r *rand.Rand) []uint64 {
	perm := r.Perm(nodes)
	slots := make([]uint64, nodes)
	for i := range slots {
		slots[i] = region + uint64(perm[i])*64
	}
	for i := 0; i < nodes; i++ {
		nextIdx := int64(perm[(i+1)%nodes]) ^ mask
		mem.WriteWord(slots[i], nextIdx)
		mem.WriteWord(slots[i]+8, int64(r.Intn(1<<30)))
	}
	return slots
}

// fillWords writes n sequential 8-byte values at base, staging them in a
// buffer so the memory resolves each page once per run (Memory.WriteWords)
// instead of once per word.
func fillWords(mem *emu.Memory, base uint64, n int, f func(i int) int64) {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = f(i)
	}
	mem.WriteWords(base, vals)
}

// Standard register allocation shared by kernels (documented here so each
// kernel body reads consistently):
//
//	r1..r2   chase state (cur, val)
//	r3..r7   bases and loop limits
//	r8..r11  scratch values
//	r12..r19 per-chain bases
//	r20..r27 per-chain cursors
//	r28..r31 counters / masks / link
var (
	rCur  = isa.R(1)
	rVal  = isa.R(2)
	rVecB = isa.R(3)
	rIdx  = isa.R(4)
	rLim  = isa.R(5)
	rB1   = isa.R(6)
	rB2   = isa.R(7)
	rT1   = isa.R(8)
	rT2   = isa.R(9)
	rT3   = isa.R(10)
	rT4   = isa.R(11)
	rCnt  = isa.R(28)
	rMask = isa.R(29)
	rRng  = isa.R(30)
	rZero = isa.R(0)
)

// emitVecWork emits the port-saturating filler block: an inner loop over
// `elems` vector elements (4x unrolled, three loads and a multiply per
// element) against the L1-resident array at the address in rVecB. It
// models the "embarrassingly parallel" non-critical work the scheduler is
// free to deprioritize. Clobbers rIdx, rT1..rT3; reads rVal.
func emitVecWork(b *program.Builder, label string, elems int64) {
	b.MovI(rLim, elems)
	b.MovI(rIdx, 0)
	b.Label(label)
	for u := 0; u < 4; u++ {
		off := int64(u * 8)
		b.LoadIdx(rT1, rVecB, rIdx, 8, off)
		b.LoadIdx(rT2, rVecB, rIdx, 8, off+32)
		b.LoadIdx(rT3, rVecB, rIdx, 8, off+64)
		b.Mul(rT1, rT1, rVal)
		b.Add(rT2, rT2, rT3)
	}
	b.AddI(rIdx, rIdx, 4)
	b.Blt(rIdx, rLim, label)
}

// emitVecWorkALU is emitVecWork with a heavier arithmetic mix (two loads,
// two multiplies, two adds per element) that keeps the ALU issue ports
// near saturation. Branch-heavy kernels use it so that a mispredicting
// branch and its condition slice genuinely contend for selection slots.
func emitVecWorkALU(b *program.Builder, label string, elems int64) {
	b.MovI(rLim, elems)
	b.MovI(rIdx, 0)
	b.Label(label)
	for u := 0; u < 4; u++ {
		off := int64(u * 8)
		b.LoadIdx(rT1, rVecB, rIdx, 8, off)
		b.Mul(rT2, rT1, rVal)
		b.Mul(rT3, rT1, rVal)
		b.Add(rT2, rT2, rT3)
		b.Xor(rT3, rT2, rT1)
		b.Add(rT2, rT3, rT1)
	}
	b.AddI(rIdx, rIdx, 4)
	b.Blt(rIdx, rLim, label)
}

// vecInit prepares the filler array at region (elems+12 words).
func vecInit(mem *emu.Memory, region uint64, elems int, r *rand.Rand) {
	fillWords(mem, region, elems+12, func(i int) int64 { return int64(r.Intn(1 << 20)) })
}

// sizes returns (train, ref) scaled sizes.
func sizes(train, ref int, v Variant) int {
	if v == Train {
		return train
	}
	return ref
}

// seedFor derives deterministic but variant-distinct seeds.
func seedFor(name string, v Variant) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h = (h ^ int64(c)) * 16777619
	}
	if v == Ref {
		h ^= 0x9e3779b9
	}
	return h
}
