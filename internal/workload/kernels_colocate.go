package workload

import (
	"math/rand"

	"crisp/internal/emu"
	"crisp/internal/isa"
	"crisp/internal/program"
	"crisp/internal/sim"
)

// tailchase is the latency-critical half of the co-location pair: a
// TailBench-style request loop whose service time is one dependent
// pointer hop over an LLC-exceeding working set plus a short burst of
// request-processing arithmetic. With so little independent work per hop,
// its IPC tracks the load-to-use latency of the chase directly — exactly
// the workload whose tail a streaming neighbour stretches through shared
// LLC evictions and DRAM queueing.
func init() {
	register(&Workload{
		Name: "tailchase",
		Pathology: "latency-critical service loop: serial chase with minimal " +
			"overlap work; co-located batch traffic degrades it through the " +
			"shared LLC and DRAM bank/bus queues.",
		Build: func(v Variant) *sim.Image {
			r := rand.New(rand.NewSource(seedFor("tailchase", v)))
			// 0.5/0.75 MiB of 64B nodes: fits the 1 MiB LLC solo, so the
			// chase hits the LLC when alone and misses to DRAM only when a
			// co-located neighbour evicts it — interference flows through
			// the shared LLC, not just the memory bus.
			nodes := sizes(8000, 12000, v)
			const elems = 8
			mem := emu.NewMemory()
			slots := ringList(mem, regionA, nodes, r)
			vecInit(mem, regionD, elems*2, r)

			b := program.NewBuilder("tailchase")
			b.MovI(rVecB, int64(regionD))
			b.Label("outer")
			emitVecWork(b, "inner", elems)
			b.Load(rCur, rCur, 0) // cur = cur->next (delinquent)
			b.Load(rVal, rCur, 8) // val = cur->val
			b.Bne(rCur, rZero, "outer")
			b.Halt()
			return &sim.Image{
				Prog: b.MustBuild(), Mem: mem,
				Regs: map[isa.Reg]int64{rCur: int64(slots[0]), rVal: 1},
			}
		},
	})
}

// streambatch is the batch half of the co-location pair: a copy-style
// sweep (load + store per line, sequential line stride) over four large
// independent streams. Every iteration moves whole cache lines through the
// LLC and DRAM — reads on the way in, writebacks of the dirtied victims on
// the way out — so it consumes as much shared bandwidth and LLC capacity
// as the machine will give it while staying almost latency-insensitive
// (high MLP, no dependent misses).
func init() {
	register(&Workload{
		Name: "streambatch",
		Pathology: "high-bandwidth streaming batch: line-stride load+store " +
			"sweeps with high MLP; thrashes the shared LLC and saturates the " +
			"DRAM bus without being latency-sensitive itself.",
		Build: func(v Variant) *sim.Image {
			r := rand.New(rand.NewSource(seedFor("streambatch", v)))
			const streams, elems = 4, 8
			span := sizes(1<<21, 1<<22, v) // bytes per stream
			mem := emu.NewMemory()
			for s := 0; s < streams; s++ {
				base := regionA + uint64(s)*0x0100_0000
				for off := 0; off < span; off += 4096 {
					mem.WriteWord(base+uint64(off), int64(off+s))
				}
			}
			vecInit(mem, regionD, elems*2, r)

			const stride = 64 // next line every iteration: pure bandwidth
			b := program.NewBuilder("streambatch")
			b.MovI(rVecB, int64(regionD))
			setParam(mem, 0, int64(span-1))
			emitLoadParam(b, rMask, 0)
			b.Label("outer")
			emitVecWork(b, "inner", elems)
			for s := 0; s < streams; s++ {
				base := isa.R(12 + s)
				cur := isa.R(20 + s)
				b.And(cur, cur, rMask)
				b.Add(rT4, base, cur)
				b.Load(rT1, rT4, 0)   // streaming read (high MLP)
				b.Add(rT1, rT1, rVal) // touch the data
				b.Store(rT4, 8, rT1)  // dirty the line: writeback traffic
				b.AddI(cur, cur, stride)
			}
			b.AddI(rCnt, rCnt, 1)
			b.Bne(rCnt, rZero, "outer")
			b.Halt()
			regs := map[isa.Reg]int64{rVal: 1}
			for s := 0; s < streams; s++ {
				regs[isa.R(12+s)] = int64(regionA + uint64(s)*0x0100_0000)
				regs[isa.R(20+s)] = int64(s * 1024)
			}
			return &sim.Image{Prog: b.MustBuild(), Mem: mem, Regs: regs}
		},
	})
}
