package workload

import (
	"testing"

	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/emu"
	"crisp/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"pointerchase", "mcf", "omnetpp", "xalancbmk", "moses", "memcached",
		"gcc", "bwaves", "cactus", "deepsjeng", "fotonik", "lbm", "nab",
		"namd", "perlbench", "xhpcg", "imgdnn",
		"tailchase", "streambatch", // co-location pair (multi-core figures)
	}
	if len(All()) != len(want) {
		t.Fatalf("registry has %d workloads, want %d: %v", len(All()), len(want), Names())
	}
	for _, name := range want {
		if ByName(name) == nil {
			t.Errorf("workload %q missing", name)
		}
	}
	if ByName("nonexistent") != nil {
		t.Errorf("ByName invented a workload")
	}
}

func TestImagesBuildAndRunFunctionally(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, v := range []Variant{Train, Ref} {
				img := w.Build(v)
				if err := img.Prog.Validate(); err != nil {
					t.Fatalf("%s/%s: %v", w.Name, v, err)
				}
				em := emu.New(img.Prog, img.Mem)
				for r, val := range img.Regs {
					em.SetReg(r, val)
				}
				if n := em.Run(20000); n < 20000 && !em.Done() {
					t.Fatalf("%s/%s: functional run stopped at %d insts", w.Name, v, n)
				}
			}
		})
	}
}

func TestTrainAndRefShareProgram(t *testing.T) {
	for _, w := range All() {
		tr := w.Build(Train)
		rf := w.Build(Ref)
		if tr.Prog.Len() != rf.Prog.Len() {
			t.Errorf("%s: train prog %d insts, ref %d — tags would not transfer",
				w.Name, tr.Prog.Len(), rf.Prog.Len())
			continue
		}
		for pc := range tr.Prog.Insts {
			if tr.Prog.Insts[pc] != rf.Prog.Insts[pc] {
				t.Errorf("%s: pc %d differs between variants", w.Name, pc)
				break
			}
		}
	}
}

func TestBuildsAreDeterministic(t *testing.T) {
	w := ByName("mcf")
	a, b := w.Build(Ref), w.Build(Ref)
	for r, v := range a.Regs {
		if b.Regs[r] != v {
			t.Errorf("nondeterministic reg %v: %d vs %d", r, v, b.Regs[r])
		}
	}
}

// runPair runs OOO baseline and the full CRISP pipeline on a workload with
// a reduced instruction budget.
func runPair(t testing.TB, w *Workload, insts uint64, opts crisp.Options) (base, crispRes *core.Result, pipe *sim.Pipeline) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Core.MaxInsts = insts
	pipe = sim.AnalyzeTrain(w.Build(Train), w.Build(Train), cfg, opts)
	ref := w.Build(Ref)
	base = sim.Run(ref, cfg.WithSched(core.SchedOldestFirst))
	tagged := pipe.Tagged(w.Build(Ref))
	crispRes = sim.Run(tagged, cfg.WithSched(core.SchedCRISP))
	return base, crispRes, pipe
}

// TestCalibrateSuite logs per-workload CRISP gains (run with -v). The
// experiments harness uses larger budgets; this is the fast feedback loop.
func TestCalibrateSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration")
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			base, cr, pipe := runPair(t, w, 400_000, crisp.DefaultOptions())
			t.Logf("%-12s OOO %.3f CRISP %.3f gain %+5.1f%%  critPCs=%d dynFrac=%.2f loads=%d branches=%d prioIss=%d jump=%.1f brMPKI=%.1f llcMPKI=%.1f",
				w.Name, base.IPC(), cr.IPC(), (cr.IPC()/base.IPC()-1)*100,
				len(pipe.Analysis.CriticalPCs), pipe.Analysis.DynCriticalFraction,
				len(pipe.Analysis.DelinquentLoads), len(pipe.Analysis.HardBranches),
				cr.IssuedCritical, float64(cr.QueueJumpSum)/float64(cr.IssuedCritical+1),
				base.BranchMPKI(), base.LLCMPKI())
		})
	}
}
