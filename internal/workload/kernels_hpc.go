package workload

import (
	"math/rand"

	"crisp/internal/emu"
	"crisp/internal/isa"
	"crisp/internal/program"
	"crisp/internal/sim"
)

// bwaves models blocked FP streaming: independent large-stride sweeps that
// miss the LLC with high memory-level parallelism. The misses dominate
// MPKI but are not latency-critical; CRISP's MLP filter excludes them
// (Section 3.2) while IBDA's frequency-only DLT tags them.
func init() {
	register(&Workload{
		Name: "bwaves",
		Pathology: "high-MPKI, high-MLP strided misses: CRISP declines to " +
			"tag (MLP >= 5), IBDA mis-tags and can lose performance.",
		Build: func(v Variant) *sim.Image {
			r := rand.New(rand.NewSource(seedFor("bwaves", v)))
			const streams, elems = 8, 16
			span := sizes(1<<22, 1<<23, v) // bytes per stream
			mem := emu.NewMemory()
			for s := 0; s < streams; s++ {
				base := regionA + uint64(s)*0x0100_0000
				for off := 0; off < span; off += 4096 {
					mem.WriteWord(base+uint64(off), int64(off+s))
				}
			}
			vecInit(mem, regionD, elems*2, r)

			// Stride of 33 lines defeats BOP's offset list (max 32) and the
			// stream detector's window, so the sweeps keep missing.
			const stride = 33 * 64
			b := program.NewBuilder("bwaves")
			b.MovI(rVecB, int64(regionD))
			setParam(mem, 0, int64(span-1))
			emitLoadParam(b, rMask, 0)
			b.Label("outer")
			emitVecWork(b, "inner", elems)
			for s := 0; s < streams; s++ {
				base := isa.R(12 + s)
				cur := isa.R(20 + s)
				b.And(cur, cur, rMask)
				b.Add(rT4, base, cur)
				b.Load(rT1, rT4, 0) // independent streaming miss (high MLP)
				b.Add(rVal, rVal, rT1)
				b.AddI(cur, cur, stride)
			}
			b.AddI(rCnt, rCnt, 1)
			b.Bne(rCnt, rZero, "outer")
			b.Halt()
			regs := map[isa.Reg]int64{rVal: 1}
			for s := 0; s < streams; s++ {
				regs[isa.R(12+s)] = int64(regionA + uint64(s)*0x0100_0000)
				regs[isa.R(20+s)] = int64(s * 64)
			}
			return &sim.Image{Prog: b.MustBuild(), Mem: mem, Regs: regs}
		},
	})
}

// cactuBSSN models stencil relaxation with boundary handling: a cell
// chain whose loaded flag drives an unpredictable boundary branch guarding
// an indirect coefficient gather. Load and branch slices combine
// super-additively (Figure 8).
func init() {
	register(&Workload{
		Name: "cactus",
		Pathology: "chain + boundary branch guarding a dependent gather: " +
			"load/branch slice synergy.",
		Build: func(v Variant) *sim.Image {
			r := rand.New(rand.NewSource(seedFor("cactus", v)))
			cells := sizes(1<<14, 1<<15, v)
			const elems = 40
			mem := emu.NewMemory()
			// Chain of cells; [8] = flag (30% boundary), [16] = coeff addr.
			slots := ringList(mem, regionA, cells, r)
			coeff := ringList(mem, regionB, cells, r)
			for i, s := range slots {
				flag := int64(0)
				if r.Float64() < 0.3 {
					flag = 1
				}
				mem.WriteWord(s+8, flag)
				mem.WriteWord(s+16, int64(coeff[(i*31)%len(coeff)]))
			}
			vecInit(mem, regionD, elems*2, r)

			b := program.NewBuilder("cactus")
			b.MovI(rVecB, int64(regionD))
			b.Label("outer")
			emitVecWorkALU(b, "inner", elems)
			b.Load(rCur, rCur, 0)      // next cell (delinquent)
			b.Load(rT3, rCur, 8)       // boundary flag (delinquent)
			b.Bne(rT3, rZero, "bound") // data-dependent, ~30% taken
			b.Load(rT4, rCur, 16)      // coefficient address (delinquent)
			b.Load(rVal, rT4, 8)       // indirect coefficient gather (delinquent)
			b.Jmp("done")
			b.Label("bound")
			b.Load(rVal, rCur, 24)
			b.Label("done")
			b.Bne(rCur, rZero, "outer")
			b.Halt()
			return &sim.Image{
				Prog: b.MustBuild(), Mem: mem,
				Regs: map[isa.Reg]int64{rCur: int64(slots[0]), rVal: 1},
			}
		},
	})
}

// deepsjeng models game-tree search: branches whose outcomes derive from
// loaded position data and mix poorly with history (evaluation-driven
// pruning). Branch slices alone recover measurable IPC (Figure 8's
// branch-only group).
func init() {
	register(&Workload{
		Name: "deepsjeng",
		Pathology: "unpredictable eval-driven branches with load-fed " +
			"condition slices; branch slices alone help >3%.",
		Build: func(v Variant) *sim.Image {
			r := rand.New(rand.NewSource(seedFor("deepsjeng", v)))
			table := sizes(1<<15, 1<<16, v)
			const elems = 32
			mem := emu.NewMemory()
			fillWords(mem, regionA, table, func(i int) int64 { return int64(r.Intn(1 << 30)) })
			vecInit(mem, regionD, elems*2, r)

			b := program.NewBuilder("deepsjeng")
			b.MovI(rVecB, int64(regionD))
			b.MovI(rB1, int64(regionA))
			setParam(mem, 0, int64(table-1))
			emitLoadParam(b, rMask, 0)
			b.MovI(rB2, 2)
			b.Label("outer")
			emitVecWorkALU(b, "inner", elems)
			// Transposition-table probe feeding a pruning branch.
			b.Shl(rT1, rRng, 13)
			b.Xor(rRng, rRng, rT1)
			b.Shr(rT1, rRng, 17)
			b.Xor(rRng, rRng, rT1)
			b.And(rT2, rRng, rMask)
			b.LoadIdx(rT3, rB1, rT2, 8, 0) // position eval (delinquent-ish)
			b.Xor(rT3, rT3, rRng)
			b.Rem(rT4, rT3, rB2)
			b.Beq(rT4, rZero, "prune") // ~50/50 eval-driven branch
			b.AddI(rVal, rVal, 3)
			b.Label("prune")
			b.AddI(rCnt, rCnt, 1)
			b.Bne(rCnt, rZero, "outer")
			b.Halt()
			return &sim.Image{
				Prog: b.MustBuild(), Mem: mem,
				Regs: map[isa.Reg]int64{rRng: 0xACE1, rVal: 1},
			}
		},
	})
}

// fotonik3d models FDTD with index indirection: a[idx[i]] gathers where
// idx is a shuffled permutation. Slices are short; IBDA's unfiltered
// tagging floods the PRIO vector and can lose performance (Section 5.2).
func init() {
	register(&Workload{
		Name: "fotonik",
		Pathology: "indirect gather with shuffled indices: short slices; " +
			"IBDA over-tags (no critical-path filter).",
		Build: func(v Variant) *sim.Image {
			r := rand.New(rand.NewSource(seedFor("fotonik", v)))
			n := sizes(1<<16, 1<<17, v)
			const elems = 48
			mem := emu.NewMemory()
			perm := r.Perm(n)
			fillWords(mem, regionA, n, func(i int) int64 { return int64(perm[i]) })
			fillWords(mem, regionB, n, func(i int) int64 { return int64(r.Intn(1 << 20)) })
			vecInit(mem, regionD, elems*2, r)

			b := program.NewBuilder("fotonik")
			b.MovI(rVecB, int64(regionD))
			b.MovI(rB1, int64(regionA))
			b.MovI(rB2, int64(regionB))
			setParam(mem, 0, int64(n-1))
			emitLoadParam(b, rMask, 0)
			b.Label("outer")
			emitVecWork(b, "inner", elems)
			// Software-pipelined two-level indirection (as FDTD codes
			// structure it): this iteration gathers through the address
			// prepared last iteration and computes the next one.
			for u := 0; u < 2; u++ {
				gaddr := isa.R(20 + u)
				b.Load(rT3, gaddr, 0) // a[idx] gather (delinquent, ready at dispatch)
				b.FAdd(rVal, rVal, rT3)
				// idx[] walked with a large stride (prefetch-resistant).
				b.AddI(rCnt, rCnt, 269)
				b.And(rT1, rCnt, rMask)
				b.LoadIdx(rT2, rB1, rT1, 8, 0) // idx[i] (delinquent)
				b.Shl(rT2, rT2, 3)
				b.Add(gaddr, rB2, rT2) // next iteration's gather address
			}
			b.Bne(rCnt, rZero, "outer")
			b.Halt()
			return &sim.Image{
				Prog: b.MustBuild(), Mem: mem,
				Regs: fotonikRegs(),
			}
		},
	})
}

func fotonikRegs() map[isa.Reg]int64 {
	return map[isa.Reg]int64{rVal: 1, isa.R(20): int64(regionB), isa.R(21): int64(regionB + 64)}
}

// lbm models lattice-Boltzmann streaming: two independent cell chains
// whose loaded state feeds a poorly predictable cell-type branch. The
// branch resolves only after the delinquent chain load returns, so load
// slices shorten branch resolution and branch slices add on top — the
// paper developed branch slices for exactly this workload (Figure 8's
// synergy case).
func init() {
	register(&Workload{
		Name: "lbm",
		Pathology: "chain loads feeding hard-to-predict type branches: " +
			"branch slices unlock load-slice gains (Fig 8 synergy).",
		Build: func(v Variant) *sim.Image {
			r := rand.New(rand.NewSource(seedFor("lbm", v)))
			cells := sizes(1<<14, 1<<15, v)
			const chains, elems = 2, 40
			mem := emu.NewMemory()
			regs := map[isa.Reg]int64{rVal: 1}
			for ch := 0; ch < chains; ch++ {
				region := regionA + uint64(ch)*0x0400_0000
				slots := ringList(mem, region, cells, r)
				regs[isa.R(20+ch)] = int64(slots[0])
			}
			vecInit(mem, regionD, elems*2, r)

			b := program.NewBuilder("lbm")
			b.MovI(rVecB, int64(regionD))
			b.MovI(rMask, 1)
			b.Label("outer")
			emitVecWorkALU(b, "inner", elems)
			for ch := 0; ch < chains; ch++ {
				cur := isa.R(20 + ch)
				b.Load(cur, cur, 0) // next cell (delinquent)
				b.Load(rT4, cur, 8) // cell state (delinquent)
				b.And(rT4, rT4, rMask)
				b.Beq(rT4, rZero, skip(ch)) // cell-type branch: ~50/50
				b.Mul(rVal, rVal, rT4)      // collision update
				b.AddI(rVal, rVal, 7)
				b.Label(skip(ch))
			}
			b.Bne(isa.R(20), rZero, "outer")
			b.Halt()
			return &sim.Image{Prog: b.MustBuild(), Mem: mem, Regs: regs}
		},
	})
}

func skip(u int) string { return "skip" + string(rune('0'+u)) }

// nab models molecular-dynamics nonbonded kernels: FP distance chains
// feeding a cutoff branch. The long FP latency makes the branch resolve
// late; its slice is the FP chain itself (branch-only gains).
func init() {
	register(&Workload{
		Name: "nab",
		Pathology: "FP cutoff branch with long-latency condition chain: " +
			"branch-slice-only gains.",
		Build: func(v Variant) *sim.Image {
			r := rand.New(rand.NewSource(seedFor("nab", v)))
			atoms := sizes(1<<12, 1<<13, v)
			const elems = 32
			mem := emu.NewMemory()
			fillWords(mem, regionA, atoms, func(i int) int64 { return int64(r.Intn(1000) + 1) })
			vecInit(mem, regionD, elems*2, r)

			b := program.NewBuilder("nab")
			b.MovI(rVecB, int64(regionD))
			b.MovI(rB1, int64(regionA))
			setParam(mem, 0, int64(atoms-1))
			emitLoadParam(b, rMask, 0)
			b.MovI(rB2, 500)
			b.Label("outer")
			emitVecWorkALU(b, "inner", elems)
			b.AddI(rCnt, rCnt, 1)
			b.And(rT1, rCnt, rMask)
			b.LoadIdx(rT2, rB1, rT1, 8, 0) // atom coordinate (L1/LLC mix)
			b.FMul(rT3, rT2, rT2)          // distance^2 (long FP chain)
			b.FMul(rT4, rT3, rT2)
			b.FAdd(rT4, rT4, rT3)
			b.Rem(rT4, rT4, rB2)
			b.MovI(rT1, 250)
			b.Blt(rT4, rT1, "cut") // cutoff: data-dependent ~50%
			b.FAdd(rVal, rVal, rT3)
			b.Label("cut")
			b.Bne(rCnt, rZero, "outer")
			b.Halt()
			return &sim.Image{Prog: b.MustBuild(), Mem: mem, Regs: map[isa.Reg]int64{rVal: 1}}
		},
	})
}

// namd models neighbor-list force loops whose gather addresses pass
// through a memory-resident neighbor record (register spills): CRISP's
// memory-aware slicer captures the full slice, IBDA cannot (Section 5.2's
// "inability of following dependencies through memory").
func init() {
	register(&Workload{
		Name: "namd",
		Pathology: "gather addresses passed through memory: CRISP slices " +
			"them, register-only IBDA misses them.",
		Build: func(v Variant) *sim.Image {
			r := rand.New(rand.NewSource(seedFor("namd", v)))
			atoms := sizes(1<<15, 1<<16, v)
			const elems = 40
			mem := emu.NewMemory()
			// Neighbor records at regionC: each holds the address of the
			// next atom to visit. Atom pool at regionA.
			fillWords(mem, regionA, atoms*8, func(i int) int64 { return int64(r.Intn(1 << 20)) })
			perm := r.Perm(atoms)
			fillWords(mem, regionC, 4, func(i int) int64 {
				return int64(regionA + uint64(perm[i])*64)
			})
			// Each atom record stores the address of the next atom.
			for i := 0; i < atoms; i++ {
				addr := regionA + uint64(perm[i])*64
				mem.WriteWord(addr+16, int64(regionA+uint64(perm[(i+1)%atoms])*64))
			}
			vecInit(mem, regionD, elems*2, r)

			b := program.NewBuilder("namd")
			b.MovI(rVecB, int64(regionD))
			b.MovI(rB2, int64(regionC))
			b.Label("outer")
			emitVecWork(b, "inner", elems)
			for u := 0; u < 2; u++ {
				off := int64(u * 8)
				b.Load(rCur, rB2, off) // neighbor cursor THROUGH MEMORY
				b.Load(rT1, rCur, 0)   // atom data (delinquent)
				b.FMul(rVal, rT1, rT1)
				b.Load(rT2, rCur, 16)  // next-atom address (delinquent)
				b.Store(rB2, off, rT2) // spill back (memory dependency)
			}
			b.AddI(rCnt, rCnt, 1)
			b.Bne(rCnt, rZero, "outer")
			b.Halt()
			return &sim.Image{Prog: b.MustBuild(), Mem: mem, Regs: map[isa.Reg]int64{rVal: 1}}
		},
	})
}

// perlbench models interpreter hash probing: long hash-mix slices feeding
// two-level probes at several distinct sites. Slices are long; IBDA's
// unfiltered slice tagging over-selects and loses performance.
func init() {
	register(&Workload{
		Name: "perlbench",
		Pathology: "long hash-mix slices at many sites: critical-path " +
			"filtering matters; IBDA over-selects.",
		Build: func(v Variant) *sim.Image {
			r := rand.New(rand.NewSource(seedFor("perlbench", v)))
			buckets := sizes(1<<14, 1<<15, v)
			const sites, elems = 4, 32
			mem := emu.NewMemory()
			fillWords(mem, regionA, buckets, func(i int) int64 {
				return int64(regionB + uint64(r.Intn(buckets))*64)
			})
			for i := 0; i < buckets; i++ {
				mem.WriteWord(regionB+uint64(i)*64, int64(r.Intn(1<<30)))
			}
			// Per-site hash state lives in memory (interpreter globals).
			for s := 0; s < sites; s++ {
				mem.WriteWord(regionC+uint64(s*8), int64(r.Intn(1<<30))|1)
			}
			vecInit(mem, regionD, elems*2, r)

			b := program.NewBuilder("perlbench")
			b.MovI(rVecB, int64(regionD))
			b.MovI(rB1, int64(regionA))
			b.MovI(rB2, int64(regionC))
			setParam(mem, 0, int64(buckets-1))
			emitLoadParam(b, rMask, 0)
			b.Label("outer")
			emitVecWork(b, "inner", elems)
			for s := 0; s < sites; s++ {
				off := int64(s * 8)
				// Software-pipelined probe: read the entry whose bucket
				// pointer was hashed last iteration, then compute the next
				// bucket with a long hash-mix chain (the slice).
				b.Load(rT4, isa.R(20+s), 0) // entry key (delinquent, ready at dispatch)
				b.Load(rRng, rB2, off)      // per-site hash state (memory-resident)
				b.Shl(rT1, rRng, 13)
				b.Xor(rRng, rRng, rT1)
				b.Shr(rT1, rRng, 7)
				b.Xor(rRng, rRng, rT1)
				b.Shl(rT1, rRng, 17)
				b.Xor(rRng, rRng, rT1)
				b.Mul(rT2, rRng, rVal)
				b.And(rT2, rT2, rMask)
				b.LoadIdx(rT3, rB1, rT2, 8, 0) // bucket head (delinquent)
				b.Mov(isa.R(20+s), rT3)        // next iteration's entry pointer
				b.Xor(rRng, rRng, rT4)
				b.Store(rB2, off, rRng)
			}
			b.AddI(rCnt, rCnt, 1)
			b.Bne(rCnt, rZero, "outer")
			b.Halt()
			return &sim.Image{
				Prog: b.MustBuild(), Mem: mem,
				Regs: perlbenchRegs(),
			}
		},
	})
}

func perlbenchRegs() map[isa.Reg]int64 {
	return map[isa.Reg]int64{
		rVal: 3, isa.R(20): int64(regionB), isa.R(21): int64(regionB + 64),
		isa.R(22): int64(regionB + 128), isa.R(23): int64(regionB + 192),
	}
}

// xhpcg models the HPCG sparse matrix-vector product: per-row loops over
// CSR structures with x[col[j]] gathers. More rows fit in a bigger
// ROB/RS, so CRISP's gains grow with window size (Figure 9's standout).
func init() {
	register(&Workload{
		Name: "xhpcg",
		Pathology: "CSR SpMV gathers: window-size-sensitive CRISP gains " +
			"(Figure 9).",
		Build: func(v Variant) *sim.Image {
			r := rand.New(rand.NewSource(seedFor("xhpcg", v)))
			n := sizes(1<<15, 1<<16, v)
			const nnzPerRow, elems = 4, 40
			mem := emu.NewMemory()
			// col[] at regionA (random), val[] at regionB, x[] at regionC.
			fillWords(mem, regionA, n*nnzPerRow, func(i int) int64 { return int64(r.Intn(n)) })
			fillWords(mem, regionB, n*nnzPerRow, func(i int) int64 { return int64(r.Intn(1 << 16)) })
			fillWords(mem, regionC, n, func(i int) int64 { return int64(r.Intn(1 << 16)) })
			vecInit(mem, regionD, elems*2, r)

			b := program.NewBuilder("xhpcg")
			b.MovI(rVecB, int64(regionD))
			b.MovI(rB1, int64(regionA)) // col
			b.MovI(rB2, int64(regionB)) // val
			b.MovI(isa.R(12), int64(regionC))
			setParam(mem, 0, int64(n*nnzPerRow-1))
			emitLoadParam(b, rMask, 0)
			b.Label("outer")
			emitVecWork(b, "inner", elems)
			// Software-pipelined CSR row: gather x[] through addresses
			// prepared from the previous col[] loads (three concurrent
			// streams), then load the next col[] entries.
			for j := 0; j < 3; j++ {
				xaddr := isa.R(20 + j)
				b.Load(rT3, xaddr, 0) // x[col[j]] gather (ready at dispatch)
				b.FMul(rT3, rT3, rVal)
				b.FAdd(rVal, rVal, rT3)
				b.AddI(rCnt, rCnt, 523) // blocked-random row order
				b.And(rT1, rCnt, rMask)
				b.LoadIdx(rT2, rB1, rT1, 8, 0) // col[j] (delinquent)
				b.Shl(rT2, rT2, 3)
				b.Add(xaddr, isa.R(12), rT2) // next x[] address
			}
			b.Bne(rCnt, rZero, "outer")
			b.Halt()
			return &sim.Image{
				Prog: b.MustBuild(), Mem: mem,
				Regs: map[isa.Reg]int64{
					rVal: 1, isa.R(20): int64(regionC),
					isa.R(21): int64(regionC + 64), isa.R(22): int64(regionC + 128),
				},
			}
		},
	})
}

// imgdnn models dense inference: multiply-accumulate streams with high ILP
// plus a small activation-table lookup. Mostly compute-bound: CRISP's
// opportunity is small (the paper's low-gain class).
func init() {
	register(&Workload{
		Name: "imgdnn",
		Pathology: "compute-bound MACs with minor irregular lookups: " +
			"small CRISP gains.",
		Build: func(v Variant) *sim.Image {
			r := rand.New(rand.NewSource(seedFor("imgdnn", v)))
			table := sizes(1<<8, 1<<9, v)
			const elems = 64
			mem := emu.NewMemory()
			fillWords(mem, regionA, table, func(i int) int64 { return int64(r.Intn(1 << 16)) })
			vecInit(mem, regionD, elems*2, r)

			b := program.NewBuilder("imgdnn")
			b.MovI(rVecB, int64(regionD))
			b.MovI(rB1, int64(regionA))
			setParam(mem, 0, int64(table-1))
			emitLoadParam(b, rMask, 0)
			b.Label("outer")
			emitVecWork(b, "inner", elems)
			// Activation lookup on the accumulated value.
			b.And(rT1, rVal, rMask)
			b.LoadIdx(rVal, rB1, rT1, 8, 0) // mostly cache-resident
			b.AddI(rVal, rVal, 1)
			b.AddI(rCnt, rCnt, 1)
			b.Bne(rCnt, rZero, "outer")
			b.Halt()
			return &sim.Image{Prog: b.MustBuild(), Mem: mem, Regs: map[isa.Reg]int64{rVal: 1}}
		},
	})
}
