package workload

import (
	"testing"

	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/ibda"
	"crisp/internal/sim"
)

// TestSuiteShape asserts the qualitative result structure of the paper's
// evaluation on a reduced instruction budget: CRISP helps the
// irregular-memory workloads, leaves compute-bound and high-MLP streaming
// workloads alone, and its branch slices deliver gains hardware IBDA
// cannot express. These are the EXPERIMENTS.md claims in executable form.
func TestSuiteShape(t *testing.T) {
	if testing.Short() {
		t.Skip("suite-level run")
	}
	const insts = 250_000
	type out struct {
		base, crisp, ibda *core.Result
	}
	results := make(map[string]*out)
	names := []string{"mcf", "xalancbmk", "namd", "nab", "deepsjeng", "bwaves", "imgdnn", "gcc"}
	done := make(chan struct{}, len(names))
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	for _, name := range names {
		name := name
		go func() {
			defer func() { done <- struct{}{} }()
			w := ByName(name)
			cfg := sim.DefaultConfig()
			cfg.Core.MaxInsts = insts
			pipe := sim.AnalyzeTrain(w.Build(Train), w.Build(Train), cfg, crisp.DefaultOptions())
			o := &out{}
			o.base = sim.Run(w.Build(Ref), cfg.WithSched(core.SchedOldestFirst))
			o.crisp = sim.Run(pipe.Tagged(w.Build(Ref)), cfg.WithSched(core.SchedCRISP))
			ic := cfg.WithSched(core.SchedCRISP)
			ic.IBDA = &ibda.Config{ISTEntries: 1024, ISTWays: 4, DLTEntries: 32}
			o.ibda = sim.Run(w.Build(Ref), ic)
			<-mu
			results[name] = o
			mu <- struct{}{}
		}()
	}
	for range names {
		<-done
	}

	gain := func(name string) float64 {
		o := results[name]
		return (o.crisp.IPC()/o.base.IPC() - 1) * 100
	}
	ibdaGain := func(name string) float64 {
		o := results[name]
		return (o.ibda.IPC()/o.base.IPC() - 1) * 100
	}

	// Irregular-memory workloads gain measurably.
	for _, name := range []string{"mcf", "xalancbmk", "namd", "gcc"} {
		if g := gain(name); g < 1.5 {
			t.Errorf("%s: CRISP gain %.2f%%, want >= 1.5%%", name, g)
		}
	}
	// Branch-bound workloads gain through branch slices.
	for _, name := range []string{"nab", "deepsjeng"} {
		if g := gain(name); g < 1.0 {
			t.Errorf("%s: branch-slice gain %.2f%%, want >= 1%%", name, g)
		}
	}
	// High-MLP streaming and compute-bound workloads are (correctly) left
	// nearly untouched.
	for _, name := range []string{"bwaves", "imgdnn"} {
		if g := gain(name); g < -1 || g > 2 {
			t.Errorf("%s: gain %.2f%%, want ~0", name, g)
		}
	}
	// The largest chase gain exceeds the flat workloads clearly.
	if gain("mcf") < gain("bwaves")+3 {
		t.Errorf("mcf (%.2f%%) does not clearly exceed bwaves (%.2f%%)",
			gain("mcf"), gain("bwaves"))
	}
	// Branch slices are a CRISP-only capability: on the branch-bound apps
	// CRISP at least matches hardware IBDA.
	for _, name := range []string{"nab", "deepsjeng"} {
		if gain(name) < ibdaGain(name)-1 {
			t.Errorf("%s: CRISP %.2f%% clearly below IBDA %.2f%%", name, gain(name), ibdaGain(name))
		}
	}
}
