package cache

import (
	"fmt"

	"crisp/internal/codec"
)

// This file serializes warmed cache tag/LRU state for the persistent
// checkpoint store. Geometry is not encoded: the store keys checkpoint
// sets by hierarchy configuration, and the decoder rebuilds structure
// from the same HierConfig the warmer used, so only the warm contents —
// lines and the LRU clock — travel. MSHRs, statistics and attachments
// are per-window state that CloneState already resets; they are never
// warm at capture time and are not encoded.

// line flag bits in the encoded form.
const (
	lineValid = 1 << iota
	lineDirty
	linePrefetched
)

// EncodeState serializes the level's warmed lines and LRU clock.
func (c *Cache) EncodeState(w *codec.Writer) {
	w.U32(uint32(len(c.lines)))
	for i := range c.lines {
		ln := &c.lines[i]
		var flags uint8
		if ln.valid {
			flags |= lineValid
		}
		if ln.dirty {
			flags |= lineDirty
		}
		if ln.prefetched {
			flags |= linePrefetched
		}
		w.U64(ln.tag)
		w.U8(flags)
		w.U64(ln.readyAt)
		w.U64(ln.lru)
		w.I8(ln.fillDepth)
	}
	w.U64(c.lruClock)
}

// DecodeState overwrites the level's lines and LRU clock with encoded
// warm state. The line count must match this cache's geometry — the
// caller builds the hierarchy from the config the state was warmed with.
func (c *Cache) DecodeState(r *codec.Reader) error {
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(c.lines) {
		return fmt.Errorf("cache: %s encoded with %d lines, geometry has %d", c.cfg.Name, n, len(c.lines))
	}
	for i := range c.lines {
		tag := r.U64()
		flags := r.U8()
		readyAt := r.U64()
		lru := r.U64()
		fillDepth := r.I8()
		c.lines[i] = line{
			tag:        tag,
			valid:      flags&lineValid != 0,
			dirty:      flags&lineDirty != 0,
			prefetched: flags&linePrefetched != 0,
			readyAt:    readyAt,
			lru:        lru,
			fillDepth:  fillDepth,
		}
	}
	c.lruClock = r.U64()
	return r.Err()
}

// EncodeState serializes the hierarchy's warmed state: the three levels'
// lines and LRU clocks. The geometry (cfg) is carried out of band by the
// checkpoint codec.
func (h *Hierarchy) EncodeState(w *codec.Writer) {
	h.L1I.EncodeState(w)
	h.L1D.EncodeState(w)
	h.LLC.EncodeState(w)
}

// DecodeHierarchy builds a fresh hierarchy from cfg and overlays encoded
// warm state onto its levels. Timing state (MSHRs, DRAM, statistics) is
// fresh, exactly as Hierarchy.Clone hands to a detailed window.
func DecodeHierarchy(r *codec.Reader, cfg HierConfig) (*Hierarchy, error) {
	h := NewHierarchy(cfg)
	for _, c := range []*Cache{h.L1I, h.L1D, h.LLC} {
		if err := c.DecodeState(r); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// EncodeState serializes the shared hierarchy's warmed state: every
// view's private L1I/L1D, then the one shared LLC exactly once. The
// view count and geometry travel out of band with the checkpoint codec.
func (sh *SharedHierarchy) EncodeState(w *codec.Writer) {
	w.U32(uint32(len(sh.Views)))
	for _, v := range sh.Views {
		v.L1I.EncodeState(w)
		v.L1D.EncodeState(w)
	}
	sh.LLC.EncodeState(w)
}

// DecodeSharedHierarchy builds a fresh n-core shared hierarchy from cfg
// and overlays encoded warm state onto every private L1 and the shared
// LLC. Timing state is fresh, as SharedHierarchy.CloneState hands to a
// detailed window.
func DecodeSharedHierarchy(r *codec.Reader, cfg HierConfig, n int) (*SharedHierarchy, error) {
	got := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if got != n {
		return nil, fmt.Errorf("cache: shared hierarchy encoded with %d views, want %d", got, n)
	}
	sh := NewSharedHierarchy(cfg, n)
	for _, v := range sh.Views {
		if err := v.L1I.DecodeState(r); err != nil {
			return nil, err
		}
		if err := v.L1D.DecodeState(r); err != nil {
			return nil, err
		}
	}
	if err := sh.LLC.DecodeState(r); err != nil {
		return nil, err
	}
	return sh, nil
}
