package cache

import "crisp/internal/dram"

// ServedBy identifies the level that serviced a data access.
type ServedBy int8

// Service levels for data accesses.
const (
	ServedL1 ServedBy = iota
	ServedLLC
	ServedDRAM
)

func (s ServedBy) String() string {
	switch s {
	case ServedL1:
		return "L1"
	case ServedLLC:
		return "LLC"
	default:
		return "DRAM"
	}
}

// HierConfig configures the Table 1 memory hierarchy.
type HierConfig struct {
	L1I  Config
	L1D  Config
	LLC  Config
	DRAM dram.Config
}

// DefaultHierConfig returns the Table 1 uncore: 32 KiB 8-way L1I (3-cycle)
// and L1D (4-cycle), 1 MiB 20-way LLC (36-cycle), DDR4-2400 single channel.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1I:  Config{Name: "L1I", SizeKiB: 32, Ways: 8, Latency: 3, MSHRs: 8},
		L1D:  Config{Name: "L1D", SizeKiB: 32, Ways: 8, Latency: 4, MSHRs: 16},
		LLC:  Config{Name: "LLC", SizeKiB: 1024, Ways: 20, Latency: 36, MSHRs: 32},
		DRAM: dram.DefaultConfig(),
	}
}

// Hierarchy wires L1I and L1D over a shared LLC over DRAM, tracks
// outstanding long-latency misses for MLP measurement, and attributes
// per-level service for profiling.
//
// A Hierarchy is either private (the single-core case: it owns every
// level, req is -1) or a per-core view of a SharedHierarchy (L1I/L1D are
// private, LLC and Mem are shared with the sibling views; req identifies
// this core to the shared levels and base offsets its addresses into a
// disjoint slice of the shared physical address space).
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	LLC *Cache
	Mem *dram.DRAM

	cfg HierConfig

	req  int    // requester index at the shared LLC/DRAM; -1 = private
	base uint64 // physical-address offset for this core's view

	// outstanding completion cycles of in-flight DRAM-served loads, used
	// to approximate memory-level parallelism at miss time (Section 3.2).
	outstanding []uint64
}

// NewHierarchy builds a private single-core hierarchy from cfg.
func NewHierarchy(cfg HierConfig) *Hierarchy {
	mem := dram.New(cfg.DRAM)
	llc := New(cfg.LLC, mem)
	return &Hierarchy{
		L1I: New(cfg.L1I, llc),
		L1D: New(cfg.L1D, llc),
		LLC: llc,
		Mem: mem,
		cfg: cfg,
		req: -1,
	}
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() HierConfig { return h.cfg }

// Activate routes shared-level statistics and miss observers to this view's
// requester. The multi-core driver calls it before stepping each core; it
// is a no-op on a private hierarchy, so core code can call it
// unconditionally.
func (h *Hierarchy) Activate() {
	if h.req < 0 {
		return
	}
	h.LLC.SetRequester(h.req)
	h.Mem.SetRequester(h.req)
}

// SetMissObserver registers an LLC primary-miss callback for this view:
// directly on a private LLC, per-requester on a shared one.
func (h *Hierarchy) SetMissObserver(f func(pc, lineAddr uint64)) {
	if h.req < 0 {
		h.LLC.SetMissObserver(f)
		return
	}
	h.LLC.SetRequesterMissObserver(h.req, f)
}

// LLCStats returns this view's share of LLC activity (all of it on a
// private hierarchy).
func (h *Hierarchy) LLCStats() Stats {
	if h.req < 0 {
		return h.LLC.Stats()
	}
	return h.LLC.RequesterStats(h.req)
}

// DRAMStats returns this view's share of DRAM activity.
func (h *Hierarchy) DRAMStats() dram.Stats {
	if h.req < 0 {
		return h.Mem.Stats()
	}
	return h.Mem.RequesterStats(h.req)
}

// SharedHierarchy is the multi-core memory system: one LLC and one DRAM
// contended by n cores, each of which sees its own Hierarchy view with
// private L1I/L1D. Core i's addresses are offset by i<<40 — cores run
// disjoint address spaces (no coherence traffic to model) but collide in
// the shared LLC index and DRAM banks exactly as co-located processes do.
// View 0 has base 0, so a 1-core SharedHierarchy times identically to a
// private Hierarchy.
type SharedHierarchy struct {
	Views []*Hierarchy
	LLC   *Cache
	Mem   *dram.DRAM
}

// coreAddrStride separates per-core address spaces. A power of two far
// above any workload footprint: it is a multiple of every power-of-two
// cache-set span and of RowBytes×Banks, so each core's *intra*-core set
// and bank mapping is unchanged by the offset.
const coreAddrStride = uint64(1) << 40

// NewSharedHierarchy builds one shared LLC+DRAM and n per-core views.
func NewSharedHierarchy(cfg HierConfig, n int) *SharedHierarchy {
	mem := dram.New(cfg.DRAM)
	mem.SetRequesters(n)
	llc := New(cfg.LLC, mem)
	llc.SetRequesters(n)
	sh := &SharedHierarchy{LLC: llc, Mem: mem, Views: make([]*Hierarchy, n)}
	for i := 0; i < n; i++ {
		sh.Views[i] = &Hierarchy{
			L1I:  New(cfg.L1I, llc),
			L1D:  New(cfg.L1D, llc),
			LLC:  llc,
			Mem:  mem,
			cfg:  cfg,
			req:  i,
			base: uint64(i) * coreAddrStride,
		}
	}
	return sh
}

// WarmData warms the data path for addr: a tags-only touch of L1D,
// recursing into the LLC on an L1D miss. No timing, no statistics. It
// reports whether L1D already held the line, which checkpoint capture
// feeds to prefetcher training as the hit flag.
func (h *Hierarchy) WarmData(addr uint64, write bool) (l1hit bool) {
	addr += h.base
	if h.L1D.Warm(addr, write) {
		return true
	}
	h.LLC.Warm(addr, write)
	return false
}

// WarmDataShared warms the data path for a co-scheduled multi-core
// capture: like WarmData, but a store that hits L1D also dirties the
// shared LLC's copy of the line. The timed hierarchy delivers that
// dirtiness when the dirty L1D line is written back on eviction;
// tags-only warming drops L1 victims silently, so without the
// propagation the shared LLC a multi-core window restores from holds no
// dirty lines and the window performs no writebacks — erasing the DRAM
// write-bus traffic (roughly half of a streaming store neighbour's
// bandwidth) whose contention co-scheduled capture exists to model. The
// single-core warming path keeps the historical tags-only behaviour,
// pinned by the golden figures.
func (h *Hierarchy) WarmDataShared(addr uint64, write bool) (l1hit bool) {
	addr += h.base
	if h.L1D.Warm(addr, write) {
		if write {
			h.LLC.MarkDirty(addr)
		}
		return true
	}
	h.LLC.Warm(addr, write)
	return false
}

// WarmPrefetch installs a prefetched line tags-only into L1D (and into
// the LLC when L1D did not already hold it), mirroring where a demand-
// level prefetch fill would land. Checkpoint capture uses it so a warmed
// variant's cache content includes the prefetched-line population that
// dedups most suggestions in a steady-state detailed run.
func (h *Hierarchy) WarmPrefetch(addr uint64) {
	addr += h.base
	if !h.L1D.WarmPrefetch(addr) {
		h.LLC.WarmPrefetch(addr)
	}
}

// WarmInst warms the instruction path for the code line at addr.
func (h *Hierarchy) WarmInst(addr uint64) {
	addr += h.base
	if !h.L1I.Warm(addr, false) {
		h.LLC.Warm(addr, false)
	}
}

// Clone returns a hierarchy carrying this one's warmed tag/LRU state over
// fresh timing state: empty MSHRs, a fresh DRAM, no prefetchers or miss
// observers, zeroed statistics. Each detailed sampling window restores
// into its own clone.
func (h *Hierarchy) Clone() *Hierarchy {
	mem := dram.New(h.cfg.DRAM)
	llc := h.LLC.CloneState(mem)
	return &Hierarchy{
		L1I: h.L1I.CloneState(llc),
		L1D: h.L1D.CloneState(llc),
		LLC: llc,
		Mem: mem,
		cfg: h.cfg,
		req: -1,
	}
}

// CloneState returns a shared hierarchy carrying this one's warmed
// tag/LRU state — every view's private L1s plus the one shared LLC —
// over fresh timing state: empty MSHRs, a fresh DRAM, no prefetchers or
// miss observers, zeroed per-requester statistics. Each detailed
// multi-core sampling window restores into its own clone, exactly as
// Hierarchy.Clone serves the single-core windows.
func (sh *SharedHierarchy) CloneState() *SharedHierarchy {
	n := len(sh.Views)
	cfg := sh.Views[0].cfg
	mem := dram.New(cfg.DRAM)
	mem.SetRequesters(n)
	llc := sh.LLC.CloneState(mem)
	llc.SetRequesters(n)
	out := &SharedHierarchy{LLC: llc, Mem: mem, Views: make([]*Hierarchy, n)}
	for i, v := range sh.Views {
		out.Views[i] = &Hierarchy{
			L1I:  v.L1I.CloneState(llc),
			L1D:  v.L1D.CloneState(llc),
			LLC:  llc,
			Mem:  mem,
			cfg:  cfg,
			req:  i,
			base: uint64(i) * coreAddrStride,
		}
	}
	return out
}

// Data services a demand data access for the instruction at pc and returns
// the completion cycle and serving level.
func (h *Hierarchy) Data(pc, addr uint64, write bool, cycle uint64) (done uint64, by ServedBy) {
	done, depth := h.L1D.AccessPC(pc, addr+h.base, write, cycle)
	switch {
	case depth <= 0:
		by = ServedL1
	case depth == 1:
		by = ServedLLC
	default:
		by = ServedDRAM
		h.trackMiss(done, cycle)
	}
	return done, by
}

// Inst services an instruction-fetch access for the code line at addr.
func (h *Hierarchy) Inst(addr uint64, cycle uint64) (done uint64, hit bool) {
	done, depth := h.L1I.AccessPC(NoPC, addr+h.base, false, cycle)
	return done, depth == 0
}

// PrefetchInst requests an instruction line fill (FDIP).
func (h *Hierarchy) PrefetchInst(addr uint64, cycle uint64) { h.L1I.Prefetch(addr+h.base, cycle) }

func (h *Hierarchy) trackMiss(done, cycle uint64) {
	// Prune completed entries opportunistically.
	live := h.outstanding[:0]
	for _, d := range h.outstanding {
		if d > cycle {
			live = append(live, d)
		}
	}
	h.outstanding = append(live, done)
}

// OutstandingMisses returns the number of DRAM-served loads still in
// flight at the given cycle, including any that started this cycle. This
// is the MLP proxy used by the delinquent-load classifier.
func (h *Hierarchy) OutstandingMisses(cycle uint64) int {
	n := 0
	for _, d := range h.outstanding {
		if d > cycle {
			n++
		}
	}
	return n
}
