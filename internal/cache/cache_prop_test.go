package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestLRUOrderProperty: within one set, after any access sequence, the
// resident lines are exactly the most recently used distinct lines.
func TestLRUOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mem := &flatMem{latency: 10}
		// 1 KiB, 2-way, 64B lines => 8 sets. Set 0 addresses: multiples of
		// 512 bytes.
		c := small(mem)
		const ways = 2
		var accessOrder []uint64 // line addresses, most recent last
		cycle := uint64(0)
		for step := 0; step < 100; step++ {
			line := uint64(r.Intn(6)) * 512 // 6 distinct lines in set 0
			cycle += 1000                   // let fills complete
			c.AccessPC(1, line, false, cycle)
			// Update reference LRU order.
			for i, a := range accessOrder {
				if a == line {
					accessOrder = append(accessOrder[:i], accessOrder[i+1:]...)
					break
				}
			}
			accessOrder = append(accessOrder, line)
			// The `ways` most recent lines must be resident.
			start := len(accessOrder) - ways
			if start < 0 {
				start = 0
			}
			for _, a := range accessOrder[start:] {
				if !c.Contains(a) {
					return false
				}
			}
			// Anything older must be absent.
			for _, a := range accessOrder[:start] {
				if c.Contains(a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestWriteReadConsistencyProperty: dirty state never lingers after an
// eviction — every dirty eviction produces exactly one backend write.
func TestDirtyEvictionAccounting(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mem := &flatMem{latency: 10}
		c := small(mem)
		cycle := uint64(0)
		writes := 0
		for step := 0; step < 300; step++ {
			cycle += 1000
			line := uint64(r.Intn(8)) * 512
			if r.Intn(2) == 0 {
				c.AccessPC(1, line, true, cycle)
				writes++
			} else {
				c.AccessPC(1, line, false, cycle)
			}
		}
		s := c.Stats()
		// Backend writes == recorded writebacks, and never more than the
		// number of demand writes performed.
		return mem.writes == int(s.Writebacks) && int(s.Writebacks) <= writes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestHierarchyMonotonicLatency: deeper service levels never complete
// faster than shallower ones could.
func TestHierarchyServiceLevelLatency(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	var l1Max, llcMin, llcMax, dramMin uint64 = 0, ^uint64(0), 0, ^uint64(0)
	r := rand.New(rand.NewSource(7))
	cycle := uint64(0)
	for i := 0; i < 3000; i++ {
		cycle += 500
		addr := uint64(r.Intn(1<<21)) &^ 7
		done, by := h.Data(1, addr, false, cycle)
		lat := done - cycle
		switch by {
		case ServedL1:
			if lat > l1Max {
				l1Max = lat
			}
		case ServedLLC:
			if lat < llcMin {
				llcMin = lat
			}
			if lat > llcMax {
				llcMax = lat
			}
		case ServedDRAM:
			if lat < dramMin {
				dramMin = lat
			}
		}
	}
	if l1Max > 4 {
		t.Errorf("L1 hit latency up to %d, want <= 4", l1Max)
	}
	if llcMin != ^uint64(0) && llcMin <= 4 {
		t.Errorf("LLC service as fast as L1: %d", llcMin)
	}
	if dramMin != ^uint64(0) && llcMax != 0 && dramMin <= 40 {
		t.Errorf("DRAM service latency %d implausibly low", dramMin)
	}
}
