package cache

import (
	"testing"
	"testing/quick"

	"crisp/internal/dram"
)

// flatMem is a fixed-latency test backend.
type flatMem struct {
	latency  uint64
	accesses int
	writes   int
}

func (m *flatMem) Access(_ uint64, write bool, cycle uint64) uint64 {
	m.accesses++
	if write {
		m.writes++
	}
	return cycle + m.latency
}

func small(next Backend) *Cache {
	return New(Config{Name: "t", SizeKiB: 1, Ways: 2, Latency: 2, MSHRs: 4}, next)
}

func TestMissThenHit(t *testing.T) {
	mem := &flatMem{latency: 100}
	c := small(mem)
	done, depth := c.AccessPC(1, 0x1000, false, 0)
	if depth != 1 {
		t.Errorf("first access depth = %d, want 1 (miss)", depth)
	}
	if done != 102 { // latency 2 added before backend
		t.Errorf("miss done = %d, want 102", done)
	}
	done, depth = c.AccessPC(1, 0x1008, false, 200) // same line
	if depth != 0 || done != 202 {
		t.Errorf("hit = done %d depth %d, want 202, 0", done, depth)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 || s.Accesses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestMSHRMergesSameLine(t *testing.T) {
	mem := &flatMem{latency: 100}
	c := small(mem)
	done1, _ := c.AccessPC(1, 0x1000, false, 0)
	done2, depth := c.AccessPC(2, 0x1010, false, 5) // same line, still in flight
	if mem.accesses != 1 {
		t.Errorf("backend accesses = %d, want 1 (merged)", mem.accesses)
	}
	if done2 != done1 {
		t.Errorf("merged done = %d, want %d", done2, done1)
	}
	if depth != 1 {
		t.Errorf("merged depth = %d, want 1", depth)
	}
	if s := c.Stats(); s.MergedMisses != 1 {
		t.Errorf("merged misses = %d", s.MergedMisses)
	}
}

func TestHitUnderFill(t *testing.T) {
	mem := &flatMem{latency: 100}
	c := small(mem)
	done1, _ := c.AccessPC(1, 0x1000, false, 0)
	// An access before data arrival merges with the in-flight fill: it is
	// attributed to the fill's level and completes no earlier than it.
	done2, depth := c.AccessPC(1, 0x1000, false, done1-10)
	if depth != 1 {
		t.Errorf("depth = %d, want 1 (served by fill level)", depth)
	}
	if done2 < done1 {
		t.Errorf("hit-under-fill done %d before fill %d", done2, done1)
	}
	// After the fill lands it is a plain hit.
	done3, depth := c.AccessPC(1, 0x1000, false, done1+10)
	if depth != 0 || done3 != done1+12 {
		t.Errorf("post-fill access = done %d depth %d", done3, depth)
	}
}

func TestLRUEviction(t *testing.T) {
	mem := &flatMem{latency: 10}
	c := small(mem)                                           // 1 KiB, 2-way, 64B lines => 8 sets; set stride 512B
	a, b, e := uint64(0x0000), uint64(0x0200), uint64(0x0400) // same set
	c.AccessPC(1, a, false, 0)
	c.AccessPC(1, b, false, 100)
	c.AccessPC(1, a, false, 200) // a MRU
	c.AccessPC(1, e, false, 300) // evicts b
	if !c.Contains(a) || !c.Contains(e) {
		t.Errorf("a/e not resident")
	}
	if c.Contains(b) {
		t.Errorf("LRU line b survived")
	}
}

func TestWritebackOnDirtyEvict(t *testing.T) {
	mem := &flatMem{latency: 10}
	c := small(mem)
	c.AccessPC(1, 0x0000, true, 0) // write-allocate, dirty
	c.AccessPC(1, 0x0200, false, 100)
	c.AccessPC(1, 0x0400, false, 200) // evicts dirty 0x0000
	if s := c.Stats(); s.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", s.Writebacks)
	}
	if mem.writes != 1 {
		t.Errorf("backend writes = %d, want 1", mem.writes)
	}
}

func TestMSHRCapacityDelaysMisses(t *testing.T) {
	mem := &flatMem{latency: 1000}
	c := New(Config{Name: "t", SizeKiB: 64, Ways: 4, Latency: 2, MSHRs: 2}, mem)
	c.AccessPC(1, 0x10000, false, 0)
	c.AccessPC(1, 0x20000, false, 0)
	done3, _ := c.AccessPC(1, 0x30000, false, 0) // must wait for an MSHR
	if done3 <= 1002 {
		t.Errorf("third miss done = %d, should be delayed past first completions", done3)
	}
	if s := c.Stats(); s.MSHRStalls == 0 {
		t.Errorf("no MSHR stalls recorded")
	}
}

func TestPrefetchInstallsLine(t *testing.T) {
	mem := &flatMem{latency: 100}
	c := small(mem)
	c.Prefetch(0x1000, 0)
	if s := c.Stats(); s.Prefetches != 1 {
		t.Errorf("prefetches = %d", s.Prefetches)
	}
	// Demand after fill: hit, counted as prefetch hit.
	_, depth := c.AccessPC(1, 0x1000, false, 500)
	if depth != 0 {
		t.Errorf("post-prefetch access depth = %d, want hit", depth)
	}
	if s := c.Stats(); s.PrefetchHits != 1 {
		t.Errorf("prefetch hits = %d", s.PrefetchHits)
	}
	// Prefetching a resident line is a no-op.
	c.Prefetch(0x1000, 600)
	if s := c.Stats(); s.Prefetches != 1 {
		t.Errorf("redundant prefetch issued")
	}
}

func TestMissObserverFiltersNoPC(t *testing.T) {
	mem := &flatMem{latency: 10}
	c := small(mem)
	var pcs []uint64
	c.SetMissObserver(func(pc, _ uint64) { pcs = append(pcs, pc) })
	c.AccessPC(42, 0x1000, false, 0)
	c.Access(0x2000, false, 0) // NoPC
	c.Prefetch(0x3000, 0)
	if len(pcs) != 1 || pcs[0] != 42 {
		t.Errorf("observed pcs = %v, want [42]", pcs)
	}
}

type recordingPF struct{ got []uint64 }

func (p *recordingPF) OnAccess(_, addr uint64, _ bool) []uint64 {
	p.got = append(p.got, addr)
	return []uint64{addr + 64}
}

func TestPrefetcherFiresAndFills(t *testing.T) {
	mem := &flatMem{latency: 50}
	c := small(mem)
	pf := &recordingPF{}
	c.SetPrefetcher(pf)
	c.AccessPC(1, 0x1000, false, 0)
	if len(pf.got) != 1 {
		t.Fatalf("prefetcher saw %d accesses", len(pf.got))
	}
	// The next line should have been prefetched.
	if s := c.Stats(); s.Prefetches != 1 {
		t.Errorf("prefetches = %d, want 1", s.Prefetches)
	}
	_, depth := c.AccessPC(1, 0x1040, false, 1000)
	if depth != 0 {
		t.Errorf("prefetched next line missed")
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	_, by := h.Data(7, 0x100000, false, 0)
	if by != ServedDRAM {
		t.Errorf("cold access served by %v, want DRAM", by)
	}
	_, by = h.Data(7, 0x100000, false, 10000)
	if by != ServedL1 {
		t.Errorf("warm access served by %v, want L1", by)
	}
	// Evict from tiny L1 (32 KiB, 8 ways, 64 sets): 9 lines in one set.
	for i := 0; i < 9; i++ {
		h.Data(7, 0x200000+uint64(i)*32*1024, false, uint64(20000+i*1000))
	}
	_, by = h.Data(7, 0x200000, false, 50000)
	if by != ServedLLC {
		t.Errorf("L1-evicted line served by %v, want LLC", by)
	}
}

func TestHierarchyMLPTracking(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	// Issue 4 independent misses in the same cycle window.
	for i := 0; i < 4; i++ {
		h.Data(1, uint64(0x100000+i*1<<16), false, 10)
	}
	if got := h.OutstandingMisses(20); got != 4 {
		t.Errorf("outstanding = %d, want 4", got)
	}
	if got := h.OutstandingMisses(1 << 30); got != 0 {
		t.Errorf("outstanding after drain = %d, want 0", got)
	}
}

func TestHierarchyInstPath(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	_, hit := h.Inst(0x400000, 0)
	if hit {
		t.Errorf("cold ifetch hit")
	}
	_, hit = h.Inst(0x400000, 5000)
	if !hit {
		t.Errorf("warm ifetch missed")
	}
	h.PrefetchInst(0x400040, 6000)
	_, hit = h.Inst(0x400040, 9000)
	if !hit {
		t.Errorf("FDIP-prefetched line missed")
	}
}

// Property: completion never precedes issue + hit latency, and a second
// access to the same address at a later cycle is never slower than DRAM.
func TestCacheTimingProperty(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	var cycle uint64
	f := func(addr uint32, gap uint16) bool {
		cycle += uint64(gap)
		done, _ := h.Data(1, uint64(addr), false, cycle)
		if done < cycle+4 {
			return false
		}
		done2, _ := h.Data(1, uint64(addr), false, done+1)
		return done2 >= done+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMissRate(t *testing.T) {
	mem := &flatMem{latency: 10}
	c := small(mem)
	c.AccessPC(1, 0x1000, false, 0)
	c.AccessPC(1, 0x1000, false, 100)
	c.AccessPC(1, 0x1000, false, 200)
	c.AccessPC(1, 0x1000, false, 300)
	s := c.Stats()
	if got := s.MissRate(); got != 0.25 {
		t.Errorf("miss rate = %v, want 0.25", got)
	}
}

func TestHierarchyWithRealDRAMLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	done, by := h.Data(1, 0x500000, false, 0)
	if by != ServedDRAM {
		t.Fatalf("served by %v", by)
	}
	// L1(4) + LLC(36) + DRAM(min ~72) >= 110 cycles.
	min := uint64(4+36) + dram.New(dram.DefaultConfig()).MinReadLatency()
	if done < min-20 {
		t.Errorf("DRAM access done = %d, suspiciously fast (min ~%d)", done, min)
	}
	if done > 600 {
		t.Errorf("DRAM access done = %d, suspiciously slow", done)
	}
}

// The LRU clock was a uint32: after ~4B touches it wrapped, giving newly
// touched lines *smaller* timestamps than stale ones and inverting every
// subsequent victim choice. Seed the clock at the old wrap point and check
// the least-recently-used line is still the one evicted.
func TestLRUClockWraparound(t *testing.T) {
	mem := &flatMem{latency: 100}
	c := small(mem)
	c.lruClock = 1<<32 - 2 // A's touch gets the last value a uint32 could hold

	// Three lines in the same 2-way set: A, then B (whose touch crosses the
	// old uint32 boundary), then C, which must evict A — the oldest. With a
	// wrapping clock B's timestamp would be 0, making B the victim instead.
	const a, b2, c3 = 0x0000, 0x0200, 0x0400
	c.AccessPC(1, a, false, 0)
	c.AccessPC(1, b2, false, 1000)
	c.AccessPC(1, c3, false, 2000)

	if c.lruClock <= 1<<32-1 {
		t.Fatalf("lruClock = %d, did not cross the old uint32 limit", c.lruClock)
	}
	if c.Contains(a) {
		t.Errorf("line A resident: LRU victim selection inverted across clock wrap")
	}
	if !c.Contains(b2) || !c.Contains(c3) {
		t.Errorf("resident lines: B=%v C=%v, want both (A should have been evicted)",
			c.Contains(b2), c.Contains(c3))
	}
}
