// Package cache implements the simulated multi-level cache hierarchy:
// set-associative write-back caches with LRU replacement, MSHRs that merge
// and bound outstanding misses, and prefetcher attachment points. Caches
// are latency-returning: Access reports when the requested data is
// available, threading timing through to the DRAM backend.
package cache

// Backend is anything that can service a line request: the next cache
// level or DRAM.
type Backend interface {
	// Access requests the line containing addr at the given cycle and
	// returns the completion cycle.
	Access(addr uint64, write bool, cycle uint64) uint64
}

// NoPC marks an access without instruction attribution (prefetch fills,
// write-backs).
const NoPC = ^uint64(0)

// pcBackend is implemented by cache levels that accept PC-attributed
// accesses, letting demand misses keep their attribution as they descend
// the hierarchy.
type pcBackend interface {
	AccessPC(pc, addr uint64, write bool, cycle uint64) (done uint64, depth int8)
}

// Prefetcher observes demand accesses at a cache level and proposes line
// addresses to prefetch. Implementations live in the prefetch package.
type Prefetcher interface {
	// OnAccess is called for each demand access with the access PC, the
	// byte address, and whether it hit. It returns byte addresses whose
	// lines should be prefetched. The returned slice may alias internal
	// scratch storage and is valid only until the next OnAccess call.
	OnAccess(pc, addr uint64, hit bool) []uint64
}

// Config describes one cache level.
type Config struct {
	Name     string
	SizeKiB  int
	Ways     int
	LineSize int // bytes; 64 throughout
	Latency  int // hit latency in cycles
	MSHRs    int // max outstanding misses
}

// Stats counts cache activity at one level.
type Stats struct {
	Accesses     uint64
	Hits         uint64
	Misses       uint64 // primary misses (excluding MSHR merges)
	MergedMisses uint64 // secondary misses merged into an outstanding MSHR
	Writebacks   uint64
	Prefetches   uint64 // prefetch fills issued
	PrefetchHits uint64 // demand hits on prefetched-not-yet-referenced lines
	PrefetchLate uint64 // demand hits on in-flight prefetched lines
	MSHRStalls   uint64 // cycles added waiting for a free MSHR
}

// Add accumulates another level snapshot into s (sampled-window
// aggregation).
func (s *Stats) Add(o *Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.MergedMisses += o.MergedMisses
	s.Writebacks += o.Writebacks
	s.Prefetches += o.Prefetches
	s.PrefetchHits += o.PrefetchHits
	s.PrefetchLate += o.PrefetchLate
	s.MSHRStalls += o.MSHRStalls
}

// MissRate returns misses (incl. merged) / accesses.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses+s.MergedMisses) / float64(s.Accesses)
}

type line struct {
	tag        uint64
	valid      bool
	dirty      bool
	readyAt    uint64 // fill completion time (hit-under-fill)
	lru        uint64 // touch timestamp; 64-bit so it never wraps
	prefetched bool   // filled by prefetch, not yet demand-referenced
	fillDepth  int8   // levels below that served the fill
}

// Cache is one set-associative level. A level shared between cores (the
// multi-core LLC) keeps one set of tags, MSHRs, and timing state — every
// requester contends for them — but routes statistics and miss-observer
// callbacks to the active requester (SetRequesters/SetRequester).
type Cache struct {
	cfg      Config
	sets     int
	lineBits uint
	lines    []line // sets*ways
	lruClock uint64 // uint32 wrapped after ~4B touches, inverting LRU order
	next     Backend
	pf       Prefetcher
	mshr     map[uint64]mshrEntry // line addr -> in-flight miss
	stats    Stats
	cur      *Stats  // increment target: &stats, or the active requester's slot
	perReq   []Stats // per-requester counters when shared (SetRequesters)
	req      int     // active requester index

	// lastLevel marks the LLC: its misses are reported to miss observers
	// (per-PC profiling, IBDA's delinquent load table).
	missObs func(pc, lineAddr uint64)
	perObs  []func(pc, lineAddr uint64) // per-requester observers when shared
}

// New returns a cache level in front of next.
func New(cfg Config, next Backend) *Cache {
	if cfg.LineSize == 0 {
		cfg.LineSize = 64
	}
	lines := cfg.SizeKiB * 1024 / cfg.LineSize
	sets := lines / cfg.Ways
	if sets < 1 {
		sets = 1
	}
	if cfg.MSHRs == 0 {
		cfg.MSHRs = 16
	}
	c := &Cache{
		cfg:   cfg,
		sets:  sets,
		lines: make([]line, sets*cfg.Ways),
		next:  next,
		mshr:  make(map[uint64]mshrEntry),
	}
	c.cur = &c.stats
	for ls := cfg.LineSize; ls > 1; ls >>= 1 {
		c.lineBits++
	}
	return c
}

// SetRequesters switches this level to per-requester statistics and miss
// observers for n requesters (cores sharing the LLC). Tags, MSHRs, and
// timing stay shared; only attribution changes. Requester 0 is active.
func (c *Cache) SetRequesters(n int) {
	c.perReq = make([]Stats, n)
	c.perObs = make([]func(pc, lineAddr uint64), n)
	c.cur = &c.perReq[0]
	c.req = 0
}

// SetRequester selects which requester subsequent accesses are attributed
// to. Only valid after SetRequesters.
func (c *Cache) SetRequester(i int) {
	c.req = i
	c.cur = &c.perReq[i]
}

// RequesterStats returns requester i's counters.
func (c *Cache) RequesterStats(i int) Stats { return c.perReq[i] }

// SetRequesterMissObserver registers a primary-miss callback fired only
// for requester i's demand misses at this level.
func (c *Cache) SetRequesterMissObserver(i int, f func(pc, lineAddr uint64)) {
	c.perObs[i] = f
}

// SetPrefetcher attaches a prefetcher to this level.
func (c *Cache) SetPrefetcher(p Prefetcher) { c.pf = p }

// SetMissObserver registers a callback invoked on every primary demand
// miss at this level with the access PC (used at the LLC for profiling and
// for IBDA's delinquent load table).
func (c *Cache) SetMissObserver(f func(pc, lineAddr uint64)) { c.missObs = f }

// Stats returns a copy of this level's counters, summed across requesters
// when per-requester attribution is active.
func (c *Cache) Stats() Stats {
	if c.perReq == nil {
		return c.stats
	}
	sum := c.stats
	for i := range c.perReq {
		sum.Add(&c.perReq[i])
	}
	return sum
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.lineBits << c.lineBits }

func (c *Cache) set(lineAddr uint64) int {
	return int((lineAddr >> c.lineBits) % uint64(c.sets))
}

type mshrEntry struct {
	done  uint64
	depth int8 // levels below this one the miss descended (1 = next level)
}

// Access implements Backend for accesses with no PC attribution.
func (c *Cache) Access(addr uint64, write bool, cycle uint64) uint64 {
	done, _ := c.AccessPC(NoPC, addr, write, cycle)
	return done
}

// AccessPC services a demand access attributed to the instruction at pc.
// It returns the completion cycle and the depth at which the access was
// served: 0 = hit in this cache, 1 = next level, 2 = the level after, etc.
func (c *Cache) AccessPC(pc, addr uint64, write bool, cycle uint64) (done uint64, depth int8) {
	c.cur.Accesses++
	la := c.lineAddr(addr)
	base := c.set(la) * c.cfg.Ways

	// Hit path (including hit-under-fill on an in-flight line).
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == la {
			wasPrefetched := ln.prefetched
			if wasPrefetched {
				ln.prefetched = false
				c.cur.PrefetchHits++
			}
			if write {
				ln.dirty = true
			}
			c.touch(ln)
			done = cycle + uint64(c.cfg.Latency)
			if ln.readyAt > done {
				// The line is still in flight: the access merges with the
				// outstanding fill and is served from the fill's level.
				done = ln.readyAt
				c.cur.MergedMisses++
				if wasPrefetched {
					c.cur.PrefetchLate++
				}
				c.firePrefetch(pc, addr, true, cycle)
				return done, ln.fillDepth
			}
			c.cur.Hits++
			c.firePrefetch(pc, addr, true, cycle)
			return done, 0
		}
	}

	// Secondary miss: merge into outstanding MSHR.
	if pending, ok := c.mshr[la]; ok && pending.done > cycle {
		c.cur.MergedMisses++
		c.firePrefetch(pc, addr, false, cycle)
		if write {
			c.markDirtyAfterFill(la)
		}
		return pending.done, pending.depth
	}

	// Primary miss.
	c.cur.Misses++
	if pc != NoPC {
		if c.missObs != nil {
			c.missObs(pc, la)
		}
		if c.perObs != nil && c.perObs[c.req] != nil {
			c.perObs[c.req](pc, la)
		}
	}
	start := c.mshrAdmit(cycle)
	fillDone, d := c.accessNext(pc, la, start+uint64(c.cfg.Latency))
	c.mshr[la] = mshrEntry{done: fillDone, depth: d}
	c.fill(la, fillDone, d, write, false, cycle)
	c.firePrefetch(pc, addr, false, cycle)
	return fillDone, d
}

// accessNext forwards a miss to the next level, preserving PC attribution
// when the next level supports it, and returns completion and serve depth
// relative to this level.
func (c *Cache) accessNext(pc, la uint64, cycle uint64) (done uint64, depth int8) {
	if nb, ok := c.next.(pcBackend); ok {
		d2, nd := nb.AccessPC(pc, la, false, cycle)
		return d2, nd + 1
	}
	return c.next.Access(la, false, cycle), 1
}

// Prefetch requests a line fill without demand semantics. It is a no-op if
// the line is already present or in flight.
func (c *Cache) Prefetch(addr uint64, cycle uint64) {
	la := c.lineAddr(addr)
	base := c.set(la) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == la {
			return
		}
	}
	if pending, ok := c.mshr[la]; ok && pending.done > cycle {
		return
	}
	start := c.mshrAdmit(cycle)
	fillDone, d := c.accessNext(NoPC, la, start+uint64(c.cfg.Latency))
	c.mshr[la] = mshrEntry{done: fillDone, depth: d}
	c.cur.Prefetches++
	c.fill(la, fillDone, d, false, true, cycle)
}

// firePrefetch runs the attached prefetcher and issues its suggestions.
func (c *Cache) firePrefetch(pc, addr uint64, hit bool, cycle uint64) {
	if c.pf == nil {
		return
	}
	for _, target := range c.pf.OnAccess(pc, addr, hit) {
		c.Prefetch(target, cycle)
	}
}

// mshrAdmit returns the cycle at which a new miss may start, delaying it
// if all MSHRs are occupied, and garbage-collects completed entries.
func (c *Cache) mshrAdmit(cycle uint64) uint64 {
	if len(c.mshr) < c.cfg.MSHRs {
		return cycle
	}
	earliest := ^uint64(0)
	for la, e := range c.mshr {
		if e.done <= cycle {
			delete(c.mshr, la)
		} else if e.done < earliest {
			earliest = e.done
		}
	}
	if len(c.mshr) < c.cfg.MSHRs {
		return cycle
	}
	c.cur.MSHRStalls += earliest - cycle
	// Free the earliest-completing entry: it will have completed by then.
	for la, e := range c.mshr {
		if e.done == earliest {
			delete(c.mshr, la)
			break
		}
	}
	return earliest
}

func (c *Cache) fill(la uint64, readyAt uint64, depth int8, dirty, prefetched bool, cycle uint64) {
	base := c.set(la) * c.cfg.Ways
	victim := 0
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if !ln.valid {
			victim = w
			break
		}
		if ln.lru < c.lines[base+victim].lru {
			victim = w
		}
	}
	v := &c.lines[base+victim]
	if v.valid && v.dirty {
		c.cur.Writebacks++
		c.next.Access(v.tag, true, cycle)
	}
	*v = line{tag: la, valid: true, dirty: dirty, readyAt: readyAt, prefetched: prefetched, fillDepth: depth}
	c.touch(v)
}

func (c *Cache) markDirtyAfterFill(la uint64) {
	base := c.set(la) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == la {
			ln.dirty = true
			return
		}
	}
}

func (c *Cache) touch(ln *line) {
	c.lruClock++
	ln.lru = c.lruClock
}

// MSHROccupancy returns the number of MSHR entries still tracking an
// in-flight miss at the given cycle. Completed entries are garbage
// collected lazily (on admission pressure), so they are excluded here
// rather than trusting len(c.mshr).
func (c *Cache) MSHROccupancy(cycle uint64) int {
	n := 0
	for _, e := range c.mshr {
		if e.done > cycle {
			n++
		}
	}
	return n
}

// Warm touches the line holding addr without any timing or statistics:
// a hit refreshes LRU (and dirtiness on a write), a miss installs the
// line ready-at-cycle-0 over the LRU victim, dropping any dirty victim
// silently (tags only — data lives in emu.Memory). It reports whether
// the line was already resident so hierarchy warming can recurse into
// the next level only on a miss. Used by the sampled-simulation
// functional-warming phase, which precedes the measured window.
func (c *Cache) Warm(addr uint64, write bool) bool {
	la := c.lineAddr(addr)
	base := c.set(la) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == la {
			if write {
				ln.dirty = true
			}
			c.touch(ln)
			return true
		}
	}
	// Same victim choice as fill: first invalid way, else LRU.
	victim := 0
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if !ln.valid {
			victim = w
			break
		}
		if ln.lru < c.lines[base+victim].lru {
			victim = w
		}
	}
	v := &c.lines[base+victim]
	*v = line{tag: la, valid: true, dirty: write}
	c.touch(v)
	return false
}

// WarmPrefetch is the warming counterpart of Prefetch: it installs addr's
// line if absent (same victim choice as fill) and reports whether it was
// already present. Unlike Warm it does not promote a present line,
// mirroring Prefetch's early return on a duplicate suggestion.
func (c *Cache) WarmPrefetch(addr uint64) bool {
	la := c.lineAddr(addr)
	base := c.set(la) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == la {
			return true
		}
	}
	victim := 0
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if !ln.valid {
			victim = w
			break
		}
		if ln.lru < c.lines[base+victim].lru {
			victim = w
		}
	}
	v := &c.lines[base+victim]
	*v = line{tag: la, valid: true}
	c.touch(v)
	return false
}

// CloneState returns a copy of this level's warmed tag/LRU state wired in
// front of next, with fresh (empty) MSHRs, no prefetcher, no miss
// observer, and zeroed statistics. Checkpoint restore clones the warmed
// template once per detailed window so configs sharing a checkpoint never
// see each other's mutations.
func (c *Cache) CloneState(next Backend) *Cache {
	cl := &Cache{
		cfg:      c.cfg,
		sets:     c.sets,
		lineBits: c.lineBits,
		lines:    append([]line(nil), c.lines...),
		lruClock: c.lruClock,
		next:     next,
		mshr:     make(map[uint64]mshrEntry),
	}
	cl.cur = &cl.stats
	return cl
}

// MarkDirty sets the dirty bit on the resident line holding addr, if
// any, without touching LRU, statistics or timing. Co-scheduled warming
// uses it to deliver a store's dirtiness to this level when a higher
// level absorbed the store itself (see Hierarchy.WarmDataShared).
func (c *Cache) MarkDirty(addr uint64) {
	la := c.lineAddr(addr)
	base := c.set(la) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == la {
			ln.dirty = true
			return
		}
	}
}

// Invalidate drops every resident line and resets the LRU clock,
// leaving the level as cold as a fresh build (test hook: the sampling
// equivalence tests cool one level of a warmed checkpoint to prove the
// tolerance check would catch missing warm-up).
func (c *Cache) Invalidate() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.lruClock = 0
}

// Contains reports whether the line holding addr is resident (test hook).
func (c *Cache) Contains(addr uint64) bool {
	la := c.lineAddr(addr)
	base := c.set(la) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == la {
			return true
		}
	}
	return false
}
