package metrics

import (
	"encoding/json"
	"testing"
)

func TestBucketNamesStable(t *testing.T) {
	names := BucketNames()
	if len(names) != NumBuckets {
		t.Fatalf("BucketNames() has %d entries, want %d", len(names), NumBuckets)
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" {
			t.Errorf("bucket %d has no name", i)
		}
		if seen[n] {
			t.Errorf("duplicate bucket name %q", n)
		}
		seen[n] = true
		if Bucket(i).String() != n {
			t.Errorf("Bucket(%d).String() = %q, want %q", i, Bucket(i).String(), n)
		}
	}
	if MemDRAM.String() != "mem_dram" {
		t.Errorf("MemDRAM name = %q", MemDRAM.String())
	}
}

func TestBreakdownTotalsAndFractions(t *testing.T) {
	var b Breakdown
	b.Committed = 60
	b.Stalls[MemDRAM] = 30
	b.Stalls[Frontend] = 10
	if b.Total() != 100 {
		t.Fatalf("Total = %d, want 100", b.Total())
	}
	if b.StallSlots() != 40 {
		t.Errorf("StallSlots = %d, want 40", b.StallSlots())
	}
	if got := b.Frac(MemDRAM); got != 0.3 {
		t.Errorf("Frac(MemDRAM) = %v, want 0.3", got)
	}
	if got := b.CommittedFrac(); got != 0.6 {
		t.Errorf("CommittedFrac = %v, want 0.6", got)
	}
	var zero Breakdown
	if zero.Frac(MemDRAM) != 0 || zero.CommittedFrac() != 0 {
		t.Errorf("zero-value fractions not zero")
	}
}

func TestBreakdownJSONRoundTrip(t *testing.T) {
	var b Breakdown
	b.Committed = 7
	for i := range b.Stalls {
		b.Stalls[i] = uint64(i * 11)
	}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	// Named keys, not positional.
	var m map[string]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["committed"] != 7 || m["mem_dram"] != uint64(MemDRAM)*11 {
		t.Fatalf("marshaled keys wrong: %v", m)
	}
	var got Breakdown
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Errorf("round trip: got %+v want %+v", got, b)
	}
}

func TestHistBucketBoundaries(t *testing.T) {
	var h Hist
	h.Observe(0)       // bucket 0
	h.Observe(1)       // bucket 1
	h.Observe(2)       // bucket 2
	h.Observe(3)       // bucket 2
	h.Observe(4)       // bucket 3
	h.Observe(1 << 40) // clamps to top bucket
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, HistBuckets - 1: 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d count = %d, want %d", i, c, want[i])
		}
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d, want 6", h.Total())
	}
	if h.Sum != 0+1+2+3+4+(1<<40) {
		t.Errorf("Sum = %d", h.Sum)
	}
	for i := 0; i < HistBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo >= hi {
			t.Errorf("bucket %d bounds [%d, %d) empty", i, lo, hi)
		}
		if i > 0 {
			if got := histBucket(lo); got != i {
				t.Errorf("histBucket(%d) = %d, want %d", lo, got, i)
			}
		}
	}
}

func TestHistMeanAndQuantile(t *testing.T) {
	var h Hist
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("empty hist mean/quantile not zero")
	}
	for i := 0; i < 90; i++ {
		h.Observe(4) // bucket 3: [4, 8)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1024) // bucket 11
	}
	if got := h.Mean(); got != (90*4+10*1024)/100.0 {
		t.Errorf("Mean = %v", got)
	}
	if got := h.Quantile(0.5); got != 7 {
		t.Errorf("Quantile(0.5) = %d, want 7 (upper edge of [4,8))", got)
	}
	if got := h.Quantile(0.99); got != 2047 {
		t.Errorf("Quantile(0.99) = %d, want 2047", got)
	}
}

func TestHistAndBreakdownAdd(t *testing.T) {
	var a, b Hist
	a.Observe(5)
	b.Observe(100)
	a.Add(&b)
	if a.Total() != 2 || a.Sum != 105 {
		t.Errorf("Add: total %d sum %d", a.Total(), a.Sum)
	}
	var x, y Breakdown
	x.Committed, y.Committed = 1, 2
	x.Stalls[CoreDep], y.Stalls[CoreDep] = 10, 20
	x.Add(&y)
	if x.Committed != 3 || x.Stalls[CoreDep] != 30 {
		t.Errorf("Breakdown.Add: %+v", x)
	}
	var hs, ho Hists
	hs.LoadLat.Observe(3)
	ho.LoadLat.Observe(4)
	ho.OccROB.Observe(17)
	hs.Add(&ho)
	if hs.LoadLat.Total() != 2 || hs.OccROB.Total() != 1 {
		t.Errorf("Hists.Add: loadlat %d occrob %d", hs.LoadLat.Total(), hs.OccROB.Total())
	}
}
