package metrics

import "fmt"

// CheckPartition verifies the exact-partition invariant a Breakdown is
// built under: every commit slot of every cycle is attributed exactly
// once, so the bucket totals must sum to cycles × width. Figures and CI
// smokes call it per core, which is what makes multi-core attribution
// trustworthy — a shared-resource accounting bug cannot hide in any
// core's breakdown.
func CheckPartition(b *Breakdown, cycles uint64, width int) error {
	if got, want := b.Total(), cycles*uint64(width); got != want {
		return fmt.Errorf("metrics: breakdown slots %d != cycles %d × width %d = %d",
			got, cycles, width, want)
	}
	return nil
}

// Attribution decomposes one shared-resource activity total (LLC
// accesses, DRAM bus transfers) into per-core contributions. It carries
// the counter name so tables can label columns without side channels.
type Attribution struct {
	Name    string   `json:"name"`
	PerCore []uint64 `json:"per_core"`
}

// Total returns the summed activity across cores.
func (a *Attribution) Total() uint64 {
	var t uint64
	for _, v := range a.PerCore {
		t += v
	}
	return t
}

// Share returns core i's fraction of the total, in [0, 1] (0 when the
// resource saw no activity).
func (a *Attribution) Share(i int) float64 {
	t := a.Total()
	if t == 0 {
		return 0
	}
	return float64(a.PerCore[i]) / float64(t)
}
