// Package metrics is the simulator's cycle-attribution and telemetry
// layer. It answers "where do the cycles go?": every commit slot of every
// simulated cycle is either a committed µop or attributed to exactly one
// top-down stall bucket (frontend starvation, branch-redirect recovery,
// memory-bound split by serving level, core-bound split by blocked
// resource), so the bucket totals partition Cycles × CommitWidth exactly.
// Alongside the breakdown it provides power-of-two histograms for event
// latencies (per-PC load latency, DRAM latency, MLP at miss issue) and
// sampled structure occupancies (ROB/RS/LQ/SQ/MSHR).
//
// Everything here is fixed-size and allocation-free on the observe path:
// a Breakdown is one array of counters, a Hist is one array of counters,
// and Observe is a shift-class index plus an increment, so the core can
// leave attribution permanently enabled without hurting host throughput.
package metrics

import (
	"encoding/json"
	"fmt"
	"math/bits"
)

// Bucket identifies one top-down stall class for a non-committing commit
// slot. The taxonomy follows the ROB-head view: when the pipeline cannot
// retire, the reason is read off the instruction blocking the ROB head
// (or off the frontend when the ROB is empty).
type Bucket uint8

// Stall buckets. Memory-bound buckets are split by the level that serves
// (or is serving) the blocking load; core-bound buckets are split by the
// backend resource observed blocking dispatch while the head waits on
// producers, falling back to plain dependency/execution latency.
const (
	// Frontend: the ROB is empty and fetch could not supply µops
	// (icache miss, fetch-queue drain, frontend pipeline depth).
	Frontend Bucket = iota
	// BranchRedirect: the ROB is empty because the machine is recovering
	// from a mispredicted branch (resolution wait or redirect penalty).
	BranchRedirect
	// MemL1: the ROB head is a load in flight served by the L1D
	// (including store-to-load forwards).
	MemL1
	// MemLLC: the ROB head is a load in flight served by the LLC.
	MemLLC
	// MemDRAM: the ROB head is a load in flight served by DRAM — the
	// bucket CRISP exists to shrink.
	MemDRAM
	// CoreROBFull: the head waits on producers while the ROB is full
	// (window-limited).
	CoreROBFull
	// CoreRSFull: the head waits on producers while the reservation
	// station had no free slot at dispatch.
	CoreRSFull
	// CoreLQFull: as CoreRSFull, for a full load queue.
	CoreLQFull
	// CoreSQFull: as CoreRSFull, for a full store queue.
	CoreSQFull
	// CorePort: the head is ready but lost issue-port or selection
	// bandwidth.
	CorePort
	// CoreDep: the head waits on register/store producers with no
	// resource backpressure observed.
	CoreDep
	// CoreExec: the head has issued and is covering a non-load execution
	// latency (ALU, store address, long-latency arithmetic).
	CoreExec
	// NumBuckets is the number of stall buckets.
	NumBuckets = iota
)

var bucketNames = [NumBuckets]string{
	"frontend",
	"branch_redirect",
	"mem_l1",
	"mem_llc",
	"mem_dram",
	"core_rob_full",
	"core_rs_full",
	"core_lq_full",
	"core_sq_full",
	"core_port",
	"core_dep",
	"core_exec",
}

// String returns the bucket's stable snake_case name (the JSONL/CSV
// column name).
func (b Bucket) String() string {
	if int(b) < len(bucketNames) {
		return bucketNames[b]
	}
	return fmt.Sprintf("bucket_%d", int(b))
}

// BucketNames returns the stall bucket names in index order.
func BucketNames() []string {
	names := make([]string, NumBuckets)
	copy(names, bucketNames[:])
	return names
}

// Breakdown is the per-run cycle accounting: Committed counts commit
// slots that retired a µop, Stalls[b] counts non-committing slots
// attributed to bucket b. By construction the core attributes exactly
// CommitWidth slots per cycle, so Total() == Cycles × CommitWidth and
// Committed equals the committed µop count.
type Breakdown struct {
	Committed uint64
	Stalls    [NumBuckets]uint64
}

// Total returns all attributed commit slots.
func (b *Breakdown) Total() uint64 {
	t := b.Committed
	for _, s := range b.Stalls {
		t += s
	}
	return t
}

// StallSlots returns the non-committing slot total.
func (b *Breakdown) StallSlots() uint64 { return b.Total() - b.Committed }

// Frac returns bucket's share of all commit slots, in [0, 1].
func (b *Breakdown) Frac(bucket Bucket) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.Stalls[bucket]) / float64(t)
}

// CommittedFrac returns the committed share of all commit slots — the
// machine's slot utilization (IPC / CommitWidth).
func (b *Breakdown) CommittedFrac() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.Committed) / float64(t)
}

// Add accumulates o into b (aggregating runs).
func (b *Breakdown) Add(o *Breakdown) {
	b.Committed += o.Committed
	for i := range b.Stalls {
		b.Stalls[i] += o.Stalls[i]
	}
}

// MarshalJSON encodes the breakdown with stable named keys
// ({"committed": N, "frontend": N, ...}) so JSONL consumers never depend
// on bucket ordinals.
func (b Breakdown) MarshalJSON() ([]byte, error) {
	m := make(map[string]uint64, NumBuckets+1)
	m["committed"] = b.Committed
	for i, n := range bucketNames {
		m[n] = b.Stalls[i]
	}
	return json.Marshal(m)
}

// UnmarshalJSON decodes the named-key form written by MarshalJSON.
// Unknown keys are ignored (forward compatibility); missing keys load as
// zero.
func (b *Breakdown) UnmarshalJSON(data []byte) error {
	var m map[string]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*b = Breakdown{Committed: m["committed"]}
	for i, n := range bucketNames {
		b.Stalls[i] = m[n]
	}
	return nil
}

// HistBuckets is the number of power-of-two histogram buckets: bucket 0
// counts zero observations, bucket i ≥ 1 counts values in
// [2^(i-1), 2^i). The top bucket absorbs everything ≥ 2^(HistBuckets-2),
// comfortably above any cycle latency or occupancy the simulator emits.
const HistBuckets = 24

// Hist is a fixed-size power-of-two histogram with an exact sum, so mean
// values need no bucket approximation. The zero value is ready to use.
type Hist struct {
	Counts [HistBuckets]uint64 `json:"counts"`
	Sum    uint64              `json:"sum"`
}

// histBucket returns the bucket index for v.
func histBucket(v uint64) int {
	b := bits.Len64(v) // 0 for v==0, k for v in [2^(k-1), 2^k)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	h.Counts[histBucket(v)]++
	h.Sum += v
}

// Total returns the number of observations.
func (h *Hist) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Mean returns the exact mean of all observations (0 when empty).
func (h *Hist) Mean() float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Sum) / float64(t)
}

// BucketBounds returns the half-open value range [lo, hi) counted by
// bucket i.
func BucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 1
	}
	lo = uint64(1) << uint(i-1)
	if i == HistBuckets-1 {
		return lo, ^uint64(0)
	}
	return lo, lo << 1
}

// Quantile returns an upper bound on the q-quantile (the exclusive upper
// edge of the bucket holding it). q outside (0, 1] is clamped.
func (h *Hist) Quantile(q float64) uint64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(t))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen >= rank {
			_, hi := BucketBounds(i)
			return hi - 1
		}
	}
	_, hi := BucketBounds(HistBuckets - 1)
	return hi
}

// Add accumulates o into h.
func (h *Hist) Add(o *Hist) {
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Sum += o.Sum
}

// Hists bundles the run-level histograms the core maintains: event
// histograms observed at execution, and occupancy histograms sampled
// every few hundred cycles.
type Hists struct {
	// LoadLat is the load-to-use latency of every executed load.
	LoadLat Hist `json:"load_lat"`
	// DRAMLat is the latency of DRAM-served loads only.
	DRAMLat Hist `json:"dram_lat"`
	// MLPAtMiss is the number of outstanding DRAM misses observed when a
	// DRAM-served load issues (memory-level parallelism at miss time).
	MLPAtMiss Hist `json:"mlp_at_miss"`
	// Occupancy samples, taken every OccSampleEvery cycles.
	OccROB  Hist `json:"occ_rob"`
	OccRS   Hist `json:"occ_rs"`
	OccLQ   Hist `json:"occ_lq"`
	OccSQ   Hist `json:"occ_sq"`
	OccMSHR Hist `json:"occ_mshr"`
}

// Add accumulates o into h.
func (h *Hists) Add(o *Hists) {
	h.LoadLat.Add(&o.LoadLat)
	h.DRAMLat.Add(&o.DRAMLat)
	h.MLPAtMiss.Add(&o.MLPAtMiss)
	h.OccROB.Add(&o.OccROB)
	h.OccRS.Add(&o.OccRS)
	h.OccLQ.Add(&o.OccLQ)
	h.OccSQ.Add(&o.OccSQ)
	h.OccMSHR.Add(&o.OccMSHR)
}
