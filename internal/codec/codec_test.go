package codec

import (
	"bytes"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.U8(0xAB)
	w.U16(0xBEEF)
	w.U32(0xDEADBEEF)
	w.U64(0x0123456789ABCDEF)
	w.I64(-42)
	w.I8(-7)
	w.Int(-123456789)
	w.Uint(987654321)
	w.Bool(true)
	w.Bool(false)
	w.Raw([]byte{1, 2, 3})
	w.Blob([]byte("blob"))
	w.String("hello")

	r := NewReader(w.Bytes())
	if v := r.U8(); v != 0xAB {
		t.Errorf("U8 = %#x", v)
	}
	if v := r.U16(); v != 0xBEEF {
		t.Errorf("U16 = %#x", v)
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %#x", v)
	}
	if v := r.U64(); v != 0x0123456789ABCDEF {
		t.Errorf("U64 = %#x", v)
	}
	if v := r.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if v := r.I8(); v != -7 {
		t.Errorf("I8 = %d", v)
	}
	if v := r.Int(); v != -123456789 {
		t.Errorf("Int = %d", v)
	}
	if v := r.Uint(); v != 987654321 {
		t.Errorf("Uint = %d", v)
	}
	if v := r.Bool(); !v {
		t.Error("Bool = false, want true")
	}
	if v := r.Bool(); v {
		t.Error("Bool = true, want false")
	}
	if v := r.Raw(3); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("Raw = %v", v)
	}
	if v := r.Blob(); !bytes.Equal(v, []byte("blob")) {
		t.Errorf("Blob = %q", v)
	}
	if v := r.String(); v != "hello" {
		t.Errorf("String = %q", v)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("clean stream decoded with error: %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bytes left over", r.Remaining())
	}
}

// TestTruncation: reads past the end must stick an error and return
// zeros, never panic — corrupt store entries decode through this path.
func TestTruncation(t *testing.T) {
	var w Writer
	w.U64(7)
	r := NewReader(w.Bytes()[:5])
	if v := r.U64(); v != 0 {
		t.Errorf("truncated U64 = %d, want 0", v)
	}
	if r.Err() == nil {
		t.Fatal("truncated read reported no error")
	}
	// Error sticks: later reads stay zero without panicking.
	if v := r.U32(); v != 0 {
		t.Errorf("read after error = %d", v)
	}
	if s := r.String(); s != "" {
		t.Errorf("string after error = %q", s)
	}
}

// TestOversizedBlob: a length prefix larger than the remaining buffer is
// an error, not an allocation or a panic.
func TestOversizedBlob(t *testing.T) {
	var w Writer
	w.U32(1 << 30)
	r := NewReader(w.Bytes())
	if b := r.Blob(); b != nil {
		t.Errorf("oversized blob returned %d bytes", len(b))
	}
	if r.Err() == nil {
		t.Fatal("oversized blob reported no error")
	}
}

func TestInvalidBool(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if r.Err() == nil {
		t.Fatal("bool byte 2 reported no error")
	}
}
