// Package codec implements the little-endian binary encoding primitives
// shared by the persistent-state serializers (checkpoint sets, warmed
// cache and predictor templates). A Writer appends fixed-width values to
// a growing buffer; a Reader consumes them with a sticky error, so
// decoders can run a whole field list and check failure once at the end.
// Truncated or over-long input is an error, never a panic: store entries
// may be corrupt on disk and must decode to a clean miss.
package codec

import (
	"encoding/binary"
	"fmt"
)

// Writer accumulates an encoded byte stream. The zero value is ready to
// use.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded stream. The slice aliases the writer's
// buffer and is valid until the next append.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes encoded so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends a little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// I8 appends one signed byte.
func (w *Writer) I8(v int8) { w.U8(uint8(v)) }

// Int appends a Go int as a 64-bit value, so encodings are identical
// across architectures.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Uint appends a Go uint as a 64-bit value.
func (w *Writer) Uint(v uint) { w.U64(uint64(v)) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Raw appends b verbatim, without a length prefix. The reader must know
// the length from structure.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Blob appends b with a u32 length prefix.
func (w *Writer) Blob(b []byte) {
	w.U32(uint32(len(b)))
	w.Raw(b)
}

// String appends s with a u32 length prefix.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader consumes a stream produced by Writer. The first decode failure
// (truncation, oversized length prefix) sticks: every later read returns
// a zero value, and Err reports the failure. This lets decoders read a
// whole structure unconditionally and validate once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes (0 once failed).
func (r *Reader) Remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.buf) - r.off
}

// fail records the first error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("codec: "+format, args...)
	}
}

// take returns the next n bytes, or nil after recording truncation.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf)-r.off < n {
		r.fail("truncated: want %d bytes at offset %d, have %d", n, r.off, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// I8 reads one signed byte.
func (r *Reader) I8() int8 { return int8(r.U8()) }

// Int reads a 64-bit value into a Go int, failing if it does not fit.
func (r *Reader) Int() int {
	v := r.I64()
	n := int(v)
	if int64(n) != v {
		r.fail("int64 %d overflows int", v)
		return 0
	}
	return n
}

// Uint reads a 64-bit value into a Go uint, failing if it does not fit.
func (r *Reader) Uint() uint {
	v := r.U64()
	n := uint(v)
	if uint64(n) != v {
		r.fail("uint64 %d overflows uint", v)
		return 0
	}
	return n
}

// Bool reads one byte as a bool, failing on values other than 0 or 1.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("invalid bool byte at offset %d", r.off-1)
		return false
	}
}

// Raw reads n bytes without a length prefix. The returned slice aliases
// the reader's buffer.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// Blob reads a u32-length-prefixed byte slice. The returned slice
// aliases the reader's buffer; copy it for storage.
func (r *Reader) Blob() []byte {
	n := int(r.U32())
	return r.take(n)
}

// String reads a u32-length-prefixed string.
func (r *Reader) String() string { return string(r.Blob()) }
