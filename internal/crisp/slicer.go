package crisp

import (
	"sort"

	"crisp/internal/program"
	"crisp/internal/trace"
)

// slicer extracts backward slices from a captured trace (Section 3.3's
// frontier algorithm). Dependencies through registers and through memory
// (store-to-load) are both followed — the latter is the capability
// register-only hardware IBDA lacks.
type slicer struct {
	tr   *trace.Trace
	prog *program.Program
	// instancesOf caches trace indices per static PC.
	instances map[int][]uint32
}

func newSlicer(tr *trace.Trace, prog *program.Program) *slicer {
	s := &slicer{tr: tr, prog: prog, instances: make(map[int][]uint32)}
	for i := range tr.Records {
		pc := tr.Records[i].PC
		s.instances[pc] = append(s.instances[pc], uint32(i))
	}
	return s
}

// sliceResult is the outcome of extract for one root PC.
type sliceResult struct {
	Full      []int   // unique static PCs in the unfiltered slice union
	Filtered  []int   // unique static PCs after critical-path filtering
	AvgDynLen float64 // mean dynamic slice size per instance (Figure 4)
	Instances int
}

// extract unions backward slices over up to maxInst dynamic instances of
// root. amat supplies per-PC load latencies for the DAG filter.
func (s *slicer) extract(root int, maxInst int, amat func(pc int) int, opts Options) sliceResult {
	inst := s.instances[root]
	if len(inst) == 0 {
		return sliceResult{}
	}
	// Use the last maxInst instances: state (caches, predictors, the
	// slice's own loop-carried structure) is warmed up by then.
	if len(inst) > maxInst {
		inst = inst[len(inst)-maxInst:]
	}

	fullSet := make(map[int]bool)
	filtSet := make(map[int]bool)
	var totalDyn int
	// Filter out uncommon code paths (Section 4.1): ancestors that
	// executed rarely relative to the root (one-time setup code) would
	// otherwise dominate the latency DAG with their cold-miss AMATs and
	// crowd the hot loop path out of the critical path.
	minExecs := len(s.instances[root]) / 20
	for _, rootIdx := range inst {
		nodes := s.backwardSlice(rootIdx)
		nodes = s.dropColdAncestors(nodes, rootIdx, minExecs)
		totalDyn += len(nodes)
		for _, n := range nodes {
			fullSet[s.tr.Records[n].PC] = true
		}
		if opts.FilterCriticalPath {
			for _, n := range criticalNodes(s.tr, nodes, amat, opts.CriticalPathSlack) {
				filtSet[s.tr.Records[n].PC] = true
			}
		} else {
			for _, n := range nodes {
				filtSet[s.tr.Records[n].PC] = true
			}
		}
	}

	res := sliceResult{
		Full:      setToSlice(fullSet),
		Filtered:  setToSlice(filtSet),
		AvgDynLen: float64(totalDyn) / float64(len(inst)),
		Instances: len(inst),
	}
	return res
}

// dropColdAncestors removes slice nodes whose static PC executed fewer
// than minExecs times in the trace (always keeping the root instance).
func (s *slicer) dropColdAncestors(nodes []uint32, rootIdx uint32, minExecs int) []uint32 {
	if minExecs <= 1 {
		return nodes
	}
	out := nodes[:0]
	for _, n := range nodes {
		if n == rootIdx || len(s.instances[s.tr.Records[n].PC]) >= minExecs {
			out = append(out, n)
		}
	}
	return out
}

// backwardSlice walks producers from the root instance with the frontier
// algorithm and returns the visited trace indices (ascending). Expansion
// of an ancestor stops when its static PC is already in the slice (rule 1
// — this terminates loop-carried recursion as in Figure 3), when an
// operand has no producer in the trace window (rules 2 and 4), or at the
// window boundary.
func (s *slicer) backwardSlice(rootIdx uint32) []uint32 {
	inSlice := make(map[int]bool) // static PCs already in the slice
	visited := make(map[uint32]bool)
	frontier := []uint32{rootIdx}
	visited[rootIdx] = true
	inSlice[s.tr.Records[rootIdx].PC] = true
	var order []uint32
	var depBuf []uint32

	for len(frontier) > 0 {
		idx := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		order = append(order, idx)

		depBuf = s.tr.Deps(int(idx), depBuf[:0])
		for _, dep := range depBuf {
			if visited[dep] {
				continue
			}
			pc := s.tr.Records[dep].PC
			if inSlice[pc] {
				// Rule 1: ancestor's PC already in the load slice — record
				// the instance but do not expand further.
				visited[dep] = true
				order = append(order, dep)
				continue
			}
			inSlice[pc] = true
			visited[dep] = true
			frontier = append(frontier, dep)
		}
	}
	sortU32(order)
	return order
}

// criticalNodes applies the Section 3.5 filter: treat the dynamic slice as
// a latency DAG, compute earliest/latest start times, and keep nodes whose
// slack is at most `slack` cycles.
func criticalNodes(tr *trace.Trace, nodes []uint32, amat func(pc int) int, slack int) []uint32 {
	if len(nodes) <= 2 {
		return nodes
	}
	pos := make(map[uint32]int, len(nodes))
	for i, n := range nodes {
		pos[n] = i
	}
	lat := make([]int, len(nodes))
	for i, n := range nodes {
		r := &tr.Records[n]
		if r.Inst.Op.IsMem() && r.Inst.Op.Latency() == 4 {
			lat[i] = amat(r.PC)
		} else {
			lat[i] = r.Inst.Op.Latency()
		}
	}

	// Earliest start: nodes are ascending (trace order = topological).
	est := make([]int, len(nodes))
	var depBuf []uint32
	for i, n := range nodes {
		depBuf = tr.Deps(int(n), depBuf[:0])
		for _, d := range depBuf {
			if j, ok := pos[d]; ok {
				if t := est[j] + lat[j]; t > est[i] {
					est[i] = t
				}
			}
		}
	}
	root := len(nodes) - 1
	// Latest start, backwards from the root.
	lst := make([]int, len(nodes))
	const inf = int(^uint(0) >> 1)
	for i := range lst {
		lst[i] = inf
	}
	lst[root] = est[root]
	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		depBuf = tr.Deps(int(n), depBuf[:0])
		for _, d := range depBuf {
			if j, ok := pos[d]; ok && lst[i] != inf {
				if t := lst[i] - lat[j]; t < lst[j] {
					lst[j] = t
				}
			}
		}
	}

	var out []uint32
	for i, n := range nodes {
		if lst[i] == inf {
			// Not on any path to the root (shouldn't happen; keep safe).
			continue
		}
		if lst[i]-est[i] <= slack {
			out = append(out, n)
		}
	}
	return out
}

func setToSlice(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for pc := range set {
		out = append(out, pc)
	}
	sort.Ints(out)
	return out
}

func sortU32(a []uint32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
