// Package crisp implements the paper's software pipeline: delinquent-load
// classification from profile data (Section 3.2), load-slice extraction
// from instruction traces with dependencies through registers AND memory
// (Section 3.3), branch-slice extraction for hard-to-predict branches
// (Section 3.4), DAG-based critical-path filtering (Section 3.5), and
// critical-instruction tagging with footprint accounting (Section 5.7).
//
// The pipeline consumes a profile (per-PC load and branch statistics from
// a profiling run — the PMU/PEBS stand-in) and a dynamic trace (the
// DynamoRIO/PT stand-in), and produces the set of static PCs to tag with
// the critical prefix.
package crisp

import (
	"sort"

	"crisp/internal/core"
	"crisp/internal/isa"
	"crisp/internal/program"
	"crisp/internal/trace"
)

// Options are the classification and extraction knobs. The miss-share
// threshold T is the Figure 10 control variable.
type Options struct {
	// LoadSlices and BranchSlices select which slice kinds to extract
	// (Figure 8 toggles).
	LoadSlices   bool
	BranchSlices bool

	// MissShareThreshold T: a load is delinquent if it contributes more
	// than this fraction of the application's total LLC misses
	// (Section 5.5; default 0.01).
	MissShareThreshold float64
	// MissRatioThreshold: minimum per-load LLC miss ratio (Section 3.2's
	// 20% default).
	MissRatioThreshold float64
	// MaxMLP: loads observed with average MLP at or above this are not
	// latency-critical (Section 3.2's 5).
	MaxMLP float64
	// MinHeadStall: minimum average ROB-head stall cycles per execution —
	// Section 3.2's "pipeline stalls induced by the load". High-MLP
	// streaming loads whose latency overlaps their peers accrue little
	// head stall and are filtered out even when their MPKI is large.
	MinHeadStall float64
	// MinLoadShare: minimum fraction of all executed loads.
	MinLoadShare float64

	// MispredictThreshold: branches with a higher misprediction rate get
	// branch slices (Section 3.4's 15%).
	MispredictThreshold float64
	// MinBranchShare: minimum fraction of all executed branches.
	MinBranchShare float64

	// MaxSliceInstances bounds how many dynamic instances of each root are
	// sliced and unioned.
	MaxSliceInstances int
	// CriticalPathSlack keeps slice instructions whose slack in the
	// latency DAG is at most this many cycles (0 = strict critical path).
	CriticalPathSlack int
	// FilterCriticalPath disables the Section 3.5 filter when false
	// (IBDA-style whole-slice tagging, used for ablation).
	FilterCriticalPath bool

	// MaxCriticalFraction caps the dynamic fraction of tagged
	// instructions (Section 3.2's 40% guard); slices of colder roots are
	// dropped first.
	MaxCriticalFraction float64

	// HighLatencyALU enables the Section 6.1 extension: long-latency
	// arithmetic (integer and FP division) with a significant execution
	// share becomes a slice root too, so divides and their operand chains
	// execute as early as possible.
	HighLatencyALU bool
	// MinALUShare is the minimum dynamic execution share for a divide PC
	// to be considered (relative to all instructions).
	MinALUShare float64
}

// DefaultOptions returns the paper's default configuration.
func DefaultOptions() Options {
	return Options{
		LoadSlices:          true,
		BranchSlices:        true,
		MissShareThreshold:  0.01,
		MissRatioThreshold:  0.20,
		MaxMLP:              8,
		MinHeadStall:        2,
		MinLoadShare:        0.001,
		MispredictThreshold: 0.15,
		MinBranchShare:      0.001,
		MaxSliceInstances:   12,
		CriticalPathSlack:   2,
		FilterCriticalPath:  true,
		MaxCriticalFraction: 0.40,
		MinALUShare:         0.002,
	}
}

// SliceStats describes one extracted slice.
type SliceStats struct {
	RootPC     int
	IsBranch   bool
	FullStatic int     // unique PCs before critical-path filtering
	FiltStatic int     // unique PCs after filtering
	AvgDynLen  float64 // average dynamic slice length per instance (Figure 4)
	Instances  int
}

// Analysis is the pipeline output.
type Analysis struct {
	DelinquentLoads []int
	HardBranches    []int
	// SlowALUs are Section 6.1 high-latency arithmetic roots (divides).
	SlowALUs []int
	// LoadSlices / BranchSlices map root PC to the filtered static slice
	// (root included).
	LoadSlices   map[int][]int
	BranchSlices map[int][]int
	Slices       []SliceStats
	// CriticalPCs is the deduplicated union to tag.
	CriticalPCs []int
	// DynCriticalFraction is the fraction of dynamic instructions that are
	// tagged, per the trace's execution counts.
	DynCriticalFraction float64
	// AvgLoadSliceDynLen reproduces Figure 4's per-application statistic.
	AvgLoadSliceDynLen float64
}

// Analyze runs classification, slicing, filtering and the guard band.
func Analyze(prof *core.Result, tr *trace.Trace, prog *program.Program, opts Options) *Analysis {
	a := &Analysis{
		LoadSlices:   make(map[int][]int),
		BranchSlices: make(map[int][]int),
	}

	counts := tr.ExecCounts(prog.Len())
	var totalInsts uint64
	for _, c := range counts {
		totalInsts += c
	}

	amat := func(pc int) int {
		if lp, ok := prof.Loads[pc]; ok && lp.Count > 0 {
			if a := int(lp.AMAT()); a > 4 {
				return a
			}
		}
		return 4
	}

	if opts.LoadSlices {
		a.DelinquentLoads = classifyLoads(prof, opts)
	}
	if opts.BranchSlices {
		a.HardBranches = classifyBranches(prof, opts)
	}
	if opts.HighLatencyALU {
		a.SlowALUs = classifySlowALUs(prog, counts, totalInsts, opts)
	}

	sl := newSlicer(tr, prog)
	var totalDyn float64
	var nLoadSlices int
	for _, pc := range a.DelinquentLoads {
		res := sl.extract(pc, opts.MaxSliceInstances, amat, opts)
		if res.Instances == 0 {
			continue
		}
		a.LoadSlices[pc] = res.Filtered
		a.Slices = append(a.Slices, SliceStats{
			RootPC: pc, FullStatic: len(res.Full), FiltStatic: len(res.Filtered),
			AvgDynLen: res.AvgDynLen, Instances: res.Instances,
		})
		totalDyn += res.AvgDynLen
		nLoadSlices++
	}
	if nLoadSlices > 0 {
		a.AvgLoadSliceDynLen = totalDyn / float64(nLoadSlices)
	}
	for _, pc := range a.HardBranches {
		res := sl.extract(pc, opts.MaxSliceInstances, amat, opts)
		if res.Instances == 0 {
			continue
		}
		a.BranchSlices[pc] = res.Filtered
		a.Slices = append(a.Slices, SliceStats{
			RootPC: pc, IsBranch: true, FullStatic: len(res.Full),
			FiltStatic: len(res.Filtered), AvgDynLen: res.AvgDynLen,
			Instances: res.Instances,
		})
	}

	for _, pc := range a.SlowALUs {
		res := sl.extract(pc, opts.MaxSliceInstances, amat, opts)
		if res.Instances == 0 {
			continue
		}
		// Fold divide slices into the branch-slice map for guard/tagging
		// purposes; their hotness is their execution count.
		a.BranchSlices[pc] = res.Filtered
		a.Slices = append(a.Slices, SliceStats{
			RootPC: pc, FullStatic: len(res.Full), FiltStatic: len(res.Filtered),
			AvgDynLen: res.AvgDynLen, Instances: res.Instances,
		})
	}

	a.applyGuard(prof, counts, totalInsts, opts)
	return a
}

// classifySlowALUs finds division PCs with a significant execution share
// (the Section 6.1 extension). The PMU extension the paper envisions —
// "new events for determining the PC of arbitrary instructions that
// induce significant stall cycles" — is approximated by static opcode
// class plus dynamic execution share.
func classifySlowALUs(prog *program.Program, counts []uint64, totalInsts uint64, opts Options) []int {
	if totalInsts == 0 {
		return nil
	}
	var out []int
	for pc := range prog.Insts {
		switch prog.Insts[pc].Op {
		case isa.OpDiv, isa.OpRem, isa.OpFDiv:
			if float64(counts[pc])/float64(totalInsts) >= opts.MinALUShare {
				out = append(out, pc)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return counts[out[i]] > counts[out[j]] })
	return out
}

// classifyLoads applies the Section 3.2 heuristics.
func classifyLoads(prof *core.Result, opts Options) []int {
	var totalLoads, totalMisses uint64
	for _, lp := range prof.Loads {
		totalLoads += lp.Count
		totalMisses += lp.LLCMiss
	}
	if totalLoads == 0 || totalMisses == 0 {
		return nil
	}
	var out []int
	for pc, lp := range prof.Loads {
		missShare := float64(lp.LLCMiss) / float64(totalMisses)
		loadShare := float64(lp.Count) / float64(totalLoads)
		if missShare <= opts.MissShareThreshold {
			continue
		}
		if lp.LLCMissRatio() < opts.MissRatioThreshold {
			continue
		}
		if loadShare < opts.MinLoadShare {
			continue
		}
		if opts.MaxMLP > 0 && lp.AvgMLP() >= opts.MaxMLP {
			continue
		}
		if opts.MinHeadStall > 0 && float64(lp.HeadStall)/float64(lp.Count) < opts.MinHeadStall {
			continue
		}
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool {
		return prof.Loads[out[i]].LLCMiss > prof.Loads[out[j]].LLCMiss
	})
	return out
}

// classifyBranches applies the Section 3.4 threshold.
func classifyBranches(prof *core.Result, opts Options) []int {
	var totalBranches uint64
	for _, bp := range prof.Branches {
		totalBranches += bp.Count
	}
	if totalBranches == 0 {
		return nil
	}
	var out []int
	for pc, bp := range prof.Branches {
		if bp.MispredictRate() <= opts.MispredictThreshold {
			continue
		}
		if float64(bp.Count)/float64(totalBranches) < opts.MinBranchShare {
			continue
		}
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool {
		return prof.Branches[out[i]].Mispred > prof.Branches[out[j]].Mispred
	})
	return out
}

// applyGuard enforces the 40% dynamic-fraction cap, dropping slices of the
// coldest roots first, then computes the final critical set.
func (a *Analysis) applyGuard(prof *core.Result, counts []uint64, totalInsts uint64, opts Options) {
	type cand struct {
		root     int
		isBranch bool
		slice    []int
		value    uint64 // hotness: LLC misses or mispredictions
	}
	var cands []cand
	for pc, s := range a.LoadSlices {
		v := uint64(0)
		if lp, ok := prof.Loads[pc]; ok {
			v = lp.LLCMiss
		}
		cands = append(cands, cand{root: pc, slice: s, value: v})
	}
	for pc, s := range a.BranchSlices {
		v := uint64(0)
		if bp, ok := prof.Branches[pc]; ok {
			v = bp.Mispred
		}
		cands = append(cands, cand{root: pc, isBranch: true, slice: s, value: v})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].value != cands[j].value {
			return cands[i].value > cands[j].value
		}
		return cands[i].root < cands[j].root
	})

	tagged := make(map[int]bool)
	var dyn uint64
	budget := uint64(float64(totalInsts) * opts.MaxCriticalFraction)
	if opts.MaxCriticalFraction <= 0 {
		budget = totalInsts
	}
	for _, c := range cands {
		var extra uint64
		for _, pc := range c.slice {
			if !tagged[pc] && pc < len(counts) {
				extra += counts[pc]
			}
		}
		if dyn+extra > budget && dyn > 0 {
			// Dropping this whole slice keeps us inside the guard band.
			if c.isBranch {
				delete(a.BranchSlices, c.root)
			} else {
				delete(a.LoadSlices, c.root)
			}
			continue
		}
		for _, pc := range c.slice {
			tagged[pc] = true
		}
		dyn += extra
	}

	a.CriticalPCs = a.CriticalPCs[:0]
	for pc := range tagged {
		a.CriticalPCs = append(a.CriticalPCs, pc)
	}
	sort.Ints(a.CriticalPCs)
	if totalInsts > 0 {
		a.DynCriticalFraction = float64(dyn) / float64(totalInsts)
	}
}

// Apply clones prog and tags the analysis's critical PCs (the post-link
// rewriting step of Figure 5).
func (a *Analysis) Apply(prog *program.Program) *program.Program {
	p := prog.Clone()
	p.SetCritical(a.CriticalPCs)
	return p
}
