package crisp

import (
	"crisp/internal/program"
	"crisp/internal/trace"
)

// Footprint quantifies the code-size cost of the critical prefix
// (Section 5.7 / Figure 12): one byte per tagged static instruction, and
// the dynamic footprint weighted by execution frequency.
type Footprint struct {
	StaticBytesBase   int
	StaticBytesTagged int
	DynBytesBase      uint64
	DynBytesTagged    uint64
	CriticalStatic    int
	CriticalDynShare  float64 // fraction of dynamic instructions tagged
}

// StaticOverhead returns the relative static code-size increase.
func (f *Footprint) StaticOverhead() float64 {
	if f.StaticBytesBase == 0 {
		return 0
	}
	return float64(f.StaticBytesTagged-f.StaticBytesBase) / float64(f.StaticBytesBase)
}

// DynOverhead returns the relative dynamic code-footprint increase.
func (f *Footprint) DynOverhead() float64 {
	if f.DynBytesBase == 0 {
		return 0
	}
	return float64(f.DynBytesTagged-f.DynBytesBase) / float64(f.DynBytesBase)
}

// MeasureFootprint computes the Figure 12 metrics for tagging criticalPCs
// in prog, using the trace's execution counts as dynamic weights.
func MeasureFootprint(prog *program.Program, tr *trace.Trace, criticalPCs []int) Footprint {
	crit := make(map[int]bool, len(criticalPCs))
	for _, pc := range criticalPCs {
		crit[pc] = true
	}
	counts := tr.ExecCounts(prog.Len())

	var f Footprint
	var critDyn, totalDyn uint64
	for pc := range prog.Insts {
		in := prog.Insts[pc] // copy
		in.Critical = false
		size := in.EncodedSize()
		f.StaticBytesBase += size
		f.DynBytesBase += counts[pc] * uint64(size)
		if crit[pc] {
			size++
			f.CriticalStatic++
			critDyn += counts[pc]
		}
		f.StaticBytesTagged += size
		f.DynBytesTagged += counts[pc] * uint64(size)
		totalDyn += counts[pc]
	}
	if totalDyn > 0 {
		f.CriticalDynShare = float64(critDyn) / float64(totalDyn)
	}
	return f
}
