package crisp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"crisp/internal/emu"
	"crisp/internal/isa"
	"crisp/internal/program"
	"crisp/internal/trace"
)

// randomKernel builds a random but well-formed looping kernel: a mix of
// ALU ops, loads, and stores over a small memory region, ending with a
// loop branch. Returns the program and the PC of a load to slice.
func randomKernel(seed int64) (*program.Program, *emu.Memory, int) {
	r := rand.New(rand.NewSource(seed))
	b := program.NewBuilder("rand")
	mem := emu.NewMemory()
	for i := 0; i < 64; i++ {
		mem.WriteWord(uint64(0x10000+i*8), int64(r.Intn(1<<16)))
	}
	b.MovI(isa.R(1), 0x10000)
	b.MovI(isa.R(2), 0)
	b.MovI(isa.R(3), 40)
	b.Label("loop")
	loadPCs := []int{}
	n := 5 + r.Intn(15)
	for i := 0; i < n; i++ {
		dst := isa.R(8 + r.Intn(8))
		s1 := isa.R(8 + r.Intn(8))
		s2 := isa.R(8 + r.Intn(8))
		switch r.Intn(5) {
		case 0:
			loadPCs = append(loadPCs, b.PC())
			b.Load(dst, isa.R(1), int64(r.Intn(60)*8))
		case 1:
			b.Store(isa.R(1), int64(r.Intn(60)*8), s1)
		case 2:
			b.Add(dst, s1, s2)
		case 3:
			b.Mul(dst, s1, s2)
		default:
			b.Xor(dst, s1, s2)
		}
	}
	b.AddI(isa.R(2), isa.R(2), 1)
	b.Blt(isa.R(2), isa.R(3), "loop")
	b.Halt()
	p := b.MustBuild()
	root := -1
	if len(loadPCs) > 0 {
		root = loadPCs[r.Intn(len(loadPCs))]
	}
	return p, mem, root
}

// TestSlicerClosureProperty: for random kernels, the extracted full slice
// contains the root and is closed under static dependencies — every
// producer (register or memory) of every dynamic slice member has its
// static PC inside the slice.
func TestSlicerClosureProperty(t *testing.T) {
	f := func(seed int64) bool {
		p, mem, root := randomKernel(seed)
		if root < 0 {
			return true
		}
		tr := trace.Capture(emu.New(p, mem), 0)
		sl := newSlicer(tr, p)
		opts := DefaultOptions()
		opts.FilterCriticalPath = false
		res := sl.extract(root, 6, func(int) int { return 50 }, opts)
		if res.Instances == 0 {
			return true
		}
		inSlice := make(map[int]bool)
		for _, pc := range res.Full {
			inSlice[pc] = true
		}
		if !inSlice[root] {
			return false
		}
		// Closure: every producer of every slice member is in the slice,
		// unless it was dropped by the uncommon-code-path filter (executed
		// fewer than 1/20th as often as the root).
		rootExecs := len(sl.instances[root])
		cold := func(pc int) bool { return len(sl.instances[pc]) < rootExecs/20 }
		var deps []uint32
		for i := range tr.Records {
			if !inSlice[tr.Records[i].PC] {
				continue
			}
			deps = tr.Deps(i, deps[:0])
			for _, d := range deps {
				pc := tr.Records[d].PC
				if !inSlice[pc] && !cold(pc) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFilteredSubsetProperty: the critical-path-filtered slice is always a
// subset of the full slice and still contains the root.
func TestFilteredSubsetProperty(t *testing.T) {
	f := func(seed int64, slack uint8) bool {
		p, mem, root := randomKernel(seed)
		if root < 0 {
			return true
		}
		tr := trace.Capture(emu.New(p, mem), 0)
		sl := newSlicer(tr, p)
		opts := DefaultOptions()
		opts.CriticalPathSlack = int(slack % 16)
		res := sl.extract(root, 6, func(int) int { return 50 }, opts)
		if res.Instances == 0 {
			return true
		}
		full := make(map[int]bool)
		for _, pc := range res.Full {
			full[pc] = true
		}
		rootIn := false
		for _, pc := range res.Filtered {
			if !full[pc] {
				return false
			}
			if pc == root {
				rootIn = true
			}
		}
		return rootIn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSlackMonotoneProperty: growing the slack can only grow (or keep) the
// filtered slice.
func TestSlackMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		p, mem, root := randomKernel(seed)
		if root < 0 {
			return true
		}
		tr := trace.Capture(emu.New(p, mem), 0)
		sl := newSlicer(tr, p)
		prev := -1
		for _, slack := range []int{0, 2, 8, 1 << 20} {
			opts := DefaultOptions()
			opts.CriticalPathSlack = slack
			res := sl.extract(root, 6, func(int) int { return 50 }, opts)
			if len(res.Filtered) < prev {
				return false
			}
			prev = len(res.Filtered)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestInfiniteSlackEqualsFull: with unbounded slack the filter must keep
// the whole slice.
func TestInfiniteSlackEqualsFull(t *testing.T) {
	p, mem, root := randomKernel(12345)
	if root < 0 {
		t.Skip("no loads in kernel")
	}
	tr := trace.Capture(emu.New(p, mem), 0)
	sl := newSlicer(tr, p)
	opts := DefaultOptions()
	opts.CriticalPathSlack = 1 << 30
	res := sl.extract(root, 6, func(int) int { return 50 }, opts)
	if len(res.Filtered) != len(res.Full) {
		t.Errorf("infinite slack filtered %d of %d", len(res.Filtered), len(res.Full))
	}
}
