package crisp

import (
	"testing"

	"crisp/internal/core"
	"crisp/internal/emu"
	"crisp/internal/isa"
	"crisp/internal/program"
	"crisp/internal/trace"
)

// figure2Kernel mirrors the paper's motivating example: a linked-list
// traversal (with the pointer spilled through memory, as in the -O0 code
// of Figure 3) around a vector-multiply inner block.
func figure2Kernel(t *testing.T) (*program.Program, *emu.Memory, map[string]int) {
	t.Helper()
	mem := emu.NewMemory()
	// 64 nodes in a ring at 0x100000 + i*64.
	base := int64(0x100000)
	for i := 0; i < 64; i++ {
		next := base + int64((i+1)%64)*64
		mem.WriteWord(uint64(base+int64(i)*64), next)
		mem.WriteWord(uint64(base+int64(i)*64+8), int64(i))
	}
	for i := 0; i < 16; i++ {
		mem.WriteWord(uint64(0x200000+i*8), int64(i))
	}

	b := program.NewBuilder("fig2")
	sp := isa.R(30) // stack pointer
	cur := isa.R(1)
	val := isa.R(2)
	vb := isa.R(3)
	pcs := make(map[string]int)
	b.MovI(sp, 0x300000)
	b.MovI(vb, 0x200000)
	b.MovI(cur, base)
	b.Store(sp, 0, cur) // spill cur to the stack
	b.MovI(isa.R(9), 0)
	b.Label("outer")
	// Vector block: vec[i] *= val (loads forward-depend on nothing in the
	// pointer slice; the muls forward-depend on the critical load's value).
	for i := 0; i < 4; i++ {
		b.Load(isa.R(10+i), vb, int64(i*8))
		b.Mul(isa.R(10+i), isa.R(10+i), val)
		b.Store(vb, int64(i*8), isa.R(10+i))
	}
	pcs["reload"] = b.PC()
	b.Load(cur, sp, 0) // reload cur from the stack (dependency through memory)
	pcs["ptrload"] = b.PC()
	b.Load(cur, cur, 0) // cur = cur->next  (the delinquent load)
	pcs["valload"] = b.PC()
	b.Load(val, cur, 8) // val = cur->val
	pcs["spill"] = b.PC()
	b.Store(sp, 0, cur) // spill the new cur
	b.AddI(isa.R(9), isa.R(9), 1)
	b.MovI(isa.R(8), 40)
	pcs["loopbr"] = b.PC()
	b.Blt(isa.R(9), isa.R(8), "outer")
	b.Halt()
	return b.MustBuild(), mem, pcs
}

func captureFig2(t *testing.T) (*program.Program, *trace.Trace, map[string]int) {
	t.Helper()
	p, mem, pcs := figure2Kernel(t)
	tr := trace.Capture(emu.New(p, mem), 0)
	return p, tr, pcs
}

func TestSlicerFollowsMemoryDependencies(t *testing.T) {
	p, tr, pcs := captureFig2(t)
	sl := newSlicer(tr, p)
	opts := DefaultOptions()
	opts.FilterCriticalPath = false
	res := sl.extract(pcs["ptrload"], 4, func(int) int { return 100 }, opts)
	if res.Instances == 0 {
		t.Fatalf("no instances sliced")
	}
	want := []string{"reload", "ptrload", "spill"}
	got := make(map[int]bool)
	for _, pc := range res.Full {
		got[pc] = true
	}
	for _, name := range want {
		if !got[pcs[name]] {
			t.Errorf("slice missing %s (pc %d); slice = %v", name, pcs[name], res.Full)
		}
	}
	// The vector mul has only a FORWARD dependency on the slice: must be
	// excluded (the Figure 3 discussion).
	mulPC := pcs["reload"] - 11 // first Mul of the vector block
	if p.Insts[mulPC].Op != isa.OpMul {
		t.Fatalf("test bookkeeping: pc %d is %v, want mul", mulPC, p.Insts[mulPC].Op)
	}
	if got[mulPC] {
		t.Errorf("forward-dependent mul (pc %d) wrongly in slice", mulPC)
	}
}

func TestSlicerTerminatesOnLoopCarriedRecursion(t *testing.T) {
	p, tr, pcs := captureFig2(t)
	sl := newSlicer(tr, p)
	opts := DefaultOptions()
	opts.FilterCriticalPath = false
	res := sl.extract(pcs["ptrload"], 8, func(int) int { return 100 }, opts)
	// The slice must be bounded: loop-carried recursion terminates via
	// rule 1, so the static slice is a small fixed set, not the whole
	// program.
	if len(res.Full) >= p.Len() {
		t.Errorf("slice covers whole program (%d PCs)", len(res.Full))
	}
	if len(res.Full) > 10 {
		t.Errorf("slice suspiciously large: %d PCs: %v", len(res.Full), res.Full)
	}
}

func TestCriticalPathFilterDropsCheapSideChains(t *testing.T) {
	// root = add(slowChain, fastConst): the slow chain has a 100-cycle
	// load; the side chain is a single MovI. With slack 0-2 the MovI
	// survives only if on the critical path.
	b := program.NewBuilder("dag")
	b.MovI(isa.R(20), 0x1000) // addr base (leaf)
	b.Label("top")
	b.Load(isa.R(1), isa.R(20), 0)      // slow: amat 100
	b.AddI(isa.R(1), isa.R(1), 1)       // slow chain
	b.MovI(isa.R(2), 7)                 // cheap side value
	b.Add(isa.R(3), isa.R(1), isa.R(2)) // combine
	b.Load(isa.R(4), isa.R(3), 0)       // root load (address from r3)
	b.AddI(isa.R(20), isa.R(20), 64)
	b.MovI(isa.R(9), 1)
	b.Add(isa.R(10), isa.R(10), isa.R(9))
	b.MovI(isa.R(11), 20)
	b.Blt(isa.R(10), isa.R(11), "top")
	b.Halt()
	p := b.MustBuild()
	tr := trace.Capture(emu.New(p, emu.NewMemory()), 0)
	sl := newSlicer(tr, p)
	rootPC := 5 // the root load
	if p.Insts[rootPC].Op != isa.OpLoad {
		t.Fatalf("bookkeeping: pc %d is %v", rootPC, p.Insts[rootPC].Op)
	}
	opts := DefaultOptions()
	opts.CriticalPathSlack = 2
	res := sl.extract(rootPC, 4, func(int) int { return 100 }, opts)
	inFilt := make(map[int]bool)
	for _, pc := range res.Filtered {
		inFilt[pc] = true
	}
	if !inFilt[1] || !inFilt[2] { // slow load + slow add
		t.Errorf("critical chain missing from filtered slice %v", res.Filtered)
	}
	if inFilt[3] { // the cheap MovI side chain (slack ~100)
		t.Errorf("cheap side chain survived the filter: %v", res.Filtered)
	}
	if len(res.Filtered) >= len(res.Full) {
		t.Errorf("filter removed nothing: full %d filtered %d", len(res.Full), len(res.Filtered))
	}
}

func mkLoadProf(count, llcMiss uint64, mlpSum uint64) *core.LoadProf {
	return &core.LoadProf{
		Count: count, LLCMiss: llcMiss, L1Miss: llcMiss, MLPSum: mlpSum,
		TotalLat: count * 50, HeadStall: count * 60,
	}
}

func TestClassifyLoads(t *testing.T) {
	prof := &core.Result{Loads: map[int]*core.LoadProf{
		1: mkLoadProf(1000, 800, 800),   // hot delinquent, MLP 1: YES
		2: mkLoadProf(1000, 5, 5),       // tiny miss share: no
		3: mkLoadProf(100000, 900, 900), // miss ratio 0.9%: no (< 20%)
		4: mkLoadProf(1000, 700, 700*8), // MLP 8: no
	}}
	got := classifyLoads(prof, DefaultOptions())
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("classifyLoads = %v, want [1]", got)
	}
}

func TestClassifyLoadsThresholdKnob(t *testing.T) {
	prof := &core.Result{Loads: map[int]*core.LoadProf{
		1: mkLoadProf(1000, 960, 960),
		2: mkLoadProf(100, 30, 30),
		3: mkLoadProf(50, 10, 10),
	}}
	opts := DefaultOptions()
	opts.MissShareThreshold = 0.05 // T=5%: only load 1 (96%) qualifies
	if got := classifyLoads(prof, opts); len(got) != 1 {
		t.Errorf("T=5%%: %v", got)
	}
	opts.MissShareThreshold = 0.002 // T=0.2%: all three
	if got := classifyLoads(prof, opts); len(got) != 3 {
		t.Errorf("T=0.2%%: %v", got)
	}
}

func TestClassifyBranches(t *testing.T) {
	prof := &core.Result{Branches: map[int]*core.BranchProf{
		1: {Count: 1000, Mispred: 400}, // 40%: yes
		2: {Count: 1000, Mispred: 50},  // 5%: no
		3: {Count: 2, Mispred: 2},      // rare: no (share)
	}}
	got := classifyBranches(prof, DefaultOptions())
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("classifyBranches = %v, want [1]", got)
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	p, tr, pcs := captureFig2(t)
	// Fabricate the profile the timing run would produce: the pointer load
	// is delinquent.
	prof := &core.Result{
		Loads: map[int]*core.LoadProf{
			pcs["ptrload"]: mkLoadProf(40, 36, 40),
			pcs["valload"]: mkLoadProf(40, 2, 2),
		},
		Branches: map[int]*core.BranchProf{
			pcs["loopbr"]: {Count: 40, Mispred: 1},
		},
	}
	a := Analyze(prof, tr, p, DefaultOptions())
	if len(a.DelinquentLoads) != 1 || a.DelinquentLoads[0] != pcs["ptrload"] {
		t.Fatalf("delinquent loads = %v, want [%d]", a.DelinquentLoads, pcs["ptrload"])
	}
	if len(a.CriticalPCs) == 0 {
		t.Fatalf("no critical PCs")
	}
	found := false
	for _, pc := range a.CriticalPCs {
		if pc == pcs["ptrload"] {
			found = true
		}
		if pc < 0 || pc >= p.Len() {
			t.Errorf("critical pc %d out of range", pc)
		}
	}
	if !found {
		t.Errorf("root load not tagged: %v", a.CriticalPCs)
	}
	if a.DynCriticalFraction <= 0 || a.DynCriticalFraction > DefaultOptions().MaxCriticalFraction+1e-9 {
		t.Errorf("dynamic critical fraction = %v", a.DynCriticalFraction)
	}
	if a.AvgLoadSliceDynLen <= 0 {
		t.Errorf("no Figure 4 slice-size statistic")
	}
	// Applying must tag exactly the critical PCs.
	tagged := a.Apply(p)
	if got := tagged.CriticalPCs(); len(got) != len(a.CriticalPCs) {
		t.Errorf("Apply tagged %d PCs, want %d", len(got), len(a.CriticalPCs))
	}
	if len(p.CriticalPCs()) != 0 {
		t.Errorf("Apply mutated the original program")
	}
}

func TestGuardBandCapsDynamicFraction(t *testing.T) {
	p, tr, pcs := captureFig2(t)
	prof := &core.Result{
		Loads: map[int]*core.LoadProf{
			pcs["ptrload"]: mkLoadProf(40, 36, 40),
			pcs["valload"]: mkLoadProf(40, 30, 30),
		},
		Branches: map[int]*core.BranchProf{},
	}
	loose := Analyze(prof, tr, p, DefaultOptions())

	opts := DefaultOptions()
	opts.MaxCriticalFraction = 0.05 // tighter than one slice: drop the colder one
	a := Analyze(prof, tr, p, opts)
	if len(a.CriticalPCs) == 0 {
		t.Fatalf("guard dropped everything; hottest slice should stay")
	}
	if len(a.LoadSlices) != 1 {
		t.Errorf("guard kept %d slices, want only the hottest", len(a.LoadSlices))
	}
	if _, ok := a.LoadSlices[pcs["ptrload"]]; !ok {
		t.Errorf("guard dropped the hottest slice")
	}
	if a.DynCriticalFraction >= loose.DynCriticalFraction {
		t.Errorf("guard did not reduce dynamic fraction: %v vs %v",
			a.DynCriticalFraction, loose.DynCriticalFraction)
	}
}

func TestBranchSliceExtraction(t *testing.T) {
	p, tr, pcs := captureFig2(t)
	prof := &core.Result{
		Loads: map[int]*core.LoadProf{},
		Branches: map[int]*core.BranchProf{
			pcs["loopbr"]: {Count: 40, Mispred: 20},
		},
	}
	opts := DefaultOptions()
	opts.LoadSlices = false
	a := Analyze(prof, tr, p, opts)
	if len(a.HardBranches) != 1 {
		t.Fatalf("hard branches = %v", a.HardBranches)
	}
	if len(a.BranchSlices[pcs["loopbr"]]) == 0 {
		t.Fatalf("no branch slice extracted")
	}
	has := func(pc int) bool {
		for _, x := range a.BranchSlices[pcs["loopbr"]] {
			if x == pc {
				return true
			}
		}
		return false
	}
	if !has(pcs["loopbr"]) {
		t.Errorf("branch slice missing the branch itself")
	}
}

func TestSliceKindToggles(t *testing.T) {
	p, tr, pcs := captureFig2(t)
	prof := &core.Result{
		Loads:    map[int]*core.LoadProf{pcs["ptrload"]: mkLoadProf(40, 36, 40)},
		Branches: map[int]*core.BranchProf{pcs["loopbr"]: {Count: 40, Mispred: 20}},
	}
	opts := DefaultOptions()
	opts.BranchSlices = false
	a := Analyze(prof, tr, p, opts)
	if len(a.BranchSlices) != 0 {
		t.Errorf("branch slices extracted despite toggle off")
	}
	opts = DefaultOptions()
	opts.LoadSlices = false
	a = Analyze(prof, tr, p, opts)
	if len(a.LoadSlices) != 0 {
		t.Errorf("load slices extracted despite toggle off")
	}
}

func TestFootprintAccounting(t *testing.T) {
	p, tr, pcs := captureFig2(t)
	f := MeasureFootprint(p, tr, []int{pcs["ptrload"], pcs["valload"]})
	if f.CriticalStatic != 2 {
		t.Errorf("critical static = %d", f.CriticalStatic)
	}
	if f.StaticBytesTagged != f.StaticBytesBase+2 {
		t.Errorf("static bytes %d -> %d, want +2", f.StaticBytesBase, f.StaticBytesTagged)
	}
	if f.DynOverhead() <= 0 || f.DynOverhead() > 0.5 {
		t.Errorf("dynamic overhead = %v", f.DynOverhead())
	}
	if f.StaticOverhead() <= 0 || f.StaticOverhead() > 0.1 {
		t.Errorf("static overhead = %v", f.StaticOverhead())
	}
	if f.CriticalDynShare <= 0 || f.CriticalDynShare > 1 {
		t.Errorf("critical dynamic share = %v", f.CriticalDynShare)
	}
}
