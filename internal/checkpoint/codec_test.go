package checkpoint

import (
	"bytes"
	"testing"

	"crisp/internal/cache"
	"crisp/internal/codec"
	"crisp/internal/emu"
	"crisp/internal/isa"
	"crisp/internal/prefetch"
	"crisp/internal/program"
)

// codecCapture captures a set whose memory spans many pages, most of
// them never written after initialization, so consecutive points share
// page storage copy-on-write — the sharing the codec must preserve.
func codecCapture(t *testing.T) *Set {
	t.Helper()
	prog := chaseProgram(t)
	mem := emu.NewMemory()
	for i := int64(0); i < 64; i++ {
		mem.WriteWord(uint64(0x4000+8*i), i)
	}
	// Pages the program never touches: resident, read-only, shared by
	// every snapshot.
	for pg := int64(0); pg < 32; pg++ {
		mem.WriteWord(uint64(0x100000+pg*4096), pg)
	}
	pfs := map[string]prefetch.Prefetcher{
		"bop+stream": &prefetch.Composite{Parts: []prefetch.Prefetcher{prefetch.NewBOP(), prefetch.NewStream(64)}},
		"stride":     prefetch.NewStride(256),
		"ghb":        prefetch.NewGHB(512),
		"none":       nil,
	}
	return Capture(prog, emu.New(prog, mem), cache.DefaultHierConfig(), 128, 4, 16, pfs,
		Params{Skip: 100, Warm: 2000, Window: 500, Count: 3})
}

// TestCodecRoundTrip: decode(encode(set)) must preserve every field the
// encoder covers. Direct DeepEqual is confounded by unexported decode-
// side caches, so fidelity is checked the way the store relies on it:
// re-encoding the decoded set must reproduce the original bytes exactly
// (which also proves encoding is deterministic).
func TestCodecRoundTrip(t *testing.T) {
	set := codecCapture(t)
	const key = "test-content-key"
	enc := EncodeSet(set, key)

	dec, err := DecodeSet(enc, key)
	if err != nil {
		t.Fatalf("DecodeSet: %v", err)
	}
	if len(dec.Points) != len(set.Points) {
		t.Fatalf("decoded %d points, want %d", len(dec.Points), len(set.Points))
	}
	if dec.Hier != set.Hier || dec.FFInsts != set.FFInsts || dec.HostNS != set.HostNS {
		t.Errorf("set header fields did not round-trip")
	}
	re := EncodeSet(dec, key)
	if !bytes.Equal(enc, re) {
		t.Fatalf("re-encoding the decoded set produced different bytes (%d vs %d)", len(enc), len(re))
	}

	// A decoded point must be restorable (memory snapshot, variant
	// clones) just like a captured one.
	prog := chaseProgram(t)
	for _, kind := range []string{"bop+stream", "stride", "ghb", "none"} {
		st, err := dec.Points[0].Restore(prog, kind)
		if err != nil {
			t.Fatalf("Restore(%q) on decoded point: %v", kind, err)
		}
		if st.Em.PC() != set.Points[0].PC {
			t.Errorf("restored PC = %d, want %d", st.Em.PC(), set.Points[0].PC)
		}
	}

	// Decoding with no expected key skips the key match but still
	// verifies integrity.
	if _, err := DecodeSet(enc, ""); err != nil {
		t.Errorf("DecodeSet with empty expectKey: %v", err)
	}
}

// TestCodecPageDedup: points snapshot copy-on-write, so the encoded
// image must intern shared pages once, not once per point. The dict
// page count sits at a fixed position after the payload header; parse
// it and compare against the naive per-point sum.
func TestCodecPageDedup(t *testing.T) {
	set := codecCapture(t)
	sumPages, maxPages := 0, 0
	for _, pt := range set.Points {
		sumPages += pt.Mem.Pages()
		if pt.Mem.Pages() > maxPages {
			maxPages = pt.Mem.Pages()
		}
	}
	enc := EncodeSet(set, "k")

	r := codec.NewReader(enc)
	r.Raw(len(codecMagic)) // magic
	r.U32()                // codec version
	_ = r.String()         // content key
	r.U32()                // crc
	r.U64()                // payload length
	_ = r.String()         // hierarchy config JSON
	r.U64()                // ff insts
	r.I64()                // host ns
	r.U32()                // point count
	dictPages := int(r.U32())
	if err := r.Err(); err != nil {
		t.Fatalf("parse encoded header: %v", err)
	}
	if dictPages < maxPages {
		t.Errorf("dict holds %d pages, fewer than one point's %d", dictPages, maxPages)
	}
	if dictPages >= sumPages {
		t.Errorf("dict holds %d pages for %d summed across points: shared pages not interned", dictPages, sumPages)
	}
}

// TestCodecSingleVariant pins the codec's lower bound on variant count:
// a set warmed for exactly one prefetcher kind (a minimal capture, no
// cross-kind sharing) must round-trip byte-identically and restore.
func TestCodecSingleVariant(t *testing.T) {
	prog := chaseProgram(t)
	mem := emu.NewMemory()
	for i := int64(0); i < 64; i++ {
		mem.WriteWord(uint64(0x4000+8*i), i)
	}
	set := Capture(prog, emu.New(prog, mem), cache.DefaultHierConfig(), 128, 4, 16,
		map[string]prefetch.Prefetcher{"stride": prefetch.NewStride(256)},
		Params{Warm: 2000, Window: 500, Count: 2})
	const key = "single-variant-key"
	enc := EncodeSet(set, key)
	dec, err := DecodeSet(enc, key)
	if err != nil {
		t.Fatalf("DecodeSet: %v", err)
	}
	if !bytes.Equal(enc, EncodeSet(dec, key)) {
		t.Fatal("single-variant set did not round-trip byte-identically")
	}
	if _, err := dec.Points[0].Restore(prog, "stride"); err != nil {
		t.Fatalf("Restore on decoded single-variant point: %v", err)
	}
	if _, err := dec.Points[0].Restore(prog, "ghb"); err == nil {
		t.Error("restoring a kind the single-variant set never warmed must fail")
	}
}

// TestCodecZeroPageMemory pins the other lower bound: a register-only
// program touches no data memory, so every snapshot's page table is
// empty and the page dict holds zero pages — a shape the length-prefixed
// page encoding must represent, not a corrupt header.
func TestCodecZeroPageMemory(t *testing.T) {
	b := program.NewBuilder("regonly")
	b.MovI(isa.R(1), 0)
	b.Label("loop")
	b.AddI(isa.R(1), isa.R(1), 1)
	b.Jmp("loop")
	prog := b.MustBuild()
	set := Capture(prog, emu.New(prog, emu.NewMemory()), cache.DefaultHierConfig(), 128, 4, 16,
		map[string]prefetch.Prefetcher{"none": nil},
		Params{Warm: 1000, Window: 200, Count: 2})
	if len(set.Points) == 0 {
		t.Fatal("no points captured")
	}
	for i, pt := range set.Points {
		if pt.Mem.Pages() != 0 {
			t.Fatalf("point %d snapshot holds %d pages, want 0", i, pt.Mem.Pages())
		}
	}
	const key = "zero-page-key"
	enc := EncodeSet(set, key)
	dec, err := DecodeSet(enc, key)
	if err != nil {
		t.Fatalf("DecodeSet: %v", err)
	}
	if !bytes.Equal(enc, EncodeSet(dec, key)) {
		t.Fatal("zero-page set did not round-trip byte-identically")
	}
	st, err := dec.Points[0].Restore(prog, "none")
	if err != nil {
		t.Fatalf("Restore on decoded zero-page point: %v", err)
	}
	if pc := st.Em.PC(); pc != set.Points[0].PC {
		t.Errorf("restored PC = %d, want %d", pc, set.Points[0].PC)
	}
}

// TestCodecDetectsCorruption: every class of damage — bit flip in a
// memory page, truncation, header tampering — must decode to an error,
// never to silently wrong state.
func TestCodecDetectsCorruption(t *testing.T) {
	set := codecCapture(t)
	const key = "test-content-key"
	enc := EncodeSet(set, key)

	// Flip one byte in the back half (page/point data, beyond the
	// header) — the satellite requirement: corrupt one page byte, assert
	// detection.
	bad := append([]byte(nil), enc...)
	bad[len(bad)/2] ^= 0x01
	if _, err := DecodeSet(bad, key); err == nil {
		t.Error("bit flip in payload decoded without error")
	}

	// Truncation (torn write without the atomic rename).
	if _, err := DecodeSet(enc[:len(enc)/3], key); err == nil {
		t.Error("truncated image decoded without error")
	}
	if _, err := DecodeSet(enc[:4], key); err == nil {
		t.Error("header-only image decoded without error")
	}

	// Key mismatch: a file renamed over the wrong key must not load.
	if _, err := DecodeSet(enc, "other-key"); err == nil {
		t.Error("mismatched content key decoded without error")
	}

	// Version/magic tampering.
	bad = append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	if _, err := DecodeSet(bad, key); err == nil {
		t.Error("bad magic decoded without error")
	}
	bad = append([]byte(nil), enc...)
	bad[len(codecMagic)] ^= 0xFF // low byte of the codec version
	if _, err := DecodeSet(bad, key); err == nil {
		t.Error("bad codec version decoded without error")
	}
}
