package checkpoint

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"crisp/internal/emu"
)

// Batched producer/consumer capture pipeline.
//
// Warming is the capture bottleneck: the functional fast-forward drops
// from ~90 MIPS bare to 10-18 MIPS while streaming into the warmer, and
// the sequential path fans every data access across every
// prefetcher-variant hierarchy in turn, so cost scales with the variant
// count. The pipeline splits the work along its two independence axes:
//
//   - Time: the producer (the capturing goroutine, which owns the
//     emulator) records the warm stream into fixed-size pooled event
//     batches (emu.FastForwardBatch — no per-event allocation) and keeps
//     fast-forwarding the next batch while consumers replay the current
//     one. Skip phases and snapshots overlap with outstanding replay the
//     same way.
//
//   - Structure: each warming structure — the prefetcher-independent
//     frontend (TAGE/BTB/RAS) and each variant's hierarchy+prefetcher —
//     depends only on the recorded stream and its own prior state, never
//     on a sibling variant. So each one can be replayed on its own
//     consumer goroutine from the shared read-only batch. Every structure
//     still observes the exact event sequence the sequential path would
//     have delivered, which is why parallel capture is bit-identical to
//     sequential capture (TestCaptureParallelEquivalence asserts this).
//
// The multi-core capture uses the time axis only: its variants share one
// LLC, so a single consumer replays the recorded interleave in order
// (see multi.go), preserving store-dirtiness propagation and the
// content-keyed determinism of co-scheduled sets.
//
// Synchronization protocol: a published batch carries a consumer
// refcount; the last consumer to finish recycles it into the pool. The
// producer tracks outstanding replays in a WaitGroup and waits on it
// before every snapshot, so snapshots read quiescent warming state with
// a happens-before edge from each consumer's replay.

// batchInsts is the producer granularity: instructions fast-forwarded
// per published batch. Large enough that channel and refcount overhead
// amortizes to noise (~a few thousand events per batch), small enough
// that the pipeline stays full and cancellation is responsive.
const batchInsts = 8192

// batchEvents flushes the multi-core capture's accumulating batch once
// it holds this many interleaved events (its chunks are pace-scaled and
// can be much smaller than batchInsts).
const batchEvents = 16384

// testDropBatch, when set to publishIndex+1, makes the pipeline silently
// drop that batch instead of replaying it — a deliberate fault injection
// hook proving the equivalence test actually detects divergence. Zero
// (the default) disables it. Set via SetDropBatch in export_test.go.
var testDropBatch atomic.Int64

// replayTask replays one warming structure's share of a batch's events.
type replayTask func(evs []emu.BatchEv)

// pbatch is a pooled batch plus its consumer refcount.
type pbatch struct {
	emu.Batch
	refs atomic.Int32
}

// pipeline carries the capture's producer/consumer machinery.
type pipeline struct {
	ctx       context.Context
	pool      chan *pbatch
	chans     []chan *pbatch
	inflight  sync.WaitGroup // published batches not yet fully replayed
	consumers sync.WaitGroup // consumer goroutines
	published int64          // batches published so far (fault-injection index)
	cur       *pbatch        // batch being recorded, not yet published
}

// captureConsumers maps a requested total worker count (producer
// included; <= 0 means GOMAXPROCS) to the number of warming consumers,
// bounded by the task count. Zero means: run sequentially.
func captureConsumers(workers, tasks int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := workers - 1 // the capturing goroutine is the producer
	if n > tasks {
		n = tasks
	}
	if n < 0 {
		n = 0
	}
	return n
}

// newPipeline starts consumers goroutines with the tasks distributed
// round-robin among them and returns the ready pipeline. The pool holds
// consumers+2 batches: one being recorded, one in flight per consumer
// imbalance, so the producer only blocks when replay genuinely lags.
func newPipeline(ctx context.Context, tasks []replayTask, consumers int) *pipeline {
	if consumers > len(tasks) {
		consumers = len(tasks)
	}
	depth := consumers + 2
	pl := &pipeline{
		ctx:   ctx,
		pool:  make(chan *pbatch, depth),
		chans: make([]chan *pbatch, consumers),
	}
	for i := 0; i < depth; i++ {
		pl.pool <- &pbatch{Batch: emu.Batch{Ev: make([]emu.BatchEv, 0, 2*batchInsts)}}
	}
	shards := make([][]replayTask, consumers)
	for i, t := range tasks {
		shards[i%consumers] = append(shards[i%consumers], t)
	}
	for i := range pl.chans {
		ch := make(chan *pbatch, depth)
		pl.chans[i] = ch
		pl.consumers.Add(1)
		go pl.consume(ch, shards[i])
	}
	return pl
}

func (pl *pipeline) consume(ch chan *pbatch, tasks []replayTask) {
	defer pl.consumers.Done()
	for b := range ch {
		for _, t := range tasks {
			t(b.Ev)
		}
		pl.inflight.Done()
		if b.refs.Add(-1) == 0 {
			b.Reset()
			pl.pool <- b
		}
	}
}

// batch returns the batch currently being recorded, taking a fresh one
// from the pool if none is open (blocking until replay recycles one).
func (pl *pipeline) batch() *pbatch {
	if pl.cur == nil {
		pl.cur = <-pl.pool
	}
	return pl.cur
}

// flush publishes the open batch to every consumer. Empty batches (and
// the fault-injection victim) recycle straight back to the pool.
func (pl *pipeline) flush() {
	b := pl.cur
	if b == nil {
		return
	}
	pl.cur = nil
	idx := pl.published
	pl.published++
	if len(b.Ev) == 0 || testDropBatch.Load() == idx+1 {
		b.Reset()
		pl.pool <- b
		return
	}
	b.refs.Store(int32(len(pl.chans)))
	pl.inflight.Add(len(pl.chans))
	for _, ch := range pl.chans {
		ch <- b
	}
}

// barrier publishes any open batch and blocks until every published
// batch has been fully replayed. After it returns the warming state is
// quiescent and memory-synchronized with the producer, so snapshots may
// read it directly.
func (pl *pipeline) barrier() {
	pl.flush()
	pl.inflight.Wait()
}

// close drains and joins the consumers. An open unpublished batch (only
// possible on a cancelled capture) is discarded.
func (pl *pipeline) close() {
	pl.cur = nil
	for _, ch := range pl.chans {
		close(ch)
	}
	pl.consumers.Wait()
}

// ffRecord fast-forwards up to limit instructions on em, recording the
// warm stream into pooled batches and publishing each one as it fills.
// The code-line dedup state threads across batches so the recorded
// stream is exactly what one sequential FastForward(limit, w) call would
// have delivered. Returns the instructions executed (short on Halt or
// cancellation).
func (pl *pipeline) ffRecord(em *emu.Emulator, limit uint64) uint64 {
	var n uint64
	lastLine := ^uint64(0)
	for n < limit {
		if pl.ctx.Err() != nil {
			return n
		}
		b := pl.batch()
		step := limit - n
		if step > batchInsts {
			step = batchInsts
		}
		done, ll := em.FastForwardBatch(step, &b.Batch, 0, lastLine)
		lastLine = ll
		n += done
		pl.flush()
		if done < step {
			return n // program halted
		}
	}
	return n
}

// recordChunk records one core's pace-scaled interleave chunk into the
// accumulating multi-core batch, flushing when it fills. Each chunk
// starts with fresh code-line dedup state, matching the sequential
// path's one-FastForward-call-per-chunk structure.
func (pl *pipeline) recordChunk(em *emu.Emulator, core uint8, step uint64) uint64 {
	b := pl.batch()
	done, _ := em.FastForwardBatch(step, &b.Batch, core, ^uint64(0))
	if len(b.Ev) >= batchEvents {
		pl.flush()
	}
	return done
}

// replayFrontend returns the task replaying branch events into the
// prefetcher-independent frontend structures (TAGE, BTB, RAS).
func replayFrontend(w *warmer) replayTask {
	return func(evs []emu.BatchEv) {
		for i := range evs {
			ev := &evs[i]
			if ev.Kind != emu.EvBranch {
				continue
			}
			w.WarmBranch(int(ev.PC), &w.prog.Insts[ev.PC], ev.Flag, int(ev.NextPC))
		}
	}
}

// replayVariant returns the task replaying code-line and data events
// into one variant's hierarchy and prefetcher. The hit flag feeding
// prefetcher training comes from the variant's own hierarchy at replay
// time, exactly as in the sequential fan-out.
func replayVariant(v *liveVariant, shared bool) replayTask {
	return func(evs []emu.BatchEv) {
		for i := range evs {
			ev := &evs[i]
			switch ev.Kind {
			case emu.EvInstLine:
				v.hier.WarmInst(ev.Addr)
			case emu.EvData:
				warmOne(v, shared, int(ev.PC), ev.Addr, ev.Flag)
			}
		}
	}
}

// capturePipelined is the parallel capture loop: the calling goroutine
// produces recorded batches while the frontend and each variant replay
// on consumer goroutines. Bit-identical to captureSequential by
// construction — every structure sees the same event sequence — and
// ~2-4x faster cold with >= 3 variants because variant warming, the
// dominant cost, runs width-parallel while the next region fast-forwards.
func capturePipelined(ctx context.Context, em *emu.Emulator, w *warmer, p Params, set *Set, consumers int) {
	tasks := make([]replayTask, 0, len(w.variants)+1)
	tasks = append(tasks, replayFrontend(w))
	for i := range w.variants {
		tasks = append(tasks, replayVariant(&w.variants[i], w.shared))
	}
	pl := newPipeline(ctx, tasks, consumers)
	defer pl.close()
	for i := 0; i < p.Count; i++ {
		// The skip fast-forward overlaps with any still-outstanding
		// window replay from the previous iteration.
		set.FFInsts += em.FastForward(p.Skip, nil)
		n := pl.ffRecord(em, p.Warm)
		set.FFInsts += n
		set.WarmInsts += n
		pl.barrier()
		if ctx.Err() != nil || em.Done() {
			return
		}
		set.Points = append(set.Points, snapshotPoint(em, w, set.FFInsts))
		n = pl.ffRecord(em, p.Window)
		set.FFInsts += n
		set.WarmInsts += n
	}
	pl.barrier()
}
