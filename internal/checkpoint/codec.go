package checkpoint

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"sort"

	"crisp/internal/branch"
	"crisp/internal/cache"
	"crisp/internal/codec"
	"crisp/internal/emu"
	"crisp/internal/prefetch"
)

// Binary container for a Set on disk. Layout:
//
//	magic "CRSPCKP1" | u32 codecVersion | string contentKey |
//	u32 crc32(payload) | u64 len(payload) | payload
//
// The content key embeds sim.CodeVersion plus everything that shapes a
// capture (workload, input variant, schedule, warmed geometry), so a
// simulator change misses every stale file instead of deserializing
// wrong state. codecVersion tracks the byte layout itself and bumps
// independently: a layout change invalidates old files even when the
// simulated behaviour (and hence the content key) is unchanged. The CRC
// covers the payload, so a torn or bit-flipped entry decodes to a clean
// error — callers treat that as a miss, delete the file and recapture.
//
// Payload:
//
//	string hierJSON | u64 ffInsts | i64 hostNS | u32 pointCount |
//	page dict (u32 count, raw 4 KiB pages) |
//	per point: pc, regs, ffInsts, TAGE, BTB, RAS,
//	           u32 variantCount, per variant (sorted by name):
//	               string name | hierarchy | prefetcher |
//	           memory page table (page numbers -> dict indices)
//
// Pages are interned by pointer identity across every memory in the set
// (emu.PageDict): capture snapshots copy-on-write, so consecutive points
// share almost all pages and the dict stores each distinct page once.
// Decoding rebuilds the sharing, so a decoded set costs about as much
// memory as the captured one — not pointCount times more.

const (
	codecMagic   = "CRSPCKP1"
	codecVersion = 1
)

// maxPoints bounds the decoded point count (a schedule has tens of
// windows; corrupt headers must not drive huge allocations).
const maxPoints = 1 << 20

// EncodeSet serializes the set under the given content key.
func EncodeSet(set *Set, key string) []byte {
	// Pass 1: encode point state into a scratch writer, interning pages.
	var pw codec.Writer
	dict := emu.NewPageDict()
	for _, pt := range set.Points {
		pw.Int(pt.PC)
		for _, v := range pt.Regs {
			pw.I64(v)
		}
		pw.U64(pt.FFInsts)
		pt.BP.EncodeState(&pw)
		pt.BTB.EncodeState(&pw)
		pt.RAS.EncodeState(&pw)
		names := make([]string, 0, len(pt.Variants))
		for name := range pt.Variants {
			names = append(names, name)
		}
		sort.Strings(names)
		pw.U32(uint32(len(names)))
		for _, name := range names {
			v := pt.Variants[name]
			pw.String(name)
			v.Hier.EncodeState(&pw)
			prefetch.Encode(&pw, v.PF)
		}
		pt.Mem.EncodeState(&pw, dict)
	}

	// Pass 2: assemble the payload with the dict ahead of the page
	// tables that reference it.
	var w codec.Writer
	hierJSON, err := json.Marshal(set.Hier)
	if err != nil { // unreachable: HierConfig is plain data
		panic(fmt.Sprintf("checkpoint: marshal HierConfig: %v", err))
	}
	w.String(string(hierJSON))
	w.U64(set.FFInsts)
	w.I64(set.HostNS)
	w.U32(uint32(len(set.Points)))
	dict.EncodePages(&w)
	w.Raw(pw.Bytes())
	payload := w.Bytes()

	var out codec.Writer
	out.Raw([]byte(codecMagic))
	out.U32(codecVersion)
	out.String(key)
	out.U32(crc32.ChecksumIEEE(payload))
	out.U64(uint64(len(payload)))
	out.Raw(payload)
	return out.Bytes()
}

// DecodeSet deserializes a set encoded by EncodeSet, verifying the magic,
// codec version, CRC, and — when expectKey is non-empty — the content
// key. Any mismatch or truncation is an error; the caller deletes the
// file and recaptures.
func DecodeSet(data []byte, expectKey string) (*Set, error) {
	r := codec.NewReader(data)
	if magic := string(r.Raw(len(codecMagic))); magic != codecMagic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", magic)
	}
	if v := r.U32(); v != codecVersion {
		return nil, fmt.Errorf("checkpoint: codec version %d, want %d", v, codecVersion)
	}
	key := r.String()
	if expectKey != "" && key != expectKey {
		return nil, fmt.Errorf("checkpoint: content key %q does not match %q", key, expectKey)
	}
	crc := r.U32()
	plen := r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if plen != uint64(r.Remaining()) {
		return nil, fmt.Errorf("checkpoint: payload length %d, have %d bytes", plen, r.Remaining())
	}
	payload := r.Raw(int(plen))
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, fmt.Errorf("checkpoint: payload CRC %#x, want %#x", got, crc)
	}

	p := codec.NewReader(payload)
	set := &Set{}
	if err := json.Unmarshal([]byte(p.String()), &set.Hier); err != nil {
		return nil, fmt.Errorf("checkpoint: decode hierarchy config: %w", err)
	}
	set.FFInsts = p.U64()
	set.HostNS = p.I64()
	n := int(p.U32())
	if err := p.Err(); err != nil {
		return nil, err
	}
	if n < 0 || n > maxPoints {
		return nil, fmt.Errorf("checkpoint: point count %d out of range", n)
	}
	dict, err := emu.DecodePageDict(p)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		pt := &Point{PC: p.Int()}
		for j := range pt.Regs {
			pt.Regs[j] = p.I64()
		}
		pt.FFInsts = p.U64()
		if pt.BP, err = branch.DecodeTAGE(p); err != nil {
			return nil, fmt.Errorf("checkpoint: point %d: %w", i, err)
		}
		if pt.BTB, err = branch.DecodeBTB(p); err != nil {
			return nil, fmt.Errorf("checkpoint: point %d: %w", i, err)
		}
		if pt.RAS, err = branch.DecodeRAS(p); err != nil {
			return nil, fmt.Errorf("checkpoint: point %d: %w", i, err)
		}
		nv := int(p.U32())
		if err := p.Err(); err != nil {
			return nil, err
		}
		if nv < 0 || nv > 64 {
			return nil, fmt.Errorf("checkpoint: point %d: variant count %d out of range", i, nv)
		}
		pt.Variants = make(map[string]*Variant, nv)
		for j := 0; j < nv; j++ {
			name := p.String()
			v := &Variant{}
			if v.Hier, err = cache.DecodeHierarchy(p, set.Hier); err != nil {
				return nil, fmt.Errorf("checkpoint: point %d variant %q: %w", i, name, err)
			}
			if v.PF, err = prefetch.Decode(p); err != nil {
				return nil, fmt.Errorf("checkpoint: point %d variant %q: %w", i, name, err)
			}
			pt.Variants[name] = v
		}
		if pt.Mem, err = emu.DecodeMemory(p, dict); err != nil {
			return nil, fmt.Errorf("checkpoint: point %d: %w", i, err)
		}
		set.Points = append(set.Points, pt)
	}
	if err := p.Err(); err != nil {
		return nil, err
	}
	if p.Remaining() != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after %d points", p.Remaining(), n)
	}
	return set, nil
}
