package checkpoint

import (
	"sync"
	"testing"

	"crisp/internal/cache"
	"crisp/internal/emu"
	"crisp/internal/isa"
	"crisp/internal/prefetch"
	"crisp/internal/program"
)

// chaseProgram loops forever summing a small array: enough loads,
// stores, and taken branches to exercise every warming path.
func chaseProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("chase")
	b.MovI(isa.R(1), 0x4000) // array base
	b.MovI(isa.R(5), 64)     // elements
	b.Label("outer")
	b.MovI(isa.R(2), 0) // i
	b.MovI(isa.R(4), 0) // acc
	b.Label("loop")
	b.LoadIdx(isa.R(3), isa.R(1), isa.R(2), 8, 0)
	b.Add(isa.R(4), isa.R(4), isa.R(3))
	b.AddI(isa.R(2), isa.R(2), 1)
	b.Blt(isa.R(2), isa.R(5), "loop")
	b.Store(isa.R(1), 0, isa.R(4))
	b.Jmp("outer")
	return b.MustBuild()
}

func testCapture(t *testing.T, p Params) (*program.Program, *Set) {
	t.Helper()
	prog := chaseProgram(t)
	mem := emu.NewMemory()
	for i := int64(0); i < 64; i++ {
		mem.WriteWord(uint64(0x4000+8*i), i)
	}
	pfs := map[string]prefetch.Prefetcher{
		"bop":  prefetch.NewBOP(),
		"none": nil,
	}
	set := Capture(prog, emu.New(prog, mem), cache.DefaultHierConfig(), 128, 4, 16, pfs, p)
	return prog, set
}

func TestCaptureSchedule(t *testing.T) {
	p := Params{Skip: 100, Warm: 200, Window: 150, Count: 3}
	_, set := testCapture(t, p)
	if len(set.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(set.Points))
	}
	for i, pt := range set.Points {
		want := uint64(i+1)*(p.Skip+p.Warm) + uint64(i)*p.Window
		if pt.FFInsts != want {
			t.Errorf("point %d FFInsts = %d, want %d", i, pt.FFInsts, want)
		}
		for _, kind := range []string{"bop", "none"} {
			if pt.Variants[kind] == nil {
				t.Errorf("point %d missing variant %q", i, kind)
			}
		}
		if pt.Variants["bop"].PF == nil || pt.Variants["none"].PF != nil {
			t.Errorf("point %d prefetcher templates wrong", i)
		}
	}
	if set.FFInsts != p.Total() {
		t.Errorf("set FFInsts = %d, want %d", set.FFInsts, p.Total())
	}
}

func TestCaptureWarmsState(t *testing.T) {
	prog, set := testCapture(t, Params{Warm: 2000, Window: 100, Count: 1})
	pt := set.Points[0]
	// The array lines the warm phase streamed must be resident in the
	// warmed L1D (probe a clone so the template stays untouched).
	l1d := pt.Variants["none"].Hier.Clone().L1D
	if !l1d.Warm(0x4000, false) || !l1d.Warm(0x4000+8*63, false) {
		t.Errorf("warmed L1D missing array lines")
	}
	// The loop's taken backward branch must be in the warmed BTB.
	var branchPC int
	for i, in := range prog.Insts {
		if in.Op == isa.OpBlt {
			branchPC = i
		}
	}
	if _, ok := pt.BTB.Clone().Lookup(prog.ByteAddr(branchPC)); !ok {
		t.Errorf("warmed BTB missing loop branch")
	}
}

func TestRestoreIsolation(t *testing.T) {
	prog, set := testCapture(t, Params{Warm: 500, Window: 100, Count: 1})
	pt := set.Points[0]
	a, err := pt.Restore(prog, "bop")
	if err != nil {
		t.Fatal(err)
	}
	b, err := pt.Restore(prog, "bop")
	if err != nil {
		t.Fatal(err)
	}
	// Advance one restore (its stores mutate memory); the other must see
	// the checkpointed state, not the mutations.
	a.Em.Run(5000)
	aSum := a.Em.Mem().ReadWord(0x4000)
	if got := b.Em.Mem().ReadWord(0x4000); got == aSum {
		t.Fatalf("restores share memory: both read %d", got)
	}
	b.Em.Run(5000)
	if a.Em.PC() != b.Em.PC() || a.Em.Regs() != b.Em.Regs() {
		t.Errorf("identical restores diverged: pc %d vs %d", a.Em.PC(), b.Em.PC())
	}
}

func TestRestoreUnknownKind(t *testing.T) {
	prog, set := testCapture(t, Params{Warm: 100, Window: 100, Count: 1})
	if _, err := set.Points[0].Restore(prog, "nosuch"); err == nil {
		t.Fatal("Restore of unknown prefetcher kind succeeded")
	}
}

func TestConcurrentRestores(t *testing.T) {
	prog, set := testCapture(t, Params{Warm: 500, Window: 100, Count: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, pt := range set.Points {
				for _, kind := range []string{"bop", "none"} {
					st, err := pt.Restore(prog, kind)
					if err != nil {
						t.Error(err)
						return
					}
					st.Em.Run(1000)
					st.Hier.WarmData(0x9000, true)
				}
			}
		}()
	}
	wg.Wait()
}

func TestCaptureHaltingProgram(t *testing.T) {
	b := program.NewBuilder("short")
	b.MovI(isa.R(1), 1)
	b.Halt()
	prog := b.MustBuild()
	set := Capture(prog, emu.New(prog, nil), cache.DefaultHierConfig(), 128, 4, 16, nil, Params{Warm: 100, Window: 100, Count: 4})
	if len(set.Points) != 0 {
		t.Errorf("points for halted program = %d, want 0", len(set.Points))
	}
}
