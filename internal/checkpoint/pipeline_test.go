package checkpoint

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"crisp/internal/cache"
	"crisp/internal/emu"
	"crisp/internal/isa"
	"crisp/internal/prefetch"
	"crisp/internal/program"
)

// storeProgram streams stores over a buffer with a periodic backward
// branch: exercises the store (dirtiness) warming path and the BTB.
func storeProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("storestream")
	b.MovI(isa.R(1), 0x8000) // buffer base
	b.MovI(isa.R(5), 128)    // elements
	b.Label("outer")
	b.MovI(isa.R(2), 0)
	b.Label("loop")
	b.Shl(isa.R(6), isa.R(2), 3)
	b.Add(isa.R(6), isa.R(1), isa.R(6))
	b.Load(isa.R(3), isa.R(6), 0)
	b.AddI(isa.R(3), isa.R(3), 1)
	b.Store(isa.R(6), 0, isa.R(3))
	b.AddI(isa.R(2), isa.R(2), 1)
	b.Blt(isa.R(2), isa.R(5), "loop")
	b.Jmp("outer")
	return b.MustBuild()
}

// chaseEmu builds a fresh emulator over the chase program's initialized
// memory (captures consume their emulator, so every capture needs its
// own).
func chaseEmu(t *testing.T, prog *program.Program) *emu.Emulator {
	t.Helper()
	mem := emu.NewMemory()
	for i := int64(0); i < 64; i++ {
		mem.WriteWord(uint64(0x4000+8*i), i)
	}
	return emu.New(prog, mem)
}

// capturePFS builds a fresh per-kind prefetcher map (instances are
// trained in place, so each capture needs its own).
func capturePFS() map[string]prefetch.Prefetcher {
	return map[string]prefetch.Prefetcher{
		"bop":    prefetch.NewBOP(),
		"stride": prefetch.NewStride(256),
		"ghb":    prefetch.NewGHB(512),
		"none":   nil,
	}
}

// TestCaptureParallelEquivalence pins the tentpole invariant of the
// capture pipeline: the parallel producer/consumer capture must be
// bit-identical to the sequential reference — decoded Sets DeepEqual,
// encoded bytes identical — because content-keyed stores and golden
// figures both depend on capture determinism. The drop-batch fault
// injection then proves the comparison actually detects divergence.
func TestCaptureParallelEquivalence(t *testing.T) {
	prog := chaseProgram(t)
	p := Params{Skip: 100, Warm: 20_000, Window: 2000, Count: 3}
	capture := func(workers int) *Set {
		set, err := CaptureContext(context.Background(), prog, chaseEmu(t, prog),
			cache.DefaultHierConfig(), 128, 4, 16, capturePFS(), p, workers)
		if err != nil {
			t.Fatal(err)
		}
		set.HostNS = 0 // wall time legitimately differs
		return set
	}
	seq := capture(1)
	par := capture(8)
	const key = "equivalence-key"
	seqBytes := EncodeSet(seq, key)
	parBytes := EncodeSet(par, key)
	if !bytes.Equal(seqBytes, parBytes) {
		t.Fatalf("parallel capture encodes differently from sequential (%d vs %d bytes)",
			len(parBytes), len(seqBytes))
	}
	dseq, err := DecodeSet(seqBytes, key)
	if err != nil {
		t.Fatal(err)
	}
	dpar, err := DecodeSet(parBytes, key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dseq, dpar) {
		t.Fatal("decoded parallel Set differs from decoded sequential Set")
	}
	if par.WarmInsts != seq.WarmInsts || par.WarmInsts != (p.Warm+p.Window)*uint64(p.Count) {
		t.Errorf("WarmInsts = %d (seq %d), want %d", par.WarmInsts, seq.WarmInsts, (p.Warm+p.Window)*uint64(p.Count))
	}

	// Mutation check: dropping one warm batch must break the equality —
	// otherwise the comparison above proves nothing.
	SetDropBatch(0)
	defer SetDropBatch(-1)
	mutated := capture(8)
	if bytes.Equal(EncodeSet(mutated, key), seqBytes) {
		t.Fatal("dropping a batch did not change the captured Set; the equivalence check is vacuous")
	}
}

// TestCaptureMultiParallelEquivalence is the co-scheduled counterpart:
// the pipelined multi-core capture replays the recorded pace-scaled
// interleave through one ordered consumer, and must reproduce the
// sequential capture byte for byte (shared-LLC occupancy, store
// dirtiness, per-core frontends and paced snapshots included).
func TestCaptureMultiParallelEquivalence(t *testing.T) {
	chase := chaseProgram(t)
	stream := storeProgram(t)
	p := Params{Skip: 50, Warm: 15_000, Window: 1500, Count: 2}
	pace := []float64{1.0, 0.6}
	capture := func(workers int) *MultiSet {
		progs := []*program.Program{chase, stream}
		ems := []*emu.Emulator{chaseEmu(t, chase), emu.New(stream, emu.NewMemory())}
		pfs := []prefetch.Prefetcher{prefetch.NewBOP(), nil}
		set, err := CaptureMultiContext(context.Background(), progs, ems,
			cache.DefaultHierConfig(), 128, 4, 16, pfs, p, pace, workers)
		if err != nil {
			t.Fatal(err)
		}
		set.HostNS = 0
		set.PFKinds = []string{"bop", "none"} // the sim layer fills this in
		return set
	}
	seq := capture(1)
	par := capture(8)
	const key = "multi-equivalence-key"
	seqBytes := EncodeMultiSet(seq, key)
	parBytes := EncodeMultiSet(par, key)
	if !bytes.Equal(seqBytes, parBytes) {
		t.Fatalf("parallel multi capture encodes differently from sequential (%d vs %d bytes)",
			len(parBytes), len(seqBytes))
	}
	dseq, err := DecodeMultiSet(seqBytes, key)
	if err != nil {
		t.Fatal(err)
	}
	dpar, err := DecodeMultiSet(parBytes, key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dseq, dpar) {
		t.Fatal("decoded parallel MultiSet differs from decoded sequential MultiSet")
	}

	SetDropBatch(0)
	defer SetDropBatch(-1)
	mutated := capture(8)
	if bytes.Equal(EncodeMultiSet(mutated, key), seqBytes) {
		t.Fatal("dropping a batch did not change the captured MultiSet; the equivalence check is vacuous")
	}
}

// TestCaptureContextCancel pins the cancellation contract: a cancelled
// capture returns (nil, ctx.Err()) instead of a partial Set, for both
// the sequential and pipelined paths and for the multi-core capture.
func TestCaptureContextCancel(t *testing.T) {
	prog := chaseProgram(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Params{Warm: 1_000_000, Window: 1000, Count: 4}
	for _, workers := range []int{1, 4} {
		set, err := CaptureContext(ctx, prog, chaseEmu(t, prog),
			cache.DefaultHierConfig(), 128, 4, 16, capturePFS(), p, workers)
		if err == nil || set != nil {
			t.Errorf("workers=%d: cancelled capture returned set=%v err=%v, want nil set and ctx error", workers, set != nil, err)
		}
	}
	for _, workers := range []int{1, 4} {
		progs := []*program.Program{prog, prog}
		ems := []*emu.Emulator{chaseEmu(t, prog), chaseEmu(t, prog)}
		set, err := CaptureMultiContext(ctx, progs, ems,
			cache.DefaultHierConfig(), 128, 4, 16, []prefetch.Prefetcher{nil, nil}, p, nil, workers)
		if err == nil || set != nil {
			t.Errorf("workers=%d: cancelled multi capture returned set=%v err=%v, want nil set and ctx error", workers, set != nil, err)
		}
	}
}
