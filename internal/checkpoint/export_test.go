package checkpoint

// SetDropBatch arms the pipeline's fault-injection hook: the published
// batch with index i (0-based) is dropped instead of replayed, so a
// parallel capture diverges from the sequential reference. i < 0
// disarms. Tests use it to prove the equivalence assertions actually
// detect divergence (mutation verification).
func SetDropBatch(i int) {
	if i < 0 {
		testDropBatch.Store(0)
		return
	}
	testDropBatch.Store(int64(i) + 1)
}
