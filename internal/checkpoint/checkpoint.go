// Package checkpoint implements the sampled-simulation checkpoint layer:
// one functional fast-forward pass over a workload produces a Set of
// Points, each snapshotting architectural state (PC, registers,
// copy-on-write memory pages) plus warmed long-lived microarchitectural
// state (cache tags, TAGE, BTB, RAS, prefetcher training) at a
// detailed-window start.
//
// The Set is the unit of cross-config sharing: the ooo/crisp/random
// scheduler configs (and every prefetcher variant) of one workload
// restore from the same Set, so the functional prefix that full-detail
// simulation repeats per config is executed exactly once. Restores hand
// out fresh clones, so concurrent runs never observe each other's
// mutations.
package checkpoint

import (
	"context"
	"fmt"
	"sort"
	"time"

	"crisp/internal/branch"
	"crisp/internal/cache"
	"crisp/internal/emu"
	"crisp/internal/isa"
	"crisp/internal/prefetch"
	"crisp/internal/program"
)

// Params describes the sampling schedule: Count windows, each preceded by
// a Skip phase (pure fast-forward, no warming) and a Warm phase
// (fast-forward streaming into cache-tag, branch-predictor, and
// prefetcher warming), followed by a Window-instruction detailed region.
// The detailed region is also executed functionally (with warming) by the
// capture pass so the next window's state includes it.
type Params struct {
	Skip   uint64
	Warm   uint64
	Window uint64
	Count  int
}

// Total returns the instruction budget the schedule covers.
func (p Params) Total() uint64 { return (p.Skip + p.Warm + p.Window) * uint64(p.Count) }

// Variant is the warmed state that depends on the prefetcher
// configuration: the cache hierarchy (prefetched lines change cache
// content, and resident prefetched lines are what dedups most later
// suggestions in a steady-state run) and the prefetcher's own training
// state (BOP in particular converges over thousands of training misses,
// so a cold instance inside a short window badly overstates prefetch
// traffic). Branch-predictor and architectural state are
// prefetcher-independent and live on the Point directly.
type Variant struct {
	Hier *cache.Hierarchy
	PF   prefetch.Prefetcher // nil when the kind runs without a prefetcher
}

// Point is one restorable checkpoint: the architectural and warmed
// microarchitectural state at a detailed-window start. Its fields are
// immutable templates after capture — Restore clones them — so one Point
// may serve any number of concurrent detailed runs.
type Point struct {
	PC   int
	Regs [isa.NumRegs]int64
	Mem  *emu.Memory // copy-on-write snapshot; never written directly

	Variants map[string]*Variant // warmed caches+prefetcher per kind
	BP       *branch.TAGE
	BTB      *branch.BTB
	RAS      *branch.RAS

	FFInsts uint64 // instructions executed functionally to reach this point
}

// Restored is the per-run state handed out by Point.Restore: fresh copies
// the detailed window may mutate freely. The hierarchy carries the warmed
// tag/LRU state of the requested prefetcher variant, with a clone of that
// variant's warmed prefetcher already attached.
type Restored struct {
	Em   *emu.Emulator
	Hier *cache.Hierarchy
	BP   *branch.TAGE
	BTB  *branch.BTB
	RAS  *branch.RAS
}

// Restore clones the checkpoint's pfKind variant for one detailed window
// over prog. The program must be position-identical to the one the
// checkpoint was captured with (CRISP's critical-tagged clone qualifies:
// tags do not change functional behaviour or instruction addresses).
//
// Safe for concurrent use: the point's memory snapshot is pristine (all
// pages shared), so re-snapshotting it performs no writes, and the
// structure clones only read their templates.
func (p *Point) Restore(prog *program.Program, pfKind string) (Restored, error) {
	v := p.Variants[pfKind]
	if v == nil {
		return Restored{}, fmt.Errorf("checkpoint: no warmed variant for prefetcher kind %q", pfKind)
	}
	hier := v.Hier.Clone()
	if v.PF != nil {
		hier.L1D.SetPrefetcher(prefetch.Clone(v.PF))
	}
	return Restored{
		Em:   emu.Resume(prog, p.Mem.Snapshot(), p.PC, p.Regs),
		Hier: hier,
		BP:   p.BP.Clone(),
		BTB:  p.BTB.Clone(),
		RAS:  p.RAS.Clone(),
	}, nil
}

// Set is the product of one capture pass: the checkpoints of a
// (workload, input, schedule) triple, plus the host cost of producing
// them. Points may be fewer than Params.Count if the program halted.
type Set struct {
	Points []*Point
	Hier   cache.HierConfig // geometry the caches were warmed with

	FFInsts uint64 // total instructions executed functionally by the capture
	// WarmInsts counts the instructions streamed through the warmer (warm
	// and window phases; the skip phases execute unobserved). It is
	// in-process capture observability, not restore state, so the codec
	// does not persist it: sets decoded from the store report zero.
	WarmInsts uint64
	HostNS    int64 // host wall time of the capture (fast-forward + snapshots)
}

// liveVariant is one prefetcher kind's warming state during capture.
type liveVariant struct {
	name string
	hier *cache.Hierarchy
	pf   prefetch.Prefetcher
}

// warmer streams the functional trace into the warming structures,
// mirroring the core frontend's training policy (TAGE on conditionals,
// BTB insert-on-miss for taken non-returns, RAS on call/ret) without
// charging any statistics that the detailed window would report. Each
// data access drives every variant: a tags-only demand touch, the
// variant's prefetcher trained with the same (pc, addr, hit) triple the
// detailed L1D would deliver, and the suggested lines installed
// tags-only, so each variant's cache content includes the prefetched-line
// population a steady-state run of that kind would hold.
type warmer struct {
	prog     *program.Program
	variants []liveVariant
	bp       *branch.TAGE
	btb      *branch.BTB
	ras      *branch.RAS
	// shared selects WarmDataShared: the co-scheduled capture propagates
	// store dirtiness into the shared LLC so restored lockstep windows
	// reproduce writeback bus traffic (see Hierarchy.WarmDataShared).
	shared bool
}

func (w *warmer) WarmInstLine(lineAddr uint64) {
	for i := range w.variants {
		w.variants[i].hier.WarmInst(lineAddr)
	}
}

func (w *warmer) WarmData(pc int, addr uint64, store bool) {
	for i := range w.variants {
		warmOne(&w.variants[i], w.shared, pc, addr, store)
	}
}

// warmOne drives a single variant with one data access: a tags-only
// demand touch of its hierarchy, the prefetcher trained with the same
// (pc, addr, hit) triple the detailed L1D would deliver, and the
// suggested lines installed tags-only. The hit flag comes from the
// variant's own hierarchy, so replaying one recorded access stream
// independently per variant reproduces the sequential fan-out exactly —
// this is what the parallel capture pipeline relies on.
func warmOne(v *liveVariant, shared bool, pc int, addr uint64, store bool) {
	var hit bool
	if shared {
		hit = v.hier.WarmDataShared(addr, store)
	} else {
		hit = v.hier.WarmData(addr, store)
	}
	if v.pf == nil {
		return
	}
	pcv := uint64(pc)
	if store {
		pcv = cache.NoPC // stores reach the prefetcher unattributed
	}
	for _, t := range v.pf.OnAccess(pcv, addr, hit) {
		v.hier.WarmPrefetch(t)
	}
}

func (w *warmer) WarmBranch(pc int, in *isa.Inst, taken bool, nextPC int) {
	pcAddr := w.prog.ByteAddr(pc)
	switch in.Op {
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		w.bp.PredictAndTrain(pcAddr, taken)
	case isa.OpCall:
		w.ras.Push(pc + 1)
	case isa.OpRet:
		w.ras.Pop()
	}
	if taken && in.Op != isa.OpRet {
		if _, ok := w.btb.Lookup(pcAddr); !ok {
			w.btb.Insert(pcAddr, nextPC)
		}
	}
}

// snapshot clones every variant into a Point-ready template map.
func (w *warmer) snapshot() map[string]*Variant {
	out := make(map[string]*Variant, len(w.variants))
	for i := range w.variants {
		v := &w.variants[i]
		sv := &Variant{Hier: v.hier.Clone()}
		if v.pf != nil {
			sv.PF = prefetch.Clone(v.pf)
		}
		out[v.name] = sv
	}
	return out
}

// Capture runs the single functional pass over em (an emulator positioned
// at the workload entry with its image loaded) and returns the checkpoint
// Set for the given schedule. Warming state is continuous across the
// whole pass — skip phases advance without warming, warm and window
// phases stream into it — so later windows see the accumulated history a
// real execution would have. btbEntries/btbWays/rasEntries size the
// warmed frontend structures and must match the core configuration that
// will restore them; pfs supplies one fresh prefetcher per configuration
// kind (nil for a kind that runs without one), each warmed against its
// own cache hierarchy (the instances are trained in place).
func Capture(prog *program.Program, em *emu.Emulator, hcfg cache.HierConfig, btbEntries, btbWays, rasEntries int, pfs map[string]prefetch.Prefetcher, p Params) *Set {
	set, _ := CaptureContext(context.Background(), prog, em, hcfg, btbEntries, btbWays, rasEntries, pfs, p, 0)
	return set
}

// CaptureContext is Capture with cancellation and an explicit
// parallelism bound. workers counts the goroutines the capture may use
// in total, producer included: 1 forces the sequential reference path, 2
// or more selects the batched producer/consumer pipeline (see
// pipeline.go) with up to workers-1 warming consumers, and <= 0 defaults
// to GOMAXPROCS. Both paths produce bit-identical Sets — the pipeline
// replays the recorded warm stream in order per structure — so the
// choice affects only host wall time. On cancellation it returns
// (nil, ctx.Err()) and the partial capture is discarded.
func CaptureContext(ctx context.Context, prog *program.Program, em *emu.Emulator, hcfg cache.HierConfig, btbEntries, btbWays, rasEntries int, pfs map[string]prefetch.Prefetcher, p Params, workers int) (*Set, error) {
	start := time.Now()
	w := newCaptureWarmer(prog, hcfg, btbEntries, btbWays, rasEntries, pfs)
	set := &Set{Hier: hcfg}
	// The frontend replay is one task alongside the per-variant ones.
	if consumers := captureConsumers(workers, len(w.variants)+1); consumers > 0 {
		capturePipelined(ctx, em, w, p, set, consumers)
	} else {
		captureSequential(ctx, em, w, p, set)
	}
	set.HostNS = time.Since(start).Nanoseconds()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return set, nil
}

// newCaptureWarmer assembles the warming state for one capture pass:
// the prefetcher-independent frontend structures plus one cache
// hierarchy per prefetcher kind, sorted by name so capture order (and
// hence any warming that iterated variants) is deterministic.
func newCaptureWarmer(prog *program.Program, hcfg cache.HierConfig, btbEntries, btbWays, rasEntries int, pfs map[string]prefetch.Prefetcher) *warmer {
	w := &warmer{
		prog: prog,
		bp:   branch.NewTAGE(branch.DefaultTAGELogBase, branch.DefaultTAGELogTagged),
		btb:  branch.NewBTB(btbEntries, btbWays),
		ras:  branch.NewRAS(rasEntries),
	}
	for name, pf := range pfs {
		w.variants = append(w.variants, liveVariant{name: name, hier: cache.NewHierarchy(hcfg), pf: pf})
	}
	sort.Slice(w.variants, func(i, j int) bool { return w.variants[i].name < w.variants[j].name })
	return w
}

// snapshotPoint clones the warmer's state into one restorable Point at
// the emulator's current position.
func snapshotPoint(em *emu.Emulator, w *warmer, ffInsts uint64) *Point {
	return &Point{
		PC:       em.PC(),
		Regs:     em.Regs(),
		Mem:      em.Mem().Snapshot(),
		Variants: w.snapshot(),
		BP:       w.bp.Clone(),
		BTB:      w.btb.Clone(),
		RAS:      w.ras.Clone(),
		FFInsts:  ffInsts,
	}
}

// captureSequential is the reference capture loop: one goroutine, the
// warm stream delivered live through the Warmer interface. The phase
// FastForward calls are deliberately not chunked — the per-call
// code-line dedup reset is part of the captured byte layout — so
// cancellation is observed at phase boundaries.
func captureSequential(ctx context.Context, em *emu.Emulator, w *warmer, p Params, set *Set) {
	for i := 0; i < p.Count; i++ {
		set.FFInsts += em.FastForward(p.Skip, nil)
		n := em.FastForward(p.Warm, w)
		set.FFInsts += n
		set.WarmInsts += n
		if ctx.Err() != nil || em.Done() {
			return
		}
		set.Points = append(set.Points, snapshotPoint(em, w, set.FFInsts))
		// Execute the window region functionally too (with warming): the
		// detailed run covers it from the restored state, and the next
		// checkpoint's state must include it.
		n = em.FastForward(p.Window, w)
		set.FFInsts += n
		set.WarmInsts += n
		if ctx.Err() != nil {
			return
		}
	}
}
