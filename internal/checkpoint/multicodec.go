package checkpoint

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"

	"crisp/internal/branch"
	"crisp/internal/cache"
	"crisp/internal/codec"
	"crisp/internal/emu"
	"crisp/internal/prefetch"
)

// Binary container for a MultiSet on disk, following the single-core
// container's discipline (magic, codec version, content key, CRC and
// length over the payload) under its own magic so a multi-set file can
// never decode as a single-core set or vice versa.
//
// Payload:
//
//	string hierJSON | u32 cores | per core: string pfKind |
//	per core: f64 pace | per core: u64 windowInsts |
//	u64 ffInsts | per core: u64 ffPerCore | i64 hostNS |
//	u32 pointCount | page dict (shared across cores AND points) |
//	per point:
//	    per core: pc, regs, ffInsts, TAGE, BTB, RAS, prefetcher |
//	    shared hierarchy (per-view L1I/L1D, shared LLC once) |
//	    per core: memory page table
//
// Pages are interned across every core's every snapshot: consecutive
// points of one core share almost all pages copy-on-write, so the dict
// stores each distinct page once set-wide.

const (
	multiCodecMagic   = "CRSPMCK1"
	multiCodecVersion = 1
)

// maxMultiCores bounds the decoded core count (sim.MaxCores is 8; the
// codec's bound only has to stop corrupt headers driving allocations).
const maxMultiCores = 64

// EncodeMultiSet serializes the set under the given content key.
func EncodeMultiSet(set *MultiSet, key string) []byte {
	// Pass 1: encode point state into a scratch writer, interning pages.
	var pw codec.Writer
	dict := emu.NewPageDict()
	for _, pt := range set.Points {
		for _, cs := range pt.Cores {
			pw.Int(cs.PC)
			for _, v := range cs.Regs {
				pw.I64(v)
			}
			pw.U64(cs.FFInsts)
			cs.BP.EncodeState(&pw)
			cs.BTB.EncodeState(&pw)
			cs.RAS.EncodeState(&pw)
			prefetch.Encode(&pw, cs.PF)
		}
		pt.Hier.EncodeState(&pw)
		for _, cs := range pt.Cores {
			cs.Mem.EncodeState(&pw, dict)
		}
	}

	// Pass 2: assemble the payload with the dict ahead of the page
	// tables that reference it.
	var w codec.Writer
	hierJSON, err := json.Marshal(set.Hier)
	if err != nil { // unreachable: HierConfig is plain data
		panic(fmt.Sprintf("checkpoint: marshal HierConfig: %v", err))
	}
	w.String(string(hierJSON))
	w.U32(uint32(set.Cores))
	for _, kind := range set.PFKinds {
		w.String(kind)
	}
	for i := 0; i < set.Cores; i++ {
		pace := 1.0
		if i < len(set.Pace) {
			pace = set.Pace[i]
		}
		w.U64(math.Float64bits(pace))
	}
	for i := 0; i < set.Cores; i++ {
		var wi uint64
		if i < len(set.WindowInsts) {
			wi = set.WindowInsts[i]
		}
		w.U64(wi)
	}
	w.U64(set.FFInsts)
	for _, ff := range set.FFPerCore {
		w.U64(ff)
	}
	w.I64(set.HostNS)
	w.U32(uint32(len(set.Points)))
	dict.EncodePages(&w)
	w.Raw(pw.Bytes())
	payload := w.Bytes()

	var out codec.Writer
	out.Raw([]byte(multiCodecMagic))
	out.U32(multiCodecVersion)
	out.String(key)
	out.U32(crc32.ChecksumIEEE(payload))
	out.U64(uint64(len(payload)))
	out.Raw(payload)
	return out.Bytes()
}

// DecodeMultiSet deserializes a set encoded by EncodeMultiSet, verifying
// the magic, codec version, CRC, and — when expectKey is non-empty — the
// content key. Any mismatch or truncation is an error; the caller
// deletes the file and recaptures.
func DecodeMultiSet(data []byte, expectKey string) (*MultiSet, error) {
	r := codec.NewReader(data)
	if magic := string(r.Raw(len(multiCodecMagic))); magic != multiCodecMagic {
		return nil, fmt.Errorf("checkpoint: bad multi-set magic %q", magic)
	}
	if v := r.U32(); v != multiCodecVersion {
		return nil, fmt.Errorf("checkpoint: multi codec version %d, want %d", v, multiCodecVersion)
	}
	key := r.String()
	if expectKey != "" && key != expectKey {
		return nil, fmt.Errorf("checkpoint: content key %q does not match %q", key, expectKey)
	}
	crc := r.U32()
	plen := r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if plen != uint64(r.Remaining()) {
		return nil, fmt.Errorf("checkpoint: payload length %d, have %d bytes", plen, r.Remaining())
	}
	payload := r.Raw(int(plen))
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, fmt.Errorf("checkpoint: payload CRC %#x, want %#x", got, crc)
	}

	p := codec.NewReader(payload)
	set := &MultiSet{}
	if err := json.Unmarshal([]byte(p.String()), &set.Hier); err != nil {
		return nil, fmt.Errorf("checkpoint: decode hierarchy config: %w", err)
	}
	set.Cores = int(p.U32())
	if err := p.Err(); err != nil {
		return nil, err
	}
	if set.Cores < 1 || set.Cores > maxMultiCores {
		return nil, fmt.Errorf("checkpoint: core count %d out of range", set.Cores)
	}
	set.PFKinds = make([]string, set.Cores)
	for i := range set.PFKinds {
		set.PFKinds[i] = p.String()
	}
	set.Pace = make([]float64, set.Cores)
	for i := range set.Pace {
		set.Pace[i] = math.Float64frombits(p.U64())
	}
	set.WindowInsts = make([]uint64, set.Cores)
	for i := range set.WindowInsts {
		set.WindowInsts[i] = p.U64()
	}
	set.FFInsts = p.U64()
	set.FFPerCore = make([]uint64, set.Cores)
	for i := range set.FFPerCore {
		set.FFPerCore[i] = p.U64()
	}
	set.HostNS = p.I64()
	n := int(p.U32())
	if err := p.Err(); err != nil {
		return nil, err
	}
	if n < 0 || n > maxPoints {
		return nil, fmt.Errorf("checkpoint: point count %d out of range", n)
	}
	dict, err := emu.DecodePageDict(p)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		pt := &MultiPoint{Cores: make([]*CoreState, set.Cores)}
		for c := range pt.Cores {
			cs := &CoreState{PC: p.Int()}
			for j := range cs.Regs {
				cs.Regs[j] = p.I64()
			}
			cs.FFInsts = p.U64()
			if cs.BP, err = branch.DecodeTAGE(p); err != nil {
				return nil, fmt.Errorf("checkpoint: point %d core %d: %w", i, c, err)
			}
			if cs.BTB, err = branch.DecodeBTB(p); err != nil {
				return nil, fmt.Errorf("checkpoint: point %d core %d: %w", i, c, err)
			}
			if cs.RAS, err = branch.DecodeRAS(p); err != nil {
				return nil, fmt.Errorf("checkpoint: point %d core %d: %w", i, c, err)
			}
			if cs.PF, err = prefetch.Decode(p); err != nil {
				return nil, fmt.Errorf("checkpoint: point %d core %d: %w", i, c, err)
			}
			pt.Cores[c] = cs
		}
		if pt.Hier, err = cache.DecodeSharedHierarchy(p, set.Hier, set.Cores); err != nil {
			return nil, fmt.Errorf("checkpoint: point %d: %w", i, err)
		}
		for c := range pt.Cores {
			if pt.Cores[c].Mem, err = emu.DecodeMemory(p, dict); err != nil {
				return nil, fmt.Errorf("checkpoint: point %d core %d: %w", i, c, err)
			}
		}
		set.Points = append(set.Points, pt)
	}
	if err := p.Err(); err != nil {
		return nil, err
	}
	if p.Remaining() != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after %d points", p.Remaining(), n)
	}
	return set, nil
}
