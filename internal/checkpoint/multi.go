package checkpoint

import (
	"context"
	"fmt"
	"time"

	"crisp/internal/branch"
	"crisp/internal/cache"
	"crisp/internal/emu"
	"crisp/internal/isa"
	"crisp/internal/prefetch"
	"crisp/internal/program"
)

// Multi-core checkpointing: one functional co-scheduled pass over n
// workloads produces a MultiSet whose points restore into lockstep
// detailed windows over a shared LLC and DRAM.
//
// The schedule is shared but pace-scaled: every core advances by the
// Skip/Warm/Window instruction budget scaled by its relative co-run
// speed (MultiSet.Pace), so window boundaries align across cores on the
// trajectory the timed co-run actually follows — a fast streaming core
// retires several times more instructions per shared cycle than a
// latency-bound neighbour, and snapshots at equal instruction offsets
// would pair states the co-run never holds simultaneously. Warming
// interleaves the cores' functional streams in pace-scaled round-robin
// chunks against ONE shared hierarchy, so the shared LLC's steady-state
// occupancy at each snapshot reflects co-residency — each core holds
// the fraction of the LLC it can defend against its neighbours'
// insertion rate — rather than the full-cache occupancy a solo warm-up
// would give every core.

// interleaveChunk is the per-core instruction granularity of the
// round-robin warming interleave, before pace scaling. Small enough that
// no core streams a window-sized burst into the shared LLC unopposed,
// large enough that the fast-forward loop's per-switch overhead stays
// negligible.
const interleaveChunk = 4096

// minPace floors the per-core pace so a crawling core still advances:
// budgets and chunks scaled below this would round toward zero and stall
// the capture (and a window with a handful of instructions measures
// nothing).
const minPace = 0.02

// CoreState is one core's slice of a MultiPoint: architectural state
// plus the prefetcher-independent warmed frontend structures, all
// immutable templates after capture.
type CoreState struct {
	PC   int
	Regs [isa.NumRegs]int64
	Mem  *emu.Memory // copy-on-write snapshot; never written directly

	BP  *branch.TAGE
	BTB *branch.BTB
	RAS *branch.RAS
	PF  prefetch.Prefetcher // warmed in place on this core's view; nil = none

	FFInsts uint64 // this core's functional instructions to reach the point
}

// MultiPoint is one restorable co-scheduled checkpoint: every core's
// state at an aligned window boundary, plus the shared hierarchy warmed
// by the interleaved streams (per-core private L1s and the contended
// LLC in one structure).
type MultiPoint struct {
	Cores []*CoreState
	Hier  *cache.SharedHierarchy // warmed template; Restore clones it
}

// MultiRestored is the per-window state handed out by
// MultiPoint.Restore: fresh clones the lockstep window may mutate
// freely, indexed by core.
type MultiRestored struct {
	Ems  []*emu.Emulator
	Hier *cache.SharedHierarchy
	BPs  []*branch.TAGE
	BTBs []*branch.BTB
	RASs []*branch.RAS
}

// Restore clones the point for one detailed lockstep window. progs[i]
// must be position-identical to the program core i was captured with
// (CRISP's critical-tagged clone qualifies). Each core's warmed
// prefetcher clone is attached to its private L1D view. Safe for
// concurrent use, like Point.Restore.
func (p *MultiPoint) Restore(progs []*program.Program) (MultiRestored, error) {
	n := len(p.Cores)
	if len(progs) != n {
		return MultiRestored{}, fmt.Errorf("checkpoint: %d programs for a %d-core point", len(progs), n)
	}
	sh := p.Hier.CloneState()
	st := MultiRestored{
		Ems:  make([]*emu.Emulator, n),
		Hier: sh,
		BPs:  make([]*branch.TAGE, n),
		BTBs: make([]*branch.BTB, n),
		RASs: make([]*branch.RAS, n),
	}
	for i, cs := range p.Cores {
		if cs.PF != nil {
			sh.Views[i].L1D.SetPrefetcher(prefetch.Clone(cs.PF))
		}
		st.Ems[i] = emu.Resume(progs[i], cs.Mem.Snapshot(), cs.PC, cs.Regs)
		st.BPs[i] = cs.BP.Clone()
		st.BTBs[i] = cs.BTB.Clone()
		st.RASs[i] = cs.RAS.Clone()
	}
	return st, nil
}

// MultiSet is the product of one co-scheduled capture pass: the aligned
// checkpoints of an n-core workload tuple under one schedule. Points
// may be fewer than Params.Count if any core's program halted (the
// lockstep window needs every core live).
type MultiSet struct {
	Points []*MultiPoint
	Hier   cache.HierConfig // geometry the shared hierarchy was warmed with
	Cores  int

	// PFKinds names the prefetcher kind warmed into each core's view;
	// restores for a different per-core prefetcher tuple must recapture
	// (the shared-LLC content depends on every core's prefetch traffic).
	PFKinds []string

	// Pace is each core's relative co-run speed (max = 1.0), measured by
	// a calibration window before capture. Every per-core phase budget —
	// skip, warm, window — and the warming interleave chunk are scaled by
	// it, so the functional streams mix in the shared LLC at the rate
	// ratio the timed co-run sustains and the snapshots walk the co-run's
	// real trajectory through per-core instruction counts. Without pacing
	// a 1:1 instruction interleave under-weights a fast streaming core's
	// insertion pressure by its speed advantage, handing the slow core
	// more shared-cache occupancy than it can defend in a timed run.
	Pace []float64

	// WindowInsts is the per-core detailed-window budget (Params.Window
	// scaled by Pace) — the MaxInsts each restored core runs per window.
	// With budgets proportional to co-run speeds the cores finish each
	// window together, so windows measure the co-located phase rather
	// than a mostly-solo drain tail.
	WindowInsts []uint64

	FFInsts   uint64   // functional instructions summed across cores
	FFPerCore []uint64 // per-core functional instruction totals
	// WarmInsts counts instructions streamed through the warmers across
	// all cores (warm + window phases). Like Set.WarmInsts it is
	// in-process observability and is not persisted by the codec.
	WarmInsts uint64
	HostNS    int64 // host wall time of the capture
}

// scalePace returns insts scaled by the core's pace, floored at 1.
func scalePace(insts uint64, pace float64) uint64 {
	out := uint64(float64(insts)*pace + 0.5)
	if out == 0 && insts > 0 {
		out = 1
	}
	return out
}

// CaptureMulti runs the co-scheduled functional pass over ems (one
// emulator per core, positioned at its workload entry) and returns the
// MultiSet for the given per-core schedule. One shared hierarchy is
// warmed for the whole pass: skip phases advance cores without warming,
// warm and window phases interleave the cores' streams in pace-scaled
// round-robin slices so LLC insertions contend at the timed co-run's
// rate ratio. pfs supplies one fresh prefetcher per core (nil for a core
// that runs without one), trained in place against that core's view.
// pace holds each core's relative co-run speed (nil = all 1.0; see
// MultiSet.Pace); entries are clamped to [minPace, 1].
func CaptureMulti(progs []*program.Program, ems []*emu.Emulator, hcfg cache.HierConfig, btbEntries, btbWays, rasEntries int, pfs []prefetch.Prefetcher, p Params, pace []float64) *MultiSet {
	set, _ := CaptureMultiContext(context.Background(), progs, ems, hcfg, btbEntries, btbWays, rasEntries, pfs, p, pace, 0)
	return set
}

// CaptureMultiContext is CaptureMulti with cancellation and an explicit
// parallelism bound (same worker semantics as CaptureContext). The
// shared LLC couples every core's warming, so the multi-core pipeline
// parallelizes along the time axis only: the producer records the
// pace-scaled interleave into batches while a single consumer replays
// them in exact recorded order — per-chunk code-line dedup, per-core
// warmer dispatch and store-dirtiness propagation all preserved — which
// keeps the captured MultiSet bit-identical to the sequential path's.
func CaptureMultiContext(ctx context.Context, progs []*program.Program, ems []*emu.Emulator, hcfg cache.HierConfig, btbEntries, btbWays, rasEntries int, pfs []prefetch.Prefetcher, p Params, pace []float64, workers int) (*MultiSet, error) {
	start := time.Now()
	n := len(ems)
	pc := make([]float64, n)
	for i := range pc {
		pc[i] = 1.0
		if pace != nil {
			pc[i] = pace[i]
		}
		if pc[i] > 1 || pc[i] != pc[i] { // also catches NaN
			pc[i] = 1
		}
		if pc[i] < minPace {
			pc[i] = minPace
		}
	}
	sh := cache.NewSharedHierarchy(hcfg, n)
	ws := make([]*warmer, n)
	for i := range ws {
		ws[i] = &warmer{
			prog:     progs[i],
			variants: []liveVariant{{hier: sh.Views[i], pf: pfs[i]}},
			bp:       branch.NewTAGE(branch.DefaultTAGELogBase, branch.DefaultTAGELogTagged),
			btb:      branch.NewBTB(btbEntries, btbWays),
			ras:      branch.NewRAS(rasEntries),
			shared:   true,
		}
	}
	set := &MultiSet{Hier: hcfg, Cores: n, FFPerCore: make([]uint64, n),
		Pace: pc, WindowInsts: make([]uint64, n)}
	for i := range set.WindowInsts {
		set.WindowInsts[i] = scalePace(p.Window, pc[i])
	}

	// Time-axis pipeline only: one consumer replays the recorded
	// interleave in order against the shared hierarchy while the
	// producer fast-forwards ahead (see CaptureMultiContext).
	var pl *pipeline
	if captureConsumers(workers, 1) > 0 {
		pl = newPipeline(ctx, []replayTask{replayMulti(ws)}, 1)
		defer pl.close()
	}

	// advance moves every live core forward by its pace-scaled share of
	// insts instructions, in pace-scaled round-robin chunks when warming
	// (unwarmed skip phases cannot interact, so chunking would only cost
	// switches). Scaling both the budget and the chunk keeps every core's
	// stream flowing for the whole phase: all cores exhaust their budgets
	// after the same number of rounds, so the shared LLC sees a steady
	// pace-ratio mix right up to the snapshot.
	advance := func(insts uint64, warm bool) {
		remaining := make([]uint64, n)
		chunks := make([]uint64, n)
		for i := range remaining {
			remaining[i] = scalePace(insts, pc[i])
			chunks[i] = remaining[i]
			if warm {
				chunks[i] = scalePace(interleaveChunk, pc[i])
			}
		}
		for {
			if ctx.Err() != nil {
				return
			}
			advanced := false
			for i, em := range ems {
				if remaining[i] == 0 || em.Done() {
					continue
				}
				step := chunks[i]
				if step > remaining[i] {
					step = remaining[i]
				}
				var done uint64
				switch {
				case !warm:
					done = em.FastForward(step, nil)
				case pl != nil:
					done = pl.recordChunk(em, uint8(i), step)
					set.WarmInsts += done
				default:
					done = em.FastForward(step, ws[i])
					set.WarmInsts += done
				}
				set.FFInsts += done
				set.FFPerCore[i] += done
				remaining[i] -= step
				if done > 0 {
					advanced = true
				}
			}
			if !advanced {
				return
			}
		}
	}

	for k := 0; k < p.Count; k++ {
		advance(p.Skip, false)
		advance(p.Warm, true)
		if pl != nil {
			pl.barrier()
		}
		if ctx.Err() != nil {
			break
		}
		anyDone := false
		for _, em := range ems {
			if em.Done() {
				anyDone = true
			}
		}
		if anyDone {
			break // a lockstep window needs every core live
		}
		pt := &MultiPoint{Hier: sh.CloneState(), Cores: make([]*CoreState, n)}
		for i, em := range ems {
			cs := &CoreState{
				PC:      em.PC(),
				Regs:    em.Regs(),
				Mem:     em.Mem().Snapshot(),
				BP:      ws[i].bp.Clone(),
				BTB:     ws[i].btb.Clone(),
				RAS:     ws[i].ras.Clone(),
				FFInsts: set.FFPerCore[i],
			}
			if pf := ws[i].variants[0].pf; pf != nil {
				cs.PF = prefetch.Clone(pf)
			}
			pt.Cores[i] = cs
		}
		set.Points = append(set.Points, pt)
		// Execute the window region functionally too (with warming): the
		// detailed lockstep run covers it from the restored state, and the
		// next checkpoint's shared-LLC content must include it.
		advance(p.Window, true)
	}
	if pl != nil {
		pl.barrier()
	}
	set.HostNS = time.Since(start).Nanoseconds()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return set, nil
}

// replayMulti returns the single ordered task replaying an interleaved
// multi-core batch: every event dispatches to its producing core's
// warmer, so the shared LLC observes the exact access interleave the
// sequential capture would have generated (including store-dirtiness
// propagation through WarmDataShared).
func replayMulti(ws []*warmer) replayTask {
	return func(evs []emu.BatchEv) {
		for i := range evs {
			ev := &evs[i]
			w := ws[ev.Core]
			switch ev.Kind {
			case emu.EvInstLine:
				w.variants[0].hier.WarmInst(ev.Addr)
			case emu.EvData:
				warmOne(&w.variants[0], w.shared, int(ev.PC), ev.Addr, ev.Flag)
			case emu.EvBranch:
				w.WarmBranch(int(ev.PC), &w.prog.Insts[ev.PC], ev.Flag, int(ev.NextPC))
			}
		}
	}
}
