// Quickstart: run one workload through the full CRISP flow — profile the
// train input, extract and tag critical slices, then compare the baseline
// OOO scheduler against the CRISP scheduler on the ref input.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/sim"
	"crisp/internal/workload"
)

func main() {
	w := workload.ByName("mcf")
	fmt.Printf("workload: %s\n  %s\n\n", w.Name, w.Pathology)

	cfg := sim.DefaultConfig() // the paper's Table 1 system
	cfg.Core.MaxInsts = 300_000

	// Step 1+2 (Figure 5): profile and trace the train input, then run the
	// software pipeline — delinquent-load classification, slice extraction
	// with memory dependencies, critical-path filtering, tagging.
	pipe := sim.AnalyzeTrain(w.Build(workload.Train), w.Build(workload.Train),
		cfg, crisp.DefaultOptions())
	a := pipe.Analysis
	fmt.Printf("software pipeline: %d delinquent loads, %d hard branches\n",
		len(a.DelinquentLoads), len(a.HardBranches))
	fmt.Printf("tagged %d static instructions (%.1f%% of dynamic stream)\n\n",
		len(a.CriticalPCs), a.DynCriticalFraction*100)

	// Step 3: evaluate on the ref input.
	base := sim.Run(w.Build(workload.Ref), cfg.WithSched(core.SchedOldestFirst))
	tagged := pipe.Tagged(w.Build(workload.Ref))
	cr := sim.Run(tagged, cfg.WithSched(core.SchedCRISP))

	fmt.Println(sim.Describe("ooo", base))
	fmt.Println(sim.Describe("crisp", cr))
	fmt.Printf("\nCRISP speedup: %+.1f%% IPC\n", (cr.IPC()/base.IPC()-1)*100)
}
