// Quickstart: run one workload through the full CRISP flow — profile the
// train input, extract and tag critical slices, then compare the baseline
// OOO scheduler against the CRISP scheduler on the ref input.
//
// Runs are described declaratively as sim.RunSpecs and executed by the
// runner, which simulates both schedulers concurrently and shares the
// train profile between the software pipeline and the tagged run.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"crisp/internal/crisp"
	"crisp/internal/runner"
	"crisp/internal/sim"
	"crisp/internal/workload"
)

func main() {
	w := workload.ByName("mcf")
	fmt.Printf("workload: %s\n  %s\n\n", w.Name, w.Pathology)

	ctx := context.Background()
	r, err := runner.New(ctx, runner.Options{})
	if err != nil {
		panic(err)
	}

	const insts = 300_000
	// Two declarative specs: the Table 1 OOO baseline, and the same
	// machine running the program tagged by the software pipeline
	// (Figure 5: profile -> slice -> tag) under the CRISP scheduler.
	baseSpec := sim.RunSpec{Workload: w.Name, Insts: insts}
	crispSpec := baseSpec.WithCrisp(crisp.DefaultOptions())

	// Submit both; they simulate concurrently on the pool.
	baseH := r.Submit(baseSpec)
	crispH := r.Submit(crispSpec)

	// The pipeline summary (steps 1+2): the CRISP run above resolves the
	// same memoized analysis, so this costs nothing extra.
	a, err := r.Analysis(ctx, runner.AnalysisSpec{Workload: w.Name, Insts: insts, Opts: crisp.DefaultOptions()})
	if err != nil {
		panic(err)
	}
	fmt.Printf("software pipeline: %d delinquent loads, %d hard branches\n",
		len(a.DelinquentLoads), len(a.HardBranches))
	fmt.Printf("tagged %d static instructions (%.1f%% of dynamic stream)\n\n",
		len(a.CriticalPCs), a.DynCriticalFraction*100)

	// Step 3: evaluate on the ref input.
	base, err := baseH.Result(ctx)
	if err != nil {
		panic(err)
	}
	cr, err := crispH.Result(ctx)
	if err != nil {
		panic(err)
	}

	fmt.Println(sim.Describe("ooo", base))
	fmt.Println(sim.Describe("crisp", cr))
	fmt.Printf("\nCRISP speedup: %+.1f%% IPC\n", (cr.IPC()/base.IPC()-1)*100)
}
