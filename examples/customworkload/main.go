// Customworkload shows how to author a new kernel against the public
// pieces of the library — the program builder, the emulator memory, the
// simulator, and the CRISP software pipeline — without touching the
// built-in suite. The kernel is a skip-list-style search: towers of
// pointers where the descent direction depends on loaded keys.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"math/rand"

	"crisp/internal/core"
	"crisp/internal/crisp"
	"crisp/internal/emu"
	"crisp/internal/isa"
	"crisp/internal/program"
	"crisp/internal/sim"
)

// buildSkipSearch creates the image: a two-level linked structure where
// the upper level is sparse (every 8th node) and the search drops a level
// based on a loaded key comparison.
func buildSkipSearch(seed int64, nodes int) *sim.Image {
	r := rand.New(rand.NewSource(seed))
	mem := emu.NewMemory()
	const (
		upperBase = uint64(0x1000_0000)
		lowerBase = uint64(0x3000_0000)
		vecBase   = uint64(0x7000_0000)
	)
	// Lower ring.
	perm := r.Perm(nodes)
	lower := make([]uint64, nodes)
	for i := range lower {
		lower[i] = lowerBase + uint64(perm[i])*64
	}
	for i := 0; i < nodes; i++ {
		mem.WriteWord(lower[i], int64(lower[(i+1)%nodes])) // next
		mem.WriteWord(lower[i]+8, int64(r.Intn(1<<20)))    // key
	}
	// Upper ring links every 8th lower node and points down.
	upperN := nodes / 8
	permU := r.Perm(upperN)
	upper := make([]uint64, upperN)
	for i := range upper {
		upper[i] = upperBase + uint64(permU[i])*64
	}
	for i := 0; i < upperN; i++ {
		mem.WriteWord(upper[i], int64(upper[(i+1)%upperN]))  // next
		mem.WriteWord(upper[i]+8, int64(lower[(i*8)%nodes])) // down
		mem.WriteWord(upper[i]+16, int64(r.Intn(2)))         // descent flag
	}
	for i := 0; i < 96; i++ {
		mem.WriteWord(vecBase+uint64(i)*8, int64(i+1))
	}

	b := program.NewBuilder("skipsearch")
	up, down, val := isa.R(1), isa.R(2), isa.R(20)
	vb, e, lim := isa.R(3), isa.R(4), isa.R(5)
	t1, t2, t3 := isa.R(8), isa.R(9), isa.R(10)
	b.MovI(vb, int64(vecBase))
	b.MovI(lim, 40)
	b.Label("outer")
	// Independent filler the scheduler may deprioritize.
	b.MovI(e, 0)
	b.Label("fill")
	b.LoadIdx(t1, vb, e, 8, 0)
	b.LoadIdx(t2, vb, e, 8, 32)
	b.LoadIdx(t3, vb, e, 8, 64)
	b.Mul(t1, t1, val)
	b.Add(t2, t2, t3)
	b.AddI(e, e, 1)
	b.Blt(e, lim, "fill")
	// Skip-list step: advance the upper level; descend when flagged.
	b.Load(t1, up, 16)          // descent flag (delinquent)
	b.Load(up, up, 0)           // upper next (delinquent)
	b.Beq(t1, isa.R(0), "stay") // data-dependent descent
	b.Load(down, up, 8)         // down pointer (delinquent)
	b.Load(down, down, 0)       // lower next (delinquent)
	b.Label("stay")
	b.Load(val, up, 8)
	b.Bne(up, isa.R(0), "outer")
	b.Halt()

	return &sim.Image{
		Prog: b.MustBuild(), Mem: mem,
		Regs: map[isa.Reg]int64{up: int64(upper[0]), down: int64(lower[0]), val: 1},
	}
}

func main() {
	cfg := sim.DefaultConfig()
	cfg.Core.MaxInsts = 250_000

	// The CRISP flow over a custom workload: build two train images (one
	// is consumed by profiling, one by tracing), analyze, tag, evaluate.
	pipe := sim.AnalyzeTrain(buildSkipSearch(1, 8000), buildSkipSearch(1, 8000),
		cfg, crisp.DefaultOptions())
	a := pipe.Analysis
	fmt.Printf("custom kernel: %d delinquent loads, %d hard branches, %d critical PCs\n",
		len(a.DelinquentLoads), len(a.HardBranches), len(a.CriticalPCs))
	for _, s := range a.Slices {
		kind := "load"
		if s.IsBranch {
			kind = "branch"
		}
		fmt.Printf("  %s slice @pc %d: %d -> %d static insts (avg dyn %.1f)\n",
			kind, s.RootPC, s.FullStatic, s.FiltStatic, s.AvgDynLen)
	}

	base := sim.Run(buildSkipSearch(2, 16000), cfg.WithSched(core.SchedOldestFirst))
	cr := sim.Run(pipe.Tagged(buildSkipSearch(2, 16000)), cfg.WithSched(core.SchedCRISP))
	fmt.Println(sim.Describe("ooo", base))
	fmt.Println(sim.Describe("crisp", cr))
	fmt.Printf("speedup %+.1f%%\n", (cr.IPC()/base.IPC()-1)*100)
}
