// Pointerchase renders the Figure 1 experiment as an ASCII timeline: µops
// retired per cycle window for the baseline OOO core and for CRISP on the
// linked-list + vector-multiply microbenchmark, showing the stall sawtooth
// flattening when the delinquent load's slice is prioritized.
//
//	go run ./examples/pointerchase
package main

import (
	"fmt"
	"strings"

	"crisp/internal/harness"
)

func main() {
	lab := harness.NewLab(250_000)
	// The baseline and CRISP timelines are submitted together and
	// simulate in parallel; MustTable waits for both.
	tab := lab.Figure1Skip(200, 48, 400).MustTable()

	fmt.Println(tab.Title)
	fmt.Println(strings.Repeat("-", 64))
	fmt.Println("per 200-cycle window, each bar spans UPC 0..6")
	for _, row := range tab.Rows {
		ooo, crisp := row.Cells[0], row.Cells[1]
		fmt.Printf("%s  OOO   |%-30s| %.2f\n", row.Label, bar(ooo, 6, 30), ooo)
		fmt.Printf("      CRISP |%-30s| %.2f\n", bar(crisp, 6, 30), crisp)
	}
	for _, n := range tab.Notes {
		fmt.Println(n)
	}
}

func bar(v, max float64, width int) string {
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n)
}
