// Threshold demonstrates the software flexibility the paper argues for
// (Sections 3.2 and 5.5): sweep the miss-share criticality threshold T per
// application and report how the best setting differs across workloads —
// the kind of application-specific tuning a hardware mechanism cannot do.
//
// The whole sweep — every workload × every threshold, plus the shared
// baselines — is submitted to the runner up front and simulates in
// parallel; the rows below just wait on resolved results.
//
//	go run ./examples/threshold
//	go run ./examples/threshold -workloads mcf,lbm,moses
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"crisp/internal/crisp"
	"crisp/internal/runner"
	"crisp/internal/sim"
)

func main() {
	names := flag.String("workloads", "mcf,xalancbmk,lbm,moses", "comma-separated workloads")
	insts := flag.Uint64("insts", 300_000, "instructions per run")
	flag.Parse()

	ctx := context.Background()
	r, err := runner.New(ctx, runner.Options{})
	if err != nil {
		panic(err)
	}
	thresholds := []float64{0.05, 0.02, 0.01, 0.005, 0.002}

	// Submit everything before waiting on anything.
	type sweep struct {
		name string
		base *runner.RunHandle
		runs []*runner.RunHandle
	}
	var sweeps []sweep
	for _, name := range strings.Split(*names, ",") {
		s := sweep{name: name, base: r.Submit(sim.RunSpec{Workload: name, Insts: *insts})}
		for _, T := range thresholds {
			opts := crisp.DefaultOptions()
			opts.MissShareThreshold = T
			s.runs = append(s.runs, r.Submit(sim.RunSpec{Workload: name, Insts: *insts}.WithCrisp(opts)))
		}
		sweeps = append(sweeps, s)
	}

	fmt.Printf("%-12s", "workload")
	for _, T := range thresholds {
		fmt.Printf(" %8s", fmt.Sprintf("T=%.1f%%", T*100))
	}
	fmt.Printf(" %10s\n", "best")

	for _, s := range sweeps {
		base, err := s.base.Result(ctx)
		if err != nil {
			fmt.Printf("%-12s %v\n", s.name, err)
			os.Exit(1)
		}
		fmt.Printf("%-12s", s.name)
		best, bestGain := 0.0, -100.0
		for i, h := range s.runs {
			cr, err := h.Result(ctx)
			if err != nil {
				fmt.Printf(" %v\n", err)
				os.Exit(1)
			}
			g := (cr.IPC()/base.IPC() - 1) * 100
			fmt.Printf(" %+7.2f%%", g)
			if g > bestGain {
				best, bestGain = thresholds[i], g
			}
		}
		fmt.Printf("   T=%.1f%%\n", best*100)
	}
	fmt.Println("\nDifferent applications prefer different thresholds — the")
	fmt.Println("paper's case for keeping criticality policy in software.")
}
