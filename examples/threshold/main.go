// Threshold demonstrates the software flexibility the paper argues for
// (Sections 3.2 and 5.5): sweep the miss-share criticality threshold T per
// application and report how the best setting differs across workloads —
// the kind of application-specific tuning a hardware mechanism cannot do.
//
//	go run ./examples/threshold
//	go run ./examples/threshold -workloads mcf,lbm,moses
package main

import (
	"flag"
	"fmt"
	"strings"

	"crisp/internal/crisp"
	"crisp/internal/harness"
	"crisp/internal/workload"
)

func main() {
	names := flag.String("workloads", "mcf,xalancbmk,lbm,moses", "comma-separated workloads")
	insts := flag.Uint64("insts", 300_000, "instructions per run")
	flag.Parse()

	lab := harness.NewLab(*insts)
	thresholds := []float64{0.05, 0.02, 0.01, 0.005, 0.002}

	fmt.Printf("%-12s", "workload")
	for _, T := range thresholds {
		fmt.Printf(" %8s", fmt.Sprintf("T=%.1f%%", T*100))
	}
	fmt.Printf(" %10s\n", "best")

	for _, name := range strings.Split(*names, ",") {
		w := workload.ByName(name)
		if w == nil {
			fmt.Printf("%-12s unknown workload\n", name)
			continue
		}
		base := lab.Baseline(w, lab.Cfg, "default")
		fmt.Printf("%-12s", name)
		best, bestGain := 0.0, -100.0
		for _, T := range thresholds {
			opts := crisp.DefaultOptions()
			opts.MissShareThreshold = T
			cr := lab.RunCRISP(w, lab.Analyze(w, opts), lab.Cfg)
			g := (cr.IPC()/base.IPC() - 1) * 100
			fmt.Printf(" %+7.2f%%", g)
			if g > bestGain {
				best, bestGain = T, g
			}
		}
		fmt.Printf("   T=%.1f%%\n", best*100)
	}
	fmt.Println("\nDifferent applications prefer different thresholds — the")
	fmt.Println("paper's case for keeping criticality policy in software.")
}
